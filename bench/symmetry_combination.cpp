// Combination of the paper's techniques with role-based symmetry reduction —
// the paper's related-work claim ("These and similar techniques are
// orthogonal to ours and can be used in combination", Section VI, citing its
// companion work [7]).
//
// For every quorum-model protocol setting: unreduced / SPOR only / symmetry
// only / SPOR + symmetry, states and time per cell.
#include <iostream>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "por/spor.hpp"
#include "por/symmetry.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"

namespace {

using namespace mpb;
using namespace mpb::protocols;

struct Row {
  std::string label;
  Protocol proto;
  std::vector<std::vector<ProcessId>> roles;
};

std::vector<Row> make_rows() {
  std::vector<Row> rows;
  {
    PaxosConfig c{.proposers = 2, .acceptors = 3, .learners = 1};
    rows.push_back({"Paxos (2,3,1)", make_paxos(c), paxos_symmetric_roles(c)});
  }
  {
    PaxosConfig c{.proposers = 1, .acceptors = 5, .learners = 1};
    rows.push_back({"Paxos (1,5,1)", make_paxos(c), paxos_symmetric_roles(c)});
  }
  {
    StorageConfig c{.bases = 3, .readers = 2, .writes = 2};
    rows.push_back(
        {"Regular storage (3,2)", make_regular_storage(c), storage_symmetric_roles(c)});
  }
  {
    EchoConfig c{.honest_receivers = 3, .honest_initiators = 1,
                 .byz_receivers = 0, .byz_initiators = 0};
    rows.push_back(
        {"Echo Multicast (3,1,0,0)", make_echo_multicast(c), echo_symmetric_roles(c)});
  }
  return rows;
}

std::string cell(const Protocol& proto, const ExploreConfig& budget,
                 bool spor, const SymmetryReducer* sym) {
  ExploreConfig cfg = budget;
  if (sym != nullptr) {
    cfg.canonicalize = [sym](const State& s) { return sym->canonicalize(s); };
  }
  if (spor) {
    SporStrategy strategy(proto);
    return harness::format_cell(explore(proto, cfg, &strategy));
  }
  return harness::format_cell(explore(proto, cfg, nullptr));
}

}  // namespace

int main() {
  const ExploreConfig budget = harness::budget_from_env();

  std::cout << "Symmetry x POR combination (cf. paper Section VI and [7])\n\n";
  harness::Table table({"Protocol", "Orbit bound", "Unreduced", "SPOR",
                        "Symmetry", "SPOR + Symmetry"});
  for (Row& row : make_rows()) {
    SymmetryReducer sym(row.proto, row.roles);
    std::cerr << "running " << row.label << " ...\n";
    table.add_row({row.label, std::to_string(sym.orbit_bound()),
                   cell(row.proto, budget, false, nullptr),
                   cell(row.proto, budget, true, nullptr),
                   cell(row.proto, budget, false, &sym),
                   cell(row.proto, budget, true, &sym)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: symmetry divides state counts by up to the\n"
               "orbit bound; the combination dominates either technique alone\n"
               "and all verdicts agree.\n";
  return 0;
}
