// Combination of the paper's techniques with role-based symmetry reduction —
// the paper's related-work claim ("These and similar techniques are
// orthogonal to ours and can be used in combination", Section VI, citing its
// companion work [7]).
//
// For every quorum-model protocol setting: unreduced / SPOR only / symmetry
// only / SPOR + symmetry, states and time per cell. Symmetry is the check
// facade's `symmetry` knob: the registry models carry their symmetric roles,
// so this bench never touches SymmetryReducer directly.
#include <iostream>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace {

using namespace mpb;

struct Row {
  std::string label;
  std::string model;
  check::RawParams params;
};

std::vector<Row> make_rows() {
  return {
      {"Paxos (2,3,1)", "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}}},
      {"Paxos (1,5,1)", "paxos",
       {{"proposers", "1"}, {"acceptors", "5"}, {"learners", "1"}}},
      {"Regular storage (3,2)", "storage",
       {{"bases", "3"}, {"readers", "2"}, {"writes", "2"}}},
      {"Echo Multicast (3,1,0,0)", "echo",
       {{"honest-receivers", "3"}, {"honest-initiators", "1"},
        {"byz-receivers", "0"}, {"byz-initiators", "0"}}},
  };
}

check::CheckResult run_cell(const Row& row, bool spor, bool symmetry,
                            const ExploreConfig& budget) {
  check::CheckRequest req;
  req.model = row.model;
  req.params = row.params;
  req.strategy = spor ? "spor" : "full";
  req.symmetry = symmetry;
  req.explore = budget;
  return check::run_check(std::move(req));
}

}  // namespace

int main() {
  const ExploreConfig budget = harness::budget_from_env();

  std::cout << "Symmetry x POR combination (cf. paper Section VI and [7])\n\n";
  harness::Table table({"Protocol", "Orbit bound", "Unreduced", "SPOR",
                        "Symmetry", "SPOR + Symmetry"});
  for (const Row& row : make_rows()) {
    std::cerr << "running " << row.label << " ...\n";
    const check::CheckResult unreduced = run_cell(row, false, false, budget);
    const check::CheckResult spor = run_cell(row, true, false, budget);
    const check::CheckResult sym = run_cell(row, false, true, budget);
    const check::CheckResult both = run_cell(row, true, true, budget);
    table.add_row({row.label, std::to_string(sym.symmetry_orbit_bound),
                   harness::format_cell(unreduced.result),
                   harness::format_cell(spor.result),
                   harness::format_cell(sym.result),
                   harness::format_cell(both.result)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: symmetry divides state counts by up to the\n"
               "orbit bound; the combination dominates either technique alone\n"
               "and all verdicts agree.\n";
  return 0;
}
