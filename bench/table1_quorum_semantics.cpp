// Table I of the paper: quorum semantics results.
//
// For every protocol setting of the evaluation, run
//   (1) the single-message model under stateless DPOR  [Basset's baseline],
//   (2) the single-message model under stateful SPOR,
//   (3) the quorum model under stateful SPOR            [the paper's point],
// and print result / states / time per cell, exactly the quantities the
// paper's Table I reports. Every cell is a check-facade request: the models
// are named registry entries, never #include-d. For the regular-storage rows
// the DPOR column falls back to an unreduced stateful search, mirroring the
// paper's footnote 3 (the DPOR implementation does not preserve that
// property).
//
// Budgets: MPB_BUDGET_STATES (default 3,000,000) and MPB_BUDGET_SECONDS
// (default 120) per cell; cells that exceed them print ">N (budget)" the way
// the paper prints ">16,087,468 / >48h".
#include <iostream>
#include <vector>

#include "check/check.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace {

using namespace mpb;

struct Row {
  std::string protocol;
  std::string property;
  std::string model;        // registry name
  check::RawParams params;  // quorum-model parameters
  bool dpor_supported;      // false: storage rows use unreduced stateful search
};

std::vector<Row> make_rows() {
  return {
      {"Paxos (2,3,1)", "Consensus", "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}}, true},
      {"Faulty Paxos (2,3,1)", "Consensus", "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"},
        {"faulty", "true"}}, true},
      {"Echo Multicast (3,0,1,1)", "Agreement", "echo",
       {{"honest-receivers", "3"}, {"honest-initiators", "0"},
        {"byz-receivers", "1"}, {"byz-initiators", "1"}}, true},
      {"Echo Multicast (2,1,0,1)", "Agreement", "echo",
       {{"honest-receivers", "2"}, {"honest-initiators", "1"},
        {"byz-receivers", "0"}, {"byz-initiators", "1"}}, true},
      {"Echo Multicast (2,1,2,1)", "Wrong agreement", "echo",
       {{"honest-receivers", "2"}, {"honest-initiators", "1"},
        {"byz-receivers", "2"}, {"byz-initiators", "1"},
        {"tolerance", "1"}}, true},
      {"Regular storage (3,1)", "Regularity", "storage",
       {{"bases", "3"}, {"readers", "1"}, {"writes", "2"}}, false},
      {"Regular storage (3,2)", "Wrong regularity", "storage",
       {{"bases", "3"}, {"readers", "2"}, {"writes", "2"},
        {"wrong-regularity", "true"}}, false},
  };
}

check::CheckResult run_cell(const Row& row, bool single_message,
                            const std::string& strategy,
                            const ExploreConfig& budget) {
  check::CheckRequest req;
  req.model = row.model;
  req.params = row.params;
  if (single_message) req.params["single-message"] = "true";
  req.strategy = strategy;
  req.explore = budget;
  return check::run_check(std::move(req));
}

}  // namespace

int main() {
  const ExploreConfig budget = harness::budget_from_env();

  harness::Table table({"Protocol", "Property", "Result",
                        "No quorum (DPOR, stateless)", "No quorum (SPOR)",
                        "Quorum (SPOR)"});

  std::cout << "Table I: quorum semantics results (cf. paper Table I)\n"
            << "budget per cell: " << harness::format_count(budget.max_states)
            << " states / " << budget.max_seconds << "s\n\n";

  for (const Row& row : make_rows()) {
    std::cerr << "running " << row.protocol << " ...\n";
    const check::CheckResult r_dpor =
        run_cell(row, true, row.dpor_supported ? "dpor" : "full", budget);
    const check::CheckResult r_spor_sm = run_cell(row, true, "spor", budget);
    const check::CheckResult r_spor_q = run_cell(row, false, "spor", budget);

    std::string verdict{to_string(r_spor_q.verdict())};
    std::string dpor_cell = harness::format_cell(r_dpor.result);
    if (!row.dpor_supported) dpor_cell += " [unreduced: footnote 3]";

    table.add_row({row.protocol, row.property, verdict, dpor_cell,
                   harness::format_cell(r_spor_sm.result),
                   harness::format_cell(r_spor_q.result)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nExpected shape (paper): the quorum model stores fewer states\n"
               "than both single-message columns and wins end-to-end time; buggy\n"
               "rows find their counterexample within a handful of states.\n";
  return 0;
}
