// Table I of the paper: quorum semantics results.
//
// For every protocol setting of the evaluation, run
//   (1) the single-message model under stateless DPOR  [Basset's baseline],
//   (2) the single-message model under stateful SPOR,
//   (3) the quorum model under stateful SPOR            [the paper's point],
// and print result / states / time per cell, exactly the quantities the
// paper's Table I reports. For the regular-storage rows the DPOR column falls
// back to an unreduced stateful search, mirroring the paper's footnote 3
// (the DPOR implementation does not preserve that property).
//
// Budgets: MPB_BUDGET_STATES (default 3,000,000) and MPB_BUDGET_SECONDS
// (default 120) per cell; cells that exceed them print ">N (budget)" the way
// the paper prints ">16,087,468 / >48h".
#include <iostream>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"

namespace {

using namespace mpb;
using namespace mpb::protocols;
using harness::RunSpec;
using harness::Strategy;

struct Row {
  std::string protocol;
  std::string property;
  Protocol single_msg;
  Protocol quorum;
  bool dpor_supported;  // false: storage rows use unreduced stateful search
};

std::vector<Row> make_rows() {
  std::vector<Row> rows;
  auto paxos = [](bool faulty) {
    PaxosConfig cfg{.proposers = 2, .acceptors = 3, .learners = 1,
                    .faulty_learner = faulty};
    PaxosConfig sm = cfg;
    sm.quorum_model = false;
    return std::pair{make_paxos(sm), make_paxos(cfg)};
  };
  auto echo = [](EchoConfig cfg) {
    EchoConfig sm = cfg;
    sm.quorum_model = false;
    return std::pair{make_echo_multicast(sm), make_echo_multicast(cfg)};
  };
  auto storage = [](StorageConfig cfg) {
    StorageConfig sm = cfg;
    sm.quorum_model = false;
    return std::pair{make_regular_storage(sm), make_regular_storage(cfg)};
  };

  {
    auto [sm, q] = paxos(false);
    rows.push_back({"Paxos (2,3,1)", "Consensus", std::move(sm), std::move(q), true});
  }
  {
    auto [sm, q] = paxos(true);
    rows.push_back(
        {"Faulty Paxos (2,3,1)", "Consensus", std::move(sm), std::move(q), true});
  }
  {
    auto [sm, q] = echo({.honest_receivers = 3, .honest_initiators = 0,
                         .byz_receivers = 1, .byz_initiators = 1});
    rows.push_back(
        {"Echo Multicast (3,0,1,1)", "Agreement", std::move(sm), std::move(q), true});
  }
  {
    auto [sm, q] = echo({.honest_receivers = 2, .honest_initiators = 1,
                         .byz_receivers = 0, .byz_initiators = 1});
    rows.push_back(
        {"Echo Multicast (2,1,0,1)", "Agreement", std::move(sm), std::move(q), true});
  }
  {
    auto [sm, q] = echo({.honest_receivers = 2, .honest_initiators = 1,
                         .byz_receivers = 2, .byz_initiators = 1, .tolerance = 1});
    rows.push_back({"Echo Multicast (2,1,2,1)", "Wrong agreement", std::move(sm),
                    std::move(q), true});
  }
  {
    auto [sm, q] = storage({.bases = 3, .readers = 1, .writes = 2});
    rows.push_back(
        {"Regular storage (3,1)", "Regularity", std::move(sm), std::move(q), false});
  }
  {
    auto [sm, q] = storage({.bases = 3, .readers = 2, .writes = 2,
                            .wrong_regularity = true});
    rows.push_back({"Regular storage (3,2)", "Wrong regularity", std::move(sm),
                    std::move(q), false});
  }
  return rows;
}

}  // namespace

int main() {
  const ExploreConfig budget = harness::budget_from_env();

  harness::Table table({"Protocol", "Property", "Result",
                        "No quorum (DPOR, stateless)", "No quorum (SPOR)",
                        "Quorum (SPOR)"});

  std::cout << "Table I: quorum semantics results (cf. paper Table I)\n"
            << "budget per cell: " << harness::format_count(budget.max_states)
            << " states / " << budget.max_seconds << "s\n\n";

  for (Row& row : make_rows()) {
    RunSpec dpor_spec;
    dpor_spec.strategy =
        row.dpor_supported ? Strategy::kDpor : Strategy::kUnreducedStateful;
    dpor_spec.explore = budget;

    RunSpec spor_spec;
    spor_spec.strategy = Strategy::kSpor;
    spor_spec.explore = budget;

    std::cerr << "running " << row.protocol << " ...\n";
    const ExploreResult r_dpor = harness::run(row.single_msg, dpor_spec);
    const ExploreResult r_spor_sm = harness::run(row.single_msg, spor_spec);
    const ExploreResult r_spor_q = harness::run(row.quorum, spor_spec);

    std::string verdict{to_string(r_spor_q.verdict)};
    std::string dpor_cell = harness::format_cell(r_dpor);
    if (!row.dpor_supported) dpor_cell += " [unreduced: footnote 3]";

    table.add_row({row.protocol, row.property, verdict, dpor_cell,
                   harness::format_cell(r_spor_sm), harness::format_cell(r_spor_q)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nExpected shape (paper): the quorum model stores fewer states\n"
               "than both single-message columns and wins end-to-end time; buggy\n"
               "rows find their counterexample within a handful of states.\n";
  return 0;
}
