// Section V-B ablations:
//  (1) seed-transition heuristics — the paper's "opposite transaction
//      heuristic" (prefer transitions that start/continue an instance)
//      against the [5]-style transaction heuristic (prefer finishing) and an
//      uninformed first-enabled baseline; the paper reports the transaction
//      heuristic achieved "very little reduction (not shown)".
//  (2) the LPOR vs LPOR-NET distinction of the user guide: necessary
//      enabling sets chosen by inspecting the current state (NET) vs the
//      conservative state-independent union.
#include <iostream>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"

namespace {

using namespace mpb;
using namespace mpb::protocols;

std::vector<std::pair<std::string, Protocol>> make_cases() {
  std::vector<std::pair<std::string, Protocol>> cases;
  cases.emplace_back("Paxos (2,3,1)",
                     make_paxos({.proposers = 2, .acceptors = 3, .learners = 1}));
  cases.emplace_back("Echo Multicast (3,1,1,1)",
                     make_echo_multicast({.honest_receivers = 3,
                                          .honest_initiators = 1,
                                          .byz_receivers = 1,
                                          .byz_initiators = 1}));
  cases.emplace_back(
      "Regular storage (3,1)",
      make_regular_storage({.bases = 3, .readers = 1, .writes = 2}));
  cases.emplace_back(
      "Regular storage (3,2)",
      make_regular_storage({.bases = 3, .readers = 2, .writes = 2}));
  return cases;
}

std::string run_cell(const Protocol& proto, const SporOptions& opts,
                     const ExploreConfig& budget) {
  SporStrategy strategy(proto, opts);
  ExploreConfig cfg = budget;
  return harness::format_cell(explore(proto, cfg, &strategy));
}

}  // namespace

int main() {
  const ExploreConfig budget = harness::budget_from_env();

  std::cout << "Seed-transition heuristics (cf. paper Section V-B)\n\n";
  {
    // Single-seed mode (faithful MP-LPOR: one stubborn set per state, so the
    // heuristic's choice is decisive) across the three heuristics, plus this
    // implementation's defaults (seed retry / exhaustive minimisation).
    harness::Table table({"Protocol", "opposite-transaction (paper)",
                          "transaction [5]", "first-enabled",
                          "seed-retry (default)", "best-seed (exhaustive)"});
    for (auto& [label, proto] : make_cases()) {
      SporOptions opposite, transaction, first, retry, exhaustive;
      opposite.seed_retry = false;
      transaction.seed_retry = false;
      transaction.seed = SeedHeuristic::kTransaction;
      first.seed_retry = false;
      first.seed = SeedHeuristic::kFirst;
      exhaustive.exhaustive_seed = true;
      table.add_row({label, run_cell(proto, opposite, budget),
                     run_cell(proto, transaction, budget),
                     run_cell(proto, first, budget),
                     run_cell(proto, retry, budget),
                     run_cell(proto, exhaustive, budget)});
    }
    table.print(std::cout);
  }

  std::cout << "\nNES selection: LPOR-NET (state-dependent) vs plain LPOR\n\n";
  {
    harness::Table table({"Protocol", "LPOR-NET", "plain LPOR", "unreduced"});
    for (auto& [label, proto] : make_cases()) {
      SporOptions net, plain;
      plain.state_dependent_nes = false;
      ExploreConfig cfg = budget;
      const ExploreResult full = explore(proto, cfg, nullptr);
      table.add_row({label, run_cell(proto, net, budget),
                     run_cell(proto, plain, budget), harness::format_cell(full)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: the opposite-transaction heuristic dominates\n"
               "or ties the alternatives; NET never selects more events than\n"
               "plain LPOR. All cells agree on the verdict. (Exhaustive seed\n"
               "minimisation is greedy per state and can lose globally — an\n"
               "instructive non-result.)\n";
  return 0;
}
