// Section V-B ablations:
//  (1) seed-transition heuristics — the paper's "opposite transaction
//      heuristic" (prefer transitions that start/continue an instance)
//      against the [5]-style transaction heuristic (prefer finishing) and an
//      uninformed first-enabled baseline; the paper reports the transaction
//      heuristic achieved "very little reduction (not shown)".
//  (2) the LPOR vs LPOR-NET distinction of the user guide: necessary
//      enabling sets chosen by inspecting the current state (NET) vs the
//      conservative state-independent union.
// Every cell is a check-facade request with a different SporOptions payload.
#include <iostream>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace {

using namespace mpb;

struct Case {
  std::string label;
  std::string model;
  check::RawParams params;
};

std::vector<Case> make_cases() {
  return {
      {"Paxos (2,3,1)", "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}}},
      {"Echo Multicast (3,1,1,1)", "echo",
       {{"honest-receivers", "3"}, {"honest-initiators", "1"},
        {"byz-receivers", "1"}, {"byz-initiators", "1"}}},
      {"Regular storage (3,1)", "storage",
       {{"bases", "3"}, {"readers", "1"}, {"writes", "2"}}},
      {"Regular storage (3,2)", "storage",
       {{"bases", "3"}, {"readers", "2"}, {"writes", "2"}}},
  };
}

std::string run_cell(const Case& c, const std::string& strategy,
                     const SporOptions& opts, const ExploreConfig& budget) {
  check::CheckRequest req;
  req.model = c.model;
  req.params = c.params;
  req.strategy = strategy;
  req.spor = opts;
  req.explore = budget;
  return harness::format_cell(check::run_check(std::move(req)).result);
}

}  // namespace

int main() {
  const ExploreConfig budget = harness::budget_from_env();

  std::cout << "Seed-transition heuristics (cf. paper Section V-B)\n\n";
  {
    // Single-seed mode (faithful MP-LPOR: one stubborn set per state, so the
    // heuristic's choice is decisive) across the three heuristics, plus this
    // implementation's defaults (seed retry / exhaustive minimisation).
    harness::Table table({"Protocol", "opposite-transaction (paper)",
                          "transaction [5]", "first-enabled",
                          "seed-retry (default)", "best-seed (exhaustive)"});
    for (const Case& c : make_cases()) {
      SporOptions opposite, transaction, first, retry, exhaustive;
      opposite.seed_retry = false;
      transaction.seed_retry = false;
      transaction.seed = SeedHeuristic::kTransaction;
      first.seed_retry = false;
      first.seed = SeedHeuristic::kFirst;
      exhaustive.exhaustive_seed = true;
      table.add_row({c.label, run_cell(c, "spor", opposite, budget),
                     run_cell(c, "spor", transaction, budget),
                     run_cell(c, "spor", first, budget),
                     run_cell(c, "spor", retry, budget),
                     run_cell(c, "spor", exhaustive, budget)});
    }
    table.print(std::cout);
  }

  std::cout << "\nNES selection: LPOR-NET (state-dependent) vs plain LPOR\n\n";
  {
    harness::Table table({"Protocol", "LPOR-NET", "plain LPOR", "unreduced"});
    for (const Case& c : make_cases()) {
      SporOptions net, plain;
      plain.state_dependent_nes = false;
      table.add_row({c.label, run_cell(c, "spor", net, budget),
                     run_cell(c, "spor", plain, budget),
                     run_cell(c, "full", {}, budget)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: the opposite-transaction heuristic dominates\n"
               "or ties the alternatives; NET never selects more events than\n"
               "plain LPOR. All cells agree on the verdict. (Exhaustive seed\n"
               "minimisation is greedy per state and can lose globally — an\n"
               "instructive non-result.)\n";
  return 0;
}
