// Section II-C of the paper, made measurable: expressing an l-message quorum
// transition through single-message transitions inflates the state space; the
// paper bounds the blow-up by (k+l)!(k+l) vs k!k for k other concurrently
// enabled transitions.
//
// Series 1 sweeps the quorum size l for a fixed sender count; series 2 sweeps
// the number k of independent "noise" transitions. Each point reports the
// reachable-state count of the quorum model vs the single-message model and
// their ratio.
#include <iostream>

#include "check/check.hpp"
#include "harness/table.hpp"

namespace {

using namespace mpb;

// Collector parameters: n senders, quorum l, k noise processes, and the
// single-message vs quorum flavour — all resolved through the model registry.
check::RawParams collector_params(unsigned senders, unsigned quorum,
                                  unsigned noise, bool quorum_model) {
  check::RawParams p{{"senders", std::to_string(senders)},
                     {"quorum", std::to_string(quorum)},
                     {"noise", std::to_string(noise)}};
  if (!quorum_model) p["single-message"] = "true";
  return p;
}

std::uint64_t states_of(check::RawParams params) {
  check::CheckRequest req;
  req.model = "collector";
  req.params = std::move(params);
  req.strategy = "full";
  req.explore.max_states = 20'000'000;
  req.explore.max_seconds = 120;
  return check::run_check(std::move(req)).stats().states_stored;
}

// Path prefixes walked by a stateless unreduced search — a proxy for the
// number of interleavings, where the paper's factorial bound lives.
std::uint64_t stateless_visits_of(check::RawParams params) {
  check::CheckRequest req;
  req.model = "collector";
  req.params = std::move(params);
  req.strategy = "stateless";
  req.explore.max_states = 50'000'000;
  req.explore.max_seconds = 120;
  return check::run_check(std::move(req)).stats().states_visited;
}

}  // namespace

int main() {
  std::cout << "State inflation of single-message vs quorum models "
               "(cf. paper Section II-C)\n\n";

  {
    harness::Table table(
        {"n senders", "quorum l", "States (quorum)", "States (1-msg)", "Ratio"});
    for (unsigned n = 2; n <= 7; ++n) {
      const unsigned l = n / 2 + 1;  // majority, the common protocol choice
      const auto sq = states_of(collector_params(n, l, 0, true));
      const auto ss = states_of(collector_params(n, l, 0, false));
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.2fx", double(ss) / double(sq));
      table.add_row({std::to_string(n), std::to_string(l), std::to_string(sq),
                     std::to_string(ss), ratio});
    }
    std::cout << "Series 1: majority quorum, sweeping the system size\n";
    table.print(std::cout);
  }

  {
    harness::Table table(
        {"quorum l (n=6)", "States (quorum)", "States (1-msg)", "Ratio"});
    for (unsigned l = 1; l <= 6; ++l) {
      const auto sq = states_of(collector_params(6, l, 0, true));
      const auto ss = states_of(collector_params(6, l, 0, false));
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.2fx", double(ss) / double(sq));
      table.add_row({std::to_string(l), std::to_string(sq), std::to_string(ss), ratio});
    }
    std::cout << "\nSeries 2: fixed n=6, sweeping the quorum size l\n";
    table.print(std::cout);
  }

  {
    // Deduplicated state counts factor out independent noise, so the
    // factorial effect of the paper's bound is measured on *interleavings*:
    // the path prefixes a stateless unreduced search walks.
    harness::Table table({"noise k (n=3,l=3)", "Interleavings (quorum)",
                          "Interleavings (1-msg)", "Ratio"});
    for (unsigned k = 0; k <= 3; ++k) {
      const auto sq = stateless_visits_of(collector_params(3, 3, k, true));
      const auto ss = stateless_visits_of(collector_params(3, 3, k, false));
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.2fx", double(ss) / double(sq));
      table.add_row({std::to_string(k), std::to_string(sq), std::to_string(ss), ratio});
    }
    std::cout << "\nSeries 3: interleavings vs concurrent noise transitions "
                 "(the paper's k)\n";
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: the state ratio grows with the quorum size l\n"
               "(series 1-2) and the interleaving ratio grows with the\n"
               "concurrency k (series 3) — the paper's (k+l)!(k+l) vs k!k bound.\n";
  return 0;
}
