// Bytes-per-state bench: the memory trajectory of the visited set.
//
// Runs each workload family once per accounting visited mode — full-copy
// interning ("interned") and COLLAPSE-style component compression
// ("collapse") — and reports the exact visited-set footprint divided by
// states stored. Both modes account their footprint exactly
// (ExploreStats::visited_bytes: slot tables + node arena + interned heap
// payload), so the bytes/state column measures the representation, not
// allocator noise or process-lifetime RSS.
//
// Families mirror the throughput bench: paxos, storage and collector, each
// in a small (~10k states) tier that CI can afford and a large
// (~0.5M–1.3M states) tier where the compression claim is actually judged
// (the acceptance bar for collapse is >=10x fewer bytes/state than interned
// on the large tier; on ~10k-state runs the fixed slot tables dilute the
// ratio). Skip the large tier with --small.
//
// Series land in the same mpb-bench-v1 JSON the throughput bench emits
// (default BENCH_state_bytes.json) with names "state_bytes/<family>/<mode>",
// so tools/bench_compare.py gates them like any other series — in
// particular with --rss-threshold for the memory dimension.
//
// Usage: state_bytes [--out FILE] [--small] [--repeat N]
// Budgets honour MPB_BUDGET_STATES / MPB_BUDGET_SECONDS (defaults 3M / 120s).
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "harness/bench_json.hpp"
#include "harness/runner.hpp"

using namespace mpb;

namespace {

struct Workload {
  std::string name;    // family segment of the series name
  std::string model;   // registry name (check/registry.hpp)
  check::RawParams params;
  bool large = false;  // seconds-scale; skipped by --small
};

std::vector<Workload> make_workloads() {
  return {
      // Small tier: the soundness-pinned settings (paxos stores 9,945
      // states under full exploration), cheap enough for CI.
      {"paxos",
       "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}}},
      {"storage",
       "storage",
       {{"bases", "3"}, {"readers", "1"}, {"writes", "2"}}},
      {"collector",
       "collector",
       {{"senders", "8"}, {"quorum", "4"}, {"noise", "2"}}},
      // Large tier: where per-state payload dominates the fixed tables and
      // the compression ratio is meaningful.
      {"paxos_big",  // ~1.12M states
       "paxos",
       {{"proposers", "3"}, {"acceptors", "3"}, {"learners", "1"}},
       /*large=*/true},
      {"storage_scaled",  // ~1.30M states
       "storage",
       {{"bases", "3"}, {"readers", "2"}, {"writes", "2"}},
       /*large=*/true},
      {"collector_wide",  // ~506k states
       "collector",
       {{"senders", "12"}, {"quorum", "6"}, {"noise", "3"}},
       /*large=*/true},
  };
}

double bytes_per_state(const harness::BenchRecord& rec) {
  if (rec.states_stored == 0) return 0.0;
  return static_cast<double>(rec.visited_bytes) /
         static_cast<double>(rec.states_stored);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_state_bytes.json";
  unsigned repeat = harness::repeat_from_env();
  bool small_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--small") small_only = true;
    else if (arg == "--repeat" && i + 1 < argc) {
      repeat = static_cast<unsigned>(
          std::clamp(std::strtol(argv[++i], nullptr, 10), 1L, 64L));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const VisitedMode modes[] = {VisitedMode::kInterned, VisitedMode::kCollapse};
  std::vector<harness::BenchRecord> records;
  int exit_code = 0;
  for (Workload& w : make_workloads()) {
    if (small_only && w.large) continue;
    double per_mode[2] = {0.0, 0.0};
    for (std::size_t m = 0; m < 2; ++m) {
      check::CheckRequest req;
      req.model = w.model;
      req.params = w.params;
      req.strategy = "full";
      req.explore = harness::budget_from_env();
      req.explore.visited = modes[m];
      req.explore.threads = 1;
      req.repeat = repeat;
      req.record = false;  // this bench writes its own JSON below
      const std::string cell =
          "state_bytes/" + w.name + "/" + std::string(to_string(modes[m]));
      const check::CheckResult r = check::run_check(std::move(req));
      harness::BenchRecord rec = check::to_record(r, cell);
      per_mode[m] = bytes_per_state(rec);
      records.push_back(std::move(rec));
      std::cout << cell << ": "
                << harness::format_count(r.stats().states_stored)
                << " states  " << r.stats().visited_bytes << " bytes  "
                << per_mode[m] << " bytes/state\n";
      if (r.stats().visited_bytes == 0) {
        std::cerr << cell << ": visited set reported zero bytes — the "
                  << "accounting is broken for this mode\n";
        exit_code = 1;
      }
    }
    if (per_mode[1] > 0.0) {
      std::cout << "  " << w.name << " compression: " << per_mode[0] << " -> "
                << per_mode[1] << " bytes/state ("
                << per_mode[0] / per_mode[1] << "x)\n";
    }
    // Spill series, large tier only: same collapse run with an 8 MiB hot
    // window over the spillable chunks. visited_bytes then reports the
    // *resident* footprint (spilled chunks are excluded by the accounting),
    // so this series measures bytes/state of the hot set — the figure that
    // matters once the arena overflows RAM. The backing file is unlinked at
    // creation, so removing the scratch dir afterwards is enough cleanup.
    if (w.large) {
      char tmpl[] = "/tmp/mpb_state_bytes_XXXXXX";
      char* dir = mkdtemp(tmpl);
      if (dir == nullptr) {
        std::cerr << "mkdtemp failed: " << std::strerror(errno) << "\n";
        return 1;
      }
      check::CheckRequest req;
      req.model = w.model;
      req.params = w.params;
      req.strategy = "full";
      req.explore = harness::budget_from_env();
      req.explore.visited = VisitedMode::kCollapse;
      req.explore.threads = 1;
      req.explore.spill_dir = dir;
      req.explore.spill_mb = 8;
      req.repeat = repeat;
      req.record = false;
      const std::string cell = "state_bytes/" + w.name + "/collapse-spill";
      const check::CheckResult r = check::run_check(std::move(req));
      harness::BenchRecord rec = check::to_record(r, cell);
      const double resident = bytes_per_state(rec);
      records.push_back(std::move(rec));
      rmdir(dir);
      std::cout << cell << ": "
                << harness::format_count(r.stats().states_stored)
                << " states  " << r.stats().visited_bytes
                << " resident bytes  " << resident << " bytes/state\n";
      if (resident > 0.0 && per_mode[0] > 0.0) {
        std::cout << "  " << w.name << " resident vs interned: " << per_mode[0]
                  << " -> " << resident << " bytes/state ("
                  << per_mode[0] / resident << "x)\n";
      }
      if (r.stats().visited_bytes == 0) {
        std::cerr << cell << ": zero resident bytes reported\n";
        exit_code = 1;
      }
    }
  }

  if (!harness::write_bench_json(out, records)) {
    std::cerr << "failed to write " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " (" << records.size() << " records)\n";
  return exit_code;
}
