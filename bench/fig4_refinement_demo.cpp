// Figure 4 of the paper, made executable: three transition systems that
// generate (essentially) the same state graph but give POR very different
// leverage.
//
//  (a) refined      — independent transitions t1 (P1) and t2 (P2), where t2
//                     enables t3 (P3): SPOR explores a single order of t1/t2.
//  (b) unrefined    — the choices live inside ONE non-deterministic
//                     transition of one process: POR cannot split a
//                     transition's alternatives, no reduction.
//  (c) over-refined — every state change is its own transition whose guard
//                     ghost-reads the other process (declared via peeks), so
//                     every pair of transitions is dependent: reduction is
//                     impossible again — the paper's caveat.
#include <iostream>

#include "check/check.hpp"
#include "harness/table.hpp"
#include "mp/builder.hpp"

namespace {

using namespace mpb;

Protocol make_a() {
  mp::ProtocolBuilder b("fig4a-refined");
  const MsgType mGO = b.msg("GO");
  const ProcessId p1 = b.process("p1", "P", {{"fired", 0}});
  const ProcessId p2 = b.process("p2", "P", {{"fired", 0}});
  const ProcessId p3 = b.process("p3", "P", {{"fired", 0}});
  b.transition(p1, "t1")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .priority(1);
  b.transition(p2, "t2")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([=](EffectCtx& c) {
        c.set_local(0, 1);
        c.send(p3, mGO, {});
      })
      .sends("GO", mask_of(p3))
      .priority(2);
  b.transition(p3, "t3")
      .consumes("GO", 1)
      .from(mask_of(p2))
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .reads_local(false)
      .priority(0);
  return b.build();
}

Protocol make_b() {
  mp::ProtocolBuilder b("fig4b-unrefined");
  const MsgType mC = b.msg("CHOICE");
  const MsgType mGO = b.msg("GO");
  const ProcessId chooser = b.process("chooser", "P", {{"c1", 0}, {"c2", 0}});
  const ProcessId p3 = b.process("p3", "P", {{"fired", 0}});
  b.initial_message(Message(mC, chooser, chooser, {1}));
  b.initial_message(Message(mC, chooser, chooser, {2}));
  b.transition(chooser, "t")
      .consumes("CHOICE", 1)
      .effect([=](EffectCtx& c) {
        const Value which = c.consumed()[0][0];
        c.set_local(static_cast<unsigned>(which - 1), 1);
        if (which == 2) c.send(p3, mGO, {});
      })
      .sends("GO", mask_of(p3))
      .reads_local(false)
      .priority(1);
  b.transition(p3, "t3")
      .consumes("GO", 1)
      .from(mask_of(chooser))
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .reads_local(false)
      .priority(0);
  return b.build();
}

Protocol make_c() {
  // Over-refinement: t1 is split into one copy per state of p2 (guarded by a
  // ghost read of p2), and vice versa. Every transition now conflicts with
  // every other through the declared peeks, so POR has no leverage.
  mp::ProtocolBuilder b("fig4c-over-refined");
  const MsgType mGO = b.msg("GO");
  const ProcessId p1 = b.process("p1", "P", {{"fired", 0}});
  const ProcessId p2 = b.process("p2", "P", {{"fired", 0}});
  const ProcessId p3 = b.process("p3", "P", {{"fired", 0}});
  for (Value other_state : {0, 1}) {
    b.transition(p1, "t1_when_p2_is_" + std::to_string(other_state))
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[0] == 0; })
        .effect([=](EffectCtx& c) {
          if (c.peek(p2, 0) != other_state) return;  // the "wrong" copy stalls
          c.set_local(0, 1);
        })
        .peeks(mask_of(p2))
        .priority(1);
    b.transition(p2, "t2_when_p1_is_" + std::to_string(other_state))
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[0] == 0; })
        .effect([=](EffectCtx& c) {
          if (c.peek(p1, 0) != other_state) return;
          c.set_local(0, 1);
          c.send(p3, mGO, {});
        })
        .sends("GO", mask_of(p3))
        .peeks(mask_of(p1))
        .priority(2);
  }
  b.transition(p3, "t3")
      .consumes("GO", 1)
      .from(mask_of(p2))
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .reads_local(false)
      .priority(0);
  return b.build();
}

void report(harness::Table& table, const Protocol& proto) {
  // Builder-made toy protocols plug into the facade as prebuilt protocols.
  check::CheckRequest req;
  req.protocol = proto;
  req.strategy = "full";
  const check::CheckResult full = check::run_check(req);
  req.strategy = "spor";
  const check::CheckResult reduced = check::run_check(std::move(req));
  table.add_row({proto.name(), std::to_string(proto.n_transitions()),
                 std::to_string(full.stats().states_stored),
                 std::to_string(reduced.stats().states_stored),
                 std::to_string(reduced.stats().events_selected) + "/" +
                     std::to_string(reduced.stats().events_enabled)});
}

}  // namespace

int main() {
  std::cout << "Figure 4 demo: how the granularity of transitions gates POR\n\n";
  harness::Table table({"Variant", "Transitions", "States (full)", "States (SPOR)",
                        "Events selected/enabled"});
  report(table, make_a());
  report(table, make_b());
  report(table, make_c());
  table.print(std::cout);
  std::cout << "\nExpected shape: only the refined variant (a) reduces cleanly;\n"
               "(b) hides the choice inside one transition (no reduction) and\n"
               "(c) over-refines until (almost) everything is mutually\n"
               "dependent — the paper's caveat.\n";
  return 0;
}
