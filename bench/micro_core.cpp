// Micro-benchmarks of the exploration core (google-benchmark), including the
// Section IV-A cost model: computing the enabled *sets* of messages for a
// quorum transition is exponential in the pending pool in the worst case —
// the time price paid for the quorum model's space savings.
#include <benchmark/benchmark.h>

#include "core/enabled.hpp"
#include "core/execute.hpp"
#include "mp/builder.hpp"
#include "por/spor.hpp"
#include "protocols/paxos/paxos.hpp"

namespace {

using namespace mpb;
using protocols::make_paxos;
using protocols::PaxosConfig;

State mid_paxos_state(const Protocol& proto) {
  // Drive a few steps in: both proposers started, some acceptor replies out.
  State s = proto.initial();
  for (int i = 0; i < 5; ++i) {
    auto evs = enumerate_events(proto, s);
    if (evs.empty()) break;
    s = execute(proto, s, evs.front());
  }
  return s;
}

void BM_StateHash(benchmark::State& bench) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  const State s = mid_paxos_state(proto);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(s.hash());
  }
}
BENCHMARK(BM_StateHash);

void BM_StateFingerprint(benchmark::State& bench) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  const State s = mid_paxos_state(proto);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(s.fingerprint());
  }
}
BENCHMARK(BM_StateFingerprint);

void BM_EnumerateEventsQuorum(benchmark::State& bench) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  const State s = mid_paxos_state(proto);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(enumerate_events(proto, s));
  }
}
BENCHMARK(BM_EnumerateEventsQuorum);

void BM_EnumerateEventsSingleMsg(benchmark::State& bench) {
  Protocol proto = make_paxos(
      {.proposers = 2, .acceptors = 3, .learners = 1, .quorum_model = false});
  const State s = mid_paxos_state(proto);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(enumerate_events(proto, s));
  }
}
BENCHMARK(BM_EnumerateEventsSingleMsg);

void BM_ExecuteEvent(benchmark::State& bench) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  const State s = mid_paxos_state(proto);
  const auto evs = enumerate_events(proto, s);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(execute(proto, s, evs.front()));
  }
}
BENCHMARK(BM_ExecuteEvent);

// Section IV-A: powerset enumeration cost as the pending pool grows.
void BM_PowersetEnabledSets(benchmark::State& bench) {
  const auto pool = static_cast<unsigned>(bench.range(0));
  mp::ProtocolBuilder b("powerset");
  const ProcessId g = b.process("g", "G", {{"x", 0}});
  for (unsigned i = 0; i < pool; ++i) {
    b.process("s" + std::to_string(i), "S", {});
  }
  b.transition(g, "V").consumes("V", kPowersetArity);
  const MsgType mV = b.msg("V");
  for (unsigned i = 0; i < pool; ++i) {
    b.initial_message(Message(mV, static_cast<ProcessId>(i + 1), g,
                              {static_cast<Value>(i)}));
  }
  Protocol proto = b.build();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(enumerate_events(proto, proto.initial()));
  }
  bench.SetComplexityN(pool);
}
BENCHMARK(BM_PowersetEnabledSets)->DenseRange(2, 12, 2)->Complexity();

void BM_StubbornSetComputation(benchmark::State& bench) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  const State s = mid_paxos_state(proto);
  SporStrategy strategy(proto);
  const auto evs = enumerate_events(proto, s);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(strategy.stubborn_set(s, evs));
  }
}
BENCHMARK(BM_StubbornSetComputation);

void BM_StaticRelationsPrecompute(benchmark::State& bench) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  for (auto _ : bench) {
    StaticRelations rel(proto);
    benchmark::DoNotOptimize(rel.n_transitions());
  }
}
BENCHMARK(BM_StaticRelationsPrecompute);

void BM_ExploreSmallPaxos(benchmark::State& bench) {
  Protocol proto = make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  for (auto _ : bench) {
    benchmark::DoNotOptimize(explore_full(proto).stats.states_stored);
  }
}
BENCHMARK(BM_ExploreSmallPaxos)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
