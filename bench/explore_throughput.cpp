// Exploration-throughput bench: the perf trajectory of the exploration core.
//
// Runs the paxos_explore and storage_audit workloads in stateful mode —
// unreduced ("full") and SPOR-reduced, sequentially (the baseline, with the
// cached-fingerprint hash counters) and on the parallel work-sharing explorer
// at increasing thread counts (SPOR parallelizes under the visited-set cycle
// proviso) — and writes every cell to a machine-readable JSON file (default
// BENCH_explore.json) recording states/sec, events/sec, peak RSS and the
// full-hash-pass counters. tools/bench_compare.py diffs two such files with a
// regression threshold.
//
// Usage: explore_throughput [--out FILE] [--threads LIST] [--visited MODE]
//   --out FILE      output path                      (default BENCH_explore.json)
//   --threads LIST  comma-separated thread counts    (default 1,2,8)
//   --visited MODE  exact | fingerprint | interned   (default interned)
// Budgets honour MPB_BUDGET_STATES / MPB_BUDGET_SECONDS (defaults 3M / 120s).
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "harness/bench_json.hpp"
#include "harness/runner.hpp"

using namespace mpb;

namespace {

struct Workload {
  std::string name;
  std::string model;       // registry name (check/registry.hpp)
  check::RawParams params;
};

std::vector<Workload> make_workloads() {
  // The paper's Table I Paxos setting: big enough that the visited set and
  // hash path dominate, small enough for a CI-sized budget.
  return {
      {"paxos_explore",
       "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}}},
      {"storage_audit",
       "storage",
       {{"bases", "3"}, {"readers", "1"}, {"writes", "2"}}},
  };
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_explore.json";
  std::string threads_list = "1,2,8";
  VisitedMode visited = VisitedMode::kInterned;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--threads" && i + 1 < argc) threads_list = argv[++i];
    else if (arg == "--visited" && i + 1 < argc) {
      const auto mode = visited_mode_from_string(argv[++i]);
      if (!mode) {
        std::cerr << "unknown visited mode: " << argv[i] << "\n";
        return 2;
      }
      visited = *mode;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::vector<unsigned> thread_counts;
  {
    std::istringstream is(threads_list);
    for (std::string tok; std::getline(is, tok, ',');) {
      const unsigned n = static_cast<unsigned>(std::stoul(tok));
      if (n >= 1) thread_counts.push_back(n);
    }
  }

  std::vector<harness::BenchRecord> records;
  for (Workload& w : make_workloads()) {
    for (const std::string strategy : {"full", "spor"}) {
      for (unsigned threads : thread_counts) {
        check::CheckRequest req;
        req.model = w.model;
        req.params = w.params;
        req.strategy = strategy;
        // Pin the visited-set proviso for every spor cell (kAuto would give
        // t1 the stack proviso), so the thread-scaling row compares runs
        // with identical reduction semantics.
        if (strategy == "spor") req.spor.proviso = CycleProviso::kVisited;
        req.explore = harness::budget_from_env();
        req.explore.visited = visited;
        req.explore.threads = threads;
        // This bench writes its own JSON with cell-level names below; keep
        // the $MPB_BENCH_JSON at-exit flush from overwriting that file.
        req.record = false;
        reset_state_hash_counters();
        const std::string cell =
            w.name + "/" + strategy + "/t" + std::to_string(threads);
        const check::CheckResult r = check::run_check(std::move(req));
        harness::BenchRecord rec = check::to_record(r, cell);
        records.push_back(rec);
        std::cout << cell << ": " << to_string(r.verdict()) << "  "
                  << harness::format_count(r.stats().states_stored)
                  << " states  " << harness::format_time(r.stats().seconds)
                  << "  " << static_cast<std::uint64_t>(rec.states_per_sec)
                  << " states/s  hash passes/queries " << rec.full_hash_passes
                  << "/" << rec.hash_queries << "\n";
      }
    }
  }

  if (!harness::write_bench_json(out, records)) {
    std::cerr << "failed to write " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " (" << records.size() << " records)\n";
  return 0;
}
