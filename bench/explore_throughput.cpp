// Exploration-throughput bench: the perf trajectory of the exploration core.
//
// Runs the paxos_explore and storage_audit workloads in stateful mode —
// sequentially (the baseline, with the cached-fingerprint hash counters) and
// on the parallel work-sharing explorer at increasing thread counts — and
// writes every cell to a machine-readable JSON file (default
// BENCH_explore.json) recording states/sec, events/sec, peak RSS and the
// full-hash-pass counters. tools/bench_compare.py diffs two such files with a
// regression threshold.
//
// Usage: explore_throughput [--out FILE] [--threads LIST] [--visited MODE]
//   --out FILE      output path                      (default BENCH_explore.json)
//   --threads LIST  comma-separated thread counts    (default 1,2,8)
//   --visited MODE  exact | fingerprint | interned   (default interned)
// Budgets honour MPB_BUDGET_STATES / MPB_BUDGET_SECONDS (defaults 3M / 120s).
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"
#include "harness/runner.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"

using namespace mpb;
using protocols::make_paxos;
using protocols::make_regular_storage;
using protocols::PaxosConfig;
using protocols::StorageConfig;

namespace {

struct Workload {
  std::string name;
  Protocol proto;
};

std::vector<Workload> make_workloads() {
  std::vector<Workload> w;
  // The paper's Table I Paxos setting: big enough that the visited set and
  // hash path dominate, small enough for a CI-sized budget.
  w.push_back({"paxos_explore",
               make_paxos(PaxosConfig{.proposers = 2, .acceptors = 3, .learners = 1})});
  w.push_back({"storage_audit",
               make_regular_storage(StorageConfig{.bases = 3, .readers = 1, .writes = 2})});
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_explore.json";
  std::string threads_list = "1,2,8";
  VisitedMode visited = VisitedMode::kInterned;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--threads" && i + 1 < argc) threads_list = argv[++i];
    else if (arg == "--visited" && i + 1 < argc) {
      const auto mode = visited_mode_from_string(argv[++i]);
      if (!mode) {
        std::cerr << "unknown visited mode: " << argv[i] << "\n";
        return 2;
      }
      visited = *mode;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::vector<unsigned> thread_counts;
  {
    std::istringstream is(threads_list);
    for (std::string tok; std::getline(is, tok, ',');) {
      const unsigned n = static_cast<unsigned>(std::stoul(tok));
      if (n >= 1) thread_counts.push_back(n);
    }
  }

  std::vector<harness::BenchRecord> records;
  for (Workload& w : make_workloads()) {
    for (unsigned threads : thread_counts) {
      ExploreConfig cfg = harness::budget_from_env();
      cfg.mode = SearchMode::kStateful;
      cfg.visited = visited;
      cfg.threads = threads;
      reset_state_hash_counters();
      const ExploreResult r = explore(w.proto, cfg, nullptr);
      const std::string cell = w.name + "/full/t" + std::to_string(threads);
      harness::BenchRecord rec = harness::make_record(
          cell, "full", std::string(to_string(visited)), r);
      records.push_back(rec);
      std::cout << cell << ": " << to_string(r.verdict) << "  "
                << harness::format_count(r.stats.states_stored) << " states  "
                << harness::format_time(r.stats.seconds) << "  "
                << static_cast<std::uint64_t>(rec.states_per_sec)
                << " states/s  hash passes/queries " << rec.full_hash_passes
                << "/" << rec.hash_queries << "\n";
    }
  }

  if (!harness::write_bench_json(out, records)) {
    std::cerr << "failed to write " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " (" << records.size() << " records)\n";
  return 0;
}
