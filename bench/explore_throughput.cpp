// Exploration-throughput bench: the perf trajectory of the exploration core.
//
// Runs two tiers of workloads in stateful mode — unreduced ("full"),
// SPOR-reduced under the visited-set cycle proviso ("spor"), on the
// paxos/storage families SPOR under the SCC ignoring fix ("spor-scc"), and
// on the cells whose stateless trees fit the CI budget (storage_audit and
// the single-message paxos_1msg) the DPOR backtrack search with and
// without sleep sets ("dpor" / "dpor-nosleep") —
// sequentially (the baseline, with the cached-fingerprint hash counters) and
// on the parallel work-stealing explorer at increasing thread counts — and
// writes every cell to a machine-readable JSON file (default
// BENCH_explore.json) recording states/sec, events/sec, peak RSS, the
// full-hash-pass counters and the reduction counters
// (proviso_fallbacks / scc_reexpansions).
//
//  * small tier (~10k states, tens of ms): the original paxos_explore /
//    storage_audit cells, kept for continuity of the perf trajectory;
//  * large tier (~0.3M–1.3M states, seconds): paxos_big(3,3,1),
//    paxos_wide(2,4,2), storage_scaled(3,2,2) and collector_wide(12,6,3) —
//    big enough to amortize thread startup, so the tN/t1 speedup columns
//    (tools/bench_compare.py --speedup) measure the scaling core rather than
//    pool setup. Skip them with --small for a quick smoke run.
//
// tools/bench_compare.py diffs two such files with a regression threshold and
// computes per-workload parallel speedups.
//
// Usage: explore_throughput [--out FILE] [--threads LIST] [--visited MODE]
//                           [--repeat N] [--small]
//   --out FILE      output path                      (default BENCH_explore.json)
//   --threads LIST  comma-separated thread counts    (default 1,2,8)
//   --visited MODE  exact | fingerprint | interned   (default interned)
//   --repeat N      best-of-N timing per cell        (default 1 or MPB_REPEAT)
//   --small         small tier only (CI smoke)
// Budgets honour MPB_BUDGET_STATES / MPB_BUDGET_SECONDS (defaults 3M / 120s).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "harness/bench_json.hpp"
#include "harness/runner.hpp"

using namespace mpb;

namespace {

struct Workload {
  std::string name;
  std::string model;       // registry name (check/registry.hpp)
  check::RawParams params;
  bool large = false;      // seconds-scale; skipped by --small
  // DPOR series membership. The stateless backtrack search re-executes
  // trace prefixes, so only cells whose DPOR tree fits the CI budget run
  // the dpor/dpor-nosleep A/B pair; dpor_only cells exist purely for that
  // pair (the stateful series already cover the family elsewhere).
  bool dpor = false;
  bool dpor_only = false;
  // Distributed series membership: runs full-strategy dist/r1, r2 and r4
  // cells (rank processes instead of threads), recording the forwarding
  // overhead (forwarded_states, forward_batches, wire_bytes). dist/r1 is
  // the no-peer baseline tools/bench_compare.py gates against full/t1.
  bool dist = false;
};

std::vector<Workload> make_workloads() {
  return {
      // The paper's Table I Paxos setting: big enough that the visited set
      // and hash path dominate, small enough for a CI-sized budget. No dpor
      // series: stateless DPOR on the quorum model reduces little (eager
      // quorum expansion) and blows any CI budget.
      {"paxos_explore",
       "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}},
       /*large=*/false, /*dpor=*/false, /*dpor_only=*/false, /*dist=*/true},
      {"storage_audit",
       "storage",
       {{"bases", "3"}, {"readers", "1"}, {"writes", "2"}},
       /*large=*/false, /*dpor=*/true},
      // The paper's DPOR domain (Table I "No quorum (DPOR)"): the
      // per-message counting model. (1,3,1) is the acceptor-race setting
      // whose tree both completes in CI and shows a measurable sleep-set
      // win; single-message (2,3,1) needs >40M event executions even with
      // sleep sets, and (2,2,1)'s race structure gives sleep nothing to
      // prune (every skipped candidate is re-added by the eager expansion).
      {"paxos_1msg",
       "paxos",
       {{"proposers", "1"}, {"acceptors", "3"}, {"learners", "1"},
        {"single-message", "true"}},
       /*large=*/false, /*dpor=*/true, /*dpor_only=*/true},
      // The large tier: the workloads the t1/t2/t8 speedup curve is judged
      // on (each runs for seconds at t1, so per-state costs dominate).
      {"paxos_big",  // ~1.12M states
       "paxos",
       {{"proposers", "3"}, {"acceptors", "3"}, {"learners", "1"}},
       /*large=*/true, /*dpor=*/false, /*dpor_only=*/false, /*dist=*/true},
      {"paxos_wide",  // ~313k states, wider quorums
       "paxos",
       {{"proposers", "2"}, {"acceptors", "4"}, {"learners", "2"}},
       /*large=*/true},
      {"storage_scaled",  // ~1.30M states
       "storage",
       {{"bases", "3"}, {"readers", "2"}, {"writes", "2"}},
       /*large=*/true, /*dpor=*/false, /*dpor_only=*/false, /*dist=*/true},
      {"collector_wide",  // ~506k states, quorum-heavy enabled sets
       "collector",
       {{"senders", "12"}, {"quorum", "6"}, {"noise", "3"}},
       /*large=*/true},
  };
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_explore.json";
  std::string threads_list = "1,2,8";
  VisitedMode visited = VisitedMode::kInterned;
  unsigned repeat = harness::repeat_from_env();
  bool small_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out = argv[++i];
    else if (arg == "--threads" && i + 1 < argc) threads_list = argv[++i];
    else if (arg == "--repeat" && i + 1 < argc) {
      // Same [1, 64] clamp as mpbcheck --repeat / MPB_REPEAT.
      repeat = static_cast<unsigned>(
          std::clamp(std::strtol(argv[++i], nullptr, 10), 1L, 64L));
    } else if (arg == "--small") {
      small_only = true;
    } else if (arg == "--visited" && i + 1 < argc) {
      const auto mode = visited_mode_from_string(argv[++i]);
      if (!mode) {
        std::cerr << "unknown visited mode: " << argv[i] << "\n";
        return 2;
      }
      visited = *mode;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::vector<unsigned> thread_counts;
  {
    std::istringstream is(threads_list);
    for (std::string tok; std::getline(is, tok, ',');) {
      const unsigned n = static_cast<unsigned>(std::stoul(tok));
      if (n >= 1) thread_counts.push_back(n);
    }
  }

  // Each workload runs the unreduced series, the spor/visited series and —
  // on the paxos/storage families — the spor/scc series: same strategy, the
  // SCC ignoring fix instead of the in-search visited proviso, so the bench
  // tracks how much reduction the post-pass recovers (states_stored down,
  // scc_reexpansions/proviso_fallbacks in the JSON; bench_compare.py gates
  // increases).
  struct Series {
    std::string label;     // cell-name segment
    std::string strategy;  // facade strategy
    CycleProviso proviso = CycleProviso::kVisited;
    bool sleep_sets = true;  // dpor cells only
  };
  std::vector<harness::BenchRecord> records;
  for (Workload& w : make_workloads()) {
    if (small_only && w.large) continue;
    std::vector<Series> series;
    if (!w.dpor_only) {
      series.push_back({"full", "full"});
      series.push_back({"spor", "spor", CycleProviso::kVisited});
      if (w.model == "paxos" || w.model == "storage") {
        series.push_back({"spor-scc", "spor", CycleProviso::kScc});
      }
    }
    // The with/without-sleep dpor pair quantifies the sleep-set win
    // (sleep_blocked > 0, events_executed strictly below the nosleep cell);
    // bench_compare.py gates both like the other reduction counters.
    if (w.dpor) {
      series.push_back({"dpor", "dpor"});
      series.push_back(
          {"dpor-nosleep", "dpor", CycleProviso::kVisited, /*sleep_sets=*/false});
    }
    for (const Series& sr : series) {
      const std::string& strategy = sr.strategy;
      for (unsigned threads : thread_counts) {
        check::CheckRequest req;
        req.model = w.model;
        req.params = w.params;
        req.strategy = strategy;
        // Pin the proviso for every spor cell (kAuto would give t1 the
        // stack proviso), so the thread-scaling row compares runs with
        // identical reduction semantics.
        if (strategy == "spor") req.spor.proviso = sr.proviso;
        if (strategy == "dpor") req.dpor_sleep_sets = sr.sleep_sets;
        req.explore = harness::budget_from_env();
        req.explore.visited = visited;
        req.explore.threads = threads;
        req.repeat = repeat;
        // This bench writes its own JSON with cell-level names below; keep
        // the $MPB_BENCH_JSON at-exit flush from overwriting that file.
        req.record = false;
        reset_state_hash_counters();
        const std::string cell =
            w.name + "/" + sr.label + "/t" + std::to_string(threads);
        const check::CheckResult r = check::run_check(std::move(req));
        harness::BenchRecord rec = check::to_record(r, cell);
        records.push_back(rec);
        std::cout << cell << ": " << to_string(r.verdict()) << "  "
                  << harness::format_count(r.stats().states_stored)
                  << " states  " << harness::format_time(r.stats().seconds)
                  << "  " << static_cast<std::uint64_t>(rec.states_per_sec)
                  << " states/s  hash passes/queries " << rec.full_hash_passes
                  << "/" << rec.hash_queries << "\n";
      }
    }
    // The distributed series: ranks are the axis instead of threads. r1 is
    // a real distributed run with no peers — pure partition overhead, what
    // the bench_compare.py dist gate holds against full/t1.
    if (w.dist) {
      for (unsigned ranks : {1u, 2u, 4u}) {
        check::CheckRequest req;
        req.model = w.model;
        req.params = w.params;
        req.strategy = "full";
        req.explore = harness::budget_from_env();
        req.explore.visited = visited;
        req.dist_ranks = ranks;
        req.repeat = repeat;
        req.record = false;
        reset_state_hash_counters();
        const std::string cell = w.name + "/dist/r" + std::to_string(ranks);
        const check::CheckResult r = check::run_check(std::move(req));
        harness::BenchRecord rec = check::to_record(r, cell);
        records.push_back(rec);
        std::cout << cell << ": " << to_string(r.verdict()) << "  "
                  << harness::format_count(r.stats().states_stored)
                  << " states  " << harness::format_time(r.stats().seconds)
                  << "  " << static_cast<std::uint64_t>(rec.states_per_sec)
                  << " states/s  forwarded " << rec.forwarded_states
                  << "  wire " << rec.wire_bytes << "B\n";
      }
    }
  }

  if (!harness::write_bench_json(out, records)) {
    std::cerr << "failed to write " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " (" << records.size() << " records)\n";
  return 0;
}
