// Table II of the paper: transition refinement in action.
//
// Every protocol is modelled with quorum transitions and searched with the
// stateful SPOR strategy in four variants: unsplit, reply-split, quorum-split
// and combined-split (all splits generated automatically by src/refine —
// the paper built these models by hand). Cells print result / states / time.
#include <iostream>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"
#include "refine/refine.hpp"

namespace {

using namespace mpb;
using namespace mpb::protocols;
using harness::RunSpec;
using harness::Strategy;

struct Row {
  std::string protocol;
  std::string property;
  Protocol quorum;
};

std::vector<Row> make_rows() {
  std::vector<Row> rows;
  rows.push_back({"Paxos (2,3,1)", "Consensus",
                  make_paxos({.proposers = 2, .acceptors = 3, .learners = 1})});
  rows.push_back({"Faulty Paxos (2,3,1)", "Consensus",
                  make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                              .faulty_learner = true})});
  rows.push_back({"Echo Multicast (3,0,1,1)", "Agreement",
                  make_echo_multicast({.honest_receivers = 3,
                                       .honest_initiators = 0,
                                       .byz_receivers = 1,
                                       .byz_initiators = 1})});
  rows.push_back({"Echo Multicast (2,1,0,1)", "Agreement",
                  make_echo_multicast({.honest_receivers = 2,
                                       .honest_initiators = 1,
                                       .byz_receivers = 0,
                                       .byz_initiators = 1})});
  rows.push_back({"Echo Multicast (3,1,1,1)", "Agreement",
                  make_echo_multicast({.honest_receivers = 3,
                                       .honest_initiators = 1,
                                       .byz_receivers = 1,
                                       .byz_initiators = 1})});
  rows.push_back({"Echo Multicast (2,1,2,1)", "Wrong agreement",
                  make_echo_multicast({.honest_receivers = 2,
                                       .honest_initiators = 1,
                                       .byz_receivers = 2,
                                       .byz_initiators = 1,
                                       .tolerance = 1})});
  rows.push_back({"Regular storage (3,1)", "Regularity",
                  make_regular_storage({.bases = 3, .readers = 1, .writes = 2})});
  rows.push_back({"Regular storage (3,2)", "Wrong regularity",
                  make_regular_storage({.bases = 3, .readers = 2, .writes = 2,
                                        .wrong_regularity = true})});
  return rows;
}

}  // namespace

int main() {
  const ExploreConfig budget = harness::budget_from_env();

  harness::Table table({"Protocol", "Property", "Result", "Quorum (unsplit)",
                        "Reply-split", "Quorum-split", "Combined-split"});

  std::cout << "Table II: transition refinement results (cf. paper Table II)\n"
            << "budget per cell: " << harness::format_count(budget.max_states)
            << " states / " << budget.max_seconds << "s\n\n";

  for (Row& row : make_rows()) {
    RunSpec spec;
    spec.strategy = Strategy::kSpor;
    spec.explore = budget;

    std::cerr << "running " << row.protocol << " ...\n";
    const ExploreResult unsplit = harness::run(row.quorum, spec);
    const ExploreResult rsplit = harness::run(refine::reply_split(row.quorum), spec);
    const ExploreResult qsplit = harness::run(refine::quorum_split(row.quorum), spec);
    const ExploreResult csplit =
        harness::run(refine::combined_split(row.quorum), spec);

    table.add_row({row.protocol, row.property,
                   std::string{to_string(unsplit.verdict)},
                   harness::format_cell(unsplit), harness::format_cell(rsplit),
                   harness::format_cell(qsplit), harness::format_cell(csplit)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout
      << "\nExpected shape (paper): combined-split <= reply-/quorum-split <=\n"
         "unsplit in stored states for Paxos; splits are no-ops where the paper\n"
         "says so (reply-split with one effective initiator, quorum-split when\n"
         "the quorum spans all receivers, both for storage (3,1)).\n";
  return 0;
}
