// Table II of the paper: transition refinement in action.
//
// Every protocol is modelled with quorum transitions and searched with the
// stateful SPOR strategy in four variants: unsplit, reply-split, quorum-split
// and combined-split — the splits are the check facade's `split` knob (all
// generated automatically by src/refine; the paper built these models by
// hand). Cells print result / states / time.
#include <iostream>
#include <vector>

#include "check/check.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace {

using namespace mpb;

struct Row {
  std::string protocol;
  std::string property;
  std::string model;
  check::RawParams params;
};

std::vector<Row> make_rows() {
  return {
      {"Paxos (2,3,1)", "Consensus", "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}}},
      {"Faulty Paxos (2,3,1)", "Consensus", "paxos",
       {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"},
        {"faulty", "true"}}},
      {"Echo Multicast (3,0,1,1)", "Agreement", "echo",
       {{"honest-receivers", "3"}, {"honest-initiators", "0"},
        {"byz-receivers", "1"}, {"byz-initiators", "1"}}},
      {"Echo Multicast (2,1,0,1)", "Agreement", "echo",
       {{"honest-receivers", "2"}, {"honest-initiators", "1"},
        {"byz-receivers", "0"}, {"byz-initiators", "1"}}},
      {"Echo Multicast (3,1,1,1)", "Agreement", "echo",
       {{"honest-receivers", "3"}, {"honest-initiators", "1"},
        {"byz-receivers", "1"}, {"byz-initiators", "1"}}},
      {"Echo Multicast (2,1,2,1)", "Wrong agreement", "echo",
       {{"honest-receivers", "2"}, {"honest-initiators", "1"},
        {"byz-receivers", "2"}, {"byz-initiators", "1"},
        {"tolerance", "1"}}},
      {"Regular storage (3,1)", "Regularity", "storage",
       {{"bases", "3"}, {"readers", "1"}, {"writes", "2"}}},
      {"Regular storage (3,2)", "Wrong regularity", "storage",
       {{"bases", "3"}, {"readers", "2"}, {"writes", "2"},
        {"wrong-regularity", "true"}}},
  };
}

std::string cell(const Row& row, const std::string& split,
                 const ExploreConfig& budget) {
  check::CheckRequest req;
  req.model = row.model;
  req.params = row.params;
  req.strategy = "spor";
  req.split = split;
  req.explore = budget;
  return harness::format_cell(check::run_check(std::move(req)).result);
}

}  // namespace

int main() {
  const ExploreConfig budget = harness::budget_from_env();

  harness::Table table({"Protocol", "Property", "Result", "Quorum (unsplit)",
                        "Reply-split", "Quorum-split", "Combined-split"});

  std::cout << "Table II: transition refinement results (cf. paper Table II)\n"
            << "budget per cell: " << harness::format_count(budget.max_states)
            << " states / " << budget.max_seconds << "s\n\n";

  for (const Row& row : make_rows()) {
    std::cerr << "running " << row.protocol << " ...\n";
    check::CheckRequest unsplit_req;
    unsplit_req.model = row.model;
    unsplit_req.params = row.params;
    unsplit_req.strategy = "spor";
    unsplit_req.explore = budget;
    const check::CheckResult unsplit = check::run_check(std::move(unsplit_req));

    table.add_row({row.protocol, row.property,
                   std::string{to_string(unsplit.verdict())},
                   harness::format_cell(unsplit.result),
                   cell(row, "reply", budget), cell(row, "quorum", budget),
                   cell(row, "combined", budget)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout
      << "\nExpected shape (paper): combined-split <= reply-/quorum-split <=\n"
         "unsplit in stored states for Paxos; splits are no-ops where the paper\n"
         "says so (reply-split with one effective initiator, quorum-split when\n"
         "the quorum spans all receivers, both for storage (3,1)).\n";
  return 0;
}
