// Regular storage audit: check the ABD-style single-writer register against
// (a) regularity — holds — and (b) the deliberately too-strong specification
// from the paper ("a read concurrent with a write must already return it"),
// which yields a counterexample showing the racy schedule. All runs go
// through the check facade; the third case exercises its refinement splits.
#include <iostream>

#include "check/check.hpp"
#include "core/trace.hpp"
#include "harness/runner.hpp"

using namespace mpb;

namespace {

check::CheckRequest storage_request(bool wrong_regularity) {
  check::CheckRequest req;
  req.model = "storage";
  req.params = {{"bases", "3"}, {"readers", "1"}, {"writes", "2"}};
  if (wrong_regularity) req.params["wrong-regularity"] = "true";
  req.strategy = "spor";
  req.explore = harness::budget_from_env();
  return req;
}

}  // namespace

int main() {
  std::cout << "Regular storage over 3 base objects (majority quorums)\n\n";

  {
    const check::CheckResult r = check::run_check(storage_request(false));
    std::cout << "[1] regularity, setting (3,1): " << to_string(r.verdict())
              << "  (" << harness::format_count(r.stats().states_stored)
              << " states, " << harness::format_time(r.stats().seconds)
              << ")\n";
  }

  {
    const check::CheckResult r = check::run_check(storage_request(true));
    std::cout << "[2] wrong regularity (too strong), setting (3,1): "
              << to_string(r.verdict()) << "\n\n";
    if (r.verdict() == Verdict::kViolated) {
      std::cout << "The spec demands a concurrent write be visible before it\n"
                   "completes; the checker found this racy schedule:\n\n";
      print_counterexample(std::cout, r.protocol, r.result);
      std::cout << "replay check: "
                << (replay_counterexample(r.protocol, r.result) ? "valid"
                                                                : "INVALID")
                << "\n\n";
    }
  }

  {
    // Bonus: the refinement machinery on the storage model — reply-split is
    // a no-op here (single effective reader per base, matching the paper's
    // observation for storage (3,1)) while quorum-split still helps.
    const check::CheckResult a = check::run_check(storage_request(false));
    check::CheckRequest split_req = storage_request(false);
    split_req.split = "combined";
    const check::CheckResult b = check::run_check(std::move(split_req));
    std::cout << "[3] refinement on storage (3,1): unsplit "
              << harness::format_count(a.stats().states_stored) << " states vs "
              << "combined-split "
              << harness::format_count(b.stats().states_stored)
              << " states (reply-split alone is a no-op, as the paper notes "
                 "for this setting)\n";
  }
  return 0;
}
