// Regular storage audit: check the ABD-style single-writer register against
// (a) regularity — holds — and (b) the deliberately too-strong specification
// from the paper ("a read concurrent with a write must already return it"),
// which yields a counterexample showing the racy schedule.
#include <iostream>

#include "core/trace.hpp"
#include "harness/runner.hpp"
#include "protocols/storage/storage.hpp"
#include "refine/refine.hpp"

using namespace mpb;
using protocols::make_regular_storage;
using protocols::StorageConfig;

int main() {
  std::cout << "Regular storage over 3 base objects (majority quorums)\n\n";

  {
    StorageConfig cfg{.bases = 3, .readers = 1, .writes = 2};
    Protocol proto = make_regular_storage(cfg);
    harness::RunSpec spec;
    spec.strategy = harness::Strategy::kSpor;
    spec.explore = harness::budget_from_env();
    const ExploreResult r = harness::run(proto, spec);
    std::cout << "[1] regularity, setting " << cfg.setting() << ": "
              << to_string(r.verdict) << "  ("
              << harness::format_count(r.stats.states_stored) << " states, "
              << harness::format_time(r.stats.seconds) << ")\n";
  }

  {
    StorageConfig cfg{.bases = 3, .readers = 1, .writes = 2,
                      .wrong_regularity = true};
    Protocol proto = make_regular_storage(cfg);
    harness::RunSpec spec;
    spec.strategy = harness::Strategy::kSpor;
    spec.explore = harness::budget_from_env();
    const ExploreResult r = harness::run(proto, spec);
    std::cout << "[2] wrong regularity (too strong), setting " << cfg.setting()
              << ": " << to_string(r.verdict) << "\n\n";
    if (r.verdict == Verdict::kViolated) {
      std::cout << "The spec demands a concurrent write be visible before it\n"
                   "completes; the checker found this racy schedule:\n\n";
      print_counterexample(std::cout, proto, r);
      std::cout << "replay check: "
                << (replay_counterexample(proto, r) ? "valid" : "INVALID")
                << "\n\n";
    }
  }

  {
    // Bonus: the refinement machinery on the storage model — reply-split is
    // a no-op here (single effective reader per base, matching the paper's
    // observation for storage (3,1)) while quorum-split still helps.
    StorageConfig cfg{.bases = 3, .readers = 1, .writes = 2};
    Protocol proto = make_regular_storage(cfg);
    Protocol split = refine::combined_split(proto);
    harness::RunSpec spec;
    spec.strategy = harness::Strategy::kSpor;
    spec.explore = harness::budget_from_env();
    const ExploreResult a = harness::run(proto, spec);
    const ExploreResult b = harness::run(split, spec);
    std::cout << "[3] refinement on storage (3,1): unsplit "
              << harness::format_count(a.stats.states_stored) << " states vs "
              << "combined-split " << harness::format_count(b.stats.states_stored)
              << " states (reply-split alone is a no-op, as the paper notes "
                 "for this setting)\n";
  }
  return 0;
}
