// Model check single-decree Paxos in every flavour the paper evaluates:
// quorum vs single-message model, unsplit vs refined, correct vs faulty.
//
// Usage: paxos_explore [P A L] [--single-message] [--faulty] [--split MODE]
//                      [--strategy S]
//   P A L        process counts (default 1 3 1; the paper's table uses 2 3 1)
//   --single-message  use the Fig. 3 counting model instead of quorum
//   --faulty          inject the paper's learner bug ("Faulty Paxos")
//   --split MODE      none | reply | quorum | combined   (default none)
//   --strategy S      full | spor | dpor                 (default spor)
#include <cstring>
#include <iostream>
#include <string>

#include "core/trace.hpp"
#include "harness/runner.hpp"
#include "protocols/paxos/paxos.hpp"
#include "refine/refine.hpp"

using namespace mpb;
using protocols::make_paxos;
using protocols::PaxosConfig;

int main(int argc, char** argv) {
  PaxosConfig cfg{.proposers = 1, .acceptors = 3, .learners = 1};
  std::string split = "none";
  std::string strategy = "spor";

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--single-message") {
      cfg.quorum_model = false;
    } else if (arg == "--faulty") {
      cfg.faulty_learner = true;
    } else if (arg == "--split" && i + 1 < argc) {
      split = argv[++i];
    } else if (arg == "--strategy" && i + 1 < argc) {
      strategy = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      const unsigned v = static_cast<unsigned>(std::stoul(arg));
      if (positional == 0) cfg.proposers = v;
      if (positional == 1) cfg.acceptors = v;
      if (positional == 2) cfg.learners = v;
      ++positional;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  Protocol proto = make_paxos(cfg);
  if (split == "reply") {
    proto = refine::reply_split(proto);
  } else if (split == "quorum") {
    proto = refine::quorum_split(proto);
  } else if (split == "combined") {
    proto = refine::combined_split(proto);
  } else if (split != "none") {
    std::cerr << "unknown split mode: " << split << "\n";
    return 2;
  }

  harness::RunSpec spec;
  if (strategy == "full") {
    spec.strategy = harness::Strategy::kUnreducedStateful;
  } else if (strategy == "spor") {
    spec.strategy = harness::Strategy::kSpor;
  } else if (strategy == "dpor") {
    if (cfg.quorum_model) {
      std::cerr << "note: the paper pairs DPOR with single-message models; "
                   "pass --single-message for a faithful run\n";
    }
    spec.strategy = harness::Strategy::kDpor;
  } else {
    std::cerr << "unknown strategy: " << strategy << "\n";
    return 2;
  }
  spec.explore = harness::budget_from_env();

  std::cout << "Model: " << proto.name() << "  (" << proto.n_procs()
            << " processes, " << proto.n_transitions() << " transitions, quorum="
            << cfg.majority() << ")\n";
  std::cout << "Strategy: " << harness::to_string(spec.strategy) << "\n\n";

  const ExploreResult r = harness::run(proto, spec);

  std::cout << "Verdict:          " << to_string(r.verdict) << "\n"
            << "States stored:    " << harness::format_count(r.stats.states_stored)
            << "\n"
            << "Events executed:  "
            << harness::format_count(r.stats.events_executed) << "\n"
            << "Terminal states:  "
            << harness::format_count(r.stats.terminal_states) << "\n"
            << "Max depth:        " << r.stats.max_depth_seen << "\n"
            << "Time:             " << harness::format_time(r.stats.seconds) << "\n";

  if (r.verdict == Verdict::kViolated) {
    std::cout << "\nThe consensus property is violated; counterexample:\n\n";
    print_counterexample(std::cout, proto, r);
    std::cout << "\nReplay check: "
              << (replay_counterexample(proto, r) ? "counterexample is valid"
                                                  : "REPLAY FAILED (bug!)")
              << "\n";
  }
  return r.verdict == Verdict::kViolated ? 1 : 0;
}
