// Model check single-decree Paxos in every flavour the paper evaluates:
// quorum vs single-message model, unsplit vs refined, correct vs faulty —
// entirely through the check facade: the model is named, not #include-d.
//
// Usage: paxos_explore [P A L] [--single-message] [--faulty] [--split MODE]
//                      [--strategy S]
//   P A L        process counts (default 1 3 1; the paper's table uses 2 3 1)
//   --single-message  use the Fig. 3 counting model instead of quorum
//   --faulty          inject the paper's learner bug ("Faulty Paxos")
//   --split MODE      none | reply | quorum | combined   (default none)
//   --strategy S      full | spor | dpor                 (default spor)
#include <iostream>
#include <string>

#include "check/check.hpp"
#include "core/trace.hpp"
#include "harness/runner.hpp"

using namespace mpb;

int main(int argc, char** argv) {
  check::CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "1"}, {"acceptors", "3"}, {"learners", "1"}};
  req.explore = harness::budget_from_env();

  bool single_message = false;
  unsigned acceptors = 3;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--single-message") {
      single_message = true;
      req.params["single-message"] = "true";
    } else if (arg == "--faulty") {
      req.params["faulty"] = "true";
    } else if (arg == "--split" && i + 1 < argc) {
      req.split = argv[++i];
    } else if (arg == "--strategy" && i + 1 < argc) {
      req.strategy = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      if (positional == 0) req.params["proposers"] = arg;
      if (positional == 1) {
        req.params["acceptors"] = arg;
        acceptors = static_cast<unsigned>(std::stoul(arg));
      }
      if (positional == 2) req.params["learners"] = arg;
      ++positional;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (req.strategy == "dpor" && !single_message) {
    std::cerr << "note: the paper pairs DPOR with single-message models; "
                 "pass --single-message for a faithful run\n";
  }

  try {
    check::Checker checker(std::move(req));
    const Protocol& proto = checker.protocol();
    std::cout << "Model: " << proto.name() << "  (" << proto.n_procs()
              << " processes, " << proto.n_transitions()
              << " transitions, quorum=" << acceptors / 2 + 1 << ")\n";

    const check::CheckResult r = checker.run();
    std::cout << "Strategy: " << r.strategy << "\n\n";

    std::cout << "Verdict:          " << to_string(r.verdict()) << "\n"
              << "States stored:    "
              << harness::format_count(r.stats().states_stored) << "\n"
              << "Events executed:  "
              << harness::format_count(r.stats().events_executed) << "\n"
              << "Terminal states:  "
              << harness::format_count(r.stats().terminal_states) << "\n"
              << "Max depth:        " << r.stats().max_depth_seen << "\n"
              << "Time:             " << harness::format_time(r.stats().seconds)
              << "\n";

    if (r.verdict() == Verdict::kViolated) {
      std::cout << "\nThe consensus property is violated; counterexample:\n\n";
      print_counterexample(std::cout, r.protocol, r.result);
      std::cout << "\nReplay check: "
                << (replay_counterexample(r.protocol, r.result)
                        ? "counterexample is valid"
                        : "REPLAY FAILED (bug!)")
                << "\n";
    }
    return r.verdict() == Verdict::kViolated ? 1 : 0;
  } catch (const check::CheckError& e) {
    std::cerr << "paxos_explore: " << e.what() << "\n";
    return 2;
  }
}
