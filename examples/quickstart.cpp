// Quickstart: define a small message-passing protocol in the MP API, model
// check an invariant, and inspect the results.
//
// The protocol is a toy two-phase commit: a coordinator asks two participants
// to vote; it commits only when *both* vote yes (a quorum transition with
// threshold 2) and aborts on any no-vote. The invariant says the coordinator
// never commits when some participant voted no.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "check/check.hpp"
#include "core/trace.hpp"
#include "mp/builder.hpp"

using namespace mpb;

namespace {

// Participant 1 votes yes; participant 0's vote is chosen nondeterministically
// (two spontaneous transitions guarded on the same flag).
Protocol make_two_phase_commit() {
  mp::ProtocolBuilder b("two-phase-commit");
  const MsgType mVOTE = b.msg("VOTE");

  const ProcessId coord = b.process("coordinator", "Coordinator",
                                    {{"decision", 0}});  // 0=?, 1=commit, 2=abort
  const ProcessId part0 = b.process("participant0", "Participant", {{"voted", 0}});
  const ProcessId part1 = b.process("participant1", "Participant", {{"voted", 0}});
  const ProcessMask participants = mask_of(part0) | mask_of(part1);

  for (ProcessId p : {part0, part1}) {
    b.transition(p, "VOTE_YES")
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[0] == 0; })
        .effect([=](EffectCtx& c) {
          c.set_local(0, 1);
          c.send(coord, mVOTE, {1});
        })
        .sends("VOTE", mask_of(coord))
        .priority(2);
  }
  // Only participant0 may vote no — one nondeterministic choice is enough to
  // exercise both decision paths.
  b.transition(part0, "VOTE_NO")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([=](EffectCtx& c) {
        c.set_local(0, 2);
        c.send(coord, mVOTE, {0});
      })
      .sends("VOTE", mask_of(coord))
      .priority(2);

  // Quorum transition: both votes arrive in one atomic step (Section II of
  // the paper: this is what MP adds over single-message actor languages).
  b.transition(coord, "VOTE")
      .consumes("VOTE", 2)
      .from(participants)
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) {
        const bool all_yes = c.consumed()[0][0] == 1 && c.consumed()[1][0] == 1;
        c.set_local(0, all_yes ? 1 : 2);
      })
      .visible()
      .priority(1);

  // Invariant: a commit implies nobody voted no.
  b.property("commit_implies_unanimous_yes",
             [=](const State& s, const Protocol& proto) {
               const Value decision =
                   s.local_slice(proto.proc(coord).local_offset, 1)[0];
               if (decision != 1) return true;
               for (ProcessId p : {part0, part1}) {
                 if (s.local_slice(proto.proc(p).local_offset, 1)[0] == 2) {
                   return false;
                 }
               }
               return true;
             });
  return b.build();
}

}  // namespace

int main() {
  Protocol proto = make_two_phase_commit();

  std::cout << "Protocol: " << proto.name() << " with " << proto.n_procs()
            << " processes and " << proto.n_transitions() << " transitions\n\n";
  std::cout << "Initial state:\n";
  print_state(std::cout, proto, proto.initial());

  // The check facade runs a request end to end; a bespoke builder-made
  // protocol plugs in through CheckRequest::protocol (registry models would
  // use the (model, params) pair instead).
  check::CheckRequest req;
  req.protocol = proto;

  // 1. Plain exhaustive search.
  req.strategy = "full";
  const check::CheckResult full = check::run_check(req);
  std::cout << "\nUnreduced search:  verdict=" << to_string(full.verdict())
            << "  states=" << full.stats().states_stored
            << "  events=" << full.stats().events_executed
            << "  terminal=" << full.stats().terminal_states << "\n";

  // 2. The same search under stubborn-set partial-order reduction.
  req.strategy = "spor";
  const check::CheckResult reduced = check::run_check(req);
  std::cout << "SPOR search:       verdict=" << to_string(reduced.verdict())
            << "  states=" << reduced.stats().states_stored
            << "  events=" << reduced.stats().events_executed << "\n";

  std::cout << "\nBoth verdicts agree and the property '"
            << proto.properties()[0].name << "' "
            << (full.verdict() == Verdict::kHolds ? "holds" : "is violated")
            << " in every reachable state.\n";
  return full.verdict() == Verdict::kHolds ? 0 : 1;
}
