// Echo Multicast under Byzantine attack: an equivocating initiator and a
// colluding double-echoing receiver try to make honest receivers accept
// different values.
//
// The example runs two deployments of the same attack through the check
// facade (the model is resolved by name from the registry):
//  1. correctly provisioned (threshold sized for the real number of
//     Byzantine receivers)  -> agreement verified;
//  2. under-provisioned (the paper's "wrong agreement" setting: tolerance
//     below the actual faults) -> counterexample, printed as a step-by-step
//     attack trace.
#include <iostream>
#include <string>

#include "check/check.hpp"
#include "core/trace.hpp"
#include "harness/runner.hpp"
#include "protocols/echo/echo.hpp"

using namespace mpb;

namespace {

// Same fault load in both cases; only the provisioned tolerance differs.
constexpr unsigned kHonestReceivers = 2;
constexpr unsigned kByzReceivers = 2;

void run_case(int tolerance, bool expect_attack_succeeds) {
  // The checking itself goes through the registry; the config struct is used
  // only as the single source of truth for the derived threshold we print.
  const protocols::EchoConfig cfg{.honest_receivers = kHonestReceivers,
                                  .honest_initiators = 1,
                                  .byz_receivers = kByzReceivers,
                                  .byz_initiators = 1,
                                  .tolerance = tolerance};

  check::CheckRequest req;
  req.model = "echo";
  req.params = {{"honest-receivers", std::to_string(cfg.honest_receivers)},
                {"honest-initiators", std::to_string(cfg.honest_initiators)},
                {"byz-receivers", std::to_string(cfg.byz_receivers)},
                {"byz-initiators", std::to_string(cfg.byz_initiators)},
                {"tolerance", std::to_string(cfg.tolerance)}};
  req.strategy = "spor";
  req.explore = harness::budget_from_env();

  check::Checker checker(std::move(req));
  std::cout << "=== " << checker.protocol().name() << " ===\n"
            << "receivers: " << cfg.n_receivers() << " (" << cfg.byz_receivers
            << " Byzantine), echo threshold: " << cfg.threshold()
            << " (sized for t=" << cfg.effective_tolerance() << ")\n";

  const check::CheckResult r = checker.run();

  std::cout << "verdict: " << to_string(r.verdict()) << "  states "
            << harness::format_count(r.stats().states_stored) << "  time "
            << harness::format_time(r.stats().seconds) << "\n";

  if (r.verdict() == Verdict::kViolated) {
    std::cout << "\nThe equivocation attack succeeded; trace:\n\n";
    print_counterexample(std::cout, r.protocol, r.result);
    std::cout << "replay check: "
              << (replay_counterexample(r.protocol, r.result) ? "valid"
                                                              : "INVALID")
              << "\n";
  }
  std::cout << (expect_attack_succeeds
                    ? (r.verdict() == Verdict::kViolated
                           ? "[as expected: the threshold is too low]\n\n"
                           : "[UNEXPECTED: attack should have succeeded]\n\n")
                    : (r.verdict() == Verdict::kHolds
                           ? "[as expected: quorum intersection defeats the attack]\n\n"
                           : "[UNEXPECTED: agreement should hold]\n\n"));
}

}  // namespace

int main() {
  std::cout << "Echo Multicast (Reiter '94) under an equivocation attack\n\n";

  run_case(/*tolerance=*/-1, /*expect_attack_succeeds=*/false);
  // Provisioned for one Byzantine receiver; there are two.
  run_case(/*tolerance=*/1, /*expect_attack_succeeds=*/true);
  return 0;
}
