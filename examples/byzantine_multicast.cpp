// Echo Multicast under Byzantine attack: an equivocating initiator and a
// colluding double-echoing receiver try to make honest receivers accept
// different values.
//
// The example runs two deployments of the same attack:
//  1. correctly provisioned (threshold sized for the real number of
//     Byzantine receivers)  -> agreement verified;
//  2. under-provisioned (the paper's "wrong agreement" setting: tolerance
//     below the actual faults) -> counterexample, printed as a step-by-step
//     attack trace.
#include <iostream>

#include "core/trace.hpp"
#include "harness/runner.hpp"
#include "protocols/echo/echo.hpp"

using namespace mpb;
using protocols::EchoConfig;
using protocols::make_echo_multicast;

namespace {

void run_case(const EchoConfig& cfg, bool expect_attack_succeeds) {
  Protocol proto = make_echo_multicast(cfg);
  std::cout << "=== " << proto.name() << " ===\n"
            << "receivers: " << cfg.n_receivers() << " (" << cfg.byz_receivers
            << " Byzantine), echo threshold: " << cfg.threshold()
            << " (sized for t=" << cfg.effective_tolerance() << ")\n";

  harness::RunSpec spec;
  spec.strategy = harness::Strategy::kSpor;
  spec.explore = harness::budget_from_env();
  const ExploreResult r = harness::run(proto, spec);

  std::cout << "verdict: " << to_string(r.verdict) << "  states "
            << harness::format_count(r.stats.states_stored) << "  time "
            << harness::format_time(r.stats.seconds) << "\n";

  if (r.verdict == Verdict::kViolated) {
    std::cout << "\nThe equivocation attack succeeded; trace:\n\n";
    print_counterexample(std::cout, proto, r);
    std::cout << "replay check: "
              << (replay_counterexample(proto, r) ? "valid" : "INVALID") << "\n";
  }
  std::cout << (expect_attack_succeeds
                    ? (r.verdict == Verdict::kViolated
                           ? "[as expected: the threshold is too low]\n\n"
                           : "[UNEXPECTED: attack should have succeeded]\n\n")
                    : (r.verdict == Verdict::kHolds
                           ? "[as expected: quorum intersection defeats the attack]\n\n"
                           : "[UNEXPECTED: agreement should hold]\n\n"));
}

}  // namespace

int main() {
  std::cout << "Echo Multicast (Reiter '94) under an equivocation attack\n\n";

  // Same fault load (2 honest receivers, 2 Byzantine receivers, 1 Byzantine
  // initiator, 1 honest initiator) — only the threshold differs.
  EchoConfig correct{.honest_receivers = 2, .honest_initiators = 1,
                     .byz_receivers = 2, .byz_initiators = 1};
  EchoConfig wrong = correct;
  wrong.tolerance = 1;  // provisioned for one Byzantine receiver; there are two

  run_case(correct, /*expect_attack_succeeds=*/false);
  run_case(wrong, /*expect_attack_succeeds=*/true);
  return 0;
}
