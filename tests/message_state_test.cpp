#include <gtest/gtest.h>

#include "core/message.hpp"
#include "core/state.hpp"

namespace mpb {
namespace {

Message msg(MsgType t, ProcessId from, ProcessId to, std::initializer_list<Value> p = {}) {
  return Message(t, from, to, p);
}

TEST(Message, StoresFields) {
  const Message m(3, 1, 2, {10, 20});
  EXPECT_EQ(m.type(), 3);
  EXPECT_EQ(m.sender(), 1);
  EXPECT_EQ(m.receiver(), 2);
  EXPECT_EQ(m.payload_size(), 2u);
  EXPECT_EQ(m[0], 10);
  EXPECT_EQ(m[1], 20);
}

TEST(Message, EqualityIncludesPayload) {
  EXPECT_EQ(msg(1, 0, 1, {5}), msg(1, 0, 1, {5}));
  EXPECT_NE(msg(1, 0, 1, {5}), msg(1, 0, 1, {6}));
  EXPECT_NE(msg(1, 0, 1, {5}), msg(1, 0, 1, {5, 0}));
  EXPECT_NE(msg(1, 0, 1, {5}), msg(2, 0, 1, {5}));
  EXPECT_NE(msg(1, 0, 1, {5}), msg(1, 2, 1, {5}));
}

TEST(Message, OrderingGroupsByReceiverThenType) {
  // receiver dominates
  EXPECT_LT(msg(5, 0, 1), msg(0, 0, 2));
  // then type
  EXPECT_LT(msg(1, 3, 2), msg(2, 0, 2));
  // then sender
  EXPECT_LT(msg(1, 0, 2), msg(1, 1, 2));
  // then payload
  EXPECT_LT(msg(1, 0, 2, {1}), msg(1, 0, 2, {2}));
  EXPECT_LT(msg(1, 0, 2, {}), msg(1, 0, 2, {0}));
}

TEST(Message, HashFeedDistinguishes) {
  auto h = [](const Message& m) {
    Hasher64 hh;
    m.feed(hh);
    return hh.digest();
  };
  EXPECT_EQ(h(msg(1, 0, 1, {5})), h(msg(1, 0, 1, {5})));
  EXPECT_NE(h(msg(1, 0, 1, {5})), h(msg(1, 0, 1, {6})));
  EXPECT_NE(h(msg(1, 0, 1)), h(msg(1, 1, 0)));
}

TEST(State, NetworkIsKeptSorted) {
  State s({}, {msg(2, 0, 1), msg(1, 0, 1), msg(1, 0, 0)});
  ASSERT_EQ(s.network_size(), 3u);
  EXPECT_TRUE(std::is_sorted(s.network().begin(), s.network().end()));
  s.add_message(msg(0, 0, 0));
  EXPECT_TRUE(std::is_sorted(s.network().begin(), s.network().end()));
  EXPECT_EQ(s.network().front(), msg(0, 0, 0));
}

TEST(State, RemoveMessageRemovesOneCopy) {
  State s({}, {msg(1, 0, 1), msg(1, 0, 1)});
  EXPECT_TRUE(s.remove_message(msg(1, 0, 1)));
  EXPECT_EQ(s.network_size(), 1u);
  EXPECT_TRUE(s.remove_message(msg(1, 0, 1)));
  EXPECT_EQ(s.network_size(), 0u);
  EXPECT_FALSE(s.remove_message(msg(1, 0, 1)));
}

TEST(State, RemoveAbsentMessageFails) {
  State s({}, {msg(1, 0, 1)});
  EXPECT_FALSE(s.remove_message(msg(2, 0, 1)));
  EXPECT_EQ(s.network_size(), 1u);
}

TEST(State, PendingRangeFindsContiguousPool) {
  State s({}, {msg(1, 0, 2), msg(1, 1, 2), msg(2, 0, 2), msg(1, 0, 1)});
  const auto [lo, hi] = s.pending_range(2, 1);
  EXPECT_EQ(hi - lo, 2u);
  for (std::size_t i = lo; i < hi; ++i) {
    EXPECT_EQ(s.network()[i].receiver(), 2);
    EXPECT_EQ(s.network()[i].type(), 1);
  }
}

TEST(State, PendingRangeEmptyWhenNoMatch) {
  State s({}, {msg(1, 0, 1)});
  const auto [lo, hi] = s.pending_range(2, 1);
  EXPECT_EQ(lo, hi);
}

TEST(State, EqualityIsStructural) {
  // Same multiset in different construction order.
  State a({1, 2}, {msg(1, 0, 1), msg(2, 0, 1)});
  State b({1, 2}, {msg(2, 0, 1), msg(1, 0, 1)});
  EXPECT_EQ(a, b);
  State c({1, 3}, {msg(1, 0, 1), msg(2, 0, 1)});
  EXPECT_FALSE(a == c);
}

TEST(State, HashAgreesWithEquality) {
  State a({1, 2}, {msg(1, 0, 1)});
  State b({1, 2}, {msg(1, 0, 1)});
  State c({1, 2}, {msg(1, 0, 1), msg(1, 0, 1)});  // extra copy
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(State, MultisetMultiplicityAffectsEquality) {
  State a({}, {msg(1, 0, 1)});
  State b({}, {msg(1, 0, 1), msg(1, 0, 1)});
  EXPECT_FALSE(a == b);
}

TEST(State, FingerprintStableAndDiscriminating) {
  State a({5}, {msg(1, 0, 1)});
  State b({5}, {msg(1, 0, 1)});
  State c({6}, {msg(1, 0, 1)});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(State, LocalSlices) {
  State s({10, 20, 30}, {});
  auto slice = s.local_slice(1, 2);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0], 20);
  EXPECT_EQ(slice[1], 30);
  s.local_slice_mut(0, 1)[0] = 11;
  EXPECT_EQ(s.locals()[0], 11);
}

TEST(State, StrictWeakOrderForSetComparison) {
  State a({1}, {});
  State b({2}, {});
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
  State c({1}, {msg(1, 0, 0)});
  EXPECT_TRUE(a < c || c < a);
}

}  // namespace
}  // namespace mpb
