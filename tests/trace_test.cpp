#include <gtest/gtest.h>

#include <sstream>

#include "core/trace.hpp"
#include "por/spor.hpp"
#include "protocols/paxos/paxos.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using protocols::make_paxos;
using testing::make_ping_pong;

TEST(Trace, FormatMessage) {
  Protocol proto = make_ping_pong();
  const MsgType ping = proto.find_msg_type("PING").value();
  const Message m(ping, 0, 1, {42});
  EXPECT_EQ(format_message(proto, m), "PING(42) alice -> bob");
}

TEST(Trace, FormatEventSpontaneous) {
  Protocol proto = make_ping_pong();
  Event e{0, {}};  // alice.SEND
  EXPECT_EQ(format_event(proto, e), "alice.SEND");
}

TEST(Trace, FormatEventWithConsumption) {
  Protocol proto = make_ping_pong();
  const MsgType ping = proto.find_msg_type("PING").value();
  Event e{1, {Message(ping, 0, 1, {42})}};
  const std::string s = format_event(proto, e);
  EXPECT_NE(s.find("bob.PING"), std::string::npos);
  EXPECT_NE(s.find("PING(42)"), std::string::npos);
}

TEST(Trace, PrintStateListsProcessesAndNetwork) {
  Protocol proto = make_ping_pong();
  std::ostringstream os;
  print_state(os, proto, proto.initial());
  const std::string out = os.str();
  EXPECT_NE(out.find("alice: sent=0 done=0"), std::string::npos);
  EXPECT_NE(out.find("bob:"), std::string::npos);
  EXPECT_NE(out.find("network: (empty)"), std::string::npos);
}

TEST(Trace, PrintCounterexampleOnViolation) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                               .faulty_learner = true});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult r = explore(proto, cfg, &strategy);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  std::ostringstream os;
  print_counterexample(os, proto, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("Counterexample for property 'consensus'"), std::string::npos);
  EXPECT_NE(out.find("Step 1:"), std::string::npos);
  EXPECT_NE(out.find("Initial state:"), std::string::npos);
}

TEST(Trace, PrintCounterexampleWithoutViolation) {
  Protocol proto = make_ping_pong();
  ExploreResult r = explore_full(proto);
  std::ostringstream os;
  print_counterexample(os, proto, r);
  EXPECT_NE(os.str().find("no counterexample"), std::string::npos);
}

TEST(Trace, ReplayAcceptsGenuineCounterexample) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                               .faulty_learner = true});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult r = explore(proto, cfg, &strategy);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(Trace, ReplayRejectsTamperedTrace) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                               .faulty_learner = true});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult r = explore(proto, cfg, &strategy);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  ASSERT_GE(r.counterexample.size(), 2u);

  // Drop a step: replay must fail.
  ExploreResult truncated = r;
  truncated.counterexample.erase(truncated.counterexample.begin());
  EXPECT_FALSE(replay_counterexample(proto, truncated));

  // Wrong property name: replay must fail.
  ExploreResult renamed = r;
  renamed.violated_property = "does_not_exist";
  EXPECT_FALSE(replay_counterexample(proto, renamed));

  // Non-violating run: replay must fail.
  ExploreResult not_violated = r;
  not_violated.verdict = Verdict::kHolds;
  EXPECT_FALSE(replay_counterexample(proto, not_violated));
}

TEST(Trace, ReplayRejectsForgedFinalState) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                               .faulty_learner = true});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult r = explore(proto, cfg, &strategy);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  ExploreResult forged = r;
  // Swap the recorded final state for the initial one.
  forged.counterexample.back().after = proto.initial();
  EXPECT_FALSE(replay_counterexample(proto, forged));
}

}  // namespace
}  // namespace mpb
