#include <gtest/gtest.h>

#include "core/enabled.hpp"
#include "por/spor.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/paxos/paxos.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using testing::make_fig4_refined;
using testing::make_fig4_unrefined;
using testing::make_small_quorum;

ExploreResult run_spor(const Protocol& proto, SporOptions opts = {}) {
  SporStrategy strategy(proto, opts);
  ExploreConfig cfg;
  return explore(proto, cfg, &strategy);
}

TEST(Spor, Fig4RefinedReduces) {
  Protocol proto = make_fig4_refined();
  ExploreResult reduced = run_spor(proto);
  ExploreResult full = explore_full(proto);
  EXPECT_EQ(reduced.verdict, Verdict::kHolds);
  // Independent t1/t2: the reduced graph must be strictly smaller.
  EXPECT_LT(reduced.stats.states_stored, full.stats.states_stored);
}

TEST(Spor, Fig4UnrefinedCannotReduce) {
  Protocol proto = make_fig4_unrefined();
  ExploreResult reduced = run_spor(proto);
  ExploreResult full = explore_full(proto);
  // All nondeterminism lives in a single transition: both alternatives must
  // be explored and no event can be dropped.
  EXPECT_EQ(reduced.stats.states_stored, full.stats.states_stored);
}

TEST(Spor, StubbornSetContainsSeed) {
  Protocol proto = make_fig4_refined();
  SporStrategy strategy(proto);
  auto events = enumerate_events(proto, proto.initial());
  auto stubborn = strategy.stubborn_set(proto.initial(), events);
  ASSERT_FALSE(stubborn.empty());
  // Seed (highest priority) is t2 (priority 2).
  EXPECT_EQ(proto.transition(stubborn.front()).name,
            std::string("t2"));
}

TEST(Spor, StubbornSetOfIndependentSeedIsSingleton) {
  Protocol proto = make_fig4_refined();
  SporStrategy strategy(proto);
  auto events = enumerate_events(proto, proto.initial());
  auto stubborn = strategy.stubborn_set(proto.initial(), events);
  // t2 enables t3 (different process), t3's producers = {t2} (already in),
  // nothing else is dependent: {t2} suffices.
  EXPECT_EQ(stubborn.size(), 1u);
}

TEST(Spor, SelectsSubsetOfEvents) {
  Protocol proto = make_small_quorum();
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult r = explore(proto, cfg, &strategy);
  EXPECT_LE(r.stats.events_selected, r.stats.events_enabled);
}

TEST(Spor, VerdictMatchesUnreducedOnSmallQuorum) {
  Protocol proto = make_small_quorum();
  EXPECT_EQ(run_spor(proto).verdict, explore_full(proto).verdict);
}

TEST(Spor, DeadlockPreservation) {
  // Every terminal state of the full search must appear in the reduced one.
  for (const Protocol& proto :
       {make_small_quorum(), make_fig4_refined(), make_fig4_unrefined(),
        protocols::make_collector({.senders = 4, .quorum = 2})}) {
    ExploreConfig cfg;
    cfg.collect_terminals = true;
    ExploreResult full = explore(proto, cfg, nullptr);
    SporStrategy strategy(proto);
    ExploreResult reduced = explore(proto, cfg, &strategy);
    EXPECT_EQ(full.terminal_fingerprints, reduced.terminal_fingerprints)
        << proto.name();
  }
}

TEST(Spor, ReducedStatesAreSubsetOfReachable) {
  Protocol proto = make_small_quorum();
  // Count: reduced stored states <= full stored states always.
  ExploreResult full = explore_full(proto);
  ExploreResult reduced = run_spor(proto);
  EXPECT_LE(reduced.stats.states_stored, full.stats.states_stored);
}

TEST(Spor, SeedHeuristicChangesSeed) {
  Protocol proto = make_fig4_refined();
  SporOptions opposite;  // default: highest priority
  SporOptions transaction;
  transaction.seed = SeedHeuristic::kTransaction;
  SporStrategy a(proto, opposite), b(proto, transaction);
  auto events = enumerate_events(proto, proto.initial());
  auto sa = a.stubborn_set(proto.initial(), events);
  auto sb = b.stubborn_set(proto.initial(), events);
  // Opposite-transaction seeds t2 (prio 2); transaction seeds t1 (prio 1).
  EXPECT_NE(proto.transition(sa.front()).name, proto.transition(sb.front()).name);
}

TEST(Spor, AllHeuristicsSoundOnPaxos) {
  Protocol proto = protocols::make_paxos(
      protocols::PaxosConfig{.proposers = 1, .acceptors = 3, .learners = 1});
  const Verdict expected = explore_full(proto).verdict;
  for (SeedHeuristic h : {SeedHeuristic::kOppositeTransaction,
                          SeedHeuristic::kTransaction, SeedHeuristic::kFirst}) {
    SporOptions opts;
    opts.seed = h;
    EXPECT_EQ(run_spor(proto, opts).verdict, expected) << to_string(h);
  }
}

TEST(Spor, NetModeNeverBeatsSoundness) {
  Protocol proto = protocols::make_collector({.senders = 4, .quorum = 3});
  SporOptions net;      // state_dependent_nes = true (LPOR-NET)
  SporOptions plain;
  plain.state_dependent_nes = false;  // plain LPOR
  ExploreConfig cfg;
  cfg.collect_terminals = true;
  SporStrategy snet(proto, net), splain(proto, plain);
  ExploreResult rnet = explore(proto, cfg, &snet);
  ExploreResult rplain = explore(proto, cfg, &splain);
  ExploreResult full = explore(proto, cfg, nullptr);
  EXPECT_EQ(rnet.terminal_fingerprints, full.terminal_fingerprints);
  EXPECT_EQ(rplain.terminal_fingerprints, full.terminal_fingerprints);
  // NET (state-dependent NES) can only shrink stubborn sets.
  EXPECT_LE(rnet.stats.events_selected, rplain.stats.events_selected);
}

// Two independent processes each setting a flag; the property is violated
// only in the intermediate state of one interleaving order. Without the
// visibility proviso the reduction would explore a single order and could
// miss the violating intermediate state.
Protocol make_visible_race() {
  mp::ProtocolBuilder b("visible-race");
  const ProcessId p = b.process("p", "P", {{"x", 0}});
  const ProcessId q = b.process("q", "Q", {{"y", 0}});
  b.transition(p, "PX")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .visible()
      .priority(2);
  b.transition(q, "QY")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .visible()
      .priority(1);
  // Violated exactly in the state where QY has fired but PX has not — the
  // seed heuristic prefers PX, so a proviso-less reduction misses it.
  b.property("qy_not_first", [=](const State& s, const Protocol& proto) {
    const Value x = s.local_slice(proto.proc(p).local_offset, 1)[0];
    const Value y = s.local_slice(proto.proc(q).local_offset, 1)[0];
    return !(y == 1 && x == 0);
  });
  return b.build();
}

TEST(Spor, VisibilityProvisoPreservesViolations) {
  Protocol proto = make_visible_race();
  EXPECT_EQ(explore_full(proto).verdict, Verdict::kViolated);
  EXPECT_EQ(run_spor(proto).verdict, Verdict::kViolated);
}

TEST(Spor, WithoutVisibilityProvisoTheViolationIsMissed) {
  // Documents *why* the proviso exists: disabling it on this model loses the
  // violating interleaving (this is not a supported configuration; the flag
  // exists for exactly this demonstration and the ablation bench).
  Protocol proto = make_visible_race();
  SporOptions opts;
  opts.visibility_proviso = false;
  EXPECT_EQ(run_spor(proto, opts).verdict, Verdict::kHolds);
}

TEST(Spor, HeuristicNames) {
  EXPECT_EQ(to_string(SeedHeuristic::kOppositeTransaction), "opposite-transaction");
  EXPECT_EQ(to_string(SeedHeuristic::kTransaction), "transaction");
  EXPECT_EQ(to_string(SeedHeuristic::kFirst), "first");
}

TEST(Spor, ProvisoNames) {
  EXPECT_EQ(to_string(CycleProviso::kAuto), "auto");
  EXPECT_EQ(to_string(CycleProviso::kStack), "stack");
  EXPECT_EQ(to_string(CycleProviso::kVisited), "visited");
  EXPECT_EQ(to_string(CycleProviso::kScc), "scc");
  EXPECT_EQ(to_string(CycleProviso::kOff), "off");
}

TEST(Spor, VisitedProvisoIsSoundSequentially) {
  // The visited-set proviso is strictly more conservative than the stack
  // proviso in a sequential DFS (the stack is a subset of the visited set),
  // so verdicts and terminal states must keep matching the full search.
  for (const Protocol& proto :
       {make_small_quorum(), make_fig4_refined(), make_visible_race(),
        protocols::make_collector({.senders = 4, .quorum = 2}),
        protocols::make_paxos({.proposers = 1, .acceptors = 3, .learners = 1})}) {
    ExploreConfig cfg;
    cfg.collect_terminals = true;
    const ExploreResult full = explore(proto, cfg, nullptr);
    SporOptions opts;
    opts.proviso = CycleProviso::kVisited;
    SporStrategy strategy(proto, opts);
    const ExploreResult reduced = explore(proto, cfg, &strategy);
    EXPECT_EQ(reduced.verdict, full.verdict) << proto.name();
    EXPECT_LE(reduced.stats.states_stored, full.stats.states_stored)
        << proto.name();
    if (full.verdict == Verdict::kHolds) {
      EXPECT_EQ(reduced.terminal_fingerprints, full.terminal_fingerprints)
          << proto.name();
    }
  }
}

// Three independent single-step processes; PA and QB are visible, so the
// visibility proviso forces {PA, QB} into one stubborn set at the root and
// the reduced graph keeps the PA/QB diamond. When the QB-first branch later
// selects {PA}, its successor is the diamond's already-visited join state —
// the visited-set cycle proviso must reject that candidate and fall back to
// the next seed ({RC}, whose successor is fresh).
Protocol make_diamond_join() {
  mp::ProtocolBuilder b("diamond-join");
  const ProcessId p = b.process("p", "P", {{"x", 0}});
  const ProcessId q = b.process("q", "Q", {{"y", 0}});
  const ProcessId r = b.process("r", "R", {{"z", 0}});
  b.transition(p, "PA")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .visible()
      .priority(3);
  b.transition(q, "QB")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .visible()
      .priority(2);
  b.transition(r, "RC")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .priority(1);
  return b.build();
}

TEST(Spor, VisitedProvisoCountsFallbacks) {
  Protocol proto = make_diamond_join();
  SporOptions opts;
  opts.proviso = CycleProviso::kVisited;
  SporStrategy strategy(proto, opts);
  ExploreConfig cfg;
  const ExploreResult first = explore(proto, cfg, &strategy);
  EXPECT_EQ(first.verdict, Verdict::kHolds);
  EXPECT_GT(first.stats.proviso_fallbacks, 0u);
  // Re-running with the same strategy object reports the delta, not the
  // lifetime total.
  const ExploreResult second = explore(proto, cfg, &strategy);
  EXPECT_EQ(second.stats.proviso_fallbacks, first.stats.proviso_fallbacks);
}

}  // namespace
}  // namespace mpb
