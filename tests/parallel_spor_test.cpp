// Parallel reduced search and parallel counterexample reconstruction.
//
// SPOR on the worker pool (visited-set cycle proviso) must agree with the
// sequential searches on every verdict and preserve every deadlock; the
// reduced state count is schedule-dependent and is deliberately not pinned.
// Parallel counterexamples are rebuilt from the interned state graph's
// parent handles, so every reported trace must replay step-by-step through
// execute() into a state violating the reported property.
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "core/trace.hpp"
#include "por/spor.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"

namespace mpb {
namespace {

using namespace protocols;

struct NamedCase {
  std::string label;
  Protocol proto;
};

std::vector<NamedCase> spor_cases() {
  std::vector<NamedCase> cases;
  auto add = [&](std::string label, Protocol p) {
    cases.push_back({std::move(label), std::move(p)});
  };
  add("paxos_q_131", make_paxos({.proposers = 1, .acceptors = 3, .learners = 1}));
  add("faulty_paxos_q_221",
      make_paxos({.proposers = 2, .acceptors = 2, .learners = 1,
                  .faulty_learner = true}));
  add("echo_q_2011", make_echo_multicast({.honest_receivers = 2,
                                          .honest_initiators = 0,
                                          .byz_receivers = 1,
                                          .byz_initiators = 1}));
  add("echo_q_wrong_1021",
      make_echo_multicast({.honest_receivers = 1, .honest_initiators = 0,
                           .byz_receivers = 2, .byz_initiators = 1,
                           .tolerance = 0}));
  add("storage_q_31w1", make_regular_storage({.bases = 3, .readers = 1, .writes = 1}));
  add("collector_q", make_collector({.senders = 4, .quorum = 3}));
  return cases;
}

// A violating setting of every protocol family that has one.
std::vector<NamedCase> violating_cases() {
  std::vector<NamedCase> cases;
  auto add = [&](std::string label, Protocol p) {
    cases.push_back({std::move(label), std::move(p)});
  };
  add("faulty_paxos_q_231",
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                  .faulty_learner = true}));
  add("faulty_paxos_s_231",
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                  .quorum_model = false, .faulty_learner = true}));
  add("echo_q_wrong_2020",
      make_echo_multicast({.honest_receivers = 2, .honest_initiators = 0,
                           .byz_receivers = 2, .byz_initiators = 1,
                           .tolerance = 0}));
  add("storage_q_wrong_31w2",
      make_regular_storage({.bases = 3, .readers = 1, .writes = 2,
                            .wrong_regularity = true}));
  return cases;
}

TEST(ParallelSpor, VerdictMatchesSequentialSporEverywhere) {
  for (const NamedCase& c : spor_cases()) {
    SporStrategy seq_strategy(c.proto);
    ExploreConfig seq_cfg;
    const ExploreResult seq = explore(c.proto, seq_cfg, &seq_strategy);
    const ExploreResult full = explore(c.proto, ExploreConfig{});

    for (unsigned threads : {2u, 4u}) {
      SporStrategy par_strategy(c.proto);
      ExploreConfig cfg;
      cfg.threads = threads;
      cfg.visited = VisitedMode::kInterned;
      const ExploreResult par = explore(c.proto, cfg, &par_strategy);
      SCOPED_TRACE(c.label + " @ " + std::to_string(threads) + " threads");
      EXPECT_EQ(par.verdict, seq.verdict);
      EXPECT_EQ(par.stats.threads_used, threads);
      // A sound reduction never stores more than the full graph.
      EXPECT_LE(par.stats.states_stored, full.stats.states_stored);
    }
  }
}

TEST(ParallelSpor, DeadlockPreservationOnTheWorkerPool) {
  // Stubborn sets keep a key transition in every state, so every terminal
  // (deadlock) state of the full graph must survive the parallel reduction —
  // a schedule-independent invariant even though the reduction itself is not.
  for (const NamedCase& c : spor_cases()) {
    ExploreConfig full_cfg;
    full_cfg.collect_terminals = true;
    const ExploreResult full = explore(c.proto, full_cfg, nullptr);
    if (full.verdict != Verdict::kHolds) continue;  // terminal sets only match
                                                    // on completed searches
    SporStrategy strategy(c.proto);
    ExploreConfig cfg;
    cfg.threads = 4;
    cfg.visited = VisitedMode::kInterned;
    cfg.collect_terminals = true;
    const ExploreResult par = explore(c.proto, cfg, &strategy);
    EXPECT_EQ(par.terminal_fingerprints, full.terminal_fingerprints) << c.label;
  }
}

TEST(ParallelSpor, StackProvisoStaysSequential) {
  const Protocol proto =
      make_collector(CollectorConfig{.senders = 3, .quorum = 2});
  SporOptions opts;
  opts.proviso = CycleProviso::kStack;
  SporStrategy strategy(proto, opts);
  EXPECT_TRUE(strategy.needs_dfs_stack());
  ExploreConfig cfg;
  cfg.threads = 8;
  const ExploreResult r = explore(proto, cfg, &strategy);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.threads_used, 1u);
}

TEST(ParallelSpor, AutoProvisoIsParallelCapable) {
  const Protocol proto = make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  SporStrategy strategy(proto);  // default proviso: kAuto
  EXPECT_FALSE(strategy.needs_dfs_stack());
  FullExpansion full;
  EXPECT_FALSE(full.needs_dfs_stack());
}

TEST(ParallelTrace, ReplaysStepByStepOnEveryViolatingProtocol) {
  for (const NamedCase& c : violating_cases()) {
    SCOPED_TRACE(c.label);
    const ExploreResult seq = explore(c.proto, ExploreConfig{});
    ASSERT_EQ(seq.verdict, Verdict::kViolated);
    ASSERT_FALSE(seq.counterexample.empty());

    ExploreConfig cfg;
    cfg.threads = 4;
    cfg.visited = VisitedMode::kInterned;
    const ExploreResult par = explore(c.proto, cfg);
    ASSERT_EQ(par.verdict, Verdict::kViolated);
    ASSERT_FALSE(par.counterexample.empty());
    // The schedule picks which violation wins, but these models violate a
    // single property, so the parallel run must name the sequential one.
    EXPECT_EQ(par.violated_property, seq.violated_property);

    // Step-by-step replay through execute(): every recorded state must be
    // reproduced exactly, and the endpoint must violate the reported
    // property just as the sequential trace's endpoint does.
    State s = c.proto.initial();
    std::string failed;
    for (const TraceStep& step : par.counterexample) {
      failed.clear();
      s = execute(c.proto, s, step.event, {}, &failed);
      ASSERT_EQ(s, step.after);
    }
    const bool assertion_violated = failed == par.violated_property;
    const Property* p = c.proto.find_property(par.violated_property);
    const bool property_violated = p != nullptr && !p->holds(s, c.proto);
    EXPECT_TRUE(assertion_violated || property_violated);
    const State seq_end = seq.counterexample.back().after;
    if (p != nullptr) {
      EXPECT_FALSE(p->holds(seq_end, c.proto));
    }

    // And the canonical certifier agrees.
    EXPECT_TRUE(replay_counterexample(c.proto, par));
  }
}

TEST(ParallelTrace, SporParallelTraceReplaysThroughTheFacade) {
  // The acceptance path: reduced parallel search with a replayable --trace.
  check::CheckRequest req;
  req.model = "paxos";
  req.params = {{"faulty", "true"}};
  req.strategy = "spor";
  req.explore.threads = 4;
  req.explore.visited = VisitedMode::kInterned;
  const check::CheckResult r = check::run_check(std::move(req));
  EXPECT_EQ(r.verdict(), Verdict::kViolated);
  EXPECT_EQ(r.proviso, "visited");
  EXPECT_EQ(r.threads, 4u);
  ASSERT_FALSE(r.result.counterexample.empty());
  EXPECT_TRUE(replay_counterexample(r.protocol, r.result));
}

TEST(ParallelTrace, ExactModeUpgradesToInternedAndStillTraces) {
  // The default (exact) visited mode upgrades to interned in parallel runs,
  // so traces come back without any configuration.
  const Protocol proto = make_paxos(
      {.proposers = 2, .acceptors = 3, .learners = 1, .faulty_learner = true});
  ExploreConfig cfg;
  cfg.threads = 2;  // default visited: kExact
  const ExploreResult r = explore(proto, cfg);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_FALSE(r.counterexample.empty());
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(ParallelTrace, FingerprintModeRecordsNoTraceByDesign) {
  const Protocol proto = make_paxos(
      {.proposers = 2, .acceptors = 3, .learners = 1, .faulty_learner = true});
  ExploreConfig cfg;
  cfg.threads = 4;
  cfg.visited = VisitedMode::kFingerprint;
  const ExploreResult r = explore(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_TRUE(r.counterexample.empty());
}

}  // namespace
}  // namespace mpb
