// The unified exploration engine (core/engine.hpp): driver parity, the
// SCC-based ignoring fix, symmetry-aware parallel traces, steal-half
// batching and the progress-interval knob. Every suite here carries the
// `engine` ctest label and runs in the TSan lane (tools/run_tsan.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "check/check.hpp"
#include "core/trace.hpp"
#include "core/visited.hpp"
#include "core/work_deque.hpp"
#include "harness/runner.hpp"
#include "mp/builder.hpp"
#include "por/spor.hpp"
#include "por/symmetry.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"

namespace mpb {
namespace {

using namespace protocols;

// A one-state cycle that *ignores* a transition: the spinner's PING consumes
// its token and re-sends it (successor == current state, a self-loop in the
// state graph), and the stubborn seed heuristic prefers PING (priority 2),
// whose closure {PING} excludes the independent STEP. With no cycle proviso
// STEP is postponed forever around the loop and its violation is missed —
// exactly the ignoring problem the SCC pass repairs.
Protocol make_ignored_cycle() {
  mp::ProtocolBuilder b("ignored-cycle");
  const MsgType mTOK = b.msg("TOK");
  const ProcessId p = b.process("spinner", "Spin", {});
  const ProcessId q = b.process("stepper", "Step", {{"done", 0}});
  b.transition(p, "PING")
      .consumes("TOK", 1)
      .from(mask_of(p))
      .effect([=](EffectCtx& c) { c.send(p, mTOK, {0}); })
      .sends("TOK", mask_of(p))
      .reads_local(false)
      .writes_local(false)
      .priority(2);
  b.transition(q, "STEP")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .visible()
      .priority(1);
  b.property("never_done", [q](const State& s, const Protocol& pr) {
    auto loc = s.local_slice(pr.proc(q).local_offset, pr.proc(q).local_len);
    return loc[0] == 0;
  });
  b.initial_message(Message(mTOK, p, p, {0}));
  return b.build();
}

// --- the SCC ignoring fix ---------------------------------------------------

TEST(EngineSccProviso, StatePinsAcrossProvisosOnPaxos231) {
  // The committed soundness pins: paxos(2,3,1) spor/stack t1 = 9,867; the
  // visited proviso loses the whole reduction on this model (9,945 = the
  // full graph); scc recovers it exactly without needing the DFS stack.
  const Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  auto run_with = [&](CycleProviso proviso, unsigned threads) {
    SporOptions opts;
    opts.proviso = proviso;
    SporStrategy strategy(proto, opts);
    ExploreConfig cfg;
    cfg.threads = threads;
    cfg.visited = VisitedMode::kInterned;
    return explore(proto, cfg, &strategy);
  };

  const ExploreResult stack = run_with(CycleProviso::kStack, 1);
  EXPECT_EQ(stack.verdict, Verdict::kHolds);
  EXPECT_EQ(stack.stats.states_stored, 9867u);

  const ExploreResult visited = run_with(CycleProviso::kVisited, 1);
  EXPECT_EQ(visited.verdict, Verdict::kHolds);
  EXPECT_EQ(visited.stats.states_stored, 9945u);
  EXPECT_GT(visited.stats.proviso_fallbacks, 0u);

  const ExploreResult scc = run_with(CycleProviso::kScc, 1);
  EXPECT_EQ(scc.verdict, Verdict::kHolds);
  EXPECT_EQ(scc.stats.states_stored, 9867u);
  EXPECT_LE(scc.stats.states_stored, visited.stats.states_stored);
  EXPECT_EQ(scc.stats.scc_reexpansions, 0u);  // the reduced graph is acyclic
  EXPECT_GT(scc.stats.scc_pass_ms, 0.0);      // the pass ran and was timed

  // Unlike stack/visited, the scc proviso's ample-set choice never consults
  // schedule-dependent search state (the cycle check is a post-pass), so the
  // reduced graph — and the 9,867 pin — is identical at every thread count.
  // The t8 run exercises the WCC-sharded Tarjan variant; it must produce the
  // same condensation as the sequential pass.
  for (unsigned threads : {2u, 8u}) {
    const ExploreResult par = run_with(CycleProviso::kScc, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(par.verdict, Verdict::kHolds);
    EXPECT_EQ(par.stats.threads_used, threads);
    EXPECT_EQ(par.stats.states_stored, 9867u);
    EXPECT_EQ(par.stats.scc_reexpansions, 0u);
    EXPECT_GT(par.stats.scc_pass_ms, 0.0);
  }
}

TEST(EngineSccProviso, IgnoredCycleIsRepaired) {
  const Protocol proto = make_ignored_cycle();
  const ExploreResult full = explore(proto, ExploreConfig{});
  ASSERT_EQ(full.verdict, Verdict::kViolated);
  EXPECT_EQ(full.violated_property, "never_done");

  // No cycle proviso at all: the self-loop ignores STEP forever and the
  // violation is missed — the unsoundness the pass exists to repair.
  {
    SporOptions opts;
    opts.proviso = CycleProviso::kOff;
    SporStrategy strategy(proto, opts);
    const ExploreResult off = explore(proto, ExploreConfig{}, &strategy);
    EXPECT_EQ(off.verdict, Verdict::kHolds);
    EXPECT_EQ(off.stats.states_stored, 1u);
  }

  // The SCC pass detects the {init} self-loop SCC with no fully expanded
  // member, re-expands it, executes STEP and finds the violation — with a
  // replayable trace, sequentially and on the pool.
  for (unsigned threads : {1u, 8u}) {
    SporOptions opts;
    opts.proviso = CycleProviso::kScc;
    SporStrategy strategy(proto, opts);
    ExploreConfig cfg;
    cfg.threads = threads;
    const ExploreResult scc = explore(proto, cfg, &strategy);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(scc.verdict, Verdict::kViolated);
    EXPECT_EQ(scc.violated_property, "never_done");
    EXPECT_GE(scc.stats.scc_reexpansions, 1u);
    ASSERT_FALSE(scc.counterexample.empty());
    EXPECT_TRUE(replay_counterexample(proto, scc));
  }
}

TEST(EngineSccProviso, SccDegradesSoundlyWhereNoPassRuns) {
  // A stateless search supplies no visited probe and gets no SCC pass, so
  // kScc must not silently behave like kOff: it degrades to the sound
  // fallback (full expansion) and still finds the violation.
  const Protocol proto = make_ignored_cycle();
  SporOptions opts;
  opts.proviso = CycleProviso::kScc;
  SporStrategy strategy(proto, opts);
  ExploreConfig cfg;
  cfg.mode = SearchMode::kStateless;
  const ExploreResult r = explore(proto, cfg, &strategy);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "never_done");
  EXPECT_GT(r.stats.proviso_fallbacks, 0u);
}

TEST(EngineSccProviso, SccIsSoundOnRealModels) {
  // Verdicts and terminal (deadlock) sets must match the full search — the
  // deadlock-preservation invariant every proviso has to keep.
  for (const Protocol& proto :
       {make_paxos({.proposers = 1, .acceptors = 3, .learners = 1}),
        make_regular_storage({.bases = 3, .readers = 1, .writes = 2}),
        make_collector({.senders = 4, .quorum = 2})}) {
    ExploreConfig full_cfg;
    full_cfg.collect_terminals = true;
    const ExploreResult full = explore(proto, full_cfg, nullptr);

    SporOptions scc_opts;
    scc_opts.proviso = CycleProviso::kScc;
    SporStrategy scc_strategy(proto, scc_opts);
    const ExploreResult scc = explore(proto, full_cfg, &scc_strategy);

    SporOptions vis_opts;
    vis_opts.proviso = CycleProviso::kVisited;
    SporStrategy vis_strategy(proto, vis_opts);
    const ExploreResult vis = explore(proto, full_cfg, &vis_strategy);

    SCOPED_TRACE(proto.name());
    EXPECT_EQ(scc.verdict, full.verdict);
    EXPECT_EQ(scc.terminal_fingerprints, full.terminal_fingerprints);
    EXPECT_LE(scc.stats.states_stored, full.stats.states_stored);
    // The acceptance bound: scc never stores more than the visited proviso
    // (both sequential runs are deterministic).
    EXPECT_LE(scc.stats.states_stored, vis.stats.states_stored);
  }
}

TEST(EngineSccProviso, FacadeReportsSccAndForcesInterned) {
  check::CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}};
  req.strategy = "spor";
  req.spor.proviso = CycleProviso::kScc;
  req.explore.visited = VisitedMode::kFingerprint;  // upgraded: scc needs graph
  const check::CheckResult r = check::run_check(std::move(req));
  EXPECT_EQ(r.verdict(), Verdict::kHolds);
  EXPECT_EQ(r.proviso, "scc");
  EXPECT_EQ(r.visited, "interned");
  EXPECT_EQ(r.stats().states_stored, 9867u);
}

// --- symmetry-aware traces --------------------------------------------------

TEST(EngineSymmetryTrace, CanonicalizeWithPermRoundTrips) {
  const PaxosConfig pcfg{.proposers = 1, .acceptors = 3, .learners = 1};
  const Protocol proto = make_paxos(pcfg);
  const SymmetryReducer sym(proto, paxos_symmetric_roles(pcfg));

  // Walk a few levels of the graph and check, for every state, that the
  // reported permutation really is the one that produced the canonical
  // representative, and that its inverse takes it back.
  std::vector<State> frontier{proto.initial()};
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<State> next;
    for (const State& s : frontier) {
      std::uint32_t k = ~0u;
      const State canon = sym.canonicalize_with_perm(s, &k);
      EXPECT_LT(k, sym.orbit_bound());
      EXPECT_EQ(canon, sym.canonicalize(s));
      EXPECT_EQ(sym.apply_perm(k, s), canon);
      EXPECT_EQ(sym.apply_inverse_perm(k, canon), s);
      for (const Event& e : enumerate_events(proto, s)) {
        next.push_back(execute(proto, s, e));
      }
    }
    frontier = std::move(next);
  }
}

TEST(EngineSymmetryTrace, InternedEntriesRecordThePermutation) {
  const Protocol proto =
      make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  ShardedVisited visited(VisitedMode::kInterned, 4);
  const State s = proto.initial();
  const VisitedInsert ins =
      visited.insert(s, s.fingerprint(), kNoHandle, nullptr, /*perm=*/3);
  ASSERT_TRUE(ins.inserted);
  EXPECT_EQ(visited.perm_of(ins.handle), 3u);
  EXPECT_EQ(visited.perm_of(kNoHandle), 0u);
}

TEST(EngineSymmetryTrace, ParallelSymmetryTraceReplaysStepForStep) {
  // The acceptance path: a violating, *behaviourally symmetric* model
  // (single-message faulty Paxos: the learner consumes one message at a
  // time, so acceptor permutations are true automorphisms), searched on the
  // pool under canonicalization — the trace must replay concretely.
  const PaxosConfig pcfg{.proposers = 2, .acceptors = 3, .learners = 1,
                         .quorum_model = false, .faulty_learner = true};
  const Protocol proto = make_paxos(pcfg);
  const SymmetryReducer sym(proto, paxos_symmetric_roles(pcfg));

  ExploreConfig seq_cfg;
  seq_cfg.canonicalize = [&sym](const State& s) { return sym.canonicalize(s); };
  const ExploreResult seq = explore(proto, seq_cfg);
  ASSERT_EQ(seq.verdict, Verdict::kViolated);

  ExploreConfig cfg = seq_cfg;
  cfg.canonicalize_perm = [&sym](const State& s, std::uint32_t& perm) {
    return sym.canonicalize_with_perm(s, &perm);
  };
  cfg.threads = 8;
  cfg.visited = VisitedMode::kInterned;
  const ExploreResult par = explore(proto, cfg);
  ASSERT_EQ(par.verdict, Verdict::kViolated);
  EXPECT_EQ(par.violated_property, seq.violated_property);
  ASSERT_FALSE(par.counterexample.empty());

  // Step-for-step: every recorded state is reproduced exactly by execute()
  // from the initial state — the trace is a concrete run, not a chain of
  // canonical representatives.
  State s = proto.initial();
  std::string failed;
  for (const TraceStep& step : par.counterexample) {
    failed.clear();
    s = execute(proto, s, step.event, {}, &failed);
    ASSERT_EQ(s, step.after);
  }
  const Property* p = proto.find_property(par.violated_property);
  const bool property_violated = p != nullptr && !p->holds(s, proto);
  EXPECT_TRUE(property_violated || failed == par.violated_property);
  EXPECT_TRUE(replay_counterexample(proto, par));
}

TEST(EngineSymmetryTrace, FacadeSymmetryParallelTraceReplaysOk) {
  check::CheckRequest req;
  req.model = "paxos";
  req.params = {{"faulty", "true"}, {"single-message", "true"}};
  req.symmetry = true;
  req.strategy = "full";
  req.explore.threads = 8;
  req.explore.visited = VisitedMode::kInterned;
  const check::CheckResult r = check::run_check(std::move(req));
  ASSERT_EQ(r.verdict(), Verdict::kViolated);
  EXPECT_TRUE(r.symmetry);
  ASSERT_FALSE(r.result.counterexample.empty());
  EXPECT_TRUE(replay_counterexample(r.protocol, r.result));
}

// --- steal-half batching ----------------------------------------------------

TEST(EngineStealHalf, BatchTakesHalfOfTheVictim) {
  WorkStealingDeque<int> d;
  int vals[10];
  for (int i = 0; i < 10; ++i) {
    vals[i] = i;
    d.push(&vals[i]);
  }
  int* out[64] = {};
  // ⌈(10+1)/2⌉ = 5 items in one visit, FIFO from the top.
  EXPECT_EQ(d.steal_batch(out, 64), 5u);
  EXPECT_EQ(*out[0], 0);
  EXPECT_EQ(*out[4], 4);
  // The cap bounds the batch even on a deep deque.
  EXPECT_EQ(d.steal_batch(out, 2), 2u);
  EXPECT_EQ(*out[0], 5);
  // Owner keeps LIFO access to the remainder.
  EXPECT_EQ(*d.pop(), 9);
  EXPECT_EQ(d.steal_batch(out, 64), 1u);  // ⌈(2+1)/2⌉
  EXPECT_EQ(*out[0], 7);
  EXPECT_EQ(*d.pop(), 8);
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal_batch(out, 64), 0u);
}

TEST(EngineStealHalf, ConcurrentBatchesExtractExactlyOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque<int> d;
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);
  std::atomic<int> extracted{0};

  auto take = [&](int* item) {
    seen[static_cast<std::size_t>(*item)].fetch_add(1);
    extracted.fetch_add(1);
  };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  std::atomic<bool> go{false};
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      int* out[8];
      while (extracted.load() < kItems) {
        const std::size_t got = d.steal_batch(out, 8);
        for (std::size_t i = 0; i < got; ++i) take(out[i]);
        if (got == 0) std::this_thread::yield();
      }
    });
  }

  // Owner: push everything, then drain from the bottom against the thieves.
  for (int i = 0; i < kItems; ++i) {
    vals[static_cast<std::size_t>(i)] = i;
    d.push(&vals[static_cast<std::size_t>(i)]);
  }
  go.store(true);
  while (extracted.load() < kItems) {
    if (int* item = d.pop()) take(item);
  }
  for (auto& t : thieves) t.join();

  EXPECT_EQ(extracted.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(EngineStealHalf, PoolCountsUnchangedWithStealHalfOn) {
  // Batching changes scheduling only: the schedule-independent statistics of
  // an unreduced parallel search must stay identical to the sequential run.
  const Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  ExploreConfig seq_cfg;
  seq_cfg.collect_terminals = true;
  const ExploreResult seq = explore(proto, seq_cfg);

  ExploreConfig cfg = seq_cfg;
  cfg.threads = 8;
  cfg.visited = VisitedMode::kInterned;
  cfg.steal_half_threshold = 1;  // batch on every steal
  const ExploreResult par = explore(proto, cfg);
  EXPECT_EQ(par.verdict, seq.verdict);
  EXPECT_EQ(par.stats.states_stored, seq.stats.states_stored);
  EXPECT_EQ(par.stats.events_executed, seq.stats.events_executed);
  EXPECT_EQ(par.stats.terminal_states, seq.stats.terminal_states);
  EXPECT_EQ(par.terminal_fingerprints, seq.terminal_fingerprints);
}

// --- the progress-interval knob ---------------------------------------------

TEST(EngineProgress, IntervalFromEnvParsesAndClamps) {
  unsetenv("MPB_PROGRESS_INTERVAL");
  EXPECT_DOUBLE_EQ(harness::progress_interval_from_env(), 0.5);
  setenv("MPB_PROGRESS_INTERVAL", "100", 1);
  EXPECT_DOUBLE_EQ(harness::progress_interval_from_env(), 0.1);
  setenv("MPB_PROGRESS_INTERVAL", "-5", 1);
  EXPECT_DOUBLE_EQ(harness::progress_interval_from_env(), 0.0);
  setenv("MPB_PROGRESS_INTERVAL", "bogus", 1);
  EXPECT_DOUBLE_EQ(harness::progress_interval_from_env(), 0.5);
  unsetenv("MPB_PROGRESS_INTERVAL");
}

}  // namespace
}  // namespace mpb
