// The fuzz subsystem (src/fuzz): generator determinism and validity, the
// .repro round-trip, differential-oracle agreement, the injected-proviso-bug
// divergence + minimization flow, and the resource guards (watchdog,
// state and memory budgets) across the sequential, parallel and stateless
// drivers. Fuzz* suites carry the `fuzz` ctest label.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/explorer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/spec.hpp"
#include "por/dpor.hpp"

namespace mpb::fuzz {
namespace {

// Oracle config for tests: tight guards so pathological seeds abort in
// milliseconds rather than eating the watchdog.
OracleConfig test_oracle() {
  OracleConfig cfg;
  cfg.par_threads = 4;
  cfg.guard_states = 1u << 13;
  cfg.guard_memory_bytes = std::uint64_t{64} << 20;
  cfg.watchdog_seconds = 10.0;
  return cfg;
}

// --- generator ---------------------------------------------------------------

TEST(FuzzGeneratorTest, SameSeedSameSpec) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(serialize(generate(seed)), serialize(generate(seed)))
        << "seed " << seed;
  }
}

TEST(FuzzGeneratorTest, DistinctSeedsDistinctSpecs) {
  // Not a guarantee, but 0 and 1 colliding would mean the RNG is broken.
  EXPECT_NE(serialize(generate(0)), serialize(generate(1)));
}

TEST(FuzzGeneratorTest, EverySeedRenders) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const ProtocolSpec spec = generate(seed);
    RenderedModel m;
    ASSERT_NO_THROW(m = render(spec)) << "seed " << seed;
    EXPECT_GE(m.protocol.n_procs(), 1u);
    EXPECT_GE(m.protocol.n_transitions(), 1u);
    EXPECT_TRUE(m.protocol.validate().empty()) << m.protocol.validate();
  }
}

// --- .repro round-trip -------------------------------------------------------

TEST(FuzzReproTest, RoundTripsGeneratedSpecs) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::string text = serialize(generate(seed));
    EXPECT_EQ(serialize(parse_repro(text)), text) << "seed " << seed;
  }
}

TEST(FuzzReproTest, RoundTripsHandcraftedSpecs) {
  for (const ProtocolSpec& spec : {ignoring_trap_spec(), amplifier_spec()}) {
    const std::string text = serialize(spec);
    EXPECT_EQ(serialize(parse_repro(text)), text);
  }
}

TEST(FuzzReproTest, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_repro(""), std::invalid_argument);
  EXPECT_THROW((void)parse_repro("mpb-fuzz-repro v2\n"), std::invalid_argument);
  std::string truncated = serialize(ignoring_trap_spec());
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)parse_repro(truncated), std::invalid_argument);
  // Structural garbage behind a well-formed header.
  EXPECT_THROW((void)parse_repro("mpb-fuzz-repro v1\nseed 0\nmsgtypes 1\n"
                                 "roles 1\n1 99\ntransitions 0\n"
                                 "properties 0\nend\n"),
               std::invalid_argument);
}

// --- differential oracle -----------------------------------------------------

TEST(FuzzOracleTest, GeneratedSeedsAgree) {
  const OracleConfig cfg = test_oracle();
  unsigned agreed = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const OracleReport rep = run_oracle(generate(seed), cfg);
    EXPECT_NE(rep.status, OracleStatus::kDiverged)
        << "seed " << seed << ": " << rep.detail;
    if (rep.status == OracleStatus::kAgree) ++agreed;
  }
  // The generator is biased toward small terminating protocols; if most
  // seeds resource-skip, the guards (or the bias) regressed.
  EXPECT_GE(agreed, 20u);
}

TEST(FuzzOracleTest, TrapSpecAgreesWithSoundProvisos) {
  const OracleReport rep = run_oracle(ignoring_trap_spec(), test_oracle());
  EXPECT_EQ(rep.status, OracleStatus::kAgree) << rep.detail;
  ASSERT_FALSE(rep.runs.empty());
  // The violation hides behind an independent cycle, but every sound lane
  // must still find it.
  for (const OracleRun& r : rep.runs) {
    if (!r.skipped) {
      EXPECT_EQ(r.verdict, Verdict::kViolated) << r.name;
    }
  }
}

TEST(FuzzOracleTest, InjectedProvisoBugIsCaught) {
  OracleConfig cfg = test_oracle();
  cfg.inject_unsound_reduction = true;
  const OracleReport rep = run_oracle(ignoring_trap_spec(), cfg);
  ASSERT_TRUE(rep.diverged()) << rep.detail;
  EXPECT_NE(rep.detail.find("broken-proviso"), std::string::npos) << rep.detail;
}

// --- minimizer ---------------------------------------------------------------

TEST(FuzzMinimizeTest, ShrinksInjectedDivergenceToDeterministicRepro) {
  OracleConfig cfg = test_oracle();
  cfg.inject_unsound_reduction = true;

  // Pad the trap with an irrelevant role the minimizer should shave off.
  ProtocolSpec padded = ignoring_trap_spec();
  padded.roles.push_back(RoleSpec{2, 1});
  TransitionSpec noise;
  noise.role = static_cast<unsigned>(padded.roles.size() - 1);
  noise.in_msg = -1;
  noise.guard = GuardSpec{GuardKind::kVarLt, 0, 1};
  noise.ops.push_back(OpSpec{OpKind::kInc, 0, 0});
  padded.transitions.push_back(noise);

  ASSERT_TRUE(run_oracle(padded, cfg).diverged());

  MinimizeStats stats;
  const ProtocolSpec shrunk = minimize(padded, cfg, &stats);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_LT(shrunk.transitions.size(), padded.transitions.size());
  EXPECT_TRUE(run_oracle(shrunk, cfg).diverged());

  // The written repro replays to the same divergence, bit for bit.
  const std::string repro = serialize(shrunk);
  const ProtocolSpec reparsed = parse_repro(repro);
  EXPECT_EQ(serialize(reparsed), repro);
  EXPECT_TRUE(run_oracle(reparsed, cfg).diverged());
  EXPECT_EQ(serialize(minimize(padded, cfg)), repro) << "minimizer not deterministic";
}

TEST(FuzzMinimizeTest, NonDivergentSpecReturnedUnchanged) {
  const ProtocolSpec spec = generate(3);
  const ProtocolSpec out = minimize(spec, test_oracle());
  EXPECT_EQ(serialize(out), serialize(spec));
}

// --- resource guards ---------------------------------------------------------

ExploreConfig guarded_config() {
  ExploreConfig cfg;
  cfg.mode = SearchMode::kStateful;
  cfg.visited = VisitedMode::kInterned;
  return cfg;
}

TEST(FuzzResourceLimitTest, WatchdogFiresOnUnboundedProtocol) {
  const RenderedModel m = render(amplifier_spec());
  ExploreConfig cfg = guarded_config();
  cfg.guard.watchdog_seconds = 0.25;
  const ExploreResult r = explore(m.protocol, cfg, nullptr);
  EXPECT_EQ(r.verdict, Verdict::kResourceLimit);
  EXPECT_GT(r.stats.events_executed, 0u);
  EXPECT_GT(r.stats.states_stored, 0u);
  EXPECT_LT(r.stats.seconds, 30.0);
}

TEST(FuzzResourceLimitTest, WatchdogFiresUnderDpor) {
  const RenderedModel m = render(amplifier_spec());
  ExploreConfig cfg;
  cfg.mode = SearchMode::kStateless;
  cfg.guard.watchdog_seconds = 0.25;
  const ExploreResult r = explore_dpor(m.protocol, cfg, DporOptions{});
  EXPECT_EQ(r.verdict, Verdict::kResourceLimit);
  EXPECT_GT(r.stats.events_executed, 0u);
}

TEST(FuzzResourceLimitTest, StateGuardAbortsWithPartialStatsSequential) {
  const RenderedModel m = render(amplifier_spec());
  ExploreConfig cfg = guarded_config();
  cfg.guard.max_states = 2000;
  const ExploreResult r = explore(m.protocol, cfg, nullptr);
  EXPECT_EQ(r.verdict, Verdict::kResourceLimit);
  EXPECT_GE(r.stats.states_stored, 2000u);
  EXPECT_LT(r.stats.states_stored, 4000u);  // bounded overshoot
  EXPECT_GT(r.stats.events_executed, 0u);
}

TEST(FuzzResourceLimitTest, StateGuardAbortsWithPartialStatsParallel) {
  const RenderedModel m = render(amplifier_spec());
  ExploreConfig cfg = guarded_config();
  cfg.threads = 8;
  cfg.guard.max_states = 2000;
  const ExploreResult r = explore(m.protocol, cfg, nullptr);
  EXPECT_EQ(r.verdict, Verdict::kResourceLimit);
  EXPECT_GE(r.stats.states_stored, 2000u);
  // Each worker stops at its first post-insert check; generous slack for
  // in-flight expansions.
  EXPECT_LT(r.stats.states_stored, 12000u);
  EXPECT_GT(r.stats.events_executed, 0u);
}

TEST(FuzzResourceLimitTest, MemoryGuardAborts) {
  const RenderedModel m = render(amplifier_spec());
  for (const unsigned threads : {1u, 8u}) {
    ExploreConfig cfg = guarded_config();
    cfg.threads = threads;
    cfg.guard.max_memory_bytes = std::uint64_t{1} << 16;  // 64 KiB
    const ExploreResult r = explore(m.protocol, cfg, nullptr);
    EXPECT_EQ(r.verdict, Verdict::kResourceLimit) << threads << " threads";
    EXPECT_GT(r.stats.states_stored, 0u);
  }
}

TEST(FuzzResourceLimitTest, BudgetsStillReportBudgetExceeded) {
  const RenderedModel m = render(amplifier_spec());
  ExploreConfig cfg = guarded_config();
  cfg.max_states = 2000;  // benchmarking budget, not a guard
  const ExploreResult r = explore(m.protocol, cfg, nullptr);
  EXPECT_EQ(r.verdict, Verdict::kBudgetExceeded);
}

TEST(FuzzResourceLimitTest, GuardWinsWhenGuardAndBudgetBothTrip) {
  const RenderedModel m = render(amplifier_spec());
  ExploreConfig cfg = guarded_config();
  cfg.max_states = 2000;
  cfg.guard.max_states = 1000;  // trips first, and takes precedence anyway
  const ExploreResult r = explore(m.protocol, cfg, nullptr);
  EXPECT_EQ(r.verdict, Verdict::kResourceLimit);
}

TEST(FuzzResourceLimitTest, GuardedBoundedProtocolStillCompletes) {
  // Guards must be inert when nothing trips: the trap protocol has 8 states.
  const RenderedModel m = render(ignoring_trap_spec());
  ExploreConfig cfg = guarded_config();
  cfg.guard.watchdog_seconds = 30.0;
  cfg.guard.max_states = 1u << 16;
  cfg.guard.max_memory_bytes = std::uint64_t{64} << 20;
  const ExploreResult r = explore(m.protocol, cfg, nullptr);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
}

// --- smoke sweep -------------------------------------------------------------

TEST(FuzzSmokeTest, ShortCampaignIsClean) {
  const OracleConfig cfg = test_oracle();
  for (std::uint64_t seed = 100; seed < 125; ++seed) {
    const OracleReport rep = run_oracle(generate(seed), cfg);
    EXPECT_NE(rep.status, OracleStatus::kDiverged)
        << "seed " << seed << ": " << rep.detail;
  }
}

}  // namespace
}  // namespace mpb::fuzz
