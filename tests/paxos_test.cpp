#include <gtest/gtest.h>

#include "core/enabled.hpp"
#include "core/explorer.hpp"
#include "core/trace.hpp"
#include "por/spor.hpp"
#include "protocols/paxos/paxos.hpp"

namespace mpb {
namespace {

using protocols::kLearnerConflict;
using protocols::kLearnerVal;
using protocols::make_paxos;
using protocols::paxos_ballot;
using protocols::paxos_proposal_value;
using protocols::PaxosConfig;

TEST(PaxosModel, SettingString) {
  EXPECT_EQ((PaxosConfig{.proposers = 2, .acceptors = 3, .learners = 1}).setting(),
            "(2,3,1)");
}

TEST(PaxosModel, MajorityMath) {
  EXPECT_EQ((PaxosConfig{.acceptors = 3}).majority(), 2u);
  EXPECT_EQ((PaxosConfig{.acceptors = 4}).majority(), 3u);
  EXPECT_EQ((PaxosConfig{.acceptors = 5}).majority(), 3u);
}

TEST(PaxosModel, ProcessAndTransitionInventory) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  EXPECT_EQ(proto.n_procs(), 6u);
  // 2 proposers x (START, READ_REPL) + 3 acceptors x (READ, WRITE) + 1 ACCEPT.
  EXPECT_EQ(proto.n_transitions(), 2u * 2 + 3u * 2 + 1u);
  EXPECT_EQ(mask_count(proto.role_mask("Acceptor")), 3u);
  EXPECT_EQ(mask_count(proto.role_mask("Proposer")), 2u);
  EXPECT_EQ(mask_count(proto.role_mask("Learner")), 1u);
  EXPECT_TRUE(proto.validate().empty());
}

TEST(PaxosModel, QuorumTransitionsAnnotated) {
  Protocol proto = make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  unsigned quorum_transitions = 0;
  for (const Transition& t : proto.transitions()) {
    if (t.is_quorum()) {
      ++quorum_transitions;
      EXPECT_EQ(t.arity, 2);  // majority of 3
    }
    if (t.name == "READ") {
      EXPECT_TRUE(t.is_reply);
    }
  }
  EXPECT_EQ(quorum_transitions, 2u);  // proposer READ_REPL + learner ACCEPT
}

// Directed execution: drive one full proposer round by hand and inspect the
// protocol data flow at every step.
TEST(PaxosScenario, HappyPathSingleProposer) {
  Protocol proto = make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  State s = proto.initial();

  auto step_named = [&](std::string_view tname) {
    auto evs = enumerate_events(proto, s);
    for (const Event& e : evs) {
      if (proto.transition(e.tid).name == tname) {
        s = execute(proto, s, e);
        return true;
      }
    }
    return false;
  };

  ASSERT_TRUE(step_named("START"));
  EXPECT_EQ(s.network_size(), 3u);  // READ to each acceptor
  ASSERT_TRUE(step_named("READ"));
  ASSERT_TRUE(step_named("READ"));
  // Two READ_REPLs suffice for the majority quorum.
  ASSERT_TRUE(step_named("READ_REPL"));
  // The proposer sent WRITE(ballot, its own value) to all acceptors.
  unsigned writes = 0;
  for (const Message& m : s.network()) {
    if (proto.msg_type_name(m.type()) == "WRITE") {
      ++writes;
      EXPECT_EQ(m[0], paxos_ballot(0));
      EXPECT_EQ(m[1], paxos_proposal_value(0));
    }
  }
  EXPECT_EQ(writes, 3u);
  ASSERT_TRUE(step_named("WRITE"));
  ASSERT_TRUE(step_named("WRITE"));
  ASSERT_TRUE(step_named("ACCEPT"));
  // Learner chose the proposer's value.
  const ProcessInfo& li = proto.proc(4);  // learner0
  auto loc = s.local_slice(li.local_offset, li.local_len);
  EXPECT_EQ(loc[kLearnerVal], paxos_proposal_value(0));
  EXPECT_EQ(loc[kLearnerConflict], 0);
}

TEST(PaxosScenario, AcceptorIgnoresStaleRead) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 1, .learners = 1});
  State s = proto.initial();
  auto fire = [&](std::string_view tname, Value ballot) {
    for (const Event& e : enumerate_events(proto, s)) {
      const Transition& t = proto.transition(e.tid);
      if (t.name == tname &&
          (e.consumed.empty() || e.consumed[0][0] == ballot)) {
        s = execute(proto, s, e);
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(fire("START", 0));  // proposer0, ballot 1
  ASSERT_TRUE(fire("START", 0));  // proposer1, ballot 2 (first enabled START)
  // Handle the higher ballot first: acceptor promises 2.
  ASSERT_TRUE(fire("READ", 2));
  // The stale READ(1) is now permanently disabled.
  EXPECT_FALSE(fire("READ", 1));
}

TEST(PaxosVerify, QuorumModelConsensusHolds) {
  for (PaxosConfig cfg : {PaxosConfig{.proposers = 1, .acceptors = 3, .learners = 1},
                          PaxosConfig{.proposers = 2, .acceptors = 2, .learners = 1},
                          PaxosConfig{.proposers = 1, .acceptors = 3, .learners = 2}}) {
    Protocol proto = make_paxos(cfg);
    EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds) << proto.name();
  }
}

TEST(PaxosVerify, SingleMessageModelConsensusHolds) {
  Protocol proto = make_paxos(
      {.proposers = 1, .acceptors = 3, .learners = 1, .quorum_model = false});
  EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds);
}

TEST(PaxosVerify, QuorumModelSmallerThanSingleMessage) {
  const PaxosConfig q{.proposers = 1, .acceptors = 3, .learners = 1};
  PaxosConfig sm = q;
  sm.quorum_model = false;
  ExploreResult rq = explore_full(make_paxos(q));
  ExploreResult rs = explore_full(make_paxos(sm));
  // The Section II-C effect: quorum models generate fewer states.
  EXPECT_LT(rq.stats.states_stored, rs.stats.states_stored);
}

TEST(PaxosVerify, FaultyLearnerViolatesConsensus) {
  // The bug needs three acceptors: with two, every read quorum intersects
  // every write quorum in *all* acceptors and the mixed-ACCEPT set that
  // confuses the learner is unreachable (this is the paper's (2,3,1) row).
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                               .faulty_learner = true});
  ExploreResult r = explore_full(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "consensus");
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(PaxosVerify, FaultySingleMessageAlsoViolates) {
  Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                  .quorum_model = false, .faulty_learner = true});
  ExploreResult r = explore_full(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(PaxosVerify, FaultyLearnerHarmlessWithTwoAcceptors) {
  // Quorum intersection is total with 2 acceptors, so the injected learner
  // bug cannot be triggered; consensus still holds.
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 2, .learners = 1,
                               .faulty_learner = true});
  EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds);
}

TEST(PaxosVerify, SporAgreesOnBothModels) {
  for (bool quorum : {true, false}) {
    Protocol proto = make_paxos({.proposers = 2, .acceptors = 2, .learners = 1,
                                 .quorum_model = quorum});
    SporStrategy strategy(proto);
    ExploreConfig cfg;
    EXPECT_EQ(explore(proto, cfg, &strategy).verdict, Verdict::kHolds)
        << proto.name();
  }
}

TEST(PaxosVerify, TwoLearnersAgree) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 2, .learners = 2});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  EXPECT_EQ(explore(proto, cfg, &strategy).verdict, Verdict::kHolds);
}

}  // namespace
}  // namespace mpb
