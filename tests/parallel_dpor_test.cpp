// The parallel DPOR driver: backtrack points travel as {prefix, seeds} work
// items over the Chase-Lev stealing pool, and a global lock-free claim set
// keyed on (path hash, event hash) guarantees each pick is executed exactly
// once across the workers. None of that may change the answer: the parallel
// search must reach exactly the sequential verdict and terminal set on every
// model, at every thread count, on every run — a claim protocol bug shows up
// here as a lost subtree (missing terminal) or a duplicated verdict flip.
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "core/trace.hpp"
#include "por/dpor.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using namespace protocols;

struct NamedCase {
  std::string label;
  Protocol proto;
};

// Single-message (non-quorum) models — the paper's intended DPOR domain —
// plus quorum models to keep the eager per-process expansion path hot.
std::vector<NamedCase> dpor_cases() {
  std::vector<NamedCase> cases;
  auto add = [&](std::string label, Protocol p) {
    cases.push_back({std::move(label), std::move(p)});
  };
  add("collector_s_44",
      make_collector({.senders = 4, .quorum = 4, .quorum_model = false}));
  add("collector_s_43",
      make_collector({.senders = 4, .quorum = 3, .quorum_model = false}));
  add("paxos_s_131", make_paxos({.proposers = 1, .acceptors = 3, .learners = 1,
                                 .quorum_model = false}));
  add("paxos_q_221", make_paxos({.proposers = 2, .acceptors = 2, .learners = 1}));
  add("storage_q_31w1",
      make_regular_storage({.bases = 3, .readers = 1, .writes = 1}));
  return cases;
}

ExploreResult run_dpor_at(const Protocol& proto, unsigned threads,
                          bool sleep_sets = true) {
  ExploreConfig cfg;
  cfg.mode = SearchMode::kStateless;
  cfg.collect_terminals = true;
  cfg.threads = threads;
  return explore_dpor(proto, cfg,
                      DporOptions{.reduce = true, .sleep_sets = sleep_sets});
}

TEST(ParallelDpor, MatchesSequentialVerdictAndTerminalsEverywhere) {
  for (const NamedCase& c : dpor_cases()) {
    const ExploreResult seq = run_dpor_at(c.proto, 1);
    for (unsigned threads : {2u, 8u}) {
      SCOPED_TRACE(c.label + " @ " + std::to_string(threads) + " threads");
      const ExploreResult par = run_dpor_at(c.proto, threads);
      EXPECT_EQ(par.verdict, seq.verdict);
      EXPECT_EQ(par.stats.threads_used, threads);
      if (seq.verdict == Verdict::kHolds) {
        // DPOR preserves deadlocks; a lost or duplicated work item would
        // drop or double a terminal, and the merged set is sorted+unique so
        // duplication cannot hide.
        EXPECT_EQ(par.terminal_fingerprints, seq.terminal_fingerprints);
      }
    }
  }
}

TEST(ParallelDpor, ExactlyOnceClaimsAreStableUnderContention) {
  // The race-heaviest holding model in the list: every run at 8 threads puts
  // the claim protocol under real contention (workers steal seeds and race
  // to claim overlapping (path, event) pairs). Any run disagreeing with the
  // sequential answer is an exactly-once violation.
  const Protocol proto =
      make_regular_storage({.bases = 3, .readers = 1, .writes = 1});
  const ExploreResult seq = run_dpor_at(proto, 1);
  ASSERT_EQ(seq.verdict, Verdict::kHolds);
  for (int run = 0; run < 6; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    const ExploreResult par = run_dpor_at(proto, 8);
    EXPECT_EQ(par.verdict, Verdict::kHolds);
    EXPECT_EQ(par.terminal_fingerprints, seq.terminal_fingerprints);
  }
}

TEST(ParallelDpor, SleepSetsStaySoundOnThePool) {
  // Sleep sets and the claim protocol compose: each worker prunes with its
  // own per-frame sleep sets while claims dedupe across workers. On/off must
  // land on the same terminals as the sequential reference.
  const Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 2, .learners = 1});
  const ExploreResult seq = run_dpor_at(proto, 1);
  const ExploreResult on = run_dpor_at(proto, 8, /*sleep_sets=*/true);
  const ExploreResult off = run_dpor_at(proto, 8, /*sleep_sets=*/false);
  EXPECT_EQ(on.verdict, seq.verdict);
  EXPECT_EQ(off.verdict, seq.verdict);
  EXPECT_EQ(on.terminal_fingerprints, seq.terminal_fingerprints);
  EXPECT_EQ(off.terminal_fingerprints, seq.terminal_fingerprints);
  EXPECT_GT(on.stats.sleep_blocked, 0u);
  EXPECT_EQ(off.stats.sleep_blocked, 0u);
}

TEST(ParallelDpor, ViolationIsFoundAndReplaysAtEightThreads) {
  const Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                  .quorum_model = false, .faulty_learner = true});
  const ExploreResult r = run_dpor_at(proto, 8);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "consensus");
  ASSERT_FALSE(r.counterexample.empty());
  // The trace is rebuilt from the winning worker's frozen path prefix plus
  // its local frames; it must replay step-by-step through execute().
  State s = proto.initial();
  for (const TraceStep& step : r.counterexample) {
    s = execute(proto, s, step.event);
    ASSERT_EQ(s, step.after);
  }
  EXPECT_NE(proto.violated_property(s), nullptr);
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(ParallelDpor, FacadeRoutesDporOntoThePool) {
  // `mpbcheck --strategy dpor --threads 8` must actually run on the pool —
  // threads_used is the no-silent-fallback witness the acceptance criteria
  // pin.
  check::CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "2"}, {"acceptors", "2"}, {"learners", "1"}};
  req.strategy = "dpor";
  req.explore.threads = 8;
  const check::CheckResult r = check::run_check(std::move(req));
  EXPECT_EQ(r.verdict(), Verdict::kHolds);
  EXPECT_EQ(r.threads, 8u);
  EXPECT_EQ(r.result.stats.threads_used, 8u);
}

TEST(ParallelDpor, BudgetStopsThePool) {
  // Guards fire across workers, not just on thread 0.
  const Protocol proto =
      make_collector({.senders = 6, .quorum = 6, .quorum_model = false});
  ExploreConfig cfg;
  cfg.mode = SearchMode::kStateless;
  cfg.threads = 8;
  cfg.max_events = 200;
  const ExploreResult r = explore_dpor(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kBudgetExceeded);
}

}  // namespace
}  // namespace mpb
