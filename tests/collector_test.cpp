#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "protocols/collector/collector.hpp"

namespace mpb {
namespace {

using protocols::CollectorConfig;
using protocols::make_collector;

TEST(Collector, PropertyHolds) {
  for (bool quorum : {true, false}) {
    Protocol proto = make_collector({.senders = 4, .quorum = 3, .quorum_model = quorum});
    EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds) << proto.name();
  }
}

TEST(Collector, QuorumModelExactCount) {
  // With the quorum model the reachable states are: any subset of senders
  // fired x collector done-or-not (done only once >= l pings existed).
  Protocol proto = make_collector({.senders = 3, .quorum = 3});
  ExploreResult r = explore_full(proto);
  // 2^3 sender subsets; "done" reachable only from the full subset, and the
  // quorum consumes all three pings: 8 + 1 = 9.
  EXPECT_EQ(r.stats.states_stored, 9u);
}

TEST(Collector, SingleMessageModelLargerStateSpace) {
  for (unsigned l = 2; l <= 4; ++l) {
    CollectorConfig q{.senders = 4, .quorum = l, .quorum_model = true};
    CollectorConfig sm = q;
    sm.quorum_model = false;
    const auto rq = explore_full(make_collector(q));
    const auto rs = explore_full(make_collector(sm));
    EXPECT_LT(rq.stats.states_stored, rs.stats.states_stored) << "l=" << l;
  }
}

struct SweepParam {
  unsigned senders;
  unsigned quorum;
};

class CollectorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CollectorSweep, QuorumNeverWorseAndAlwaysSound) {
  const auto [n, l] = GetParam();
  CollectorConfig q{.senders = n, .quorum = l, .quorum_model = true};
  CollectorConfig sm = q;
  sm.quorum_model = false;
  const auto rq = explore_full(make_collector(q));
  const auto rs = explore_full(make_collector(sm));
  EXPECT_EQ(rq.verdict, Verdict::kHolds);
  EXPECT_EQ(rs.verdict, Verdict::kHolds);
  EXPECT_LE(rq.stats.states_stored, rs.stats.states_stored);
}

INSTANTIATE_TEST_SUITE_P(
    AllSizes, CollectorSweep,
    ::testing::Values(SweepParam{2, 1}, SweepParam{2, 2}, SweepParam{3, 2},
                      SweepParam{3, 3}, SweepParam{4, 2}, SweepParam{4, 3},
                      SweepParam{4, 4}, SweepParam{5, 3}, SweepParam{5, 5},
                      SweepParam{6, 4}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.senders) + "_l" +
             std::to_string(info.param.quorum);
    });

TEST(Collector, NoiseProcessesMultiplyStates) {
  CollectorConfig base{.senders = 3, .quorum = 2};
  CollectorConfig noisy = base;
  noisy.noise = 2;
  const auto rb = explore_full(make_collector(base));
  const auto rn = explore_full(make_collector(noisy));
  // Each independent noise process doubles the state count.
  EXPECT_EQ(rn.stats.states_stored, rb.stats.states_stored * 4);
}

TEST(Collector, SettingString) {
  EXPECT_EQ((CollectorConfig{.senders = 4, .quorum = 3}).setting(), "(n=4,l=3)");
  EXPECT_EQ((CollectorConfig{.senders = 4, .quorum = 3, .noise = 2}).setting(),
            "(n=4,l=3,k=2)");
}

}  // namespace
}  // namespace mpb
