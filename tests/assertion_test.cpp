// In-transition specification assertions — the paper's spec mechanism
// ("the specification is a set of Java assertions defined within
// transitions"). Violations live on *edges*; stubborn-set POR preserves them
// without any visibility proviso because assertion inputs (own locals,
// consumed messages, declared peeks) are all covered by the dependence
// relation.
#include <gtest/gtest.h>

#include "core/trace.hpp"
#include "mp/builder.hpp"
#include "por/dpor.hpp"
#include "por/spor.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"

namespace mpb {
namespace {

// Two processes incrementing a shared logical step; B asserts it never moves
// second (violated in exactly one interleaving).
Protocol make_racy_assert(bool violable) {
  mp::ProtocolBuilder b("racy-assert");
  const ProcessId pa = b.process("a", "P", {{"x", 0}});
  const ProcessId pb = b.process("b", "P", {{"y", 0}});
  b.transition(pa, "A_STEP")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .reads(1)
      .writes(1)
      .priority(2);
  b.transition(pb, "B_STEP")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([=](EffectCtx& c) {
        c.set_local(0, 1);
        c.assert_that(!violable || c.peek(pa, 0) == 0, "b_first");
      })
      .reads(1)
      .writes(1)
      .peeks(pa, 1)
      .priority(1);
  return b.build();
}

TEST(Assertion, CleanExecutionReportsNoFailure) {
  Protocol proto = make_racy_assert(false);
  EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds);
}

TEST(Assertion, ViolationDetectedByFullSearch) {
  Protocol proto = make_racy_assert(true);
  ExploreResult r = explore_full(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "b_first");
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(Assertion, ViolationPreservedBySporWithoutVisibility) {
  // Neither transition is marked visible; the declared peek dependence alone
  // must carry the violating interleaving into the reduced graph.
  Protocol proto = make_racy_assert(true);
  for (SeedHeuristic h : {SeedHeuristic::kOppositeTransaction,
                          SeedHeuristic::kTransaction, SeedHeuristic::kFirst}) {
    SporOptions opts;
    opts.seed = h;
    SporStrategy strategy(proto, opts);
    ExploreConfig cfg;
    ExploreResult r = explore(proto, cfg, &strategy);
    EXPECT_EQ(r.verdict, Verdict::kViolated) << to_string(h);
    EXPECT_EQ(r.violated_property, "b_first") << to_string(h);
  }
}

TEST(Assertion, ViolationPreservedByDpor) {
  Protocol proto = make_racy_assert(true);
  ExploreConfig cfg;
  cfg.mode = SearchMode::kStateless;
  ExploreResult r = explore_dpor(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
}

TEST(Assertion, CounterexampleReplays) {
  Protocol proto = make_racy_assert(true);
  ExploreResult r = explore_full(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(Assertion, FirstFailureLabelWins) {
  mp::ProtocolBuilder b("two-asserts");
  const ProcessId p = b.process("p", "P", {{"x", 0}});
  b.transition(p, "GO")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) {
        c.set_local(0, 1);
        c.assert_that(false, "first");
        c.assert_that(false, "second");
      });
  Protocol proto = b.build();
  ExploreResult r = explore_full(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "first");
}

TEST(Assertion, ExecuteSurfacesLabel) {
  Protocol proto = make_racy_assert(true);
  // Drive the violating order by hand: A_STEP then B_STEP.
  State s = proto.initial();
  std::string failed;
  auto evs = enumerate_events(proto, s);
  // A_STEP is tid 0.
  s = execute(proto, s, evs[0], {}, &failed);
  EXPECT_TRUE(failed.empty());
  evs = enumerate_events(proto, s);
  ASSERT_EQ(evs.size(), 1u);
  s = execute(proto, s, evs[0], {}, &failed);
  EXPECT_EQ(failed, "b_first");
}

TEST(Assertion, PaxosConsensusSpecIsAsserted) {
  // The faulty learner's violation is reported through the in-transition
  // assertion, with the same label as the state predicate.
  using protocols::make_paxos;
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                               .faulty_learner = true});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult r = explore(proto, cfg, &strategy);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "consensus");
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(Assertion, TwoLearnerDisagreementCaughtByPeekAssertion) {
  using protocols::make_paxos;
  // Two faulty learners: the cross-learner peek assertion must catch the
  // disagreement under reduction.
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 2,
                               .faulty_learner = true});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  cfg.max_states = 2'000'000;
  ExploreResult r = explore(proto, cfg, &strategy);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
}

TEST(Assertion, StorageRegularitySpecIsAsserted) {
  using protocols::make_regular_storage;
  Protocol proto = make_regular_storage(
      {.bases = 3, .readers = 1, .writes = 2, .wrong_regularity = true});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult r = explore(proto, cfg, &strategy);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "wrong_regularity");
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(Assertion, ExhaustiveSeedStaysSound) {
  Protocol proto = make_racy_assert(true);
  SporOptions opts;
  opts.exhaustive_seed = true;
  SporStrategy strategy(proto, opts);
  ExploreConfig cfg;
  EXPECT_EQ(explore(proto, cfg, &strategy).verdict, Verdict::kViolated);
}

}  // namespace
}  // namespace mpb
