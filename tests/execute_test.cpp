#include <gtest/gtest.h>

#include "core/enabled.hpp"
#include "core/execute.hpp"
#include "mp/builder.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using testing::make_ping_pong;

Event first_event(const Protocol& proto, const State& s) {
  auto evs = enumerate_events(proto, s);
  EXPECT_FALSE(evs.empty());
  return evs.front();
}

TEST(Execute, ConsumesAndSends) {
  Protocol proto = make_ping_pong();
  State s0 = proto.initial();

  // alice.SEND
  State s1 = execute(proto, s0, first_event(proto, s0));
  EXPECT_EQ(s1.locals()[0], 1);  // sent flag
  ASSERT_EQ(s1.network_size(), 1u);
  EXPECT_EQ(proto.msg_type_name(s1.network()[0].type()), "PING");

  // bob.PING -> PONG reply
  State s2 = execute(proto, s1, first_event(proto, s1));
  ASSERT_EQ(s2.network_size(), 1u);
  EXPECT_EQ(proto.msg_type_name(s2.network()[0].type()), "PONG");
  EXPECT_EQ(s2.network()[0][0], 43);

  // alice.PONG
  State s3 = execute(proto, s2, first_event(proto, s2));
  EXPECT_EQ(s3.network_size(), 0u);
  EXPECT_EQ(s3.locals()[1], 43);
  EXPECT_TRUE(enumerate_events(proto, s3).empty());
}

TEST(Execute, IsDeterministic) {
  Protocol proto = make_ping_pong();
  State s0 = proto.initial();
  const Event e = first_event(proto, s0);
  EXPECT_EQ(execute(proto, s0, e), execute(proto, s0, e));
}

TEST(Execute, DoesNotMutateSourceState) {
  Protocol proto = make_ping_pong();
  State s0 = proto.initial();
  State copy = s0;
  (void)execute(proto, s0, first_event(proto, s0));
  EXPECT_EQ(s0, copy);
}

// --- annotation validation ---

Protocol make_bad_protocol(int which) {
  mp::ProtocolBuilder b("bad");
  const MsgType mA = b.msg("A");
  const MsgType mB = b.msg("B");
  const ProcessId p = b.process("p", "P", {{"x", 0}});
  const ProcessId q = b.process("q", "Q", {{"y", 0}});
  (void)mB;

  switch (which) {
    case 0:  // sends undeclared type
      b.transition(p, "T")
          .spontaneous()
          .guard([](const GuardView& g) { return g.local[0] == 0; })
          .effect([=](EffectCtx& c) {
            c.set_local(0, 1);
            c.send(q, mB, {});  // declared A, sends B
          })
          .sends("A", mask_of(q));
      break;
    case 1:  // sends to undeclared recipient
      b.transition(p, "T")
          .spontaneous()
          .guard([](const GuardView& g) { return g.local[0] == 0; })
          .effect([=](EffectCtx& c) {
            c.set_local(0, 1);
            c.send(q, mA, {});
          })
          .sends("A", mask_of(p));  // only p declared
      break;
    case 2:  // writes local despite isWrite=false
      b.transition(p, "T")
          .spontaneous()
          .guard([](const GuardView& g) { return g.local[0] == 0; })
          .effect([](EffectCtx& c) { c.set_local(0, 1); })
          .writes_local(false);
      break;
    case 3: {  // reply transition sending to a non-sender
      b.transition(p, "KICK")
          .spontaneous()
          .guard([](const GuardView& g) { return g.local[0] == 0; })
          .effect([=](EffectCtx& c) {
            c.set_local(0, 1);
            c.send(q, mA, {});
          })
          .sends("A", mask_of(q));
      b.transition(q, "A")
          .consumes("A", 1)
          .effect([=](EffectCtx& c) {
            c.set_local(0, 1);
            c.send(q, mA, {});  // "reply" to itself, not to the sender p
          })
          .sends("A", mask_of(p) | mask_of(q))
          .reply();
      break;
    }
    default:
      break;
  }
  return b.build();
}

TEST(ExecuteValidation, UndeclaredOutTypeThrows) {
  Protocol proto = make_bad_protocol(0);
  const Event e = first_event(proto, proto.initial());
  EXPECT_THROW((void)execute(proto, proto.initial(), e), AnnotationError);
}

TEST(ExecuteValidation, UndeclaredRecipientThrows) {
  Protocol proto = make_bad_protocol(1);
  const Event e = first_event(proto, proto.initial());
  EXPECT_THROW((void)execute(proto, proto.initial(), e), AnnotationError);
}

TEST(ExecuteValidation, WriteDespiteIsWriteFalseThrows) {
  Protocol proto = make_bad_protocol(2);
  const Event e = first_event(proto, proto.initial());
  EXPECT_THROW((void)execute(proto, proto.initial(), e), AnnotationError);
}

TEST(ExecuteValidation, ReplyToNonSenderThrows) {
  Protocol proto = make_bad_protocol(3);
  State s = execute(proto, proto.initial(), first_event(proto, proto.initial()));
  const Event e = first_event(proto, s);  // q.A, the broken reply
  EXPECT_THROW((void)execute(proto, s, e), AnnotationError);
}

TEST(ExecuteValidation, CanBeDisabled) {
  Protocol proto = make_bad_protocol(0);
  const Event e = first_event(proto, proto.initial());
  ExecuteOptions opts;
  opts.validate_annotations = false;
  EXPECT_NO_THROW((void)execute(proto, proto.initial(), e, opts));
}

TEST(Execute, GhostPeekReadsOtherProcess) {
  mp::ProtocolBuilder b("peek");
  const ProcessId p = b.process("p", "P", {{"x", 0}});
  const ProcessId q = b.process("q", "Q", {{"y", 77}});
  b.transition(p, "SNAP")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([=](EffectCtx& c) { c.set_local(0, c.peek(q, 0)); })
      .peeks(mask_of(q));
  Protocol proto = b.build();
  State s = execute(proto, proto.initial(), first_event(proto, proto.initial()));
  EXPECT_EQ(s.locals()[0], 77);
}

TEST(ExecuteValidation, UndeclaredPeekThrows) {
  mp::ProtocolBuilder b("peek-bad");
  const ProcessId p = b.process("p", "P", {{"x", 0}});
  const ProcessId q = b.process("q", "Q", {{"y", 77}});
  b.transition(p, "SNAP")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([=](EffectCtx& c) { c.set_local(0, c.peek(q, 0)); });
  // No .peeks(mask_of(q)): the ghost read is an undeclared dependence.
  Protocol proto = b.build();
  const Event e = first_event(proto, proto.initial());
  EXPECT_THROW((void)execute(proto, proto.initial(), e), AnnotationError);
}

TEST(Execute, SelfPeekNeedsNoAnnotation) {
  mp::ProtocolBuilder b("self-peek");
  const ProcessId p = b.process("p", "P", {{"x", 5}, {"y", 0}});
  b.transition(p, "COPY")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[1] == 0; })
      .effect([=](EffectCtx& c) { c.set_local(1, c.peek(p, 0)); });
  Protocol proto = b.build();
  State s = execute(proto, proto.initial(), first_event(proto, proto.initial()));
  EXPECT_EQ(s.locals()[1], 5);
}

}  // namespace
}  // namespace mpb
