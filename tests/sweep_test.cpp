// Parameterized property sweeps across protocol settings: for every setting
// in each family, (1) the safety property holds (or is violated exactly when
// the fault/spec injection says so), (2) the quorum model never stores more
// states than the single-message model, (3) SPOR agrees with the unreduced
// search and never stores more states.
#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "por/spor.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"

namespace mpb {
namespace {

using namespace protocols;

// ---------------- Paxos sweep ----------------

struct PaxosParam {
  unsigned proposers, acceptors, learners;
  bool faulty;
  Verdict expected;
};

class PaxosSweep : public ::testing::TestWithParam<PaxosParam> {};

TEST_P(PaxosSweep, VerdictAndModelSizeInvariants) {
  const auto [p, a, l, faulty, expected] = GetParam();
  PaxosConfig q{.proposers = p, .acceptors = a, .learners = l,
                .faulty_learner = faulty};
  PaxosConfig sm = q;
  sm.quorum_model = false;

  Protocol quorum = make_paxos(q);
  Protocol single = make_paxos(sm);

  ExploreResult rq = explore_full(quorum);
  ExploreResult rs = explore_full(single);
  EXPECT_EQ(rq.verdict, expected) << quorum.name();
  EXPECT_EQ(rs.verdict, expected) << single.name();

  if (expected == Verdict::kHolds) {
    // Section II-C: the quorum model is the smaller protocol-level model.
    EXPECT_LE(rq.stats.states_stored, rs.stats.states_stored);
  }

  SporStrategy strategy(quorum);
  ExploreConfig cfg;
  ExploreResult reduced = explore(quorum, cfg, &strategy);
  EXPECT_EQ(reduced.verdict, expected);
  EXPECT_LE(reduced.stats.states_stored, rq.stats.states_stored);
}

INSTANTIATE_TEST_SUITE_P(
    Settings, PaxosSweep,
    ::testing::Values(PaxosParam{1, 1, 1, false, Verdict::kHolds},
                      PaxosParam{1, 2, 1, false, Verdict::kHolds},
                      PaxosParam{1, 3, 1, false, Verdict::kHolds},
                      PaxosParam{1, 3, 2, false, Verdict::kHolds},
                      PaxosParam{2, 2, 1, false, Verdict::kHolds},
                      PaxosParam{2, 3, 1, false, Verdict::kHolds},
                      PaxosParam{1, 3, 1, true, Verdict::kHolds},
                      PaxosParam{2, 2, 1, true, Verdict::kHolds},
                      PaxosParam{2, 3, 1, true, Verdict::kViolated}),
    [](const ::testing::TestParamInfo<PaxosParam>& info) {
      const auto& p = info.param;
      return (p.faulty ? "faulty_" : "") + std::to_string(p.proposers) + "_" +
             std::to_string(p.acceptors) + "_" + std::to_string(p.learners);
    });

// ---------------- Echo Multicast sweep ----------------

struct EchoParam {
  unsigned hr, hi, br, bi;
  int tolerance;
  Verdict expected;
};

class EchoSweep : public ::testing::TestWithParam<EchoParam> {};

TEST_P(EchoSweep, VerdictAndModelSizeInvariants) {
  const auto [hr, hi, br, bi, tol, expected] = GetParam();
  EchoConfig q{.honest_receivers = hr, .honest_initiators = hi,
               .byz_receivers = br, .byz_initiators = bi, .tolerance = tol};
  EchoConfig sm = q;
  sm.quorum_model = false;

  Protocol quorum = make_echo_multicast(q);
  Protocol single = make_echo_multicast(sm);

  ExploreResult rq = explore_full(quorum);
  ExploreResult rs = explore_full(single);
  EXPECT_EQ(rq.verdict, expected) << quorum.name();
  EXPECT_EQ(rs.verdict, expected) << single.name();
  if (expected == Verdict::kHolds) {
    EXPECT_LE(rq.stats.states_stored, rs.stats.states_stored);
  }

  SporStrategy strategy(quorum);
  ExploreConfig cfg;
  EXPECT_EQ(explore(quorum, cfg, &strategy).verdict, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Settings, EchoSweep,
    ::testing::Values(
        // correctly provisioned: agreement holds
        EchoParam{2, 1, 0, 0, -1, Verdict::kHolds},
        EchoParam{3, 1, 0, 0, -1, Verdict::kHolds},
        EchoParam{2, 0, 1, 1, -1, Verdict::kHolds},
        EchoParam{3, 0, 1, 1, -1, Verdict::kHolds},
        EchoParam{2, 1, 0, 1, -1, Verdict::kHolds},
        EchoParam{2, 1, 2, 1, -1, Verdict::kHolds},  // t = BR: attack defeated
        // under-provisioned thresholds: equivocation succeeds
        EchoParam{2, 0, 2, 1, 1, Verdict::kViolated},
        EchoParam{2, 1, 2, 1, 1, Verdict::kViolated},
        EchoParam{2, 0, 2, 1, 0, Verdict::kViolated}),
    [](const ::testing::TestParamInfo<EchoParam>& info) {
      const auto& p = info.param;
      std::string name = std::to_string(p.hr) + "_" + std::to_string(p.hi) + "_" +
                         std::to_string(p.br) + "_" + std::to_string(p.bi);
      if (p.tolerance >= 0) name += "_t" + std::to_string(p.tolerance);
      return name;
    });

// ---------------- Regular storage sweep ----------------

struct StorageParam {
  unsigned bases, readers, writes;
  bool wrong;
  Verdict expected;
};

class StorageSweep : public ::testing::TestWithParam<StorageParam> {};

TEST_P(StorageSweep, VerdictAndModelSizeInvariants) {
  const auto [b, r, w, wrong, expected] = GetParam();
  StorageConfig q{.bases = b, .readers = r, .writes = w, .wrong_regularity = wrong};
  StorageConfig sm = q;
  sm.quorum_model = false;

  Protocol quorum = make_regular_storage(q);
  Protocol single = make_regular_storage(sm);

  ExploreResult rq = explore_full(quorum);
  ExploreResult rs = explore_full(single);
  EXPECT_EQ(rq.verdict, expected) << quorum.name();
  EXPECT_EQ(rs.verdict, expected) << single.name();
  if (expected == Verdict::kHolds) {
    EXPECT_LE(rq.stats.states_stored, rs.stats.states_stored);
  }

  SporStrategy strategy(quorum);
  ExploreConfig cfg;
  EXPECT_EQ(explore(quorum, cfg, &strategy).verdict, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Settings, StorageSweep,
    ::testing::Values(
        StorageParam{1, 1, 1, false, Verdict::kHolds},
        StorageParam{3, 1, 0, false, Verdict::kHolds},
        StorageParam{3, 1, 1, false, Verdict::kHolds},
        StorageParam{3, 1, 2, false, Verdict::kHolds},
        StorageParam{3, 2, 1, false, Verdict::kHolds},
        StorageParam{5, 1, 1, false, Verdict::kHolds},
        // a read with no concurrent write cannot violate even the wrong spec
        StorageParam{3, 1, 0, true, Verdict::kHolds},
        // concurrency makes the too-strong spec fail
        StorageParam{3, 1, 1, true, Verdict::kViolated},
        StorageParam{3, 1, 2, true, Verdict::kViolated},
        StorageParam{3, 2, 2, true, Verdict::kViolated}),
    [](const ::testing::TestParamInfo<StorageParam>& info) {
      const auto& p = info.param;
      return std::string(p.wrong ? "wrong_" : "") + std::to_string(p.bases) + "_" +
             std::to_string(p.readers) + "_w" + std::to_string(p.writes);
    });

// Quorum-size scaling: the quorum-model advantage grows with the majority
// size (Section II-C: "the larger the quorum the bigger the gain").
TEST(SweepScaling, QuorumAdvantageGrowsWithAcceptors) {
  double prev_ratio = 0.0;
  for (unsigned a : {2u, 3u, 4u}) {
    PaxosConfig q{.proposers = 1, .acceptors = a, .learners = 1};
    PaxosConfig sm = q;
    sm.quorum_model = false;
    const auto rq = explore_full(make_paxos(q));
    const auto rs = explore_full(make_paxos(sm));
    const double ratio = static_cast<double>(rs.stats.states_stored) /
                         static_cast<double>(rq.stats.states_stored);
    EXPECT_GE(ratio, 1.0) << "acceptors=" << a;
    EXPECT_GE(ratio, prev_ratio * 0.9) << "acceptors=" << a;  // monotone-ish
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace mpb
