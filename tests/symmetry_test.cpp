#include <gtest/gtest.h>

#include "por/spor.hpp"
#include "por/symmetry.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using namespace protocols;

ExploreConfig with_symmetry(const SymmetryReducer& sym) {
  ExploreConfig cfg;
  cfg.canonicalize = [&sym](const State& s) { return sym.canonicalize(s); };
  return cfg;
}

TEST(Symmetry, OrbitBoundIsProductOfFactorials) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 2});
  SymmetryReducer sym(proto, paxos_symmetric_roles(
                                 {.proposers = 2, .acceptors = 3, .learners = 2}));
  EXPECT_EQ(sym.orbit_bound(), 3u * 2u * 1u * 2u * 1u);  // 3! * 2!
}

TEST(Symmetry, CanonicalFormIsIdempotentAndOrbitInvariant) {
  PaxosConfig cfg{.proposers = 1, .acceptors = 3, .learners = 1};
  Protocol proto = make_paxos(cfg);
  SymmetryReducer sym(proto, paxos_symmetric_roles(cfg));

  for (const State& s : reachable_states(proto)) {
    const State canon = sym.canonicalize(s);
    EXPECT_EQ(sym.canonicalize(canon), canon);
    // The canonical form is the orbit minimum, hence <= the original.
    EXPECT_FALSE(canon < canon);
    EXPECT_TRUE(canon < s || canon == s);
  }
}

TEST(Symmetry, SwappedAcceptorsHaveOneRepresentative) {
  PaxosConfig cfg{.proposers = 1, .acceptors = 2, .learners = 1};
  Protocol proto = make_paxos(cfg);
  SymmetryReducer sym(proto, paxos_symmetric_roles(cfg));

  // Build two states that differ only by swapping acceptor local states.
  State a = proto.initial();
  a.local_slice_mut(proto.proc(1).local_offset, 3)[0] = 7;  // acceptor0.promised
  State b = proto.initial();
  b.local_slice_mut(proto.proc(2).local_offset, 3)[0] = 7;  // acceptor1.promised
  EXPECT_FALSE(a == b);
  EXPECT_EQ(sym.canonicalize(a), sym.canonicalize(b));
}

TEST(Symmetry, MessagesAreRenamedWithProcesses) {
  CollectorConfig cfg{.senders = 3, .quorum = 3};
  Protocol proto = make_collector(cfg);
  SymmetryReducer sym(proto, collector_symmetric_roles(cfg));
  const MsgType ping = proto.find_msg_type("PING").value();

  // A ping from sender 1 vs the same ping from sender 2 with swapped flags.
  State a = proto.initial();
  a.local_slice_mut(proto.proc(1).local_offset, 1)[0] = 1;
  a.add_message(Message(ping, 1, 0, {}));
  State b = proto.initial();
  b.local_slice_mut(proto.proc(2).local_offset, 1)[0] = 1;
  b.add_message(Message(ping, 2, 0, {}));
  EXPECT_EQ(sym.canonicalize(a), sym.canonicalize(b));
}

TEST(Symmetry, RejectsNonSymmetricGroup) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 2, .learners = 1});
  // Proposers carry distinct ballots but identical structure — the structural
  // check cannot reject them. A proposer and an acceptor, however, differ.
  EXPECT_THROW(SymmetryReducer(proto, {{0, 2}}), std::invalid_argument);
}

TEST(Symmetry, DetectRolesFindsReplicas) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  auto roles = SymmetryReducer::detect_roles(proto);
  // Proposers are structurally identical (the ballot lives in closures), so
  // detection proposes them too — the factories' explicit exports are the
  // behaviourally safe subset.
  bool found_acceptors = false;
  for (const auto& g : roles) {
    if (g.size() == 3 && proto.proc(g[0]).type_name == "Acceptor") {
      found_acceptors = true;
    }
  }
  EXPECT_TRUE(found_acceptors);
}

// --- verdict preservation and reduction across the protocol families ---

struct SymCase {
  std::string label;
  Protocol proto;
  std::vector<std::vector<ProcessId>> roles;
};

std::vector<SymCase> sym_cases() {
  std::vector<SymCase> cases;
  {
    PaxosConfig c{.proposers = 1, .acceptors = 3, .learners = 1};
    cases.push_back({"paxos_131", make_paxos(c), paxos_symmetric_roles(c)});
  }
  {
    PaxosConfig c{.proposers = 2, .acceptors = 3, .learners = 1};
    cases.push_back({"paxos_231", make_paxos(c), paxos_symmetric_roles(c)});
  }
  {
    PaxosConfig c{.proposers = 2, .acceptors = 3, .learners = 1,
                  .faulty_learner = true};
    cases.push_back({"faulty_paxos_231", make_paxos(c), paxos_symmetric_roles(c)});
  }
  {
    StorageConfig c{.bases = 3, .readers = 1, .writes = 2};
    cases.push_back({"storage_31", make_regular_storage(c), storage_symmetric_roles(c)});
  }
  {
    StorageConfig c{.bases = 3, .readers = 2, .writes = 2,
                    .wrong_regularity = true};
    cases.push_back(
        {"storage_wrong_32", make_regular_storage(c), storage_symmetric_roles(c)});
  }
  {
    EchoConfig c{.honest_receivers = 3, .honest_initiators = 1,
                 .byz_receivers = 0, .byz_initiators = 0};
    cases.push_back({"echo_3100", make_echo_multicast(c), echo_symmetric_roles(c)});
  }
  {
    CollectorConfig c{.senders = 4, .quorum = 3};
    cases.push_back({"collector", make_collector(c), collector_symmetric_roles(c)});
  }
  return cases;
}

TEST(Symmetry, PreservesVerdictsAndShrinksStateCounts) {
  for (SymCase& c : sym_cases()) {
    SymmetryReducer sym(c.proto, c.roles);
    ExploreConfig plain;
    ExploreResult full = explore(c.proto, plain);
    ExploreConfig reduced_cfg = with_symmetry(sym);
    ExploreResult reduced = explore(c.proto, reduced_cfg);
    EXPECT_EQ(reduced.verdict, full.verdict) << c.label;
    EXPECT_LE(reduced.stats.states_stored, full.stats.states_stored) << c.label;
    if (full.verdict == Verdict::kHolds && sym.orbit_bound() > 1) {
      EXPECT_LT(reduced.stats.states_stored, full.stats.states_stored) << c.label;
    }
  }
}

TEST(Symmetry, ComposesWithSpor) {
  for (SymCase& c : sym_cases()) {
    SymmetryReducer sym(c.proto, c.roles);
    ExploreConfig plain;
    const Verdict expected = explore(c.proto, plain).verdict;

    SporStrategy strategy(c.proto);
    ExploreConfig both = with_symmetry(sym);
    ExploreResult r = explore(c.proto, both, &strategy);
    EXPECT_EQ(r.verdict, expected) << c.label;
  }
}

TEST(Symmetry, CanonicalTerminalSetsMatch) {
  // The canonicalized terminal states of the plain search must be exactly
  // the terminal states found under symmetry reduction.
  CollectorConfig cfg{.senders = 4, .quorum = 2};
  Protocol proto = make_collector(cfg);
  SymmetryReducer sym(proto, collector_symmetric_roles(cfg));

  ExploreConfig plain;
  plain.collect_terminals = true;
  plain.canonicalize = [&sym](const State& s) { return sym.canonicalize(s); };
  ExploreResult reduced = explore(proto, plain);

  ExploreConfig full_cfg;
  full_cfg.collect_terminals = true;
  ExploreResult full = explore(proto, full_cfg);

  // Canonicalizing the full run's terminal states must give the reduced set.
  // (Recompute from reachable states to use real State values.)
  std::vector<Fingerprint> canon;
  for (const State& s : reachable_states(proto)) {
    if (enumerate_events(proto, s).empty()) {
      canon.push_back(sym.canonicalize(s).fingerprint());
    }
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  EXPECT_EQ(reduced.terminal_fingerprints, canon);
  EXPECT_LE(reduced.terminal_fingerprints.size(), full.terminal_fingerprints.size());
}

TEST(Symmetry, SingletonGroupsAreNoOps) {
  Protocol proto = testing::make_ping_pong();
  SymmetryReducer sym(proto, {{0}, {1}});
  EXPECT_EQ(sym.orbit_bound(), 1u);
  const State s = proto.initial();
  EXPECT_EQ(sym.canonicalize(s), s);
}

}  // namespace
}  // namespace mpb
