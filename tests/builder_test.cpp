#include <gtest/gtest.h>

#include "mp/builder.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

TEST(Builder, ProcessLayoutAndNames) {
  mp::ProtocolBuilder b("layout");
  const ProcessId p0 = b.process("a", "TypeA", {{"x", 1}, {"y", 2}});
  const ProcessId p1 = b.process("b", "TypeB", {{"z", 3}});
  b.transition(p0, "NOOP")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 99; });
  Protocol proto = b.build();

  EXPECT_EQ(proto.n_procs(), 2u);
  EXPECT_EQ(proto.proc(p0).name, "a");
  EXPECT_EQ(proto.proc(p0).local_offset, 0u);
  EXPECT_EQ(proto.proc(p0).local_len, 2u);
  EXPECT_EQ(proto.proc(p1).local_offset, 2u);
  EXPECT_EQ(proto.proc(p1).local_len, 1u);
  EXPECT_EQ(proto.proc(p1).var_names[0], "z");

  auto locals = proto.initial().locals();
  ASSERT_EQ(locals.size(), 3u);
  EXPECT_EQ(locals[0], 1);
  EXPECT_EQ(locals[1], 2);
  EXPECT_EQ(locals[2], 3);
}

TEST(Builder, RoleMask) {
  mp::ProtocolBuilder b("roles");
  b.process("a0", "Acceptor", {});
  b.process("p0", "Proposer", {});
  b.process("a1", "Acceptor", {});
  b.transition(0, "NOOP").spontaneous().guard([](const GuardView&) { return false; });
  Protocol proto = b.build();
  EXPECT_EQ(proto.role_mask("Acceptor"), mask_of(0) | mask_of(2));
  EXPECT_EQ(proto.role_mask("Proposer"), mask_of(1));
  EXPECT_EQ(proto.role_mask("Nothing"), 0u);
}

TEST(Builder, MsgTypeInterning) {
  mp::ProtocolBuilder b("types");
  const MsgType a = b.msg("A");
  const MsgType a2 = b.msg("A");
  const MsgType c = b.msg("C");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, c);
  b.process("p", "P", {});
  b.transition(0, "NOOP").spontaneous().guard([](const GuardView&) { return false; });
  Protocol proto = b.build();
  EXPECT_EQ(proto.msg_type_name(a), "A");
  EXPECT_EQ(proto.find_msg_type("C"), c);
  EXPECT_FALSE(proto.find_msg_type("D").has_value());
  EXPECT_EQ(proto.n_msg_types(), 2u);
}

TEST(Builder, RejectsReplyQuorumTransition) {
  mp::ProtocolBuilder b("bad-reply");
  b.process("p", "P", {});
  b.process("q", "Q", {});
  b.transition(0, "T").consumes("M", 2).reply();
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Builder, RejectsEmptyProtocol) {
  mp::ProtocolBuilder b("empty");
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Builder, RejectsBadProcId) {
  mp::ProtocolBuilder b("bad-proc");
  b.process("p", "P", {});
  b.transition(7, "T").spontaneous();
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Builder, PropertiesAreRegistered) {
  Protocol proto = testing::make_ping_pong();
  ASSERT_EQ(proto.properties().size(), 1u);
  EXPECT_EQ(proto.properties()[0].name, "pong_is_43");
  EXPECT_NE(proto.find_property("pong_is_43"), nullptr);
  EXPECT_EQ(proto.find_property("nope"), nullptr);
  EXPECT_EQ(proto.violated_property(proto.initial()), nullptr);
}

TEST(Builder, InitialMessagesLand) {
  mp::ProtocolBuilder b("init-msgs");
  const MsgType mA = b.msg("A");
  const ProcessId p = b.process("p", "P", {});
  b.transition(p, "A").consumes("A", 1);
  b.initial_message(Message(mA, p, p, {1}));
  b.initial_message(Message(mA, p, p, {2}));
  Protocol proto = b.build();
  EXPECT_EQ(proto.initial().network_size(), 2u);
}

TEST(Builder, SendsAccumulate) {
  mp::ProtocolBuilder b("sends");
  const ProcessId p = b.process("p", "P", {});
  const ProcessId q = b.process("q", "Q", {});
  b.transition(p, "T")
      .spontaneous()
      .guard([](const GuardView&) { return false; })
      .sends("A", mask_of(q))
      .sends("B", mask_of(p));
  Protocol proto = b.build();
  const Transition& t = proto.transition(0);
  EXPECT_EQ(t.out_types.size(), 2u);
  EXPECT_EQ(t.send_to, mask_of(p) | mask_of(q));
}

TEST(Builder, TransitionDefaults) {
  mp::ProtocolBuilder b("defaults");
  const ProcessId p = b.process("p", "P", {});
  b.transition(p, "T").consumes("M", 1);
  Protocol proto = b.build();
  const Transition& t = proto.transition(0);
  EXPECT_EQ(t.arity, 1);
  EXPECT_TRUE(t.reads_local);
  EXPECT_TRUE(t.writes_local);
  EXPECT_FALSE(t.is_reply);
  EXPECT_FALSE(t.visible);
  EXPECT_EQ(t.priority, 0);
  EXPECT_EQ(t.allowed_senders, kAllProcesses);
  EXPECT_TRUE(t.out_types.empty());
  EXPECT_EQ(t.split_of, kNoTransition);
}

TEST(Builder, ValidateCatchesSchemaMismatch) {
  Protocol proto("manual");
  ProcessInfo pi;
  pi.name = "p";
  pi.type_name = "P";
  pi.local_offset = 0;
  pi.local_len = 2;
  pi.var_names = {"only_one"};  // mismatch
  proto.add_process(pi);
  EXPECT_FALSE(proto.validate().empty());
}

}  // namespace
}  // namespace mpb
