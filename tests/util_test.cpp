#include <gtest/gtest.h>

#include <set>

#include "util/bitmask.hpp"
#include "util/combinatorics.hpp"
#include "util/hash.hpp"

namespace mpb {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(0), mix64(0));
  EXPECT_EQ(mix64(12345), mix64(12345));
}

TEST(Mix64, SpreadsNearbyInputs) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), mix64(1));
  // Flipping one bit should flip roughly half the output bits.
  const std::uint64_t d = mix64(7) ^ mix64(6);
  EXPECT_GE(std::popcount(d), 16);
}

TEST(Hasher64, SameSequenceSameDigest) {
  Hasher64 a, b;
  for (std::uint64_t v : {1ull, 2ull, 3ull}) {
    a.add(v);
    b.add(v);
  }
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Hasher64, OrderMatters) {
  Hasher64 a, b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hasher64, SeedMatters) {
  Hasher64 a(1), b(2);
  a.add(7);
  b.add(7);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hasher64, EmptyDiffersFromOneElement) {
  Hasher64 a, b;
  b.add(0);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashString, DistinguishesStrings) {
  EXPECT_EQ(hash_string("READ"), hash_string("READ"));
  EXPECT_NE(hash_string("READ"), hash_string("WRITE"));
  EXPECT_NE(hash_string(""), hash_string("a"));
  // Longer than one 8-byte word.
  EXPECT_NE(hash_string("READ_REPL_LONG_NAME_A"), hash_string("READ_REPL_LONG_NAME_B"));
}

TEST(HashCombine, NotCommutative) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Fingerprint, EqualityAndOrdering) {
  Fingerprint a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(3, 2), 3u);
  EXPECT_EQ(binomial(6, 3), 20u);
  EXPECT_EQ(binomial(5, 6), 0u);
}

TEST(Binomial, SaturatesOnOverflow) {
  EXPECT_EQ(binomial(200, 100), std::numeric_limits<std::uint64_t>::max());
}

TEST(Combinations, CountsMatchBinomial) {
  for (unsigned n = 0; n <= 7; ++n) {
    for (unsigned k = 0; k <= n; ++k) {
      EXPECT_EQ(combinations(n, k).size(), binomial(n, k)) << n << " " << k;
    }
  }
}

TEST(Combinations, LexicographicOrderAndDistinct) {
  auto cs = combinations(5, 3);
  std::set<std::vector<unsigned>> seen;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_TRUE(std::is_sorted(cs[i].begin(), cs[i].end()));
    EXPECT_TRUE(seen.insert(cs[i]).second);
    if (i > 0) {
      EXPECT_LT(cs[i - 1], cs[i]);
    }
  }
}

TEST(Combinations, ZeroChoosesEmpty) {
  auto cs = combinations(4, 0);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs[0].empty());
}

TEST(ForEachCombination, AbortStopsEnumeration) {
  int count = 0;
  const bool finished = for_each_combination(5, 2, [&](std::span<const unsigned>) {
    return ++count < 3;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(count, 3);
}

TEST(ForEachProduct, EnumeratesAllTuples) {
  std::vector<unsigned> sizes{2, 3, 2};
  int count = 0;
  for_each_product(sizes, [&](std::span<const unsigned> idx) {
    EXPECT_LT(idx[0], 2u);
    EXPECT_LT(idx[1], 3u);
    EXPECT_LT(idx[2], 2u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 12);
}

TEST(ForEachProduct, EmptySizesYieldsOneTuple) {
  int count = 0;
  for_each_product({}, [&](std::span<const unsigned> idx) {
    EXPECT_TRUE(idx.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(ForEachProduct, ZeroDimensionYieldsNothing) {
  std::vector<unsigned> sizes{2, 0, 2};
  int count = 0;
  for_each_product(sizes, [&](std::span<const unsigned>) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(ForEachSubset, PowersetSize) {
  for (unsigned n = 0; n <= 6; ++n) {
    unsigned count = 0;
    for_each_subset(n, [&](std::span<const unsigned>) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, 1u << n);
  }
}

TEST(ForEachSubset, SmallestFirst) {
  std::vector<std::size_t> sizes;
  for_each_subset(3, [&](std::span<const unsigned> s) {
    sizes.push_back(s.size());
    return true;
  });
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
}

TEST(Bitmask, BasicOps) {
  EXPECT_EQ(mask_of(0), 1u);
  EXPECT_EQ(mask_of(3), 8u);
  EXPECT_TRUE(mask_contains(0b1010, 1));
  EXPECT_FALSE(mask_contains(0b1010, 0));
  EXPECT_EQ(mask_count(0b1011), 3u);
  EXPECT_EQ(mask_count(0), 0u);
}

TEST(Bitmask, ForEachVisitsAscending) {
  std::vector<unsigned> seen;
  mask_for_each(0b101001, [&](unsigned pid) { seen.push_back(pid); });
  EXPECT_EQ(seen, (std::vector<unsigned>{0, 3, 5}));
}

TEST(Bitmask, AllProcessesContainsEverything) {
  for (unsigned p = 0; p < kMaxProcesses; ++p) {
    EXPECT_TRUE(mask_contains(kAllProcesses, p));
  }
}

}  // namespace
}  // namespace mpb
