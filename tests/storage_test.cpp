#include <gtest/gtest.h>

#include "core/enabled.hpp"
#include "core/explorer.hpp"
#include "core/trace.hpp"
#include "por/spor.hpp"
#include "protocols/storage/storage.hpp"

namespace mpb {
namespace {

using protocols::kRdEndSnap;
using protocols::kRdRetTs;
using protocols::kRdSnapTs;
using protocols::kWrCompletedTs;
using protocols::kWrInFlight;
using protocols::kWrWts;
using protocols::make_regular_storage;
using protocols::storage_value_for;
using protocols::StorageConfig;

TEST(StorageModel, SettingAndMajority) {
  StorageConfig cfg{.bases = 3, .readers = 2};
  EXPECT_EQ(cfg.setting(), "(3,2)");
  EXPECT_EQ(cfg.majority(), 2u);
  EXPECT_EQ((StorageConfig{.bases = 5}).majority(), 3u);
}

TEST(StorageModel, Inventory) {
  Protocol proto = make_regular_storage({.bases = 3, .readers = 2});
  EXPECT_EQ(proto.n_procs(), 6u);  // writer + 3 bases + 2 readers
  // W_START, W_ACK, 3x(STORE, READB), 2x(R_START, R_COLLECT)
  EXPECT_EQ(proto.n_transitions(), 2u + 6u + 4u);
  EXPECT_TRUE(proto.validate().empty());
}

TEST(StorageModel, ReplyAnnotations) {
  Protocol proto = make_regular_storage({});
  for (const Transition& t : proto.transitions()) {
    if (t.name == "STORE" || t.name == "READB") {
      EXPECT_TRUE(t.is_reply);
    }
    // The regularity spec is an in-transition assertion (the paper's style):
    // its ghost inputs are declared, not handled through visibility.
    if (t.name == "R_START") {
      EXPECT_NE(t.peeks, 0u);
    }
  }
}

// Directed scenario: a full write round updates the bases monotonically.
TEST(StorageScenario, WriteRoundAndMonotonicity) {
  Protocol proto = make_regular_storage({.bases = 3, .readers = 1, .writes = 2});
  State s = proto.initial();
  auto step = [&](std::string_view tname) {
    for (const Event& e : enumerate_events(proto, s)) {
      if (proto.transition(e.tid).name == tname) {
        s = execute(proto, s, e);
        return true;
      }
    }
    return false;
  };

  ASSERT_TRUE(step("W_START"));
  EXPECT_EQ(s.locals()[kWrWts], 1);
  EXPECT_EQ(s.locals()[kWrInFlight], 1);
  ASSERT_TRUE(step("STORE"));
  ASSERT_TRUE(step("STORE"));
  // Majority acked: complete the write.
  ASSERT_TRUE(step("W_ACK"));
  EXPECT_EQ(s.locals()[kWrInFlight], 0);
  EXPECT_EQ(s.locals()[kWrCompletedTs], 1);

  // Second write overwrites with ts 2.
  ASSERT_TRUE(step("W_START"));
  ASSERT_TRUE(step("STORE"));
  const ProcessInfo& b0 = proto.proc(1);
  auto loc = s.local_slice(b0.local_offset, b0.local_len);
  EXPECT_EQ(loc[0], 2);
  EXPECT_EQ(loc[1], storage_value_for(2));
}

TEST(StorageScenario, StaleStoreDoesNotOverwrite) {
  // Deliver STORE(2) before the still-pending STORE(1) at base2: its
  // timestamp must stay 2 (monotone store).
  Protocol proto = make_regular_storage({.bases = 3, .readers = 0, .writes = 2});
  State s = proto.initial();
  const ProcessId base2 = 3;  // writer=0, bases=1..3
  auto step = [&](std::string_view tname, ProcessId proc, Value ts) {
    for (const Event& e : enumerate_events(proto, s)) {
      const Transition& t = proto.transition(e.tid);
      if (t.name != tname) continue;
      if (proc != 0xff && t.proc != proc) continue;
      if (ts >= 0 && !e.consumed.empty() && e.consumed[0][0] != ts) continue;
      s = execute(proto, s, e);
      return true;
    }
    return false;
  };
  ASSERT_TRUE(step("W_START", 0xff, -1));
  ASSERT_TRUE(step("STORE", 1, 1));  // base0 stores ts 1
  ASSERT_TRUE(step("STORE", 2, 1));  // base1 stores ts 1
  ASSERT_TRUE(step("W_ACK", 0xff, -1));
  ASSERT_TRUE(step("W_START", 0xff, -1));
  ASSERT_TRUE(step("STORE", base2, 2));  // new write reaches base2 first
  ASSERT_TRUE(step("STORE", base2, 1));  // stale write arrives late
  const ProcessInfo& bi = proto.proc(base2);
  auto loc = s.local_slice(bi.local_offset, bi.local_len);
  EXPECT_EQ(loc[0], 2);
  EXPECT_EQ(loc[1], storage_value_for(2));
}

TEST(StorageVerify, RegularityHolds_31) {
  for (bool quorum : {true, false}) {
    Protocol proto = make_regular_storage(
        {.bases = 3, .readers = 1, .writes = 2, .quorum_model = quorum});
    EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds) << proto.name();
  }
}

TEST(StorageVerify, RegularityHolds_32_Spor) {
  Protocol proto = make_regular_storage({.bases = 3, .readers = 2, .writes = 1});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  EXPECT_EQ(explore(proto, cfg, &strategy).verdict, Verdict::kHolds);
}

TEST(StorageVerify, WrongRegularityViolated) {
  Protocol proto = make_regular_storage(
      {.bases = 3, .readers = 1, .writes = 2, .wrong_regularity = true});
  ExploreResult r = explore_full(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "wrong_regularity");
  EXPECT_TRUE(replay_counterexample(proto, r));

  // The violating state is a read concurrent with an incomplete write.
  const State& bad = r.counterexample.back().after;
  const ProcessInfo& ri = proto.proc(4);  // the reader
  auto loc = bad.local_slice(ri.local_offset, ri.local_len);
  EXPECT_GE(loc[kRdRetTs], 0);
  EXPECT_NE(loc[kRdRetTs], loc[kRdEndSnap]);
}

TEST(StorageVerify, WrongRegularitySingleMessageViolated) {
  Protocol proto =
      make_regular_storage({.bases = 3, .readers = 1, .writes = 2,
                            .quorum_model = false, .wrong_regularity = true});
  ExploreResult r = explore_full(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(StorageVerify, QuorumModelSmallerThanSingleMessage) {
  StorageConfig q{.bases = 3, .readers = 1, .writes = 1};
  StorageConfig sm = q;
  sm.quorum_model = false;
  ExploreResult rq = explore_full(make_regular_storage(q));
  ExploreResult rs = explore_full(make_regular_storage(sm));
  EXPECT_LT(rq.stats.states_stored, rs.stats.states_stored);
}

TEST(StorageVerify, ReadBeforeAnyWriteReturnsInitial) {
  // No writes at all: every read must return ts 0 and satisfy regularity.
  Protocol proto = make_regular_storage({.bases = 3, .readers = 1, .writes = 0});
  ExploreConfig cfg;
  cfg.collect_terminals = true;
  ExploreResult r = explore(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  // The read consumes a majority of the three identical acks; which base's
  // ack is left over distinguishes three terminal states.
  EXPECT_EQ(r.terminal_fingerprints.size(), 3u);
}

TEST(StorageVerify, SporMatchesUnreducedStateCountsOrFewer) {
  Protocol proto = make_regular_storage({.bases = 3, .readers = 1, .writes = 2});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult reduced = explore(proto, cfg, &strategy);
  ExploreResult full = explore_full(proto);
  EXPECT_EQ(reduced.verdict, full.verdict);
  EXPECT_LE(reduced.stats.states_stored, full.stats.states_stored);
}

}  // namespace
}  // namespace mpb
