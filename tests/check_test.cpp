// The check facade (src/check): model registry, self-describing parameters,
// strategy-by-name dispatch, observer hooks, and the golden CLI surface.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/registry.hpp"
#include "por/spor.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using check::CheckError;
using check::CheckRequest;
using check::CheckResult;
using check::ModelRegistry;
using check::RawParams;

// Expect `fn` to throw CheckError whose message contains every needle.
template <typename Fn>
void expect_check_error(Fn&& fn, std::initializer_list<std::string> needles) {
  try {
    fn();
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message '" << msg << "' lacks '" << needle << "'";
    }
  }
}

// --- registry ---------------------------------------------------------------

TEST(CheckRegistry, ListsEveryBuiltinModel) {
  const auto names = ModelRegistry::global().names();
  const std::vector<std::string_view> expected{"collector", "echo", "paxos",
                                               "storage"};
  EXPECT_EQ(names, expected);
}

TEST(CheckRegistry, UnknownModelIsAPreciseError) {
  expect_check_error(
      [] { (void)ModelRegistry::global().build("paxoss", {}); },
      {"unknown model 'paxoss'", "known models:", "paxos"});
}

TEST(CheckRegistry, UnknownParameterIsAPreciseError) {
  expect_check_error(
      [] {
        (void)ModelRegistry::global().build("paxos", {{"propsers", "2"}});
      },
      {"model 'paxos'", "no parameter 'propsers'", "known parameters:",
       "proposers"});
}

TEST(CheckRegistry, IllTypedIntParameterIsAPreciseError) {
  expect_check_error(
      [] {
        (void)ModelRegistry::global().build("paxos", {{"proposers", "two"}});
      },
      {"parameter 'proposers'", "expects an integer", "'two'"});
}

TEST(CheckRegistry, IllTypedBoolParameterIsAPreciseError) {
  expect_check_error(
      [] {
        (void)ModelRegistry::global().build("paxos", {{"faulty", "maybe"}});
      },
      {"parameter 'faulty'", "expects a boolean", "'maybe'"});
}

TEST(CheckRegistry, OutOfRangeParameterIsAPreciseError) {
  expect_check_error(
      [] {
        (void)ModelRegistry::global().build("paxos", {{"acceptors", "0"}});
      },
      {"parameter 'acceptors'", "must be in [1, 9]", "got 0"});
}

TEST(CheckRegistry, AbsentParametersTakeTheirDefaults) {
  const check::Model m = ModelRegistry::global().build("paxos", {});
  // Defaults are the paper's (2,3,1) setting in the quorum model.
  EXPECT_EQ(m.protocol.name(), "paxos-quorum(2,3,1)");
  EXPECT_EQ(m.protocol.n_procs(), 6u);
  // Acceptors and learners are symmetric roles; one learner collapses to one
  // declared role group.
  EXPECT_EQ(m.symmetric_roles.size(), 1u);
}

TEST(CheckRegistry, ParametersReachTheFactory) {
  const check::Model m = ModelRegistry::global().build(
      "paxos", {{"proposers", "1"}, {"single-message", "true"},
                {"faulty", "1"}});
  EXPECT_EQ(m.protocol.name(), "faulty-paxos-1msg(1,3,1)");
  EXPECT_EQ(m.protocol.n_procs(), 5u);
}

// --- facade dispatch --------------------------------------------------------

TEST(Checker, UnknownStrategyIsAPreciseError) {
  CheckRequest req;
  req.model = "paxos";
  req.strategy = "bogus";
  expect_check_error([&] { check::Checker c(std::move(req)); },
                     {"unknown strategy 'bogus'", "full", "spor"});
}

TEST(Checker, UnknownSplitIsAPreciseError) {
  CheckRequest req;
  req.model = "paxos";
  req.split = "halved";
  expect_check_error([&] { check::Checker c(std::move(req)); },
                     {"unknown split 'halved'", "combined"});
}

TEST(Checker, SymmetryWithStatelessStrategyIsRejected) {
  for (const std::string strategy : {"dpor", "stateless"}) {
    CheckRequest req;
    req.model = "paxos";
    req.symmetry = true;
    req.strategy = strategy;
    expect_check_error([&] { check::Checker c(std::move(req)); },
                       {"symmetry requires a stateful strategy"});
  }
}

TEST(Checker, SporProvisoResolvesByThreadCount) {
  for (const unsigned threads : {1u, 4u}) {
    CheckRequest req;
    req.model = "collector";
    req.params = {{"senders", "3"}, {"quorum", "2"}};
    req.strategy = "spor";
    req.explore.threads = threads;
    req.explore.visited = VisitedMode::kInterned;
    const CheckResult r = check::run_check(std::move(req));
    EXPECT_EQ(r.verdict(), Verdict::kHolds);
    EXPECT_EQ(r.proviso, threads > 1 ? "visited" : "stack");
    EXPECT_EQ(r.threads, threads);
  }
}

TEST(Checker, NonSporStrategiesReportNoProviso) {
  CheckRequest req;
  req.model = "collector";
  req.params = {{"senders", "2"}, {"quorum", "2"}};
  req.strategy = "full";
  const CheckResult r = check::run_check(std::move(req));
  EXPECT_EQ(r.proviso, "-");
}

TEST(Checker, StackProvisoWithThreadsIsRejected) {
  CheckRequest req;
  req.model = "paxos";
  req.strategy = "spor";
  req.spor.proviso = CycleProviso::kStack;
  req.explore.threads = 4;
  expect_check_error([&] { check::Checker c(std::move(req)); },
                     {"stack cycle proviso", "--threads 1"});
}

TEST(Checker, SymmetryWithSplitIsRejected) {
  CheckRequest req;
  req.model = "paxos";
  req.symmetry = true;
  req.split = "reply";
  expect_check_error([&] { check::Checker c(std::move(req)); },
                     {"symmetry", "split"});
}

TEST(Checker, FacadeMatchesDirectExploreOnEveryStatefulStrategy) {
  const check::Model m = ModelRegistry::global().build(
      "collector", {{"senders", "3"}, {"quorum", "2"}});

  const ExploreResult direct = explore(m.protocol, ExploreConfig{});

  CheckRequest req;
  req.model = "collector";
  req.params = {{"senders", "3"}, {"quorum", "2"}};
  req.strategy = "full";
  const CheckResult via_facade = check::run_check(req);

  EXPECT_EQ(via_facade.verdict(), direct.verdict);
  EXPECT_EQ(via_facade.stats().states_stored, direct.stats.states_stored);
  EXPECT_EQ(via_facade.stats().events_executed, direct.stats.events_executed);
}

TEST(Checker, PrebuiltProtocolRunsThroughTheFacade) {
  CheckRequest req;
  req.protocol = testing::make_small_quorum();
  req.strategy = "spor";
  const CheckResult r = check::run_check(std::move(req));
  EXPECT_EQ(r.verdict(), Verdict::kHolds);
  EXPECT_EQ(r.model, r.protocol.name());
  EXPECT_EQ(r.strategy, "spor");
  EXPECT_GT(r.stats().states_stored, 0u);
}

TEST(Checker, EveryNamedStrategyAgreesOnTheVerdict) {
  for (const check::StrategyInfo& s : check::strategies()) {
    CheckRequest req;
    req.model = "collector";
    req.params = {{"senders", "3"}, {"quorum", "2"},
                  {"single-message", "true"}};
    req.strategy = std::string(s.name);
    const CheckResult r = check::run_check(std::move(req));
    EXPECT_EQ(r.verdict(), Verdict::kHolds) << s.name;
  }
}

TEST(Checker, SymmetryOrbitBoundIsExposed) {
  CheckRequest req;
  req.model = "paxos";
  req.symmetry = true;
  check::Checker checker(std::move(req));
  // 3 acceptors permute freely: 3! = 6 (the single learner adds no orbit).
  EXPECT_EQ(checker.orbit_bound(), 6u);
  const CheckResult r = checker.run();
  EXPECT_TRUE(r.symmetry);
  EXPECT_EQ(r.symmetry_orbit_bound, 6u);
  EXPECT_EQ(r.verdict(), Verdict::kHolds);
}

TEST(Checker, ResultSerializesIntoBenchRecord) {
  CheckRequest req;
  req.model = "collector";
  req.params = {{"senders", "2"}, {"quorum", "2"}};
  req.strategy = "full";
  const CheckResult r = check::run_check(std::move(req));
  const harness::BenchRecord rec = check::to_record(r, "cell-name");
  EXPECT_EQ(rec.name, "cell-name");
  EXPECT_EQ(rec.strategy, "full");
  EXPECT_EQ(rec.visited, std::string(to_string(VisitedMode::kExact)));
  EXPECT_EQ(rec.states_stored, r.stats().states_stored);
  // Default name falls back to the (post-split) protocol name.
  EXPECT_EQ(check::to_record(r).name, r.protocol.name());
}

TEST(Checker, ReductionCountersReachTheBenchRecordAndJson) {
  // The two PR-gated counters introduced by the sleep-set / parallel-scc
  // work must flow end-to-end: stats -> BenchRecord -> JSON. A dpor run with
  // real races produces sleep blocks; an spor/scc run times its SCC pass.
  CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "2"}, {"acceptors", "2"}};
  req.strategy = "dpor";
  const CheckResult dpor = check::run_check(std::move(req));
  const harness::BenchRecord drec = check::to_record(dpor);
  EXPECT_GT(drec.sleep_blocked, 0u);
  EXPECT_EQ(drec.sleep_blocked, dpor.stats().sleep_blocked);
  EXPECT_EQ(harness::to_json_value(drec)["sleep_blocked"].as_int(),
            static_cast<std::int64_t>(drec.sleep_blocked));

  CheckRequest sreq;
  sreq.model = "paxos";
  sreq.params = {{"proposers", "2"}, {"acceptors", "2"}};
  sreq.strategy = "spor";
  sreq.spor.proviso = CycleProviso::kScc;
  const CheckResult spor = check::run_check(std::move(sreq));
  const harness::BenchRecord srec = check::to_record(spor);
  EXPECT_GT(srec.scc_pass_ms, 0.0);
  EXPECT_DOUBLE_EQ(srec.scc_pass_ms, spor.stats().scc_pass_ms);
  EXPECT_EQ(srec.sleep_blocked, 0u);  // spor runs do not sleep-block
  EXPECT_NE(harness::to_json_value(srec).find("scc_pass_ms"), nullptr);
}

// --- explore() strategy ownership -------------------------------------------

TEST(ExploreOwnership, OwnedAndRawStrategyOverloadsAgree) {
  const Protocol proto = testing::make_small_quorum();
  ExploreConfig cfg;
  SporStrategy raw_strategy(proto);
  const ExploreResult raw = explore(proto, cfg, &raw_strategy);
  const ExploreResult owned =
      explore(proto, cfg, std::make_unique<SporStrategy>(proto));
  EXPECT_EQ(owned.verdict, raw.verdict);
  EXPECT_EQ(owned.stats.states_stored, raw.stats.states_stored);
  EXPECT_EQ(owned.stats.events_executed, raw.stats.events_executed);
}

// --- observer hooks ---------------------------------------------------------

TEST(ObserverHooks, ProgressFiresAtTheConfiguredInterval) {
  const Protocol proto = testing::make_small_quorum();
  ExploreConfig cfg;
  cfg.progress_every_events = 1;  // every executed event
  std::uint64_t calls = 0;
  std::uint64_t last_events = 0;
  cfg.on_progress = [&](const ExploreStats& st) {
    ++calls;
    EXPECT_GE(st.events_executed, last_events);
    last_events = st.events_executed;
  };
  const ExploreResult r = explore(proto, cfg);
  EXPECT_EQ(calls, r.stats.events_executed);
  EXPECT_EQ(last_events, r.stats.events_executed);
}

TEST(ObserverHooks, ProgressFiresInParallelRuns) {
  CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "1"}, {"acceptors", "3"}, {"learners", "1"}};
  req.strategy = "full";
  req.explore.threads = 4;
  req.explore.visited = VisitedMode::kInterned;
  req.explore.progress_every_events = 64;
  std::atomic<std::uint64_t> calls{0};
  req.explore.on_progress = [&](const ExploreStats& st) {
    calls.fetch_add(1, std::memory_order_relaxed);
    EXPECT_GT(st.events_executed, 0u);
    EXPECT_EQ(st.threads_used, 4u);
  };
  const CheckResult r = check::run_check(std::move(req));
  EXPECT_EQ(r.verdict(), Verdict::kHolds);
  EXPECT_GT(calls.load(), 0u);
}

TEST(ObserverHooks, ViolationHookReportsThePropertyName) {
  CheckRequest req;
  req.model = "paxos";
  req.params = {{"faulty", "true"}, {"single-message", "true"}};
  req.strategy = "spor";
  std::vector<std::string> seen;
  req.explore.on_violation = [&](std::string_view property) {
    seen.emplace_back(property);
  };
  const CheckResult r = check::run_check(std::move(req));
  EXPECT_EQ(r.verdict(), Verdict::kViolated);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), r.result.violated_property);
}

// --- golden CLI surface -----------------------------------------------------
// mpbcheck prints these strings verbatim; the goldens pin the auto-generated
// CLI surface so schema edits are conscious decisions.

TEST(CheckGolden, ModelList) {
  const std::string expected =
      "models:\n"
      "  collector  quorum PING collector, the Section II-C state-inflation "
      "toy\n"
      "  echo       Echo Multicast (Reiter '94) under Byzantine equivocation\n"
      "  paxos      single-decree Paxos checked for consensus (Table I)\n"
      "  storage    ABD-style single-writer regular storage over crashy "
      "bases\n"
      "\n"
      "run 'mpbcheck <model> --help' for the model's parameters\n";
  EXPECT_EQ(check::describe_models(), expected);
}

TEST(CheckGolden, PaxosHelp) {
  const std::string expected =
      "usage: mpbcheck paxos [parameters] [engine options]\n"
      "\n"
      "single-decree Paxos checked for consensus (Table I)\n"
      "\n"
      "parameters:\n"
      "  --proposers N     proposers, each with a distinct ballot and value  "
      "[default 2, range 0..8]\n"
      "  --acceptors N     acceptors; promises/accepts need a majority  "
      "[default 3, range 1..9]\n"
      "  --learners N      learners observing chosen values  "
      "[default 1, range 0..8]\n"
      "  --single-message  per-message counting model (Fig. 3) instead of "
      "quorum\n"
      "  --faulty          learner skips the (ballot,value) comparison "
      "(\"Faulty Paxos\")\n";
  EXPECT_EQ(check::describe_model("paxos"), expected);
}

TEST(CheckGolden, HelpForUnknownModelThrows) {
  EXPECT_THROW((void)check::describe_model("nope"), CheckError);
}

}  // namespace
}  // namespace mpb
