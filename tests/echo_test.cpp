#include <gtest/gtest.h>

#include "core/enabled.hpp"
#include "core/explorer.hpp"
#include "core/trace.hpp"
#include "por/spor.hpp"
#include "protocols/echo/echo.hpp"

namespace mpb {
namespace {

using protocols::EchoConfig;
using protocols::kBogusEchoValue;
using protocols::kByzValueA;
using protocols::kByzValueB;
using protocols::echo_honest_value;
using protocols::make_echo_multicast;

TEST(EchoModel, ThresholdMath) {
  // q = ceil((N + t + 1) / 2)
  EXPECT_EQ((EchoConfig{.honest_receivers = 3, .byz_receivers = 1}).threshold(), 3u);
  EXPECT_EQ((EchoConfig{.honest_receivers = 2, .byz_receivers = 0}).threshold(), 2u);
  EXPECT_EQ((EchoConfig{.honest_receivers = 2, .byz_receivers = 2, .tolerance = 1})
                .threshold(),
            3u);
  EXPECT_EQ((EchoConfig{.honest_receivers = 3, .byz_receivers = 1, .tolerance = 1})
                .threshold(),
            3u);
}

TEST(EchoModel, SettingString) {
  EchoConfig cfg{.honest_receivers = 3, .honest_initiators = 0,
                 .byz_receivers = 1, .byz_initiators = 1};
  EXPECT_EQ(cfg.setting(), "(3,0,1,1)");
}

TEST(EchoModel, Inventory) {
  Protocol proto = make_echo_multicast({.honest_receivers = 3,
                                        .honest_initiators = 0,
                                        .byz_receivers = 1,
                                        .byz_initiators = 1});
  EXPECT_EQ(proto.n_procs(), 5u);
  EXPECT_EQ(mask_count(proto.role_mask("Receiver")), 3u);
  EXPECT_EQ(mask_count(proto.role_mask("ByzReceiver")), 1u);
  EXPECT_EQ(mask_count(proto.role_mask("ByzInitiator")), 1u);
  EXPECT_TRUE(proto.validate().empty());
  unsigned byz = 0;
  for (const ProcessInfo& pi : proto.procs()) byz += pi.byzantine;
  EXPECT_EQ(byz, 2u);
}

TEST(EchoModel, WrongVariantNamed) {
  Protocol proto = make_echo_multicast({.honest_receivers = 2,
                                        .honest_initiators = 1,
                                        .byz_receivers = 2,
                                        .byz_initiators = 1,
                                        .tolerance = 1});
  EXPECT_NE(proto.name().find("wrong"), std::string::npos);
}

// Directed scenario: the Byzantine receiver backs both equivocated values.
TEST(EchoScenario, ByzantineReceiverEchoesBoth) {
  Protocol proto = make_echo_multicast({.honest_receivers = 2,
                                        .honest_initiators = 0,
                                        .byz_receivers = 1,
                                        .byz_initiators = 1});
  State s = proto.initial();
  auto step = [&](std::string_view tname) {
    for (const Event& e : enumerate_events(proto, s)) {
      if (proto.transition(e.tid).name == tname) {
        s = execute(proto, s, e);
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(step("EQUIVOCATE"));
  // Byz receiver got both INITs; echo them both.
  ASSERT_TRUE(step("ECHO_ANY"));
  ASSERT_TRUE(step("ECHO_ANY"));
  unsigned echoes_a = 0, echoes_b = 0;
  for (const Message& m : s.network()) {
    if (proto.msg_type_name(m.type()) != "ECHO") continue;
    if (m[0] == kByzValueA) ++echoes_a;
    if (m[0] == kByzValueB) ++echoes_b;
  }
  EXPECT_EQ(echoes_a, 1u);
  EXPECT_EQ(echoes_b, 1u);
}

TEST(EchoScenario, HonestReceiverEchoesOnlyFirstValue) {
  // Give the honest receiver both INITs by hand and check its guard.
  Protocol proto = make_echo_multicast({.honest_receivers = 1,
                                        .honest_initiators = 0,
                                        .byz_receivers = 2,
                                        .byz_initiators = 1});
  State s = proto.initial();
  auto all = [&] { return enumerate_events(proto, s); };
  // EQUIVOCATE first.
  for (const Event& e : all()) {
    if (proto.transition(e.tid).name == "EQUIVOCATE") {
      s = execute(proto, s, e);
      break;
    }
  }
  // The single honest receiver got exactly one INIT (value A: it is in the
  // first half); fire its ECHO.
  bool fired = false;
  for (const Event& e : all()) {
    if (proto.transition(e.tid).name == "ECHO") {
      EXPECT_EQ(e.consumed[0][0], kByzValueA);
      s = execute(proto, s, e);
      fired = true;
      break;
    }
  }
  ASSERT_TRUE(fired);
  // No further ECHO events for this receiver.
  for (const Event& e : all()) {
    EXPECT_NE(proto.transition(e.tid).name, "ECHO");
  }
}

TEST(EchoVerify, AgreementHolds_3011) {
  Protocol proto = make_echo_multicast({.honest_receivers = 3,
                                        .honest_initiators = 0,
                                        .byz_receivers = 1,
                                        .byz_initiators = 1});
  EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds);
}

TEST(EchoVerify, AgreementHolds_2101) {
  Protocol proto = make_echo_multicast({.honest_receivers = 2,
                                        .honest_initiators = 1,
                                        .byz_receivers = 0,
                                        .byz_initiators = 1});
  EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds);
}

TEST(EchoVerify, WrongAgreementViolated_2121) {
  Protocol proto = make_echo_multicast({.honest_receivers = 2,
                                        .honest_initiators = 1,
                                        .byz_receivers = 2,
                                        .byz_initiators = 1,
                                        .tolerance = 1});
  ExploreResult r = explore_full(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "agreement");
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(EchoVerify, SingleMessageModelAgrees) {
  for (bool wrong : {false, true}) {
    EchoConfig cfg{.honest_receivers = 2, .honest_initiators = 0,
                   .byz_receivers = 2, .byz_initiators = 1,
                   .quorum_model = false};
    if (wrong) cfg.tolerance = 1;
    Protocol proto = make_echo_multicast(cfg);
    ExploreResult r = explore_full(proto);
    EXPECT_EQ(r.verdict, wrong ? Verdict::kViolated : Verdict::kHolds)
        << proto.name();
  }
}

TEST(EchoVerify, QuorumModelSmallerThanSingleMessage) {
  EchoConfig q{.honest_receivers = 3, .honest_initiators = 0,
               .byz_receivers = 1, .byz_initiators = 1};
  EchoConfig sm = q;
  sm.quorum_model = false;
  ExploreResult rq = explore_full(make_echo_multicast(q));
  ExploreResult rs = explore_full(make_echo_multicast(sm));
  EXPECT_LT(rq.stats.states_stored, rs.stats.states_stored);
}

TEST(EchoVerify, SporAgreement) {
  Protocol proto = make_echo_multicast({.honest_receivers = 3,
                                        .honest_initiators = 0,
                                        .byz_receivers = 1,
                                        .byz_initiators = 1});
  SporStrategy strategy(proto);
  ExploreConfig cfg;
  ExploreResult r = explore(proto, cfg, &strategy);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  ExploreResult full = explore_full(proto);
  EXPECT_LE(r.stats.states_stored, full.stats.states_stored);
}

TEST(EchoVerify, ProperToleranceDefeatsTheSameAttack) {
  // Identical faults as the wrong-agreement setting but with the threshold
  // sized for 2 Byzantine receivers: agreement holds.
  Protocol proto = make_echo_multicast({.honest_receivers = 2,
                                        .honest_initiators = 1,
                                        .byz_receivers = 2,
                                        .byz_initiators = 1});
  EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds);
}

TEST(EchoVerify, BogusEchoNeverForgesCertificate) {
  // With one honest initiator and Byzantine receivers sending bogus echoes,
  // honest receivers still only accept the initiator's true value.
  Protocol proto = make_echo_multicast({.honest_receivers = 2,
                                        .honest_initiators = 1,
                                        .byz_receivers = 1,
                                        .byz_initiators = 0});
  EXPECT_EQ(explore_full(proto).verdict, Verdict::kHolds);
  (void)kBogusEchoValue;
  (void)echo_honest_value(0);
}

}  // namespace
}  // namespace mpb
