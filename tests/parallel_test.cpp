// Parallel-vs-sequential equivalence: the work-sharing parallel explorer must
// report exactly the same verdict, unique-state count and terminal-state
// count as the sequential stateful search, at every thread count, on every
// protocol. The sharded visited set admits each state exactly once, so these
// counts are schedule-independent.
#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "por/symmetry.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"

namespace mpb {
namespace {

using protocols::CollectorConfig;
using protocols::EchoConfig;
using protocols::make_collector;
using protocols::make_echo_multicast;
using protocols::make_paxos;
using protocols::PaxosConfig;

std::vector<Protocol> protocols_under_test() {
  std::vector<Protocol> ps;
  ps.push_back(make_echo_multicast(EchoConfig{
      .honest_receivers = 3, .honest_initiators = 0, .byz_receivers = 1,
      .byz_initiators = 1}));
  ps.push_back(make_collector(CollectorConfig{.senders = 4, .quorum = 3}));
  ps.push_back(make_paxos(PaxosConfig{.proposers = 1, .acceptors = 3, .learners = 1}));
  return ps;
}

TEST(ParallelExplore, MatchesSequentialAcrossThreadCounts) {
  for (const Protocol& proto : protocols_under_test()) {
    ExploreConfig seq_cfg;
    seq_cfg.collect_terminals = true;
    const ExploreResult seq = explore(proto, seq_cfg);

    for (unsigned threads : {1u, 2u, 8u}) {
      ExploreConfig cfg;
      cfg.threads = threads;
      cfg.visited = VisitedMode::kInterned;
      cfg.collect_terminals = true;
      const ExploreResult par = explore(proto, cfg);
      SCOPED_TRACE(proto.name() + " @ " + std::to_string(threads) + " threads");
      EXPECT_EQ(par.verdict, seq.verdict);
      EXPECT_EQ(par.stats.states_stored, seq.stats.states_stored);
      EXPECT_EQ(par.stats.terminal_states, seq.stats.terminal_states);
      EXPECT_EQ(par.stats.events_executed, seq.stats.events_executed);
      EXPECT_EQ(par.terminal_fingerprints, seq.terminal_fingerprints);
    }
  }
}

TEST(ParallelExplore, FingerprintVisitedMatchesToo) {
  const Protocol proto =
      make_collector(CollectorConfig{.senders = 4, .quorum = 3});
  const ExploreResult seq = explore(proto, ExploreConfig{});
  ExploreConfig cfg;
  cfg.threads = 4;
  cfg.visited = VisitedMode::kFingerprint;
  const ExploreResult par = explore(proto, cfg);
  EXPECT_EQ(par.verdict, seq.verdict);
  EXPECT_EQ(par.stats.states_stored, seq.stats.states_stored);
}

TEST(ParallelExplore, SymmetryCanonicalizationComposes) {
  const PaxosConfig pcfg{.proposers = 1, .acceptors = 3, .learners = 1};
  const Protocol proto = make_paxos(pcfg);
  const SymmetryReducer sym(proto, protocols::paxos_symmetric_roles(pcfg));

  ExploreConfig seq_cfg;
  seq_cfg.canonicalize = [&sym](const State& s) { return sym.canonicalize(s); };
  const ExploreResult seq = explore(proto, seq_cfg);

  ExploreConfig par_cfg = seq_cfg;
  par_cfg.threads = 4;
  par_cfg.visited = VisitedMode::kInterned;
  const ExploreResult par = explore(proto, par_cfg);

  EXPECT_EQ(par.verdict, seq.verdict);
  EXPECT_EQ(par.stats.states_stored, seq.stats.states_stored);
}

TEST(ParallelExplore, FindsViolationAndStops) {
  // Faulty Paxos has a reachable violation; every thread count must find it.
  const Protocol proto = make_paxos(
      PaxosConfig{.proposers = 2, .acceptors = 3, .learners = 1,
                  .faulty_learner = true});
  const ExploreResult seq = explore(proto, ExploreConfig{});
  ASSERT_EQ(seq.verdict, Verdict::kViolated);
  for (unsigned threads : {2u, 8u}) {
    ExploreConfig cfg;
    cfg.threads = threads;
    const ExploreResult par = explore(proto, cfg);
    EXPECT_EQ(par.verdict, Verdict::kViolated);
    EXPECT_EQ(par.violated_property, seq.violated_property);
  }
}

TEST(ParallelExplore, InternedT8CountsAreIdenticalAcrossRuns) {
  // The acceptance pin for the lock-free core: repeated t8 interned searches
  // of a fixed workload must agree with each other (and with the committed
  // sequential count) on every schedule-independent statistic, whatever
  // schedule the stealing deques produce. paxos(2,3,1) full = 9,945 states.
  const Protocol proto =
      make_paxos(PaxosConfig{.proposers = 2, .acceptors = 3, .learners = 1});
  ExploreConfig cfg;
  cfg.threads = 8;
  cfg.visited = VisitedMode::kInterned;
  cfg.collect_terminals = true;
  const ExploreResult first = explore(proto, cfg);
  EXPECT_EQ(first.verdict, Verdict::kHolds);
  EXPECT_EQ(first.stats.states_stored, 9945u);
  for (int run = 1; run < 4; ++run) {
    const ExploreResult again = explore(proto, cfg);
    SCOPED_TRACE("run " + std::to_string(run));
    EXPECT_EQ(again.verdict, first.verdict);
    EXPECT_EQ(again.stats.states_stored, first.stats.states_stored);
    EXPECT_EQ(again.stats.events_executed, first.stats.events_executed);
    EXPECT_EQ(again.stats.terminal_states, first.stats.terminal_states);
    EXPECT_EQ(again.terminal_fingerprints, first.terminal_fingerprints);
  }
}

TEST(ParallelExplore, RespectsStateBudget) {
  const Protocol proto =
      make_paxos(PaxosConfig{.proposers = 2, .acceptors = 3, .learners = 1});
  ExploreConfig cfg;
  cfg.threads = 4;
  cfg.max_states = 500;
  const ExploreResult r = explore(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kBudgetExceeded);
}

TEST(ParallelExplore, ReducedAndStatelessSearchesStaySequential) {
  // threads > 1 with a strategy or stateless mode must fall back to the
  // sequential engine (documented) and still produce correct results.
  const Protocol proto =
      make_collector(CollectorConfig{.senders = 3, .quorum = 2});
  ExploreConfig cfg;
  cfg.threads = 8;
  cfg.mode = SearchMode::kStateless;
  const ExploreResult r = explore(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.threads_used, 1u);
}

}  // namespace
}  // namespace mpb
