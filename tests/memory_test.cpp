// Collapse compression and the spill tier (core/collapse, core/spill, the
// kCollapse visited mode): exactly-once component interning under contention,
// compressed-graph parity with full-copy interning (the committed soundness
// pins), exact memory accounting, and the mmap spill tier growing a search
// past a memory guard that stops the unspilled run. Every suite here carries
// the `memory` ctest label and runs in the TSan and ASan lanes.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/collapse.hpp"
#include "core/spill.hpp"
#include "core/state.hpp"
#include "core/visited.hpp"
#include "mp/builder.hpp"
#include "por/spor.hpp"
#include "protocols/paxos/paxos.hpp"

namespace mpb {
namespace {

Message msg(MsgType t, ProcessId from, ProcessId to, Value payload = 0) {
  return Message(t, from, to, {payload});
}

std::vector<std::byte> blob_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

// A scratch directory for spill files; removed (rmdir) on destruction — the
// ChunkStore unlinks its backing file at creation, so the dir stays empty.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/mpb_spill_test_XXXXXX";
    char* got = mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path = got != nullptr ? got : "";
  }
  ~TempDir() {
    if (!path.empty()) rmdir(path.c_str());
  }
  std::string path;
};

// N processes, each a counter stepping 0..limit: (limit+1)^N reachable
// states of a few bytes each — the node arena dominates every fixed cost,
// which is what the accounting and spill tests need.
Protocol make_counters(int procs, int limit) {
  mp::ProtocolBuilder b("counters");
  for (int p = 0; p < procs; ++p) {
    const ProcessId id =
        b.process("c" + std::to_string(p), "Counter", {{"n", 0}});
    b.transition(id, "INC")
        .spontaneous()
        .guard([limit](const GuardView& g) { return g.local[0] < limit; })
        .effect([](EffectCtx& c) { c.set_local(0, c.local(0) + 1); })
        .priority(1);
  }
  return b.build();
}

// --- BlobStore: exactly-once interning ---------------------------------------

TEST(MemoryBlobStore, InternAssignsDenseStableIndices) {
  ChunkStore chunks;
  BlobStore store(chunks);
  const auto a = blob_of("alpha");
  const auto b = blob_of("beta");
  const auto empty = blob_of("");

  const std::uint32_t ia = store.intern(a.data(), a.size());
  const std::uint32_t ib = store.intern(b.data(), b.size());
  const std::uint32_t ie = store.intern(empty.data(), 0);
  EXPECT_NE(ia, ib);
  EXPECT_NE(ia, ie);
  EXPECT_EQ(store.count(), 3u);

  // Re-interning returns the same index; find agrees; get round-trips.
  EXPECT_EQ(store.intern(a.data(), a.size()), ia);
  EXPECT_EQ(store.find(b.data(), b.size()), ib);
  EXPECT_EQ(store.count(), 3u);
  const std::span<const std::byte> back = store.get(ia);
  ASSERT_EQ(back.size(), a.size());
  EXPECT_EQ(std::memcmp(back.data(), a.data(), a.size()), 0);
  EXPECT_EQ(store.get(ie).size(), 0u);

  // A never-interned blob: find says so, and says so exactly.
  const auto absent = blob_of("gamma");
  EXPECT_EQ(store.find(absent.data(), absent.size()), BlobStore::kNoBlob);
}

TEST(MemoryBlobStore, ContentCompareKeepsUnequalBlobsDistinct) {
  // Same length, different bytes: content must decide, whatever the hash does.
  ChunkStore chunks;
  BlobStore store(chunks);
  std::vector<std::uint32_t> indices;
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t v = static_cast<std::uint32_t>(i);
    indices.push_back(
        store.intern(reinterpret_cast<const std::byte*>(&v), sizeof(v)));
  }
  EXPECT_EQ(store.count(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t v = static_cast<std::uint32_t>(i);
    EXPECT_EQ(store.find(reinterpret_cast<const std::byte*>(&v), sizeof(v)),
              indices[i]);
    const std::span<const std::byte> got = store.get(indices[i]);
    ASSERT_EQ(got.size(), sizeof(v));
    EXPECT_EQ(std::memcmp(got.data(), &v, sizeof(v)), 0);
  }
}

TEST(MemoryBlobStore, GrowthMigratesPublishedEntries) {
  // Far beyond the 64-slot initial table: several freeze-and-migrate rounds.
  ChunkStore chunks;
  BlobStore store(chunks);
  constexpr int kBlobs = 20'000;
  std::vector<std::uint32_t> indices(kBlobs);
  for (int i = 0; i < kBlobs; ++i) {
    const std::string text = "blob-" + std::to_string(i);
    const auto bytes = blob_of(text);
    indices[i] = store.intern(bytes.data(), bytes.size());
  }
  EXPECT_EQ(store.count(), static_cast<std::uint64_t>(kBlobs));
  EXPECT_GT(store.heap_bytes(), 0u);
  for (int i = 0; i < kBlobs; ++i) {
    const auto bytes = blob_of("blob-" + std::to_string(i));
    EXPECT_EQ(store.intern(bytes.data(), bytes.size()), indices[i]);
    EXPECT_EQ(store.find(bytes.data(), bytes.size()), indices[i]);
  }
}

// 8 threads intern the same universe of blobs while the table grows under
// them: every blob must get exactly one index, agreed on by all threads, and
// a concurrent get() must never see torn payload bytes. (Memory* puts this
// in both the TSan and ASan lanes.)
TEST(MemoryBlobStoreStress, ConcurrentInternIsExactlyOnce) {
  ChunkStore chunks;
  BlobStore store(chunks);
  constexpr int kBlobs = 4000;
  constexpr int kThreads = 8;
  std::vector<std::atomic<std::uint32_t>> published(kBlobs);
  for (auto& p : published) p.store(BlobStore::kNoBlob);

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kBlobs; ++i) {
        // Thread t starts at a different offset so claims collide all over
        // the table, not in lockstep.
        const int b = (i + t * (kBlobs / kThreads)) % kBlobs;
        const std::string text = "stress-" + std::to_string(b);
        const auto bytes = blob_of(text);
        const std::uint32_t idx = store.intern(bytes.data(), bytes.size());
        ASSERT_NE(idx, BlobStore::kNoBlob);
        std::uint32_t expected = BlobStore::kNoBlob;
        if (!published[b].compare_exchange_strong(expected, idx)) {
          ASSERT_EQ(idx, expected) << "blob " << b << " interned twice";
        }
        // The payload behind a published index is immediately readable.
        const std::span<const std::byte> got = store.get(idx);
        ASSERT_EQ(got.size(), bytes.size());
        ASSERT_EQ(std::memcmp(got.data(), bytes.data(), bytes.size()), 0);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(store.count(), static_cast<std::uint64_t>(kBlobs));
}

// --- collapse-mode visited set: parity with full-copy interning --------------

TEST(MemoryCollapseVisited, InsertContainsAndExactnessMatchInterned) {
  ShardedVisited interned(VisitedMode::kInterned, 4);
  ShardedVisited collapse(VisitedMode::kCollapse, 4);
  std::vector<State> states;
  for (int i = 0; i < 512; ++i) {
    states.emplace_back(
        std::vector<Value>{i, i % 17, -i},
        std::vector<Message>{msg(static_cast<MsgType>(i % 3 + 1), 0, 1, i)});
  }
  for (const State& s : states) {
    EXPECT_EQ(interned.insert(s), collapse.insert(s));
  }
  for (const State& s : states) {
    EXPECT_FALSE(collapse.insert(s));  // duplicates detected exactly
    EXPECT_TRUE(collapse.contains(s));
  }
  EXPECT_EQ(collapse.size(), interned.size());
  EXPECT_FALSE(collapse.contains(State({9999}, {})));
}

TEST(MemoryCollapseVisited, ParentChainAndMaterializeMatchInterned) {
  // The same chain root -> s1 -> ... -> sN inserted into both graph modes:
  // path_from_root must produce identical event sequences (consumed messages
  // included) and materialize() must reproduce each state byte-for-byte.
  ShardedVisited interned(VisitedMode::kInterned, 1);
  ShardedVisited collapse(VisitedMode::kCollapse, 1);
  constexpr int kChain = 300;

  StateHandle ih = kNoHandle;
  StateHandle ch = kNoHandle;
  std::vector<StateHandle> chandles;
  for (int i = 0; i < kChain; ++i) {
    const State s({i, i * 31}, {msg(1, 0, 1, i)});
    Event via;
    via.tid = static_cast<TransitionId>(i % 7);
    if (i % 2 == 1) via.consumed = {msg(2, 1, 0, i), msg(3, 0, 1, -i)};
    const Event* ev = i == 0 ? nullptr : &via;
    const auto perm = static_cast<std::uint32_t>(i % 5);
    const VisitedInsert ii = interned.insert(s, s.fingerprint(), ih, ev, perm);
    const VisitedInsert ci = collapse.insert(s, s.fingerprint(), ch, ev, perm);
    ASSERT_TRUE(ii.inserted);
    ASSERT_TRUE(ci.inserted);
    ASSERT_NE(ci.handle, kNoHandle);
    EXPECT_EQ(collapse.parent_of(ci.handle), ch);
    EXPECT_EQ(collapse.perm_of(ci.handle), perm);

    // Materialized copies match the original and the full-copy twin.
    const std::optional<State> mat = collapse.materialize(ci.handle);
    ASSERT_TRUE(mat.has_value());
    EXPECT_EQ(*mat, s);
    ASSERT_NE(interned.state_at(ii.handle), nullptr);
    EXPECT_EQ(*mat, *interned.state_at(ii.handle));
    EXPECT_EQ(mat->fingerprint(), s.fingerprint());

    ih = ii.handle;
    ch = ci.handle;
    chandles.push_back(ch);
  }

  const std::vector<Event> ipath = interned.path_from_root(ih);
  const std::vector<Event> cpath = collapse.path_from_root(ch);
  ASSERT_EQ(cpath.size(), ipath.size());
  for (std::size_t i = 0; i < cpath.size(); ++i) {
    EXPECT_EQ(cpath[i], ipath[i]) << "event " << i;
  }
  // Duplicate inserts resolve to the existing entry, first writer wins.
  const State dup({5, 5 * 31}, {msg(1, 0, 1, 5)});
  Event other;
  other.tid = 99;
  const VisitedInsert again =
      collapse.insert(dup, dup.fingerprint(), kNoHandle, &other);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.handle, chandles[5]);
}

TEST(MemoryCollapseVisited, LayoutSplitsComponentsPerProcessAndReceiver) {
  // A layout with two locals slices and two receivers: states that differ in
  // one component share the other components' blobs, and materialize still
  // reassembles the exact state (runs concatenated in receiver order).
  CollapseLayout layout;
  layout.locals = {{0, 2}, {2, 1}};
  layout.n_receivers = 2;
  ShardedVisited set(VisitedMode::kCollapse, 2, layout, SpillConfig{});
  std::vector<State> states;
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      states.emplace_back(
          std::vector<Value>{a, a + 1, b},
          std::vector<Message>{msg(1, 0, 0, a), msg(2, 0, 1, b),
                               msg(3, 1, 1, a + b)});
    }
  }
  std::vector<StateHandle> handles;
  for (const State& s : states) {
    const VisitedInsert r = set.insert(s, s.fingerprint(), kNoHandle, nullptr);
    ASSERT_TRUE(r.inserted);
    handles.push_back(r.handle);
  }
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_TRUE(set.contains(states[i]));
    const std::optional<State> mat = set.materialize(handles[i]);
    ASSERT_TRUE(mat.has_value());
    EXPECT_EQ(*mat, states[i]);
  }
  EXPECT_EQ(set.size(), states.size());
}

TEST(MemoryCollapseVisited, WideLaneEngagesPastU16ComponentIndices) {
  // Collapse nodes use a packed u16 tuple (narrow lane) while every component
  // index and the perm fit below 0xFFFF, and fall back to a u32 tuple (wide
  // lane) beyond that. 70,000 distinct single-local states make the locals
  // blob indices dense 0..69,999 in a one-shard set, so nodes from index
  // 0xFFFF onward must take the wide lane. Exactness, parent links, perms,
  // materialization, and duplicate resolution must hold across the boundary.
  constexpr std::uint32_t kStates = 70'000;
  ShardedVisited set(VisitedMode::kCollapse, 1);
  std::vector<StateHandle> handles;
  handles.reserve(kStates);
  StateHandle parent = kNoHandle;
  for (std::uint32_t i = 0; i < kStates; ++i) {
    const State s({static_cast<Value>(i)}, {});
    Event via;
    via.tid = static_cast<TransitionId>(i % 11);
    // One early node goes wide on the perm alone (perm >= 0xFFFF) while its
    // component indices are still narrow-eligible.
    const std::uint32_t perm = i == 10 ? 0x1234'5678u : i % 7;
    const VisitedInsert r =
        set.insert(s, s.fingerprint(), parent, i == 0 ? nullptr : &via, perm);
    ASSERT_TRUE(r.inserted) << i;
    ASSERT_NE(r.handle, kNoHandle);
    EXPECT_EQ(set.parent_of(r.handle), parent);
    EXPECT_EQ(set.perm_of(r.handle), perm);
    parent = r.handle;
    handles.push_back(r.handle);
  }
  EXPECT_EQ(set.size(), kStates);
  EXPECT_EQ(set.perm_of(handles[10]), 0x1234'5678u);

  // Spot-check both lanes and the transition itself.
  for (const std::uint32_t i :
       {0u, 10u, 0xFFFEu, 0xFFFFu, 0x10000u, kStates - 1}) {
    SCOPED_TRACE(i);
    const State s({static_cast<Value>(i)}, {});
    EXPECT_TRUE(set.contains(s));
    const std::optional<State> mat = set.materialize(handles[i]);
    ASSERT_TRUE(mat.has_value());
    EXPECT_EQ(*mat, s);
    if (i > 0) {
      EXPECT_EQ(set.parent_of(handles[i]), handles[i - 1]);
    }
    // Duplicates resolve to the original entry whichever lane holds it.
    const VisitedInsert again =
        set.insert(s, s.fingerprint(), kNoHandle, nullptr);
    EXPECT_FALSE(again.inserted);
    EXPECT_EQ(again.handle, handles[i]);
  }

  // The replay chain walks every node, wide and narrow, in one pass; only
  // the root carries no event.
  EXPECT_EQ(set.path_from_root(handles.back()).size(), kStates - 1);
}

// The committed soundness pins, reproduced byte-for-byte by the compressed
// mode: paxos(2,3,1) full = 9,945 states; spor under the stack and scc
// provisos = 9,867. The scc run drives the ignoring pass over materialize()
// (the pass re-expands from reconstructed states), so a reconstruction bug
// cannot hide.
TEST(MemoryCollapsePins, PaxosStatePinsMatchFullCopyInterning) {
  const Protocol proto = protocols::make_paxos(
      {.proposers = 2, .acceptors = 3, .learners = 1});
  auto run = [&](VisitedMode mode, const char* strategy_kind) {
    ExploreConfig cfg;
    cfg.visited = mode;
    if (std::string(strategy_kind) == "full") return explore(proto, cfg);
    SporOptions opts;
    opts.proviso = std::string(strategy_kind) == "stack" ? CycleProviso::kStack
                                                         : CycleProviso::kScc;
    SporStrategy strategy(proto, opts);
    return explore(proto, cfg, &strategy);
  };

  for (const char* kind : {"full", "stack", "scc"}) {
    SCOPED_TRACE(kind);
    const ExploreResult full_copy = run(VisitedMode::kInterned, kind);
    const ExploreResult compressed = run(VisitedMode::kCollapse, kind);
    EXPECT_EQ(full_copy.verdict, Verdict::kHolds);
    EXPECT_EQ(compressed.verdict, Verdict::kHolds);
    EXPECT_EQ(compressed.stats.states_stored, full_copy.stats.states_stored);
    const std::uint64_t pin =
        std::string(kind) == "full" ? 9945u : 9867u;
    EXPECT_EQ(compressed.stats.states_stored, pin);
    // Both modes account their storage exactly; compression must show.
    EXPECT_GT(full_copy.stats.visited_bytes, 0u);
    EXPECT_GT(compressed.stats.visited_bytes, 0u);
  }
}

// --- exact accounting --------------------------------------------------------

TEST(MemoryAccounting, ApproxBytesTracksTablesArenasAndBlobs) {
  ShardedVisited set(VisitedMode::kCollapse, 1);
  const std::uint64_t at_start = set.approx_bytes();
  EXPECT_GT(at_start, 0u);  // the initial slot table is counted up front
  std::uint64_t prev = at_start;
  for (int i = 0; i < 20'000; ++i) {
    set.insert(State({i, i * 7, i % 3}, {msg(1, 0, 1, i)}));
    if (i % 5000 == 4999) {
      const std::uint64_t now = set.approx_bytes();
      EXPECT_GT(now, prev);  // tables, arena chunks and blobs all grow
      prev = now;
    }
  }
  EXPECT_EQ(set.spilled_bytes(), 0u);  // no spill dir: everything resident
  // Duplicates cost nothing: re-inserting the whole set must not move the
  // allocation-granularity counters (no new chunks, tables, or blobs).
  const std::uint64_t before_dups = set.approx_bytes();
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_FALSE(set.insert(State({i, i * 7, i % 3}, {msg(1, 0, 1, i)})));
  }
  EXPECT_EQ(set.approx_bytes(), before_dups);
}

TEST(MemoryAccounting, CollapseStoresFewerBytesThanFullCopiesAtScale) {
  // 46,656 tiny states: the per-state node cost dominates every fixed pool,
  // so the compressed representation must undercut full-copy interning.
  const Protocol proto = make_counters(/*procs=*/6, /*limit=*/5);
  ExploreConfig cfg;
  cfg.visited = VisitedMode::kInterned;
  const ExploreResult full_copy = explore(proto, cfg);
  cfg.visited = VisitedMode::kCollapse;
  const ExploreResult compressed = explore(proto, cfg);
  ASSERT_EQ(full_copy.verdict, Verdict::kHolds);
  ASSERT_EQ(compressed.verdict, Verdict::kHolds);
  ASSERT_EQ(full_copy.stats.states_stored, 46'656u);
  ASSERT_EQ(compressed.stats.states_stored, 46'656u);
  EXPECT_GT(full_copy.stats.visited_bytes, 0u);
  EXPECT_GT(compressed.stats.visited_bytes, 0u);
  EXPECT_LT(compressed.stats.visited_bytes, full_copy.stats.visited_bytes);
}

// --- the spill tier ----------------------------------------------------------

TEST(MemorySpillChunkStore, AdvisesColdChunksOutAndKeepsDataReadable) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  SpillConfig cfg;
  cfg.dir = dir.path;
  cfg.resident_bytes = 256 << 10;  // 256 KiB budget for spillable chunks
  ChunkStore store(cfg);
  ASSERT_TRUE(store.spilling());

  // A pinned chunk never leaves RAM, whatever the budget says.
  std::byte* pinned = store.alloc_chunk(64 << 10, /*spillable=*/false);
  std::memset(pinned, 0x5a, 64 << 10);

  constexpr std::size_t kChunk = 64 << 10;
  constexpr int kChunks = 16;  // 1 MiB spillable, 4x the budget
  std::vector<std::byte*> chunks;
  for (int i = 0; i < kChunks; ++i) {
    std::byte* c = store.alloc_chunk(kChunk, /*spillable=*/true);
    ASSERT_NE(c, nullptr);
    std::memset(c, i + 1, kChunk);  // distinct pattern per chunk
    chunks.push_back(c);
  }

  EXPECT_GE(store.allocated_bytes(), kChunks * kChunk);
  EXPECT_GT(store.spilled_bytes(), 0u);
  // Budget enforcement: resident spillable bytes are the budget plus at most
  // the newest chunk (never evicted) and page rounding.
  EXPECT_LE(store.resident_bytes(),
            (64 << 10) + cfg.resident_bytes + kChunk + 4096);

  // Every byte — advised out or not — reads back exactly (the data lives in
  // the backing file; a read simply faults the pages in again).
  for (int i = 0; i < kChunks; ++i) {
    for (std::size_t off : {std::size_t{0}, kChunk / 2, kChunk - 1}) {
      ASSERT_EQ(std::to_integer<int>(chunks[i][off]), i + 1)
          << "chunk " << i << " offset " << off;
    }
  }
  for (std::size_t off : {std::size_t{0}, std::size_t{64 << 10} - 1}) {
    ASSERT_EQ(std::to_integer<int>(pinned[off]), 0x5a);
  }
}

TEST(MemorySpillVisited, ArenaSpillsWhileLookupsStayExact) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  SpillConfig spill;
  spill.dir = dir.path;
  spill.resident_bytes = 128 << 10;  // force the node arena cold early
  ShardedVisited set(VisitedMode::kCollapse, 1, CollapseLayout{}, spill);

  constexpr int kStates = 30'000;
  for (int i = 0; i < kStates; ++i) {
    ASSERT_TRUE(set.insert(State({i, i * 7}, {})));
  }
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kStates));
  EXPECT_GT(set.spilled_bytes(), 0u);  // the arena actually went cold

  // Probing every state faults spilled nodes back in; duplicate detection
  // and membership must stay exact.
  for (int i = 0; i < kStates; ++i) {
    ASSERT_TRUE(set.contains(State({i, i * 7}, {})));
    ASSERT_FALSE(set.insert(State({i, i * 7}, {})));
  }
  EXPECT_FALSE(set.contains(State({kStates, 1}, {})));
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kStates));
}

// The tentpole's acceptance shape: under the same memory guard, the spill-
// enabled run completes a state count the unspilled run cannot reach. The
// guard ceiling is calibrated from the two unguarded footprints, so the test
// tracks the accounting instead of hard-coding byte counts.
TEST(MemorySpillGuard, SpillCompletesAGuardLimitedSearch) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  const Protocol proto = make_counters(/*procs=*/6, /*limit=*/5);
  constexpr std::uint64_t kTotalStates = 46'656;

  auto run = [&](bool spill, std::uint64_t guard_bytes) {
    ExploreConfig cfg;
    cfg.visited = VisitedMode::kCollapse;
    cfg.guard.max_memory_bytes = guard_bytes;
    if (spill) {
      cfg.spill_dir = dir.path;
      cfg.spill_mb = 1;
    }
    return explore(proto, cfg);
  };

  const ExploreResult plain = run(/*spill=*/false, /*guard_bytes=*/0);
  const ExploreResult spilled = run(/*spill=*/true, /*guard_bytes=*/0);
  ASSERT_EQ(plain.verdict, Verdict::kHolds);
  ASSERT_EQ(spilled.verdict, Verdict::kHolds);
  ASSERT_EQ(plain.stats.states_stored, kTotalStates);
  ASSERT_EQ(spilled.stats.states_stored, kTotalStates);
  const std::uint64_t plain_bytes = plain.stats.visited_bytes;
  const std::uint64_t spilled_bytes = spilled.stats.visited_bytes;
  // Spilling must buy real accounted headroom before the guard runs matter.
  ASSERT_GT(plain_bytes, spilled_bytes + (512 << 10))
      << "spill tier freed too little to calibrate a guard between the modes";

  const std::uint64_t guard = spilled_bytes + (plain_bytes - spilled_bytes) / 2;
  const ExploreResult stopped = run(/*spill=*/false, guard);
  EXPECT_EQ(stopped.verdict, Verdict::kResourceLimit);
  EXPECT_LT(stopped.stats.states_stored, kTotalStates);

  const ExploreResult completed = run(/*spill=*/true, guard);
  EXPECT_EQ(completed.verdict, Verdict::kHolds);
  EXPECT_EQ(completed.stats.states_stored, kTotalStates);
  EXPECT_GT(completed.stats.states_stored, stopped.stats.states_stored);
}

}  // namespace
}  // namespace mpb
