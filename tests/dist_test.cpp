// The distributed driver (src/dist): frame codecs, the mesh primitives
// (batching, credits, the Safra/Mattern termination token), rank-count
// parity against the committed soundness pins, cross-process traces, the
// distributed SCC repair rounds, and rank-death handling. Every suite here
// carries the `dist` ctest label and runs in the TSan lane — the test
// process is single-threaded whenever it forks ranks.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/trace.hpp"
#include "dist/dist.hpp"
#include "dist/frame.hpp"
#include "dist/mesh.hpp"
#include "mp/builder.hpp"
#include "por/spor.hpp"
#include "protocols/paxos/paxos.hpp"

namespace mpb {
namespace {

using namespace protocols;

// --- frame codecs -----------------------------------------------------------

TEST(DistWire, ScalarAndStringRoundTrip) {
  dist::FrameWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(2.5);
  w.str("counterexample");
  w.fingerprint({0xfeedface00000001ULL, 0x2ULL});

  dist::FrameCursor c(w.bytes());
  EXPECT_EQ(c.u8(), 0xab);
  EXPECT_EQ(c.u16(), 0x1234);
  EXPECT_EQ(c.u32(), 0xdeadbeefu);
  EXPECT_EQ(c.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(c.i64(), -42);
  EXPECT_EQ(c.f64(), 2.5);
  EXPECT_EQ(c.str(), "counterexample");
  const Fingerprint fp = c.fingerprint();
  EXPECT_EQ(fp.hi, 0xfeedface00000001ULL);
  EXPECT_EQ(fp.lo, 0x2ULL);
  EXPECT_TRUE(c.done());
}

TEST(DistWire, StateEventMessageRoundTrip) {
  // A real model state (paxos initial: nonempty locals and network) and a
  // synthetic multi-message event must survive the wire byte-exactly —
  // forwarded successors are inserted from exactly these bytes.
  const Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  const State& init = proto.initial();

  Event e;
  e.tid = 7;
  e.consumed.push_back(Message(3, 1, 2, {40, 41}));
  e.consumed.push_back(Message(5, 0, 4, {}));

  dist::FrameWriter w;
  w.state(init);
  w.event(e);

  dist::FrameCursor c(w.bytes());
  const State back = c.state();
  const Event eback = c.event();
  EXPECT_TRUE(c.done());
  EXPECT_EQ(back, init);
  EXPECT_EQ(eback, e);
}

TEST(DistWire, TruncatedPayloadThrowsNotReadsGarbage) {
  dist::FrameWriter w;
  w.u64(77);
  const auto& b = w.bytes();
  dist::FrameCursor c(std::span<const std::byte>(b.data(), 3));
  EXPECT_THROW((void)c.u64(), dist::DistError);
  // A lying string length must not read past the end either.
  dist::FrameWriter w2;
  w2.u32(1000);  // claims 1000 bytes follow; none do
  dist::FrameCursor c2(w2.bytes());
  EXPECT_THROW((void)c2.str(), dist::DistError);
}

TEST(DistWire, GlobalHandleRoundTripAndOwnerPartition) {
  const StateHandle local = (StateHandle{3} << 48) | 424242u;
  for (unsigned rank : {0u, 1u, 5u, 63u}) {
    const StateHandle g = dist::to_global(local, rank);
    EXPECT_EQ(dist::rank_of(g), rank);
    EXPECT_EQ(dist::to_local(g), local);
  }
  // kNoHandle is rank-less and must stay itself in both directions.
  EXPECT_EQ(dist::to_global(kNoHandle, 7), kNoHandle);
  EXPECT_EQ(dist::to_local(kNoHandle), kNoHandle);

  // The owner partition is a pure function of the fingerprint's high bits.
  const Fingerprint fp{0xab00000000001234ULL, 99};
  for (unsigned n : {1u, 2u, 4u, 64u}) {
    EXPECT_EQ(dist::owner_of(fp, n), (fp.hi >> 56) % n);
    EXPECT_LT(dist::owner_of(fp, n), n);
  }
}

// --- the framed connection --------------------------------------------------

TEST(DistConn, FramesSurviveTheSocketIncludingLargeOnes) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  dist::FrameConn a(fds[0]);
  dist::FrameConn b(fds[1]);

  dist::FrameWriter small;
  small.u32(1);
  a.send(dist::FrameType::kCredit, small.bytes());

  // Larger than both the drain chunk (16 KiB) and the default socket
  // buffer, so delivery needs several flush/drain rounds.
  dist::FrameWriter big;
  for (std::uint32_t i = 0; i < 100'000; ++i) big.u32(i);
  a.send(dist::FrameType::kBatch, big.bytes());

  std::vector<dist::Frame> got;
  for (int spin = 0; spin < 10'000 && got.size() < 2; ++spin) {
    ASSERT_TRUE(a.flush());
    ASSERT_TRUE(b.drain(&got));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, dist::FrameType::kCredit);
  EXPECT_EQ(got[0].payload.size(), 4u);
  EXPECT_EQ(got[1].type, dist::FrameType::kBatch);
  ASSERT_EQ(got[1].payload.size(), 400'000u);
  dist::FrameCursor c(got[1].payload);
  EXPECT_EQ(c.u32(), 0u);

  EXPECT_GE(a.bytes_queued(),
            400'000u + 4u + 2 * dist::kFrameHeaderBytes);

  // Peer teardown surfaces as drain() == false, never a hang.
  ::close(fds[0]);
  EXPECT_FALSE(b.drain(&got));
  EXPECT_TRUE(b.dead());
  ::close(fds[1]);
}

// --- batching ---------------------------------------------------------------

TEST(DistBatch, SizeTriggerFlushesAtTargetEntries) {
  dist::Batcher b(/*max_entries=*/4, /*max_age_us=*/1'000'000);
  dist::FrameWriter entry;
  entry.u64(0x11);
  for (int i = 0; i < 3; ++i) b.add(entry, /*now_us=*/0);
  EXPECT_FALSE(b.should_flush(/*now_us=*/1));
  b.add(entry, /*now_us=*/2);
  EXPECT_TRUE(b.should_flush(/*now_us=*/2));  // size, not age

  const std::vector<std::byte> payload = b.take();
  dist::FrameCursor c(payload);
  EXPECT_EQ(c.u32(), 4u);
  EXPECT_EQ(c.remaining(), 4 * 8u);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.should_flush(/*now_us=*/999'999'999));  // empty never flushes
}

TEST(DistBatch, AgeTriggerFlushesAnUndersizedBatch) {
  // Timestamps are injected, so the timer trigger is tested without sleeping.
  dist::Batcher b(/*max_entries=*/64, /*max_age_us=*/2'000);
  dist::FrameWriter entry;
  entry.u32(7);
  b.add(entry, /*now_us=*/10'000);
  EXPECT_FALSE(b.should_flush(/*now_us=*/11'999));
  EXPECT_TRUE(b.should_flush(/*now_us=*/12'000));

  // The age clock restarts with the first entry of the next batch.
  (void)b.take();
  b.add(entry, /*now_us=*/50'000);
  EXPECT_FALSE(b.should_flush(/*now_us=*/51'000));
  EXPECT_TRUE(b.should_flush(/*now_us=*/52'500));
}

// --- termination detection --------------------------------------------------

TEST(DistToken, InFlightEntryDefersTerminationUntilDelivered) {
  // Three idle ranks, one forwarded entry from rank 0 still in flight to
  // rank 2. The token must keep circulating — terminating here would lose
  // the entry's whole subtree — until the delivery is counted and a fully
  // white round completes.
  dist::SafraToken t0(0, 3), t1(1, 3), t2(2, 3);
  t0.on_sent(1);  // the in-flight entry

  dist::SafraToken::TokenOut out{};
  auto pass = [&](dist::SafraToken& from, dist::SafraToken& to,
                  unsigned expect_to) {
    EXPECT_EQ(from.poll_idle(&out), dist::SafraToken::Action::kForward);
    EXPECT_EQ(out.to, expect_to);
    to.on_token(out.q, out.black);
  };

  // Round 1: everyone is idle but the counts cannot balance.
  pass(t0, t1, 1);
  pass(t1, t2, 2);
  pass(t2, t0, 0);  // q = 0, white — but rank 0's own c = +1
  EXPECT_EQ(t0.poll_idle(&out), dist::SafraToken::Action::kForward);

  // The entry lands: rank 2 turns black for one round.
  t2.on_received(1);
  t1.on_token(out.q, out.black);
  pass(t1, t2, 2);
  pass(t2, t0, 0);  // black token — round 2 cannot terminate
  EXPECT_EQ(t0.poll_idle(&out), dist::SafraToken::Action::kForward);

  // Round 3: all white, q = -1 balances rank 0's c = +1 → quiescent.
  t1.on_token(out.q, out.black);
  pass(t1, t2, 2);
  pass(t2, t0, 0);
  EXPECT_EQ(t0.poll_idle(&out), dist::SafraToken::Action::kTerminate);
}

TEST(DistToken, SingleRankTerminatesImmediately) {
  dist::SafraToken t(0, 1);
  dist::SafraToken::TokenOut out{};
  EXPECT_EQ(t.poll_idle(&out), dist::SafraToken::Action::kTerminate);
}

// --- end-to-end searches ----------------------------------------------------

// A one-state self-loop that ignores an independent transition forever; the
// SCC pass must re-expand it and surface the violation (the same model
// engine_test.cpp uses for the in-process pass).
Protocol make_ignored_cycle() {
  mp::ProtocolBuilder b("ignored-cycle");
  const MsgType mTOK = b.msg("TOK");
  const ProcessId p = b.process("spinner", "Spin", {});
  const ProcessId q = b.process("stepper", "Step", {{"done", 0}});
  b.transition(p, "PING")
      .consumes("TOK", 1)
      .from(mask_of(p))
      .effect([=](EffectCtx& c) { c.send(p, mTOK, {0}); })
      .sends("TOK", mask_of(p))
      .reads_local(false)
      .writes_local(false)
      .priority(2);
  b.transition(q, "STEP")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); })
      .visible()
      .priority(1);
  b.property("never_done", [q](const State& s, const Protocol& pr) {
    auto loc = s.local_slice(pr.proc(q).local_offset, pr.proc(q).local_len);
    return loc[0] == 0;
  });
  b.initial_message(Message(mTOK, p, p, {0}));
  return b.build();
}

TEST(DistSearch, FullSearchPinsHoldAtEveryRankCount) {
  // The committed soundness pin: paxos(2,3,1) full = 9,945 states, whatever
  // the partition — forwarding must lose and duplicate nothing.
  for (unsigned ranks : {1u, 2u, 4u}) {
    check::CheckRequest req;
    req.model = "paxos";
    req.params = {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}};
    req.strategy = "full";
    req.dist_ranks = ranks;
    const check::CheckResult r = check::run_check(std::move(req));
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    EXPECT_EQ(r.verdict(), Verdict::kHolds);
    EXPECT_EQ(r.stats().states_stored, 9945u);
    EXPECT_EQ(r.stats().events_executed, 20826u);
    EXPECT_EQ(r.threads, ranks);
    if (ranks > 1) {
      EXPECT_GT(r.stats().forwarded_states, 0u);
      EXPECT_GT(r.stats().forward_batches, 0u);
      EXPECT_GT(r.stats().wire_bytes, 0u);
    } else {
      EXPECT_EQ(r.stats().forwarded_states, 0u);
    }
  }
}

TEST(DistSearch, SporSccReductionPinHoldsAcrossRanks) {
  // spor under the SCC proviso: the reduced graph is schedule-independent,
  // so the 9,867 pin must reproduce at every rank count too.
  for (unsigned ranks : {2u, 4u}) {
    check::CheckRequest req;
    req.model = "paxos";
    req.params = {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}};
    req.strategy = "spor";
    req.spor.proviso = CycleProviso::kScc;
    req.dist_ranks = ranks;
    const check::CheckResult r = check::run_check(std::move(req));
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    EXPECT_EQ(r.verdict(), Verdict::kHolds);
    EXPECT_EQ(r.stats().states_stored, 9867u);
    EXPECT_EQ(r.stats().events_executed, 20262u);
    EXPECT_EQ(r.proviso, "scc");
  }
}

TEST(DistSearch, SccRepairRoundsFindTheIgnoredViolation) {
  const Protocol proto = make_ignored_cycle();
  SporOptions opts;
  opts.proviso = CycleProviso::kScc;
  ExploreConfig cfg;
  cfg.visited = VisitedMode::kInterned;
  dist::DistConfig dc;
  dc.ranks = 2;
  const ExploreResult r = dist::run_distributed(
      proto, cfg, dc,
      [&] { return std::make_unique<SporStrategy>(proto, opts); });
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "never_done");
  EXPECT_GE(r.stats.scc_reexpansions, 1u);
  ASSERT_FALSE(r.counterexample.empty());
  EXPECT_TRUE(replay_counterexample(proto, r));
}

TEST(DistCredit, ExhaustionStallsTheSenderWithoutDeadlock) {
  // One credit and tiny batches: every sender spends most of the run parked
  // waiting for acks, with expansion paused whenever the backlog passes
  // stall_entries. The search must still terminate with the exact pin —
  // a deadlock would hang, lost batches would miss states.
  const Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  ExploreConfig cfg;
  cfg.visited = VisitedMode::kInterned;
  dist::DistConfig dc;
  dc.ranks = 4;
  dc.credits = 1;
  dc.batch_entries = 4;
  dc.stall_entries = 8;
  dc.flush_us = 100;
  const ExploreResult r = dist::run_distributed(proto, cfg, dc, {});
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.stats.states_stored, 9945u);
  EXPECT_GT(r.stats.forward_batches, 0u);
}

TEST(DistTrace, CrossRankCounterexampleReplaysConcretely) {
  // The faulty acceptor violates agreement; the violating rank's trace walk
  // crosses rank boundaries through the parent-lookup RPC and the launcher
  // replays the merged event chain from the real initial state.
  check::CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "2"},
                {"acceptors", "3"},
                {"learners", "1"},
                {"faulty", "true"},
                {"single-message", "true"}};
  req.strategy = "full";
  req.dist_ranks = 2;
  const check::CheckResult r = check::run_check(std::move(req));
  ASSERT_EQ(r.verdict(), Verdict::kViolated);
  EXPECT_FALSE(r.result.violated_property.empty());
  ASSERT_FALSE(r.result.counterexample.empty());
  EXPECT_TRUE(replay_counterexample(r.protocol, r.result));
}

TEST(DistRankDeath, DyingRankSurfacesAsErrorNotHang) {
  const Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  ExploreConfig cfg;
  cfg.visited = VisitedMode::kInterned;
  cfg.max_seconds = 30;  // belt and braces: bounds the launcher backstop
  dist::DistConfig dc;
  dc.ranks = 2;
  dc.fault_rank = 1;
  dc.fault_after_states = 50;
  EXPECT_THROW((void)dist::run_distributed(proto, cfg, dc, {}),
               dist::DistError);
}

}  // namespace
}  // namespace mpb
