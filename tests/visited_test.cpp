// Cached/incremental fingerprints and the sharded visited table.
//
// The cached-fingerprint invariant: after ANY sequence of tracked mutations
// (add_message / remove_message / set_local) or untracked span writes, a
// state's fingerprint must equal the fingerprint of a freshly constructed
// equal state — the incremental delta updates and the full rehash must be
// indistinguishable.
#include <gtest/gtest.h>

#include <thread>

#include "core/state.hpp"
#include "core/visited.hpp"

namespace mpb {
namespace {

Message msg(MsgType t, ProcessId from, ProcessId to, Value payload = 0) {
  return Message(t, from, to, {payload});
}

State fresh_copy(const State& s) {
  std::vector<Value> locals(s.locals().begin(), s.locals().end());
  std::vector<Message> net(s.network().begin(), s.network().end());
  return State(std::move(locals), std::move(net));
}

void expect_fingerprint_matches_fresh(const State& s) {
  const State f = fresh_copy(s);
  ASSERT_EQ(s, f);
  EXPECT_EQ(s.fingerprint(), f.fingerprint());
  EXPECT_EQ(s.hash(), f.hash());
}

TEST(FingerprintCache, IncrementalMessageOpsMatchFreshState) {
  State s({1, 2, 3}, {msg(1, 0, 1), msg(2, 1, 2)});
  (void)s.fingerprint();  // prime the cache so mutations go incremental

  s.add_message(msg(3, 2, 0, 7));
  expect_fingerprint_matches_fresh(s);

  s.add_message(msg(1, 0, 1));  // duplicate copy: multiplicity matters
  expect_fingerprint_matches_fresh(s);

  ASSERT_TRUE(s.remove_message(msg(2, 1, 2)));
  expect_fingerprint_matches_fresh(s);

  ASSERT_TRUE(s.remove_message(msg(1, 0, 1)));  // one of the two copies
  expect_fingerprint_matches_fresh(s);
}

TEST(FingerprintCache, IncrementalLocalWritesMatchFreshState) {
  State s({10, 20, 30}, {msg(1, 0, 1)});
  (void)s.fingerprint();

  s.set_local(1, 99);
  expect_fingerprint_matches_fresh(s);
  s.set_local(0, -5);
  s.set_local(2, 0);
  expect_fingerprint_matches_fresh(s);
  s.set_local(1, 20);  // restore one variable
  expect_fingerprint_matches_fresh(s);
}

TEST(FingerprintCache, RawSpanWritesInvalidateAndRecover) {
  State s({1, 2, 3, 4}, {msg(1, 0, 1), msg(2, 0, 2)});
  (void)s.fingerprint();
  s.local_slice_mut(1, 2)[0] = 42;  // untracked write: cache must invalidate
  expect_fingerprint_matches_fresh(s);
  // And incremental updates must work again after the recovery pass.
  s.add_message(msg(5, 3, 1, 9));
  s.set_local(3, 77);
  expect_fingerprint_matches_fresh(s);
}

TEST(FingerprintCache, MixedSequenceStressMatchesFreshState) {
  State s({0, 0, 0}, {});
  (void)s.fingerprint();
  for (int round = 0; round < 50; ++round) {
    const auto t = static_cast<MsgType>(round % 5 + 1);
    s.add_message(msg(t, static_cast<ProcessId>(round % 3),
                      static_cast<ProcessId>((round + 1) % 3), round));
    s.set_local(static_cast<std::size_t>(round % 3), round * 13);
    if (round % 4 == 3) {
      ASSERT_TRUE(s.remove_message(msg(static_cast<MsgType>(round % 5 + 1),
                                       static_cast<ProcessId>(round % 3),
                                       static_cast<ProcessId>((round + 1) % 3),
                                       round)));
    }
    if (round % 7 == 6) s.locals_mut()[0] = -round;  // untracked write
  }
  expect_fingerprint_matches_fresh(s);
}

TEST(FingerprintCache, CachingReducesFullHashPasses) {
  State s({1, 2, 3}, {msg(1, 0, 1)});
  reset_state_hash_counters();
  for (int i = 0; i < 100; ++i) (void)s.fingerprint();
  EXPECT_EQ(state_full_hash_passes(), 1u);   // one pass, 99 cache hits
  EXPECT_EQ(state_hash_queries(), 100u);
}

TEST(ShardedVisited, InsertAndDuplicateDetection) {
  for (const VisitedMode mode :
       {VisitedMode::kFingerprint, VisitedMode::kInterned}) {
    ShardedVisited set(mode, 4);
    State a({1}, {msg(1, 0, 1)});
    State b({2}, {msg(1, 0, 1)});
    EXPECT_TRUE(set.insert(a));
    EXPECT_FALSE(set.insert(a));
    EXPECT_TRUE(set.insert(b));
    EXPECT_TRUE(set.contains(a));
    EXPECT_TRUE(set.contains(b));
    EXPECT_FALSE(set.contains(State({3}, {})));
    EXPECT_EQ(set.size(), 2u);
  }
}

TEST(ShardedVisited, GrowsPastInitialCapacityPerShard) {
  ShardedVisited set(VisitedMode::kInterned, 1);
  constexpr int kN = 5000;  // far beyond the 64-slot initial table
  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(set.insert(State({i, i * 7}, {})));
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_FALSE(set.insert(State({i, i * 7}, {})));
  }
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kN));
}

TEST(ShardedVisited, InternedModeIsExactUnderKeyCollisions) {
  // Interned mode must compare full states, so two distinct states are both
  // kept even if their 64-bit probe keys ever collided.
  ShardedVisited set(VisitedMode::kInterned, 1);
  for (int i = 0; i < 512; ++i) {
    State s({i}, {msg(static_cast<MsgType>(i % 3 + 1), 0, 1, i)});
    EXPECT_TRUE(set.insert(s));
    EXPECT_TRUE(set.contains(s));
  }
  EXPECT_EQ(set.size(), 512u);
}

TEST(StateGraph, RecordsParentsAndReplaysPathFromRoot) {
  ShardedVisited set(VisitedMode::kInterned, 4);
  const State root({0}, {});
  const VisitedInsert r = set.insert(root, root.fingerprint(), kNoHandle, nullptr);
  ASSERT_TRUE(r.inserted);
  ASSERT_NE(r.handle, kNoHandle);
  EXPECT_EQ(set.parent_of(r.handle), kNoHandle);
  EXPECT_TRUE(set.path_from_root(r.handle).empty());

  // A three-deep chain root -> a -> b with distinct incoming events.
  Event ea;
  ea.tid = 1;
  Event eb;
  eb.tid = 2;
  eb.consumed = {msg(1, 0, 1, 42)};
  const State a({1}, {});
  const State b({2}, {});
  const VisitedInsert ia = set.insert(a, a.fingerprint(), r.handle, &ea);
  const VisitedInsert ib = set.insert(b, b.fingerprint(), ia.handle, &eb);
  ASSERT_TRUE(ia.inserted);
  ASSERT_TRUE(ib.inserted);

  ASSERT_NE(set.state_at(ib.handle), nullptr);
  EXPECT_EQ(*set.state_at(ib.handle), b);
  EXPECT_EQ(set.parent_of(ib.handle), ia.handle);

  const std::vector<Event> path = set.path_from_root(ib.handle);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], ea);
  EXPECT_EQ(path[1], eb);
}

TEST(StateGraph, DuplicateInsertReturnsTheExistingEntry) {
  ShardedVisited set(VisitedMode::kInterned, 1);
  const State root({0}, {});
  const State a({1}, {});
  Event via_first;
  via_first.tid = 7;
  Event via_second;
  via_second.tid = 9;
  const VisitedInsert r = set.insert(root, root.fingerprint(), kNoHandle, nullptr);
  const VisitedInsert first = set.insert(a, a.fingerprint(), r.handle, &via_first);
  const VisitedInsert again = set.insert(a, a.fingerprint(), r.handle, &via_second);
  EXPECT_TRUE(first.inserted);
  EXPECT_FALSE(again.inserted);
  // The entry (and its recorded incoming event) is first-writer-wins.
  EXPECT_EQ(again.handle, first.handle);
  const std::vector<Event> path = set.path_from_root(first.handle);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], via_first);
}

TEST(StateGraph, FingerprintModeRecordsNoGraph) {
  ShardedVisited set(VisitedMode::kFingerprint, 1);
  const State root({0}, {});
  const VisitedInsert r = set.insert(root, root.fingerprint(), kNoHandle, nullptr);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(r.handle, kNoHandle);
  EXPECT_EQ(set.state_at(r.handle), nullptr);
  EXPECT_TRUE(set.path_from_root(r.handle).empty());
}

TEST(ShardedVisited, ConcurrentInsertsCountEachStateOnce) {
  ShardedVisited set(VisitedMode::kInterned, 16);
  constexpr int kStates = 2000;
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&set] {
      for (int i = 0; i < kStates; ++i) {
        set.insert(State({i, i % 17}, {}));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kStates));
}

// --- lock-free slot protocol stress (Parallel* => the TSan ctest lane) -----
//
// Many threads hammer one ShardedVisited with overlapping chains of states,
// each insert recording a parent handle and incoming event, while the same
// threads concurrently probe contains() and walk path_from_root() on handles
// published moments earlier. With a single shard every thread fights over
// one table, so the claim/publish CAS protocol and several freeze-and-
// migrate growths (64 slots -> thousands) are all exercised under maximum
// contention; the interned-entry invariant under test is that a reader can
// never observe a half-written node (a torn state compare, a dangling
// parent, a path that does not terminate).
TEST(ParallelVisitedStress, ConcurrentInsertLookupAndParentPublish) {
  for (const unsigned shards : {1u, 16u}) {
    ShardedVisited set(VisitedMode::kInterned, shards);
    const State root({-1, -1}, {});
    const VisitedInsert root_ins =
        set.insert(root, root.fingerprint(), kNoHandle, nullptr);
    ASSERT_TRUE(root_ins.inserted);

    constexpr int kChain = 1500;  // states per chain, shared by all threads
    constexpr int kThreads = 8;
    std::vector<std::atomic<std::uint64_t>> handles(kChain);
    std::vector<std::atomic<int>> inserted_count(kChain);  // zero-initialized
    for (auto& h : handles) h.store(kNoHandle);

    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = 0; i < kChain; ++i) {
          // All threads insert the same chain state i with parent i-1; the
          // first publisher wins, the rest must get the identical handle.
          const State s({i, i * 31}, {msg(1, 0, 1, i)});
          const StateHandle parent =
              i == 0 ? root_ins.handle : handles[i - 1].load();
          Event via;
          via.tid = static_cast<TransitionId>(i % 7);
          const VisitedInsert ins =
              set.insert(s, s.fingerprint(), parent, &via);
          ASSERT_NE(ins.handle, kNoHandle);
          if (ins.inserted) inserted_count[i].fetch_add(1);
          std::uint64_t expected = kNoHandle;
          if (!handles[i].compare_exchange_strong(expected, ins.handle)) {
            // Someone published first: every insert of the same state must
            // resolve to that same entry. (The winner of this CAS need not
            // be the thread whose insert() was the inserting one.)
            ASSERT_EQ(ins.handle, expected);
          }
          // Concurrent readers: the freshly published entry must be fully
          // visible (state compare succeeds, parent chain terminates).
          ASSERT_TRUE(set.contains(s, s.fingerprint()));
          const State* interned = set.state_at(handles[i].load());
          ASSERT_NE(interned, nullptr);
          ASSERT_EQ(*interned, s);
          // A parent walk mid-insert must terminate and yield exactly the
          // chain (sampled: the walk is O(i) and the suite runs under TSan).
          if (i % 64 == 0) {
            const std::vector<Event> path =
                set.path_from_root(handles[i].load());
            ASSERT_EQ(path.size(), static_cast<std::size_t>(i) + 1);
          }
          // Thread t also probes states nobody inserts, to race the probe
          // loop against claims/migrations.
          const State absent({-2 - t, i}, {});
          ASSERT_FALSE(set.contains(absent, absent.fingerprint()));
        }
      });
    }
    for (auto& th : pool) th.join();

    EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kChain) + 1);
    // Quiescent check: the recorded spanning tree is exactly the chain.
    for (int i = 0; i < kChain; ++i) {
      const StateHandle h = handles[i].load();
      ASSERT_EQ(inserted_count[i].load(), 1)  // exactly-once insertion
          << "state " << i;
      ASSERT_EQ(set.parent_of(h),
                i == 0 ? root_ins.handle : handles[i - 1].load());
    }
    ASSERT_EQ(set.path_from_root(handles[kChain - 1].load()).size(),
              static_cast<std::size_t>(kChain));
  }
}

// Fingerprint mode shares the claim/publish protocol minus the arena; the
// stress here is pure slot traffic with concurrent growth.
TEST(ParallelVisitedStress, FingerprintModeConcurrentInsertAndContains) {
  ShardedVisited set(VisitedMode::kFingerprint, 1);  // one contended table
  constexpr int kStates = 4000;
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kStates; ++i) {
        const State s({i, i % 13}, {});
        set.insert(s, s.fingerprint());
        ASSERT_TRUE(set.contains(s, s.fingerprint()));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kStates));
  for (int i = 0; i < kStates; ++i) {
    ASSERT_TRUE(set.contains(State({i, i % 13}, {})));
  }
}

}  // namespace
}  // namespace mpb
