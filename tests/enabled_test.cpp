#include <gtest/gtest.h>

#include <set>

#include "core/enabled.hpp"
#include "mp/builder.hpp"

namespace mpb {
namespace {

// Builder for a gatherer process fed by initial messages, configurable arity.
struct Fixture {
  Protocol proto;
  ProcessId gatherer = 0;
  TransitionId tid = 0;

  static Fixture make(int arity, std::vector<Message> initial,
                      Guard guard = {}, ProcessMask from = kAllProcesses) {
    mp::ProtocolBuilder b("fixture");
    const MsgType mV = b.msg("V");
    (void)mV;
    const ProcessId g = b.process("g", "G", {{"x", 0}});
    // Senders exist so masks and sender ids are meaningful.
    for (int i = 0; i < 4; ++i) b.process("s" + std::to_string(i), "S", {});
    auto& t = b.transition(g, "V").consumes("V", arity).from(from);
    if (guard) t.guard(std::move(guard));
    t.effect([](EffectCtx& c) { c.set_local(0, c.local(0) + 1); });
    for (const Message& m : initial) b.initial_message(m);
    return Fixture{b.build(), g, 0};
  }
};

Message vmsg(ProcessId from, Value payload = 0) {
  // type id 0 is "V" (first interned); receiver 0 is the gatherer.
  return Message(0, from, 0, {payload});
}

std::vector<Event> events_of(const Fixture& f) {
  std::vector<Event> out;
  enumerate_events_of(f.proto, f.proto.initial(), f.tid, out);
  return out;
}

TEST(Enabled, SingleMessageOneEventPerMessage) {
  auto f = Fixture::make(1, {vmsg(1, 1), vmsg(2, 2), vmsg(3, 3)});
  EXPECT_EQ(events_of(f).size(), 3u);
}

TEST(Enabled, IdenticalMessagesAreDeduped) {
  auto f = Fixture::make(1, {vmsg(1, 7), vmsg(1, 7), vmsg(1, 8)});
  // Two copies of the same message give the same successor: one event each
  // for payloads 7 and 8.
  EXPECT_EQ(events_of(f).size(), 2u);
}

TEST(Enabled, QuorumChoosesDistinctSenders) {
  auto f = Fixture::make(2, {vmsg(1), vmsg(2), vmsg(3)});
  // C(3,2) sender pairs.
  EXPECT_EQ(events_of(f).size(), 3u);
}

TEST(Enabled, QuorumNeverPairsSameSender) {
  auto f = Fixture::make(2, {vmsg(1, 10), vmsg(1, 11), vmsg(2, 20)});
  // Sender 1 offers two distinct messages; each pairs with sender 2's one:
  // 2 events. No event may take both messages of sender 1.
  auto evs = events_of(f);
  EXPECT_EQ(evs.size(), 2u);
  for (const Event& e : evs) {
    std::set<ProcessId> senders;
    for (const Message& m : e.consumed) senders.insert(m.sender());
    EXPECT_EQ(senders.size(), e.consumed.size());
  }
}

TEST(Enabled, QuorumProductOverPerSenderChoices) {
  auto f = Fixture::make(2, {vmsg(1, 10), vmsg(1, 11), vmsg(2, 20), vmsg(2, 21)});
  // One sender pair (1,2), 2x2 payload choices.
  EXPECT_EQ(events_of(f).size(), 4u);
}

TEST(Enabled, QuorumInsufficientSenders) {
  auto f = Fixture::make(3, {vmsg(1), vmsg(2)});
  EXPECT_TRUE(events_of(f).empty());
  EXPECT_TRUE(pool_insufficient(f.proto, f.proto.initial(), f.tid));
}

TEST(Enabled, AllowedSendersFilterPool) {
  auto f = Fixture::make(2, {vmsg(1), vmsg(2), vmsg(3)}, {},
                         mask_of(1) | mask_of(2));
  // Sender 3 excluded: only the (1,2) pair remains.
  auto evs = events_of(f);
  ASSERT_EQ(evs.size(), 1u);
  for (const Message& m : evs[0].consumed) {
    EXPECT_NE(m.sender(), 3);
  }
}

TEST(Enabled, GuardFiltersCandidateSets) {
  // Only sets whose payloads are all equal are enabled.
  auto same = [](const GuardView& g) {
    for (const Message& m : g.consumed) {
      if (m[0] != g.consumed[0][0]) return false;
    }
    return true;
  };
  auto f = Fixture::make(2, {vmsg(1, 5), vmsg(2, 5), vmsg(3, 6)}, same);
  // Pairs: (1,2) same=yes, (1,3) no, (2,3) no.
  EXPECT_EQ(events_of(f).size(), 1u);
}

TEST(Enabled, PowersetArity) {
  auto f = Fixture::make(kPowersetArity, {vmsg(1), vmsg(2), vmsg(3)});
  // Non-empty subsets of 3 distinct messages.
  EXPECT_EQ(events_of(f).size(), 7u);
}

TEST(Enabled, PowersetWithGuard) {
  auto exactly_two = [](const GuardView& g) { return g.consumed.size() == 2; };
  auto f = Fixture::make(kPowersetArity, {vmsg(1), vmsg(2), vmsg(3)}, exactly_two);
  EXPECT_EQ(events_of(f).size(), 3u);
}

TEST(Enabled, SpontaneousGuardGates) {
  mp::ProtocolBuilder b("sp");
  const ProcessId p = b.process("p", "P", {{"fired", 0}});
  b.transition(p, "GO")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] == 0; })
      .effect([](EffectCtx& c) { c.set_local(0, 1); });
  Protocol proto = b.build();

  auto evs = enumerate_events(proto, proto.initial());
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_TRUE(evs[0].consumed.empty());

  State fired({1}, {});
  EXPECT_TRUE(enumerate_events(proto, fired).empty());
  EXPECT_FALSE(pool_insufficient(proto, fired, 0));  // disabled by guard, not pool
}

TEST(Enabled, EventsGroupedByTransitionId) {
  auto f = Fixture::make(1, {vmsg(1), vmsg(2)});
  auto evs = enumerate_events(f.proto, f.proto.initial());
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LE(evs[i - 1].tid, evs[i].tid);
  }
}

TEST(Enabled, ConsumedSetIsSorted) {
  auto f = Fixture::make(2, {vmsg(3), vmsg(1), vmsg(2)});
  for (const Event& e : events_of(f)) {
    EXPECT_TRUE(std::is_sorted(e.consumed.begin(), e.consumed.end()));
  }
}

TEST(Enabled, TransitionEnabledAgrees) {
  auto f = Fixture::make(2, {vmsg(1), vmsg(2)});
  EXPECT_TRUE(transition_enabled(f.proto, f.proto.initial(), f.tid));
  auto f2 = Fixture::make(2, {vmsg(1)});
  EXPECT_FALSE(transition_enabled(f2.proto, f2.proto.initial(), f2.tid));
}

}  // namespace
}  // namespace mpb
