#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "protocols/collector/collector.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using protocols::CollectorConfig;
using protocols::make_collector;
using testing::make_ping_pong;
using testing::make_small_quorum;

TEST(Explorer, PingPongFullExploration) {
  Protocol proto = make_ping_pong();
  ExploreResult r = explore_full(proto);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  // Linear protocol: init, after SEND, after PING, after PONG.
  EXPECT_EQ(r.stats.states_stored, 4u);
  EXPECT_EQ(r.stats.events_executed, 3u);
  EXPECT_EQ(r.stats.terminal_states, 1u);
}

TEST(Explorer, SmallQuorumCounts) {
  Protocol proto = make_small_quorum();
  ExploreResult r = explore_full(proto);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  // 3 senders fire in any order: 2^3 sender-subsets; plus gatherer fires once
  // a pair exists. Sanity bounds rather than exact magic numbers:
  EXPECT_GE(r.stats.states_stored, 8u);
  EXPECT_GT(r.stats.terminal_states, 0u);
}

TEST(Explorer, StatefulAndStatelessAgreeOnVerdict) {
  Protocol proto = make_small_quorum();
  ExploreConfig stateful;
  ExploreConfig stateless;
  stateless.mode = SearchMode::kStateless;
  ExploreResult a = explore(proto, stateful);
  ExploreResult b = explore(proto, stateless);
  EXPECT_EQ(a.verdict, b.verdict);
  // Stateless revisits states reached by multiple interleavings.
  EXPECT_GE(b.stats.states_visited, a.stats.states_stored);
}

TEST(Explorer, FingerprintModeMatchesExactCounts) {
  Protocol proto = make_small_quorum();
  ExploreConfig exact;
  ExploreConfig fp;
  fp.visited = VisitedMode::kFingerprint;
  ExploreResult a = explore(proto, exact);
  ExploreResult b = explore(proto, fp);
  EXPECT_EQ(a.stats.states_stored, b.stats.states_stored);
  EXPECT_EQ(a.stats.events_executed, b.stats.events_executed);
  EXPECT_EQ(a.verdict, b.verdict);
}

TEST(Explorer, DeterministicAcrossRuns) {
  Protocol proto = make_small_quorum();
  ExploreResult a = explore_full(proto);
  ExploreResult b = explore_full(proto);
  EXPECT_EQ(a.stats.states_stored, b.stats.states_stored);
  EXPECT_EQ(a.stats.events_executed, b.stats.events_executed);
  EXPECT_EQ(a.stats.terminal_states, b.stats.terminal_states);
}

TEST(Explorer, StateBudgetStopsSearch) {
  Protocol proto = make_collector({.senders = 6, .quorum = 3});
  ExploreConfig cfg;
  cfg.max_states = 10;
  ExploreResult r = explore(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kBudgetExceeded);
  EXPECT_LE(r.stats.states_stored, 12u);  // a little slack past the check
}

TEST(Explorer, EventBudgetStopsSearch) {
  Protocol proto = make_collector({.senders = 6, .quorum = 3});
  ExploreConfig cfg;
  cfg.max_events = 5;
  ExploreResult r = explore(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kBudgetExceeded);
}

TEST(Explorer, ViolationProducesCounterexample) {
  mp::ProtocolBuilder b("violator");
  const ProcessId p = b.process("p", "P", {{"x", 0}});
  b.transition(p, "STEP")
      .spontaneous()
      .guard([](const GuardView& g) { return g.local[0] < 3; })
      .effect([](EffectCtx& c) { c.set_local(0, c.local(0) + 1); });
  b.property("x_below_2", [p](const State& s, const Protocol& proto) {
    return s.local_slice(proto.proc(p).local_offset, 1)[0] < 2;
  });
  Protocol proto = b.build();

  ExploreResult r = explore_full(proto);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "x_below_2");
  ASSERT_EQ(r.counterexample.size(), 2u);  // two STEPs reach x==2
  EXPECT_EQ(r.counterexample.back().after.locals()[0], 2);
}

TEST(Explorer, ViolationInInitialState) {
  mp::ProtocolBuilder b("bad-init");
  const ProcessId p = b.process("p", "P", {{"x", 9}});
  b.transition(p, "NOOP").spontaneous().guard([](const GuardView&) { return false; });
  b.property("x_small", [p](const State& s, const Protocol& proto) {
    return s.local_slice(proto.proc(p).local_offset, 1)[0] < 5;
  });
  Protocol proto = b.build();
  ExploreResult r = explore_full(proto);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_TRUE(r.counterexample.empty());  // violated before any step
}

TEST(Explorer, TerminalFingerprintCollection) {
  Protocol proto = make_small_quorum();
  ExploreConfig cfg;
  cfg.collect_terminals = true;
  ExploreResult r = explore(proto, cfg);
  EXPECT_FALSE(r.terminal_fingerprints.empty());
  EXPECT_TRUE(std::is_sorted(r.terminal_fingerprints.begin(),
                             r.terminal_fingerprints.end()));
  // Stateful search visits each terminal state once.
  EXPECT_EQ(r.terminal_fingerprints.size(), r.stats.terminal_states);
}

TEST(Explorer, ReachableStatesSortedUnique) {
  Protocol proto = make_ping_pong();
  auto states = reachable_states(proto);
  EXPECT_EQ(states.size(), 4u);
  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_TRUE(states[i - 1] < states[i]);
  }
}

TEST(Explorer, ReachableStatesAbortsOverCap) {
  Protocol proto = make_small_quorum();
  EXPECT_TRUE(reachable_states(proto, 2).empty());
}

TEST(Explorer, ReachableEdgesMatchStateCount) {
  Protocol proto = make_ping_pong();
  auto edges = reachable_edges(proto);
  EXPECT_EQ(edges.size(), 3u);  // linear chain
  for (const Edge& e : edges) {
    EXPECT_FALSE(e.transition_name.empty());
  }
}

TEST(Explorer, FullExpansionSelectsEverything) {
  Protocol proto = make_small_quorum();
  FullExpansion full;
  ExploreConfig cfg;
  ExploreResult with = explore(proto, cfg, &full);
  ExploreResult without = explore(proto, cfg, nullptr);
  EXPECT_EQ(with.stats.states_stored, without.stats.states_stored);
  EXPECT_EQ(with.stats.events_executed, without.stats.events_executed);
}

TEST(Explorer, VerdictToString) {
  EXPECT_EQ(to_string(Verdict::kHolds), "Verified");
  EXPECT_EQ(to_string(Verdict::kViolated), "CE");
  EXPECT_EQ(to_string(Verdict::kBudgetExceeded), ">budget");
}

}  // namespace
}  // namespace mpb
