#include <gtest/gtest.h>

#include <cstdlib>

#include <sstream>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "protocols/paxos/paxos.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using harness::budget_from_env;
using harness::format_cell;
using harness::format_count;
using harness::format_time;
using harness::RunSpec;
using harness::Strategy;
using protocols::make_paxos;

TEST(Harness, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(7), "7");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(2822764), "2,822,764");
  EXPECT_EQ(format_count(16087468), "16,087,468");
}

TEST(Harness, FormatTime) {
  EXPECT_EQ(format_time(0.5), "0.50s");
  EXPECT_EQ(format_time(12.0), "12.0s");
  EXPECT_EQ(format_time(184.0), "3m4s");
  EXPECT_EQ(format_time(34620.0), "9h37m");
}

TEST(Harness, StrategyNames) {
  EXPECT_EQ(harness::to_string(Strategy::kSpor), "SPOR");
  EXPECT_EQ(harness::to_string(Strategy::kDpor), "DPOR");
  EXPECT_EQ(harness::to_string(Strategy::kUnreducedStateful), "unreduced");
  EXPECT_EQ(harness::to_string(Strategy::kUnreducedStateless),
            "unreduced-stateless");
}

TEST(Harness, BudgetFromEnv) {
  setenv("MPB_BUDGET_STATES", "1234", 1);
  setenv("MPB_BUDGET_SECONDS", "7.5", 1);
  ExploreConfig cfg = budget_from_env();
  EXPECT_EQ(cfg.max_states, 1234u);
  EXPECT_DOUBLE_EQ(cfg.max_seconds, 7.5);
  unsetenv("MPB_BUDGET_STATES");
  unsetenv("MPB_BUDGET_SECONDS");
  cfg = budget_from_env();
  EXPECT_EQ(cfg.max_states, 3'000'000u);
  EXPECT_DOUBLE_EQ(cfg.max_seconds, 120.0);
}

TEST(Harness, ProgressLoggerAttachesViaEnv) {
  // Off by default; MPB_PROGRESS enables the rate-limited logger.
  unsetenv("MPB_PROGRESS");  // shield against an ambient export
  ExploreConfig off = budget_from_env();
  EXPECT_EQ(off.progress_every_events, 0u);
  EXPECT_FALSE(static_cast<bool>(off.on_progress));
  setenv("MPB_PROGRESS", "1", 1);
  ExploreConfig on = budget_from_env();
  unsetenv("MPB_PROGRESS");
  EXPECT_GT(on.progress_every_events, 0u);
  EXPECT_TRUE(static_cast<bool>(on.on_progress));
}

TEST(Harness, ProgressLoggerRateLimitsByElapsedTime) {
  const auto logger = harness::make_progress_logger(/*min_interval_seconds=*/1.0);
  auto at = [](double seconds) {
    ExploreStats st;
    st.states_stored = 100;
    st.events_executed = 200;
    st.frontier = 3;
    st.seconds = seconds;
    return st;
  };
  ::testing::internal::CaptureStderr();
  logger(at(0.0));   // first snapshot always prints
  logger(at(0.2));   // inside the interval: suppressed
  logger(at(0.9));   // still inside: suppressed
  logger(at(1.5));   // past the interval: prints
  const std::string out = ::testing::internal::GetCapturedStderr();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(out.find("states/s="), std::string::npos);
  EXPECT_NE(out.find("frontier=3"), std::string::npos);
}

TEST(Harness, RunDispatchesAllStrategies) {
  Protocol proto = testing::make_small_quorum();
  for (Strategy s : {Strategy::kUnreducedStateful, Strategy::kUnreducedStateless,
                     Strategy::kSpor, Strategy::kDpor}) {
    RunSpec spec;
    spec.strategy = s;
    ExploreResult r = harness::run(proto, spec);
    EXPECT_EQ(r.verdict, Verdict::kHolds) << harness::to_string(s);
  }
}

TEST(Harness, StrategiesAgreeOnFaultyPaxos) {
  Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                  .quorum_model = false, .faulty_learner = true});
  for (Strategy s : {Strategy::kUnreducedStateful, Strategy::kUnreducedStateless,
                     Strategy::kSpor, Strategy::kDpor}) {
    RunSpec spec;
    spec.strategy = s;
    EXPECT_EQ(harness::run(proto, spec).verdict, Verdict::kViolated)
        << harness::to_string(s);
  }
}

TEST(Harness, FormatCellShowsVerdictStatesTime) {
  Protocol proto = testing::make_ping_pong();
  RunSpec spec;
  spec.strategy = Strategy::kUnreducedStateful;
  ExploreResult r = harness::run(proto, spec);
  const std::string cell = format_cell(r);
  EXPECT_NE(cell.find("Verified"), std::string::npos);
  EXPECT_NE(cell.find("4"), std::string::npos);
}

TEST(Harness, FormatCellBudget) {
  ExploreResult r;
  r.verdict = Verdict::kBudgetExceeded;
  r.stats.states_stored = 3000000;
  r.stats.seconds = 12.0;
  const std::string cell = format_cell(r);
  EXPECT_NE(cell.find(">3,000,000"), std::string::npos);
  EXPECT_NE(cell.find("(budget)"), std::string::npos);
}

TEST(HarnessTable, PrintAligned) {
  harness::Table t({"Protocol", "States"});
  t.add_row({"paxos", "123"});
  t.add_row({"a-much-longer-name", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Protocol"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Rules + header + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(HarnessTable, PrintCsv) {
  harness::Table t({"A", "B"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "\"A\",\"B\"\n\"x\",\"y\"\n");
}

TEST(HarnessTable, ShortRowsArePadded) {
  harness::Table t({"A", "B", "C"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace mpb
