#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "por/spor.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"
#include "refine/refine.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using protocols::EchoConfig;
using protocols::make_echo_multicast;
using protocols::make_paxos;
using protocols::make_regular_storage;
using protocols::PaxosConfig;
using protocols::StorageConfig;

// Thm. 2 / Def. 1: a refinement generates the *same state graph* — identical
// reachable states and identical (source, target) edge pairs.
void expect_same_state_graph(const Protocol& a, const Protocol& b) {
  auto sa = reachable_states(a);
  auto sb = reachable_states(b);
  ASSERT_FALSE(sa.empty());
  EXPECT_EQ(sa.size(), sb.size()) << a.name() << " vs " << b.name();
  EXPECT_TRUE(sa == sb) << a.name() << " vs " << b.name();

  auto edge_pairs = [](const Protocol& p) {
    std::vector<std::pair<State, State>> pairs;
    for (Edge& e : reachable_edges(p)) {
      pairs.emplace_back(std::move(e.from), std::move(e.to));
    }
    std::sort(pairs.begin(), pairs.end(), [](const auto& x, const auto& y) {
      if (!(x.first == y.first)) return x.first < y.first;
      return x.second < y.second;
    });
    pairs.erase(std::unique(pairs.begin(), pairs.end(),
                            [](const auto& x, const auto& y) {
                              return x.first == y.first && x.second == y.second;
                            }),
                pairs.end());
    return pairs;
  };
  EXPECT_TRUE(edge_pairs(a) == edge_pairs(b)) << a.name() << " vs " << b.name();
}

TEST(Refine, QuorumSplitCountsPaxos) {
  Protocol proto = make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  Protocol split = refine::quorum_split(proto);
  // READ_REPL (maj 2 of 3) -> C(3,2)=3 copies; learner ACCEPT -> 3 copies.
  // Original: 1 START + 1 READ_REPL + 3 READ + 3 WRITE + 1 ACCEPT = 9.
  EXPECT_EQ(proto.n_transitions(), 9u);
  EXPECT_EQ(split.n_transitions(), 9u - 2u + 3u + 3u);
}

TEST(Refine, ReplySplitCountsPaxos) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  Protocol split = refine::reply_split(proto);
  // Each acceptor's READ reply splits per proposer (2 copies each).
  EXPECT_EQ(split.n_transitions(), proto.n_transitions() + 3u);
}

TEST(Refine, SplitTransitionsCarryProvenance) {
  Protocol proto = make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  Protocol split = refine::combined_split(proto);
  bool any = false;
  for (TransitionId t = 0; t < split.n_transitions(); ++t) {
    const Transition& tr = split.transition(t);
    if (tr.split_of != kNoTransition) {
      any = true;
      EXPECT_LT(tr.split_of, proto.n_transitions());
      EXPECT_NE(tr.name.find("__"), std::string::npos);
    }
  }
  EXPECT_TRUE(any);
}

TEST(Refine, CandidateSendersExcludeNonSenders) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 3, .learners = 1});
  // Learner ACCEPT consumes from acceptors only (processes 2,3,4): the
  // analysis must rule out proposers and learners (Section III-C).
  for (TransitionId t = 0; t < proto.n_transitions(); ++t) {
    if (proto.transition(t).name != "ACCEPT") continue;
    const ProcessMask senders = refine::candidate_senders(proto, t);
    EXPECT_EQ(mask_count(senders), 3u);
    for (unsigned a = 0; a < 3; ++a) {
      EXPECT_TRUE(mask_contains(senders, 2 + a));
    }
  }
}

// --- Thm. 2 state-graph equivalence on every protocol family ---

TEST(RefineGraph, PaxosQuorumSplit) {
  Protocol proto = make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  expect_same_state_graph(proto, refine::quorum_split(proto));
}

TEST(RefineGraph, PaxosReplySplit) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 2, .learners = 1});
  expect_same_state_graph(proto, refine::reply_split(proto));
}

TEST(RefineGraph, PaxosCombinedSplit) {
  Protocol proto = make_paxos({.proposers = 2, .acceptors = 2, .learners = 1});
  expect_same_state_graph(proto, refine::combined_split(proto));
}

TEST(RefineGraph, EchoCombinedSplit) {
  Protocol proto = make_echo_multicast(
      {.honest_receivers = 2, .honest_initiators = 0, .byz_receivers = 1,
       .byz_initiators = 1});
  expect_same_state_graph(proto, refine::combined_split(proto));
}

TEST(RefineGraph, StorageCombinedSplit) {
  Protocol proto = make_regular_storage({.bases = 3, .readers = 1, .writes = 1});
  expect_same_state_graph(proto, refine::combined_split(proto));
}

TEST(RefineGraph, SmallQuorumSplit) {
  Protocol proto = mpb::testing::make_small_quorum();
  expect_same_state_graph(proto, refine::quorum_split(proto));
}

TEST(RefineGraph, SplitIsIdempotentOnSingleMessageModels) {
  // Quorum-split of a model without non-reply quorum transitions is a no-op
  // in graph terms (and nearly so in transition count).
  Protocol proto = make_paxos(
      {.proposers = 1, .acceptors = 2, .learners = 1, .quorum_model = false});
  Protocol split = refine::quorum_split(proto);
  expect_same_state_graph(proto, split);
  EXPECT_EQ(split.n_transitions(), proto.n_transitions());
}

// --- Thm. 1: refinement preserves POR verdicts ---

TEST(RefineVerdict, SporVerdictsAgreeAcrossSplits) {
  struct Case {
    Protocol proto;
    Verdict expected;
  };
  std::vector<Case> cases;
  cases.push_back({make_paxos({.proposers = 1, .acceptors = 3, .learners = 1}),
                   Verdict::kHolds});
  cases.push_back({make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                               .faulty_learner = true}),
                   Verdict::kViolated});
  cases.push_back({make_echo_multicast({.honest_receivers = 2,
                                        .honest_initiators = 0,
                                        .byz_receivers = 1,
                                        .byz_initiators = 1}),
                   Verdict::kHolds});
  cases.push_back(
      {make_regular_storage({.bases = 3, .readers = 1, .writes = 1}),
       Verdict::kHolds});
  cases.push_back({make_regular_storage({.bases = 3, .readers = 1, .writes = 2,
                                         .wrong_regularity = true}),
                   Verdict::kViolated});

  for (const Case& c : cases) {
    for (Protocol split : {refine::reply_split(c.proto),
                           refine::quorum_split(c.proto),
                           refine::combined_split(c.proto)}) {
      SporStrategy strategy(split);
      ExploreConfig cfg;
      ExploreResult r = explore(split, cfg, &strategy);
      EXPECT_EQ(r.verdict, c.expected) << split.name();
    }
  }
}

TEST(Refine, SplitSingleNamedTransition) {
  Protocol proto = make_paxos({.proposers = 1, .acceptors = 3, .learners = 1});
  Protocol split = refine::split_transition(proto, "READ_REPL");
  // Only READ_REPL is replaced: 9 - 1 + C(3,2) = 11.
  EXPECT_EQ(split.n_transitions(), 11u);
  expect_same_state_graph(proto, split);
}

TEST(Refine, RefinedProtocolsValidate) {
  Protocol proto = make_echo_multicast(
      {.honest_receivers = 3, .honest_initiators = 0, .byz_receivers = 1,
       .byz_initiators = 1});
  EXPECT_TRUE(refine::quorum_split(proto).validate().empty());
  EXPECT_TRUE(refine::reply_split(proto).validate().empty());
  EXPECT_TRUE(refine::combined_split(proto).validate().empty());
}

}  // namespace
}  // namespace mpb
