#include <gtest/gtest.h>

#include "por/dpor.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

using protocols::CollectorConfig;
using protocols::make_collector;
using protocols::make_paxos;
using protocols::PaxosConfig;
using testing::make_ping_pong;
using testing::make_small_quorum;

ExploreResult run_dpor(const Protocol& proto, bool reduce = true,
                       bool sleep_sets = true) {
  ExploreConfig cfg;
  cfg.mode = SearchMode::kStateless;
  cfg.collect_terminals = true;
  return explore_dpor(proto, cfg,
                      DporOptions{.reduce = reduce, .sleep_sets = sleep_sets});
}

TEST(Dpor, LinearProtocolSingleTrace) {
  Protocol proto = make_ping_pong();
  ExploreResult r = run_dpor(proto);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  // No concurrency at all: exactly one maximal trace of 3 events.
  EXPECT_EQ(r.stats.events_executed, 3u);
}

TEST(Dpor, ReducesAgainstUnreducedStateless) {
  Protocol proto = make_collector({.senders = 4, .quorum = 4, .quorum_model = false});
  ExploreResult reduced = run_dpor(proto, true);
  ExploreResult full = run_dpor(proto, false);
  EXPECT_EQ(reduced.verdict, full.verdict);
  EXPECT_LT(reduced.stats.events_executed, full.stats.events_executed);
}

TEST(Dpor, PreservesTerminalStates) {
  for (const Protocol& proto :
       {make_collector({.senders = 3, .quorum = 2, .quorum_model = false}),
        make_collector({.senders = 4, .quorum = 4, .quorum_model = false}),
        make_small_quorum(),
        make_paxos({.proposers = 1, .acceptors = 2, .learners = 1,
                    .quorum_model = false})}) {
    ExploreResult reduced = run_dpor(proto, true);
    ExploreResult full = run_dpor(proto, false);
    EXPECT_EQ(reduced.terminal_fingerprints, full.terminal_fingerprints)
        << proto.name();
  }
}

TEST(Dpor, FindsPaxosConsensusVerified) {
  Protocol proto = make_paxos(
      {.proposers = 1, .acceptors = 3, .learners = 1, .quorum_model = false});
  EXPECT_EQ(run_dpor(proto).verdict, Verdict::kHolds);
}

TEST(Dpor, FindsFaultyPaxosBug) {
  Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                  .quorum_model = false, .faulty_learner = true});
  ExploreResult r = run_dpor(proto);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_EQ(r.violated_property, "consensus");
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(Dpor, BudgetStopsSearch) {
  Protocol proto = make_collector({.senders = 6, .quorum = 6, .quorum_model = false});
  ExploreConfig cfg;
  cfg.mode = SearchMode::kStateless;
  cfg.max_events = 50;
  ExploreResult r = explore_dpor(proto, cfg);
  EXPECT_EQ(r.verdict, Verdict::kBudgetExceeded);
}

TEST(Dpor, DeterministicAcrossRuns) {
  Protocol proto = make_collector({.senders = 4, .quorum = 3, .quorum_model = false});
  ExploreResult a = run_dpor(proto);
  ExploreResult b = run_dpor(proto);
  EXPECT_EQ(a.stats.events_executed, b.stats.events_executed);
  EXPECT_EQ(a.stats.states_visited, b.stats.states_visited);
}

TEST(Dpor, HandlesQuorumEventsSoundly) {
  // Not the intended use (the paper applies DPOR to single-message models
  // only) but must stay sound: same terminal states as unreduced.
  Protocol proto = make_small_quorum();
  ExploreResult reduced = run_dpor(proto, true);
  ExploreResult full = run_dpor(proto, false);
  EXPECT_EQ(reduced.terminal_fingerprints, full.terminal_fingerprints);
}

TEST(Dpor, UnreducedStatelessCountsAllInterleavings) {
  // n independent one-shot processes have n! interleavings; the unreduced
  // stateless search must walk every one, DPOR only a representative.
  Protocol proto = make_collector({.senders = 4, .quorum = 1, .quorum_model = false,
                                   .noise = 0});
  ExploreResult full = run_dpor(proto, false);
  ExploreResult reduced = run_dpor(proto, true);
  EXPECT_GT(full.stats.states_visited, reduced.stats.states_visited);
}

// --- the sleep-set layer -----------------------------------------------------

TEST(Dpor, SleepSetsBlockAndStrictlyReduce) {
  // Sleep sets prune sibling branches already covered by an earlier pick,
  // two ways: a pick found asleep is blocked without executing (counted in
  // sleep_blocked), and an asleep event is never chosen as a frame's
  // representative in the first place (pruned silently at selection). Either
  // way the executed-event count must drop strictly while the terminal set —
  // the soundness witness — is unchanged.
  for (const Protocol& proto :
       {make_paxos({.proposers = 2, .acceptors = 2, .learners = 1}),
        protocols::make_regular_storage(
            {.bases = 3, .readers = 1, .writes = 1})}) {
    const ExploreResult on = run_dpor(proto, true, /*sleep_sets=*/true);
    const ExploreResult off = run_dpor(proto, true, /*sleep_sets=*/false);
    SCOPED_TRACE(proto.name());
    EXPECT_EQ(on.verdict, off.verdict);
    EXPECT_EQ(off.stats.sleep_blocked, 0u);
    EXPECT_LT(on.stats.events_executed, off.stats.events_executed);
    EXPECT_EQ(on.terminal_fingerprints, off.terminal_fingerprints);
  }
  // Race-scheduled backtrack seeds land in already-slept frames on the paxos
  // quorum model, so the blocked counter itself must tick there.
  const ExploreResult paxos_on = run_dpor(
      make_paxos({.proposers = 2, .acceptors = 2, .learners = 1}), true, true);
  EXPECT_GT(paxos_on.stats.sleep_blocked, 0u);
}

TEST(Dpor, SleepSetsPreserveTerminalsAgainstUnreduced) {
  // The full covering chain: sleep-on DPOR vs the unreduced stateless walk.
  // This is the regression pin for the two sleep-set soundness rules (wake
  // on race request; representative chosen from enabled \ sleep) — either
  // bug loses terminals exactly here.
  for (const Protocol& proto :
       {make_paxos({.proposers = 1, .acceptors = 3, .learners = 1}),
        make_paxos({.proposers = 2, .acceptors = 2, .learners = 1}),
        protocols::make_regular_storage(
            {.bases = 3, .readers = 1, .writes = 1}),
        make_collector({.senders = 4, .quorum = 3, .quorum_model = false})}) {
    const ExploreResult reduced = run_dpor(proto, true, /*sleep_sets=*/true);
    const ExploreResult full = run_dpor(proto, false);
    EXPECT_EQ(reduced.terminal_fingerprints, full.terminal_fingerprints)
        << proto.name();
  }
}

TEST(Dpor, SleepSetsPreserveViolations) {
  const Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                  .quorum_model = false, .faulty_learner = true});
  for (bool sleep_sets : {true, false}) {
    const ExploreResult r = run_dpor(proto, true, sleep_sets);
    SCOPED_TRACE(sleep_sets ? "sleep on" : "sleep off");
    EXPECT_EQ(r.verdict, Verdict::kViolated);
    EXPECT_EQ(r.violated_property, "consensus");
    EXPECT_FALSE(r.counterexample.empty());
  }
}

TEST(Dpor, CounterexampleReplayable) {
  Protocol proto =
      make_paxos({.proposers = 2, .acceptors = 3, .learners = 1,
                  .quorum_model = false, .faulty_learner = true});
  ExploreResult r = run_dpor(proto);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  // Walk the counterexample manually.
  State s = proto.initial();
  for (const TraceStep& step : r.counterexample) {
    s = execute(proto, s, step.event);
    EXPECT_EQ(s, step.after);
  }
  EXPECT_NE(proto.violated_property(s), nullptr);
}

}  // namespace
}  // namespace mpb
