#include <gtest/gtest.h>

#include "por/independence.hpp"
#include "protocols/paxos/paxos.hpp"
#include "refine/refine.hpp"
#include "test_protocols.hpp"

namespace mpb {
namespace {

TransitionId find_transition(const Protocol& p, std::string_view name,
                             ProcessId proc) {
  for (TransitionId t = 0; t < p.n_transitions(); ++t) {
    if (p.transition(t).name == name && p.transition(t).proc == proc) return t;
  }
  ADD_FAILURE() << "no transition " << name << " of proc " << int(proc);
  return kNoTransition;
}

TEST(Independence, SameProcessIsDependent) {
  Protocol proto = testing::make_ping_pong();
  StaticRelations rel(proto);
  const TransitionId send = find_transition(proto, "SEND", 0);
  const TransitionId pong = find_transition(proto, "PONG", 0);
  EXPECT_TRUE(rel.dependent(send, pong));
  EXPECT_TRUE(rel.dependent(pong, send));
  EXPECT_TRUE(rel.dependent(send, send));
}

TEST(Independence, ProducerConsumerIsDependentAndEnabling) {
  Protocol proto = testing::make_ping_pong();
  StaticRelations rel(proto);
  const TransitionId send = find_transition(proto, "SEND", 0);
  const TransitionId ping = find_transition(proto, "PING", 1);
  const TransitionId pong = find_transition(proto, "PONG", 0);
  EXPECT_TRUE(rel.can_enable(send, ping));
  EXPECT_FALSE(rel.can_enable(ping, send));
  EXPECT_TRUE(rel.can_enable(ping, pong));
  EXPECT_TRUE(rel.dependent(send, ping));
  EXPECT_TRUE(rel.dependent(ping, pong));
}

TEST(Independence, UnrelatedProcessesIndependent) {
  Protocol proto = testing::make_fig4_refined();
  StaticRelations rel(proto);
  const TransitionId t1 = find_transition(proto, "t1", 0);
  const TransitionId t2 = find_transition(proto, "t2", 1);
  const TransitionId t3 = find_transition(proto, "t3", 2);
  EXPECT_FALSE(rel.dependent(t1, t2));
  EXPECT_FALSE(rel.dependent(t1, t3));
  EXPECT_TRUE(rel.dependent(t2, t3));  // t2 produces t3's input
  EXPECT_TRUE(rel.can_enable(t2, t3));
  EXPECT_FALSE(rel.can_enable(t1, t3));
}

TEST(Independence, ProducersListMatchesRelation) {
  Protocol proto = testing::make_ping_pong();
  StaticRelations rel(proto);
  const TransitionId send = find_transition(proto, "SEND", 0);
  const TransitionId ping = find_transition(proto, "PING", 1);
  const auto& producers = rel.producers_of(ping);
  ASSERT_EQ(producers.size(), 1u);
  EXPECT_EQ(producers[0], send);
}

TEST(Independence, LocalEnablersOnlyWithinProcess) {
  Protocol proto = testing::make_ping_pong();
  StaticRelations rel(proto);
  const TransitionId send = find_transition(proto, "SEND", 0);
  const TransitionId pong = find_transition(proto, "PONG", 0);
  // PONG's consumer-side: same-process writer SEND may flip its guard state.
  EXPECT_TRUE(rel.can_enable_local(send, pong));
  EXPECT_FALSE(rel.can_enable_local(pong, pong));  // a != b required
}

TEST(Independence, PaxosReadReplDependsOnAcceptors) {
  using protocols::PaxosConfig;
  Protocol proto = protocols::make_paxos(PaxosConfig{.proposers = 1, .acceptors = 3});
  StaticRelations rel(proto);
  // proposer0 is process 0; acceptors 1..3; learner 4.
  const TransitionId rr = find_transition(proto, "READ_REPL", 0);
  for (ProcessId a = 1; a <= 3; ++a) {
    const TransitionId read = find_transition(proto, "READ", a);
    EXPECT_TRUE(rel.can_enable(read, rr)) << int(a);
  }
}

TEST(Independence, QuorumSplitNarrowsProducers) {
  using protocols::PaxosConfig;
  Protocol proto = protocols::make_paxos(PaxosConfig{.proposers = 1, .acceptors = 3});
  Protocol split = refine::quorum_split(proto);
  StaticRelations rel(split);

  // Find a split READ_REPL copy; its producers must be exactly the READ
  // transitions of its two quorum peers.
  for (TransitionId t = 0; t < split.n_transitions(); ++t) {
    const Transition& tr = split.transition(t);
    if (tr.split_of == kNoTransition || tr.name.rfind("READ_REPL", 0) != 0) continue;
    EXPECT_EQ(mask_count(tr.allowed_senders), 2u);
    for (TransitionId p : rel.producers_of(t)) {
      EXPECT_TRUE(mask_contains(tr.allowed_senders, split.transition(p).proc));
    }
    EXPECT_EQ(rel.producers_of(t).size(), 2u);
  }
}

TEST(Independence, ReplyRestrictionLimitsEnabling) {
  using protocols::PaxosConfig;
  Protocol proto = protocols::make_paxos(PaxosConfig{.proposers = 2, .acceptors = 3});
  Protocol split = refine::reply_split(proto);
  StaticRelations rel(split);

  // A reply-split acceptor READ copy for proposer j can enable only
  // transitions of process j (Section III-D).
  for (TransitionId t = 0; t < split.n_transitions(); ++t) {
    const Transition& tr = split.transition(t);
    if (tr.split_of == kNoTransition || !tr.is_reply) continue;
    ASSERT_EQ(mask_count(tr.allowed_senders), 1u);
    for (TransitionId other = 0; other < split.n_transitions(); ++other) {
      if (rel.can_enable(t, other)) {
        EXPECT_TRUE(mask_contains(tr.allowed_senders, split.transition(other).proc));
      }
    }
  }
}

TEST(Independence, DependenceIsSymmetric) {
  Protocol proto = protocols::make_paxos(
      protocols::PaxosConfig{.proposers = 2, .acceptors = 2, .learners = 1});
  StaticRelations rel(proto);
  for (TransitionId a = 0; a < rel.n_transitions(); ++a) {
    for (TransitionId b = 0; b < rel.n_transitions(); ++b) {
      EXPECT_EQ(rel.dependent(a, b), rel.dependent(b, a));
    }
  }
}

}  // namespace
}  // namespace mpb
