// The checking service (src/serve): JSON wire format, request/result
// serialization, the result cache, the bounded job queue with cancellation,
// and the NDJSON server end to end over real Unix-domain sockets.
//
// Suites are named Serve* so the `serve` ctest label (CMakeLists.txt) picks
// them up in the default, TSan and ASan lanes alike.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "check/serialize.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/jobs.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "util/json.hpp"

namespace mpb {
namespace {

using check::CheckRequest;
using check::CheckResult;
using serve::Job;
using serve::JobLimits;
using serve::JobQueue;
using serve::JobState;
using serve::Metrics;
using serve::ResultCache;
using util::Json;

// Poll until `pred` holds; fails the test (returns false) after `seconds`.
// Generous default so the sanitizer lanes never flake on timing.
template <typename Pred>
bool wait_for(Pred&& pred, double seconds = 60.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

std::string test_socket(const std::string& name) {
  return "/tmp/mpb-serve-" + std::to_string(::getpid()) + "-" + name + ".sock";
}

// The small instant workload (65 states) and the big slow one (~1.1M).
CheckRequest echo_request() {
  CheckRequest req;
  req.model = "echo";
  req.strategy = "full";
  return req;
}

CheckRequest paxos_small_request() {
  CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "2"}, {"acceptors", "3"}, {"learners", "1"}};
  req.strategy = "full";
  return req;
}

CheckRequest paxos_big_request() {
  CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "3"}, {"acceptors", "3"}, {"learners", "1"}};
  req.strategy = "full";
  return req;
}

// --- the JSON value (util/json) ---------------------------------------------

TEST(ServeJson, RoundTripsScalarsArraysObjects) {
  const std::string text =
      R"({"a":[1,2.5,true,false,null],"b":{"nested":"x"},"c":-7,"s":"q\"\\\n"})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j["a"].as_array().size(), 5u);
  EXPECT_EQ(j["a"][0].as_int(), 1);
  EXPECT_DOUBLE_EQ(j["a"][1].as_double(), 2.5);
  EXPECT_TRUE(j["a"][2].as_bool());
  EXPECT_TRUE(j["a"][4].is_null());
  EXPECT_EQ(j["b"]["nested"].as_string(), "x");
  EXPECT_EQ(j["c"].as_int(), -7);
  EXPECT_EQ(j["s"].as_string(), "q\"\\\n");
  // dump -> parse -> dump is a fixed point (canonical form).
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(ServeJson, DumpSortsObjectKeysCanonically) {
  Json j = Json::object();
  j["zulu"] = 1;
  j["alpha"] = 2;
  j["mike"] = 3;
  EXPECT_EQ(j.dump(), R"({"alpha":2,"mike":3,"zulu":1})");
}

TEST(ServeJson, ParseErrorsCarryByteOffsets) {
  EXPECT_THROW((void)Json::parse("{\"a\":}"), util::JsonError);
  EXPECT_THROW((void)Json::parse("[1,2"), util::JsonError);
  EXPECT_THROW((void)Json::parse("tru"), util::JsonError);
  EXPECT_THROW((void)Json::parse("{} trailing"), util::JsonError);
  try {
    (void)Json::parse("[1, nope]");
    FAIL() << "expected JsonError";
  } catch (const util::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(ServeJson, UnicodeEscapesDecodeToUtf8) {
  const Json j = Json::parse(R"("A\u00e9\u4e2d")");
  EXPECT_EQ(j.as_string(), "A\xc3\xa9\xe4\xb8\xad");
}

// --- request / result serialization (check/serialize) -----------------------

TEST(ServeSerialize, DefaultRequestSerializesMinimally) {
  CheckRequest req;
  req.model = "echo";
  EXPECT_EQ(check::request_to_json(req).dump(), R"({"model":"echo"})");
}

TEST(ServeSerialize, RoundTripPreservesEveryField) {
  CheckRequest req;
  req.model = "paxos";
  req.params = {{"proposers", "3"}, {"acceptors", "3"}};
  req.strategy = "spor";
  req.split = "quorum";
  req.symmetry = true;
  req.repeat = 3;
  req.spor.seed = SeedHeuristic::kTransaction;
  req.spor.proviso = CycleProviso::kScc;
  req.spor.state_dependent_nes = false;
  req.spor.exhaustive_seed = true;
  req.dpor_sleep_sets = false;
  req.explore.visited = VisitedMode::kInterned;
  req.explore.threads = 4;
  req.explore.max_states = 12345;
  req.explore.max_seconds = 9.5;
  req.explore.guard.watchdog_seconds = 30.0;
  req.explore.guard.max_states = 99999;
  req.explore.guard.max_memory_bytes = 1u << 20;

  const CheckRequest back =
      check::request_from_json(check::request_to_json(req));
  EXPECT_EQ(back.model, req.model);
  EXPECT_EQ(back.params, req.params);
  EXPECT_EQ(back.strategy, req.strategy);
  EXPECT_EQ(back.split, req.split);
  EXPECT_EQ(back.symmetry, req.symmetry);
  EXPECT_EQ(back.repeat, req.repeat);
  EXPECT_EQ(back.spor.seed, req.spor.seed);
  EXPECT_EQ(back.spor.proviso, req.spor.proviso);
  EXPECT_EQ(back.spor.state_dependent_nes, req.spor.state_dependent_nes);
  EXPECT_EQ(back.spor.exhaustive_seed, req.spor.exhaustive_seed);
  EXPECT_EQ(back.dpor_sleep_sets, req.dpor_sleep_sets);
  EXPECT_EQ(back.explore.visited, req.explore.visited);
  EXPECT_EQ(back.explore.threads, req.explore.threads);
  EXPECT_EQ(back.explore.max_states, req.explore.max_states);
  EXPECT_DOUBLE_EQ(back.explore.max_seconds, req.explore.max_seconds);
  EXPECT_DOUBLE_EQ(back.explore.guard.watchdog_seconds,
                   req.explore.guard.watchdog_seconds);
  EXPECT_EQ(back.explore.guard.max_states, req.explore.guard.max_states);
  EXPECT_EQ(back.explore.guard.max_memory_bytes,
            req.explore.guard.max_memory_bytes);
}

TEST(ServeSerialize, UnknownFieldsAreRejectedLoudly) {
  EXPECT_THROW(
      (void)check::request_from_json(
          Json::parse(R"({"model":"echo","strahtegy":"full"})")),
      check::CheckError);
  EXPECT_THROW((void)check::request_from_json(
                   Json::parse(R"({"model":"echo","spor":{"sede":"first"}})")),
               check::CheckError);
  EXPECT_THROW((void)check::request_from_json(Json::parse(R"({})")),
               check::CheckError);
}

TEST(ServeSerialize, ParamsAcceptBareNumbersAndBools) {
  const CheckRequest req = check::request_from_json(Json::parse(
      R"({"model":"paxos","params":{"proposers":2,"acceptors":"3"}})"));
  EXPECT_EQ(req.params.at("proposers"), "2");
  EXPECT_EQ(req.params.at("acceptors"), "3");
}

TEST(ServeSerialize, ResultCarriesVerdictAndBenchRecord) {
  const CheckResult r = check::run_check(echo_request());
  const Json j = check::result_to_json(r);
  EXPECT_EQ(j["verdict"].as_string(), "Verified");
  EXPECT_EQ(j["model"].as_string(), "echo");
  EXPECT_EQ(j["record"]["states_stored"].as_int(), 65);
  EXPECT_EQ(j["record"]["verdict"].as_string(), "Verified");
  EXPECT_EQ(j.find("trace"), nullptr);  // no counterexample, no trace key
}

// --- metrics rendering -------------------------------------------------------

TEST(ServeMetrics, RendersPerJobGaugesIncludingSleepBlocked) {
  Metrics metrics;
  serve::GaugeSample g;
  g.jobs_running = 1;
  serve::RunningJobSample job;
  job.id = 7;
  job.states_per_sec = 1234.5;
  job.sleep_blocked = 42;  // a dpor job mid-run
  g.running.push_back(job);
  const std::string text = serve::render_prometheus(metrics, g);
  EXPECT_NE(text.find("mpb_job_states_per_sec{job=\"7\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mpb_job_sleep_blocked{job=\"7\"} 42"), std::string::npos)
      << text;
}

// --- the result cache --------------------------------------------------------

TEST(ServeCache, KeyCanonicalizesParamsAndResolvesProviso) {
  CheckRequest a = paxos_small_request();
  CheckRequest b = paxos_small_request();
  // Schema defaults filled: spelling a default explicitly changes nothing.
  b.params.erase("learners");
  const auto ka = serve::cache_key(a);
  const auto kb = serve::cache_key(b);
  ASSERT_TRUE(ka.has_value());
  EXPECT_EQ(*ka, *kb);

  // Different parameters and different strategies key differently.
  CheckRequest c = paxos_big_request();
  EXPECT_NE(*serve::cache_key(c), *ka);
  CheckRequest d = paxos_small_request();
  d.strategy = "spor";
  EXPECT_NE(*serve::cache_key(d), *ka);

  // The auto proviso resolves by thread count, exactly like the Checker —
  // a sequential spor run and a pooled spor run must not share an entry.
  CheckRequest e = paxos_small_request();
  e.strategy = "spor";
  CheckRequest f = paxos_small_request();
  f.strategy = "spor";
  f.explore.threads = 4;
  EXPECT_NE(*serve::cache_key(e), *serve::cache_key(f));

  // Unknown models and prebuilt protocols are not cacheable.
  CheckRequest g;
  g.model = "no-such-model";
  EXPECT_FALSE(serve::cache_key(g).has_value());
}

TEST(ServeCache, HitReturnsTheStoredResult) {
  ResultCache cache(1u << 20);
  const CheckResult r = check::run_check(echo_request());
  const std::string key = *serve::cache_key(echo_request());
  EXPECT_FALSE(cache.get(key).has_value());
  cache.put(key, r);
  const auto hit = cache.get(key);
  ASSERT_TRUE(hit.has_value());
  // The cached copy is byte-for-byte the same result document.
  EXPECT_EQ(check::result_to_json(*hit).dump(),
            check::result_to_json(r).dump());
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ServeCache, TruncatedVerdictsAreNeverCached) {
  ResultCache cache(1u << 20);
  CheckRequest req = paxos_small_request();
  req.explore.max_states = 100;  // force kBudgetExceeded
  const CheckResult r = check::run_check(std::move(req));
  ASSERT_EQ(r.verdict(), Verdict::kBudgetExceeded);
  cache.put("some-key", r);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ServeCache, LruEvictsColdEntriesUnderByteBudget) {
  const CheckResult r = check::run_check(echo_request());
  ResultCache cache(1u << 20);
  cache.put("k1", r);
  const std::uint64_t per_entry = cache.bytes();  // keys are all 2 bytes
  cache.set_budget(2 * per_entry + per_entry / 2);  // room for exactly two
  cache.put("k2", r);
  (void)cache.get("k1");  // refresh k1; k2 is now the cold end
  cache.put("k3", r);
  EXPECT_TRUE(cache.get("k1").has_value());
  EXPECT_FALSE(cache.get("k2").has_value());
  EXPECT_TRUE(cache.get("k3").has_value());

  cache.set_budget(0);  // shrink-in-place evicts everything
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

// --- engine-level cancellation ----------------------------------------------

TEST(ServeCancel, PreSetFlagAbortsImmediatelyWithPartialStats) {
  const check::Model model =
      check::ModelRegistry::global().build("paxos", {{"proposers", "2"},
                                                     {"acceptors", "3"},
                                                     {"learners", "1"}});
  ExploreConfig cfg;
  cfg.cancel = std::make_shared<std::atomic<bool>>(true);
  const ExploreResult r = explore(model.protocol, cfg);
  EXPECT_EQ(r.verdict, Verdict::kResourceLimit);
  EXPECT_LT(r.stats.states_stored, 9945u);
}

TEST(ServeCancel, FlagFlippedMidRunStopsTheSearch) {
  const check::Model model =
      check::ModelRegistry::global().build("paxos", {{"proposers", "2"},
                                                     {"acceptors", "3"},
                                                     {"learners", "1"}});
  ExploreConfig cfg;
  cfg.cancel = std::make_shared<std::atomic<bool>>(false);
  cfg.progress_every_events = 512;
  auto flag = cfg.cancel;
  cfg.on_progress = [flag](const ExploreStats&) {
    flag->store(true, std::memory_order_relaxed);
  };
  const ExploreResult r = explore(model.protocol, cfg);
  EXPECT_EQ(r.verdict, Verdict::kResourceLimit);
  EXPECT_GT(r.stats.events_executed, 0u);
  EXPECT_LT(r.stats.states_stored, 9945u);
}

// --- the job queue -----------------------------------------------------------

TEST(ServeQueue, RunsAJobToCompletion) {
  Metrics metrics;
  ResultCache cache(1u << 20);
  JobQueue queue(/*workers=*/1, /*queue_depth=*/4, JobLimits{}, &cache,
                 &metrics);
  auto job = queue.submit(paxos_small_request());
  ASSERT_NE(job, nullptr);
  ASSERT_TRUE(wait_for([&] { return job->state() == JobState::kDone; }));
  const auto r = job->result();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->verdict(), Verdict::kHolds);
  EXPECT_EQ(r->stats().states_stored, 9945u);
  EXPECT_EQ(metrics.jobs_done_holds.load(), 1u);
  queue.close(/*drain=*/true);
}

TEST(ServeQueue, SaturationRejectsAndFifoOrderSurvives) {
  Metrics metrics;
  ResultCache cache(0);  // cache off: every echo submit must really queue
  JobQueue queue(/*workers=*/1, /*queue_depth=*/2, JobLimits{}, &cache,
                 &metrics);
  // A long-running blocker pins the single worker...
  auto blocker = queue.submit(paxos_big_request());
  ASSERT_NE(blocker, nullptr);
  ASSERT_TRUE(
      wait_for([&] { return blocker->state() == JobState::kRunning; }));
  // ...two jobs fill the queue; the third is rejected, not buffered.
  auto e1 = queue.submit(echo_request());
  auto e2 = queue.submit(echo_request());
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(queue.queued(), 2u);
  EXPECT_EQ(queue.submit(echo_request()), nullptr);
  EXPECT_EQ(metrics.jobs_rejected.load(), 1u);

  // Unblock; both queued jobs must finish, and in submission order: with one
  // worker, FIFO means e1 starts strictly before e2, so its submit-to-start
  // latency is strictly smaller.
  EXPECT_TRUE(queue.cancel(blocker->id));
  ASSERT_TRUE(wait_for([&] {
    return e1->state() == JobState::kDone && e2->state() == JobState::kDone;
  }));
  EXPECT_LT(e1->queue_seconds(), e2->queue_seconds());
  queue.close(/*drain=*/true);
}

TEST(ServeQueue, CancelQueuedJobNeverRuns) {
  Metrics metrics;
  ResultCache cache(0);
  JobQueue queue(/*workers=*/1, /*queue_depth=*/4, JobLimits{}, &cache,
                 &metrics);
  auto blocker = queue.submit(paxos_big_request());
  ASSERT_NE(blocker, nullptr);
  ASSERT_TRUE(
      wait_for([&] { return blocker->state() == JobState::kRunning; }));
  auto queued = queue.submit(echo_request());
  ASSERT_NE(queued, nullptr);
  EXPECT_TRUE(queue.cancel(queued->id));
  EXPECT_EQ(queued->state(), JobState::kCancelled);
  EXPECT_FALSE(queued->result().has_value());  // never started, no stats
  EXPECT_TRUE(queue.cancel(blocker->id));
  ASSERT_TRUE(
      wait_for([&] { return blocker->state() == JobState::kCancelled; }));
  queue.close(/*drain=*/true);
}

TEST(ServeQueue, CancelMidRunKeepsPartialStats) {
  Metrics metrics;
  ResultCache cache(1u << 20);
  JobQueue queue(/*workers=*/1, /*queue_depth=*/4, JobLimits{}, &cache,
                 &metrics);
  auto job = queue.submit(paxos_big_request());
  ASSERT_NE(job, nullptr);
  // Wait for real progress so the cancel lands mid-search.
  ASSERT_TRUE(wait_for([&] { return job->progress().seq > 0; }));
  EXPECT_TRUE(queue.cancel(job->id));
  ASSERT_TRUE(wait_for([&] { return job->state() == JobState::kCancelled; }));
  const auto r = job->result();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->verdict(), Verdict::kResourceLimit);
  EXPECT_GT(r->stats().states_stored, 0u);
  EXPECT_LT(r->stats().states_stored, 1'119'285u);
  EXPECT_EQ(metrics.jobs_cancelled.load(), 1u);
  // A cancelled run is partial: it must never poison the cache.
  EXPECT_EQ(cache.entries(), 0u);
  queue.close(/*drain=*/true);
}

TEST(ServeQueue, CacheHitCompletesWithoutRunning) {
  Metrics metrics;
  ResultCache cache(1u << 20);
  JobQueue queue(/*workers=*/1, /*queue_depth=*/4, JobLimits{}, &cache,
                 &metrics);
  auto first = queue.submit(echo_request());
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(wait_for([&] { return first->state() == JobState::kDone; }));
  EXPECT_FALSE(first->cached());
  EXPECT_EQ(metrics.cache_misses.load(), 1u);

  auto second = queue.submit(echo_request());
  ASSERT_NE(second, nullptr);
  // Born done: no queue trip, no worker involvement.
  EXPECT_EQ(second->state(), JobState::kDone);
  EXPECT_TRUE(second->cached());
  EXPECT_EQ(metrics.cache_hits.load(), 1u);
  // The identical CheckResult, byte for byte.
  EXPECT_EQ(check::result_to_json(*second->result()).dump(),
            check::result_to_json(*first->result()).dump());
  queue.close(/*drain=*/true);
}

TEST(ServeQueue, DrainClosesAfterFinishingQueuedWork) {
  Metrics metrics;
  ResultCache cache(0);
  JobQueue queue(/*workers=*/2, /*queue_depth=*/8, JobLimits{}, &cache,
                 &metrics);
  std::vector<std::shared_ptr<Job>> jobs;
  for (int i = 0; i < 6; ++i) {
    auto job = queue.submit(paxos_small_request());
    ASSERT_NE(job, nullptr);
    jobs.push_back(std::move(job));
  }
  queue.close(/*drain=*/true);  // returns only after everything ran
  for (const auto& job : jobs) {
    EXPECT_EQ(job->state(), JobState::kDone);
    EXPECT_EQ(job->result()->stats().states_stored, 9945u);
  }
}

TEST(ServeQueue, NonDrainCloseCancelsEverything) {
  Metrics metrics;
  ResultCache cache(0);
  JobQueue queue(/*workers=*/1, /*queue_depth=*/8, JobLimits{}, &cache,
                 &metrics);
  auto running = queue.submit(paxos_big_request());
  ASSERT_NE(running, nullptr);
  ASSERT_TRUE(wait_for([&] { return running->progress().seq > 0; }));
  auto queued = queue.submit(echo_request());
  ASSERT_NE(queued, nullptr);
  queue.close(/*drain=*/false);
  EXPECT_EQ(queued->state(), JobState::kCancelled);
  EXPECT_EQ(running->state(), JobState::kCancelled);
  const auto r = running->result();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->verdict(), Verdict::kResourceLimit);
  EXPECT_GT(r->stats().states_stored, 0u);  // partial stats survive
}

TEST(ServeQueue, SubmitClampsRequestsAgainstLimits) {
  Metrics metrics;
  ResultCache cache(0);
  JobLimits limits;
  limits.max_states = 100;  // far below paxos(2,3,1)'s 9,945 states
  JobQueue queue(/*workers=*/1, /*queue_depth=*/4, limits, &cache, &metrics);
  auto job = queue.submit(paxos_small_request());
  ASSERT_NE(job, nullptr);
  ASSERT_TRUE(wait_for([&] { return job->state() == JobState::kDone; }));
  // The server-side state cap turned the run into a budget truncation.
  EXPECT_EQ(job->result()->verdict(), Verdict::kBudgetExceeded);
  EXPECT_EQ(metrics.jobs_done_limit.load(), 1u);
  queue.close(/*drain=*/true);
}

// --- the wire ----------------------------------------------------------------

TEST(ServeWire, LineReaderFramesAcrossChunksAndDetectsOversize) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::LineReader reader(fds[0]);

  // Two lines and a partial third arrive in one chunk.
  const std::string chunk = "{\"a\":1}\n{\"b\":2}\n{\"c\"";
  ASSERT_EQ(::send(fds[1], chunk.data(), chunk.size(), 0),
            static_cast<ssize_t>(chunk.size()));
  std::string line;
  ASSERT_EQ(reader.read_line(&line, 1000), serve::LineReader::Status::kLine);
  EXPECT_EQ(line, "{\"a\":1}");
  ASSERT_EQ(reader.read_line(&line, 1000), serve::LineReader::Status::kLine);
  EXPECT_EQ(line, "{\"b\":2}");
  // The partial line is not a message yet.
  EXPECT_EQ(reader.read_line(&line, 10), serve::LineReader::Status::kTimeout);
  const std::string rest = ":3}\n";
  ASSERT_EQ(::send(fds[1], rest.data(), rest.size(), 0),
            static_cast<ssize_t>(rest.size()));
  ASSERT_EQ(reader.read_line(&line, 1000), serve::LineReader::Status::kLine);
  EXPECT_EQ(line, "{\"c\":3}");

  // EOF mid-line is a protocol error, not a silent truncation.
  const std::string partial = "{\"d\":";
  ASSERT_EQ(::send(fds[1], partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  ::close(fds[1]);
  EXPECT_EQ(reader.read_line(&line, 1000), serve::LineReader::Status::kError);
  ::close(fds[0]);
}

// Regression for the 1 MiB line cap: a result object carrying a long trace
// is a multi-megabyte single line. The client-side cap must pass it through
// intact, while the default (request-side) cap reports it as kOversized —
// a distinct status, not a generic socket error.
TEST(ServeWire, MultiMegabyteResultLinePassesClientCap) {
  // ~5 MiB of valid JSON on one line, well past kMaxLineBytes.
  std::string big = "{\"trace\":\"";
  big.append(5u << 20, 'x');
  big += "\"}";
  ASSERT_GT(big.size(), serve::kMaxLineBytes);

  const auto send_all = [](int fd, const std::string& s) {
    const char* p = s.data();
    std::size_t left = s.size();
    while (left > 0) {
      const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
      if (n <= 0) return;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  };

  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    serve::LineReader reader(fds[0], serve::kMaxResultLineBytes);
    // The socketpair buffer is far smaller than the line, so the writer has
    // to run concurrently with the reader.
    std::thread writer([&] {
      send_all(fds[1], big + "\n");
      ::close(fds[1]);
    });
    std::string line;
    ASSERT_EQ(reader.read_line(&line, 30000), serve::LineReader::Status::kLine);
    EXPECT_EQ(line.size(), big.size());
    EXPECT_EQ(line, big);
    writer.join();
    ::close(fds[0]);
  }

  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    serve::LineReader reader(fds[0]);  // default request-side cap
    std::thread writer([&] {
      send_all(fds[1], big + "\n");
      ::close(fds[1]);
    });
    std::string line;
    EXPECT_EQ(reader.read_line(&line, 30000),
              serve::LineReader::Status::kOversized);
    ::close(fds[0]);  // unblocks the writer via EPIPE
    writer.join();
  }
}

// One running server per test; raw sockets pin exact wire bytes.
class ServeServerTest : public ::testing::Test {
 protected:
  void StartServer(unsigned workers = 2, std::size_t queue_depth = 8) {
    serve::ServerConfig cfg;
    cfg.socket_path = test_socket(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    cfg.workers = workers;
    cfg.queue_depth = queue_depth;
    socket_path_ = cfg.socket_path;
    server_ = std::make_unique<serve::Server>(std::move(cfg));
    ASSERT_TRUE(server_->start());
  }

  void TearDown() override {
    if (server_) {
      server_->begin_shutdown(/*drain=*/false);
      server_->wait();
    }
    ::unlink(socket_path_.c_str());
  }

  serve::Client Connect() {
    serve::Client client;
    EXPECT_TRUE(client.connect_unix(socket_path_));
    return client;
  }

  std::string socket_path_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeServerTest, GoldenWireProtocol) {
  StartServer();
  const int fd = serve::connect_unix(socket_path_);
  ASSERT_GE(fd, 0);
  serve::LineReader reader(fd);
  std::string line;

  // The exact bytes of the core exchanges are part of the protocol: clients
  // written against these strings must keep working.
  ASSERT_TRUE(serve::send_line(fd, Json::parse(R"({"cmd":"ping"})")));
  ASSERT_EQ(reader.read_line(&line, 30000), serve::LineReader::Status::kLine);
  EXPECT_EQ(line, R"({"ok":true,"type":"pong","version":"mpb-serve-v1"})");

  ASSERT_TRUE(serve::send_line(fd, Json::parse(R"({"cmd":"bogus"})")));
  ASSERT_EQ(reader.read_line(&line, 30000), serve::LineReader::Status::kLine);
  EXPECT_EQ(line, R"({"error":"unknown command 'bogus'","ok":false})");

  ASSERT_TRUE(serve::send_line(fd, Json::parse(R"({"cmd":"status","job":99})")));
  ASSERT_EQ(reader.read_line(&line, 30000), serve::LineReader::Status::kLine);
  EXPECT_EQ(line, R"({"error":"unknown job 99","ok":false})");

  // First submit on a fresh server: job id 1, not cached, detached.
  ASSERT_TRUE(serve::send_line(
      fd,
      Json::parse(
          R"({"cmd":"submit","detach":true,"request":{"model":"echo"}})")));
  ASSERT_EQ(reader.read_line(&line, 30000), serve::LineReader::Status::kLine);
  EXPECT_EQ(line, R"({"cached":false,"job":1,"ok":true,"type":"accepted"})");

  ::close(fd);
}

TEST_F(ServeServerTest, SubmitStreamsProgressThenResult) {
  StartServer();
  serve::Client client = Connect();
  Json msg = Json::object();
  msg["cmd"] = "submit";
  msg["request"] = check::request_to_json(paxos_big_request());
  ASSERT_TRUE(client.send(msg));

  const auto accepted = client.read(30000);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_TRUE(accepted->get_bool("ok", false));
  EXPECT_EQ(accepted->get_string("type", ""), "accepted");

  bool saw_progress = false;
  for (;;) {
    const auto line = client.read(/*timeout_ms=*/120'000);
    ASSERT_TRUE(line.has_value()) << "stream ended early";
    const std::string type = line->get_string("type", "");
    if (type == "progress") {
      saw_progress = true;
      EXPECT_GT(line->get_int("states", 0), 0);
      continue;
    }
    ASSERT_EQ(type, "result");
    EXPECT_EQ(line->get_string("state", ""), "done");
    const util::Json* result = line->find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ((*result)["verdict"].as_string(), "Verified");
    EXPECT_EQ((*result)["record"]["states_stored"].as_int(), 1'119'285);
    break;
  }
  EXPECT_TRUE(saw_progress) << "a multi-second job must stream progress";
}

TEST_F(ServeServerTest, SecondSubmitIsServedFromTheCache) {
  StartServer();
  serve::Client client = Connect();
  Json msg = Json::object();
  msg["cmd"] = "submit";
  msg["request"] = check::request_to_json(paxos_small_request());

  auto run_one = [&](bool* cached) -> std::string {
    EXPECT_TRUE(client.send(msg));
    const auto accepted = client.read(30000);
    EXPECT_TRUE(accepted.has_value());
    *cached = accepted->get_bool("cached", false);
    for (;;) {
      const auto line = client.read(120'000);
      EXPECT_TRUE(line.has_value());
      if (!line) return "";
      if (line->get_string("type", "") != "result") continue;
      const util::Json* result = line->find("result");
      EXPECT_NE(result, nullptr);
      return result != nullptr ? result->dump() : "";
    }
  };

  bool cached1 = true;
  const std::string r1 = run_one(&cached1);
  EXPECT_FALSE(cached1);
  bool cached2 = false;
  const std::string r2 = run_one(&cached2);
  EXPECT_TRUE(cached2) << "identical request must hit the cache";
  EXPECT_EQ(r1, r2) << "a cache hit returns the identical CheckResult";

  // The hit is visible in the metrics text.
  Json mreq = Json::object();
  mreq["cmd"] = "metrics";
  ASSERT_TRUE(client.send(mreq));
  const auto metrics = client.read(30000);
  ASSERT_TRUE(metrics.has_value());
  const std::string text = metrics->get_string("text", "");
  EXPECT_NE(text.find("mpb_cache_hits_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("mpb_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(text.find("mpb_jobs_submitted_total 2"), std::string::npos);
}

TEST_F(ServeServerTest, CancelMidRunOverTheWire) {
  StartServer();
  serve::Client submitter = Connect();
  Json msg = Json::object();
  msg["cmd"] = "submit";
  msg["request"] = check::request_to_json(paxos_big_request());
  ASSERT_TRUE(submitter.send(msg));
  const auto accepted = submitter.read(30000);
  ASSERT_TRUE(accepted.has_value());
  const auto job_id = accepted->get_int("job", 0);

  // Wait until the job is demonstrably mid-search (first progress push),
  // then cancel from a second connection.
  const auto progress = submitter.read(120'000);
  ASSERT_TRUE(progress.has_value());
  ASSERT_EQ(progress->get_string("type", ""), "progress");

  serve::Client canceller = Connect();
  Json cancel = Json::object();
  cancel["cmd"] = "cancel";
  cancel["job"] = job_id;
  ASSERT_TRUE(canceller.send(cancel));
  const auto ack = canceller.read(30000);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->get_bool("ok", false));

  // The submitter's stream ends in a cancelled result with partial stats.
  for (;;) {
    const auto line = submitter.read(120'000);
    ASSERT_TRUE(line.has_value());
    if (line->get_string("type", "") != "result") continue;
    EXPECT_EQ(line->get_string("state", ""), "cancelled");
    const util::Json* result = line->find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ((*result)["verdict"].as_string(), ">resource");
    const auto states = (*result)["record"]["states_stored"].as_int();
    EXPECT_GT(states, 0);
    EXPECT_LT(states, 1'119'285);
    break;
  }
}

TEST_F(ServeServerTest, EightConcurrentClientsAllGetAnswers) {
  StartServer(/*workers=*/4, /*queue_depth=*/16);
  std::atomic<int> verified{0};
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([this, &verified] {
      serve::Client client;
      if (!client.connect_unix(socket_path_)) return;
      Json msg = Json::object();
      msg["cmd"] = "submit";
      msg["request"] = check::request_to_json(echo_request());
      if (!client.send(msg)) return;
      for (;;) {
        const auto line = client.read(120'000);
        if (!line) return;
        if (line->get_string("type", "") != "result") continue;
        const util::Json* result = line->find("result");
        if (result != nullptr &&
            (*result)["verdict"].as_string() == "Verified" &&
            (*result)["record"]["states_stored"].as_int() == 65) {
          ++verified;
        }
        return;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(verified.load(), 8);
}

TEST_F(ServeServerTest, DrainShutdownFinishesRunningJobs) {
  StartServer(/*workers=*/1);
  serve::Client client = Connect();
  Json msg = Json::object();
  msg["cmd"] = "submit";
  msg["request"] = check::request_to_json(paxos_small_request());
  ASSERT_TRUE(client.send(msg));
  const auto accepted = client.read(30000);
  ASSERT_TRUE(accepted.has_value());

  // SIGTERM equivalent: drain while the job runs. The attached client still
  // receives the complete final result before the server lets go.
  server_->begin_shutdown(/*drain=*/true);
  for (;;) {
    const auto line = client.read(120'000);
    ASSERT_TRUE(line.has_value()) << "connection dropped before the result";
    if (line->get_string("type", "") != "result") continue;
    EXPECT_EQ(line->get_string("state", ""), "done");
    const util::Json* result = line->find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ((*result)["record"]["states_stored"].as_int(), 9945);
    break;
  }
  server_->wait();
  // The socket is gone: new connections must fail.
  serve::Client late;
  EXPECT_FALSE(late.connect_unix(socket_path_));
  server_.reset();
}

TEST_F(ServeServerTest, DisconnectCancelsTheClientsRunningJob) {
  StartServer(/*workers=*/1);
  std::uint64_t job_id = 0;
  {
    serve::Client client = Connect();
    Json msg = Json::object();
    msg["cmd"] = "submit";
    msg["request"] = check::request_to_json(paxos_big_request());
    ASSERT_TRUE(client.send(msg));
    const auto accepted = client.read(30000);
    ASSERT_TRUE(accepted.has_value());
    job_id = static_cast<std::uint64_t>(accepted->get_int("job", 0));
    // Ensure it is really running before we vanish.
    const auto progress = client.read(120'000);
    ASSERT_TRUE(progress.has_value());
  }  // client destroyed: EOF on the connection

  // The handler cancels the orphaned job; it ends cancelled, not done.
  ASSERT_TRUE(wait_for([&] {
    const auto job = server_->jobs().find(job_id);
    return job != nullptr && job->state() == JobState::kCancelled;
  }));
}

// --- limits file -------------------------------------------------------------

TEST(ServeLimits, ParsesTheFullKeySetAndRejectsUnknownKeys) {
  const std::string path =
      "/tmp/mpb-serve-limits-" + std::to_string(::getpid()) + ".conf";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "# ceilings for the shared daemon\n"
        "max_threads = 4\n"
        "max_states = 500000\n"
        "max_seconds = 30\n"
        "watchdog_seconds = 60  # hard stop\n"
        "max_memory_mb = 256\n"
        "cache_mb = 16\n",
        f);
    std::fclose(f);
  }
  std::string err;
  const auto loaded = serve::load_limits_file(path, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  EXPECT_EQ(loaded->limits.max_threads, 4u);
  EXPECT_EQ(loaded->limits.max_states, 500000u);
  EXPECT_DOUBLE_EQ(loaded->limits.max_seconds, 30.0);
  EXPECT_DOUBLE_EQ(loaded->limits.watchdog_seconds, 60.0);
  EXPECT_EQ(loaded->limits.max_memory_bytes, 256u << 20);
  EXPECT_EQ(loaded->cache_bytes, std::optional<std::uint64_t>(16u << 20));

  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("max_treads = 4\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(serve::load_limits_file(path, &err).has_value());
  EXPECT_NE(err.find("unknown key"), std::string::npos);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace mpb
