// The central verification-soundness matrix (DESIGN.md section 4): for every
// protocol family, small setting, model flavour and search strategy, the
// verdict must be identical, reduced searches must not invent states, and all
// terminal states must be preserved.
#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "por/dpor.hpp"
#include "por/spor.hpp"
#include "protocols/collector/collector.hpp"
#include "protocols/echo/echo.hpp"
#include "protocols/paxos/paxos.hpp"
#include "protocols/storage/storage.hpp"
#include "refine/refine.hpp"

namespace mpb {
namespace {

using namespace protocols;

struct NamedCase {
  std::string label;
  Protocol proto;
};

std::vector<NamedCase> small_cases() {
  std::vector<NamedCase> cases;
  auto add = [&](std::string label, Protocol p) {
    cases.push_back({std::move(label), std::move(p)});
  };
  add("paxos_q_131", make_paxos({.proposers = 1, .acceptors = 3, .learners = 1}));
  add("paxos_q_221", make_paxos({.proposers = 2, .acceptors = 2, .learners = 1}));
  add("paxos_s_131", make_paxos({.proposers = 1, .acceptors = 3, .learners = 1,
                                 .quorum_model = false}));
  add("faulty_paxos_q_221",
      make_paxos({.proposers = 2, .acceptors = 2, .learners = 1,
                  .faulty_learner = true}));
  add("faulty_paxos_s_221",
      make_paxos({.proposers = 2, .acceptors = 2, .learners = 1,
                  .quorum_model = false, .faulty_learner = true}));
  add("echo_q_2011", make_echo_multicast({.honest_receivers = 2,
                                          .honest_initiators = 0,
                                          .byz_receivers = 1,
                                          .byz_initiators = 1}));
  add("echo_s_2011", make_echo_multicast({.honest_receivers = 2,
                                          .honest_initiators = 0,
                                          .byz_receivers = 1,
                                          .byz_initiators = 1,
                                          .quorum_model = false}));
  add("echo_q_wrong_1021",
      make_echo_multicast({.honest_receivers = 1, .honest_initiators = 0,
                           .byz_receivers = 2, .byz_initiators = 1,
                           .tolerance = 0}));
  add("storage_q_31w1", make_regular_storage({.bases = 3, .readers = 1, .writes = 1}));
  add("storage_s_31w1", make_regular_storage({.bases = 3, .readers = 1, .writes = 1,
                                              .quorum_model = false}));
  add("storage_q_wrong_31w2",
      make_regular_storage({.bases = 3, .readers = 1, .writes = 2,
                            .wrong_regularity = true}));
  add("collector_q", make_collector({.senders = 4, .quorum = 3}));
  add("collector_s", make_collector({.senders = 4, .quorum = 3,
                                     .quorum_model = false}));
  return cases;
}

class SoundnessMatrix : public ::testing::TestWithParam<int> {};

TEST(Soundness, SporMatchesUnreducedEverywhere) {
  for (const NamedCase& c : small_cases()) {
    ExploreConfig cfg;
    cfg.collect_terminals = true;
    ExploreResult full = explore(c.proto, cfg, nullptr);
    ASSERT_NE(full.verdict, Verdict::kBudgetExceeded) << c.label;

    for (bool net : {true, false}) {
      for (SeedHeuristic h :
           {SeedHeuristic::kOppositeTransaction, SeedHeuristic::kTransaction,
            SeedHeuristic::kFirst}) {
        SporOptions opts;
        opts.state_dependent_nes = net;
        opts.seed = h;
        opts.exhaustive_seed = (h == SeedHeuristic::kFirst);   // cover all
        opts.seed_retry = (h != SeedHeuristic::kTransaction);  // seed modes
        SporStrategy strategy(c.proto, opts);
        ExploreResult reduced = explore(c.proto, cfg, &strategy);
        EXPECT_EQ(reduced.verdict, full.verdict)
            << c.label << " net=" << net << " seed=" << to_string(h);
        EXPECT_LE(reduced.stats.states_stored, full.stats.states_stored) << c.label;
        if (full.verdict == Verdict::kHolds) {
          EXPECT_EQ(reduced.terminal_fingerprints, full.terminal_fingerprints)
              << c.label << " net=" << net << " seed=" << to_string(h);
        }
      }
    }
  }
}

TEST(Soundness, DporMatchesUnreducedStateless) {
  for (const NamedCase& c : small_cases()) {
    // DPOR cells only make sense for finite stateless searches; all small
    // cases are acyclic so this terminates.
    ExploreConfig cfg;
    cfg.mode = SearchMode::kStateless;
    cfg.collect_terminals = true;
    cfg.max_events = 40'000'000;
    ExploreResult full = explore_dpor(c.proto, cfg, DporOptions{.reduce = false});
    if (full.verdict == Verdict::kBudgetExceeded) continue;  // too big: skip
    ExploreResult reduced = explore_dpor(c.proto, cfg, DporOptions{.reduce = true});
    EXPECT_EQ(reduced.verdict, full.verdict) << c.label;
    EXPECT_LE(reduced.stats.events_executed, full.stats.events_executed) << c.label;
    if (full.verdict == Verdict::kHolds) {
      EXPECT_EQ(reduced.terminal_fingerprints, full.terminal_fingerprints) << c.label;
    }
  }
}

TEST(Soundness, RefinementNeverChangesVerdicts) {
  for (const NamedCase& c : small_cases()) {
    const Verdict expected = explore_full(c.proto).verdict;
    for (Protocol split :
         {refine::reply_split(c.proto), refine::quorum_split(c.proto),
          refine::combined_split(c.proto)}) {
      EXPECT_EQ(explore_full(split).verdict, expected) << split.name();
      SporStrategy strategy(split);
      ExploreConfig cfg;
      EXPECT_EQ(explore(split, cfg, &strategy).verdict, expected) << split.name();
    }
  }
}

TEST(Soundness, RefinementPreservesReachableStates) {
  for (const NamedCase& c : small_cases()) {
    auto base = reachable_states(c.proto, 1u << 18);
    if (base.empty()) continue;  // too big for exact graph comparison
    for (Protocol split :
         {refine::reply_split(c.proto), refine::quorum_split(c.proto),
          refine::combined_split(c.proto)}) {
      auto refined = reachable_states(split, 1u << 18);
      EXPECT_TRUE(base == refined) << split.name();
    }
  }
}

TEST(Soundness, CounterexamplesAlwaysReplay) {
  for (const NamedCase& c : small_cases()) {
    ExploreResult r = explore_full(c.proto);
    if (r.verdict != Verdict::kViolated) continue;
    State s = c.proto.initial();
    for (const TraceStep& step : r.counterexample) {
      s = execute(c.proto, s, step.event);
      ASSERT_EQ(s, step.after) << c.label;
    }
    EXPECT_NE(c.proto.violated_property(s), nullptr) << c.label;
  }
}

TEST(Soundness, AnnotationValidationCleanOnAllModels) {
  // Full exploration with annotation validation on (the default) must never
  // throw: every protocol's static POR annotations are consistent with its
  // dynamic behaviour on the entire reachable graph.
  for (const NamedCase& c : small_cases()) {
    EXPECT_NO_THROW((void)explore_full(c.proto)) << c.label;
  }
}

}  // namespace
}  // namespace mpb
