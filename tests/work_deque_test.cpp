// The Chase-Lev work-stealing deque behind the parallel explorer's
// per-worker frontiers. The contract under test: the owner sees LIFO order,
// thieves see FIFO order, buffer growth loses nothing, and under concurrent
// stealing every pushed pointer is extracted exactly once — the property the
// explorer's outstanding-work termination counter depends on. The suites are
// named Parallel* so the TSan ctest lane (-L parallel) races them.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/work_deque.hpp"

namespace mpb {
namespace {

TEST(ParallelWorkDeque, OwnerPopsLifoThiefStealsFifo) {
  WorkStealingDeque<int> dq;
  int items[4] = {0, 1, 2, 3};
  for (int& it : items) dq.push(&it);

  EXPECT_EQ(dq.steal(), &items[0]);  // thieves take the oldest
  EXPECT_EQ(dq.pop(), &items[3]);    // the owner takes the newest
  EXPECT_EQ(dq.steal(), &items[1]);
  EXPECT_EQ(dq.pop(), &items[2]);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ParallelWorkDeque, GrowthPreservesEveryItem) {
  constexpr int kN = 10000;  // far beyond the initial buffer
  WorkStealingDeque<int> dq(64);
  std::vector<int> items(kN);
  std::iota(items.begin(), items.end(), 0);
  for (int& it : items) dq.push(&it);
  EXPECT_EQ(dq.size_hint(), static_cast<std::size_t>(kN));
  for (int i = kN - 1; i >= 0; --i) {
    ASSERT_EQ(dq.pop(), &items[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(ParallelWorkDeque, ConcurrentStealsExtractEachItemExactlyOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 4;
  WorkStealingDeque<int> dq(64);
  std::vector<int> items(kItems);
  std::iota(items.begin(), items.end(), 0);
  std::vector<std::atomic<int>> taken(kItems);  // zero-initialized

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* it = dq.steal()) {
          taken[static_cast<std::size_t>(*it)].fetch_add(1);
        } else {
          std::this_thread::yield();  // keep the 1-core CI box moving
        }
      }
      while (int* it = dq.steal()) {  // drain what the owner left behind
        taken[static_cast<std::size_t>(*it)].fetch_add(1);
      }
    });
  }

  // The owner interleaves pushes with occasional pops, like an expansion.
  for (int i = 0; i < kItems; ++i) {
    dq.push(&items[static_cast<std::size_t>(i)]);
    if (i % 3 == 0) {
      if (int* it = dq.pop()) taken[static_cast<std::size_t>(*it)].fetch_add(1);
    }
  }
  while (int* it = dq.pop()) taken[static_cast<std::size_t>(*it)].fetch_add(1);
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken[static_cast<std::size_t>(i)].load(), 1)
        << "item " << i << " extracted " << taken[static_cast<std::size_t>(i)]
        << " times";
  }
}

}  // namespace
}  // namespace mpb
