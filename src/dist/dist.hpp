// The distributed driver: fingerprint-sharded multi-process search.
//
// run_distributed() forks N single-threaded rank processes on this box.
// Each rank owns the slice of the canonical fingerprint space whose high
// bits name it (frame.hpp::owner_of) and runs its owned frontier on the
// same ExpansionCore the in-process drivers use; successors owned by
// another rank are forwarded over a full socketpair mesh in size/time-
// batched binary frames with credit-based backpressure (mesh.hpp).
// Quiescence is detected by a Safra/Mattern counting token, the SCC
// ignoring pass (spor --proviso scc) runs as rank-0-coordinated repair
// rounds over the globally merged reduced graph, and counterexample traces
// are reconstructed across ranks through a parent_lookup RPC — parent
// handles are stored in a global {rank | shard | index} form, so a trace
// walk just asks each foreign handle's owner for its link.
//
// fork() (not exec) keeps the launch trivial and fast: child ranks inherit
// the built Protocol and the installed symmetry hooks copy-on-write, so no
// model is serialized or rebuilt per rank. The launcher (the calling
// process) collects per-rank finals over a control socket per rank, merges
// stats/terminals/verdicts, replays the winning trace, and reaps every
// child; a rank dying before it reports surfaces as a DistError, never a
// hang (every rank polls its control socket and obeys kExit even while its
// own search is wedged on a dead peer).
//
// Supported searches: `full`, and `spor` under the SCC proviso. The other
// provisos are unsound or meaningless here — the stack proviso needs one
// DFS stack, and the visited-set proviso would treat a remotely-owned (and
// therefore locally-unknown) successor as unvisited, silently re-losing
// the ignoring problem the proviso exists to close. The check facade
// enforces this (check.cpp) with precise errors.
#pragma once

#include <functional>
#include <memory>

#include "core/explorer.hpp"
#include "core/protocol.hpp"
#include "dist/frame.hpp"

namespace mpb::dist {

struct DistConfig {
  // Rank processes to fork; clamped to [1, kMaxRanks]. 1 is a real
  // distributed run with no peers (the overhead-measurement baseline the
  // bench gate compares against full/t1).
  unsigned ranks = 2;
  // Batch flush triggers: a peer's pending forwards are sent when
  // batch_entries accumulate (size trigger) or the oldest entry has waited
  // flush_us microseconds (time trigger); going idle force-flushes.
  unsigned batch_entries = 64;
  std::uint64_t flush_us = 2000;
  // Outstanding un-acknowledged batches allowed per peer before sends park.
  unsigned credits = 32;
  // When a credit-starved peer's parked backlog reaches this many entries
  // the rank stops expanding local work (it keeps draining receives, so
  // this stalls — never deadlocks — the sender) until credits return.
  unsigned stall_entries = 1024;
  // Test-only fault injection: rank `fault_rank` calls _exit() abruptly
  // after expanding `fault_after_states` states (rank-death testing).
  unsigned fault_rank = ~0u;
  std::uint64_t fault_after_states = 0;
};

using StrategyFactory = std::function<std::unique_ptr<ReductionStrategy>()>;

// Run the distributed search and return the merged result, exactly shaped
// like a single-process ExploreResult (stats summed across ranks, terminal
// fingerprints merged sorted-unique, counterexample replayed concretely).
// Budgets and resource guards in `cfg` apply *per rank* (docs/SERVICE.md);
// a tripped rank stops the whole mesh and the merged verdict is the worst
// across ranks. `make_strategy` may be null (full expansion); it is invoked
// once inside each child, so every rank owns an independent strategy.
// Throws DistError if a rank dies before reporting.
[[nodiscard]] ExploreResult run_distributed(const Protocol& proto,
                                            const ExploreConfig& cfg,
                                            const DistConfig& dc,
                                            const StrategyFactory& make_strategy);

}  // namespace mpb::dist
