// Binary framing for the distributed driver's peer mesh (src/dist).
//
// Every message on a mesh or control socket is one frame:
//
//   u32 payload_len | u8 type | payload bytes
//
// riding the same fd conventions as the serve/wire NDJSON layer but binary:
// forwarded successors carry full State payloads, and a text encoding would
// triple the bytes on the hot path. All integers are little-endian fixed
// width (the mesh never crosses a machine boundary today, but the format is
// pinned so it can).
//
// The codec is deliberately dumb: append-only writer, bounds-checked cursor
// reader that throws DistError on any truncation or overrun, and explicit
// encode/decode pairs for the composite types (Message, Event, State,
// Fingerprint). No reflection, no varints — successor forwarding is
// throughput-bound, not bandwidth-bound, on one box.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/state.hpp"
#include "core/transition.hpp"
#include "core/visited.hpp"
#include "util/hash.hpp"

namespace mpb::dist {

// Any malformed frame (truncated payload, oversized counts, unknown type in
// a context that admits none) is a protocol bug or a dead peer mid-write;
// both are fatal to the run and surface as a clean error, never a hang.
class DistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameType : std::uint8_t {
  // peer mesh
  kBatch = 1,       // u32 count, count * ForwardEntry
  kCredit = 2,      // u32 batches consumed (receiver -> sender, backpressure)
  kToken = 3,       // i64 q, u8 black (Safra/Mattern termination token)
  kStop = 4,        // u8 cause (StopCause), string property
  kLookupReq = 5,   // u64 handle, u64 req id (parent_lookup RPC)
  kLookupResp = 6,  // u64 req id, u64 parent, u8 has_event, [Event]
  kSccCollect = 7,  // empty (rank 0 -> all: ship your new edges/full marks)
  kSccEdges = 8,    // u32 n_edges, n*(u64,u64), u32 n_full, n*u64
  kSccExpand = 9,   // u32 n, n*u64 handles to re-expand fully
  kDone = 10,       // empty (rank 0 -> all: search complete, report)
  // control channel (rank <-> launcher)
  kFinal = 20,      // per-rank result: verdict, stats, terminals, trace
  kExit = 21,       // launcher -> rank: tear down now
  kProgress = 22,   // periodic per-rank counters for the progress hook
  kCancel = 23,     // launcher -> rank: cooperative cancel (resource stop)
  kPeerDead = 24,   // rank -> launcher: u32 peer whose socket hit EOF
};

// Why a rank told its peers to stop expanding.
enum class StopCause : std::uint8_t {
  kViolated = 1,
  kBudget = 2,
  kResource = 3,
};

inline constexpr std::size_t kFrameHeaderBytes = 5;
// A batch of forwarded states is bounded by flush triggers long before this,
// and no other frame grows past a trace; anything larger is a framing bug.
inline constexpr std::uint32_t kMaxFramePayload = 256u << 20;

class FrameWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }
  void fingerprint(const Fingerprint& fp) {
    u64(fp.hi);
    u64(fp.lo);
  }
  void message(const Message& m);
  void event(const Event& e);
  void state(const State& s);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  void clear() { buf_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  // resize + memcpy rather than a range insert: GCC 12 misdiagnoses the
  // inlined insert-reallocation path of vector<byte> as a stringop-overflow
  // under -Werror.
  void append(const void* p, std::size_t n) {
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    if (n != 0) std::memcpy(buf_.data() + old, p, n);
  }
  std::vector<std::byte> buf_;
};

class FrameCursor {
 public:
  explicit FrameCursor(std::span<const std::byte> in) : in_(in) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  [[nodiscard]] std::uint16_t u16() { return take<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return take<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return take<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return take<std::int64_t>(); }
  [[nodiscard]] double f64() { return take<double>(); }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] Fingerprint fingerprint() {
    Fingerprint fp;
    fp.hi = u64();
    fp.lo = u64();
    return fp;
  }
  [[nodiscard]] Message message();
  [[nodiscard]] Event event();
  [[nodiscard]] State state();

  [[nodiscard]] bool done() const noexcept { return pos_ == in_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return in_.size() - pos_;
  }

 private:
  template <typename T>
  [[nodiscard]] T take() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (in_.size() - pos_ < n) {
      throw DistError("dist: truncated frame payload");
    }
  }
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

// --- cross-rank state handles ----------------------------------------------
//
// StateHandle packs {shard : 16 | arena index : 48}. A rank's local visited
// set uses at most kLocalShardBits of the shard field (ShardedVisited clamps
// shard counts to 1024), so the global form reuses the upper shard bits for
// the owning rank:
//
//   global shard field = rank << kLocalShardBits | local shard
//
// giving 64 ranks x 1024 shards. Every handle that leaves the insert call is
// converted to global form immediately (including the parents threaded into
// the graph), so cross-rank parent links are plain u64s and the trace walk
// only has to ask "is this mine?" before each step.

inline constexpr unsigned kHandleIndexBits = 48;
inline constexpr unsigned kLocalShardBits = 10;
inline constexpr unsigned kMaxRanks = 64;

[[nodiscard]] inline StateHandle to_global(StateHandle local, unsigned rank) {
  if (local == kNoHandle) return kNoHandle;
  return local + (static_cast<StateHandle>(rank)
                  << (kHandleIndexBits + kLocalShardBits));
}

[[nodiscard]] inline StateHandle to_local(StateHandle global) {
  if (global == kNoHandle) return kNoHandle;
  constexpr StateHandle rank_mask =
      ~StateHandle{0} << (kHandleIndexBits + kLocalShardBits);
  return global & ~rank_mask;
}

[[nodiscard]] inline unsigned rank_of(StateHandle global) {
  return static_cast<unsigned>(global >>
                               (kHandleIndexBits + kLocalShardBits));
}

// Fingerprint-owner partition: the canonical fingerprint's high bits pick
// the owning rank, so the same state lands on the same rank whatever path
// produced it (the low bits of fp.hi index the owner's local shards — the
// two selectors never alias).
[[nodiscard]] inline unsigned owner_of(const Fingerprint& fp,
                                       unsigned nranks) {
  return static_cast<unsigned>((fp.hi >> 56) % nranks);
}

}  // namespace mpb::dist
