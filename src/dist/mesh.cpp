#include "dist/mesh.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace mpb::dist {

FrameConn::FrameConn(int fd) : fd_(fd) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

void FrameConn::send(FrameType t, std::span<const std::byte> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw DistError("dist: frame payload exceeds the framing cap");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::byte hdr[kFrameHeaderBytes];
  std::memcpy(hdr, &len, sizeof len);
  hdr[4] = static_cast<std::byte>(t);
  // Compact the drained prefix occasionally so the outbox doesn't grow
  // monotonically across a long run.
  if (out_pos_ > 0 && out_pos_ == outbox_.size()) {
    outbox_.clear();
    out_pos_ = 0;
  } else if (out_pos_ > (1u << 20)) {
    outbox_.erase(outbox_.begin(),
                  outbox_.begin() + static_cast<std::ptrdiff_t>(out_pos_));
    out_pos_ = 0;
  }
  outbox_.insert(outbox_.end(), hdr, hdr + kFrameHeaderBytes);
  outbox_.insert(outbox_.end(), payload.begin(), payload.end());
  bytes_queued_ += kFrameHeaderBytes + payload.size();
  (void)flush();
}

bool FrameConn::flush() {
  if (dead_) return false;
  while (out_pos_ < outbox_.size()) {
    const ssize_t n = ::send(fd_, outbox_.data() + out_pos_,
                             outbox_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    dead_ = true;
    return false;
  }
  return true;
}

bool FrameConn::drain(std::vector<Frame>* out) {
  if (dead_) return false;
  for (;;) {
    std::byte chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      inbuf_.insert(inbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    dead_ = true;  // EOF (n == 0) or a hard error: the peer is gone
    break;
  }
  // Slice complete frames off the front.
  std::size_t pos = 0;
  while (inbuf_.size() - pos >= kFrameHeaderBytes) {
    std::uint32_t len = 0;
    std::memcpy(&len, inbuf_.data() + pos, sizeof len);
    if (len > kMaxFramePayload) {
      dead_ = true;
      break;
    }
    if (inbuf_.size() - pos - kFrameHeaderBytes < len) break;
    Frame f;
    f.type = static_cast<FrameType>(inbuf_[pos + 4]);
    f.payload.assign(inbuf_.begin() + static_cast<std::ptrdiff_t>(
                                          pos + kFrameHeaderBytes),
                     inbuf_.begin() + static_cast<std::ptrdiff_t>(
                                          pos + kFrameHeaderBytes + len));
    out->push_back(std::move(f));
    pos += kFrameHeaderBytes + len;
  }
  if (pos > 0) {
    inbuf_.erase(inbuf_.begin(), inbuf_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  // Frames sliced before the EOF are already in `out`; the caller should
  // process them and then notice the dead connection.
  return !dead_;
}

}  // namespace mpb::dist
