#include "dist/frame.hpp"

namespace mpb::dist {

void FrameWriter::message(const Message& m) {
  u16(m.type());
  u8(m.sender());
  u8(m.receiver());
  u8(static_cast<std::uint8_t>(m.payload_size()));
  for (const Value v : m.payload()) u32(static_cast<std::uint32_t>(v));
}

void FrameWriter::event(const Event& e) {
  u16(e.tid);
  u16(static_cast<std::uint16_t>(e.consumed.size()));
  for (const Message& m : e.consumed) message(m);
}

void FrameWriter::state(const State& s) {
  u32(static_cast<std::uint32_t>(s.locals().size()));
  for (const Value v : s.locals()) u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(s.network().size()));
  for (const Message& m : s.network()) message(m);
}

Message FrameCursor::message() {
  const MsgType t = u16();
  const ProcessId sender = u8();
  const ProcessId receiver = u8();
  const unsigned n = u8();
  Value p[Message::kMaxPayload] = {};
  if (n > Message::kMaxPayload) throw DistError("dist: oversized payload");
  for (unsigned i = 0; i < n; ++i) p[i] = static_cast<Value>(u32());
  // Message only constructs from an initializer list; spell out the arities.
  switch (n) {
    case 0: return {t, sender, receiver, {}};
    case 1: return {t, sender, receiver, {p[0]}};
    case 2: return {t, sender, receiver, {p[0], p[1]}};
    case 3: return {t, sender, receiver, {p[0], p[1], p[2]}};
    default: return {t, sender, receiver, {p[0], p[1], p[2], p[3]}};
  }
}

Event FrameCursor::event() {
  Event e;
  e.tid = u16();
  const unsigned n = u16();
  if (remaining() < n * 5u) throw DistError("dist: oversized event");
  e.consumed.reserve(n);
  for (unsigned i = 0; i < n; ++i) e.consumed.push_back(message());
  return e;
}

State FrameCursor::state() {
  const std::uint32_t nl = u32();
  if (remaining() < nl * 4u) throw DistError("dist: oversized state");
  std::vector<Value> locals;
  locals.reserve(nl);
  for (std::uint32_t i = 0; i < nl; ++i) {
    locals.push_back(static_cast<Value>(u32()));
  }
  const std::uint32_t nm = u32();
  if (remaining() < nm * 5u) throw DistError("dist: oversized state");
  std::vector<Message> net;
  net.reserve(nm);
  for (std::uint32_t i = 0; i < nm; ++i) net.push_back(message());
  return State(std::move(locals), std::move(net));
}

}  // namespace mpb::dist
