// Internal seam between the launcher (driver.cpp) and the per-rank search
// loop (rank.cpp). Not part of the public dist API.
#pragma once

#include <vector>

#include "core/explorer.hpp"
#include "core/protocol.hpp"
#include "dist/dist.hpp"

namespace mpb::dist {

struct RankWiring {
  unsigned rank = 0;
  unsigned nranks = 1;
  // One mesh fd per peer rank, indexed by rank; the self slot is -1.
  std::vector<int> peer_fds;
  // The control socket to the launcher.
  int control_fd = -1;
};

// The child-process entry point: runs the rank's search to completion
// (final report sent, kExit received) and returns the process exit code.
// Never throws — every failure path reports to the launcher or exits.
int run_rank(const Protocol& proto, const ExploreConfig& cfg,
             const DistConfig& dc, ReductionStrategy* strategy,
             const RankWiring& wiring) noexcept;

// One rank's end-of-run report (the kFinal control frame). The launcher
// merges these: counters sum, depths max, verdicts take the worst, and the
// winning violator's event chain is replayed into the counterexample.
struct RankFinal {
  Verdict verdict = Verdict::kHolds;
  std::string violated_property;
  std::uint8_t limit = 0;  // engine::LimitKind the rank tripped, as u8
  ExploreStats stats;
  std::vector<Fingerprint> terminals;
  bool has_trace = false;
  std::vector<Event> trace_events;  // root -> violation, execution order
};

void encode_final(FrameWriter& w, const RankFinal& f);
[[nodiscard]] RankFinal decode_final(FrameCursor& c);

// The kProgress control frame payload.
struct RankProgress {
  std::uint64_t states_stored = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t frontier = 0;
  std::uint64_t forwarded_states = 0;
  std::uint64_t wire_bytes = 0;
};

void encode_progress(FrameWriter& w, const RankProgress& p);
[[nodiscard]] RankProgress decode_progress(FrameCursor& c);

}  // namespace mpb::dist
