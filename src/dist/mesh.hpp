// Mesh primitives for the distributed driver: one nonblocking framed
// connection per peer, a size/time-triggered send batcher, credit-based
// backpressure, and the Safra/Mattern termination token.
//
// Everything here is a small, separately testable state machine; the rank
// loop in rank.cpp only composes them. Two design rules keep the mesh
// hang-free and TSan-friendly:
//
//  * No blocking I/O anywhere. Sends append to a per-connection outbox and
//    flush() writes as much as the socket accepts (EAGAIN keeps the rest);
//    drain() assembles whatever complete frames have arrived. A rank can
//    therefore always keep receiving while its own sends are stalled —
//    which is exactly what makes credit exhaustion a stall, not a deadlock.
//  * Backpressure is explicit. A batch frame costs one credit at the
//    receiving peer; credits come back (kCredit) only after the receiver
//    processed the batch. With zero credits the sender parks the batch and
//    keeps draining; the rank loop additionally stops expanding local work
//    when any peer's parked backlog passes its cap, so memory stays bounded
//    end to end.
//
// Termination detection is Safra's algorithm with Mattern's message
// counting: each rank keeps c = (entries sent) - (entries received) and a
// colour that turns black on any receive. The token circulates the ring
// 0 -> 1 -> ... -> N-1 -> 0, only ever forwarded by a locally idle rank,
// accumulating q += c and the colour. Rank 0 declares termination when the
// token returns white to a white rank 0 with q + c_0 == 0: the count proves
// no forwarded entry is in flight, the colour proves no rank received one
// after contributing its count — together, every rank was idle at its
// recording instant and nothing that could wake one exists anywhere.
// SCC re-expansion requests ride the same counters (a kSccExpand entry
// counts as sent/received), so a token round cannot complete "under" an
// in-flight repair round.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "dist/frame.hpp"

namespace mpb::dist {

struct Frame {
  FrameType type;
  std::vector<std::byte> payload;
};

// One framed, nonblocking, bidirectional connection (a socketpair end).
class FrameConn {
 public:
  FrameConn() = default;
  explicit FrameConn(int fd);  // sets O_NONBLOCK; does not own closure order
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;
  FrameConn(FrameConn&&) = default;
  FrameConn& operator=(FrameConn&&) = default;

  // Append one frame to the outbox (header + payload) and try to flush.
  void send(FrameType t, std::span<const std::byte> payload);
  // Write as much pending outbox as the socket accepts. Returns false once
  // the peer is dead (EPIPE/ECONNRESET); spurious wakeups are fine.
  bool flush();
  // Read whatever is available and append every complete frame to `out`.
  // Returns false on EOF/error — the peer is gone.
  bool drain(std::vector<Frame>* out);

  [[nodiscard]] bool outbox_empty() const noexcept {
    return out_pos_ == outbox_.size();
  }
  [[nodiscard]] bool dead() const noexcept { return dead_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  // Total framed bytes queued for sending (headers + payloads): the
  // wire_bytes counter's source.
  [[nodiscard]] std::uint64_t bytes_queued() const noexcept {
    return bytes_queued_;
  }

 private:
  int fd_ = -1;
  std::vector<std::byte> outbox_;
  std::size_t out_pos_ = 0;
  std::vector<std::byte> inbuf_;
  std::uint64_t bytes_queued_ = 0;
  bool dead_ = false;
};

// Size- and age-triggered batching of forward entries for one peer. Callers
// pass timestamps in explicitly (microseconds, any monotonic origin), which
// is what makes the flush triggers unit-testable without sleeping.
class Batcher {
 public:
  Batcher(unsigned max_entries, std::uint64_t max_age_us)
      : max_entries_(max_entries), max_age_us_(max_age_us) {}

  // Append one already-encoded ForwardEntry. (resize + memcpy rather than a
  // range insert: GCC 12 misdiagnoses the inlined insert-reallocation path
  // of vector<byte> as a stringop-overflow under -Werror.)
  void add(const FrameWriter& entry, std::uint64_t now_us) {
    if (count_ == 0) oldest_us_ = now_us;
    const std::size_t old = buf_.size();
    buf_.resize(old + entry.size());
    if (entry.size() != 0) {
      std::memcpy(buf_.data() + old, entry.bytes().data(), entry.size());
    }
    ++count_;
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] unsigned entries() const noexcept { return count_; }

  // Size trigger: the batch reached its target. Age trigger: the oldest
  // entry has waited long enough that latency beats amortization.
  [[nodiscard]] bool should_flush(std::uint64_t now_us) const noexcept {
    if (count_ == 0) return false;
    return count_ >= max_entries_ || now_us - oldest_us_ >= max_age_us_;
  }

  // The kBatch payload: u32 count followed by the packed entries.
  // (resize + memcpy for the same GCC 12 -Werror reason as add().)
  [[nodiscard]] std::vector<std::byte> take() {
    FrameWriter w;
    w.u32(count_);
    std::vector<std::byte> payload = w.take();
    const std::size_t old = payload.size();
    payload.resize(old + buf_.size());
    if (!buf_.empty()) {
      std::memcpy(payload.data() + old, buf_.data(), buf_.size());
    }
    buf_.clear();
    count_ = 0;
    return payload;
  }

 private:
  std::vector<std::byte> buf_;
  unsigned count_ = 0;
  std::uint64_t oldest_us_ = 0;
  unsigned max_entries_;
  std::uint64_t max_age_us_;
};

// Safra's termination-detection token with Mattern counting, as seen from
// one rank. The rank loop reports sends/receives and idleness; this class
// answers "forward the token now" / "the whole mesh is quiescent".
class SafraToken {
 public:
  SafraToken(unsigned rank, unsigned nranks) : rank_(rank), nranks_(nranks) {
    have_token_ = (rank == 0);  // rank 0 owns the token between rounds
  }

  void on_sent(std::uint64_t n) noexcept {
    c_ += static_cast<std::int64_t>(n);
  }
  void on_received(std::uint64_t n) noexcept {
    c_ -= static_cast<std::int64_t>(n);
    black_ = true;
  }
  void on_token(std::int64_t q, bool black) noexcept {
    have_token_ = true;
    tq_ = q;
    tblack_ = black;
  }

  struct TokenOut {
    unsigned to;      // successor rank on the ring
    std::int64_t q;
    bool black;
  };
  enum class Action : std::uint8_t { kNone, kForward, kTerminate };

  // Call only when the rank is locally idle (no work, batches flushed).
  // kForward: send `out` as a kToken frame to out->to. kTerminate (rank 0
  // only): the mesh is quiescent.
  Action poll_idle(TokenOut* out) noexcept {
    if (nranks_ == 1) return Action::kTerminate;
    if (!have_token_) return Action::kNone;
    if (rank_ == 0) {
      // A completed round terminates iff the token and this rank are white
      // and the global count balances; otherwise start a fresh round.
      if (round_done_ && !tblack_ && !black_ && tq_ + c_ == 0) {
        return Action::kTerminate;
      }
      round_done_ = true;  // the next on_token() ends the round we start now
      have_token_ = false;
      black_ = false;
      *out = {1, 0, false};
      return Action::kForward;
    }
    have_token_ = false;
    *out = {(rank_ + 1) % nranks_, tq_ + c_, tblack_ || black_};
    black_ = false;
    return Action::kForward;
  }

 private:
  unsigned rank_;
  unsigned nranks_;
  std::int64_t c_ = 0;
  bool black_ = false;
  bool have_token_ = false;
  std::int64_t tq_ = 0;
  bool tblack_ = false;
  bool round_done_ = false;  // rank 0: a full round's token has returned
};

}  // namespace mpb::dist
