// The distributed launcher: builds the socketpair mesh, forks the ranks,
// supervises them over per-rank control sockets, and merges their finals
// into one ExploreResult (see dist.hpp for the architecture).
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "core/engine.hpp"
#include "dist/dist.hpp"
#include "dist/mesh.hpp"
#include "dist/rank.hpp"

namespace mpb::dist {

namespace {

[[nodiscard]] double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Mesh {
  unsigned n = 0;
  // pair_fds[i][j] (i != j): rank i's end of the i<->j socketpair.
  std::vector<std::vector<int>> pair_fds;
  std::vector<int> control_child;   // rank's end of its control socket
  std::vector<int> control_parent;  // launcher's end

  explicit Mesh(unsigned nranks) : n(nranks) {
    pair_fds.assign(n, std::vector<int>(n, -1));
    for (unsigned i = 0; i < n; ++i) {
      for (unsigned j = i + 1; j < n; ++j) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
          close_all();
          throw DistError("dist: socketpair failed for the peer mesh");
        }
        pair_fds[i][j] = sv[0];
        pair_fds[j][i] = sv[1];
      }
      int cv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, cv) != 0) {
        close_all();
        throw DistError("dist: socketpair failed for a control channel");
      }
      control_child.push_back(cv[0]);
      control_parent.push_back(cv[1]);
    }
  }

  // In child `rank`: close every fd that is not this rank's.
  void keep_rank(unsigned rank) {
    for (unsigned i = 0; i < n; ++i) {
      for (unsigned j = 0; j < n; ++j) {
        if (i != rank && pair_fds[i][j] >= 0) {
          ::close(pair_fds[i][j]);
          pair_fds[i][j] = -1;
        }
      }
      if (i != rank && i < control_child.size()) ::close(control_child[i]);
      if (i < control_parent.size()) ::close(control_parent[i]);
    }
  }

  // In the parent: close every child-side fd after the forks.
  void close_child_ends() {
    for (auto& row : pair_fds) {
      for (int& fd : row) {
        if (fd >= 0) {
          ::close(fd);
          fd = -1;
        }
      }
    }
    for (int& fd : control_child) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }

  void close_all() {
    close_child_ends();
    for (int& fd : control_parent) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
};

[[nodiscard]] int verdict_severity(Verdict v) {
  switch (v) {
    case Verdict::kViolated: return 3;
    case Verdict::kResourceLimit: return 2;
    case Verdict::kBudgetExceeded: return 1;
    case Verdict::kHolds: return 0;
  }
  return 0;
}

[[nodiscard]] Verdict rank_verdict(const RankFinal& f) {
  if (f.verdict == Verdict::kViolated) return Verdict::kViolated;
  const auto k = static_cast<engine::LimitKind>(f.limit);
  if (k != engine::LimitKind::kNone) return engine::verdict_of(k);
  return Verdict::kHolds;
}

// Merge the per-rank finals into one result, exactly shaped like a
// single-process run: counters sum (state ownership is disjoint, so the
// sums are exact, not approximations), depths max, the worst verdict wins
// with the lowest such rank supplying the property/trace.
[[nodiscard]] ExploreResult merge_finals(const std::vector<RankFinal>& finals,
                                         double seconds) {
  ExploreResult out;
  int best = -1;
  for (std::size_t r = 0; r < finals.size(); ++r) {
    const RankFinal& f = finals[r];
    ExploreStats& a = out.stats;
    const ExploreStats& b = f.stats;
    a.states_stored += b.states_stored;
    a.states_visited += b.states_visited;
    a.events_executed += b.events_executed;
    a.events_selected += b.events_selected;
    a.events_enabled += b.events_enabled;
    a.terminal_states += b.terminal_states;
    a.full_expansions += b.full_expansions;
    a.proviso_fallbacks += b.proviso_fallbacks;
    a.scc_reexpansions += b.scc_reexpansions;
    a.sleep_blocked += b.sleep_blocked;
    a.scc_pass_ms += b.scc_pass_ms;
    a.forwarded_states += b.forwarded_states;
    a.forward_batches += b.forward_batches;
    a.wire_bytes += b.wire_bytes;
    a.full_hash_passes += b.full_hash_passes;
    a.hash_queries += b.hash_queries;
    a.visited_bytes += b.visited_bytes;
    a.max_depth_seen = std::max(a.max_depth_seen, b.max_depth_seen);
    const Verdict v = rank_verdict(f);
    if (best < 0 ||
        verdict_severity(v) > verdict_severity(rank_verdict(finals[best]))) {
      best = static_cast<int>(r);
    }
    out.terminal_fingerprints.insert(out.terminal_fingerprints.end(),
                                     f.terminals.begin(), f.terminals.end());
  }
  if (best >= 0) {
    out.verdict = rank_verdict(finals[best]);
    out.violated_property = finals[best].violated_property;
  }
  out.stats.threads_used = static_cast<unsigned>(finals.size());
  out.stats.seconds = seconds;
  std::sort(out.terminal_fingerprints.begin(), out.terminal_fingerprints.end());
  out.terminal_fingerprints.erase(std::unique(out.terminal_fingerprints.begin(),
                                              out.terminal_fingerprints.end()),
                                  out.terminal_fingerprints.end());
  return out;
}

void reap_all(std::vector<pid_t>& pids) {
  for (const pid_t pid : pids) {
    if (pid > 0) (void)::waitpid(pid, nullptr, 0);
  }
  pids.clear();
}

void kill_all(const std::vector<pid_t>& pids) {
  for (const pid_t pid : pids) {
    if (pid > 0) (void)::kill(pid, SIGKILL);
  }
}

}  // namespace

ExploreResult run_distributed(const Protocol& proto, const ExploreConfig& cfg,
                              const DistConfig& dc,
                              const StrategyFactory& make_strategy) {
  DistConfig d = dc;
  d.ranks = std::clamp(d.ranks, 1u, kMaxRanks);
  const unsigned n = d.ranks;
  const double t0 = now_seconds();

  Mesh mesh(n);
  std::vector<pid_t> pids(n, -1);
  for (unsigned r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      kill_all(pids);
      reap_all(pids);
      mesh.close_all();
      throw DistError("dist: fork failed");
    }
    if (pid == 0) {
      // Child: drop everything that isn't rank r's, build the rank's own
      // strategy, run, and _exit (no atexit handlers — the parent owns the
      // process-level reporting).
      mesh.keep_rank(r);
      RankWiring w;
      w.rank = r;
      w.nranks = n;
      w.peer_fds = mesh.pair_fds[r];
      w.control_fd = mesh.control_child[r];
      int code = 2;
      try {
        std::unique_ptr<ReductionStrategy> strategy;
        if (make_strategy) strategy = make_strategy();
        code = run_rank(proto, cfg, d, strategy.get(), w);
      } catch (...) {
      }
      ::_exit(code);
    }
    pids[r] = pid;
  }
  mesh.close_child_ends();

  std::vector<FrameConn> control;
  control.reserve(n);
  for (unsigned r = 0; r < n; ++r) {
    control.emplace_back(mesh.control_parent[r]);
  }

  // Backstop deadline: the ranks enforce the budgets/guards themselves; this
  // only catches a wedged mesh (which the termination tests assert never
  // happens) so a supervised run cannot hang forever.
  double deadline = std::numeric_limits<double>::infinity();
  if (cfg.guard.watchdog_seconds !=
      std::numeric_limits<double>::infinity()) {
    deadline = t0 + cfg.guard.watchdog_seconds * 1.5 + 5.0;
  } else if (cfg.max_seconds != std::numeric_limits<double>::infinity()) {
    deadline = t0 + cfg.max_seconds * 1.5 + 5.0;
  }

  std::vector<RankFinal> finals(n);
  std::vector<bool> have_final(n, false);
  std::vector<RankProgress> progress(n);
  unsigned n_finals = 0;
  bool cancelled = false;
  std::string death;

  std::vector<pollfd> pfds;
  std::vector<Frame> frames;
  while (n_finals < n && death.empty()) {
    pfds.clear();
    for (unsigned r = 0; r < n; ++r) {
      short ev = POLLIN;
      if (!control[r].outbox_empty()) ev |= POLLOUT;
      pfds.push_back({control[r].fd(), ev, 0});
    }
    (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 20);

    if (!cancelled && cfg.cancel &&
        cfg.cancel->load(std::memory_order_relaxed)) {
      cancelled = true;
      for (unsigned r = 0; r < n; ++r) {
        control[r].send(FrameType::kCancel, {});
      }
    }
    if (now_seconds() > deadline) {
      death = "dist: launcher watchdog expired with ranks unreported";
      break;
    }

    for (unsigned r = 0; r < n; ++r) {
      frames.clear();
      const bool alive = control[r].drain(&frames);
      for (Frame& f : frames) {
        FrameCursor c(f.payload);
        switch (f.type) {
          case FrameType::kFinal:
            if (!have_final[r]) {
              finals[r] = decode_final(c);
              have_final[r] = true;
              ++n_finals;
            }
            break;
          case FrameType::kProgress: {
            progress[r] = decode_progress(c);
            if (cfg.on_progress) {
              ExploreStats snap;
              for (unsigned q = 0; q < n; ++q) {
                snap.states_stored += progress[q].states_stored;
                snap.events_executed += progress[q].events_executed;
                snap.frontier += progress[q].frontier;
                snap.forwarded_states += progress[q].forwarded_states;
                snap.wire_bytes += progress[q].wire_bytes;
              }
              snap.threads_used = n;
              snap.seconds = now_seconds() - t0;
              cfg.on_progress(snap);
            }
            break;
          }
          case FrameType::kPeerDead: {
            const unsigned peer = c.u32();
            death = "dist: rank " + std::to_string(peer) +
                    " died mid-search (peer socket EOF)";
            break;
          }
          default:
            break;
        }
      }
      if (!alive && !have_final[r] && death.empty()) {
        death = "dist: rank " + std::to_string(r) +
                " exited before reporting a result";
      }
      (void)control[r].flush();
    }
  }

  // Release every rank (they serve parent lookups until told to exit), then
  // reap. On a death path the kExit is best-effort and SIGKILL backstops.
  for (unsigned r = 0; r < n; ++r) {
    control[r].send(FrameType::kExit, {});
    (void)control[r].flush();
  }
  if (!death.empty()) kill_all(pids);
  reap_all(pids);
  mesh.close_all();
  if (!death.empty()) throw DistError(death);

  ExploreResult out = merge_finals(finals, now_seconds() - t0);
  if (out.verdict == Verdict::kViolated) {
    if (cfg.on_violation) cfg.on_violation(out.violated_property);
    // Lowest-ranked violator with a reconstructed chain supplies the trace.
    for (unsigned r = 0; r < n; ++r) {
      if (rank_verdict(finals[r]) == Verdict::kViolated &&
          finals[r].has_trace) {
        ExecuteOptions opts;
        opts.validate_annotations = cfg.validate_annotations;
        out.counterexample =
            replay_trace(proto, finals[r].trace_events, opts);
        break;
      }
    }
  }
  return out;
}

}  // namespace mpb::dist
