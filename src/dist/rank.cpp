// One rank of the distributed search (see dist.hpp for the architecture).
//
// The loop composes the mesh primitives around the same ExpansionCore the
// in-process drivers run: poll the peer + control sockets, drain and handle
// every complete frame, expand a chunk of owned work, flush due batches,
// and — when locally idle — drive the Safra token. A rank moves through
// three phases:
//
//   kSearch   expanding its owned frontier (or waiting for more of it)
//   kFinished assembling the final report (incl. the cross-rank trace walk)
//   kServe    answering parent_lookup RPCs for peers still assembling
//             theirs, until the launcher's kExit
//
// The serve phase is what makes cross-process trace reconstruction safe:
// the launcher releases ranks only after *all* finals arrived, so a
// violator can always walk its counterexample's parent chain through
// foreign ranks that finished earlier.
#include "dist/rank.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "core/enabled.hpp"
#include "core/engine.hpp"
#include "core/execute.hpp"
#include "dist/mesh.hpp"

namespace mpb::dist {

using engine::ExpansionCore;
using engine::GraphEdge;
using engine::Item;
using engine::LimitKind;
using engine::WorkerCtx;

namespace {

[[nodiscard]] std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void encode_stats(FrameWriter& w, const ExploreStats& s) {
  w.u64(s.states_stored);
  w.u64(s.states_visited);
  w.u64(s.events_executed);
  w.u64(s.events_selected);
  w.u64(s.events_enabled);
  w.u64(s.terminal_states);
  w.u64(s.full_expansions);
  w.u64(s.proviso_fallbacks);
  w.u64(s.scc_reexpansions);
  w.u64(s.sleep_blocked);
  w.f64(s.scc_pass_ms);
  w.u64(s.forwarded_states);
  w.u64(s.forward_batches);
  w.u64(s.wire_bytes);
  w.u64(s.full_hash_passes);
  w.u64(s.hash_queries);
  w.u64(s.visited_bytes);
  w.u32(s.max_depth_seen);
  w.f64(s.seconds);
}

[[nodiscard]] ExploreStats decode_stats(FrameCursor& c) {
  ExploreStats s;
  s.states_stored = c.u64();
  s.states_visited = c.u64();
  s.events_executed = c.u64();
  s.events_selected = c.u64();
  s.events_enabled = c.u64();
  s.terminal_states = c.u64();
  s.full_expansions = c.u64();
  s.proviso_fallbacks = c.u64();
  s.scc_reexpansions = c.u64();
  s.sleep_blocked = c.u64();
  s.scc_pass_ms = c.f64();
  s.forwarded_states = c.u64();
  s.forward_batches = c.u64();
  s.wire_bytes = c.u64();
  s.full_hash_passes = c.u64();
  s.hash_queries = c.u64();
  s.visited_bytes = c.u64();
  s.max_depth_seen = c.u32();
  s.seconds = c.f64();
  return s;
}

}  // namespace

void encode_final(FrameWriter& w, const RankFinal& f) {
  w.u8(static_cast<std::uint8_t>(f.verdict));
  w.str(f.violated_property);
  w.u8(f.limit);
  encode_stats(w, f.stats);
  w.u32(static_cast<std::uint32_t>(f.terminals.size()));
  for (const Fingerprint& fp : f.terminals) w.fingerprint(fp);
  w.u8(f.has_trace ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(f.trace_events.size()));
  for (const Event& e : f.trace_events) w.event(e);
}

RankFinal decode_final(FrameCursor& c) {
  RankFinal f;
  f.verdict = static_cast<Verdict>(c.u8());
  f.violated_property = c.str();
  f.limit = c.u8();
  f.stats = decode_stats(c);
  const std::uint32_t nt = c.u32();
  if (c.remaining() < std::uint64_t{nt} * 16) {
    throw DistError("dist: oversized final");
  }
  f.terminals.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) f.terminals.push_back(c.fingerprint());
  f.has_trace = c.u8() != 0;
  const std::uint32_t ne = c.u32();
  if (c.remaining() < std::uint64_t{ne} * 4) {
    throw DistError("dist: oversized final");
  }
  f.trace_events.reserve(ne);
  for (std::uint32_t i = 0; i < ne; ++i) f.trace_events.push_back(c.event());
  return f;
}

void encode_progress(FrameWriter& w, const RankProgress& p) {
  w.u64(p.states_stored);
  w.u64(p.events_executed);
  w.u64(p.frontier);
  w.u64(p.forwarded_states);
  w.u64(p.wire_bytes);
}

RankProgress decode_progress(FrameCursor& c) {
  RankProgress p;
  p.states_stored = c.u64();
  p.events_executed = c.u64();
  p.frontier = c.u64();
  p.forwarded_states = c.u64();
  p.wire_bytes = c.u64();
  return p;
}

namespace {

// States expanded between poll rounds: large enough to amortize the poll
// syscall to noise (the dist/r1 overhead gate lives on this), small enough
// that batches flush and credits turn around promptly.
constexpr unsigned kExpandChunk = 128;

class RankLoop {
 public:
  RankLoop(const Protocol& proto, const ExploreConfig& cfg,
           const DistConfig& dc, ReductionStrategy* strategy,
           const RankWiring& wiring)
      : proto_(proto),
        cfg_(cfg),
        dc_(dc),
        rank_(wiring.rank),
        nranks_(wiring.nranks),
        core_(proto, cfg_, strategy,
              cfg.visited == VisitedMode::kExact ? VisitedMode::kInterned
                                                 : cfg.visited,
              1),
        control_(wiring.control_fd),
        token_(wiring.rank, wiring.nranks) {
    conns_.reserve(nranks_);
    for (unsigned p = 0; p < nranks_; ++p) {
      conns_.emplace_back(p == rank_ ? FrameConn{} : FrameConn{wiring.peer_fds[p]});
      batchers_.emplace_back(dc_.batch_entries, dc_.flush_us);
      credits_.push_back(dc_.credits);
    }
  }

  int run() {
    start_us_ = now_us();
    core_.begin_run();
    core_.visited().set_serial(true);  // one worker per rank process
    seed_root();
    std::vector<Frame> frames;
    while (phase_ != Phase::kExit) {
      const bool eager = phase_ == Phase::kSearch && !stopped_ &&
                         !work_.empty() && !backpressured();
      poll_io(eager ? 0 : 5);
      for (unsigned p = 0; p < nranks_; ++p) {
        if (p == rank_ || conns_[p].fd() < 0) continue;
        frames.clear();
        const bool alive = conns_[p].drain(&frames);
        for (Frame& f : frames) handle_peer_frame(p, f);
        if (!alive) peer_died(p);
      }
      frames.clear();
      const bool launcher_alive = control_.drain(&frames);
      for (Frame& f : frames) handle_control_frame(f);
      if (!launcher_alive) return 1;  // the launcher is gone: just die
      if (phase_ == Phase::kExit) break;
      flush_conns();

      if (phase_ == Phase::kSearch && !stopped_) {
        expand_chunk();
        check_time_limits();
        flush_due(work_.empty());
        if (!stopped_ && !awaiting_edges_ && work_.empty() &&
            batchers_empty()) {
          SafraToken::TokenOut t;
          switch (token_.poll_idle(&t)) {
            case SafraToken::Action::kForward: {
              FrameWriter w;
              w.i64(t.q);
              w.u8(t.black ? 1 : 0);
              conns_[t.to].send(FrameType::kToken, w.bytes());
              break;
            }
            case SafraToken::Action::kTerminate:
              on_quiescence();
              break;
            case SafraToken::Action::kNone:
              break;
          }
        }
      }
      if (phase_ == Phase::kSearch && stopped_) phase_ = Phase::kFinished;
      if (phase_ == Phase::kFinished) {
        send_final();
        phase_ = Phase::kServe;
      }
    }
    return 0;
  }

 private:
  enum class Phase : std::uint8_t { kSearch, kFinished, kServe, kExit };

  struct WorkItem {
    Item* item;
    bool full;  // SCC repair: expand the whole enabled set
  };

  // --- I/O plumbing --------------------------------------------------------

  void poll_io(int timeout_ms) {
    pollfds_.clear();
    for (unsigned p = 0; p < nranks_; ++p) {
      if (p == rank_ || conns_[p].fd() < 0) continue;
      short ev = POLLIN;
      if (!conns_[p].outbox_empty()) ev |= POLLOUT;
      pollfds_.push_back({conns_[p].fd(), ev, 0});
    }
    short cev = POLLIN;
    if (!control_.outbox_empty()) cev |= POLLOUT;
    pollfds_.push_back({control_.fd(), cev, 0});
    (void)::poll(pollfds_.data(), static_cast<nfds_t>(pollfds_.size()),
                 timeout_ms);
  }

  void flush_conns() {
    for (unsigned p = 0; p < nranks_; ++p) {
      if (p == rank_ || conns_[p].fd() < 0) continue;
      if (!conns_[p].flush()) peer_died(p);
    }
    (void)control_.flush();
  }

  [[nodiscard]] bool batchers_empty() const {
    for (unsigned p = 0; p < nranks_; ++p) {
      if (!batchers_[p].empty()) return false;
      if (p != rank_ && conns_[p].fd() >= 0 && !conns_[p].outbox_empty()) {
        return false;  // queued bytes are still "in flight" locally
      }
    }
    return true;
  }

  [[nodiscard]] bool backpressured() const {
    for (unsigned p = 0; p < nranks_; ++p) {
      if (batchers_[p].entries() >= dc_.stall_entries) return true;
    }
    return false;
  }

  void peer_died(unsigned p) {
    if (peer_dead_[p]) return;
    peer_dead_[p] = true;
    if (phase_ == Phase::kServe) return;  // normal teardown race on kExit
    FrameWriter w;
    w.u32(p);
    control_.send(FrameType::kPeerDead, w.bytes());
    (void)control_.flush();
    // The search result is unsalvageable; park and wait for kExit.
    stopped_ = true;
    pending_.armed = false;
    phase_ = Phase::kFinished;
  }

  // --- frame handlers ------------------------------------------------------

  void handle_peer_frame(unsigned from, const Frame& f) {
    FrameCursor c(f.payload);
    switch (f.type) {
      case FrameType::kBatch:
        handle_batch(from, c);
        break;
      case FrameType::kCredit:
        credits_[from] += c.u32();
        break;
      case FrameType::kToken: {
        const std::int64_t q = c.i64();
        const bool black = c.u8() != 0;
        token_.on_token(q, black);
        break;
      }
      case FrameType::kStop: {
        (void)c.u8();
        (void)c.str();
        stopped_ = true;
        break;
      }
      case FrameType::kLookupReq:
        handle_lookup_req(from, c);
        break;
      case FrameType::kLookupResp: {
        const std::uint64_t id = c.u64();
        lookup_resps_[id] = f.payload;
        break;
      }
      case FrameType::kSccCollect:
        if (!stopped_) send_scc_edges();
        break;
      case FrameType::kSccEdges:
        handle_scc_edges(c);
        break;
      case FrameType::kSccExpand:
        handle_scc_expand(c);
        break;
      case FrameType::kDone:
        stopped_ = true;
        break;
      default:
        throw DistError("dist: unexpected mesh frame type");
    }
  }

  void handle_control_frame(const Frame& f) {
    switch (f.type) {
      case FrameType::kExit:
        phase_ = Phase::kExit;
        break;
      case FrameType::kCancel:
        if (phase_ == Phase::kSearch) local_limit(LimitKind::kResource);
        break;
      default:
        break;  // tolerate future control frames
    }
  }

  void handle_batch(unsigned from, FrameCursor& c) {
    const std::uint32_t n = c.u32();
    token_.on_received(n);
    WorkerCtx& me = core_.worker(0);
    for (std::uint32_t i = 0; i < n; ++i) {
      const StateHandle parent = c.u64();
      const unsigned depth = c.u32();
      Event via = c.event();
      State s = c.state();
      if (stopped_ || phase_ != Phase::kSearch) continue;  // drain & discard
      Item* it = me.alloc();
      it->s = std::move(s);
      if (!insert_local(it, parent, &via, depth)) me.release(it);
    }
    // Credit returns only after the batch is processed — that delay is the
    // backpressure.
    FrameWriter w;
    w.u32(1);
    conns_[from].send(FrameType::kCredit, w.bytes());
  }

  void handle_lookup_req(unsigned from, FrameCursor& c) {
    const StateHandle h = c.u64();
    const std::uint64_t id = c.u64();
    StateHandle parent = kNoHandle;
    Event ev;
    const bool ok =
        core_.visited().graph().parent_link(to_local(h), &parent, &ev);
    FrameWriter w;
    w.u64(id);
    w.u64(parent);  // global form already (parents are stored global)
    const bool has_ev = ok && parent != kNoHandle;
    w.u8(has_ev ? 1 : 0);
    if (has_ev) w.event(ev);
    conns_[from].send(FrameType::kLookupResp, w.bytes());
  }

  // --- seeding and expansion ----------------------------------------------

  void seed_root() {
    State init = proto_.initial();
    const Fingerprint fp = core_.canonical_fingerprint(init);
    if (owner_of(fp, nranks_) != rank_) return;
    if (const Property* p = proto_.violated_property(init)) {
      record_violation(p->name, kNoHandle, nullptr);
      return;
    }
    WorkerCtx& me = core_.worker(0);
    Item* root = me.alloc();
    root->s = std::move(init);
    if (!insert_local(root, kNoHandle, nullptr, 0)) me.release(root);
  }

  // Insert a state this rank owns (root, local successor, or a received
  // forward). `parent` is in global handle form. Returns true when the item
  // was filled in and queued (fresh, unviolated, within limits).
  bool insert_local(Item* it, StateHandle parent, const Event* via,
                    unsigned depth) {
    WorkerCtx& me = core_.worker(0);
    Fingerprint canon_fp;
    const VisitedInsert ins =
        core_.insert_canonical(it->s, parent, via, &canon_fp);
    const StateHandle gh = to_global(ins.handle, rank_);
    core_.record_edge(me, parent, gh);
    if (!ins.inserted) return false;
    if (const LimitKind k = state_limit_kind(); k != LimitKind::kNone) {
      local_limit(k);
      return false;
    }
    if (const Property* p = proto_.violated_property(it->s)) {
      record_violation(p->name, parent, via);
      return false;
    }
    it->canon_fp = canon_fp;
    it->handle = gh;
    it->depth = depth;
    work_.push_back({it, false});
    return true;
  }

  [[nodiscard]] LimitKind state_limit_kind() {
    const std::uint64_t stored = core_.visited().size();
    if (cfg_.guard.max_states != 0 && stored > cfg_.guard.max_states) {
      return LimitKind::kResource;
    }
    if (cfg_.guard.max_memory_bytes != 0 &&
        core_.visited().approx_bytes() > cfg_.guard.max_memory_bytes) {
      return LimitKind::kResource;
    }
    if (stored > cfg_.max_states) return LimitKind::kBudget;
    return LimitKind::kNone;
  }

  void expand_chunk() {
    WorkerCtx& me = core_.worker(0);
    unsigned n = 0;
    while (n < kExpandChunk && !work_.empty() && !stopped_ &&
           !backpressured()) {
      const WorkItem wi = work_.back();
      work_.pop_back();
      expand_item(*wi.item, wi.full);
      me.release(wi.item);
      ++n;
      if (rank_ == dc_.fault_rank && dc_.fault_after_states != 0 &&
          st_.states_visited >= dc_.fault_after_states) {
        ::_exit(3);  // injected rank death (DistRankDeath tests)
      }
    }
  }

  void expand_item(Item& item, bool full_expand) {
    WorkerCtx& me = core_.worker(0);
    ++st_.states_visited;
    st_.max_depth_seen = std::max(st_.max_depth_seen, item.depth + 1);
    enumerate_events(proto_, item.s, me.enabled);
    st_.events_enabled += me.enabled.size();
    if (me.enabled.empty()) {
      ++st_.terminal_states;
      if (cfg_.collect_terminals) terminals_.push_back(item.canon_fp);
      core_.record_full(me, item.handle);
      return;
    }
    std::size_t k = 0;
    bool reduced = false;
    if (full_expand) {
      k = me.enabled.size();
      st_.events_selected += k;
    } else {
      k = core_.select(item.s, me, st_, {}, false, &reduced);
    }
    if (k == me.enabled.size()) core_.record_full(me, item.handle);
    for (std::size_t j = 0; j < k; ++j) {
      if (stopped_) return;
      const Event& e = me.enabled[reduced ? me.idx[j] : j];
      Item* succ = me.alloc();
      execute_into(proto_, item.s, e, core_.exec_opts(), &me.failed, succ->s);
      ++st_.events_executed;
      if (st_.events_executed > cfg_.max_events) {
        me.release(succ);
        local_limit(LimitKind::kBudget);
        return;
      }
      if (!me.failed.empty()) {
        record_violation(me.failed, item.handle, &e);
        if (cfg_.stop_at_first_violation) {
          me.release(succ);
          return;
        }
        // Mirror the in-process drivers: the assertion-failing successor is
        // still a reachable state and gets inserted/routed like any other.
      }
      const Fingerprint fp = core_.canonical_fingerprint(succ->s);
      const unsigned owner = owner_of(fp, nranks_);
      if (owner != rank_) {
        forward(owner, succ->s, e, item.handle, item.depth + 1);
        me.release(succ);
        continue;
      }
      if (!insert_local(succ, item.handle, &e, item.depth + 1)) {
        me.release(succ);
        if (stopped_) return;
      }
    }
  }

  // --- forwarding ----------------------------------------------------------

  void forward(unsigned owner, const State& s, const Event& via,
               StateHandle parent_global, unsigned depth) {
    FrameWriter w;
    w.u64(parent_global);
    w.u32(depth);
    w.event(via);
    w.state(s);
    batchers_[owner].add(w, now_us());
    ++st_.forwarded_states;
    token_.on_sent(1);
    maybe_flush(owner, false);
  }

  void maybe_flush(unsigned p, bool force) {
    if (batchers_[p].empty() || credits_[p] == 0) return;
    if (!force && !batchers_[p].should_flush(now_us())) return;
    --credits_[p];
    ++st_.forward_batches;
    conns_[p].send(FrameType::kBatch, batchers_[p].take());
  }

  void flush_due(bool force) {
    for (unsigned p = 0; p < nranks_; ++p) {
      if (p != rank_) maybe_flush(p, force);
    }
    maybe_progress();
  }

  // --- stopping ------------------------------------------------------------

  void record_violation(const std::string& property, StateHandle parent,
                        const Event* last) {
    if (local_verdict_ != Verdict::kViolated) {
      local_verdict_ = Verdict::kViolated;
      violated_property_ = property;
      pending_.parent = parent;
      pending_.has_last = last != nullptr;
      if (last != nullptr) pending_.last = *last;
      pending_.armed = true;
    }
    if (cfg_.stop_at_first_violation) local_stop(StopCause::kViolated);
  }

  void local_limit(LimitKind k) {
    if (limit_ == LimitKind::kNone) limit_ = k;
    local_stop(k == LimitKind::kResource ? StopCause::kResource
                                         : StopCause::kBudget);
  }

  void local_stop(StopCause cause) {
    if (stopped_) return;
    stopped_ = true;
    FrameWriter w;
    w.u8(static_cast<std::uint8_t>(cause));
    w.str(violated_property_);
    for (unsigned p = 0; p < nranks_; ++p) {
      if (p != rank_ && conns_[p].fd() >= 0 && !peer_dead_[p]) {
        conns_[p].send(FrameType::kStop, w.bytes());
      }
    }
  }

  void check_time_limits() {
    const double elapsed =
        static_cast<double>(now_us() - start_us_) / 1e6;
    if (elapsed > cfg_.guard.watchdog_seconds) {
      local_limit(LimitKind::kResource);
    } else if (elapsed > cfg_.max_seconds) {
      local_limit(LimitKind::kBudget);
    }
  }

  void maybe_progress() {
    if (cfg_.progress_every_events == 0) return;
    if (st_.events_executed - progress_mark_ < cfg_.progress_every_events) {
      return;
    }
    progress_mark_ = st_.events_executed;
    RankProgress p;
    p.states_stored = core_.visited().size();
    p.events_executed = st_.events_executed;
    p.frontier = work_.size();
    p.forwarded_states = st_.forwarded_states;
    p.wire_bytes = mesh_bytes();
    FrameWriter w;
    encode_progress(w, p);
    control_.send(FrameType::kProgress, w.bytes());
  }

  // --- SCC ignoring pass, rank-0 coordinated ------------------------------
  //
  // At every global quiescence rank 0 runs one repair round: collect each
  // rank's newly recorded reduced-graph edges and full-expansion marks
  // (global handles, so they concatenate into one graph), Tarjan the
  // cumulative graph, and ship each ignored SCC's representative back to
  // its owner for a full re-expansion. Re-expansion wakes the search, the
  // token eventually proves quiescence again, and the next round runs on
  // the grown graph — a fixpoint exactly like the in-process pass, arriving
  // at "no ignored SCC" with kDone. Repair requests ride the Mattern
  // counters, so a token round can never complete under an in-flight one.

  void on_quiescence() {
    if (!core_.scc_pass_enabled()) {
      broadcast_done();
      return;
    }
    collect_own_edges();
    if (nranks_ == 1) {
      finish_scc_round();
      return;
    }
    awaiting_edges_ = true;
    scc_waiting_ = nranks_ - 1;
    for (unsigned p = 0; p < nranks_; ++p) {
      if (p != rank_) conns_[p].send(FrameType::kSccCollect, {});
    }
  }

  void collect_own_edges() {
    WorkerCtx& me = core_.worker(0);
    for (const GraphEdge& e : me.edges) scc_edges_.emplace_back(e.from, e.to);
    for (const StateHandle h : me.full_handles) scc_full_.insert(h);
    me.edges.clear();
    me.full_handles.clear();
  }

  void send_scc_edges() {
    WorkerCtx& me = core_.worker(0);
    FrameWriter w;
    w.u32(static_cast<std::uint32_t>(me.edges.size()));
    for (const GraphEdge& e : me.edges) {
      w.u64(e.from);
      w.u64(e.to);
    }
    w.u32(static_cast<std::uint32_t>(me.full_handles.size()));
    for (const StateHandle h : me.full_handles) w.u64(h);
    me.edges.clear();
    me.full_handles.clear();
    conns_[0].send(FrameType::kSccEdges, w.bytes());
  }

  void handle_scc_edges(FrameCursor& c) {
    const std::uint32_t ne = c.u32();
    if (c.remaining() < ne * 16u) throw DistError("dist: oversized edges");
    for (std::uint32_t i = 0; i < ne; ++i) {
      const std::uint64_t from = c.u64();
      const std::uint64_t to = c.u64();
      scc_edges_.emplace_back(from, to);
    }
    const std::uint32_t nf = c.u32();
    if (c.remaining() < nf * 8u) throw DistError("dist: oversized edges");
    for (std::uint32_t i = 0; i < nf; ++i) scc_full_.insert(c.u64());
    if (awaiting_edges_ && --scc_waiting_ == 0) {
      awaiting_edges_ = false;
      finish_scc_round();
    }
  }

  void handle_scc_expand(FrameCursor& c) {
    const std::uint32_t n = c.u32();
    token_.on_received(n);
    if (c.remaining() < n * 8u) throw DistError("dist: oversized expand");
    for (std::uint32_t i = 0; i < n; ++i) enqueue_reexpand(c.u64());
  }

  // Tarjan over the cumulative global reduced graph; returns the ignored
  // SCCs' representatives (smallest handle each, for determinism).
  std::vector<StateHandle> ignored_reps() {
    std::unordered_map<StateHandle, std::size_t> id_of;
    std::vector<StateHandle> handle_of;
    const auto id = [&](StateHandle h) {
      const auto [it, fresh] = id_of.try_emplace(h, handle_of.size());
      if (fresh) handle_of.push_back(h);
      return it->second;
    };
    std::vector<std::vector<std::size_t>> adj;
    std::vector<bool> self_loop;
    const auto grow = [&](std::size_t n) {
      if (adj.size() < n) {
        adj.resize(n);
        self_loop.resize(n, false);
      }
    };
    for (const auto& [from, to] : scc_edges_) {
      const std::size_t a = id(from);
      const std::size_t b = id(to);
      grow(handle_of.size());
      if (a == b) {
        self_loop[a] = true;
      } else {
        adj[a].push_back(b);
      }
    }
    for (const StateHandle h : scc_full_) {
      (void)id(h);
    }
    grow(handle_of.size());
    const std::size_t n = handle_of.size();

    // Iterative Tarjan.
    std::vector<std::uint32_t> index(n, 0), low(n, 0);
    std::vector<bool> on_stack(n, false), visited(n, false);
    std::vector<std::size_t> stack, comp_of(n, 0);
    std::uint32_t next_index = 1;
    std::size_t n_comps = 0;
    struct VisitFrame {
      std::size_t v;
      std::size_t next_child;
    };
    std::vector<VisitFrame> call;
    for (std::size_t root = 0; root < n; ++root) {
      if (visited[root]) continue;
      call.push_back({root, 0});
      while (!call.empty()) {
        auto& fr = call.back();
        const std::size_t v = fr.v;
        if (fr.next_child == 0) {
          visited[v] = true;
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
        }
        bool descended = false;
        while (fr.next_child < adj[v].size()) {
          const std::size_t w = adj[v][fr.next_child++];
          if (!visited[w]) {
            call.push_back({w, 0});
            descended = true;
            break;
          }
          if (on_stack[w]) low[v] = std::min(low[v], index[w]);
        }
        if (descended) continue;
        if (low[v] == index[v]) {
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp_of[w] = n_comps;
            if (w == v) break;
          }
          ++n_comps;
        }
        call.pop_back();
        if (!call.empty()) {
          low[call.back().v] = std::min(low[call.back().v], low[v]);
        }
      }
    }

    std::vector<std::uint32_t> comp_size(n_comps, 0);
    std::vector<bool> comp_cyclic(n_comps, false), comp_full(n_comps, false);
    std::vector<StateHandle> comp_rep(n_comps, kNoHandle);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t cc = comp_of[v];
      ++comp_size[cc];
      if (self_loop[v]) comp_cyclic[cc] = true;
      if (scc_full_.contains(handle_of[v])) comp_full[cc] = true;
      if (comp_rep[cc] == kNoHandle || handle_of[v] < comp_rep[cc]) {
        comp_rep[cc] = handle_of[v];
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (comp_size[comp_of[v]] > 1) comp_cyclic[comp_of[v]] = true;
    }
    std::vector<StateHandle> reps;
    for (std::size_t cc = 0; cc < n_comps; ++cc) {
      if (comp_cyclic[cc] && !comp_full[cc]) reps.push_back(comp_rep[cc]);
    }
    std::sort(reps.begin(), reps.end());
    return reps;
  }

  void finish_scc_round() {
    const std::uint64_t t0 = now_us();
    std::vector<StateHandle> reps = ignored_reps();
    st_.scc_pass_ms += static_cast<double>(now_us() - t0) / 1e3;
    if (reps.empty()) {
      broadcast_done();
      return;
    }
    st_.scc_reexpansions += reps.size();
    std::vector<std::vector<StateHandle>> by_rank(nranks_);
    for (const StateHandle h : reps) by_rank[rank_of(h)].push_back(h);
    for (unsigned p = 0; p < nranks_; ++p) {
      if (by_rank[p].empty()) continue;
      if (p == rank_) {
        for (const StateHandle h : by_rank[p]) enqueue_reexpand(h);
        continue;
      }
      FrameWriter w;
      w.u32(static_cast<std::uint32_t>(by_rank[p].size()));
      for (const StateHandle h : by_rank[p]) w.u64(h);
      token_.on_sent(by_rank[p].size());
      conns_[p].send(FrameType::kSccExpand, w.bytes());
    }
  }

  // Re-queue an owned state for a full expansion: materialize the stored
  // canonical representative and map it back to the concrete state its
  // recorded permutation came from, exactly like the in-process pass.
  void enqueue_reexpand(StateHandle global) {
    WorkerCtx& me = core_.worker(0);
    const StateHandle local = to_local(global);
    const ShardedVisited& g = core_.visited().graph();
    std::optional<State> s = g.materialize(local);
    if (!s.has_value()) return;
    Item* it = me.alloc();
    it->s = std::move(*s);
    if (cfg_.decanonicalize) {
      it->s = cfg_.decanonicalize(g.perm_of(local), it->s);
    }
    it->canon_fp = core_.canonical_fingerprint(it->s);
    it->handle = global;
    it->depth = 0;
    work_.push_back({it, true});
  }

  void broadcast_done() {
    for (unsigned p = 0; p < nranks_; ++p) {
      if (p != rank_ && conns_[p].fd() >= 0 && !peer_dead_[p]) {
        conns_[p].send(FrameType::kDone, {});
      }
    }
    stopped_ = true;
  }

  // --- final report --------------------------------------------------------

  [[nodiscard]] std::uint64_t mesh_bytes() const {
    std::uint64_t b = 0;
    for (unsigned p = 0; p < nranks_; ++p) {
      if (p != rank_ && conns_[p].fd() >= 0) b += conns_[p].bytes_queued();
    }
    return b;
  }

  void send_final() {
    RankFinal f;
    f.verdict = local_verdict_;
    f.violated_property = violated_property_;
    f.limit = static_cast<std::uint8_t>(limit_);
    if (pending_.armed) {
      f.has_trace = walk_trace(&f.trace_events);
    }
    st_.states_stored = core_.visited().size();
    st_.visited_bytes = core_.visited().approx_bytes();
    st_.wire_bytes = mesh_bytes();
    st_.seconds = static_cast<double>(now_us() - start_us_) / 1e6;
    core_.finish_stats(st_);
    f.stats = st_;
    std::sort(terminals_.begin(), terminals_.end());
    terminals_.erase(std::unique(terminals_.begin(), terminals_.end()),
                     terminals_.end());
    f.terminals = std::move(terminals_);
    FrameWriter w;
    encode_final(w, f);
    control_.send(FrameType::kFinal, w.bytes());
    (void)control_.flush();
  }

  // Walk the violation's parent chain back to the root, resolving foreign
  // handles through the owners' parent_lookup RPC (they are in kServe,
  // answering until the launcher releases everyone). Returns false when the
  // walk had to be abandoned (dead peer / timeout) — the verdict stands,
  // only the concrete counterexample is lost.
  bool walk_trace(std::vector<Event>* out) {
    // The engine replays traces only when the recorded chain is certifiably
    // concrete (see record_violation in engine.cpp): either no canonicalizer
    // ran, or the permutation-aware pair is installed so stored canonical
    // states map back. Match that rule.
    const bool have_canon = static_cast<bool>(cfg_.canonicalize) ||
                            static_cast<bool>(cfg_.canonicalize_perm);
    if (have_canon && !(cfg_.canonicalize_perm && cfg_.decanonicalize)) {
      return false;
    }
    std::vector<Event> rev;
    if (pending_.has_last) rev.push_back(pending_.last);
    StateHandle h = pending_.parent;
    while (h != kNoHandle) {
      StateHandle parent = kNoHandle;
      Event ev;
      if (rank_of(h) == rank_) {
        if (!core_.visited().graph().parent_link(to_local(h), &parent, &ev)) {
          return false;
        }
        if (parent == kNoHandle) break;  // root: contributes no event
      } else {
        if (!remote_parent_link(h, &parent, &ev)) return false;
        if (parent == kNoHandle) break;
      }
      rev.push_back(ev);
      h = parent;
    }
    out->assign(rev.rbegin(), rev.rend());
    return true;
  }

  bool remote_parent_link(StateHandle h, StateHandle* parent, Event* ev) {
    const unsigned owner = rank_of(h);
    if (owner >= nranks_ || peer_dead_[owner]) return false;
    const std::uint64_t id = ++lookup_seq_;
    FrameWriter w;
    w.u64(h);
    w.u64(id);
    conns_[owner].send(FrameType::kLookupReq, w.bytes());
    const std::uint64_t deadline = now_us() + 30'000'000;  // 30s backstop
    std::vector<Frame> frames;
    while (now_us() < deadline) {
      poll_io(5);
      for (unsigned p = 0; p < nranks_; ++p) {
        if (p == rank_ || conns_[p].fd() < 0) continue;
        frames.clear();
        const bool alive = conns_[p].drain(&frames);
        for (Frame& f : frames) handle_peer_frame(p, f);
        if (!alive) peer_dead_[p] = true;
      }
      frames.clear();
      if (!control_.drain(&frames)) ::_exit(1);
      for (Frame& f : frames) handle_control_frame(f);
      if (phase_ == Phase::kExit) ::_exit(0);  // launcher gave up on us
      flush_conns();
      const auto it = lookup_resps_.find(id);
      if (it != lookup_resps_.end()) {
        FrameCursor c(it->second);
        (void)c.u64();  // id
        *parent = c.u64();
        const bool has_ev = c.u8() != 0;
        if (has_ev) {
          *ev = c.event();
        } else if (*parent != kNoHandle) {
          lookup_resps_.erase(it);
          return false;  // non-root without an event: broken link
        }
        lookup_resps_.erase(it);
        return true;
      }
      if (peer_dead_[owner]) return false;
    }
    return false;
  }

  // --- members -------------------------------------------------------------

  const Protocol& proto_;
  ExploreConfig cfg_;
  DistConfig dc_;
  unsigned rank_;
  unsigned nranks_;
  ExpansionCore core_;
  std::vector<FrameConn> conns_;  // indexed by rank; self slot default/-1
  FrameConn control_;
  std::vector<Batcher> batchers_;
  std::vector<unsigned> credits_;
  std::vector<bool> peer_dead_ = std::vector<bool>(kMaxRanks, false);
  SafraToken token_;
  std::vector<pollfd> pollfds_;

  Phase phase_ = Phase::kSearch;
  bool stopped_ = false;
  bool awaiting_edges_ = false;
  unsigned scc_waiting_ = 0;

  std::vector<WorkItem> work_;
  ExploreStats st_;
  std::vector<Fingerprint> terminals_;
  std::uint64_t start_us_ = 0;
  std::uint64_t progress_mark_ = 0;

  Verdict local_verdict_ = Verdict::kHolds;
  std::string violated_property_;
  LimitKind limit_ = LimitKind::kNone;
  struct PendingTrace {
    StateHandle parent = kNoHandle;
    Event last;
    bool has_last = false;
    bool armed = false;
  } pending_;

  std::uint64_t lookup_seq_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> lookup_resps_;

  // Rank 0's cumulative global reduced graph (SCC coordination).
  std::vector<std::pair<StateHandle, StateHandle>> scc_edges_;
  std::unordered_set<StateHandle> scc_full_;
};

}  // namespace

int run_rank(const Protocol& proto, const ExploreConfig& cfg,
             const DistConfig& dc, ReductionStrategy* strategy,
             const RankWiring& wiring) noexcept {
  try {
    // Strip everything launcher-side from the child's view of the config:
    // hooks must not fire in the child, and each rank is single-threaded.
    ExploreConfig child = cfg;
    child.threads = 1;
    child.on_violation = nullptr;
    child.cancel = nullptr;  // the launcher forwards cancels as kCancel
    RankLoop loop(proto, child, dc, strategy, wiring);
    return loop.run();
  } catch (...) {
    return 2;  // the launcher sees the control socket close -> DistError
  }
}

}  // namespace mpb::dist
