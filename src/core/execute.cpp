#include "core/execute.hpp"

#include <algorithm>
#include <cassert>

namespace mpb {

namespace {

void check_annotations(const Protocol& proto, const Transition& t, const Event& e,
                       const EffectCtx& ctx) {
  for (const PeekDecl& got : ctx.peeked()) {
    bool declared = false;
    for (const PeekDecl& d : t.peek_decls) {
      if (d.proc == got.proc && (got.vars & ~d.vars) == 0) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      throw AnnotationError("transition " + t.name +
                            " ghost-read an undeclared variable of " +
                            proto.proc(got.proc).name +
                            " (missing peeks annotation; POR would be unsound)");
    }
  }
  if (t.writes_local && (ctx.written() & ~t.writes_vars) != 0) {
    throw AnnotationError("transition " + t.name +
                          " wrote a local variable outside its writes_vars "
                          "annotation");
  }
  for (const Message& m : ctx.sends()) {
    if (std::find(t.out_types.begin(), t.out_types.end(), m.type()) ==
        t.out_types.end()) {
      throw AnnotationError("transition " + t.name + " sent undeclared type " +
                            proto.msg_type_name(m.type()));
    }
    if (!mask_contains(t.send_to, m.receiver())) {
      throw AnnotationError("transition " + t.name + " sent to undeclared recipient " +
                            proto.proc(m.receiver()).name);
    }
    if (t.is_reply) {
      const bool to_sender =
          std::any_of(e.consumed.begin(), e.consumed.end(),
                      [&](const Message& c) { return c.sender() == m.receiver(); });
      if (!to_sender) {
        throw AnnotationError("reply transition " + t.name +
                              " sent to a non-sender of X (violates Def. 4)");
      }
    }
  }
}

}  // namespace

State execute(const Protocol& proto, const State& s, const Event& e,
              const ExecuteOptions& opts, std::string* failed_assertion) {
  State succ;
  execute_into(proto, s, e, opts, failed_assertion, succ);
  return succ;
}

void execute_into(const Protocol& proto, const State& s, const Event& e,
                  const ExecuteOptions& opts, std::string* failed_assertion,
                  State& out) {
  const Transition& t = proto.transition(e.tid);
  State& succ = out;
  succ = s;  // copy-assign: a recycled `out` keeps its vector capacity

  for (const Message& m : e.consumed) {
    const bool removed = succ.remove_message(m);
    assert(removed && "event consumed a message absent from the state");
    (void)removed;
  }

  const ProcessInfo& pi = proto.proc(t.proc);
  std::vector<Value> locals_before;
  if (opts.validate_annotations && !t.writes_local) {
    auto slice = succ.local_slice(pi.local_offset, pi.local_len);
    locals_before.assign(slice.begin(), slice.end());
  }

  EffectCtx ctx(proto, succ, t.proc, e.consumed);
  if (t.effect) t.effect(ctx);

  if (opts.validate_annotations) {
    check_annotations(proto, t, e, ctx);
    if (!t.writes_local) {
      auto after = succ.local_slice(pi.local_offset, pi.local_len);
      if (!std::equal(after.begin(), after.end(), locals_before.begin(),
                      locals_before.end())) {
        throw AnnotationError("transition " + t.name +
                              " wrote local state but is annotated isWrite=false");
      }
    }
  }

  for (const Message& m : ctx.sends()) succ.add_message(m);
  if (failed_assertion != nullptr) *failed_assertion = ctx.failed_assertion();
}

}  // namespace mpb
