// The state-space explorer: depth-first search over the state graph generated
// by a Protocol, with pluggable partial-order reduction.
//
// Two search modes mirror the paper's experimental setup:
//  * Stateful  — a visited set prunes revisits (exact states, 128-bit
//                fingerprints, or arena-interned states for memory-bound runs);
//  * Stateless — no visited set; every path is walked (the mode Basset's DPOR
//                requires, Section III-A).
//
// A ReductionStrategy selects, in each newly reached state, the subset of
// enabled events to explore. FullExpansion is the unreduced baseline; the SPOR
// stubborn-set strategy lives in src/por/spor.hpp.
//
// All searches run on the unified engine (core/engine.hpp): one pooled
// ExpansionCore under three drivers. explore() dispatches — SequentialDriver
// for t1 / stack-proviso / stateless searches, PoolDriver (per-worker
// Chase-Lev stealing deques over the lock-free sharded visited set,
// core/visited.hpp) for stateful searches with cfg.threads > 1 whose
// strategy does not need the DFS stack, and por/dpor.cpp's DPOR search rides
// the engine's StackReplayDriver chassis at t1 or distributes backtrack
// points as replayable work items over the same Chase-Lev pool machinery at
// cfg.threads > 1. Only the unreduced stateless DFS is inherently sequential
// and ignores cfg.threads; see docs/ARCHITECTURE.md for the driver table and
// parallel-safety matrix. Unreduced parallel runs
// report the same verdict and the same states_stored / terminal_states as
// the sequential search; reduced parallel runs report the same verdict (the
// reduction itself is schedule-dependent). Parallel runs reconstruct
// counterexample traces by walking the interned state graph's parent handles
// back to the root and replaying the events through execute() — available
// whenever the visited set is interned (the default `exact` mode upgrades to
// interned in parallel runs), including under a symmetry canonicalizer: the
// frontier always carries concrete states, so the recorded event chain is a
// genuine concrete run, and each interned entry additionally records the
// permutation that mapped it onto its canonical representative.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/enabled.hpp"
#include "core/execute.hpp"
#include "core/protocol.hpp"
#include "core/visited.hpp"

namespace mpb {

enum class SearchMode { kStateful, kStateless };

enum class Verdict {
  kHolds,           // every reachable state satisfies every property
  kViolated,        // a counterexample was found
  kBudgetExceeded,  // search stopped on a state/time/depth budget
  kResourceLimit,   // a hard resource guard tripped (watchdog/memory/states)
};

[[nodiscard]] std::string_view to_string(Verdict v) noexcept;

struct ExploreStats;  // declared below; the progress hook passes snapshots

// Hard resource guards, distinct from the benchmarking budgets in
// ExploreConfig (max_states / max_events / max_seconds, which report
// kBudgetExceeded): a tripped guard aborts the search gracefully with
// Verdict::kResourceLimit and partial stats instead of letting a pathological
// protocol hang or OOM the process. Enforced uniformly by every driver
// (SequentialDriver, PoolDriver, StackReplayDriver) and by the SCC ignoring
// pass; guards take precedence over budgets when both trip in the same tick.
// The fuzz campaigns (src/fuzz) run every generated protocol under these.
struct ResourceGuard {
  // Wall-clock watchdog; infinity = disabled.
  double watchdog_seconds = std::numeric_limits<double>::infinity();
  // Approximate bytes of state storage (visited set + interned arena);
  // 0 = disabled.
  std::uint64_t max_memory_bytes = 0;
  // Hard cap on stored states (visited nodes in stateless searches);
  // 0 = disabled.
  std::uint64_t max_states = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return watchdog_seconds != std::numeric_limits<double>::infinity() ||
           max_memory_bytes != 0 || max_states != 0;
  }
};

struct ExploreConfig {
  SearchMode mode = SearchMode::kStateful;
  VisitedMode visited = VisitedMode::kExact;
  // Worker threads; 1 = sequential. Stateful searches scale through the
  // pool driver, DPOR through its backtrack-point work-item pool
  // (por/dpor.cpp). The sequential path is taken (and `threads` ignored)
  // for unreduced stateless mode and for strategies that need the DFS
  // stack (ReductionStrategy::needs_dfs_stack, e.g. SPOR under the stack
  // cycle proviso).
  unsigned threads = 1;
  // Shard count for the sharded visited table; 0 = auto (4x threads).
  unsigned visited_shards = 0;
  std::uint64_t max_states = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max();
  double max_seconds = std::numeric_limits<double>::infinity();
  unsigned max_depth = 1u << 20;  // stateless safety net
  // Hard resource guards (disabled by default); see ResourceGuard above.
  ResourceGuard guard;
  // Cooperative cancellation: when set and the pointee becomes true, the
  // search aborts at the next guard poll with Verdict::kResourceLimit and
  // partial stats — exactly like a tripped resource guard, and checked at the
  // same sites (so a cancelled run can never outlive a guarded one). The
  // owner (e.g. a serve-layer job) keeps the flag alive via the shared_ptr
  // and may flip it from any thread.
  std::shared_ptr<std::atomic<bool>> cancel;
  bool stop_at_first_violation = true;
  bool validate_annotations = true;
  // Record the fingerprint of every terminal (deadlock) state reached; used
  // by the deadlock-preservation tests (stubborn sets must find all of them).
  bool collect_terminals = false;
  // Optional state canonicalizer applied before visited-set lookups (and to
  // terminal fingerprints): the symmetry-reduction hook (por/symmetry.hpp).
  // The search itself still walks concrete states, so counterexamples remain
  // genuine paths. Must be thread-safe (const) when threads > 1.
  std::function<State(const State&)> canonicalize;
  // Permutation-aware variant, preferred by the engine when set: also
  // reports the index of the permutation that produced the canonical state
  // (SymmetryReducer::canonicalize_with_perm), which interned entries record
  // so canonical representatives stay mappable back to the concrete states
  // that reached them. The check facade installs this one; `canonicalize`
  // remains for callers that don't track permutations (recorded as 0).
  std::function<State(const State&, std::uint32_t&)> canonicalize_perm;
  // Inverse of the canonicalizing permutation
  // (SymmetryReducer::apply_inverse_perm): maps a stored canonical
  // representative back to the concrete state its recorded permutation came
  // from. Installed alongside canonicalize_perm; the engine's SCC ignoring
  // pass continues exploration from concrete states with it, so recorded
  // event chains stay replayable under symmetry.
  std::function<State(std::uint32_t, const State&)> decanonicalize;
  // Steal batching for the parallel pool: when a steal victim's deque holds
  // at least this many items, the thief takes ~half of them (capped) in one
  // visit instead of one item. 0 keeps the classic steal-one protocol (the
  // default; each batched item is still claimed by its own top-CAS, so the
  // memory-safety argument — and the TSan model — is unchanged).
  unsigned steal_half_threshold = 0;
  // --- collapse-mode spill tier (visited == kCollapse only) ---
  // Directory for the visited set's mmap spill file; empty = no spilling.
  // When set, cold state-node chunks beyond the resident budget are advised
  // out of RAM and stop counting against guard.max_memory_bytes.
  std::string spill_dir;
  // Resident budget for spillable chunks, in MiB; 0 = keep all resident.
  std::uint64_t spill_mb = 0;
  // --- observer hooks (the check facade's progress reporting) ---
  // `on_progress` is invoked approximately every `progress_every_events`
  // executed events with a snapshot of the running stats. Sequential runs
  // snapshot the full stats; parallel runs report the exact visited-set size,
  // global event count and elapsed time (per-worker detail is not merged
  // mid-run). 0 disables the hook. `on_violation` fires for every property
  // violation observed, with the property name, before any stop-at-first
  // shutdown propagates. The explorer serializes all hook invocations, but
  // the callbacks themselves must not re-enter explore().
  std::uint64_t progress_every_events = 0;
  std::function<void(const ExploreStats&)> on_progress;
  std::function<void(std::string_view property)> on_violation;
};

// One step of a counterexample path: the event taken and the state reached.
struct TraceStep {
  Event event;
  State after;
};

struct ExploreStats {
  std::uint64_t states_stored = 0;    // unique states (stateful mode)
  std::uint64_t states_visited = 0;   // nodes expanded (counts revisits when stateless)
  std::uint64_t events_executed = 0;
  std::uint64_t events_selected = 0;  // events chosen by the strategy
  std::uint64_t events_enabled = 0;   // events enabled before reduction
  std::uint64_t terminal_states = 0;  // states with no enabled event
  std::uint64_t full_expansions = 0;  // states where reduction fell back to all
  // Candidate reduced sets the strategy abandoned because of its cycle
  // proviso during this run (SPOR; see ReductionStrategy::proviso_fallbacks).
  std::uint64_t proviso_fallbacks = 0;
  // States re-expanded by the SCC-based ignoring fix (CycleProviso::kScc):
  // one per SCC of the reduced graph that contained a cycle but no fully
  // expanded state. The price of recovering the reduction the in-search
  // provisos would have lost; 0 under every other proviso.
  std::uint64_t scc_reexpansions = 0;
  // DPOR picks suppressed by the sleep set (por/dpor.cpp): backtrack points
  // whose subtree was provably covered by an already-explored sibling branch
  // and therefore never executed: picks found asleep at execution time plus
  // asleep candidates passed over during a frame's representative selection.
  // Nonzero only for strategy `dpor` with DporOptions::sleep_sets on; the
  // counter that quantifies how much of the feed-race re-exploration the
  // sleep layer claws back.
  std::uint64_t sleep_blocked = 0;
  // Wall-clock milliseconds spent in the SCC ignoring pass (Tarjan +
  // repair rounds), 0 when the pass did not run. Separated from `seconds`
  // so the post-pass cost stays visible as reduced graphs grow.
  double scc_pass_ms = 0.0;
  // Distributed search only (src/dist): successors whose fingerprint-owner
  // was another rank and that were therefore shipped over the peer mesh
  // instead of inserted locally, the batch frames that carried them
  // (forwarded_states / forward_batches = achieved batching factor), and the
  // total framed payload bytes put on the wire (all frame types, both
  // directions summed across ranks). 0 for every single-process driver.
  std::uint64_t forwarded_states = 0;
  std::uint64_t forward_batches = 0;
  std::uint64_t wire_bytes = 0;
  // Progress snapshots only: open frames (sequential DFS stack) or open
  // items across the injector and all stealing deques (parallel pool) at
  // snapshot time — computed from the deques' own bounds, so it cannot go
  // negative or drift stale. 0 in final stats.
  std::uint64_t frontier = 0;
  // Whole-state rehash passes / fingerprint queries during this run (delta of
  // the process-wide counters in core/state.hpp; approximate if explorations
  // run concurrently in one process). The seed recomputed two passes per
  // query; the cached scheme keeps passes near states_stored.
  std::uint64_t full_hash_passes = 0;
  std::uint64_t hash_queries = 0;
  // Exact bytes the visited set holds resident at the end of the run (slot
  // tables, arenas, interned payloads; spilled chunks excluded). 0 for
  // stateless searches. visited_bytes / states_stored is the bytes-per-state
  // figure the state_bytes bench reports.
  std::uint64_t visited_bytes = 0;
  unsigned max_depth_seen = 0;
  unsigned threads_used = 1;
  double seconds = 0.0;
};

struct ExploreResult {
  Verdict verdict = Verdict::kHolds;
  std::string violated_property;
  std::vector<TraceStep> counterexample;  // empty unless verdict == kViolated
  ExploreStats stats;
  // Sorted, deduplicated; filled only when cfg.collect_terminals is set.
  std::vector<Fingerprint> terminal_fingerprints;
};

// Callbacks a strategy may use to evaluate provisos. Sequential searches
// provide all three; the parallel worker pool has no per-search DFS stack and
// leaves `on_stack` empty (strategies must check before calling).
struct StrategyContext {
  // Successor of the current state through `e`.
  std::function<State(const Event& e)> successor;
  // Whether a state lies on the current DFS stack (stack cycle proviso).
  std::function<bool(const State& s)> on_stack;
  // Whether a state is already in the visited set (visited-set cycle
  // proviso; probes the canonicalized state when symmetry is on). Empty in
  // stateless searches.
  std::function<bool(const State& s)> in_visited;
};

class ReductionStrategy {
 public:
  virtual ~ReductionStrategy() = default;

  // Indices into `events` of the subset to explore from `s`. Must be non-empty
  // whenever `events` is non-empty.
  virtual std::vector<std::size_t> select(const State& s,
                                          std::span<const Event> events,
                                          const StrategyContext& ctx) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Whether select() relies on StrategyContext::on_stack. Strategies
  // returning false may be driven by the parallel worker pool (which only
  // provides `in_visited`); their select() must then be safe to call
  // concurrently from multiple workers. Conservative default: true.
  [[nodiscard]] virtual bool needs_dfs_stack() const { return true; }

  // Monotone count of candidate reduced sets abandoned because of the cycle
  // proviso over this strategy object's lifetime; searches report the per-run
  // delta in ExploreStats::proviso_fallbacks.
  [[nodiscard]] virtual std::uint64_t proviso_fallbacks() const { return 0; }

  // Whether the engine must run the SCC-based ignoring fix as a post-pass
  // over the interned state graph (engine::ExpansionCore::
  // run_scc_ignoring_pass): the strategy then applies no in-search cycle
  // proviso and relies on the pass to re-expand one state per ignored SCC.
  // Implies needs_dfs_stack() == false and forces an interned visited set.
  [[nodiscard]] virtual bool wants_scc_ignoring_pass() const { return false; }
};

// The unreduced baseline: explore every enabled event.
class FullExpansion final : public ReductionStrategy {
 public:
  std::vector<std::size_t> select(const State&, std::span<const Event> events,
                                  const StrategyContext&) override;
  [[nodiscard]] std::string_view name() const override { return "full"; }
  [[nodiscard]] bool needs_dfs_stack() const override { return false; }
};

// Run the search, taking ownership of the strategy. A null strategy means
// full expansion (and is what routes stateful multi-threaded searches onto
// the parallel worker pool). This is the preferred form — the check facade's
// strategy factories hand over unique_ptrs, so no caller juggles strategy
// lifetimes.
[[nodiscard]] ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                                    std::unique_ptr<ReductionStrategy> strategy);

// Non-owning shim for callers that keep the strategy alive themselves.
[[nodiscard]] ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                                    ReductionStrategy* strategy = nullptr);

// Convenience: unreduced stateful search with default budgets.
[[nodiscard]] ExploreResult explore_full(const Protocol& proto);

// Replay `events` from the initial state through execute(), returning one
// TraceStep per event. The single trace constructor behind every search
// mode: the sequential and DPOR searches feed it their stack's event chain,
// the parallel pool the chain recovered by walking interned parent handles
// (ShardedVisited::path_from_root). Successor computation is deterministic,
// so the replayed states are exactly the states the search saw.
[[nodiscard]] std::vector<TraceStep> replay_trace(const Protocol& proto,
                                                  std::span<const Event> events,
                                                  const ExecuteOptions& opts = {});

// Enumerate the full reachable state graph (unreduced, stateful, exact) and
// return all reachable states; used by tests to check refinement equivalence
// (Thm. 2). Aborts (returns empty) if more than `max_states` are reachable.
[[nodiscard]] std::vector<State> reachable_states(const Protocol& proto,
                                                  std::uint64_t max_states = 1u << 22);

// All labelled edges of the reachable state graph: (state, event, successor)
// triples in a canonical order; used by state-graph equivalence tests.
struct Edge {
  State from;
  std::string transition_name;  // identity up to refinement provenance
  std::vector<Message> consumed;
  State to;
};
[[nodiscard]] std::vector<Edge> reachable_edges(const Protocol& proto,
                                                std::uint64_t max_states = 1u << 20);

}  // namespace mpb
