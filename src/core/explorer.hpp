// The state-space explorer: depth-first search over the state graph generated
// by a Protocol, with pluggable partial-order reduction.
//
// Two search modes mirror the paper's experimental setup:
//  * Stateful  — a visited set prunes revisits (exact states, 128-bit
//                fingerprints, or arena-interned states for memory-bound runs);
//  * Stateless — no visited set; every path is walked (the mode Basset's DPOR
//                requires, Section III-A).
//
// A ReductionStrategy selects, in each newly reached state, the subset of
// enabled events to explore. FullExpansion is the unreduced baseline; the SPOR
// stubborn-set strategy lives in src/por/spor.hpp.
//
// Parallelism: with cfg.threads > 1 the *stateful, unreduced* search runs on
// a fixed worker pool sharing a global frontier of independent DFS root
// frames over a sharded visited set (see core/visited.hpp). Reduction
// strategies (stubborn sets need the DFS-stack cycle proviso) and stateless /
// DPOR searches are inherently sequential and ignore cfg.threads; see
// docs/ARCHITECTURE.md for the parallel-safety matrix. Parallel runs report
// the same verdict and the same states_stored / terminal_states as the
// sequential search, but do not reconstruct counterexample paths — rerun
// sequentially to obtain a trace.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/enabled.hpp"
#include "core/execute.hpp"
#include "core/protocol.hpp"
#include "core/visited.hpp"

namespace mpb {

enum class SearchMode { kStateful, kStateless };

enum class Verdict {
  kHolds,           // every reachable state satisfies every property
  kViolated,        // a counterexample was found
  kBudgetExceeded,  // search stopped on a state/time/depth budget
};

[[nodiscard]] std::string_view to_string(Verdict v) noexcept;

struct ExploreStats;  // declared below; the progress hook passes snapshots

struct ExploreConfig {
  SearchMode mode = SearchMode::kStateful;
  VisitedMode visited = VisitedMode::kExact;
  // Worker threads for the stateful unreduced search; 1 = sequential. The
  // sequential path is taken (and `threads` ignored) for stateless mode and
  // for reduced (strategy != nullptr) searches.
  unsigned threads = 1;
  // Shard count for the sharded visited table; 0 = auto (4x threads).
  unsigned visited_shards = 0;
  std::uint64_t max_states = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max();
  double max_seconds = std::numeric_limits<double>::infinity();
  unsigned max_depth = 1u << 20;  // stateless safety net
  bool stop_at_first_violation = true;
  bool validate_annotations = true;
  // Record the fingerprint of every terminal (deadlock) state reached; used
  // by the deadlock-preservation tests (stubborn sets must find all of them).
  bool collect_terminals = false;
  // Optional state canonicalizer applied before visited-set lookups (and to
  // terminal fingerprints): the symmetry-reduction hook (por/symmetry.hpp).
  // The search itself still walks concrete states, so counterexamples remain
  // genuine paths. Must be thread-safe (const) when threads > 1.
  std::function<State(const State&)> canonicalize;
  // --- observer hooks (the check facade's progress reporting) ---
  // `on_progress` is invoked approximately every `progress_every_events`
  // executed events with a snapshot of the running stats. Sequential runs
  // snapshot the full stats; parallel runs report the exact visited-set size,
  // global event count and elapsed time (per-worker detail is not merged
  // mid-run). 0 disables the hook. `on_violation` fires for every property
  // violation observed, with the property name, before any stop-at-first
  // shutdown propagates. The explorer serializes all hook invocations, but
  // the callbacks themselves must not re-enter explore().
  std::uint64_t progress_every_events = 0;
  std::function<void(const ExploreStats&)> on_progress;
  std::function<void(std::string_view property)> on_violation;
};

// One step of a counterexample path: the event taken and the state reached.
struct TraceStep {
  Event event;
  State after;
};

struct ExploreStats {
  std::uint64_t states_stored = 0;    // unique states (stateful mode)
  std::uint64_t states_visited = 0;   // nodes expanded (counts revisits when stateless)
  std::uint64_t events_executed = 0;
  std::uint64_t events_selected = 0;  // events chosen by the strategy
  std::uint64_t events_enabled = 0;   // events enabled before reduction
  std::uint64_t terminal_states = 0;  // states with no enabled event
  std::uint64_t full_expansions = 0;  // states where reduction fell back to all
  // Whole-state rehash passes / fingerprint queries during this run (delta of
  // the process-wide counters in core/state.hpp; approximate if explorations
  // run concurrently in one process). The seed recomputed two passes per
  // query; the cached scheme keeps passes near states_stored.
  std::uint64_t full_hash_passes = 0;
  std::uint64_t hash_queries = 0;
  unsigned max_depth_seen = 0;
  unsigned threads_used = 1;
  double seconds = 0.0;
};

struct ExploreResult {
  Verdict verdict = Verdict::kHolds;
  std::string violated_property;
  std::vector<TraceStep> counterexample;  // empty unless verdict == kViolated
  ExploreStats stats;
  // Sorted, deduplicated; filled only when cfg.collect_terminals is set.
  std::vector<Fingerprint> terminal_fingerprints;
};

// Callbacks a strategy may use to evaluate provisos.
struct StrategyContext {
  // Successor of the current state through `e`.
  std::function<State(const Event& e)> successor;
  // Whether a state lies on the current DFS stack (cycle proviso).
  std::function<bool(const State& s)> on_stack;
};

class ReductionStrategy {
 public:
  virtual ~ReductionStrategy() = default;

  // Indices into `events` of the subset to explore from `s`. Must be non-empty
  // whenever `events` is non-empty.
  virtual std::vector<std::size_t> select(const State& s,
                                          std::span<const Event> events,
                                          const StrategyContext& ctx) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

// The unreduced baseline: explore every enabled event.
class FullExpansion final : public ReductionStrategy {
 public:
  std::vector<std::size_t> select(const State&, std::span<const Event> events,
                                  const StrategyContext&) override;
  [[nodiscard]] std::string_view name() const override { return "full"; }
};

// Run the search, taking ownership of the strategy. A null strategy means
// full expansion (and is what routes stateful multi-threaded searches onto
// the parallel worker pool). This is the preferred form — the check facade's
// strategy factories hand over unique_ptrs, so no caller juggles strategy
// lifetimes.
[[nodiscard]] ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                                    std::unique_ptr<ReductionStrategy> strategy);

// Non-owning shim for callers that keep the strategy alive themselves.
[[nodiscard]] ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                                    ReductionStrategy* strategy = nullptr);

// Convenience: unreduced stateful search with default budgets.
[[nodiscard]] ExploreResult explore_full(const Protocol& proto);

// Enumerate the full reachable state graph (unreduced, stateful, exact) and
// return all reachable states; used by tests to check refinement equivalence
// (Thm. 2). Aborts (returns empty) if more than `max_states` are reachable.
[[nodiscard]] std::vector<State> reachable_states(const Protocol& proto,
                                                  std::uint64_t max_states = 1u << 22);

// All labelled edges of the reachable state graph: (state, event, successor)
// triples in a canonical order; used by state-graph equivalence tests.
struct Edge {
  State from;
  std::string transition_name;  // identity up to refinement provenance
  std::vector<Message> consumed;
  State to;
};
[[nodiscard]] std::vector<Edge> reachable_edges(const Protocol& proto,
                                                std::uint64_t max_states = 1u << 20);

}  // namespace mpb
