// The unified exploration engine: one pooled expansion core under every
// search mode.
//
// Before this file existed, the sequential stateful DFS, the lock-free
// parallel pool and the DPOR stack search each reimplemented expansion,
// visited insertion, proviso evaluation and trace construction inside
// core/explorer.cpp. They are now three thin *drivers* over one shared
// ExpansionCore:
//
//   driver             loop shape                 used for
//   -----------------  -------------------------  ---------------------------
//   SequentialDriver   lazy DFS over a frame      stateful t1 searches (all
//                      stack (path = stack, so    provisos incl. the classic
//                      the stack proviso and      stack proviso), stateless
//                      stateless cycle cut work)  unreduced DFS
//   PoolDriver         eager expansion over       stateful searches with
//                      per-worker Chase-Lev       threads > 1 and a strategy
//                      stealing deques + a        that needs no DFS stack
//                      mutex injector for root/   (full, SPOR under the
//                      overflow only              visited / scc provisos)
//   StackReplayDriver  chassis (pool, budgets,    the DPOR search in
//                      progress, violation        por/dpor.cpp, which layers
//                      recording, finish) under   backtrack sets on top
//                      a driver-owned stack
//
// The ExpansionCore contract — what every driver gets from the core:
//  * per-worker Item pools: recycled {State, canonical fingerprint, graph
//    handle, depth} records whose State buffers are reused by
//    execute_into(), so steady-state expansion touches the global allocator
//    only to intern a genuinely new state;
//  * scratch buffers for enumerate_events(out) and strategy selection;
//  * canonicalization with the applied permutation returned: when a
//    symmetry canonicalizer is installed, every interned entry records
//    which permutation mapped the concrete state onto its stored canonical
//    representative (ShardedVisited::perm_of), so canonical entries stay
//    traceable back to concrete runs;
//  * graph insertion via parent handles: one insert_canonical() used by
//    every driver threads {parent handle, incoming event, permutation}
//    through the interned arena — the spanning tree parallel and SCC-pass
//    counterexamples replay from;
//  * the SCC-based ignoring fix (CycleProviso::kScc): drivers record the
//    reduced graph's edges and full-expansion marks during the search, and
//    run_scc_ignoring_pass() then repairs the ignoring problem by
//    re-expanding one state per ignored SCC (Tarjan over the recorded
//    edges) instead of falling back to full expansion in-search — the
//    reduction the visited-set proviso loses to cross-edge hits (counted
//    by proviso_fallbacks) is recovered, priced by scc_reexpansions.
//
// Counterexample traces are uniform across drivers: the sequential and DPOR
// drivers feed replay_trace() their stack's event chain; the pool driver and
// the SCC pass walk interned parent handles (path_from_root). Because the
// frontier always carries *concrete* states (canonicalization only keys the
// visited set), the recorded event chain is a genuine concrete run even
// under symmetry — so --trace works in every mode that stores the graph.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/enabled.hpp"
#include "core/execute.hpp"
#include "core/explorer.hpp"
#include "core/visited.hpp"
#include "core/work_deque.hpp"

namespace mpb::engine {

// Which kind of limit stopped a search: a benchmarking budget
// (cfg.max_states / max_events / max_seconds -> Verdict::kBudgetExceeded) or
// a hard resource guard (cfg.guard -> Verdict::kResourceLimit). Guards are
// checked first, so a guard that trips in the same tick as a budget wins.
enum class LimitKind : std::uint8_t { kNone = 0, kBudget, kResource };

[[nodiscard]] constexpr Verdict verdict_of(LimitKind k) noexcept {
  return k == LimitKind::kResource ? Verdict::kResourceLimit
                                   : Verdict::kBudgetExceeded;
}

// Cooperative cancellation (ExploreConfig::cancel): polled wherever the
// resource guards are, and reported as a resource limit so a cancelled run
// carries partial stats under Verdict::kResourceLimit.
[[nodiscard]] inline bool cancel_requested(const ExploreConfig& cfg) noexcept {
  return cfg.cancel && cfg.cancel->load(std::memory_order_relaxed);
}

// Visited-set abstraction over the three storage modes. kExact keeps the
// seed's std::unordered_set of full State copies as the sequential reference
// implementation; kFingerprint and kInterned share the sharded lock-free
// table, and kInterned records the state graph (parent handle + incoming
// event + permutation per entry). All drivers insert through this interface,
// so whichever mode runs, the graph semantics are identical.
class VisitedSet {
 public:
  // `layout` and `spill` configure collapse mode (component split + optional
  // mmap spill tier); both are ignored by the other modes.
  VisitedSet(VisitedMode mode, unsigned shards, CollapseLayout layout = {},
             SpillConfig spill = {})
      : mode_(mode),
        sharded_(mode == VisitedMode::kExact ? VisitedMode::kInterned : mode,
                 shards, std::move(layout), std::move(spill)) {}

  // `fp` must be s.fingerprint(). `perm` is the index of the symmetry
  // permutation that produced `s` from the concrete state (0 = identity).
  VisitedInsert insert(const State& s, const Fingerprint& fp,
                       StateHandle parent, const Event* via,
                       std::uint32_t perm) {
    if (mode_ == VisitedMode::kExact) {
      const bool fresh = exact_.insert(s).second;
      if (fresh) {
        // Same lower-bound accounting as ShardedVisited: payload plus a
        // nominal per-node overhead (kExact is sequential-only, so a plain
        // counter suffices).
        exact_bytes_ += sizeof(State) + 2 * sizeof(void*) +
                        s.locals().size() * sizeof(Value) +
                        s.network().size() * sizeof(Message);
      }
      return {fresh, kNoHandle};
    }
    return sharded_.insert(s, fp, parent, via, perm);
  }

  [[nodiscard]] bool contains(const State& s, const Fingerprint& fp) const {
    if (mode_ == VisitedMode::kExact) return exact_.contains(s);
    return sharded_.contains(s, fp);
  }

  [[nodiscard]] std::uint64_t size() const noexcept {
    return mode_ == VisitedMode::kExact ? exact_.size() : sharded_.size();
  }

  // Approximate bytes of stored states, whatever the mode; the memory
  // resource guard's oracle.
  [[nodiscard]] std::uint64_t approx_bytes() const noexcept {
    return mode_ == VisitedMode::kExact ? exact_bytes_ : sharded_.approx_bytes();
  }

  [[nodiscard]] VisitedMode mode() const noexcept { return mode_; }

  // Serial-search declaration (see ShardedVisited::set_serial): lets table
  // growth free old tables immediately when at most one thread ever probes.
  void set_serial(bool on) noexcept { sharded_.set_serial(on); }

  // The interned state graph (meaningful when mode() == kInterned; the
  // other modes hand out no handles, so every walk is trivially empty).
  [[nodiscard]] const ShardedVisited& graph() const noexcept { return sharded_; }

 private:
  VisitedMode mode_;
  std::unordered_set<State, StateHash> exact_;
  std::uint64_t exact_bytes_ = 0;
  ShardedVisited sharded_;
};

// Multiset of states on the current DFS stack, for the cycle proviso and for
// stateless cycle cut-off. Fingerprint-based: a collision can only cause a
// conservative (sound) full expansion or an early path cut. State fingerprints
// are cached, so each probe is O(1) hash work.
class StackSet {
 public:
  void push(const State& s) { ++counts_[s.fingerprint()]; }
  void pop(const State& s) {
    auto it = counts_.find(s.fingerprint());
    if (it != counts_.end() && --it->second == 0) counts_.erase(it);
  }
  [[nodiscard]] bool contains(const State& s) const {
    return counts_.contains(s.fingerprint());
  }

 private:
  std::unordered_map<Fingerprint, std::uint32_t, FingerprintHash> counts_;
};

// One pooled unit of work: a concrete state plus its visited-set identity.
struct Item {
  State s;
  // Fingerprint of the canonicalized state, computed once at visited-insert
  // time and reused as the terminal fingerprint.
  Fingerprint canon_fp;
  // This state's entry in the interned state graph (kNoHandle when the
  // visited set stores no graph).
  StateHandle handle = kNoHandle;
  unsigned depth = 0;
};

// A recorded edge of the reduced state graph (SCC ignoring pass only):
// expanding `from` selected an event whose successor interned as `to`.
struct GraphEdge {
  StateHandle from;
  StateHandle to;
};

// Per-worker machinery: the stealing deque (pool driver only), the Item pool
// (free list over a stable-address backing store — recycling keeps the State
// vector capacity hot), the expansion scratch buffers, and the SCC-pass
// recording buffers. Everything here is touched by its owner only, except
// `deque` (thieves steal) and item memory itself (whoever extracts an item
// expands and then releases it into *their own* free list; the backing
// stores outlive the drivers, so cross-worker recycling is safe).
struct WorkerCtx {
  explicit WorkerCtx(unsigned wid) : rng(0x9e3779b97f4a7c15ULL * (wid + 1) + 1) {}

  Item* alloc() {
    if (!free.empty()) {
      Item* it = free.back();
      free.pop_back();
      return it;
    }
    storage.emplace_back();
    return &storage.back();
  }
  void release(Item* it) { free.push_back(it); }

  [[nodiscard]] std::uint64_t next_rand() {  // xorshift64
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  }

  WorkStealingDeque<Item> deque;
  std::deque<Item> storage;  // stable addresses; owns every Item's memory
  std::vector<Item*> free;
  std::vector<Event> enabled;    // enumerate_events scratch
  std::vector<std::size_t> idx;  // strategy selection scratch
  std::string failed;            // assertion-label scratch
  std::vector<Item*> steal_buf;  // steal-half batch scratch
  std::uint64_t rng;
  // SCC ignoring pass recording (CycleProviso::kScc runs only): the reduced
  // graph's edges and the handles of fully expanded states, merged by
  // ExpansionCore::run_scc_ignoring_pass after the main search.
  std::vector<GraphEdge> edges;
  std::vector<StateHandle> full_handles;
};

// The shared expansion machinery every driver runs on. See the header
// comment for the full contract.
class ExpansionCore {
 public:
  // `visited_mode` is the mode the VisitedSet actually uses (drivers upgrade
  // kExact -> kInterned for parallel runs and kScc searches before handing
  // it over). `n_workers` sizes the worker array (1 for the sequential and
  // replay drivers).
  ExpansionCore(const Protocol& proto, const ExploreConfig& cfg,
                ReductionStrategy* strategy, VisitedMode visited_mode,
                unsigned n_workers);

  [[nodiscard]] WorkerCtx& worker(unsigned i) { return *workers_[i]; }
  [[nodiscard]] const WorkerCtx& worker(unsigned i) const { return *workers_[i]; }
  [[nodiscard]] unsigned n_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  [[nodiscard]] VisitedSet& visited() noexcept { return visited_; }
  [[nodiscard]] const VisitedSet& visited() const noexcept { return visited_; }
  [[nodiscard]] const ExecuteOptions& exec_opts() const noexcept {
    return exec_opts_;
  }
  [[nodiscard]] ReductionStrategy* strategy() const noexcept { return strategy_; }

  // Whether the strategy relies on run_scc_ignoring_pass (drivers then
  // record edges/full marks and invoke the pass after a completed search).
  [[nodiscard]] bool scc_pass_enabled() const noexcept { return scc_enabled_; }

  // Canonicalize (when configured), fingerprint and insert a state,
  // threading the state-graph parent/via/permutation. The single insert
  // behind the root and successor inserts of every driver; `fp_out`
  // receives the canonical fingerprint (the visited key, reused as the
  // terminal fingerprint).
  VisitedInsert insert_canonical(const State& s, StateHandle parent,
                                 const Event* via, Fingerprint* fp_out);

  // The matching membership probe (the visited-set cycle proviso's oracle).
  [[nodiscard]] bool contains_canonical(const State& s) const;

  // Fingerprint of the canonicalized state (terminal fingerprints in
  // stateless searches, where no insert computed one).
  [[nodiscard]] Fingerprint canonical_fingerprint(const State& s) const;

  // Run the strategy over `w.enabled` for state `s`, leaving chosen indices
  // in `w.idx` when a strategy is installed. Returns the selected count and
  // updates st.events_selected / st.full_expansions; `*reduced` reports
  // whether w.idx must be consulted (false = take every enabled event).
  // `on_stack` may be empty (pool driver, SCC pass); `in_visited` is wired
  // to contains_canonical unless `stateless` is set.
  std::size_t select(const State& s, WorkerCtx& w, ExploreStats& st,
                     const std::function<bool(const State&)>& on_stack,
                     bool stateless, bool* reduced);

  // SCC-pass recording (no-ops unless scc_pass_enabled()).
  void record_edge(WorkerCtx& w, StateHandle from, StateHandle to) {
    if (scc_enabled_ && from != kNoHandle && to != kNoHandle) {
      w.edges.push_back({from, to});
    }
  }
  void record_full(WorkerCtx& w, StateHandle h) {
    if (scc_enabled_ && h != kNoHandle) w.full_handles.push_back(h);
  }

  // The SCC-based ignoring fix (Valmari): Tarjan over the edges recorded by
  // every worker; each SCC that contains a cycle but no fully expanded state
  // gets one representative re-expanded with its whole enabled set, and the
  // states that re-expansion discovers are explored on (reduced selection,
  // no cycle proviso, edges recorded) until the graph reaches a fixpoint
  // with no ignored SCC. Grows result.stats (scc_reexpansions counts the
  // representatives) and may flip the verdict if a repaired branch reaches
  // a violation — the counterexample then replays through parent handles.
  // Sequential; drivers call it after their own loop has completed cleanly.
  // `over_time` (may be empty) is the driver's time oracle, polled
  // periodically so the repair phase honours cfg.max_seconds and the
  // wall-clock watchdog like the main loops do; state/memory guards and the
  // event budget are checked inline. A tripped limit stamps the matching
  // verdict (kBudgetExceeded / kResourceLimit) unless a violation won.
  void run_scc_ignoring_pass(ExploreResult& result,
                             std::vector<Fingerprint>& terminals,
                             bool collect_terminals,
                             const std::function<LimitKind()>& over_time);

  // Per-run deltas of the process-wide hash counters and the strategy's
  // monotone proviso-fallback counter; begin_run() is called once by every
  // driver before touching any state, finish_stats() once at the end.
  void begin_run();
  void finish_stats(ExploreStats& st) const;

  [[nodiscard]] const Protocol& proto() const noexcept { return proto_; }
  [[nodiscard]] const ExploreConfig& cfg() const noexcept { return cfg_; }

 private:
  const Protocol& proto_;
  const ExploreConfig& cfg_;
  ReductionStrategy* strategy_;
  ExecuteOptions exec_opts_;
  VisitedSet visited_;
  // Unified canonical hook: wraps cfg.canonicalize_perm (preferred; reports
  // the applied permutation) or cfg.canonicalize (permutation recorded as
  // identity); empty when no symmetry reduction is installed.
  std::function<State(const State&, std::uint32_t&)> canon_;
  std::vector<std::unique_ptr<WorkerCtx>> workers_;
  bool scc_enabled_ = false;
  std::uint64_t hash_passes_at_start_ = 0;
  std::uint64_t hash_queries_at_start_ = 0;
  std::uint64_t fallbacks_at_start_ = 0;
};

// --- drivers ---------------------------------------------------------------

// The shared sequential-driver chassis: pooled state storage, the
// enumerate/execute scratch, budget *and* resource-guard checks, progress
// snapshots, violation recording and the stats finish. Two riders share it —
// SequentialDriver composes it for the stateful/stateless lazy DFS, and the
// DPOR search in por/dpor.cpp rides it for its stateless replay loop — so
// the limit semantics (kBudgetExceeded vs kResourceLimit, guard precedence)
// live in exactly one place. A future replay-based search (e.g. a sleep-set
// DPOR variant) starts from the same contract instead of re-growing its own
// shell.
class StackReplayDriver {
 public:
  // The DPOR form: stateless, no strategy, fingerprint-mode core (the core
  // still provides the Item pool, scratch buffers and stats bookkeeping).
  StackReplayDriver(const Protocol& proto, const ExploreConfig& cfg);
  // The full-control form SequentialDriver rides: its own strategy, visited
  // mode, and statefulness (which decides whether states_stored mirrors the
  // visited set or the visit counter).
  StackReplayDriver(const Protocol& proto, const ExploreConfig& cfg,
                    ReductionStrategy* strategy, VisitedMode visited_mode,
                    bool stateful);

  [[nodiscard]] ExpansionCore& core() noexcept { return core_; }
  [[nodiscard]] WorkerCtx& worker() { return core_.worker(0); }
  [[nodiscard]] const ExecuteOptions& exec_opts() const noexcept {
    return core_.exec_opts();
  }
  [[nodiscard]] ExploreResult& result() noexcept { return result_; }

  // Begin timing; call once before touching any state.
  void start();

  // Property probe: records the verdict/hook and arms done() under
  // stop-at-first semantics. Returns true iff `s` violates a property.
  bool check_violation(const State& s);
  // An in-transition assertion failed during execute().
  void record_assertion(const std::string& label);
  [[nodiscard]] bool done() const noexcept { return done_; }

  // The per-iteration limit check: resource guards first (state cap, memory
  // cap, then — rate-limited — the wall-clock watchdog), budgets second.
  // kNone means keep searching.
  [[nodiscard]] LimitKind over_limit();
  // The time-only oracle (watchdog, then max_seconds), unratelimited; the
  // SCC ignoring pass polls this between repair rounds.
  [[nodiscard]] LimitKind time_limit_kind() const;
  void mark_truncated(LimitKind k) noexcept {
    if (limit_ == LimitKind::kNone) limit_ = k;
  }
  [[nodiscard]] bool truncated() const noexcept {
    return limit_ != LimitKind::kNone;
  }
  void maybe_progress(std::uint64_t frontier);

  // Rebuild the counterexample from the driver's event chain (the shared
  // replay constructor every search mode uses).
  void record_counterexample(std::span<const Event> events);

  // Stamp seconds / states_stored / hash deltas / the limit verdict and
  // sort-unique the terminal fingerprints; returns the finished result.
  [[nodiscard]] ExploreResult finish();

 private:
  [[nodiscard]] double elapsed() const;
  [[nodiscard]] std::uint64_t stored_states() const;

  ExpansionCore core_;
  const Protocol& proto_;
  const ExploreConfig& cfg_;
  const bool stateful_;
  ExploreResult result_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t budget_tick_ = 0;
  LimitKind limit_ = LimitKind::kNone;
  bool done_ = false;
};

// Sequential lazy DFS (stateful and stateless): the frame stack *is* the
// current path, which is what the classic stack cycle proviso, the stateless
// cycle cut and stack-walk counterexamples need. Frames and their chosen
// event lists are recycled by depth (the live prefix of a high-water vector),
// and states live in the core's Item pool — steady-state expansion is
// allocation-free, like the pool driver. The budget/guard/progress/finish
// shell is the StackReplayDriver chassis; this class owns only the DFS loop.
class SequentialDriver {
 public:
  SequentialDriver(const Protocol& proto, const ExploreConfig& cfg,
                   ReductionStrategy* strategy);
  [[nodiscard]] ExploreResult run();

 private:
  struct Frame {
    Item* item = nullptr;
    std::vector<Event> chosen;  // capacity reused across frame reincarnations
    std::size_t n_chosen = 0;
    std::size_t next = 0;
  };

  void push_frame(Item* it, const Fingerprint* canon_fp);
  void record_counterexample(const Event& last);

  StackReplayDriver drv_;
  const Protocol& proto_;
  const ExploreConfig& cfg_;
  const bool stateful_;
  StackSet stack_set_;
  std::vector<Frame> frames_;  // high-water storage; depth_ = live frames
  std::size_t depth_ = 0;
};

// Parallel stateful search: a fixed worker pool over per-worker work-stealing
// deques. Each worker expands successors off the bottom of its own Chase-Lev
// deque (LIFO — the search stays depth-first and cache-warm) and, when it
// runs dry, steals from the top of a random victim's deque (FIFO — a steal
// grabs the shallowest, i.e. largest, open subtree; with
// cfg.steal_half_threshold set, a deep victim loses half its items in one
// visit). A small mutex-guarded global injector seeds the root and absorbs
// overflow from pathologically wide expansions. Termination is an atomic
// outstanding-work counter. See docs/ARCHITECTURE.md for the protocol and
// the schedule-independence argument.
class PoolDriver {
 public:
  PoolDriver(const Protocol& proto, const ExploreConfig& cfg,
             ReductionStrategy* strategy);
  [[nodiscard]] ExploreResult run();

 private:
  // A deque larger than this donates new items to the global injector
  // instead of growing without bound.
  static constexpr std::size_t kInjectorOverflow = 1u << 16;
  // Upper bound on one steal-half batch (bounds the thief-side buffer).
  static constexpr std::size_t kMaxStealBatch = 64;

  void worker(unsigned wid);
  Item* acquire_work(WorkerCtx& me, unsigned wid);
  static void backoff(unsigned& idle);
  void push_work(WorkerCtx& me, Item* succ);
  void expand(Item& item, WorkerCtx& me, ExploreStats& st,
              std::vector<Fingerprint>& terminals);
  void record_violation(const std::string& property, StateHandle parent,
                        const Event& last);
  [[nodiscard]] std::uint64_t frontier_size() const;
  void emit_progress(std::uint64_t global_events);
  // First limit signal wins (guards are checked before budgets at every
  // site, so precedence holds per worker; a cross-worker race between a
  // guard and a budget tripping simultaneously is inherently unordered).
  void signal_limit(LimitKind k);
  void stop() { done_.store(true, std::memory_order_release); }
  [[nodiscard]] bool stopped() const {
    return done_.load(std::memory_order_relaxed);
  }
  // Resource guards on the stored-state side, then the state budget; called
  // after each fresh insert.
  [[nodiscard]] LimitKind state_limit_kind() const;
  // Watchdog first, then the time budget; rate-limited by the caller.
  [[nodiscard]] LimitKind time_limit_kind() const;

  // First-violation trace seed; written once under result_mu_, read after
  // the pool joins.
  struct PendingTrace {
    StateHandle parent = kNoHandle;
    Event last;
    bool armed = false;
  };

  ExpansionCore core_;
  const Protocol& proto_;
  const ExploreConfig& cfg_;
  unsigned threads_;
  PendingTrace pending_;

  mutable std::mutex inj_mu_;
  std::vector<Item*> injector_;  // root seed + overflow donations only
  std::atomic<bool> done_{false};
  std::atomic<std::int64_t> outstanding_{0};  // queued or in-expansion items
  std::atomic<std::uint64_t> events_budget_{0};
  std::atomic<std::uint8_t> limit_{0};  // LimitKind; first signal wins

  std::mutex result_mu_;
  std::mutex hooks_mu_;  // serializes on_progress/on_violation invocations
  ExploreResult result_;
  std::vector<ExploreStats> worker_stats_;
  std::vector<std::vector<Fingerprint>> worker_terminals_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mpb::engine
