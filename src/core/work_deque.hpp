// Chase-Lev work-stealing deque (lock-free, single owner / many thieves).
//
// The parallel explorer gives every worker one of these as its private DFS
// frontier: the owner pushes and pops pointers at the *bottom* (LIFO, so the
// search stays depth-first and cache-warm), thieves CAS items off the *top*
// (FIFO, so a steal grabs the shallowest — largest — subtree, exactly the
// half the old donation heuristic tried to give away). No operation takes a
// lock; the only synchronization is one CAS per steal and per the owner's
// last-element pop.
//
// The implementation follows Chase & Lev (SPAA'05) in the C11 mapping of
// Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13), with one deliberate change:
// the store-load orderings their version gets from seq_cst *fences* are
// expressed here as seq_cst *accesses* on `top`/`bottom`. ThreadSanitizer
// does not model fences (GCC's -Wtsan even rejects them), while seq_cst
// accesses it checks exactly; on x86 the generated code is the same lone
// xchg/mfence in pop. Elements are plain pointers: the deque transfers
// ownership hand-to-hand (each pushed pointer is extracted exactly once, by
// the owner or by one thief), and the release/acquire pairing on
// `bottom`/`top` makes the pointee's prior writes visible to whichever
// thread extracts it.
//
// Buffer growth: the owner copies the live window into a buffer of twice the
// size and publishes it; the old buffer is *retired*, not freed, because a
// slow thief may still read a slot of it (it will then lose its CAS on `top`
// and retry). Retired buffers sum to less than the live buffer's size and
// are freed in the destructor.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

namespace mpb {

template <typename T>
class WorkStealingDeque {
 public:
  // `initial_capacity` is rounded up to a power of two (the ring masks
  // indices with capacity - 1).
  explicit WorkStealingDeque(std::size_t initial_capacity = 256)
      : buf_(new Buffer(std::bit_ceil(std::max<std::size_t>(initial_capacity, 2)))) {}

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  ~WorkStealingDeque() {
    delete buf_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  // Owner only. Never fails: a full buffer grows (amortized O(1)).
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* a = buf_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->mask)) a = grow(a, t, b);
    a->slot(b).store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. nullptr when empty.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* a = buf_.load(std::memory_order_relaxed);
    // The seq_cst store/load pair orders "reserve the bottom slot" before
    // "observe the thieves' top": no thief and the owner can both extract
    // the same last element.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    T* item = nullptr;
    if (t <= b) {
      item = a->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via top.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief got it
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);  // was already empty
    }
    return item;
  }

  // Any thread. nullptr when empty or when the race for the top item was
  // lost (callers just try the next victim).
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* a = buf_.load(std::memory_order_acquire);
    T* item = a->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost to the owner or another thief
    }
    return item;
  }

  // Steal up to `max_n` items in one visit. The batch size is decided from
  // the first consistent top/bottom view — ⌈n/2⌉ of the victim's population,
  // capped at `max_n` — and each item is then claimed by its own top-CAS,
  // i.e. a loop of the single-item protocol above: batching changes the
  // *scheduling* (one victim visit drains half a deep deque, halving steal
  // traffic under high fan-out) but not the memory-safety argument TSan
  // models. A lost CAS ends the batch early; the items already claimed are
  // kept. Returns the number of items written to `out` (0 when the deque is
  // empty or the first race is lost).
  std::size_t steal_batch(T** out, std::size_t max_n) {
    std::size_t got = 0;
    while (got < max_n) {
      std::int64_t t = top_.load(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
      if (t >= b) break;
      if (got == 0) {
        const auto half = static_cast<std::size_t>((b - t + 1) / 2);
        max_n = std::min(max_n, half);
      }
      Buffer* a = buf_.load(std::memory_order_acquire);
      T* item = a->slot(t).load(std::memory_order_relaxed);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        break;  // contention: settle for what was already claimed
      }
      out[got++] = item;
    }
    return got;
  }

  // Approximate population, never negative; for progress snapshots and
  // steal-victim selection only.
  [[nodiscard]] std::size_t size_hint() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t capacity)
        : mask(capacity - 1), slots(new std::atomic<T*>[capacity]) {}
    [[nodiscard]] std::atomic<T*>& slot(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask];
    }
    const std::size_t mask;  // capacity - 1; capacity is a power of two
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  // Owner only: copy the live window [t, b) into a doubled buffer.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* fresh = new Buffer((old->mask + 1) * 2);
    for (std::int64_t i = t; i < b; ++i) {
      fresh->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    retired_.push_back(old);
    buf_.store(fresh, std::memory_order_release);
    return fresh;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buf_;
  std::vector<Buffer*> retired_;  // owner-only; freed in the destructor
};

}  // namespace mpb
