#include "core/enabled.hpp"

#include <algorithm>
#include <cassert>

#include "util/combinatorics.hpp"

namespace mpb {

namespace {

// The deduped pending pool of transition `t` in `s`, grouped by sender:
// groups[i] = (sender, distinct message values from that sender).
struct Pool {
  std::vector<std::pair<ProcessId, std::vector<Message>>> groups;
  [[nodiscard]] unsigned n_senders() const noexcept {
    return static_cast<unsigned>(groups.size());
  }
};

Pool collect_pool(const State& s, const Transition& t) {
  Pool pool;
  const auto [lo, hi] = s.pending_range(t.proc, t.in_type);
  const auto& net = s.network();
  for (std::size_t i = lo; i < hi; ++i) {
    const Message& m = net[i];
    if (!mask_contains(t.allowed_senders, m.sender())) continue;
    // net is sorted, so duplicates are adjacent; skip repeats.
    if (i > lo && net[i] == net[i - 1]) continue;
    if (!pool.groups.empty() && pool.groups.back().first == m.sender()) {
      pool.groups.back().second.push_back(m);
    } else {
      pool.groups.push_back({m.sender(), {m}});
    }
  }
  return pool;
}

void emit_if_enabled(const Protocol& proto, const State& s, const Transition& t,
                     TransitionId tid, std::vector<Message> consumed,
                     std::vector<Event>& out) {
  std::sort(consumed.begin(), consumed.end());
  const ProcessInfo& pi = proto.proc(t.proc);
  const GuardView view{s.local_slice(pi.local_offset, pi.local_len), consumed};
  if (t.guard_holds(view)) {
    out.push_back(Event{tid, std::move(consumed)});
  }
}

}  // namespace

void enumerate_events_of(const Protocol& proto, const State& s, TransitionId tid,
                         std::vector<Event>& out) {
  const Transition& t = proto.transition(tid);

  if (t.arity == kSpontaneous) {
    emit_if_enabled(proto, s, t, tid, {}, out);
    return;
  }

  const Pool pool = collect_pool(s, t);

  if (t.arity == 1) {
    for (const auto& [sender, msgs] : pool.groups) {
      for (const Message& m : msgs) {
        emit_if_enabled(proto, s, t, tid, {m}, out);
      }
    }
    return;
  }

  if (t.arity == kPowersetArity) {
    // General case: every subset of the deduped pool. Flatten first.
    std::vector<Message> flat;
    for (const auto& [sender, msgs] : pool.groups) {
      flat.insert(flat.end(), msgs.begin(), msgs.end());
    }
    for_each_subset(static_cast<unsigned>(flat.size()),
                    [&](std::span<const unsigned> idx) {
                      if (idx.empty()) return true;  // X must be non-empty
                      std::vector<Message> consumed;
                      consumed.reserve(idx.size());
                      for (unsigned i : idx) consumed.push_back(flat[i]);
                      emit_if_enabled(proto, s, t, tid, std::move(consumed), out);
                      return true;
                    });
    return;
  }

  // Exact quorum of q distinct senders (Def. 2): choose q sender groups, then
  // one pending message per chosen sender.
  const auto q = static_cast<unsigned>(t.arity);
  if (pool.n_senders() < q) return;
  for_each_combination(pool.n_senders(), q, [&](std::span<const unsigned> senders) {
    std::vector<unsigned> sizes(q);
    for (unsigned j = 0; j < q; ++j) {
      sizes[j] = static_cast<unsigned>(pool.groups[senders[j]].second.size());
    }
    for_each_product(sizes, [&](std::span<const unsigned> choice) {
      std::vector<Message> consumed;
      consumed.reserve(q);
      for (unsigned j = 0; j < q; ++j) {
        consumed.push_back(pool.groups[senders[j]].second[choice[j]]);
      }
      emit_if_enabled(proto, s, t, tid, std::move(consumed), out);
      return true;
    });
    return true;
  });
}

std::vector<Event> enumerate_events(const Protocol& proto, const State& s) {
  std::vector<Event> out;
  enumerate_events(proto, s, out);
  return out;
}

void enumerate_events(const Protocol& proto, const State& s,
                      std::vector<Event>& out) {
  out.clear();
  for (TransitionId tid = 0; tid < proto.n_transitions(); ++tid) {
    enumerate_events_of(proto, s, tid, out);
  }
}

bool transition_enabled(const Protocol& proto, const State& s, TransitionId tid) {
  std::vector<Event> out;
  enumerate_events_of(proto, s, tid, out);
  return !out.empty();
}

bool pool_insufficient(const Protocol& proto, const State& s, TransitionId tid) {
  const Transition& t = proto.transition(tid);
  if (t.arity == kSpontaneous) return false;  // never lacks messages
  const Pool pool = collect_pool(s, t);
  if (t.arity == kPowersetArity || t.arity == 1) return pool.groups.empty();
  return pool.n_senders() < static_cast<unsigned>(t.arity);
}

}  // namespace mpb
