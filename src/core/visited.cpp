#include "core/visited.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#if __has_include(<malloc.h>)
#include <malloc.h>
#define MPB_HAVE_MALLOC_USABLE_SIZE 1
#endif

namespace mpb {

std::string_view to_string(VisitedMode m) noexcept {
  switch (m) {
    case VisitedMode::kExact: return "exact";
    case VisitedMode::kFingerprint: return "fingerprint";
    case VisitedMode::kInterned: return "interned";
    case VisitedMode::kCollapse: return "collapse";
  }
  return "?";
}

std::optional<VisitedMode> visited_mode_from_string(std::string_view name) noexcept {
  if (name == "exact") return VisitedMode::kExact;
  if (name == "fingerprint") return VisitedMode::kFingerprint;
  if (name == "interned") return VisitedMode::kInterned;
  if (name == "collapse") return VisitedMode::kCollapse;
  return std::nullopt;
}

namespace {
constexpr std::size_t kInitialSlots = 64;  // per shard; power of two

constexpr unsigned kHandleShardBits = 16;
constexpr unsigned kHandleIndexBits = 64 - kHandleShardBits;
constexpr std::uint64_t kHandleIndexMask =
    (std::uint64_t{1} << kHandleIndexBits) - 1;

// Slot-value sentinels (see the Slot comment in the header). Payloads can
// never collide with them: fingerprint payloads are remapped below, interned
// payloads are arena indices + 1, far below 2^63.
constexpr std::uint64_t kClaimed = ~std::uint64_t{0};
constexpr std::uint64_t kFrozen = ~std::uint64_t{0} - 1;

[[nodiscard]] constexpr StateHandle make_handle(std::size_t shard,
                                                std::uint64_t index) noexcept {
  return (static_cast<std::uint64_t>(shard) << kHandleIndexBits) | index;
}

// Fingerprint-mode slots store val = fp.hi remapped away from the empty
// marker 0 and the claim/frozen sentinels (the remap folds a 3/2^64 sliver of
// fingerprint space onto a neighbour — same failure class, and far rarer,
// than a fingerprint collision itself).
[[nodiscard]] constexpr std::uint64_t occupied_val(std::uint64_t hi) noexcept {
  return (hi == 0 || hi >= kFrozen) ? 1 : hi;
}

// Bounded busy-wait while a claimed slot publishes or a migration installs
// the new table. Publication is a handful of stores (plus one state copy in
// interned mode), so the x86 pause fast path almost always suffices; yield
// keeps an oversubscribed box from burning a whole quantum.
inline void spin_pause(unsigned& spins) noexcept {
  if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    std::this_thread::yield();
    spins = 0;
  }
}

// Arena geometry: chunk c holds kArenaFirstChunk << c nodes starting at
// index kArenaFirstChunk * (2^c - 1).
struct ArenaPos {
  std::size_t chunk;
  std::size_t offset;
};

[[nodiscard]] constexpr ArenaPos arena_pos(std::uint64_t index,
                                           std::size_t first_chunk) noexcept {
  const std::uint64_t q = index / first_chunk + 1;
  const auto chunk = static_cast<std::size_t>(std::bit_width(q) - 1);
  const std::uint64_t start = first_chunk * ((std::uint64_t{1} << chunk) - 1);
  return {chunk, static_cast<std::size_t>(index - start)};
}

// Collapse arena geometry: geometric up to 16Ki-node chunks, constant-size
// afterwards. Pure geometric growth would leave up to a whole allocation of
// over-committed tail (~2x the used bytes mid-chunk) and make the newest —
// never evictable — chunk of a spilling run arbitrarily large; capping the
// chunk size bounds both by one chunk while the ramp keeps tiny runs tiny.
constexpr std::size_t kCArenaFirst = 256;  // == ShardedVisited::kArenaFirstChunk
constexpr std::size_t kCArenaGeomChunks = 7;  // chunks 0..6 hold 256 << c
constexpr std::size_t kCArenaChunkNodes =
    kCArenaFirst << (kCArenaGeomChunks - 1);  // 16384 nodes
constexpr std::uint64_t kCArenaGeomNodes =
    kCArenaFirst * ((std::uint64_t{1} << kCArenaGeomChunks) - 1);  // 32512

[[nodiscard]] constexpr ArenaPos carena_pos(std::uint64_t index) noexcept {
  if (index < kCArenaGeomNodes) return arena_pos(index, kCArenaFirst);
  const std::uint64_t rest = index - kCArenaGeomNodes;
  return {kCArenaGeomChunks +
              static_cast<std::size_t>(rest / kCArenaChunkNodes),
          static_cast<std::size_t>(rest % kCArenaChunkNodes)};
}

[[nodiscard]] constexpr std::size_t carena_chunk_nodes(
    std::size_t chunk) noexcept {
  return chunk < kCArenaGeomChunks ? kCArenaFirst << chunk
                                   : kCArenaChunkNodes;
}

// Collapse-slot words (see CTable in the header). Sentinels live in the
// value half; published values are arena index + 1, capped far below by the
// arena's ~33M-node shard capacity.
constexpr std::uint32_t kCClaimed = 0xFFFFFFFFu;
constexpr std::uint64_t kCFrozenWord = 0xFFFFFFFEull;  // key half 0

[[nodiscard]] constexpr std::uint64_t cslot_word(std::uint32_t key,
                                                 std::uint32_t val) noexcept {
  return (std::uint64_t{key} << 32) | val;
}

// Published collapse-slot value -> 48-bit arena index: bit 31 carries the
// wide-lane flag (== ShardedVisited::kWideBit in the index).
constexpr std::uint64_t kCWideBit = std::uint64_t{1} << 47;

[[nodiscard]] constexpr std::uint64_t cval_index(std::uint32_t val) noexcept {
  const std::uint64_t idx = (val & 0x7FFFFFFFu) - 1;
  return (val & 0x80000000u) ? (kCWideBit | idx) : idx;
}

// True size of one heap allocation backing `p` — the payload the allocator
// actually carved out, not just the bytes requested (glibc rounds requests
// up to its chunk granularity). Exact accounting wants the former; where the
// allocator cannot be asked, fall back to the requested size.
[[nodiscard]] std::uint64_t heap_block_bytes(
    const void* p, [[maybe_unused]] std::uint64_t requested) noexcept {
  if (p == nullptr) return 0;
#ifdef MPB_HAVE_MALLOC_USABLE_SIZE
  return malloc_usable_size(const_cast<void*>(p));
#else
  return requested;
#endif
}

[[nodiscard]] constexpr std::uint32_t align8(std::uint32_t n) noexcept {
  return (n + 7u) & ~7u;
}

// Per-thread scratch for collapse-mode component encoding; reused across
// insert/contains calls, never held across them.
thread_local std::vector<std::byte> tls_blob_buf;
thread_local std::vector<std::uint32_t> tls_tuple;
}  // namespace

ShardedVisited::ShardedVisited(VisitedMode mode, unsigned shards)
    : ShardedVisited(mode, shards, CollapseLayout{}, SpillConfig{}) {}

ShardedVisited::ShardedVisited(VisitedMode mode, unsigned shards,
                               CollapseLayout layout, SpillConfig spill)
    : mode_(mode),
      shards_(std::bit_ceil(std::min(std::max(shards, 1u), 1024u))),
      layout_(std::move(layout)) {
  // carena_pos/cval_index mirror these with file-local constants.
  static_assert(kArenaFirstChunk == kCArenaFirst);
  static_assert(kWideBit == kCWideBit);
  if (mode_ == VisitedMode::kCollapse) {
    width_ = layout_.width();
    static_assert(sizeof(NNode) == 12 && alignof(NNode) == 4);
    nstride_ = (static_cast<std::uint32_t>(sizeof(NNode)) + 2u * width_ + 3u) &
               ~3u;
    wstride_ = align8(static_cast<std::uint32_t>(sizeof(CNode)) +
                      4u * width_);
    store_ = std::make_unique<ChunkStore>(std::move(spill));
    locals_blobs_ = std::make_unique<BlobStore>(*store_);
    channel_blobs_ = std::make_unique<BlobStore>(*store_);
    event_blobs_ = std::make_unique<BlobStore>(*store_);
    for (Shard& sh : shards_) {
      sh.ctable.store(new CTable(kInitialSlots), std::memory_order_relaxed);
      sh.cchunks.reset(new std::atomic<std::byte*>[kCArenaMaxChunks]());
    }
    bytes_.fetch_add(
        shards_.size() * kInitialSlots * sizeof(std::atomic<std::uint64_t>),
        std::memory_order_relaxed);
  } else {
    for (Shard& sh : shards_) {
      sh.table.store(new Table(kInitialSlots), std::memory_order_relaxed);
    }
    bytes_.fetch_add(shards_.size() * kInitialSlots * sizeof(Slot),
                     std::memory_order_relaxed);
  }
}

ShardedVisited::~ShardedVisited() {
  for (Shard& sh : shards_) {
    delete sh.table.load(std::memory_order_relaxed);
    delete sh.ctable.load(std::memory_order_relaxed);
    for (Table* t : sh.retired) delete t;
    for (CTable* t : sh.cretired) delete t;
    for (std::atomic<Node*>& c : sh.chunks) {
      delete[] c.load(std::memory_order_relaxed);
    }
    // cchunks / wchunks point into the ChunkStore, which owns them.
  }
}

ShardedVisited::Node* ShardedVisited::arena_node(const Shard& sh,
                                                 std::uint64_t index) const {
  const ArenaPos pos = arena_pos(index, kArenaFirstChunk);
  Node* base = sh.chunks[pos.chunk].load(std::memory_order_acquire);
  return base == nullptr ? nullptr : base + pos.offset;
}

std::uint64_t ShardedVisited::arena_alloc(Shard& sh) {
  const std::uint64_t index =
      sh.arena_next.fetch_add(1, std::memory_order_relaxed);
  const ArenaPos pos = arena_pos(index, kArenaFirstChunk);
  std::atomic<Node*>& slot = sh.chunks[pos.chunk];
  if (slot.load(std::memory_order_acquire) == nullptr) {
    // First visitor of this chunk allocates it; a losing racer frees its copy.
    Node* fresh = new Node[kArenaFirstChunk << pos.chunk];
    Node* expected = nullptr;
    if (slot.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      bytes_.fetch_add((kArenaFirstChunk << pos.chunk) * sizeof(Node),
                       std::memory_order_relaxed);
    } else {
      delete[] fresh;
    }
  }
  return index;
}

std::byte* ShardedVisited::carena_ptr(const Shard& sh,
                                      std::uint64_t index48) const {
  if (index48 & kWideBit) {
    const ArenaPos pos = arena_pos(index48 & (kWideBit - 1), kArenaFirstChunk);
    std::byte* base = sh.wchunks[pos.chunk].load(std::memory_order_acquire);
    return base == nullptr ? nullptr : base + pos.offset * wstride_;
  }
  const ArenaPos pos = carena_pos(index48);
  std::byte* base = sh.cchunks[pos.chunk].load(std::memory_order_acquire);
  return base == nullptr ? nullptr : base + pos.offset * nstride_;
}

std::uint64_t ShardedVisited::carena_alloc(Shard& sh, bool wide) {
  auto& next = wide ? sh.warena_next : sh.arena_next;
  const std::uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
  const ArenaPos pos =
      wide ? arena_pos(index, kArenaFirstChunk) : carena_pos(index);
  if (!wide && pos.chunk >= kCArenaMaxChunks) {
    // ~33M nodes per shard. Unreachable under the default resource guards;
    // a run this size wants more shards (--visited-shards / more threads).
    std::fprintf(stderr,
                 "mpb: collapse arena shard capacity exceeded "
                 "(raise visited_shards)\n");
    std::abort();
  }
  std::atomic<std::byte*>& slot =
      wide ? sh.wchunks[pos.chunk] : sh.cchunks[pos.chunk];
  if (slot.load(std::memory_order_acquire) == nullptr) {
    // ChunkStore chunks cannot be handed back, so chunk creation is mutex-
    // serialized (double-checked) instead of CAS-raced. chunk_mu is leaf-
    // level: nothing else is acquired under it, so a publisher blocked here
    // cannot deadlock a concurrent grow() spinning on its claimed slot.
    std::lock_guard<std::mutex> lock(sh.chunk_mu);
    if (slot.load(std::memory_order_relaxed) == nullptr) {
      const std::size_t nodes =
          wide ? (kArenaFirstChunk << pos.chunk) : carena_chunk_nodes(pos.chunk);
      slot.store(
          store_->alloc_chunk(nodes * (wide ? wstride_ : nstride_),
                              /*spillable=*/true),
          std::memory_order_release);
    }
  }
  return wide ? (kWideBit | index) : index;
}

ShardedVisited::CNodeView ShardedVisited::cview(const Shard& sh,
                                                std::uint64_t index48) const {
  CNodeView v;
  const std::byte* p = carena_ptr(sh, index48);
  if (p == nullptr) return v;
  if (index48 & kWideBit) {
    const auto* n = reinterpret_cast<const CNode*>(p);
    v = {n->parent, n->event, n->perm, true, p + sizeof(CNode)};
    return v;
  }
  const auto* n = reinterpret_cast<const NNode*>(p);
  StateHandle parent = kNoHandle;
  if (!(n->parent_idx == 0xFFFFFFFFu && n->parent_shard == 0xFFFFu)) {
    const std::uint64_t pidx =
        (n->parent_idx & 0x80000000u)
            ? (kWideBit | (n->parent_idx & 0x7FFFFFFFu))
            : n->parent_idx;
    parent = make_handle(n->parent_shard, pidx);
  }
  v = {parent, n->event, n->perm, false, p + sizeof(NNode)};
  return v;
}

bool ShardedVisited::tuple_matches(const CNodeView& v,
                                   const std::uint32_t* probe) const noexcept {
  if (v.wide) {
    return std::memcmp(v.tuple, probe, width_ * sizeof(std::uint32_t)) == 0;
  }
  const auto* t16 = reinterpret_cast<const std::uint16_t*>(v.tuple);
  for (std::uint32_t k = 0; k < width_; ++k) {
    // Stored values are < 0xFFFF by narrow eligibility, so an over-u16
    // probe word mismatches automatically.
    if (t16[k] != probe[k]) return false;
  }
  return true;
}

bool ShardedVisited::build_tuple(const State& s, bool intern_missing,
                                 std::uint32_t* out) const {
  unsigned w = 0;
  const auto put = [&](BlobStore& store, const std::byte* data,
                       std::size_t len) -> bool {
    const auto n = static_cast<std::uint32_t>(len);
    const std::uint32_t idx =
        intern_missing ? store.intern(data, n) : store.find(data, n);
    if (idx == BlobStore::kNoBlob) return false;
    out[w++] = idx;
    return true;
  };
  // Locals components: raw Value arrays (no padding), one per layout slice.
  if (layout_.locals.empty()) {
    const std::span<const Value> loc = s.locals();
    if (!put(*locals_blobs_, reinterpret_cast<const std::byte*>(loc.data()),
             loc.size() * sizeof(Value))) {
      return false;
    }
  } else {
    for (const auto& [off, len] : layout_.locals) {
      const std::span<const Value> sl = s.local_slice(off, len);
      if (!put(*locals_blobs_, reinterpret_cast<const std::byte*>(sl.data()),
               sl.size() * sizeof(Value))) {
        return false;
      }
    }
  }
  // Channel components: the per-receiver runs of the sorted network multiset
  // (contiguous because Message orders by receiver first). Concatenating the
  // runs in receiver order reproduces the sorted multiset exactly.
  std::vector<std::byte>& buf = tls_blob_buf;
  const std::vector<Message>& net = s.network();
  const std::uint32_t R = layout_.n_receivers == 0 ? 1 : layout_.n_receivers;
  std::size_t i = 0;
  for (std::uint32_t r = 0; r < R; ++r) {
    buf.clear();
    // The last component also absorbs any receiver beyond the layout, so the
    // split is total no matter what the layout says.
    while (i < net.size() && (net[i].receiver() == r || r + 1 == R)) {
      encode_message(net[i], buf);
      ++i;
    }
    if (!put(*channel_blobs_, buf.data(), buf.size())) return false;
  }
  return true;
}

ShardedVisited::TryInsert ShardedVisited::try_insert(
    Shard& sh, std::size_t shard_idx, Table& t, const State& s,
    std::uint64_t key, std::uint64_t fp_val, StateHandle parent,
    const Event* via, std::uint32_t perm, VisitedInsert& out) {
  const std::size_t mask = t.mask;
  std::size_t i = static_cast<std::size_t>(key) & mask;
  // Every slot this probe visits resolves to published-or-frozen before we
  // move on, so visiting all capacity slots without a match, an empty or a
  // frozen one proves the table is completely full of other entries.
  std::size_t probes = 0;
  for (;;) {
    if (probes++ > mask) return TryInsert::kTableFull;
    Slot& slot = t.slots[i];
    std::uint64_t v = slot.val.load(std::memory_order_acquire);
    unsigned spins = 0;
    // Resolve this slot to frozen / published / ours.
    for (;;) {
      if (v == kFrozen) {
        return TryInsert::kRetryFrozen;  // migration sealed it: new table
      }
      if (v == kClaimed) {             // another inserter is publishing
        spin_pause(spins);
        v = slot.val.load(std::memory_order_acquire);
        continue;
      }
      if (v == 0) {
        std::uint64_t expected = 0;
        if (slot.val.compare_exchange_weak(expected, kClaimed,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          // Claimed. Write the key (and, interned, the whole node) before the
          // release-store below makes the slot visible to other probes.
          slot.key.store(key, std::memory_order_relaxed);
          if (mode_ == VisitedMode::kFingerprint) {
            slot.val.store(fp_val, std::memory_order_release);
            out = {true, kNoHandle};
          } else {
            const std::uint64_t index = arena_alloc(sh);
            Node* n = arena_node(sh, index);
            n->s = s;
            if (via != nullptr) n->in_event = *via;
            n->parent = parent;
            n->perm = perm;
            slot.val.store(index + 1, std::memory_order_release);
            out = {true, make_handle(shard_idx, index)};
          }
          t.count.fetch_add(1, std::memory_order_relaxed);
          return TryInsert::kDone;
        }
        v = expected;  // lost the claim; re-resolve with the fresh value
        continue;
      }
      break;  // a published payload
    }
    // Published entry: equal means present (first writer wins).
    if (slot.key.load(std::memory_order_relaxed) == key) {
      if (mode_ == VisitedMode::kFingerprint) {
        if (v == fp_val) {
          out = {false, kNoHandle};
          return TryInsert::kDone;
        }
      } else {
        const Node* n = arena_node(sh, v - 1);
        if (n->s == s) {
          out = {false, make_handle(shard_idx, v - 1)};
          return TryInsert::kDone;
        }
      }
    }
    i = (i + 1) & mask;
  }
}

ShardedVisited::TryInsert ShardedVisited::ctry_insert(
    Shard& sh, std::size_t shard_idx, CTable& t, const std::uint32_t* tuple,
    std::uint32_t key32, StateHandle parent, const Event* via,
    std::uint32_t perm, VisitedInsert& out) {
  const std::size_t mask = t.mask;
  std::size_t i = key32 & mask;
  std::size_t probes = 0;
  for (;;) {
    if (probes++ > mask) return TryInsert::kTableFull;
    std::atomic<std::uint64_t>& slot = t.slots[i];
    std::uint64_t v = slot.load(std::memory_order_acquire);
    unsigned spins = 0;
    // Resolve this slot to frozen / published / foreign-claim / ours.
    for (;;) {
      if (v == kCFrozenWord) return TryInsert::kRetryFrozen;
      if (static_cast<std::uint32_t>(v) == kCClaimed) {
        // The claim already carries its key, so only a claim with *our* key
        // can be publishing our state; any other claim is just an occupied
        // slot and the probe moves on without spinning.
        if ((v >> 32) != key32) break;
        spin_pause(spins);
        v = slot.load(std::memory_order_acquire);
        continue;
      }
      if (v == 0) {
        std::uint64_t expected = 0;
        if (slot.compare_exchange_weak(expected, cslot_word(key32, kCClaimed),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
          // Claimed. Write the whole node, then publish key and arena index
          // in one release-store. Narrow when every value fits u16; the
          // wide lane takes the overflow (kWideBit marks it in both the
          // index and the slot value's top bit).
          std::uint32_t event = 0;
          if (via != nullptr) {
            std::vector<std::byte>& buf = tls_blob_buf;
            buf.clear();
            encode_event(*via, buf);
            event = event_blobs_->intern(
                        buf.data(), static_cast<std::uint32_t>(buf.size())) +
                    1;
          }
          bool narrow = perm < 0xFFFFu;
          for (std::uint32_t k = 0; narrow && k < width_; ++k) {
            narrow = tuple[k] < 0xFFFFu;
          }
          const std::uint64_t index48 = carena_alloc(sh, !narrow);
          std::byte* p = carena_ptr(sh, index48);
          if (narrow) {
            auto* n = new (p) NNode;
            if (parent == kNoHandle) {
              n->parent_idx = 0xFFFFFFFFu;
              n->parent_shard = 0xFFFFu;
            } else {
              const std::uint64_t pidx = parent & kHandleIndexMask;
              n->parent_idx =
                  (pidx & kWideBit)
                      ? (0x80000000u |
                         static_cast<std::uint32_t>(pidx & (kWideBit - 1)))
                      : static_cast<std::uint32_t>(pidx);
              n->parent_shard =
                  static_cast<std::uint16_t>(parent >> kHandleIndexBits);
            }
            n->perm = static_cast<std::uint16_t>(perm);
            n->event = event;
            auto* t16 = reinterpret_cast<std::uint16_t*>(p + sizeof(NNode));
            for (std::uint32_t k = 0; k < width_; ++k) {
              t16[k] = static_cast<std::uint16_t>(tuple[k]);
            }
          } else {
            auto* n = new (p) CNode;
            n->parent = parent;
            n->perm = perm;
            n->event = event;
            std::memcpy(p + sizeof(CNode), tuple,
                        width_ * sizeof(std::uint32_t));
          }
          const std::uint32_t val =
              static_cast<std::uint32_t>(index48 & (kWideBit - 1)) + 1 +
              ((index48 & kWideBit) ? 0x80000000u : 0u);
          slot.store(cslot_word(key32, val), std::memory_order_release);
          out = {true, make_handle(shard_idx, index48)};
          t.count.fetch_add(1, std::memory_order_relaxed);
          return TryInsert::kDone;
        }
        v = expected;  // lost the claim; re-resolve with the fresh value
        continue;
      }
      break;  // a published payload
    }
    // Published (or foreign-claimed) entry: on a key match the tuple compare
    // decides — tuple equality <=> state equality because components intern
    // exactly once.
    if ((v >> 32) == key32 && static_cast<std::uint32_t>(v) != kCClaimed) {
      const std::uint64_t index48 = cval_index(static_cast<std::uint32_t>(v));
      if (tuple_matches(cview(sh, index48), tuple)) {
        out = {false, make_handle(shard_idx, index48)};
        return TryInsert::kDone;
      }
    }
    i = (i + 1) & mask;
  }
}

void ShardedVisited::grow(Shard& sh, Table* old) {
  std::lock_guard<std::mutex> lock(sh.grow_mu);
  if (sh.table.load(std::memory_order_relaxed) != old) return;  // already done

  const std::size_t old_cap = old->mask + 1;
  auto* fresh = new Table(old_cap * 2);
  bytes_.fetch_add(old_cap * 2 * sizeof(Slot), std::memory_order_relaxed);
  std::size_t copied = 0;
  for (std::size_t i = 0; i <= old->mask; ++i) {
    Slot& slot = old->slots[i];
    unsigned spins = 0;
    for (;;) {
      std::uint64_t v = slot.val.load(std::memory_order_acquire);
      if (v == kClaimed) {  // wait for the in-flight publish, then migrate it
        spin_pause(spins);
        continue;
      }
      if (v == 0) {
        // Seal the empty slot so no new claim can land behind our back; a
        // racing claim simply wins the CAS and we re-resolve.
        if (slot.val.compare_exchange_weak(v, kFrozen,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          break;
        }
        continue;
      }
      // Published payload: re-slot it in the new table. No other thread can
      // touch `fresh` until the release-store installs it, so plain relaxed
      // stores suffice here.
      const std::uint64_t key = slot.key.load(std::memory_order_relaxed);
      std::size_t j = static_cast<std::size_t>(key) & fresh->mask;
      while (fresh->slots[j].val.load(std::memory_order_relaxed) != 0) {
        j = (j + 1) & fresh->mask;
      }
      fresh->slots[j].key.store(key, std::memory_order_relaxed);
      fresh->slots[j].val.store(v, std::memory_order_relaxed);
      ++copied;
      break;
    }
  }
  fresh->count.store(copied, std::memory_order_relaxed);
  sh.table.store(fresh, std::memory_order_release);
  if (serial_.load(std::memory_order_relaxed)) {
    // Serial search: no concurrent probe can be walking the old table.
    bytes_.fetch_sub(old_cap * sizeof(Slot), std::memory_order_relaxed);
    delete old;
  } else {
    // Old tables are retired, not freed: concurrent probes may still be
    // walking them. Their sizes form a geometric series bounded by the live
    // table.
    sh.retired.push_back(old);
  }
}

void ShardedVisited::cgrow(Shard& sh, CTable* old) {
  std::lock_guard<std::mutex> lock(sh.grow_mu);
  if (sh.ctable.load(std::memory_order_relaxed) != old) return;  // already done

  const std::size_t old_cap = old->mask + 1;
  auto* fresh = new CTable(old_cap * 2);
  bytes_.fetch_add(old_cap * 2 * sizeof(std::atomic<std::uint64_t>),
                   std::memory_order_relaxed);
  std::size_t copied = 0;
  for (std::size_t i = 0; i <= old->mask; ++i) {
    std::atomic<std::uint64_t>& slot = old->slots[i];
    unsigned spins = 0;
    for (;;) {
      std::uint64_t v = slot.load(std::memory_order_acquire);
      if (static_cast<std::uint32_t>(v) == kCClaimed) {
        spin_pause(spins);  // wait for the in-flight publish, then migrate it
        continue;
      }
      if (v == 0) {
        // Seal the empty slot so no new claim can land behind our back.
        if (slot.compare_exchange_weak(v, kCFrozenWord,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
          break;
        }
        continue;
      }
      // Published: re-slot by the stored key (the probe position derives
      // from the key alone, which is why the key must seed the probe).
      const auto key = static_cast<std::uint32_t>(v >> 32);
      std::size_t j = key & fresh->mask;
      while (fresh->slots[j].load(std::memory_order_relaxed) != 0) {
        j = (j + 1) & fresh->mask;
      }
      fresh->slots[j].store(v, std::memory_order_relaxed);
      ++copied;
      break;
    }
  }
  fresh->count.store(copied, std::memory_order_relaxed);
  sh.ctable.store(fresh, std::memory_order_release);
  if (serial_.load(std::memory_order_relaxed)) {
    bytes_.fetch_sub(old_cap * sizeof(std::atomic<std::uint64_t>),
                     std::memory_order_relaxed);
    delete old;
  } else {
    sh.cretired.push_back(old);
  }
}

VisitedInsert ShardedVisited::insert(const State& s, const Fingerprint& fp,
                                     StateHandle parent, const Event* via,
                                     std::uint32_t perm) {
  const std::size_t shard_idx = fp.hi & (shards_.size() - 1);
  Shard& sh = shards_[shard_idx];
  VisitedInsert out;
  unsigned spins = 0;
  if (mode_ == VisitedMode::kCollapse) {
    // Intern the components up front: for a fresh state this is the insert's
    // real work, for a duplicate every intern() is a pure lookup returning
    // the existing index.
    tls_tuple.resize(width_);
    build_tuple(s, /*intern_missing=*/true, tls_tuple.data());
    // Probe by fp.lo's top half: the shard index eats fp.hi bits and the
    // bottom half would correlate probe starts across table sizes.
    const auto key32 = static_cast<std::uint32_t>(fp.lo >> 32);
    for (;;) {
      CTable* t = sh.ctable.load(std::memory_order_acquire);
      const TryInsert r = ctry_insert(sh, shard_idx, *t, tls_tuple.data(),
                                      key32, parent, via, perm, out);
      if (r == TryInsert::kDone) break;
      if (r == TryInsert::kTableFull) {
        cgrow(sh, t);
        continue;
      }
      spin_pause(spins);  // kRetryFrozen: a migration is installing the table
    }
    if (out.inserted) {
      total_.fetch_add(1, std::memory_order_relaxed);
      CTable* t = sh.ctable.load(std::memory_order_acquire);
      if ((t->count.load(std::memory_order_relaxed) + 1) * 10 >=
          (t->mask + 1) * 7) {
        cgrow(sh, t);
      }
    }
    return out;
  }
  const std::uint64_t key = fp.lo;
  const std::uint64_t fp_val = occupied_val(fp.hi);
  for (;;) {
    Table* t = sh.table.load(std::memory_order_acquire);
    const TryInsert r =
        try_insert(sh, shard_idx, *t, s, key, fp_val, parent, via, perm, out);
    if (r == TryInsert::kDone) break;
    if (r == TryInsert::kTableFull) {
      // A claim burst outran the grow threshold and filled the table before
      // any migration froze it. Drive the growth ourselves (grow() is
      // idempotent per table: the mutex + identity check make extra callers
      // no-ops) instead of spinning on a table that can never admit us.
      grow(sh, t);
      continue;
    }
    spin_pause(spins);  // kRetryFrozen: a migration is installing the table
  }
  if (out.inserted) {
    total_.fetch_add(1, std::memory_order_relaxed);
    // Slot tables and arena chunks are charged at allocation (ctor, grow,
    // arena_alloc, ChunkStore); the only per-insert cost left is the interned
    // node's out-of-line heap payload — measured off the *stored* node's own
    // buffers at allocator granularity (heap_block_bytes), so the guard sees
    // what the allocator really carved out, not just the requested bytes.
    if (mode_ == VisitedMode::kInterned) {
      const Node* n = node_at(out.handle);
      const std::uint64_t b =
          heap_block_bytes(n->s.locals().data(),
                           n->s.locals().size() * sizeof(Value)) +
          heap_block_bytes(n->s.network().data(),
                           n->s.network().size() * sizeof(Message)) +
          heap_block_bytes(n->in_event.consumed.data(),
                           n->in_event.consumed.size() * sizeof(Message));
      bytes_.fetch_add(b, std::memory_order_relaxed);
    }
    Table* t = sh.table.load(std::memory_order_acquire);
    if ((t->count.load(std::memory_order_relaxed) + 1) * 10 >=
        (t->mask + 1) * 7) {
      grow(sh, t);
    }
  }
  return out;
}

bool ShardedVisited::contains(const State& s, const Fingerprint& fp) const {
  const Shard& sh = shards_[fp.hi & (shards_.size() - 1)];
  // Entries are never removed and a probe chain never crosses a slot that was
  // empty when its entries were inserted, so one table snapshot is enough: a
  // frozen slot was empty at freeze time and reads as "absent" (any entry
  // inserted later lives in a newer table, concurrent with this lookup).
  if (mode_ == VisitedMode::kCollapse) {
    // A lookup never interns. If any component is absent from its blob store
    // the state cannot have been inserted (an insert publishes its
    // components before its slot), so absence is a sound "not visited".
    tls_tuple.resize(width_);
    if (!build_tuple(s, /*intern_missing=*/false, tls_tuple.data())) {
      return false;
    }
    const auto key32 = static_cast<std::uint32_t>(fp.lo >> 32);
    const CTable* t = sh.ctable.load(std::memory_order_acquire);
    std::size_t i = key32 & t->mask;
    std::size_t probes = 0;
    for (;;) {
      if (probes++ > t->mask) return false;
      std::uint64_t v = t->slots[i].load(std::memory_order_acquire);
      unsigned spins = 0;
      // Only a claim carrying our key could be the sought state mid-publish.
      while (static_cast<std::uint32_t>(v) == kCClaimed &&
             (v >> 32) == key32) {
        spin_pause(spins);
        v = t->slots[i].load(std::memory_order_acquire);
      }
      if (v == 0 || v == kCFrozenWord) return false;
      if ((v >> 32) == key32 && static_cast<std::uint32_t>(v) != kCClaimed) {
        const std::uint64_t index48 =
            cval_index(static_cast<std::uint32_t>(v));
        if (tuple_matches(cview(sh, index48), tls_tuple.data())) return true;
      }
      i = (i + 1) & t->mask;
    }
  }
  const std::uint64_t key = fp.lo;
  const std::uint64_t fp_val = occupied_val(fp.hi);
  const Table* t = sh.table.load(std::memory_order_acquire);
  std::size_t i = static_cast<std::size_t>(key) & t->mask;
  std::size_t probes = 0;
  for (;;) {
    if (probes++ > t->mask) return false;  // wrapped a completely full table
    const Slot& slot = t->slots[i];
    std::uint64_t v = slot.val.load(std::memory_order_acquire);
    unsigned spins = 0;
    while (v == kClaimed) {  // could be the sought key mid-publish: wait
      spin_pause(spins);
      v = slot.val.load(std::memory_order_acquire);
    }
    if (v == 0 || v == kFrozen) return false;
    if (slot.key.load(std::memory_order_relaxed) == key) {
      if (mode_ == VisitedMode::kFingerprint) {
        if (v == fp_val) return true;
      } else {
        const Node* n = arena_node(sh, v - 1);
        if (n->s == s) return true;
      }
    }
    i = (i + 1) & t->mask;
  }
}

const ShardedVisited::Node* ShardedVisited::node_at(StateHandle h) const {
  if (h == kNoHandle || mode_ != VisitedMode::kInterned) return nullptr;
  const std::size_t shard_idx = static_cast<std::size_t>(h >> kHandleIndexBits);
  const std::uint64_t index = h & kHandleIndexMask;
  if (shard_idx >= shards_.size()) return nullptr;
  const Shard& sh = shards_[shard_idx];
  if (index >= sh.arena_next.load(std::memory_order_acquire)) return nullptr;
  // Handles only escape through published slots or insert results, both of
  // which happen after the node's fields are fully written; the node is
  // immutable from then on, so no lock is needed to read it.
  return arena_node(sh, index);
}

ShardedVisited::CNodeView ShardedVisited::cview_at(StateHandle h) const {
  if (h == kNoHandle || mode_ != VisitedMode::kCollapse) return {};
  const std::size_t shard_idx = static_cast<std::size_t>(h >> kHandleIndexBits);
  const std::uint64_t index48 = h & kHandleIndexMask;
  if (shard_idx >= shards_.size()) return {};
  const Shard& sh = shards_[shard_idx];
  const std::uint64_t idx = index48 & (kWideBit - 1);
  const auto& next = (index48 & kWideBit) ? sh.warena_next : sh.arena_next;
  if (idx >= next.load(std::memory_order_acquire)) return {};
  return cview(sh, index48);
}

std::vector<Event> ShardedVisited::path_from_root(StateHandle h) const {
  std::vector<Event> events;
  if (mode_ == VisitedMode::kCollapse) {
    for (;;) {
      const CNodeView v = cview_at(h);
      if (v.tuple == nullptr) break;
      if (v.parent == kNoHandle) break;  // the root contributes no event
      if (v.event != 0) {
        events.push_back(decode_event(event_blobs_->get(v.event - 1)));
      }
      h = v.parent;
    }
  } else {
    while (const Node* n = node_at(h)) {
      if (n->parent == kNoHandle) break;  // the root contributes no event
      events.push_back(n->in_event);
      h = n->parent;
    }
  }
  std::reverse(events.begin(), events.end());
  return events;
}

const State* ShardedVisited::state_at(StateHandle h) const {
  const Node* n = node_at(h);
  return n != nullptr ? &n->s : nullptr;
}

std::optional<State> ShardedVisited::materialize(StateHandle h) const {
  if (mode_ == VisitedMode::kInterned) {
    const Node* n = node_at(h);
    if (n == nullptr) return std::nullopt;
    return n->s;
  }
  if (mode_ != VisitedMode::kCollapse) return std::nullopt;
  const CNodeView v = cview_at(h);
  if (v.tuple == nullptr) return std::nullopt;
  // Component indices are stored u16 in the narrow lane, u32 in the wide one.
  const auto comp = [&v](unsigned k) -> std::uint32_t {
    return v.wide ? reinterpret_cast<const std::uint32_t*>(v.tuple)[k]
                  : reinterpret_cast<const std::uint16_t*>(v.tuple)[k];
  };
  unsigned w = 0;
  // Locals: copy each component blob back into its layout slice.
  std::vector<Value> locals;
  if (layout_.locals.empty()) {
    const std::span<const std::byte> blob = locals_blobs_->get(comp(w++));
    locals.resize(blob.size() / sizeof(Value));
    if (!blob.empty()) std::memcpy(locals.data(), blob.data(), blob.size());
  } else {
    std::size_t total = 0;
    for (const auto& [off, len] : layout_.locals) {
      total = std::max(total, static_cast<std::size_t>(off) + len);
    }
    locals.resize(total);
    for (const auto& [off, len] : layout_.locals) {
      const std::span<const std::byte> blob = locals_blobs_->get(comp(w++));
      if (!blob.empty()) {
        std::memcpy(locals.data() + off, blob.data(), blob.size());
      }
    }
  }
  // Network: decode the per-receiver runs; concatenated in receiver order
  // they already form the sorted multiset (the State ctor re-sorts anyway).
  std::vector<Message> net;
  const std::uint32_t R = layout_.n_receivers == 0 ? 1 : layout_.n_receivers;
  for (std::uint32_t r = 0; r < R; ++r) {
    const std::span<const std::byte> blob = channel_blobs_->get(comp(w++));
    std::size_t pos = 0;
    while (pos < blob.size()) net.push_back(decode_message(blob, pos));
  }
  return State(std::move(locals), std::move(net));
}

bool ShardedVisited::parent_link(StateHandle h, StateHandle* parent,
                                 Event* ev) const {
  *parent = kNoHandle;
  *ev = Event{};
  if (mode_ == VisitedMode::kCollapse) {
    const CNodeView v = cview_at(h);
    if (v.tuple == nullptr) return false;
    *parent = v.parent;
    if (v.parent != kNoHandle && v.event != 0) {
      *ev = decode_event(event_blobs_->get(v.event - 1));
    }
    return true;
  }
  const Node* n = node_at(h);
  if (n == nullptr) return false;
  *parent = n->parent;
  if (n->parent != kNoHandle) *ev = n->in_event;
  return true;
}

StateHandle ShardedVisited::parent_of(StateHandle h) const {
  if (mode_ == VisitedMode::kCollapse) {
    return cview_at(h).parent;  // default view carries kNoHandle
  }
  const Node* n = node_at(h);
  return n != nullptr ? n->parent : kNoHandle;
}

std::uint32_t ShardedVisited::perm_of(StateHandle h) const {
  if (mode_ == VisitedMode::kCollapse) {
    return cview_at(h).perm;  // default view carries 0
  }
  const Node* n = node_at(h);
  return n != nullptr ? n->perm : 0;
}

std::uint64_t ShardedVisited::approx_bytes() const noexcept {
  std::uint64_t b = bytes_.load(std::memory_order_relaxed);
  if (mode_ == VisitedMode::kCollapse) {
    // Resident chunk bytes (node arenas + blob entry/payload pools; spilled
    // chunks excluded) plus the blob stores' heap-side slot tables.
    b += store_->resident_bytes() + locals_blobs_->heap_bytes() +
         channel_blobs_->heap_bytes() + event_blobs_->heap_bytes();
  }
  return b;
}

std::uint64_t ShardedVisited::spilled_bytes() const noexcept {
  return mode_ == VisitedMode::kCollapse ? store_->spilled_bytes() : 0;
}

}  // namespace mpb
