#include "core/visited.hpp"

#include <algorithm>
#include <bit>

namespace mpb {

std::string_view to_string(VisitedMode m) noexcept {
  switch (m) {
    case VisitedMode::kExact: return "exact";
    case VisitedMode::kFingerprint: return "fingerprint";
    case VisitedMode::kInterned: return "interned";
  }
  return "?";
}

std::optional<VisitedMode> visited_mode_from_string(std::string_view name) noexcept {
  if (name == "exact") return VisitedMode::kExact;
  if (name == "fingerprint") return VisitedMode::kFingerprint;
  if (name == "interned") return VisitedMode::kInterned;
  return std::nullopt;
}

namespace {
constexpr std::size_t kInitialSlots = 64;  // per shard; power of two

constexpr unsigned kHandleShardBits = 16;
constexpr unsigned kHandleIndexBits = 64 - kHandleShardBits;
constexpr std::uint64_t kHandleIndexMask =
    (std::uint64_t{1} << kHandleIndexBits) - 1;

[[nodiscard]] constexpr StateHandle make_handle(std::size_t shard,
                                                std::uint64_t index) noexcept {
  return (static_cast<std::uint64_t>(shard) << kHandleIndexBits) | index;
}

// Fingerprint-mode slots store val = fp.hi remapped away from the empty
// marker 0.
[[nodiscard]] constexpr std::uint64_t occupied_val(std::uint64_t hi) noexcept {
  return hi == 0 ? 1 : hi;
}
}  // namespace

ShardedVisited::ShardedVisited(VisitedMode mode, unsigned shards)
    : mode_(mode),
      shards_(std::bit_ceil(std::min(std::max(shards, 1u), 1024u))) {
  for (Shard& sh : shards_) sh.slots.resize(kInitialSlots);
}

std::size_t ShardedVisited::probe(const Shard& sh, const State* s,
                                  std::uint64_t key, std::uint64_t val) const {
  const std::size_t mask = sh.slots.size() - 1;
  std::size_t i = static_cast<std::size_t>(key) & mask;
  for (;;) {
    const Entry& e = sh.slots[i];
    if (e.val == 0) return i;  // empty: not present
    if (e.key == key) {
      if (mode_ == VisitedMode::kFingerprint) {
        if (e.val == val) return i;
      } else {
        if (sh.arena[e.val - 1].s == *s) return i;
      }
    }
    i = (i + 1) & mask;
  }
}

void ShardedVisited::grow(Shard& sh) const {
  std::vector<Entry> old = std::move(sh.slots);
  sh.slots.assign(old.size() * 2, Entry{});
  const std::size_t mask = sh.slots.size() - 1;
  for (const Entry& e : old) {
    if (e.val == 0) continue;
    std::size_t i = static_cast<std::size_t>(e.key) & mask;
    while (sh.slots[i].val != 0) i = (i + 1) & mask;
    sh.slots[i] = e;
  }
}

VisitedInsert ShardedVisited::insert(const State& s, const Fingerprint& fp,
                                     StateHandle parent, const Event* via) {
  const std::size_t shard_idx = fp.hi & (shards_.size() - 1);
  Shard& sh = shards_[shard_idx];
  const std::uint64_t key = fp.lo;
  const std::uint64_t fp_val = occupied_val(fp.hi);
  std::lock_guard<std::mutex> lock(sh.mu);
  std::size_t i = probe(sh, &s, key, fp_val);
  if (sh.slots[i].val != 0) {  // already present
    if (mode_ == VisitedMode::kFingerprint) return {false, kNoHandle};
    return {false, make_handle(shard_idx, sh.slots[i].val - 1)};
  }
  if ((sh.count + 1) * 10 >= sh.slots.size() * 7) {
    grow(sh);
    i = probe(sh, &s, key, fp_val);
  }
  VisitedInsert out{true, kNoHandle};
  if (mode_ == VisitedMode::kFingerprint) {
    sh.slots[i] = Entry{key, fp_val};
  } else {
    Node node;
    node.s = s;
    if (via != nullptr) node.in_event = *via;
    node.parent = parent;
    sh.arena.push_back(std::move(node));
    sh.slots[i] = Entry{key, static_cast<std::uint64_t>(sh.arena.size())};
    out.handle = make_handle(shard_idx, sh.arena.size() - 1);
  }
  ++sh.count;
  total_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

bool ShardedVisited::contains(const State& s, const Fingerprint& fp) const {
  const Shard& sh = shard_for(fp);
  const std::uint64_t key = fp.lo;
  std::lock_guard<std::mutex> lock(sh.mu);
  return sh.slots[probe(sh, &s, key, occupied_val(fp.hi))].val != 0;
}

const ShardedVisited::Node* ShardedVisited::node_at(StateHandle h) const {
  if (h == kNoHandle || mode_ == VisitedMode::kFingerprint) return nullptr;
  const std::size_t shard_idx = static_cast<std::size_t>(h >> kHandleIndexBits);
  const std::uint64_t index = h & kHandleIndexMask;
  if (shard_idx >= shards_.size()) return nullptr;
  const Shard& sh = shards_[shard_idx];
  // The lock only guards the deque's bookkeeping against concurrent
  // push_back; the node itself is immutable after insertion, so the returned
  // pointer (deque addresses are stable) is safe to read unlocked.
  std::lock_guard<std::mutex> lock(sh.mu);
  if (index >= sh.arena.size()) return nullptr;
  return &sh.arena[static_cast<std::size_t>(index)];
}

std::vector<Event> ShardedVisited::path_from_root(StateHandle h) const {
  std::vector<Event> events;
  while (const Node* n = node_at(h)) {
    if (n->parent == kNoHandle) break;  // the root contributes no event
    events.push_back(n->in_event);
    h = n->parent;
  }
  std::reverse(events.begin(), events.end());
  return events;
}

const State* ShardedVisited::state_at(StateHandle h) const {
  const Node* n = node_at(h);
  return n != nullptr ? &n->s : nullptr;
}

StateHandle ShardedVisited::parent_of(StateHandle h) const {
  const Node* n = node_at(h);
  return n != nullptr ? n->parent : kNoHandle;
}

}  // namespace mpb
