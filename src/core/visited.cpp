#include "core/visited.hpp"

#include <algorithm>
#include <bit>
#include <thread>

namespace mpb {

std::string_view to_string(VisitedMode m) noexcept {
  switch (m) {
    case VisitedMode::kExact: return "exact";
    case VisitedMode::kFingerprint: return "fingerprint";
    case VisitedMode::kInterned: return "interned";
  }
  return "?";
}

std::optional<VisitedMode> visited_mode_from_string(std::string_view name) noexcept {
  if (name == "exact") return VisitedMode::kExact;
  if (name == "fingerprint") return VisitedMode::kFingerprint;
  if (name == "interned") return VisitedMode::kInterned;
  return std::nullopt;
}

namespace {
constexpr std::size_t kInitialSlots = 64;  // per shard; power of two

constexpr unsigned kHandleShardBits = 16;
constexpr unsigned kHandleIndexBits = 64 - kHandleShardBits;
constexpr std::uint64_t kHandleIndexMask =
    (std::uint64_t{1} << kHandleIndexBits) - 1;

// Slot-value sentinels (see the Slot comment in the header). Payloads can
// never collide with them: fingerprint payloads are remapped below, interned
// payloads are arena indices + 1, far below 2^63.
constexpr std::uint64_t kClaimed = ~std::uint64_t{0};
constexpr std::uint64_t kFrozen = ~std::uint64_t{0} - 1;

[[nodiscard]] constexpr StateHandle make_handle(std::size_t shard,
                                                std::uint64_t index) noexcept {
  return (static_cast<std::uint64_t>(shard) << kHandleIndexBits) | index;
}

// Fingerprint-mode slots store val = fp.hi remapped away from the empty
// marker 0 and the claim/frozen sentinels (the remap folds a 3/2^64 sliver of
// fingerprint space onto a neighbour — same failure class, and far rarer,
// than a fingerprint collision itself).
[[nodiscard]] constexpr std::uint64_t occupied_val(std::uint64_t hi) noexcept {
  return (hi == 0 || hi >= kFrozen) ? 1 : hi;
}

// Bounded busy-wait while a claimed slot publishes or a migration installs
// the new table. Publication is a handful of stores (plus one state copy in
// interned mode), so the x86 pause fast path almost always suffices; yield
// keeps an oversubscribed box from burning a whole quantum.
inline void spin_pause(unsigned& spins) noexcept {
  if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    std::this_thread::yield();
    spins = 0;
  }
}

// Arena geometry: chunk c holds kArenaFirstChunk << c nodes starting at
// index kArenaFirstChunk * (2^c - 1).
struct ArenaPos {
  std::size_t chunk;
  std::size_t offset;
};

[[nodiscard]] constexpr ArenaPos arena_pos(std::uint64_t index,
                                           std::size_t first_chunk) noexcept {
  const std::uint64_t q = index / first_chunk + 1;
  const auto chunk = static_cast<std::size_t>(std::bit_width(q) - 1);
  const std::uint64_t start = first_chunk * ((std::uint64_t{1} << chunk) - 1);
  return {chunk, static_cast<std::size_t>(index - start)};
}
}  // namespace

ShardedVisited::ShardedVisited(VisitedMode mode, unsigned shards)
    : mode_(mode),
      shards_(std::bit_ceil(std::min(std::max(shards, 1u), 1024u))) {
  for (Shard& sh : shards_) {
    sh.table.store(new Table(kInitialSlots), std::memory_order_relaxed);
  }
}

ShardedVisited::~ShardedVisited() {
  for (Shard& sh : shards_) {
    delete sh.table.load(std::memory_order_relaxed);
    for (Table* t : sh.retired) delete t;
    for (std::atomic<Node*>& c : sh.chunks) {
      delete[] c.load(std::memory_order_relaxed);
    }
  }
}

ShardedVisited::Node* ShardedVisited::arena_node(const Shard& sh,
                                                 std::uint64_t index) const {
  const ArenaPos pos = arena_pos(index, kArenaFirstChunk);
  Node* base = sh.chunks[pos.chunk].load(std::memory_order_acquire);
  return base == nullptr ? nullptr : base + pos.offset;
}

std::uint64_t ShardedVisited::arena_alloc(Shard& sh) {
  const std::uint64_t index =
      sh.arena_next.fetch_add(1, std::memory_order_relaxed);
  const ArenaPos pos = arena_pos(index, kArenaFirstChunk);
  std::atomic<Node*>& slot = sh.chunks[pos.chunk];
  if (slot.load(std::memory_order_acquire) == nullptr) {
    // First visitor of this chunk allocates it; a losing racer frees its copy.
    Node* fresh = new Node[kArenaFirstChunk << pos.chunk];
    Node* expected = nullptr;
    if (!slot.compare_exchange_strong(expected, fresh,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      delete[] fresh;
    }
  }
  return index;
}

ShardedVisited::TryInsert ShardedVisited::try_insert(
    Shard& sh, std::size_t shard_idx, Table& t, const State& s,
    std::uint64_t key, std::uint64_t fp_val, StateHandle parent,
    const Event* via, std::uint32_t perm, VisitedInsert& out) {
  const std::size_t mask = t.mask;
  std::size_t i = static_cast<std::size_t>(key) & mask;
  // Every slot this probe visits resolves to published-or-frozen before we
  // move on, so visiting all capacity slots without a match, an empty or a
  // frozen one proves the table is completely full of other entries.
  std::size_t probes = 0;
  for (;;) {
    if (probes++ > mask) return TryInsert::kTableFull;
    Slot& slot = t.slots[i];
    std::uint64_t v = slot.val.load(std::memory_order_acquire);
    unsigned spins = 0;
    // Resolve this slot to frozen / published / ours.
    for (;;) {
      if (v == kFrozen) {
        return TryInsert::kRetryFrozen;  // migration sealed it: new table
      }
      if (v == kClaimed) {             // another inserter is publishing
        spin_pause(spins);
        v = slot.val.load(std::memory_order_acquire);
        continue;
      }
      if (v == 0) {
        std::uint64_t expected = 0;
        if (slot.val.compare_exchange_weak(expected, kClaimed,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          // Claimed. Write the key (and, interned, the whole node) before the
          // release-store below makes the slot visible to other probes.
          slot.key.store(key, std::memory_order_relaxed);
          if (mode_ == VisitedMode::kFingerprint) {
            slot.val.store(fp_val, std::memory_order_release);
            out = {true, kNoHandle};
          } else {
            const std::uint64_t index = arena_alloc(sh);
            Node* n = arena_node(sh, index);
            n->s = s;
            if (via != nullptr) n->in_event = *via;
            n->parent = parent;
            n->perm = perm;
            slot.val.store(index + 1, std::memory_order_release);
            out = {true, make_handle(shard_idx, index)};
          }
          t.count.fetch_add(1, std::memory_order_relaxed);
          return TryInsert::kDone;
        }
        v = expected;  // lost the claim; re-resolve with the fresh value
        continue;
      }
      break;  // a published payload
    }
    // Published entry: equal means present (first writer wins).
    if (slot.key.load(std::memory_order_relaxed) == key) {
      if (mode_ == VisitedMode::kFingerprint) {
        if (v == fp_val) {
          out = {false, kNoHandle};
          return TryInsert::kDone;
        }
      } else {
        const Node* n = arena_node(sh, v - 1);
        if (n->s == s) {
          out = {false, make_handle(shard_idx, v - 1)};
          return TryInsert::kDone;
        }
      }
    }
    i = (i + 1) & mask;
  }
}

void ShardedVisited::grow(Shard& sh, Table* old) {
  std::lock_guard<std::mutex> lock(sh.grow_mu);
  if (sh.table.load(std::memory_order_relaxed) != old) return;  // already done

  const std::size_t old_cap = old->mask + 1;
  auto* fresh = new Table(old_cap * 2);
  std::size_t copied = 0;
  for (std::size_t i = 0; i <= old->mask; ++i) {
    Slot& slot = old->slots[i];
    unsigned spins = 0;
    for (;;) {
      std::uint64_t v = slot.val.load(std::memory_order_acquire);
      if (v == kClaimed) {  // wait for the in-flight publish, then migrate it
        spin_pause(spins);
        continue;
      }
      if (v == 0) {
        // Seal the empty slot so no new claim can land behind our back; a
        // racing claim simply wins the CAS and we re-resolve.
        if (slot.val.compare_exchange_weak(v, kFrozen,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          break;
        }
        continue;
      }
      // Published payload: re-slot it in the new table. No other thread can
      // touch `fresh` until the release-store installs it, so plain relaxed
      // stores suffice here.
      const std::uint64_t key = slot.key.load(std::memory_order_relaxed);
      std::size_t j = static_cast<std::size_t>(key) & fresh->mask;
      while (fresh->slots[j].val.load(std::memory_order_relaxed) != 0) {
        j = (j + 1) & fresh->mask;
      }
      fresh->slots[j].key.store(key, std::memory_order_relaxed);
      fresh->slots[j].val.store(v, std::memory_order_relaxed);
      ++copied;
      break;
    }
  }
  fresh->count.store(copied, std::memory_order_relaxed);
  // Old tables are retired, not freed: concurrent probes may still be walking
  // them. Their sizes form a geometric series bounded by the live table.
  sh.retired.push_back(old);
  sh.table.store(fresh, std::memory_order_release);
}

VisitedInsert ShardedVisited::insert(const State& s, const Fingerprint& fp,
                                     StateHandle parent, const Event* via,
                                     std::uint32_t perm) {
  const std::size_t shard_idx = fp.hi & (shards_.size() - 1);
  Shard& sh = shards_[shard_idx];
  const std::uint64_t key = fp.lo;
  const std::uint64_t fp_val = occupied_val(fp.hi);
  VisitedInsert out;
  unsigned spins = 0;
  for (;;) {
    Table* t = sh.table.load(std::memory_order_acquire);
    const TryInsert r =
        try_insert(sh, shard_idx, *t, s, key, fp_val, parent, via, perm, out);
    if (r == TryInsert::kDone) break;
    if (r == TryInsert::kTableFull) {
      // A claim burst outran the grow threshold and filled the table before
      // any migration froze it. Drive the growth ourselves (grow() is
      // idempotent per table: the mutex + identity check make extra callers
      // no-ops) instead of spinning on a table that can never admit us.
      grow(sh, t);
      continue;
    }
    spin_pause(spins);  // kRetryFrozen: a migration is installing the table
  }
  if (out.inserted) {
    total_.fetch_add(1, std::memory_order_relaxed);
    // Slot cost, plus the interned node's payload: each contribution is a
    // lower bound of the real footprint (allocator slack and table growth
    // headroom are not modelled), which is all a guard needs.
    std::uint64_t b = sizeof(Slot);
    if (mode_ == VisitedMode::kInterned) {
      b += sizeof(Node) + s.locals().size() * sizeof(Value) +
           s.network().size() * sizeof(Message);
      if (via != nullptr) b += via->consumed.size() * sizeof(Message);
    }
    bytes_.fetch_add(b, std::memory_order_relaxed);
    Table* t = sh.table.load(std::memory_order_acquire);
    if ((t->count.load(std::memory_order_relaxed) + 1) * 10 >=
        (t->mask + 1) * 7) {
      grow(sh, t);
    }
  }
  return out;
}

bool ShardedVisited::contains(const State& s, const Fingerprint& fp) const {
  const Shard& sh = shards_[fp.hi & (shards_.size() - 1)];
  const std::uint64_t key = fp.lo;
  const std::uint64_t fp_val = occupied_val(fp.hi);
  // Entries are never removed and a probe chain never crosses a slot that was
  // empty when its entries were inserted, so one table snapshot is enough: a
  // frozen slot was empty at freeze time and reads as "absent" (any entry
  // inserted later lives in a newer table, concurrent with this lookup).
  const Table* t = sh.table.load(std::memory_order_acquire);
  std::size_t i = static_cast<std::size_t>(key) & t->mask;
  std::size_t probes = 0;
  for (;;) {
    if (probes++ > t->mask) return false;  // wrapped a completely full table
    const Slot& slot = t->slots[i];
    std::uint64_t v = slot.val.load(std::memory_order_acquire);
    unsigned spins = 0;
    while (v == kClaimed) {  // could be the sought key mid-publish: wait
      spin_pause(spins);
      v = slot.val.load(std::memory_order_acquire);
    }
    if (v == 0 || v == kFrozen) return false;
    if (slot.key.load(std::memory_order_relaxed) == key) {
      if (mode_ == VisitedMode::kFingerprint) {
        if (v == fp_val) return true;
      } else {
        const Node* n = arena_node(sh, v - 1);
        if (n->s == s) return true;
      }
    }
    i = (i + 1) & t->mask;
  }
}

const ShardedVisited::Node* ShardedVisited::node_at(StateHandle h) const {
  if (h == kNoHandle || mode_ == VisitedMode::kFingerprint) return nullptr;
  const std::size_t shard_idx = static_cast<std::size_t>(h >> kHandleIndexBits);
  const std::uint64_t index = h & kHandleIndexMask;
  if (shard_idx >= shards_.size()) return nullptr;
  const Shard& sh = shards_[shard_idx];
  if (index >= sh.arena_next.load(std::memory_order_acquire)) return nullptr;
  // Handles only escape through published slots or insert results, both of
  // which happen after the node's fields are fully written; the node is
  // immutable from then on, so no lock is needed to read it.
  return arena_node(sh, index);
}

std::vector<Event> ShardedVisited::path_from_root(StateHandle h) const {
  std::vector<Event> events;
  while (const Node* n = node_at(h)) {
    if (n->parent == kNoHandle) break;  // the root contributes no event
    events.push_back(n->in_event);
    h = n->parent;
  }
  std::reverse(events.begin(), events.end());
  return events;
}

const State* ShardedVisited::state_at(StateHandle h) const {
  const Node* n = node_at(h);
  return n != nullptr ? &n->s : nullptr;
}

StateHandle ShardedVisited::parent_of(StateHandle h) const {
  const Node* n = node_at(h);
  return n != nullptr ? n->parent : kNoHandle;
}

std::uint32_t ShardedVisited::perm_of(StateHandle h) const {
  const Node* n = node_at(h);
  return n != nullptr ? n->perm : 0;
}

}  // namespace mpb
