// Chunk allocator with an optional mmap-backed spill tier.
//
// The collapse-mode visited set (core/visited.hpp) stores its big arenas —
// the compressed state nodes and the component blob pools — as append-only
// chunks whose addresses never move. This allocator hands out those chunks
// from one of two backings:
//
//  * heap (SpillConfig::dir empty): plain zero-initialized new[] chunks, all
//    permanently resident. The default, and the only mode the hot probe path
//    ever needs.
//  * spill (dir set): one unlinked temporary file in `dir` (O_TMPFILE when
//    the filesystem supports it, mkstemp+unlink otherwise), grown with
//    ftruncate and mapped chunk-by-chunk with mmap(MAP_SHARED). When the
//    resident budget is exceeded, *spillable* chunks are advised out oldest
//    first with madvise(MADV_DONTNEED) — for a shared file mapping that drops
//    the PTEs (and the RSS) while the data stays safe in the page cache and
//    the backing file, so a later read simply faults the pages back in.
//
// Hot/cold policy: callers mark each chunk spillable or pinned at allocation.
// The component blob pools are pinned (they are the small, constantly probed
// working set — the whole point of COLLAPSE is that components are few and
// shared), while the state-node arena is spillable (written once at insert,
// read again only to confirm a duplicate or materialize a trace). Within the
// spillable set the newest chunks stay hot; every eviction round re-advises
// all cold chunks so pages faulted back by duplicate probes cannot
// accumulate unaccounted.
//
// resident_bytes() is the allocator's contribution to the visited set's
// exact memory accounting: pinned chunks plus hot spillable chunks. Advised-
// out chunks cost file/page-cache space, not the RAM budget the resource
// guard (ExploreConfig::guard.max_memory_bytes) meters — which is exactly
// what lets a spill-enabled run keep growing states past a guard that would
// stop the same run without spilling.
//
// Thread-safety: alloc_chunk is serialized by an internal mutex (chunk
// allocation is rare — geometric growth); the returned memory is plain bytes
// the caller synchronizes itself (the visited set publishes chunk base
// pointers with release stores).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mpb {

struct SpillConfig {
  // Directory for the backing file; empty = heap chunks, no spilling.
  std::string dir;
  // Resident budget for spillable chunks, in bytes; 0 = keep everything
  // resident (the file backing still exists, nothing is ever advised out).
  std::uint64_t resident_bytes = 0;

  [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

class ChunkStore {
 public:
  explicit ChunkStore(SpillConfig cfg = {});
  ~ChunkStore();

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  // A zero-filled chunk of at least `bytes` bytes at a stable address, valid
  // until destruction. `spillable` chunks participate in the hot/cold policy;
  // pinned chunks always stay resident. Throws std::runtime_error if the
  // spill file cannot be created or mapped.
  std::byte* alloc_chunk(std::size_t bytes, bool spillable = true);

  // Total bytes ever allocated (hot + cold + pinned). Lock-free: the memory
  // resource guard polls these on the insert path.
  [[nodiscard]] std::uint64_t allocated_bytes() const noexcept {
    return allocated_.load(std::memory_order_relaxed);
  }
  // Bytes currently counted against RAM: pinned + hot spillable chunks.
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return resident_.load(std::memory_order_relaxed);
  }
  // Bytes advised out to the backing file.
  [[nodiscard]] std::uint64_t spilled_bytes() const noexcept {
    return allocated_bytes() - resident_bytes();
  }

  [[nodiscard]] bool spilling() const noexcept { return fd_ >= 0; }

 private:
  struct Chunk {
    std::byte* base = nullptr;
    std::size_t size = 0;     // mapped/allocated size (page-rounded in spill mode)
    bool spillable = false;
    bool resident = true;
  };

  void evict_locked();  // enforce the resident budget (mu_ held)

  SpillConfig cfg_;
  int fd_ = -1;                 // spill backing file; -1 = heap mode
  std::uint64_t file_size_ = 0; // next chunk's file offset (page aligned)
  std::mutex mu_;  // guards chunks_/file growth; counters are read lock-free
  std::vector<Chunk> chunks_;
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> resident_{0};
};

}  // namespace mpb
