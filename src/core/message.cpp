#include "core/message.hpp"

#include <cassert>

namespace mpb {

Message::Message(MsgType type, ProcessId sender, ProcessId receiver,
                 std::initializer_list<Value> payload)
    : type_(type), sender_(sender), receiver_(receiver),
      size_(static_cast<std::uint8_t>(payload.size())) {
  assert(payload.size() <= kMaxPayload);
  unsigned i = 0;
  for (Value v : payload) payload_[i++] = v;
}

}  // namespace mpb
