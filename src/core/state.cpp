#include "core/state.hpp"

namespace mpb {

std::pair<std::size_t, std::size_t> State::pending_range(ProcessId receiver,
                                                         MsgType type) const noexcept {
  // Messages sort by (receiver, type, ...), so the pool is one contiguous run.
  auto lo = std::lower_bound(net_.begin(), net_.end(), std::pair{receiver, type},
                             [](const Message& m, const std::pair<ProcessId, MsgType>& key) {
                               if (m.receiver() != key.first) return m.receiver() < key.first;
                               return m.type() < key.second;
                             });
  auto hi = lo;
  while (hi != net_.end() && hi->receiver() == receiver && hi->type() == type) ++hi;
  return {static_cast<std::size_t>(lo - net_.begin()),
          static_cast<std::size_t>(hi - net_.begin())};
}

}  // namespace mpb
