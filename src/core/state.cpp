#include "core/state.hpp"

#include <atomic>

namespace mpb {

namespace {

std::atomic<std::uint64_t> g_full_passes{0};
std::atomic<std::uint64_t> g_queries{0};

// fingerprint() is the hottest call in a parallel search; bumping a shared
// atomic there would serialize all workers on one cache line. Counts are
// tallied in plain thread-locals instead and flushed into the globals when
// the thread exits — worker threads are joined before a run's stats are
// read, so the totals observed by the coordinating thread are complete.
struct HashTally {
  std::uint64_t full_passes = 0;
  std::uint64_t queries = 0;

  void flush() noexcept {
    g_full_passes.fetch_add(full_passes, std::memory_order_relaxed);
    g_queries.fetch_add(queries, std::memory_order_relaxed);
    full_passes = 0;
    queries = 0;
  }
  ~HashTally() { flush(); }
};

thread_local HashTally t_tally;

}  // namespace

std::uint64_t state_full_hash_passes() noexcept {
  return g_full_passes.load(std::memory_order_relaxed) + t_tally.full_passes;
}

std::uint64_t state_hash_queries() noexcept {
  return g_queries.load(std::memory_order_relaxed) + t_tally.queries;
}

void reset_state_hash_counters() noexcept {
  t_tally.full_passes = 0;
  t_tally.queries = 0;
  g_full_passes.store(0, std::memory_order_relaxed);
  g_queries.store(0, std::memory_order_relaxed);
}

void State::recompute_sums() const noexcept {
  ++t_tally.full_passes;
  for (int lane = 0; lane < 2; ++lane) {
    loc_sum_[lane] = 0;
    net_sum_[lane] = 0;
  }
  for (std::size_t i = 0; i < locals_.size(); ++i) {
    loc_sum_[0] += local_contrib<0>(i, locals_[i]);
    loc_sum_[1] += local_contrib<1>(i, locals_[i]);
  }
  for (const Message& m : net_) {
    net_sum_[0] += message_contrib<0>(m);
    net_sum_[1] += message_contrib<1>(m);
  }
  sums_valid_ = true;
}

Fingerprint State::fingerprint() const noexcept {
  ++t_tally.queries;
  if (!sums_valid_) recompute_sums();
  // Fold sizes into the finalization so {locals, net} boundaries matter even
  // when a contribution sum coincides.
  const std::uint64_t sizes =
      (static_cast<std::uint64_t>(locals_.size()) << 32) |
      static_cast<std::uint64_t>(net_.size());
  const std::uint64_t hi =
      mix64(loc_sum_[0] ^ mix64(net_sum_[0] + sizes) ^ kLaneSeed[0]);
  const std::uint64_t lo =
      mix64(loc_sum_[1] ^ mix64(net_sum_[1] + sizes) ^ kLaneSeed[1]);
  return {hi, lo};
}

std::pair<std::size_t, std::size_t> State::pending_range(ProcessId receiver,
                                                         MsgType type) const noexcept {
  // Messages sort by (receiver, type, ...), so the pool is one contiguous run.
  auto lo = std::lower_bound(net_.begin(), net_.end(), std::pair{receiver, type},
                             [](const Message& m, const std::pair<ProcessId, MsgType>& key) {
                               if (m.receiver() != key.first) return m.receiver() < key.first;
                               return m.type() < key.second;
                             });
  auto hi = lo;
  while (hi != net_.end() && hi->receiver() == receiver && hi->type() == type) ++hi;
  return {static_cast<std::size_t>(lo - net_.begin()),
          static_cast<std::size_t>(hi - net_.begin())};
}

}  // namespace mpb
