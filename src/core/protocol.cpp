#include "core/protocol.hpp"

#include <sstream>

namespace mpb {

ProcessId Protocol::add_process(ProcessInfo info) {
  const auto id = static_cast<ProcessId>(procs_.size());
  procs_.push_back(std::move(info));
  return id;
}

ProcessMask Protocol::role_mask(std::string_view type_name) const noexcept {
  ProcessMask m = 0;
  for (unsigned p = 0; p < procs_.size(); ++p) {
    if (procs_[p].type_name == type_name) m |= mask_of(p);
  }
  return m;
}

MsgType Protocol::intern_msg_type(std::string_view name) {
  if (auto existing = find_msg_type(name)) return *existing;
  msg_type_names_.emplace_back(name);
  return static_cast<MsgType>(msg_type_names_.size() - 1);
}

std::optional<MsgType> Protocol::find_msg_type(std::string_view name) const noexcept {
  for (unsigned i = 0; i < msg_type_names_.size(); ++i) {
    if (msg_type_names_[i] == name) return static_cast<MsgType>(i);
  }
  return std::nullopt;
}

TransitionId Protocol::add_transition(Transition t) {
  const auto id = static_cast<TransitionId>(transitions_.size());
  transitions_.push_back(std::move(t));
  return id;
}

const Property* Protocol::find_property(std::string_view name) const noexcept {
  for (const Property& p : properties_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const Property* Protocol::violated_property(const State& s) const {
  for (const Property& p : properties_) {
    if (!p.holds(s, *this)) return &p;
  }
  return nullptr;
}

std::string Protocol::validate() const {
  std::ostringstream err;
  if (procs_.empty()) err << "protocol has no processes; ";
  if (procs_.size() > kMaxProcesses) err << "too many processes; ";

  std::size_t expected_offset = 0;
  for (unsigned p = 0; p < procs_.size(); ++p) {
    const ProcessInfo& pi = procs_[p];
    if (pi.local_offset != expected_offset) {
      err << "process " << pi.name << ": local_offset mismatch; ";
    }
    if (pi.var_names.size() != pi.local_len) {
      err << "process " << pi.name << ": var_names/local_len mismatch; ";
    }
    expected_offset += pi.local_len;
  }
  if (initial_.locals().size() != expected_offset) {
    err << "initial state locals size " << initial_.locals().size()
        << " != schema size " << expected_offset << "; ";
  }

  const ProcessMask valid_procs =
      procs_.size() >= kMaxProcesses ? kAllProcesses
                                     : (mask_of(static_cast<unsigned>(procs_.size())) - 1);
  for (unsigned i = 0; i < transitions_.size(); ++i) {
    const Transition& t = transitions_[i];
    const std::string where = "transition " + t.name + ": ";
    if (t.proc >= procs_.size()) err << where << "bad proc id; ";
    if (t.arity != kSpontaneous && t.arity != kPowersetArity && t.arity < 1) {
      err << where << "bad arity; ";
    }
    if (t.arity == kSpontaneous && t.in_type != kNoMsgType) {
      err << where << "spontaneous transitions consume no message type; ";
    }
    if (t.arity != kSpontaneous && t.in_type == kNoMsgType) {
      err << where << "missing in_type; ";
    }
    if (t.arity != kSpontaneous && t.in_type != kNoMsgType &&
        t.in_type >= msg_type_names_.size()) {
      err << where << "in_type not interned; ";
    }
    for (MsgType out : t.out_types) {
      if (out >= msg_type_names_.size()) err << where << "out_type not interned; ";
    }
    if (t.is_reply && t.arity != 1) {
      err << where << "reply transitions must be single-message (Def. 4 split support); ";
    }
    if ((t.allowed_senders & valid_procs) == 0 && t.arity != kSpontaneous) {
      err << where << "allowed_senders empty; ";
    }
    if (!t.out_types.empty() && (t.send_to & valid_procs) == 0) {
      err << where << "send_to empty but out_types declared; ";
    }
  }
  return err.str();
}

// --- EffectCtx (declared in transition.hpp; needs Protocol's layout) ---

EffectCtx::EffectCtx(const Protocol& proto, State& working, ProcessId self,
                     std::span<const Message> consumed)
    : proto_(proto), working_(working), self_(self), consumed_(consumed) {
  const ProcessInfo& pi = proto.proc(self);
  offset_ = pi.local_offset;
  len_ = pi.local_len;
}

Value EffectCtx::peek(ProcessId other, unsigned var) {
  const ProcessInfo& pi = proto_.proc(other);
  if (other != self_) {
    peeked_.push_back(PeekDecl{other, VarMask{1} << var});
  }
  return working_.local_slice(pi.local_offset, pi.local_len)[var];
}

void EffectCtx::send(ProcessId to, MsgType type, std::initializer_list<Value> payload) {
  sends_.emplace_back(type, self_, to, payload);
}

}  // namespace mpb
