// Sharded visited set for the stateful explorer — and, in interned mode, the
// search's *state graph*.
//
// The visited set is the hottest shared structure of a stateful search: one
// probe+insert per generated successor. This implementation shards the key
// space over N independent open-addressing tables (power-of-two sized, linear
// probing, grown at ~70% load), each guarded by its own mutex, so concurrent
// workers contend only when their states land in the same shard. Sequential
// searches use a single shard and pay one uncontended lock per probe.
//
// Two storage modes:
//  * kFingerprint — a slot is the state's 128-bit fingerprint (16 bytes).
//    Probabilistic: a fingerprint collision silently merges two states
//    (probability ~ N^2/2^129; the mode the paper's big runs use).
//  * kInterned — exact semantics at near-fingerprint probe cost. Each shard
//    interns its states in an arena (a deque: stable addresses, chunked
//    allocation) and a slot holds a 16-byte handle {probe key, arena index}.
//    A probe compares the full state only on a 64-bit key match, so the arena
//    is touched at most once per lookup in expectation.
//
// Interned entries additionally record how the search first reached them: the
// handle of the parent entry and the incoming event. That turns the arena
// into a spanning tree of the explored state graph, and `path_from_root`
// recovers the event sequence from the initial state to any entry — which is
// how parallel searches reconstruct counterexample traces without a DFS
// stack (replay the events through execute()). The cost is one Event (a
// transition id plus the consumed-message vector) and 8 parent bytes per
// unique state; fingerprint mode stores neither and cannot reconstruct.
//
// VisitedMode::kExact (the seed's std::unordered_set<State> of full copies)
// is kept in the explorer as the sequential reference implementation for
// differential testing; parallel searches upgrade it to kInterned, which has
// identical (exact) semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/state.hpp"
#include "core/transition.hpp"
#include "util/hash.hpp"

namespace mpb {

enum class VisitedMode {
  kExact,        // full State copies, std::unordered_set (sequential reference)
  kFingerprint,  // 128-bit fingerprints only (probabilistic, memory-flat)
  kInterned,     // arena-interned state graph + 16-byte table handles (exact)
};

[[nodiscard]] std::string_view to_string(VisitedMode m) noexcept;
// Inverse of to_string; nullopt on an unknown name. The single parser shared
// by mpbcheck --visited, the MPB_VISITED env knob and the benches.
[[nodiscard]] std::optional<VisitedMode> visited_mode_from_string(
    std::string_view name) noexcept;

// Handle of an interned entry: shard index in the top 16 bits, arena index in
// the low 48. kNoHandle marks "no entry" — the root's parent, and every
// handle produced by the exact/fingerprint modes (which intern nothing).
using StateHandle = std::uint64_t;
inline constexpr StateHandle kNoHandle = ~std::uint64_t{0};

struct VisitedInsert {
  bool inserted = false;         // true iff the state was newly inserted
  StateHandle handle = kNoHandle;  // the entry (new or existing); interned only
};

class ShardedVisited {
 public:
  // `shards` is rounded up to a power of two and clamped to [1, 1024].
  explicit ShardedVisited(VisitedMode mode, unsigned shards = 1);

  ShardedVisited(const ShardedVisited&) = delete;
  ShardedVisited& operator=(const ShardedVisited&) = delete;

  // Inserts `s` (whose fingerprint is `fp`), recording `parent` and `*via`
  // (the event that produced `s` from the parent entry) when the entry is
  // new. `via` may be null for the root. Returns whether the state was new
  // and, in interned mode, the handle of its (new or pre-existing) entry.
  // Thread-safe.
  VisitedInsert insert(const State& s, const Fingerprint& fp,
                       StateHandle parent, const Event* via);
  bool insert(const State& s, const Fingerprint& fp) {
    return insert(s, fp, kNoHandle, nullptr).inserted;
  }
  bool insert(const State& s) { return insert(s, s.fingerprint()); }

  [[nodiscard]] bool contains(const State& s, const Fingerprint& fp) const;
  [[nodiscard]] bool contains(const State& s) const {
    return contains(s, s.fingerprint());
  }

  // --- state-graph queries (kInterned; empty/null otherwise) ---------------
  // Events along the recorded parent path from the root to `h`, in execution
  // order. Each entry's parent chain is fixed at insert time, so the walk is
  // safe while other threads insert.
  [[nodiscard]] std::vector<Event> path_from_root(StateHandle h) const;
  // The interned state behind `h` (stable address; entries are immutable once
  // inserted), or nullptr for kNoHandle / non-interned modes.
  [[nodiscard]] const State* state_at(StateHandle h) const;
  [[nodiscard]] StateHandle parent_of(StateHandle h) const;

  [[nodiscard]] std::uint64_t size() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] VisitedMode mode() const noexcept { return mode_; }
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

 private:
  // 16 bytes. Fingerprint mode: {key, val} = {fp.lo, fp.hi}, with val remapped
  // 0 -> 1 so val == 0 can mark an empty slot (the remap folds the 2^-64
  // sliver of fingerprint space onto a neighbour — same failure class, and far
  // rarer, than a fingerprint collision itself). Interned mode: key = fp.lo
  // as a 64-bit filter/probe key, val = arena index + 1.
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t val = 0;
  };

  // One interned state-graph node. `in_event` is the event whose execution
  // first reached this state (from the entry `parent`); both are written once
  // at insert time and never mutated, so readers only need the shard lock to
  // locate the node, not to read it.
  struct Node {
    State s;
    Event in_event;
    StateHandle parent = kNoHandle;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Entry> slots;
    std::size_t count = 0;
    std::deque<Node> arena;  // used in kInterned mode only
  };

  [[nodiscard]] Shard& shard_for(const Fingerprint& fp) const noexcept {
    return shards_[fp.hi & (shards_.size() - 1)];
  }

  [[nodiscard]] const Node* node_at(StateHandle h) const;

  // Returns the slot index holding an equal entry, or the empty slot where it
  // would go. Caller holds the shard lock.
  [[nodiscard]] std::size_t probe(const Shard& sh, const State* s,
                                  std::uint64_t key, std::uint64_t val) const;
  void grow(Shard& sh) const;

  VisitedMode mode_;
  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace mpb
