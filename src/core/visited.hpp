// Sharded visited set for the stateful explorer — and, in interned mode, the
// search's *state graph*.
//
// The visited set is the hottest shared structure of a stateful search: one
// probe+insert per generated successor. This implementation shards the key
// space over N independent open-addressing tables (power-of-two sized, linear
// probing, grown at ~70% load) and makes every probe and insert *lock-free*:
// a slot is a pair of atomics and insertion follows a claim/publish protocol
// (CAS an empty slot's value to a claim sentinel, write the payload, then
// release-store the real value), so concurrent workers never take a mutex on
// the hot path — not even when their states land in the same shard. The only
// mutex left guards table *growth*, which freezes the old table's empty slots
// (CAS 0 -> frozen), migrates the published entries, and swaps in a table of
// twice the size; inserts that race with a migration simply retry on the new
// table. See docs/ARCHITECTURE.md ("The lock-free slot protocol") for the
// ordering argument.
//
// Two storage modes:
//  * kFingerprint — a slot is the state's 128-bit fingerprint (16 bytes).
//    Probabilistic: a fingerprint collision silently merges two states
//    (probability ~ N^2/2^129; the mode the paper's big runs use).
//  * kInterned — exact semantics at near-fingerprint probe cost. Each shard
//    interns its states in a lock-free chunked arena (stable addresses,
//    geometrically growing chunks) and a slot holds {probe key, arena index}.
//    A probe compares the full state only on a 64-bit key match, so the arena
//    is touched at most once per lookup in expectation.
//
// Interned entries additionally record how the search first reached them: the
// handle of the parent entry and the incoming event. That turns the arena
// into a spanning tree of the explored state graph, and `path_from_root`
// recovers the event sequence from the initial state to any entry — which is
// how parallel searches reconstruct counterexample traces without a DFS
// stack (replay the events through execute()). The node (state, parent
// handle, incoming event) is fully written *before* the slot's release-store
// publishes its arena index, so a reader can never observe a half-written
// entry. The cost is one Event (a transition id plus the consumed-message
// vector) and 8 parent bytes per unique state; fingerprint mode stores
// neither and cannot reconstruct.
//
// VisitedMode::kExact (the seed's std::unordered_set<State> of full copies)
// is kept in the explorer as the sequential reference implementation for
// differential testing; parallel searches upgrade it to kInterned, which has
// identical (exact) semantics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/state.hpp"
#include "core/transition.hpp"
#include "util/hash.hpp"

namespace mpb {

enum class VisitedMode {
  kExact,        // full State copies, std::unordered_set (sequential reference)
  kFingerprint,  // 128-bit fingerprints only (probabilistic, memory-flat)
  kInterned,     // arena-interned state graph + 16-byte table handles (exact)
};

[[nodiscard]] std::string_view to_string(VisitedMode m) noexcept;
// Inverse of to_string; nullopt on an unknown name. The single parser shared
// by mpbcheck --visited, the MPB_VISITED env knob and the benches.
[[nodiscard]] std::optional<VisitedMode> visited_mode_from_string(
    std::string_view name) noexcept;

// Handle of an interned entry: shard index in the top 16 bits, arena index in
// the low 48. kNoHandle marks "no entry" — the root's parent, and every
// handle produced by the exact/fingerprint modes (which intern nothing).
using StateHandle = std::uint64_t;
inline constexpr StateHandle kNoHandle = ~std::uint64_t{0};

struct VisitedInsert {
  bool inserted = false;         // true iff the state was newly inserted
  StateHandle handle = kNoHandle;  // the entry (new or existing); interned only
};

class ShardedVisited {
 public:
  // `shards` is rounded up to a power of two and clamped to [1, 1024].
  explicit ShardedVisited(VisitedMode mode, unsigned shards = 1);
  ~ShardedVisited();

  ShardedVisited(const ShardedVisited&) = delete;
  ShardedVisited& operator=(const ShardedVisited&) = delete;

  // Inserts `s` (whose fingerprint is `fp`), recording `parent`, `*via`
  // (the event that produced `s` from the parent entry) and `perm` (the
  // index of the symmetry permutation that mapped the concrete successor
  // onto the stored canonical state; 0 = identity) when the entry is new.
  // `via` may be null for the root. Returns whether the state was new and,
  // in interned mode, the handle of its (new or pre-existing) entry.
  // Thread-safe and lock-free (a racing table growth can briefly make an
  // insert wait for the migrated table).
  VisitedInsert insert(const State& s, const Fingerprint& fp,
                       StateHandle parent, const Event* via,
                       std::uint32_t perm = 0);
  bool insert(const State& s, const Fingerprint& fp) {
    return insert(s, fp, kNoHandle, nullptr).inserted;
  }
  bool insert(const State& s) { return insert(s, s.fingerprint()); }

  [[nodiscard]] bool contains(const State& s, const Fingerprint& fp) const;
  [[nodiscard]] bool contains(const State& s) const {
    return contains(s, s.fingerprint());
  }

  // --- state-graph queries (kInterned; empty/null otherwise) ---------------
  // Events along the recorded parent path from the root to `h`, in execution
  // order. Each entry's parent chain is fully published before its handle
  // becomes visible, so the walk is safe while other threads insert.
  [[nodiscard]] std::vector<Event> path_from_root(StateHandle h) const;
  // The interned state behind `h` (stable address; entries are immutable once
  // published), or nullptr for kNoHandle / non-interned modes.
  [[nodiscard]] const State* state_at(StateHandle h) const;
  [[nodiscard]] StateHandle parent_of(StateHandle h) const;
  // The symmetry permutation recorded at insert time: the index (into the
  // reducer's permutation table) that maps the concrete state which first
  // reached this entry onto the stored canonical representative. 0 for
  // identity / no symmetry / unknown handles.
  [[nodiscard]] std::uint32_t perm_of(StateHandle h) const;

  [[nodiscard]] std::uint64_t size() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  // Approximate bytes of state storage: per-entry slot cost plus, in interned
  // mode, the node (state locals + network + consumed messages of the
  // incoming event). Maintained with one relaxed fetch_add per fresh insert;
  // the resource-guard memory cap (ExploreConfig::guard) polls this.
  [[nodiscard]] std::uint64_t approx_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] VisitedMode mode() const noexcept { return mode_; }
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

 private:
  // One 16-byte open-addressing slot. `val` is the slot's state machine:
  //   0         empty (claimable)
  //   kClaimed  an inserter won the CAS and is writing key/payload
  //   kFrozen   a migration sealed this empty slot; inserters retry on the
  //             new table, readers treat it as empty
  //   else      published payload: occupied_val(fp.hi) in fingerprint mode,
  //             arena index + 1 in interned mode
  // A slot only ever moves 0 -> kClaimed -> payload or 0 -> kFrozen, and
  // `key` is written exactly once, between claim and publish. Readers load
  // `val` with acquire before touching `key` or the arena node, so the
  // publisher's release-store makes both fully visible.
  struct Slot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> val{0};
  };

  struct Table {
    explicit Table(std::size_t capacity)
        : mask(capacity - 1), slots(new Slot[capacity]) {}
    const std::size_t mask;              // capacity - 1 (power of two)
    std::atomic<std::size_t> count{0};   // published entries (grow trigger)
    std::unique_ptr<Slot[]> slots;
  };

  // One interned state-graph node. All fields are written once, between the
  // slot claim and the publishing release-store; immutable afterwards.
  struct Node {
    State s;
    Event in_event;
    StateHandle parent = kNoHandle;
    // Symmetry permutation applied by the canonicalizer (0 = identity).
    std::uint32_t perm = 0;
  };

  // Lock-free chunked arena: chunk c holds kArenaFirstChunk << c nodes, so a
  // handful of chunk pointers cover the whole 48-bit index space and node
  // addresses never move. Indices are handed out by fetch_add; a chunk is
  // allocated by whoever first needs it (CAS-published, losers free theirs).
  static constexpr std::size_t kArenaFirstChunk = 256;
  static constexpr std::size_t kArenaMaxChunks = 40;

  struct Shard {
    std::atomic<Table*> table{nullptr};
    // Growth only: serializes migrations; never taken by insert/contains.
    std::mutex grow_mu;
    std::vector<Table*> retired;  // old tables, freed in ~ShardedVisited
    std::array<std::atomic<Node*>, kArenaMaxChunks> chunks{};
    std::atomic<std::uint64_t> arena_next{0};
  };

  [[nodiscard]] const Node* node_at(StateHandle h) const;
  [[nodiscard]] Node* arena_node(const Shard& sh, std::uint64_t index) const;
  [[nodiscard]] std::uint64_t arena_alloc(Shard& sh);

  // Outcome of one table-level insert attempt: done, or retry on the next
  // table — either because a frozen slot showed a migration in flight, or
  // because the probe wrapped a completely full table (possible when a burst
  // of concurrent claims lands between the grow threshold and the freeze;
  // the caller then drives the growth itself so nobody livelocks).
  enum class TryInsert { kDone, kRetryFrozen, kTableFull };
  TryInsert try_insert(Shard& sh, std::size_t shard_idx, Table& t,
                       const State& s, std::uint64_t key, std::uint64_t fp_val,
                       StateHandle parent, const Event* via, std::uint32_t perm,
                       VisitedInsert& out);
  void grow(Shard& sh, Table* old);

  VisitedMode mode_;
  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace mpb
