// Sharded visited set for the stateful explorer — and, in interned mode, the
// search's *state graph*.
//
// The visited set is the hottest shared structure of a stateful search: one
// probe+insert per generated successor. This implementation shards the key
// space over N independent open-addressing tables (power-of-two sized, linear
// probing, grown at ~70% load) and makes every probe and insert *lock-free*:
// a slot is a pair of atomics and insertion follows a claim/publish protocol
// (CAS an empty slot's value to a claim sentinel, write the payload, then
// release-store the real value), so concurrent workers never take a mutex on
// the hot path — not even when their states land in the same shard. The only
// mutex left guards table *growth*, which freezes the old table's empty slots
// (CAS 0 -> frozen), migrates the published entries, and swaps in a table of
// twice the size; inserts that race with a migration simply retry on the new
// table. See docs/ARCHITECTURE.md ("The lock-free slot protocol") for the
// ordering argument.
//
// Three storage modes:
//  * kFingerprint — a slot is the state's 128-bit fingerprint (16 bytes).
//    Probabilistic: a fingerprint collision silently merges two states
//    (probability ~ N^2/2^129; the mode the paper's big runs use).
//  * kInterned — exact semantics at near-fingerprint probe cost. Each shard
//    interns its states in a lock-free chunked arena (stable addresses,
//    geometrically growing chunks) and a slot holds {probe key, arena index}.
//    A probe compares the full state only on a 64-bit key match, so the arena
//    is touched at most once per lookup in expectation.
//  * kCollapse — exact semantics at an order of magnitude fewer bytes per
//    state (SPIN's COLLAPSE compression). Each process's locals block, each
//    receiver's channel multiset and each incoming event is interned exactly
//    once in a shared lock-free BlobStore (core/collapse.hpp), and the arena
//    node stores only a fixed-width tuple of small component indices plus the
//    parent handle and event index. Because component interning compares full
//    contents, tuple equality <=> state equality, so a key match resolves by
//    one W-word memcmp instead of a full state compare. The node arena lives
//    in a ChunkStore and can spill cold chunks to an mmap-backed file
//    (core/spill.hpp); the blob pools stay pinned.
//
// Interned entries additionally record how the search first reached them: the
// handle of the parent entry and the incoming event. That turns the arena
// into a spanning tree of the explored state graph, and `path_from_root`
// recovers the event sequence from the initial state to any entry — which is
// how parallel searches reconstruct counterexample traces without a DFS
// stack (replay the events through execute()). The node (state, parent
// handle, incoming event) is fully written *before* the slot's release-store
// publishes its arena index, so a reader can never observe a half-written
// entry. The cost is one Event (a transition id plus the consumed-message
// vector) and 8 parent bytes per unique state; fingerprint mode stores
// neither and cannot reconstruct.
//
// VisitedMode::kExact (the seed's std::unordered_set<State> of full copies)
// is kept in the explorer as the sequential reference implementation for
// differential testing; parallel searches upgrade it to kInterned, which has
// identical (exact) semantics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/collapse.hpp"
#include "core/spill.hpp"
#include "core/state.hpp"
#include "core/transition.hpp"
#include "util/hash.hpp"

namespace mpb {

enum class VisitedMode {
  kExact,        // full State copies, std::unordered_set (sequential reference)
  kFingerprint,  // 128-bit fingerprints only (probabilistic, memory-flat)
  kInterned,     // arena-interned state graph + 16-byte table handles (exact)
  kCollapse,     // component-interned state graph (exact, compressed, spillable)
};

// Modes that record the spanning tree of the explored state graph (parent
// handles + incoming events) and therefore support path_from_root /
// materialize — what the SCC ignoring pass and parallel trace reconstruction
// require.
[[nodiscard]] constexpr bool visited_stores_graph(VisitedMode m) noexcept {
  return m == VisitedMode::kInterned || m == VisitedMode::kCollapse;
}

[[nodiscard]] std::string_view to_string(VisitedMode m) noexcept;
// Inverse of to_string; nullopt on an unknown name. The single parser shared
// by mpbcheck --visited, the MPB_VISITED env knob and the benches.
[[nodiscard]] std::optional<VisitedMode> visited_mode_from_string(
    std::string_view name) noexcept;

// Handle of an interned entry: shard index in the top 16 bits, arena index in
// the low 48. kNoHandle marks "no entry" — the root's parent, and every
// handle produced by the exact/fingerprint modes (which intern nothing).
using StateHandle = std::uint64_t;
inline constexpr StateHandle kNoHandle = ~std::uint64_t{0};

struct VisitedInsert {
  bool inserted = false;         // true iff the state was newly inserted
  StateHandle handle = kNoHandle;  // the entry (new or existing); interned only
};

class ShardedVisited {
 public:
  // `shards` is rounded up to a power of two and clamped to [1, 1024]. The
  // two-argument form uses the default collapse layout (one locals component,
  // one channel component) and no spilling when mode is kCollapse.
  explicit ShardedVisited(VisitedMode mode, unsigned shards = 1);
  // Collapse-aware form: `layout` describes the per-process / per-receiver
  // component split (CollapseLayout::from(protocol) for real runs) and
  // `spill` configures the optional mmap spill tier for the node arena. Both
  // are ignored outside kCollapse mode.
  ShardedVisited(VisitedMode mode, unsigned shards, CollapseLayout layout,
                 SpillConfig spill);
  ~ShardedVisited();

  ShardedVisited(const ShardedVisited&) = delete;
  ShardedVisited& operator=(const ShardedVisited&) = delete;

  // Inserts `s` (whose fingerprint is `fp`), recording `parent`, `*via`
  // (the event that produced `s` from the parent entry) and `perm` (the
  // index of the symmetry permutation that mapped the concrete successor
  // onto the stored canonical state; 0 = identity) when the entry is new.
  // `via` may be null for the root. Returns whether the state was new and,
  // in interned mode, the handle of its (new or pre-existing) entry.
  // Thread-safe and lock-free (a racing table growth can briefly make an
  // insert wait for the migrated table).
  VisitedInsert insert(const State& s, const Fingerprint& fp,
                       StateHandle parent, const Event* via,
                       std::uint32_t perm = 0);
  bool insert(const State& s, const Fingerprint& fp) {
    return insert(s, fp, kNoHandle, nullptr).inserted;
  }
  bool insert(const State& s) { return insert(s, s.fingerprint()); }

  [[nodiscard]] bool contains(const State& s, const Fingerprint& fp) const;
  [[nodiscard]] bool contains(const State& s) const {
    return contains(s, s.fingerprint());
  }

  // --- state-graph queries (kInterned/kCollapse; empty/null otherwise) -----
  // Events along the recorded parent path from the root to `h`, in execution
  // order. Each entry's parent chain is fully published before its handle
  // becomes visible, so the walk is safe while other threads insert.
  [[nodiscard]] std::vector<Event> path_from_root(StateHandle h) const;
  // The interned state behind `h` (stable address; entries are immutable once
  // published), or nullptr for kNoHandle / non-interned modes. Collapse mode
  // stores no full copy — use materialize() there.
  [[nodiscard]] const State* state_at(StateHandle h) const;
  // A full copy of the state behind `h`: a plain copy in interned mode, a
  // reconstruction from the component tables in collapse mode. nullopt for
  // kNoHandle / fingerprint mode.
  [[nodiscard]] std::optional<State> materialize(StateHandle h) const;
  [[nodiscard]] StateHandle parent_of(StateHandle h) const;
  // One step of the parent walk: the parent handle and incoming event of
  // entry `h`, exactly as recorded at insert time. Parents are returned
  // verbatim — a caller that stored a foreign-shard handle (the distributed
  // driver's cross-rank links) gets it back unmodified and must resolve it
  // itself, which is what path_from_root cannot do. Returns false for
  // kNoHandle / unknown handles / non-graph modes; for the root `ev` is left
  // empty and `parent` is kNoHandle (the root contributes no event).
  bool parent_link(StateHandle h, StateHandle* parent, Event* ev) const;
  // The symmetry permutation recorded at insert time: the index (into the
  // reducer's permutation table) that maps the concrete state which first
  // reached this entry onto the stored canonical representative. 0 for
  // identity / no symmetry / unknown handles.
  [[nodiscard]] std::uint32_t perm_of(StateHandle h) const;

  [[nodiscard]] std::uint64_t size() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  // Bytes of state storage, counted at allocation granularity: every slot
  // table (live and retired), every arena chunk, and — in interned mode —
  // each node's heap payload (state locals + network + the incoming event's
  // consumed messages) as it is inserted. In collapse mode the chunk-backed
  // arenas and blob pools are metered by the ChunkStore and only *resident*
  // bytes count, so chunks spilled to the backing file do not press against
  // the resource guard's memory cap (ExploreConfig::guard), which polls this.
  [[nodiscard]] std::uint64_t approx_bytes() const noexcept;

  // Bytes of node-arena chunks currently advised out to the spill file.
  // Non-zero only in collapse mode with a spill directory configured.
  [[nodiscard]] std::uint64_t spilled_bytes() const noexcept;

  [[nodiscard]] VisitedMode mode() const noexcept { return mode_; }
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  // Serial-search declaration: the caller promises that at most one thread
  // ever probes or inserts at any moment (the sequential and DPOR drivers,
  // and a one-worker pool). Table growth may then free the old table
  // immediately instead of retiring it — without the promise a concurrent
  // probe could still be walking the old slots. Halves the steady-state
  // table footprint (retired sizes form a geometric series equal to the
  // live table). Set before the first insert; queries that only read
  // atomics (size, approx_bytes) remain safe from any thread.
  void set_serial(bool on) noexcept {
    serial_.store(on, std::memory_order_relaxed);
  }

 private:
  // One 16-byte open-addressing slot. `val` is the slot's state machine:
  //   0         empty (claimable)
  //   kClaimed  an inserter won the CAS and is writing key/payload
  //   kFrozen   a migration sealed this empty slot; inserters retry on the
  //             new table, readers treat it as empty
  //   else      published payload: occupied_val(fp.hi) in fingerprint mode,
  //             arena index + 1 in interned mode (collapse uses CTable below)
  // A slot only ever moves 0 -> kClaimed -> payload or 0 -> kFrozen, and
  // `key` is written exactly once, between claim and publish. Readers load
  // `val` with acquire before touching `key` or the arena node, so the
  // publisher's release-store makes both fully visible.
  struct Slot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> val{0};
  };

  struct Table {
    explicit Table(std::size_t capacity)
        : mask(capacity - 1), slots(new Slot[capacity]) {}
    const std::size_t mask;              // capacity - 1 (power of two)
    std::atomic<std::size_t> count{0};   // published entries (grow trigger)
    std::unique_ptr<Slot[]> slots;
  };

  // Collapse-mode table: one 8-byte slot per entry, `key32 << 32 | val32` in
  // a single atomic word. A 32-bit probe key is enough because every key
  // match is confirmed by the tuple memcmp anyway, and the probe position is
  // derived from the stored key itself so migration can re-slot entries
  // without the full fingerprint. The claim embeds the key, so publication
  // is a single release-store and probes for a *different* key can skip a
  // claimed slot without spinning. val32: 0 empty, kCClaimed, the frozen
  // word, else arena index + 1 (the arena caps far below 2^32).
  struct CTable {
    explicit CTable(std::size_t capacity)
        : mask(capacity - 1),
          slots(new std::atomic<std::uint64_t>[capacity]()) {}
    const std::size_t mask;
    std::atomic<std::size_t> count{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  // One interned state-graph node. All fields are written once, between the
  // slot claim and the publishing release-store; immutable afterwards.
  struct Node {
    State s;
    Event in_event;
    StateHandle parent = kNoHandle;
    // Symmetry permutation applied by the canonicalizer (0 = identity).
    std::uint32_t perm = 0;
  };

  // Collapse-mode nodes: a fixed header followed inline by width_ component
  // indices (locals components first, then channel components). Nodes live
  // in ChunkStore-backed byte chunks that may be spilled once cold, and
  // follow the same write-once publication discipline as Node. Two flavors
  // share each shard, distinguished by kWideBit in the arena index:
  //
  //  * NNode (narrow) — the common case: u16 component indices, u16 perm,
  //    packed 48-bit parent. Valid while every component index and the perm
  //    stay below 0xFFFF; 12 + 2*width bytes per state.
  //  * CNode (wide) — the overflow lane: full u32 indices and perm, u64
  //    parent. The first state whose encoding no longer fits narrow goes
  //    here (for these protocols that takes >64Ki distinct blobs in one
  //    component class); already-published narrow nodes stay valid because
  //    their values fit by construction.
  struct CNode {
    StateHandle parent;
    std::uint32_t event;  // events blob index + 1; 0 = none (root)
    std::uint32_t perm;
  };
  struct NNode {
    // Parent handle packed into 48 bits: arena index (bit 31 = the parent's
    // own kWideBit, low 31 bits its index) + shard. {0xFFFFFFFF, 0xFFFF}
    // encodes kNoHandle; a real index can never reach it (arena capacity is
    // far below 2^31).
    std::uint32_t parent_idx;
    std::uint16_t parent_shard;
    std::uint16_t perm;
    std::uint32_t event;  // events blob index + 1; 0 = none (root)
  };
  // Arena-index flag separating the two collapse lanes inside the 48-bit
  // handle index space.
  static constexpr std::uint64_t kWideBit = std::uint64_t{1} << 47;

  // Uniform read view over either node flavor. `tuple` is null when the
  // backing chunk is absent (never for a published handle); its element
  // width depends on `wide`.
  struct CNodeView {
    StateHandle parent = kNoHandle;
    std::uint32_t event = 0;
    std::uint32_t perm = 0;
    bool wide = false;
    const std::byte* tuple = nullptr;
  };

  // Lock-free chunked arena: chunk c holds kArenaFirstChunk << c nodes, so a
  // handful of chunk pointers cover the whole 48-bit index space and node
  // addresses never move. Indices are handed out by fetch_add; a chunk is
  // allocated by whoever first needs it (CAS-published, losers free theirs).
  static constexpr std::size_t kArenaFirstChunk = 256;
  static constexpr std::size_t kArenaMaxChunks = 40;
  // Collapse nodes are small and their chunks are the spill tier's eviction
  // unit, so the collapse arena stops growing chunks geometrically at 16Ki
  // nodes (see carena_pos in visited.cpp): the over-allocated tail and the
  // always-resident newest chunk stay bounded by one chunk (~1 MiB), at the
  // cost of a longer chunk directory (~33M nodes per shard; allocated only
  // in collapse mode).
  static constexpr std::size_t kCArenaMaxChunks = 2048;

  struct Shard {
    std::atomic<Table*> table{nullptr};    // exact/fingerprint/interned modes
    std::atomic<CTable*> ctable{nullptr};  // collapse mode
    // Growth only: serializes migrations; never taken by insert/contains.
    std::mutex grow_mu;
    // Old tables, freed in ~ShardedVisited — or immediately on growth when
    // the serial-search promise holds (set_serial).
    std::vector<Table*> retired;
    std::vector<CTable*> cretired;
    std::array<std::atomic<Node*>, kArenaMaxChunks> chunks{};
    // Collapse-mode node arenas: byte chunks of fixed-stride nodes from the
    // shared ChunkStore. chunk_mu serializes chunk *creation* only (the
    // store cannot take back a loser's chunk, so CAS-racing would leak);
    // never the probe or publish path, and never while grow_mu is wanted.
    // cchunks is the narrow lane (capped geometry, kCArenaMaxChunks long);
    // wchunks the rare wide lane (plain geometric, like the interned arena —
    // its over-allocation tail only matters once the overflow lane
    // dominates, at which point the run has outgrown narrow encoding
    // anyway).
    std::unique_ptr<std::atomic<std::byte*>[]> cchunks;
    std::array<std::atomic<std::byte*>, kArenaMaxChunks> wchunks{};
    std::mutex chunk_mu;
    std::atomic<std::uint64_t> arena_next{0};
    std::atomic<std::uint64_t> warena_next{0};
  };

  [[nodiscard]] const Node* node_at(StateHandle h) const;
  [[nodiscard]] Node* arena_node(const Shard& sh, std::uint64_t index) const;
  [[nodiscard]] std::uint64_t arena_alloc(Shard& sh);

  // Collapse-mode arena accessors. `index48` carries kWideBit; the raw
  // pointer is the node base in the lane's stride.
  [[nodiscard]] std::byte* carena_ptr(const Shard& sh,
                                      std::uint64_t index48) const;
  [[nodiscard]] std::uint64_t carena_alloc(Shard& sh, bool wide);
  // Decoded view of the node at `index48` in `sh` (tuple null if the chunk
  // is absent), and the same addressed by handle (mode/bounds-checked).
  [[nodiscard]] CNodeView cview(const Shard& sh, std::uint64_t index48) const;
  [[nodiscard]] CNodeView cview_at(StateHandle h) const;
  // Does the stored tuple equal the probe tuple (u32 words)? A narrow node
  // can only match when every probe word fits u16, which the elementwise
  // compare gives for free.
  [[nodiscard]] bool tuple_matches(const CNodeView& v,
                                   const std::uint32_t* probe) const noexcept;
  // Split `s` into component blobs and write their indices into out[0..
  // width_). With intern_missing, absent components are interned; otherwise
  // any absent component returns false (the state cannot be in the set).
  bool build_tuple(const State& s, bool intern_missing,
                   std::uint32_t* out) const;

  // Outcome of one table-level insert attempt: done, or retry on the next
  // table — either because a frozen slot showed a migration in flight, or
  // because the probe wrapped a completely full table (possible when a burst
  // of concurrent claims lands between the grow threshold and the freeze;
  // the caller then drives the growth itself so nobody livelocks).
  enum class TryInsert { kDone, kRetryFrozen, kTableFull };
  TryInsert try_insert(Shard& sh, std::size_t shard_idx, Table& t,
                       const State& s, std::uint64_t key, std::uint64_t fp_val,
                       StateHandle parent, const Event* via, std::uint32_t perm,
                       VisitedInsert& out);
  void grow(Shard& sh, Table* old);
  // Collapse-mode twins over the 8-byte-slot CTable. `tuple` is the state's
  // component tuple (width_ words); `key32` the probe key (fp.lo's top half).
  TryInsert ctry_insert(Shard& sh, std::size_t shard_idx, CTable& t,
                        const std::uint32_t* tuple, std::uint32_t key32,
                        StateHandle parent, const Event* via,
                        std::uint32_t perm, VisitedInsert& out);
  void cgrow(Shard& sh, CTable* old);

  VisitedMode mode_;
  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<bool> serial_{false};  // see set_serial
  // Slot tables + interned node payloads; collapse chunk/blob bytes are
  // metered by store_/the blob stores and added in approx_bytes().
  std::atomic<std::uint64_t> bytes_{0};

  // Collapse mode only (null otherwise). store_ backs the node arenas of all
  // shards (spillable chunks) and the blob pools (pinned chunks).
  CollapseLayout layout_;
  std::uint32_t width_ = 0;    // component indices per node
  std::uint32_t nstride_ = 0;  // bytes per NNode incl. u16 tuple, 4-aligned
  std::uint32_t wstride_ = 0;  // bytes per CNode incl. u32 tuple, 8-aligned
  std::unique_ptr<ChunkStore> store_;
  std::unique_ptr<BlobStore> locals_blobs_;
  std::unique_ptr<BlobStore> channel_blobs_;
  std::unique_ptr<BlobStore> event_blobs_;
};

}  // namespace mpb
