// Human-readable rendering and replay of states, events and counterexamples.
#pragma once

#include <ostream>
#include <string>

#include "core/explorer.hpp"
#include "core/protocol.hpp"

namespace mpb {

// "READ_REPL(prop#=1, val=7) from acceptor0" style one-liner.
[[nodiscard]] std::string format_message(const Protocol& proto, const Message& m);

// "proposer0.READ_REPL consuming {...}" style one-liner.
[[nodiscard]] std::string format_event(const Protocol& proto, const Event& e);

// Multi-line dump: each process's local variables plus the in-flight messages.
void print_state(std::ostream& os, const Protocol& proto, const State& s);

// Full counterexample: numbered steps, each with the event and resulting state.
void print_counterexample(std::ostream& os, const Protocol& proto,
                          const ExploreResult& result);

// Re-execute a counterexample from the initial state. Returns true iff every
// step's reached state matches the recorded one and the final state violates
// the named property. Used to certify that reported bugs are real.
[[nodiscard]] bool replay_counterexample(const Protocol& proto,
                                         const ExploreResult& result);

}  // namespace mpb
