// Dispatch and shared helpers only: every search loop lives in the unified
// engine (core/engine.hpp) — explore() picks the driver, and the graph
// walkers / trace replay below are the pieces all drivers share.
#include "core/explorer.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "core/engine.hpp"

namespace mpb {

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kHolds: return "Verified";
    case Verdict::kViolated: return "CE";
    case Verdict::kBudgetExceeded: return ">budget";
    case Verdict::kResourceLimit: return ">resource";
  }
  return "?";
}

std::vector<std::size_t> FullExpansion::select(const State&,
                                               std::span<const Event> events,
                                               const StrategyContext&) {
  std::vector<std::size_t> all(events.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

std::vector<TraceStep> replay_trace(const Protocol& proto,
                                    std::span<const Event> events,
                                    const ExecuteOptions& opts) {
  std::vector<TraceStep> trace;
  trace.reserve(events.size());
  State s = proto.initial();
  for (const Event& e : events) {
    s = execute(proto, s, e, opts);
    trace.push_back(TraceStep{e, s});
  }
  return trace;
}

ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                      ReductionStrategy* strategy) {
  const bool stateful = cfg.mode == SearchMode::kStateful;
  // The SCC ignoring fix walks the stored state graph; upgrade the visited
  // mode so the graph exists (kExact -> kInterned preserves exact semantics;
  // kFingerprint stores no states at all, so it upgrades too). kCollapse
  // already records the graph and is left alone.
  ExploreConfig adjusted;
  const ExploreConfig* use = &cfg;
  if (stateful && strategy != nullptr && strategy->wants_scc_ignoring_pass() &&
      !visited_stores_graph(cfg.visited)) {
    adjusted = cfg;
    adjusted.visited = VisitedMode::kInterned;
    use = &adjusted;
  }
  if (use->threads > 1 && stateful &&
      (strategy == nullptr || !strategy->needs_dfs_stack())) {
    return engine::PoolDriver(proto, *use, strategy).run();
  }
  return engine::SequentialDriver(proto, *use, strategy).run();
}

ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                      std::unique_ptr<ReductionStrategy> strategy) {
  return explore(proto, cfg, strategy.get());
}

ExploreResult explore_full(const Protocol& proto) {
  return explore(proto, ExploreConfig{});
}

std::vector<State> reachable_states(const Protocol& proto, std::uint64_t max_states) {
  std::unordered_set<State, StateHash> seen;
  // A deque keeps references stable across push_back, so each expansion reads
  // the frontier node in place instead of deep-copying it.
  std::deque<State> frontier;
  frontier.push_back(proto.initial());
  seen.insert(proto.initial());
  std::size_t head = 0;
  while (head < frontier.size()) {
    if (seen.size() > max_states) return {};
    const State& s = frontier[head++];
    for (const Event& e : enumerate_events(proto, s)) {
      State succ = execute(proto, s, e);
      if (seen.insert(succ).second) frontier.push_back(std::move(succ));
    }
  }
  std::vector<State> out(std::make_move_iterator(frontier.begin()),
                         std::make_move_iterator(frontier.end()));
  std::sort(out.begin(), out.end(),
            [](const State& a, const State& b) { return a < b; });
  return out;
}

std::vector<Edge> reachable_edges(const Protocol& proto, std::uint64_t max_states) {
  std::unordered_set<State, StateHash> seen;
  std::deque<State> frontier;
  frontier.push_back(proto.initial());
  seen.insert(proto.initial());
  std::vector<Edge> edges;
  std::size_t head = 0;
  while (head < frontier.size()) {
    if (seen.size() > max_states) return {};
    const State& s = frontier[head++];
    for (const Event& e : enumerate_events(proto, s)) {
      State succ = execute(proto, s, e);
      edges.push_back(Edge{s, proto.transition(e.tid).name, e.consumed, succ});
      if (seen.insert(succ).second) frontier.push_back(std::move(succ));
    }
  }
  return edges;
}

}  // namespace mpb
