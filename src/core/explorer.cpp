#include "core/explorer.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mpb {

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kHolds: return "Verified";
    case Verdict::kViolated: return "CE";
    case Verdict::kBudgetExceeded: return ">budget";
  }
  return "?";
}

std::vector<std::size_t> FullExpansion::select(const State&,
                                               std::span<const Event> events,
                                               const StrategyContext&) {
  std::vector<std::size_t> all(events.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

namespace {

// Visited-set abstraction over exact states vs fingerprints.
class VisitedSet {
 public:
  explicit VisitedSet(VisitedMode mode) : mode_(mode) {}

  // Returns true if `s` was newly inserted.
  bool insert(const State& s) {
    if (mode_ == VisitedMode::kExact) return exact_.insert(s).second;
    return fp_.insert(s.fingerprint()).second;
  }

  [[nodiscard]] bool contains(const State& s) const {
    if (mode_ == VisitedMode::kExact) return exact_.contains(s);
    return fp_.contains(s.fingerprint());
  }

  [[nodiscard]] std::uint64_t size() const noexcept {
    return mode_ == VisitedMode::kExact ? exact_.size() : fp_.size();
  }

 private:
  VisitedMode mode_;
  std::unordered_set<State, StateHash> exact_;
  std::unordered_set<Fingerprint, FingerprintHash> fp_;
};

// Multiset of states on the current DFS stack, for the cycle proviso and for
// stateless cycle cut-off. Fingerprint-based: a collision can only cause a
// conservative (sound) full expansion or an early path cut.
class StackSet {
 public:
  void push(const State& s) { ++counts_[s.fingerprint()]; }
  void pop(const State& s) {
    auto it = counts_.find(s.fingerprint());
    if (it != counts_.end() && --it->second == 0) counts_.erase(it);
  }
  [[nodiscard]] bool contains(const State& s) const {
    return counts_.contains(s.fingerprint());
  }

 private:
  std::unordered_map<Fingerprint, std::uint32_t, FingerprintHash> counts_;
};

struct Frame {
  State s;
  std::vector<Event> chosen;
  std::size_t next = 0;
};

class Search {
 public:
  Search(const Protocol& proto, const ExploreConfig& cfg, ReductionStrategy* strategy)
      : proto_(proto), cfg_(cfg), strategy_(strategy), visited_(cfg.visited) {
    exec_opts_.validate_annotations = cfg.validate_annotations;
  }

  ExploreResult run() {
    start_ = std::chrono::steady_clock::now();
    State init = proto_.initial();
    if (check_violation(init)) {
      finish();
      return std::move(result_);
    }
    if (cfg_.mode == SearchMode::kStateful) {
      visited_.insert(cfg_.canonicalize ? cfg_.canonicalize(init) : init);
    }
    push_frame(std::move(init));

    while (!frames_.empty() && !done_) {
      if (over_budget()) {
        truncated_ = true;
        break;
      }
      Frame& f = frames_.back();
      if (f.next >= f.chosen.size()) {
        stack_set_.pop(f.s);
        frames_.pop_back();
        continue;
      }
      const Event& e = f.chosen[f.next++];
      std::string failed;
      State succ = execute(proto_, f.s, e, exec_opts_, &failed);
      ++result_.stats.events_executed;
      if (!failed.empty()) {
        result_.verdict = Verdict::kViolated;
        result_.violated_property = failed;
        record_counterexample(e, succ);
        if (cfg_.stop_at_first_violation) break;
      }

      if (cfg_.mode == SearchMode::kStateful) {
        if (!visited_.insert(cfg_.canonicalize ? cfg_.canonicalize(succ) : succ)) {
          continue;
        }
      } else {
        if (stack_set_.contains(succ)) continue;  // cut cycles in stateless mode
        if (frames_.size() >= cfg_.max_depth) {
          truncated_ = true;
          continue;
        }
      }

      if (check_violation(succ)) {
        record_counterexample(e, succ);
        if (cfg_.stop_at_first_violation) break;
        continue;
      }
      push_frame(std::move(succ));
    }
    finish();
    return std::move(result_);
  }

 private:
  void push_frame(State s) {
    ++result_.stats.states_visited;
    result_.stats.max_depth_seen =
        std::max(result_.stats.max_depth_seen, static_cast<unsigned>(frames_.size()) + 1);

    std::vector<Event> enabled = enumerate_events(proto_, s);
    result_.stats.events_enabled += enabled.size();
    if (enabled.empty()) {
      ++result_.stats.terminal_states;
      if (cfg_.collect_terminals) {
        result_.terminal_fingerprints.push_back(
            cfg_.canonicalize ? cfg_.canonicalize(s).fingerprint() : s.fingerprint());
      }
      stack_set_.push(s);
      frames_.push_back(Frame{std::move(s), {}, 0});
      return;
    }

    std::vector<Event> chosen;
    if (strategy_ == nullptr) {
      chosen = std::move(enabled);
    } else {
      StrategyContext ctx{
          [&](const Event& e) { return execute(proto_, s, e, exec_opts_); },
          [&](const State& st) { return stack_set_.contains(st); }};
      std::vector<std::size_t> idx = strategy_->select(s, enabled, ctx);
      if (idx.size() >= enabled.size()) ++result_.stats.full_expansions;
      chosen.reserve(idx.size());
      for (std::size_t i : idx) chosen.push_back(std::move(enabled[i]));
    }
    result_.stats.events_selected += chosen.size();
    stack_set_.push(s);
    frames_.push_back(Frame{std::move(s), std::move(chosen), 0});
  }

  // Returns true (and records) if a property is violated in `s`.
  bool check_violation(const State& s) {
    const Property* p = proto_.violated_property(s);
    if (p == nullptr) return false;
    result_.verdict = Verdict::kViolated;
    result_.violated_property = p->name;
    if (cfg_.stop_at_first_violation) done_ = true;
    return true;
  }

  void record_counterexample(const Event& last, const State& violating) {
    result_.counterexample.clear();
    for (std::size_t i = 0; i + 1 < frames_.size(); ++i) {
      const Frame& f = frames_[i];
      result_.counterexample.push_back(
          TraceStep{f.chosen[f.next - 1], frames_[i + 1].s});
    }
    result_.counterexample.push_back(TraceStep{last, violating});
  }

  [[nodiscard]] bool over_budget() {
    if (result_.stats.events_executed > cfg_.max_events) return true;
    const std::uint64_t stored = cfg_.mode == SearchMode::kStateful
                                     ? visited_.size()
                                     : result_.stats.states_visited;
    if (stored > cfg_.max_states) return true;
    if (++budget_tick_ % 1024 == 0) {
      if (elapsed() > cfg_.max_seconds) return true;
    }
    return false;
  }

  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  void finish() {
    result_.stats.seconds = elapsed();
    result_.stats.states_stored = cfg_.mode == SearchMode::kStateful
                                      ? visited_.size()
                                      : result_.stats.states_visited;
    if (result_.verdict != Verdict::kViolated && truncated_) {
      result_.verdict = Verdict::kBudgetExceeded;
    }
    auto& tf = result_.terminal_fingerprints;
    std::sort(tf.begin(), tf.end());
    tf.erase(std::unique(tf.begin(), tf.end()), tf.end());
  }

  const Protocol& proto_;
  const ExploreConfig& cfg_;
  ReductionStrategy* strategy_;
  ExecuteOptions exec_opts_;
  VisitedSet visited_;
  StackSet stack_set_;
  std::vector<Frame> frames_;
  ExploreResult result_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t budget_tick_ = 0;
  bool truncated_ = false;
  bool done_ = false;
};

}  // namespace

ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                      ReductionStrategy* strategy) {
  return Search(proto, cfg, strategy).run();
}

ExploreResult explore_full(const Protocol& proto) {
  return explore(proto, ExploreConfig{});
}

std::vector<State> reachable_states(const Protocol& proto, std::uint64_t max_states) {
  std::unordered_set<State, StateHash> seen;
  std::vector<State> frontier{proto.initial()};
  seen.insert(proto.initial());
  std::size_t head = 0;
  while (head < frontier.size()) {
    if (seen.size() > max_states) return {};
    const State s = frontier[head++];  // copy: frontier may reallocate below
    for (const Event& e : enumerate_events(proto, s)) {
      State succ = execute(proto, s, e);
      if (seen.insert(succ).second) frontier.push_back(std::move(succ));
    }
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const State& a, const State& b) { return a < b; });
  return frontier;
}

std::vector<Edge> reachable_edges(const Protocol& proto, std::uint64_t max_states) {
  std::unordered_set<State, StateHash> seen;
  std::vector<State> frontier{proto.initial()};
  seen.insert(proto.initial());
  std::vector<Edge> edges;
  std::size_t head = 0;
  while (head < frontier.size()) {
    if (seen.size() > max_states) return {};
    const State s = frontier[head++];
    for (const Event& e : enumerate_events(proto, s)) {
      State succ = execute(proto, s, e);
      edges.push_back(Edge{s, proto.transition(e.tid).name, e.consumed, succ});
      if (seen.insert(succ).second) frontier.push_back(std::move(succ));
    }
  }
  return edges;
}

}  // namespace mpb
