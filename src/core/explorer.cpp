#include "core/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/work_deque.hpp"

namespace mpb {

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kHolds: return "Verified";
    case Verdict::kViolated: return "CE";
    case Verdict::kBudgetExceeded: return ">budget";
  }
  return "?";
}

std::vector<std::size_t> FullExpansion::select(const State&,
                                               std::span<const Event> events,
                                               const StrategyContext&) {
  std::vector<std::size_t> all(events.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

std::vector<TraceStep> replay_trace(const Protocol& proto,
                                    std::span<const Event> events,
                                    const ExecuteOptions& opts) {
  std::vector<TraceStep> trace;
  trace.reserve(events.size());
  State s = proto.initial();
  for (const Event& e : events) {
    s = execute(proto, s, e, opts);
    trace.push_back(TraceStep{e, s});
  }
  return trace;
}

namespace {

[[nodiscard]] unsigned auto_shards(const ExploreConfig& cfg) {
  if (cfg.visited_shards != 0) return cfg.visited_shards;
  return cfg.threads > 1 ? cfg.threads * 4 : 1;
}

// Canonicalize (when configured), fingerprint and insert a state, threading
// the state-graph parent/via. The single implementation behind the root and
// successor inserts of both search engines; `fp_out` receives the canonical
// fingerprint (the visited key, reused as the terminal fingerprint).
template <typename Set>
VisitedInsert insert_canonical(Set& visited,
                               const std::function<State(const State&)>& canonicalize,
                               const State& s, StateHandle parent,
                               const Event* via, Fingerprint* fp_out) {
  if (canonicalize) {
    const State canon = canonicalize(s);
    *fp_out = canon.fingerprint();
    return visited.insert(canon, *fp_out, parent, via);
  }
  *fp_out = s.fingerprint();
  return visited.insert(s, *fp_out, parent, via);
}

// The matching membership probe (the visited-set cycle proviso's oracle).
template <typename Set>
bool contains_canonical(const Set& visited,
                        const std::function<State(const State&)>& canonicalize,
                        const State& s) {
  if (canonicalize) {
    const State canon = canonicalize(s);
    return visited.contains(canon, canon.fingerprint());
  }
  return visited.contains(s, s.fingerprint());
}

// Visited-set abstraction over the three storage modes. kExact keeps the
// seed's std::unordered_set of full State copies as the sequential reference
// implementation; kFingerprint and kInterned share the sharded table, and
// kInterned records the state graph (parent handle + incoming event per
// entry). All search modes insert through this interface, so whichever mode
// runs, the graph semantics are identical.
class VisitedSet {
 public:
  VisitedSet(VisitedMode mode, unsigned shards)
      : mode_(mode),
        sharded_(mode == VisitedMode::kExact ? VisitedMode::kInterned : mode,
                 shards) {}

  // `fp` must be s.fingerprint().
  VisitedInsert insert(const State& s, const Fingerprint& fp,
                       StateHandle parent, const Event* via) {
    if (mode_ == VisitedMode::kExact) {
      return {exact_.insert(s).second, kNoHandle};
    }
    return sharded_.insert(s, fp, parent, via);
  }

  [[nodiscard]] bool contains(const State& s, const Fingerprint& fp) const {
    if (mode_ == VisitedMode::kExact) return exact_.contains(s);
    return sharded_.contains(s, fp);
  }

  [[nodiscard]] std::uint64_t size() const noexcept {
    return mode_ == VisitedMode::kExact ? exact_.size() : sharded_.size();
  }

 private:
  VisitedMode mode_;
  std::unordered_set<State, StateHash> exact_;
  ShardedVisited sharded_;
};

// Multiset of states on the current DFS stack, for the cycle proviso and for
// stateless cycle cut-off. Fingerprint-based: a collision can only cause a
// conservative (sound) full expansion or an early path cut. State fingerprints
// are cached, so each probe is O(1) hash work.
class StackSet {
 public:
  void push(const State& s) { ++counts_[s.fingerprint()]; }
  void pop(const State& s) {
    auto it = counts_.find(s.fingerprint());
    if (it != counts_.end() && --it->second == 0) counts_.erase(it);
  }
  [[nodiscard]] bool contains(const State& s) const {
    return counts_.contains(s.fingerprint());
  }

 private:
  std::unordered_map<Fingerprint, std::uint32_t, FingerprintHash> counts_;
};

struct Frame {
  State s;
  std::vector<Event> chosen;
  std::size_t next = 0;
  // This state's entry in the interned state graph (kNoHandle in the exact /
  // fingerprint modes and in stateless searches).
  StateHandle handle = kNoHandle;
};

class Search {
 public:
  Search(const Protocol& proto, const ExploreConfig& cfg, ReductionStrategy* strategy)
      : proto_(proto),
        cfg_(cfg),
        strategy_(strategy),
        visited_(cfg.visited, auto_shards(cfg)) {
    exec_opts_.validate_annotations = cfg.validate_annotations;
  }

  ExploreResult run() {
    start_ = std::chrono::steady_clock::now();
    hash_passes_at_start_ = state_full_hash_passes();
    hash_queries_at_start_ = state_hash_queries();
    fallbacks_at_start_ = strategy_ ? strategy_->proviso_fallbacks() : 0;
    State init = proto_.initial();
    if (check_violation(init)) {
      finish();
      return std::move(result_);
    }
    if (cfg_.mode == SearchMode::kStateful) {
      // Canonicalize once; the canonical fingerprint doubles as the terminal
      // fingerprint below.
      Fingerprint canon_fp;
      const VisitedInsert root = insert_canonical(
          visited_, cfg_.canonicalize, init, kNoHandle, nullptr, &canon_fp);
      push_frame(std::move(init), &canon_fp, root.handle);
    } else {
      push_frame(std::move(init), nullptr, kNoHandle);
    }

    while (!frames_.empty() && !done_) {
      if (over_budget()) {
        truncated_ = true;
        break;
      }
      Frame& f = frames_.back();
      if (f.next >= f.chosen.size()) {
        stack_set_.pop(f.s);
        frames_.pop_back();
        continue;
      }
      const Event& e = f.chosen[f.next++];
      std::string failed;
      State succ = execute(proto_, f.s, e, exec_opts_, &failed);
      ++result_.stats.events_executed;
      maybe_progress();
      if (!failed.empty()) {
        result_.verdict = Verdict::kViolated;
        result_.violated_property = failed;
        if (cfg_.on_violation) cfg_.on_violation(failed);
        record_counterexample(e, succ);
        if (cfg_.stop_at_first_violation) break;
      }

      Fingerprint canon_fp;
      const Fingerprint* canon_fp_ptr = nullptr;
      StateHandle succ_handle = kNoHandle;
      if (cfg_.mode == SearchMode::kStateful) {
        // One canonicalization per successor, reused for the visited probe
        // and (below) the terminal fingerprint. The insert threads the state
        // graph: parent = the expanding frame's entry, via = the event taken.
        const VisitedInsert ins = insert_canonical(
            visited_, cfg_.canonicalize, succ, f.handle, &e, &canon_fp);
        if (!ins.inserted) continue;
        canon_fp_ptr = &canon_fp;
        succ_handle = ins.handle;
      } else {
        if (stack_set_.contains(succ)) continue;  // cut cycles in stateless mode
        if (frames_.size() >= cfg_.max_depth) {
          truncated_ = true;
          continue;
        }
      }

      if (check_violation(succ)) {
        record_counterexample(e, succ);
        if (cfg_.stop_at_first_violation) break;
        continue;
      }
      push_frame(std::move(succ), canon_fp_ptr, succ_handle);
    }
    finish();
    return std::move(result_);
  }

 private:
  // `canon_fp` is the fingerprint of the canonicalized state when the caller
  // already computed it (stateful mode); nullptr means compute on demand.
  void push_frame(State s, const Fingerprint* canon_fp, StateHandle handle) {
    ++result_.stats.states_visited;
    result_.stats.max_depth_seen =
        std::max(result_.stats.max_depth_seen, static_cast<unsigned>(frames_.size()) + 1);

    std::vector<Event> enabled = enumerate_events(proto_, s);
    result_.stats.events_enabled += enabled.size();
    if (enabled.empty()) {
      ++result_.stats.terminal_states;
      if (cfg_.collect_terminals) {
        Fingerprint fp;
        if (canon_fp != nullptr) {
          fp = *canon_fp;
        } else {
          fp = cfg_.canonicalize ? cfg_.canonicalize(s).fingerprint()
                                 : s.fingerprint();
        }
        result_.terminal_fingerprints.push_back(fp);
      }
      stack_set_.push(s);
      frames_.push_back(Frame{std::move(s), {}, 0, handle});
      return;
    }

    std::vector<Event> chosen;
    if (strategy_ == nullptr) {
      chosen = std::move(enabled);
    } else {
      StrategyContext ctx{
          [&](const Event& e) { return execute(proto_, s, e, exec_opts_); },
          [&](const State& st) { return stack_set_.contains(st); },
          cfg_.mode == SearchMode::kStateful
              ? std::function<bool(const State&)>([&](const State& st) {
                  return contains_canonical(visited_, cfg_.canonicalize, st);
                })
              : std::function<bool(const State&)>{}};
      std::vector<std::size_t> idx = strategy_->select(s, enabled, ctx);
      if (idx.size() >= enabled.size()) ++result_.stats.full_expansions;
      chosen.reserve(idx.size());
      for (std::size_t i : idx) chosen.push_back(std::move(enabled[i]));
    }
    result_.stats.events_selected += chosen.size();
    stack_set_.push(s);
    frames_.push_back(Frame{std::move(s), std::move(chosen), 0, handle});
  }

  // Returns true (and records) if a property is violated in `s`.
  bool check_violation(const State& s) {
    const Property* p = proto_.violated_property(s);
    if (p == nullptr) return false;
    result_.verdict = Verdict::kViolated;
    result_.violated_property = p->name;
    if (cfg_.on_violation) cfg_.on_violation(p->name);
    if (cfg_.stop_at_first_violation) done_ = true;
    return true;
  }

  // Progress hook: fires every cfg_.progress_every_events executed events
  // with a stats snapshot whose states_stored/seconds are current.
  void maybe_progress() {
    if (!cfg_.on_progress || cfg_.progress_every_events == 0) return;
    if (result_.stats.events_executed % cfg_.progress_every_events != 0) return;
    ExploreStats snap = result_.stats;
    snap.states_stored = cfg_.mode == SearchMode::kStateful
                             ? visited_.size()
                             : snap.states_visited;
    snap.frontier = frames_.size();
    snap.seconds = elapsed();
    cfg_.on_progress(snap);
  }

  // The DFS stack is the parent chain of the violating state: gather its
  // event sequence and rebuild the trace through the shared replay helper
  // (execute() is deterministic, so the replayed states are the ones seen).
  void record_counterexample(const Event& last, const State&) {
    std::vector<Event> events;
    events.reserve(frames_.size());
    for (std::size_t i = 0; i + 1 < frames_.size(); ++i) {
      const Frame& f = frames_[i];
      events.push_back(f.chosen[f.next - 1]);
    }
    events.push_back(last);
    result_.counterexample = replay_trace(proto_, events, exec_opts_);
  }

  [[nodiscard]] bool over_budget() {
    if (result_.stats.events_executed > cfg_.max_events) return true;
    const std::uint64_t stored = cfg_.mode == SearchMode::kStateful
                                     ? visited_.size()
                                     : result_.stats.states_visited;
    if (stored > cfg_.max_states) return true;
    if (++budget_tick_ % 1024 == 0) {
      if (elapsed() > cfg_.max_seconds) return true;
    }
    return false;
  }

  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  void finish() {
    result_.stats.seconds = elapsed();
    result_.stats.states_stored = cfg_.mode == SearchMode::kStateful
                                      ? visited_.size()
                                      : result_.stats.states_visited;
    result_.stats.full_hash_passes =
        state_full_hash_passes() - hash_passes_at_start_;
    result_.stats.hash_queries = state_hash_queries() - hash_queries_at_start_;
    if (strategy_ != nullptr) {
      result_.stats.proviso_fallbacks =
          strategy_->proviso_fallbacks() - fallbacks_at_start_;
    }
    if (result_.verdict != Verdict::kViolated && truncated_) {
      result_.verdict = Verdict::kBudgetExceeded;
    }
    auto& tf = result_.terminal_fingerprints;
    std::sort(tf.begin(), tf.end());
    tf.erase(std::unique(tf.begin(), tf.end()), tf.end());
  }

  const Protocol& proto_;
  const ExploreConfig& cfg_;
  ReductionStrategy* strategy_;
  ExecuteOptions exec_opts_;
  VisitedSet visited_;
  StackSet stack_set_;
  std::vector<Frame> frames_;
  ExploreResult result_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t hash_passes_at_start_ = 0;
  std::uint64_t hash_queries_at_start_ = 0;
  std::uint64_t fallbacks_at_start_ = 0;
  std::uint64_t budget_tick_ = 0;
  bool truncated_ = false;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Parallel stateful search: a fixed worker pool over per-worker work-stealing
// deques. Each worker expands successors off the bottom of its own Chase-Lev
// deque (LIFO — the search stays depth-first and cache-warm) and, when it
// runs dry, steals from the top of a random victim's deque (FIFO — a steal
// grabs the shallowest, i.e. largest, open subtree). A small mutex-guarded
// global injector seeds the root and absorbs overflow from pathologically
// wide expansions; it is not on the steady-state path, so expanding a state
// takes no lock and wakes nobody. Termination is an atomic outstanding-work
// counter: +1 per queued item, -1 when its expansion completes; a worker
// that finds no work anywhere and reads 0 is done. The sharded visited
// table admits each unique state exactly once, which (for the unreduced
// search) makes states_stored / terminal_states / events_executed
// independent of the schedule and equal to the sequential search's counts.
//
// Allocation: workers recycle Item objects (the State successor buffers)
// through per-worker free lists, and execute_into() copy-assigns into the
// recycled state so its locals/network vector capacity is reused. In steady
// state an expansion touches the global allocator only to intern a genuinely
// new state, not once per generated successor. Items are handed over by
// pointer (push/steal transfer ownership); the memory itself is owned by the
// per-worker backing stores, which outlive the pool.
//
// With a reduction strategy (SPOR under the visited-set cycle proviso), one
// shared strategy object serves all workers — its select() must be
// thread-safe (guaranteed by needs_dfs_stack() == false, see explorer.hpp).
// The chosen sets then depend on visited-set contents at evaluation time, so
// the reduced state count varies with the schedule; the verdict does not.
//
// Counterexamples: every insert records the successor's parent entry and
// incoming event in the interned arena. The first violation captures
// {parent handle, final event, violating state}; after the pool drains, the
// parent walk (ShardedVisited::path_from_root) plus the final event is
// replayed through execute() into a TraceStep path. Fingerprint mode stores
// no states (no trace); a symmetry canonicalizer stores representative
// states whose recorded events need not form a concrete run (no trace).
class ParallelSearch {
 public:
  ParallelSearch(const Protocol& proto, const ExploreConfig& cfg,
                 ReductionStrategy* strategy)
      : proto_(proto),
        cfg_(cfg),
        strategy_(strategy),
        threads_(std::clamp(cfg.threads, 1u, 256u)),
        visited_(cfg.visited == VisitedMode::kExact ? VisitedMode::kInterned
                                                    : cfg.visited,
                 auto_shards(cfg)) {
    exec_opts_.validate_annotations = cfg.validate_annotations;
  }

  ExploreResult run() {
    start_ = std::chrono::steady_clock::now();
    const std::uint64_t passes0 = state_full_hash_passes();
    const std::uint64_t queries0 = state_hash_queries();
    const std::uint64_t fallbacks0 =
        strategy_ ? strategy_->proviso_fallbacks() : 0;

    worker_stats_.assign(threads_, ExploreStats{});
    worker_terminals_.assign(threads_, {});
    workers_.clear();
    workers_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w) {
      workers_.push_back(std::make_unique<Worker>(w));
    }

    State init = proto_.initial();
    if (const Property* p = proto_.violated_property(init)) {
      result_.verdict = Verdict::kViolated;
      result_.violated_property = p->name;
    } else {
      Fingerprint canon_fp;
      const VisitedInsert root = insert_canonical(
          visited_, cfg_.canonicalize, init, kNoHandle, nullptr, &canon_fp);
      Item* root_item = workers_[0]->alloc();
      root_item->s = std::move(init);
      root_item->canon_fp = canon_fp;
      root_item->handle = root.handle;
      root_item->depth = 0;
      injector_.push_back(root_item);
      outstanding_.store(1, std::memory_order_relaxed);

      std::vector<std::thread> pool;
      pool.reserve(threads_);
      for (unsigned w = 0; w < threads_; ++w) {
        pool.emplace_back([this, w] { worker(w); });
      }
      for (std::thread& t : pool) t.join();
    }

    // Merge per-worker stats.
    for (const ExploreStats& st : worker_stats_) {
      result_.stats.states_visited += st.states_visited;
      result_.stats.events_executed += st.events_executed;
      result_.stats.events_selected += st.events_selected;
      result_.stats.events_enabled += st.events_enabled;
      result_.stats.terminal_states += st.terminal_states;
      result_.stats.full_expansions += st.full_expansions;
      result_.stats.max_depth_seen =
          std::max(result_.stats.max_depth_seen, st.max_depth_seen);
    }
    auto& tf = result_.terminal_fingerprints;
    for (auto& v : worker_terminals_) tf.insert(tf.end(), v.begin(), v.end());
    std::sort(tf.begin(), tf.end());
    tf.erase(std::unique(tf.begin(), tf.end()), tf.end());

    if (result_.verdict == Verdict::kViolated && pending_.armed &&
        visited_.mode() == VisitedMode::kInterned && !cfg_.canonicalize) {
      std::vector<Event> events = visited_.path_from_root(pending_.parent);
      events.push_back(pending_.last);
      result_.counterexample = replay_trace(proto_, events, exec_opts_);
    }

    result_.stats.states_stored = visited_.size();
    result_.stats.threads_used = threads_;
    result_.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    result_.stats.full_hash_passes = state_full_hash_passes() - passes0;
    result_.stats.hash_queries = state_hash_queries() - queries0;
    if (strategy_ != nullptr) {
      result_.stats.proviso_fallbacks =
          strategy_->proviso_fallbacks() - fallbacks0;
    }
    if (result_.verdict != Verdict::kViolated &&
        truncated_.load(std::memory_order_relaxed)) {
      result_.verdict = Verdict::kBudgetExceeded;
    }
    return std::move(result_);
  }

 private:
  struct Item {
    State s;
    // Fingerprint of the canonicalized state, computed once at visited-insert
    // time and reused as the terminal fingerprint.
    Fingerprint canon_fp;
    // This state's entry in the interned state graph (kNoHandle when the
    // visited set is fingerprint-only).
    StateHandle handle = kNoHandle;
    unsigned depth = 0;
  };

  // A deque larger than this donates new items to the global injector instead
  // of growing without bound; in practice only pathologically wide searches
  // ever hit it.
  static constexpr std::size_t kInjectorOverflow = 1u << 16;

  // Per-worker machinery: the stealing deque, the Item pool (free list over a
  // stable-address backing store — recycling keeps the State vector capacity
  // hot), and the expansion scratch buffers. Everything here is touched by
  // its owner only, except `deque` (thieves steal) and item memory itself
  // (whoever extracts an item expands and then releases it into *their own*
  // free list; the backing stores outlive the run, so cross-worker recycling
  // is safe).
  struct Worker {
    explicit Worker(unsigned wid) : rng(0x9e3779b97f4a7c15ULL * (wid + 1) + 1) {}

    Item* alloc() {
      if (!free.empty()) {
        Item* it = free.back();
        free.pop_back();
        return it;
      }
      storage.emplace_back();
      return &storage.back();
    }
    void release(Item* it) { free.push_back(it); }

    [[nodiscard]] std::uint64_t next_rand() {  // xorshift64
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    }

    WorkStealingDeque<Item> deque;
    std::deque<Item> storage;  // stable addresses; owns every Item's memory
    std::vector<Item*> free;
    std::vector<Event> enabled;      // enumerate_events scratch
    std::vector<std::size_t> idx;    // strategy selection scratch
    std::string failed;              // assertion-label scratch
    std::uint64_t rng;
  };

  void worker(unsigned wid) {
    Worker& me = *workers_[wid];
    ExploreStats& st = worker_stats_[wid];
    std::uint64_t tick = 0;
    unsigned idle = 0;
    for (;;) {
      if (stopped()) return;  // drop remaining work after a stop
      Item* item = me.deque.pop();
      if (item == nullptr) item = acquire_work(me, wid);
      if (item == nullptr) {
        if (outstanding_.load(std::memory_order_acquire) == 0) return;
        backoff(idle);
        continue;
      }
      idle = 0;
      expand(*item, me, st, worker_terminals_[wid]);
      me.release(item);
      if (++tick % 256 == 0 && over_time()) signal_truncated();
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        return;  // last in-flight item: the search is exhausted
      }
    }
  }

  // Steal from random victims, then fall back to the injector.
  Item* acquire_work(Worker& me, unsigned wid) {
    if (threads_ > 1) {
      const auto start = static_cast<unsigned>(me.next_rand() % threads_);
      for (unsigned k = 0; k < threads_; ++k) {
        const unsigned v = (start + k) % threads_;
        if (v == wid) continue;
        if (Item* it = workers_[v]->deque.steal()) return it;
      }
    }
    std::lock_guard<std::mutex> lk(inj_mu_);
    if (injector_.empty()) return nullptr;
    Item* it = injector_.back();
    injector_.pop_back();
    return it;
  }

  // Starvation backoff: yield first, then sleep in growing slices so an idle
  // worker on an oversubscribed box stops eating the expanding workers'
  // quanta. Termination latency is bounded by the longest slice (~1 ms).
  static void backoff(unsigned& idle) {
    if (++idle < 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(std::min(50u * (idle - 15), 1000u)));
    }
  }

  void push_work(Worker& me, Item* succ) {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    if (me.deque.size_hint() >= kInjectorOverflow) {
      std::lock_guard<std::mutex> lk(inj_mu_);
      injector_.push_back(succ);
    } else {
      me.deque.push(succ);
    }
  }

  void expand(Item& item, Worker& me, ExploreStats& st,
              std::vector<Fingerprint>& terminals) {
    ++st.states_visited;
    st.max_depth_seen = std::max(st.max_depth_seen, item.depth + 1);

    enumerate_events(proto_, item.s, me.enabled);
    st.events_enabled += me.enabled.size();
    if (me.enabled.empty()) {
      ++st.terminal_states;
      if (cfg_.collect_terminals) terminals.push_back(item.canon_fp);
      return;
    }

    std::size_t n_selected = me.enabled.size();
    const bool reduced = strategy_ != nullptr;
    if (reduced) {
      // The shared strategy evaluates its cycle proviso against the global
      // visited set (no DFS stack exists here); see por/spor.cpp for why
      // that probe is sound under concurrent inserts.
      StrategyContext ctx{
          [&](const Event& e) { return execute(proto_, item.s, e, exec_opts_); },
          /*on_stack=*/{},
          [&](const State& s) {
            return contains_canonical(visited_, cfg_.canonicalize, s);
          }};
      me.idx = strategy_->select(item.s, me.enabled, ctx);
      n_selected = me.idx.size();
      if (n_selected >= me.enabled.size()) ++st.full_expansions;
    }
    st.events_selected += n_selected;

    for (std::size_t j = 0; j < n_selected; ++j) {
      if (stopped()) return;
      const Event& e = me.enabled[reduced ? me.idx[j] : j];
      Item* succ = me.alloc();
      execute_into(proto_, item.s, e, exec_opts_, &me.failed, succ->s);
      ++st.events_executed;
      const std::uint64_t global_events =
          events_budget_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (global_events > cfg_.max_events) {
        me.release(succ);
        signal_truncated();
        return;
      }
      if (cfg_.on_progress && cfg_.progress_every_events != 0 &&
          global_events % cfg_.progress_every_events == 0) {
        emit_progress(global_events);
      }
      if (!me.failed.empty()) {
        record_violation(me.failed, item.handle, e);
        if (cfg_.stop_at_first_violation) {
          me.release(succ);
          return;
        }
      }

      // One canonicalization per successor; its cached fingerprint feeds the
      // visited probe and is carried along as the terminal fingerprint. The
      // insert threads the state graph: parent = the expanded item's entry.
      Fingerprint canon_fp;
      const VisitedInsert ins = insert_canonical(
          visited_, cfg_.canonicalize, succ->s, item.handle, &e, &canon_fp);
      if (!ins.inserted) {
        me.release(succ);
        continue;
      }
      if (visited_.size() > cfg_.max_states) {
        me.release(succ);
        signal_truncated();
        return;
      }
      if (const Property* p = proto_.violated_property(succ->s)) {
        record_violation(p->name, item.handle, e);
        me.release(succ);
        if (cfg_.stop_at_first_violation) return;
        continue;
      }
      succ->canon_fp = canon_fp;
      succ->handle = ins.handle;
      succ->depth = item.depth + 1;
      push_work(me, succ);
    }
  }

  void record_violation(const std::string& property, StateHandle parent,
                        const Event& last) {
    {
      std::lock_guard<std::mutex> lk(result_mu_);
      if (result_.verdict != Verdict::kViolated) {
        result_.verdict = Verdict::kViolated;
        result_.violated_property = property;
        // Trace seed for the winning violation: the parent entry plus the
        // final event; the violating endpoint is recomputed by the replay
        // (it may never have been interned — an assertion failure records
        // before any insert).
        pending_.parent = parent;
        pending_.last = last;
        pending_.armed = true;
      }
    }
    if (cfg_.on_violation) {
      // hooks_mu_ (not result_mu_) serializes this with emit_progress, as
      // the hook contract promises.
      std::lock_guard<std::mutex> lk(hooks_mu_);
      cfg_.on_violation(property);
    }
    if (cfg_.stop_at_first_violation) stop();
  }

  // Open items across the injector and every worker deque, computed on
  // demand from the deques' own bounds — an approximate but never-negative,
  // never-stale snapshot (the old maintained counter could drift under
  // donation races).
  [[nodiscard]] std::uint64_t frontier_size() const {
    std::uint64_t n = 0;
    {
      std::lock_guard<std::mutex> lk(inj_mu_);
      n = injector_.size();
    }
    for (const auto& w : workers_) n += w->deque.size_hint();
    return n;
  }

  // Parallel progress snapshot: exact visited-set size and global event
  // count; per-worker stats are not merged mid-run. hooks_mu_ serializes it
  // against itself and against the violation hook.
  void emit_progress(std::uint64_t global_events) {
    std::lock_guard<std::mutex> lk(hooks_mu_);
    ExploreStats snap;
    snap.states_stored = visited_.size();
    snap.events_executed = global_events;
    snap.frontier = frontier_size();
    snap.threads_used = threads_;
    snap.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    cfg_.on_progress(snap);
  }

  void signal_truncated() {
    truncated_.store(true, std::memory_order_relaxed);
    stop();
  }

  void stop() { done_.store(true, std::memory_order_release); }

  [[nodiscard]] bool stopped() const {
    return done_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool over_time() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
               .count() > cfg_.max_seconds;
  }

  // First-violation trace seed; written once under result_mu_, read after
  // the pool joins.
  struct PendingTrace {
    StateHandle parent = kNoHandle;
    Event last;
    bool armed = false;
  };

  const Protocol& proto_;
  const ExploreConfig& cfg_;
  ReductionStrategy* strategy_;
  unsigned threads_;
  ExecuteOptions exec_opts_;
  ShardedVisited visited_;
  PendingTrace pending_;

  std::vector<std::unique_ptr<Worker>> workers_;
  mutable std::mutex inj_mu_;
  std::vector<Item*> injector_;  // root seed + overflow donations only
  std::atomic<bool> done_{false};
  std::atomic<std::int64_t> outstanding_{0};  // queued or in-expansion items
  std::atomic<std::uint64_t> events_budget_{0};
  std::atomic<bool> truncated_{false};

  std::mutex result_mu_;
  std::mutex hooks_mu_;  // serializes on_progress/on_violation invocations
  ExploreResult result_;
  std::vector<ExploreStats> worker_stats_;
  std::vector<std::vector<Fingerprint>> worker_terminals_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                      ReductionStrategy* strategy) {
  if (cfg.threads > 1 && cfg.mode == SearchMode::kStateful &&
      (strategy == nullptr || !strategy->needs_dfs_stack())) {
    return ParallelSearch(proto, cfg, strategy).run();
  }
  return Search(proto, cfg, strategy).run();
}

ExploreResult explore(const Protocol& proto, const ExploreConfig& cfg,
                      std::unique_ptr<ReductionStrategy> strategy) {
  return explore(proto, cfg, strategy.get());
}

ExploreResult explore_full(const Protocol& proto) {
  return explore(proto, ExploreConfig{});
}

std::vector<State> reachable_states(const Protocol& proto, std::uint64_t max_states) {
  std::unordered_set<State, StateHash> seen;
  // A deque keeps references stable across push_back, so each expansion reads
  // the frontier node in place instead of deep-copying it.
  std::deque<State> frontier;
  frontier.push_back(proto.initial());
  seen.insert(proto.initial());
  std::size_t head = 0;
  while (head < frontier.size()) {
    if (seen.size() > max_states) return {};
    const State& s = frontier[head++];
    for (const Event& e : enumerate_events(proto, s)) {
      State succ = execute(proto, s, e);
      if (seen.insert(succ).second) frontier.push_back(std::move(succ));
    }
  }
  std::vector<State> out(std::make_move_iterator(frontier.begin()),
                         std::make_move_iterator(frontier.end()));
  std::sort(out.begin(), out.end(),
            [](const State& a, const State& b) { return a < b; });
  return out;
}

std::vector<Edge> reachable_edges(const Protocol& proto, std::uint64_t max_states) {
  std::unordered_set<State, StateHash> seen;
  std::deque<State> frontier;
  frontier.push_back(proto.initial());
  seen.insert(proto.initial());
  std::vector<Edge> edges;
  std::size_t head = 0;
  while (head < frontier.size()) {
    if (seen.size() > max_states) return {};
    const State& s = frontier[head++];
    for (const Event& e : enumerate_events(proto, s)) {
      State succ = execute(proto, s, e);
      edges.push_back(Edge{s, proto.transition(e.tid).name, e.consumed, succ});
      if (seen.insert(succ).second) frontier.push_back(std::move(succ));
    }
  }
  return edges;
}

}  // namespace mpb
