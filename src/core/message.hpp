// Messages of the message-passing computation model (Section II-A).
//
// A channel c_{i,j} is an *unordered* set of messages. We represent the union
// of all channels as one sorted multiset (see state.hpp); a message therefore
// carries its sender and receiver explicitly.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

#include "util/hash.hpp"

namespace mpb {

using ProcessId = std::uint8_t;
using MsgType = std::uint16_t;
using Value = std::int32_t;

inline constexpr MsgType kNoMsgType = 0xffff;

// A message: type tag, sender, receiver and a short payload of values.
// Fixed-capacity payload keeps Message a cheap value type; every protocol in
// the paper needs at most 3 payload slots.
class Message {
 public:
  static constexpr unsigned kMaxPayload = 4;

  Message() = default;
  Message(MsgType type, ProcessId sender, ProcessId receiver,
          std::initializer_list<Value> payload);

  [[nodiscard]] MsgType type() const noexcept { return type_; }
  [[nodiscard]] ProcessId sender() const noexcept { return sender_; }
  [[nodiscard]] ProcessId receiver() const noexcept { return receiver_; }
  [[nodiscard]] unsigned payload_size() const noexcept { return size_; }
  [[nodiscard]] std::span<const Value> payload() const noexcept {
    return {payload_.data(), size_};
  }

  // Payload accessor; index must be < payload_size().
  [[nodiscard]] Value operator[](unsigned i) const noexcept { return payload_[i]; }

  // Copy with renamed endpoints; payload untouched (symmetry reduction).
  [[nodiscard]] Message with_endpoints(ProcessId sender, ProcessId receiver) const noexcept {
    Message m = *this;
    m.sender_ = sender;
    m.receiver_ = receiver;
    return m;
  }

  void feed(Hasher64& h) const noexcept {
    h.add_int(type_);
    h.add_int(sender_);
    h.add_int(receiver_);
    h.add_int(size_);
    for (unsigned i = 0; i < size_; ++i) h.add_int(payload_[i]);
  }

  friend bool operator==(const Message& a, const Message& b) noexcept {
    if (a.type_ != b.type_ || a.sender_ != b.sender_ || a.receiver_ != b.receiver_ ||
        a.size_ != b.size_) {
      return false;
    }
    for (unsigned i = 0; i < a.size_; ++i) {
      if (a.payload_[i] != b.payload_[i]) return false;
    }
    return true;
  }

  // Total order used to keep the network multiset canonical. Sorting first by
  // receiver then type groups each transition's candidate pool contiguously.
  friend std::strong_ordering operator<=>(const Message& a, const Message& b) noexcept {
    if (auto c = a.receiver_ <=> b.receiver_; c != 0) return c;
    if (auto c = a.type_ <=> b.type_; c != 0) return c;
    if (auto c = a.sender_ <=> b.sender_; c != 0) return c;
    if (auto c = a.size_ <=> b.size_; c != 0) return c;
    for (unsigned i = 0; i < a.size_; ++i) {
      if (auto c = a.payload_[i] <=> b.payload_[i]; c != 0) return c;
    }
    return std::strong_ordering::equal;
  }

 private:
  MsgType type_ = kNoMsgType;
  ProcessId sender_ = 0;
  ProcessId receiver_ = 0;
  std::uint8_t size_ = 0;
  std::array<Value, kMaxPayload> payload_{};
};

}  // namespace mpb
