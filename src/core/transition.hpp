// Transition descriptors of the MP protocol language (Sections II-B, IV and
// Appendix Tables III/IV of the paper).
//
// A transition t of process i consumes a set X of messages from i's incoming
// channels (|X| constrained by the transition's arity), may change i's local
// state via its effect, and may send messages. A guard g_t decides, from i's
// local state and a candidate set X, whether t is enabled for X.
//
// Each descriptor also carries the static POR annotations of Table IV
// (message-out types, sender/recipient masks, isReply, visibility, seed
// priority). The refinement pass (src/refine) produces new descriptors that
// share guard/effect but narrow `allowed_senders` (quorum-split, reply-split).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/message.hpp"
#include "core/state.hpp"
#include "util/bitmask.hpp"

namespace mpb {

class Protocol;

using TransitionId = std::uint16_t;
inline constexpr TransitionId kNoTransition = 0xffff;

// Bitmask over one process's local variables (index i -> bit i).
using VarMask = std::uint32_t;
inline constexpr VarMask kAllVars = ~VarMask{0};

// A declared ghost read: which variables of which process an effect may
// inspect via EffectCtx::peek.
struct PeekDecl {
  ProcessId proc = 0;
  VarMask vars = kAllVars;
};

// Transition arities. kSpontaneous transitions consume no messages (they model
// the paper's driver-sent "fake messages" that trigger a protocol instance);
// kPowersetArity transitions may consume any subset of pending messages and
// leave enabledness entirely to the guard (the general Section IV-A case).
inline constexpr int kSpontaneous = 0;
inline constexpr int kPowersetArity = -1;

// Read-only view handed to guards: the local variables of the executing
// process and the candidate message set X (sorted).
struct GuardView {
  std::span<const Value> local;
  std::span<const Message> consumed;
};

using Guard = std::function<bool(const GuardView&)>;

// Mutable context handed to effects. Effects may update the executing
// process's local variables and send messages; they must not touch anything
// else. `peek` grants read-only access to another process's variables for
// *specification ghost reads only* (the paper uses the same escape hatch for
// the storage regularity assertion, cf. its footnote 7).
class EffectCtx {
 public:
  EffectCtx(const Protocol& proto, State& working, ProcessId self,
            std::span<const Message> consumed);

  [[nodiscard]] ProcessId self() const noexcept { return self_; }
  [[nodiscard]] std::span<const Message> consumed() const noexcept { return consumed_; }
  [[nodiscard]] const Protocol& protocol() const noexcept { return proto_; }

  [[nodiscard]] Value local(unsigned var) const noexcept {
    return working_.locals()[offset_ + var];
  }
  // Routed through State::set_local so the state's cached fingerprint is
  // updated incrementally instead of invalidated.
  void set_local(unsigned var, Value v) noexcept {
    written_ |= VarMask{1} << var;
    working_.set_local(offset_ + var, v);
  }
  [[nodiscard]] std::span<const Value> locals() const noexcept {
    return working_.local_slice(offset_, len_);
  }

  // Ghost read of another process's variable. Specification-only; every
  // peeked process must be declared in the transition's `peeks` annotation or
  // execution (with validation on) fails — undeclared remote reads would make
  // partial-order reduction unsound.
  [[nodiscard]] Value peek(ProcessId other, unsigned var);

  // Peeks recorded so far during this effect (for annotation validation).
  [[nodiscard]] const std::vector<PeekDecl>& peeked() const noexcept {
    return peeked_;
  }
  // Own variables written so far (for annotation validation).
  [[nodiscard]] VarMask written() const noexcept { return written_; }

  void send(ProcessId to, MsgType type, std::initializer_list<Value> payload);

  // In-transition specification assertion — the paper's mechanism ("the
  // specification is a set of Java assertions defined within transitions").
  // A failed assertion marks this *event* as a violation; because assertion
  // inputs (own locals, consumed messages, declared peeks) are all covered by
  // the POR dependence relation, stubborn-set reduction preserves assertion
  // violations without any visibility proviso.
  void assert_that(bool ok, std::string_view label) {
    if (!ok && failed_assertion_.empty()) failed_assertion_ = std::string(label);
  }
  [[nodiscard]] const std::string& failed_assertion() const noexcept {
    return failed_assertion_;
  }

  [[nodiscard]] const std::vector<Message>& sends() const noexcept { return sends_; }

 private:
  const Protocol& proto_;
  State& working_;
  ProcessId self_;
  std::span<const Message> consumed_;
  std::size_t offset_ = 0;  // executing process's slice of State::locals
  std::size_t len_ = 0;
  std::vector<Message> sends_;
  std::vector<PeekDecl> peeked_;
  VarMask written_ = 0;
  std::string failed_assertion_;
};

using Effect = std::function<void(EffectCtx&)>;

struct Transition {
  std::string name;
  ProcessId proc = 0;              // executing process
  MsgType in_type = kNoMsgType;    // consumed message type (unless spontaneous)
  int arity = 1;                   // kSpontaneous | 1 | exact quorum q>1 | kPowersetArity
  ProcessMask allowed_senders = kAllProcesses;  // senders X may draw from
  Guard guard;                     // empty => always true
  Effect effect;                   // empty => no-op

  // --- static POR annotations (Table IV) ---
  std::vector<MsgType> out_types;  // message types this transition may send
  ProcessMask send_to = kAllProcesses;  // recipients it may send to
  bool reads_local = true;         // guard reads local state (isStateSensitive)
  bool writes_local = true;        // effect writes local state (isWrite)
  // Which own variables the guard reads (meaningful when reads_local);
  // variable-level precision keeps same-process enabling sharp: a disabled
  // guard can only be flipped by writers of the variables it actually reads.
  VarMask reads_vars = kAllVars;
  bool is_reply = false;           // sends only to senders(X) (Def. 4)
  bool visible = false;            // may change the truth of a property
  int priority = 0;                // seed heuristic weight (higher = preferred)
  // Which of the executing process's variables the effect may write
  // (meaningful only when writes_local); variable-level precision keeps the
  // peek-conflict relation sharp.
  VarMask writes_vars = kAllVars;
  // Ghost reads via EffectCtx::peek. A real cross-process dependence the POR
  // relations must know about; `peeks` is the process-level union.
  std::vector<PeekDecl> peek_decls;
  ProcessMask peeks = 0;

  // Provenance: the unrefined transition this one was split from, or
  // kNoTransition for original transitions. Set by src/refine.
  TransitionId split_of = kNoTransition;

  [[nodiscard]] bool is_quorum() const noexcept { return arity > 1 || arity == kPowersetArity; }
  [[nodiscard]] bool is_spontaneous() const noexcept { return arity == kSpontaneous; }

  [[nodiscard]] bool guard_holds(const GuardView& v) const {
    return !guard || guard(v);
  }
};

// True iff a ghost read of `a` may observe a variable that `b` writes — a
// genuine cross-process conflict the POR relations must respect.
[[nodiscard]] inline bool peek_conflict(const Transition& a,
                                        const Transition& b) noexcept {
  if (!b.writes_local) return false;
  for (const PeekDecl& d : a.peek_decls) {
    if (d.proc == b.proc && (d.vars & b.writes_vars) != 0) return true;
  }
  return false;
}

// An *event* is a concrete occurrence of a transition: the transition id plus
// the exact message multiset X it consumes (sorted, canonical). Two events are
// equal iff they denote the same state-graph edge label.
struct Event {
  TransitionId tid = kNoTransition;
  std::vector<Message> consumed;  // sorted

  friend bool operator==(const Event& a, const Event& b) {
    return a.tid == b.tid && a.consumed == b.consumed;
  }
};

}  // namespace mpb
