// Successor computation: s --t(X)--> s' (Section II-A semantics).
//
// Executing event e in state s (1) removes the consumed messages X from the
// network, (2) applies the transition's local-state effect, and (3) inserts
// the sent messages. The result is a fresh canonical State.
//
// When `validate_annotations` is set, execution cross-checks the run against
// the transition's static POR annotations (declared out-types / recipients,
// reply discipline, isWrite). POR soundness rests on those annotations, so a
// violated annotation is a modelling bug worth failing loudly on.
#pragma once

#include <stdexcept>
#include <string>

#include "core/protocol.hpp"
#include "core/state.hpp"
#include "core/transition.hpp"

namespace mpb {

// Thrown when an effect contradicts its transition's static annotations.
class AnnotationError : public std::runtime_error {
 public:
  explicit AnnotationError(const std::string& what) : std::runtime_error(what) {}
};

struct ExecuteOptions {
  bool validate_annotations = true;
};

// Execute event `e` in `s`. If `failed_assertion` is non-null, it receives
// the label of the first in-transition assertion that failed (empty when the
// event executed cleanly).
[[nodiscard]] State execute(const Protocol& proto, const State& s, const Event& e,
                            const ExecuteOptions& opts = {},
                            std::string* failed_assertion = nullptr);

// Execute `e` in `s`, writing the successor into `out` (`&out != &s`). The
// successor is built by copy-*assigning* `s` into `out` and mutating, so a
// recycled `out` reuses its locals/network vector capacity — the allocation
// path the parallel explorer's per-worker state pools lean on: in steady
// state an expansion touches the global allocator only for genuinely new
// interned states, not for every generated successor.
void execute_into(const Protocol& proto, const State& s, const Event& e,
                  const ExecuteOptions& opts, std::string* failed_assertion,
                  State& out);

}  // namespace mpb
