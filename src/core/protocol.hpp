// A Protocol bundles everything the checker needs about one concrete protocol
// instance: the process table (with local-variable schemas), the transition
// table, the initial state, the interned message-type names, and the named
// invariant properties to verify.
//
// Protocols are plain values: the refinement pass copies a protocol and
// rewrites its transition table (guards/effects are shared through
// std::function), leaving the original untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/state.hpp"
#include "core/transition.hpp"
#include "util/bitmask.hpp"

namespace mpb {

struct ProcessInfo {
  std::string name;             // instance name, e.g. "acceptor2"
  std::string type_name;        // role, e.g. "Acceptor"
  std::size_t local_offset = 0; // slice of State::locals
  std::size_t local_len = 0;
  std::vector<std::string> var_names;  // for trace printing
  bool byzantine = false;       // informational (fault modelling)
};

// An invariant: a predicate that must hold in every reachable state
// (Section II-A, "Properties"). A state where `holds` returns false is a
// violation; the path to it is a counterexample.
struct Property {
  std::string name;
  std::function<bool(const State&, const Protocol&)> holds;
};

class Protocol {
 public:
  explicit Protocol(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- processes ---
  [[nodiscard]] unsigned n_procs() const noexcept {
    return static_cast<unsigned>(procs_.size());
  }
  [[nodiscard]] const ProcessInfo& proc(ProcessId p) const noexcept { return procs_[p]; }
  [[nodiscard]] const std::vector<ProcessInfo>& procs() const noexcept { return procs_; }
  ProcessId add_process(ProcessInfo info);

  // Mask of all processes whose role equals `type_name`.
  [[nodiscard]] ProcessMask role_mask(std::string_view type_name) const noexcept;

  // --- message types ---
  MsgType intern_msg_type(std::string_view name);
  [[nodiscard]] std::optional<MsgType> find_msg_type(std::string_view name) const noexcept;
  [[nodiscard]] const std::string& msg_type_name(MsgType t) const noexcept {
    return msg_type_names_[t];
  }
  [[nodiscard]] unsigned n_msg_types() const noexcept {
    return static_cast<unsigned>(msg_type_names_.size());
  }

  // --- transitions ---
  TransitionId add_transition(Transition t);
  [[nodiscard]] const Transition& transition(TransitionId id) const noexcept {
    return transitions_[id];
  }
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] unsigned n_transitions() const noexcept {
    return static_cast<unsigned>(transitions_.size());
  }
  // Replace the whole transition table (used by src/refine).
  void set_transitions(std::vector<Transition> ts) { transitions_ = std::move(ts); }

  // --- initial state / properties ---
  void set_initial(State s) { initial_ = std::move(s); }
  [[nodiscard]] const State& initial() const noexcept { return initial_; }

  void add_property(Property p) { properties_.push_back(std::move(p)); }
  [[nodiscard]] const std::vector<Property>& properties() const noexcept {
    return properties_;
  }
  [[nodiscard]] const Property* find_property(std::string_view name) const noexcept;

  // First property violated in `s`, or nullptr.
  [[nodiscard]] const Property* violated_property(const State& s) const;

  // Structural sanity checks (masks within range, offsets consistent,
  // declared out-types interned, reply transitions single-message).
  // Returns an error description, or empty string if valid.
  [[nodiscard]] std::string validate() const;

 private:
  std::string name_;
  std::vector<ProcessInfo> procs_;
  std::vector<Transition> transitions_;
  std::vector<std::string> msg_type_names_;
  State initial_;
  std::vector<Property> properties_;
};

}  // namespace mpb
