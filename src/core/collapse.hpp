// COLLAPSE-style structural state compression (Holzmann): the component
// tables behind VisitedMode::kCollapse.
//
// Instead of interning every visited state as a full in-arena copy, collapse
// mode interns each state *component* — one process's locals block, one
// receiver's channel multiset, one incoming event — exactly once in a
// dedicated lock-free BlobStore, and stores a state as a fixed-width tuple
// of small component indices. Components repeat massively across states
// (most transitions touch one process and one channel), so the per-state
// footprint collapses from hundreds of bytes to the tuple plus a constant
// node header, while component storage is amortized across the whole run.
//
// Exactness: BlobStore::intern compares full blob contents on a key match,
// so equal indices <=> equal bytes. A state's tuple is built
// deterministically from its canonical form (locals slices in process
// order, then the per-receiver runs of the sorted network multiset), so
// tuple equality <=> state equality — collapse mode keeps the interned
// mode's exact semantics, not fingerprint mode's probabilistic ones. The
// visited table still probes by the state's 128-bit fingerprint (fp.lo is
// the slot key, unchanged contract); the tuple comparison replaces the full
// state comparison on a key match.
//
// BlobStore reuses the ShardedVisited claim/publish slot protocol: a slot is
// {hash key, value} of atomics, insertion CASes an empty slot's value to a
// claim sentinel, copies the payload bytes into the append-only pool, writes
// the entry, then release-stores the entry index; growth freezes the old
// table's empty slots and migrates published entries under a mutex. Entry
// records and payload bytes live in chunks from a ChunkStore (core/
// spill.hpp), allocated *pinned*: the component working set is small and
// probed for every generated successor, so it always stays resident — the
// spill tier applies to the state-node arena, not here.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/message.hpp"
#include "core/spill.hpp"
#include "core/transition.hpp"

namespace mpb {

class Protocol;
class State;

// How a state splits into components. Derived from the Protocol for real
// runs; the default (empty) layout uses one locals component and one channel
// component, which keeps ShardedVisited usable standalone in tests.
struct CollapseLayout {
  // Per-process {offset, len} into State::locals, in process order.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> locals;
  // Per-receiver channel components: messages to receiver r form component r.
  // 0 = a single component holding the whole network multiset.
  std::uint32_t n_receivers = 0;

  [[nodiscard]] static CollapseLayout from(const Protocol& proto);

  // Tuple width: one index per locals component plus one per channel run.
  [[nodiscard]] std::uint32_t width() const noexcept {
    const auto l = locals.empty() ? 1u : static_cast<std::uint32_t>(locals.size());
    const auto c = n_receivers == 0 ? 1u : n_receivers;
    return l + c;
  }
};

// A lock-free content-interning table: blob bytes in, small dense index out,
// with exactly-once semantics under arbitrary thread contention. Indices are
// assigned in insertion order and never change; blobs are immutable.
class BlobStore {
 public:
  static constexpr std::uint32_t kNoBlob = ~std::uint32_t{0};

  // `chunks` outlives the store and backs the entry records and payload
  // bytes (allocated pinned).
  explicit BlobStore(ChunkStore& chunks);
  ~BlobStore();

  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  // Index of the blob equal to [data, data+len), interning it if absent.
  // Thread-safe and lock-free on the hit path.
  std::uint32_t intern(const std::byte* data, std::uint32_t len);

  // Lookup-only probe: the index, or kNoBlob when no equal blob is interned.
  [[nodiscard]] std::uint32_t find(const std::byte* data,
                                   std::uint32_t len) const;

  // The interned bytes behind `idx` (stable address, immutable).
  [[nodiscard]] std::span<const std::byte> get(std::uint32_t idx) const;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  // Heap bytes of the slot tables (live + retired); the chunk-backed entry
  // records and payload bytes are accounted by the ChunkStore.
  [[nodiscard]] std::uint64_t heap_bytes() const noexcept {
    return heap_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> val{0};
  };

  struct Table {
    explicit Table(std::size_t capacity)
        : mask(capacity - 1), slots(new Slot[capacity]) {}
    const std::size_t mask;
    std::atomic<std::size_t> count{0};
    std::unique_ptr<Slot[]> slots;
  };

  // One interned blob: offset/length into the payload pool. Entry chunks are
  // published with release stores, like the arenas in core/visited.cpp.
  struct Entry {
    std::uint64_t off = 0;
    std::uint32_t len = 0;
  };

  static constexpr std::size_t kFirstEntryChunk = 256;
  static constexpr std::size_t kMaxChunks = 32;
  static constexpr std::size_t kPayloadChunkBytes = std::size_t{1} << 20;
  static constexpr std::size_t kMaxPayloadChunks = 4096;  // 4 GiB of payload

  enum class TryIntern { kDone, kRetryFrozen, kTableFull };
  TryIntern try_intern(Table& t, const std::byte* data, std::uint32_t len,
                       std::uint64_t key, std::uint32_t& out);
  void grow(Table* old);
  [[nodiscard]] const Entry* entry_at(std::uint32_t idx) const;
  std::uint32_t alloc_entry();
  std::uint64_t alloc_payload(std::uint32_t len);
  [[nodiscard]] const std::byte* payload_at(std::uint64_t off) const;

  ChunkStore& chunks_;
  std::atomic<Table*> table_{nullptr};
  std::mutex grow_mu_;            // table growth only; never on the hot path
  std::vector<Table*> retired_;   // guarded by grow_mu_
  std::mutex chunk_mu_;           // entry/payload chunk creation only
  std::array<std::atomic<Entry*>, kMaxChunks> entry_chunks_{};
  std::atomic<std::uint64_t> entry_next_{0};
  // Payload pool: fixed-size byte chunks, bump-allocated; an allocation that
  // would straddle a chunk boundary skips to the next chunk (the gap is
  // wasted, bounded by one max-blob per chunk).
  std::array<std::atomic<std::byte*>, kMaxPayloadChunks> payload_chunks_{};
  std::atomic<std::uint64_t> payload_next_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> heap_bytes_{0};
};

// --- component serialization -------------------------------------------------
// Canonical byte encodings of the three component kinds. Locals slices are
// raw Value arrays. Messages are encoded field-by-field (5 header bytes +
// payload) — never memcpy'd whole, so struct padding can't leak into blob
// identity. Events are the transition id plus the consumed messages.

// Append the encoding of `m` to `out`.
void encode_message(const Message& m, std::vector<std::byte>& out);
// Decode one message starting at out[pos]; advances pos.
[[nodiscard]] Message decode_message(std::span<const std::byte> bytes,
                                     std::size_t& pos);

void encode_event(const Event& e, std::vector<std::byte>& out);
[[nodiscard]] Event decode_event(std::span<const std::byte> bytes);

// 64-bit content hash for blob table keys.
[[nodiscard]] std::uint64_t blob_hash(const std::byte* data,
                                      std::uint32_t len) noexcept;

}  // namespace mpb
