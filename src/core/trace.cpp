#include "core/trace.hpp"

#include <sstream>

namespace mpb {

std::string format_message(const Protocol& proto, const Message& m) {
  std::ostringstream os;
  os << proto.msg_type_name(m.type()) << "(";
  for (unsigned i = 0; i < m.payload_size(); ++i) {
    if (i > 0) os << ", ";
    os << m[i];
  }
  os << ") " << proto.proc(m.sender()).name << " -> " << proto.proc(m.receiver()).name;
  return os.str();
}

std::string format_event(const Protocol& proto, const Event& e) {
  const Transition& t = proto.transition(e.tid);
  std::ostringstream os;
  os << proto.proc(t.proc).name << "." << t.name;
  if (!e.consumed.empty()) {
    os << " consuming {";
    for (std::size_t i = 0; i < e.consumed.size(); ++i) {
      if (i > 0) os << "; ";
      os << format_message(proto, e.consumed[i]);
    }
    os << "}";
  }
  return os.str();
}

void print_state(std::ostream& os, const Protocol& proto, const State& s) {
  for (unsigned p = 0; p < proto.n_procs(); ++p) {
    const ProcessInfo& pi = proto.proc(p);
    os << "  " << pi.name << ":";
    auto slice = s.local_slice(pi.local_offset, pi.local_len);
    for (std::size_t v = 0; v < slice.size(); ++v) {
      os << " " << pi.var_names[v] << "=" << slice[v];
    }
    os << "\n";
  }
  if (s.network().empty()) {
    os << "  network: (empty)\n";
  } else {
    os << "  network:\n";
    for (const Message& m : s.network()) {
      os << "    " << format_message(proto, m) << "\n";
    }
  }
}

void print_counterexample(std::ostream& os, const Protocol& proto,
                          const ExploreResult& result) {
  if (result.verdict != Verdict::kViolated) {
    os << "(no counterexample: verdict is " << to_string(result.verdict) << ")\n";
    return;
  }
  os << "Counterexample for property '" << result.violated_property << "' ("
     << result.counterexample.size() << " steps)\n";
  os << "Initial state:\n";
  print_state(os, proto, proto.initial());
  for (std::size_t i = 0; i < result.counterexample.size(); ++i) {
    const TraceStep& step = result.counterexample[i];
    os << "Step " << (i + 1) << ": " << format_event(proto, step.event) << "\n";
    print_state(os, proto, step.after);
  }
}

bool replay_counterexample(const Protocol& proto, const ExploreResult& result) {
  if (result.verdict != Verdict::kViolated) return false;
  State s = proto.initial();
  std::string failed;
  for (const TraceStep& step : result.counterexample) {
    // The recorded event must actually be enabled in the current state.
    std::vector<Event> enabled;
    enumerate_events_of(proto, s, step.event.tid, enabled);
    bool found = false;
    for (const Event& e : enabled) {
      if (e == step.event) {
        found = true;
        break;
      }
    }
    if (!found) return false;
    failed.clear();
    s = execute(proto, s, step.event, {}, &failed);
    if (!(s == step.after)) return false;
  }
  // The final step must re-establish the violation: either the recorded
  // in-transition assertion fails again, or the named state predicate is
  // false in the reached state.
  if (failed == result.violated_property && !failed.empty()) return true;
  const Property* p = proto.find_property(result.violated_property);
  return p != nullptr && !p->holds(s, proto);
}

}  // namespace mpb
