#include "core/collapse.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/protocol.hpp"
#include "util/hash.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace mpb {

namespace {

// Slot value sentinels; published entries store index+1, so any value in
// (0, kFrozen) is a published entry.
constexpr std::uint64_t kClaimed = ~std::uint64_t{0};
constexpr std::uint64_t kFrozen = ~std::uint64_t{0} - 1;

constexpr std::size_t kInitialSlots = 64;

inline void spin_pause(unsigned spins) noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  if (spins < 64) {
    _mm_pause();
    return;
  }
#endif
  if (spins >= 64) std::this_thread::yield();
}

}  // namespace

CollapseLayout CollapseLayout::from(const Protocol& proto) {
  CollapseLayout lay;
  lay.locals.reserve(proto.n_procs());
  for (unsigned i = 0; i < proto.n_procs(); ++i) {
    const ProcessInfo& p = proto.proc(static_cast<ProcessId>(i));
    lay.locals.emplace_back(static_cast<std::uint32_t>(p.local_offset),
                            static_cast<std::uint32_t>(p.local_len));
  }
  lay.n_receivers = proto.n_procs();
  return lay;
}

// --- BlobStore ---------------------------------------------------------------

BlobStore::BlobStore(ChunkStore& chunks) : chunks_(chunks) {
  table_.store(new Table(kInitialSlots), std::memory_order_release);
  heap_bytes_.fetch_add(kInitialSlots * sizeof(Slot), std::memory_order_relaxed);
}

BlobStore::~BlobStore() {
  delete table_.load(std::memory_order_relaxed);
  for (Table* t : retired_) delete t;
  // Entry and payload chunks are owned by the ChunkStore.
}

const BlobStore::Entry* BlobStore::entry_at(std::uint32_t idx) const {
  // Chunk c holds kFirstEntryChunk << c entries (geometric, like the visited
  // arenas): q = idx/first + 1, chunk = bit_width(q) - 1.
  const std::size_t q = idx / kFirstEntryChunk + 1;
  const std::size_t chunk = std::bit_width(q) - 1;
  const std::size_t start = kFirstEntryChunk * ((std::size_t{1} << chunk) - 1);
  const Entry* base = entry_chunks_[chunk].load(std::memory_order_acquire);
  return base + (idx - start);
}

std::uint32_t BlobStore::alloc_entry() {
  const std::uint64_t idx = entry_next_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t q = idx / kFirstEntryChunk + 1;
  const std::size_t chunk = std::bit_width(q) - 1;
  if (chunk >= kMaxChunks) throw std::runtime_error("collapse: entry arena full");
  if (entry_chunks_[chunk].load(std::memory_order_acquire) == nullptr) {
    std::lock_guard<std::mutex> lock(chunk_mu_);
    if (entry_chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
      const std::size_t n = kFirstEntryChunk << chunk;
      auto* base = reinterpret_cast<Entry*>(
          chunks_.alloc_chunk(n * sizeof(Entry), /*spillable=*/false));
      entry_chunks_[chunk].store(base, std::memory_order_release);
    }
  }
  return static_cast<std::uint32_t>(idx);
}

std::uint64_t BlobStore::alloc_payload(std::uint32_t len) {
  if (len > kPayloadChunkBytes) {
    throw std::runtime_error("collapse: component blob exceeds payload chunk");
  }
  for (;;) {
    std::uint64_t old = payload_next_.load(std::memory_order_relaxed);
    const std::uint64_t chunk = old / kPayloadChunkBytes;
    const std::uint64_t off = old % kPayloadChunkBytes;
    if (off + len > kPayloadChunkBytes) {
      // Skip the tail of this chunk; the gap is wasted but bounded.
      payload_next_.compare_exchange_weak(old, (chunk + 1) * kPayloadChunkBytes,
                                          std::memory_order_relaxed);
      continue;
    }
    if (!payload_next_.compare_exchange_weak(old, old + len,
                                             std::memory_order_relaxed)) {
      continue;
    }
    if (chunk >= kMaxPayloadChunks) {
      throw std::runtime_error("collapse: payload pool full");
    }
    if (payload_chunks_[chunk].load(std::memory_order_acquire) == nullptr) {
      std::lock_guard<std::mutex> lock(chunk_mu_);
      if (payload_chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
        payload_chunks_[chunk].store(
            chunks_.alloc_chunk(kPayloadChunkBytes, /*spillable=*/false),
            std::memory_order_release);
      }
    }
    return old;
  }
}

const std::byte* BlobStore::payload_at(std::uint64_t off) const {
  const std::byte* base =
      payload_chunks_[off / kPayloadChunkBytes].load(std::memory_order_acquire);
  return base + off % kPayloadChunkBytes;
}

std::span<const std::byte> BlobStore::get(std::uint32_t idx) const {
  const Entry* e = entry_at(idx);
  return {payload_at(e->off), e->len};
}

BlobStore::TryIntern BlobStore::try_intern(Table& t, const std::byte* data,
                                           std::uint32_t len, std::uint64_t key,
                                           std::uint32_t& out) {
  std::size_t i = key & t.mask;
  for (std::size_t probes = 0;; ++probes) {
    if (probes > t.mask) return TryIntern::kTableFull;
    Slot& slot = t.slots[i];
    for (unsigned spins = 0;; ++spins) {
      std::uint64_t v = slot.val.load(std::memory_order_acquire);
      if (v == kFrozen) return TryIntern::kRetryFrozen;
      if (v == kClaimed) {
        spin_pause(spins);
        continue;
      }
      if (v == 0) {
        std::uint64_t expected = 0;
        if (!slot.val.compare_exchange_strong(expected, kClaimed,
                                              std::memory_order_acquire)) {
          continue;  // lost the claim race; re-resolve this slot
        }
        slot.key.store(key, std::memory_order_relaxed);
        const std::uint64_t off = alloc_payload(len);
        if (len != 0) {
          std::memcpy(const_cast<std::byte*>(payload_at(off)), data, len);
        }
        const std::uint32_t idx = alloc_entry();
        Entry* e = const_cast<Entry*>(entry_at(idx));
        e->off = off;
        e->len = len;
        slot.val.store(std::uint64_t{idx} + 1, std::memory_order_release);
        t.count.fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        out = idx;
        return TryIntern::kDone;
      }
      // Published entry.
      if (slot.key.load(std::memory_order_relaxed) == key) {
        const std::uint32_t idx = static_cast<std::uint32_t>(v - 1);
        const std::span<const std::byte> stored = get(idx);
        if (stored.size() == len &&
            (len == 0 || std::memcmp(stored.data(), data, len) == 0)) {
          out = idx;
          return TryIntern::kDone;
        }
      }
      break;  // different blob in this slot: advance the probe
    }
    i = (i + 1) & t.mask;
  }
}

void BlobStore::grow(Table* old) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  if (table_.load(std::memory_order_relaxed) != old) return;  // someone grew already
  const std::size_t cap = (old->mask + 1) * 2;
  auto* fresh = new Table(cap);
  heap_bytes_.fetch_add(cap * sizeof(Slot), std::memory_order_relaxed);
  std::size_t copied = 0;
  for (std::size_t i = 0; i <= old->mask; ++i) {
    Slot& slot = old->slots[i];
    for (unsigned spins = 0;; ++spins) {
      std::uint64_t v = slot.val.load(std::memory_order_acquire);
      if (v == 0) {
        // Seal the empty slot so in-flight inserters retry on the new table.
        if (slot.val.compare_exchange_strong(v, kFrozen,
                                             std::memory_order_acq_rel)) {
          break;
        }
        continue;
      }
      if (v == kClaimed) {
        spin_pause(spins);
        continue;
      }
      const std::uint64_t key = slot.key.load(std::memory_order_relaxed);
      std::size_t j = key & fresh->mask;
      while (fresh->slots[j].val.load(std::memory_order_relaxed) != 0) {
        j = (j + 1) & fresh->mask;
      }
      fresh->slots[j].key.store(key, std::memory_order_relaxed);
      fresh->slots[j].val.store(v, std::memory_order_relaxed);
      ++copied;
      break;
    }
  }
  fresh->count.store(copied, std::memory_order_relaxed);
  retired_.push_back(old);
  table_.store(fresh, std::memory_order_release);
}

std::uint32_t BlobStore::intern(const std::byte* data, std::uint32_t len) {
  const std::uint64_t key = blob_hash(data, len);
  for (unsigned spins = 0;; ++spins) {
    Table* t = table_.load(std::memory_order_acquire);
    std::uint32_t out = 0;
    switch (try_intern(*t, data, len, key, out)) {
      case TryIntern::kDone: {
        const std::size_t c = t->count.load(std::memory_order_relaxed);
        if ((c + 1) * 10 >= (t->mask + 1) * 7) grow(t);
        return out;
      }
      case TryIntern::kTableFull:
        grow(t);
        break;
      case TryIntern::kRetryFrozen:
        spin_pause(spins);
        break;
    }
  }
}

std::uint32_t BlobStore::find(const std::byte* data, std::uint32_t len) const {
  const std::uint64_t key = blob_hash(data, len);
  for (;;) {
    const Table* t = table_.load(std::memory_order_acquire);
    std::size_t i = key & t->mask;
    bool retry = false;
    for (std::size_t probes = 0; probes <= t->mask && !retry; ++probes) {
      const Slot& slot = t->slots[i];
      for (unsigned spins = 0;; ++spins) {
        const std::uint64_t v = slot.val.load(std::memory_order_acquire);
        if (v == 0) return kNoBlob;
        if (v == kFrozen) {
          // Table retired mid-probe; restart on the current one.
          retry = true;
          break;
        }
        if (v == kClaimed) {
          spin_pause(spins);
          continue;
        }
        if (slot.key.load(std::memory_order_relaxed) == key) {
          const std::uint32_t idx = static_cast<std::uint32_t>(v - 1);
          const std::span<const std::byte> stored = get(idx);
          if (stored.size() == len &&
              (len == 0 || std::memcmp(stored.data(), data, len) == 0)) {
            return idx;
          }
        }
        break;
      }
      i = (i + 1) & t->mask;
    }
    if (!retry) return kNoBlob;
  }
}

// --- component serialization -------------------------------------------------

namespace {

inline void put_u16(std::uint16_t v, std::vector<std::byte>& out) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>(v >> 8));
}

inline void put_u32(std::uint32_t v, std::vector<std::byte>& out) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
  out.push_back(static_cast<std::byte>((v >> 16) & 0xff));
  out.push_back(static_cast<std::byte>((v >> 24) & 0xff));
}

inline std::uint16_t get_u16(std::span<const std::byte> b, std::size_t& pos) {
  const auto lo = static_cast<std::uint16_t>(b[pos]);
  const auto hi = static_cast<std::uint16_t>(b[pos + 1]);
  pos += 2;
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

inline std::uint32_t get_u32(std::span<const std::byte> b, std::size_t& pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(b[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 4;
  return v;
}

}  // namespace

void encode_message(const Message& m, std::vector<std::byte>& out) {
  put_u16(m.type(), out);
  out.push_back(static_cast<std::byte>(m.sender()));
  out.push_back(static_cast<std::byte>(m.receiver()));
  out.push_back(static_cast<std::byte>(m.payload_size()));
  for (const Value v : m.payload()) {
    put_u32(static_cast<std::uint32_t>(v), out);
  }
}

Message decode_message(std::span<const std::byte> bytes, std::size_t& pos) {
  const MsgType type = get_u16(bytes, pos);
  const auto sender = static_cast<ProcessId>(bytes[pos++]);
  const auto receiver = static_cast<ProcessId>(bytes[pos++]);
  const auto size = static_cast<unsigned>(bytes[pos++]);
  std::array<Value, Message::kMaxPayload> p{};
  for (unsigned i = 0; i < size; ++i) {
    p[i] = static_cast<Value>(get_u32(bytes, pos));
  }
  switch (size) {
    case 0: return Message(type, sender, receiver, {});
    case 1: return Message(type, sender, receiver, {p[0]});
    case 2: return Message(type, sender, receiver, {p[0], p[1]});
    case 3: return Message(type, sender, receiver, {p[0], p[1], p[2]});
    default: return Message(type, sender, receiver, {p[0], p[1], p[2], p[3]});
  }
}

void encode_event(const Event& e, std::vector<std::byte>& out) {
  put_u16(e.tid, out);
  for (const Message& m : e.consumed) encode_message(m, out);
}

Event decode_event(std::span<const std::byte> bytes) {
  Event e;
  std::size_t pos = 0;
  e.tid = get_u16(bytes, pos);
  while (pos < bytes.size()) e.consumed.push_back(decode_message(bytes, pos));
  return e;
}

std::uint64_t blob_hash(const std::byte* data, std::uint32_t len) noexcept {
  Hasher64 h(0x6d70625f636f6c6cULL);  // "mpb_coll"
  h.add_bytes({data, len});
  return h.digest();
}

}  // namespace mpb
