#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>

namespace mpb::engine {

namespace {

[[nodiscard]] unsigned auto_shards(const ExploreConfig& cfg) {
  if (cfg.visited_shards != 0) return cfg.visited_shards;
  return cfg.threads > 1 ? cfg.threads * 4 : 1;
}

inline constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};

// Iterative Tarjan over `adj`, rooted at each vertex of `seeds` not yet
// numbered, assigning component ids from `next_comp` up; returns the next
// free id. The scratch arrays (num/low/on_stk/comp) may be shared between
// concurrent calls as long as the vertex sets reachable from different
// calls' seeds are disjoint — the sharded pass guarantees that by seeding
// each shard with whole weakly connected components.
std::uint32_t tarjan_over(const std::vector<std::vector<std::uint32_t>>& adj,
                          const std::vector<std::uint32_t>& seeds,
                          std::vector<std::uint32_t>& num,
                          std::vector<std::uint32_t>& low,
                          std::vector<char>& on_stk,
                          std::vector<std::uint32_t>& comp,
                          std::uint32_t next_comp) {
  std::uint32_t counter = 0;
  std::vector<std::uint32_t> stk;
  struct TFrame {
    std::uint32_t v;
    std::size_t ei;
  };
  std::vector<TFrame> dfs;
  for (const std::uint32_t root : seeds) {
    if (num[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    num[root] = low[root] = counter++;
    stk.push_back(root);
    on_stk[root] = 1;
    while (!dfs.empty()) {
      TFrame& f = dfs.back();
      if (f.ei < adj[f.v].size()) {
        const std::uint32_t u = adj[f.v][f.ei++];
        if (num[u] == kUnvisited) {
          num[u] = low[u] = counter++;
          stk.push_back(u);
          on_stk[u] = 1;
          dfs.push_back({u, 0});
        } else if (on_stk[u]) {
          low[f.v] = std::min(low[f.v], num[u]);
        }
      } else {
        const std::uint32_t v = f.v;
        dfs.pop_back();
        if (!dfs.empty()) {
          low[dfs.back().v] = std::min(low[dfs.back().v], low[v]);
        }
        if (low[v] == num[v]) {  // v roots an SCC
          for (;;) {
            const std::uint32_t u = stk.back();
            stk.pop_back();
            on_stk[u] = 0;
            comp[u] = next_comp;
            if (u == v) break;
          }
          ++next_comp;
        }
      }
    }
  }
  return next_comp;
}

// Sharded SCC computation for multi-threaded runs. An SCC never spans two
// weakly connected components, so a cheap WCC pre-partition makes Tarjan
// embarrassingly parallel: (1) a lock-free union-find over the edges,
// processed by all threads concurrently, labels every vertex with its WCC;
// (2) the WCCs are dealt onto `threads` weight-balanced shards; (3) each
// shard runs an independent Tarjan over its components with local ids;
// (4) the per-shard counts are stitched into one id space by prefix-sum
// offset. Every step is deterministic regardless of thread interleaving:
// union-by-smaller-index makes each WCC's root its minimum vertex, the deal
// iterates WCCs largest-first in first-vertex order, and each shard numbers
// its components in seed order — so comp ids depend only on the graph.
std::uint32_t sccs_sharded(const std::vector<std::vector<std::uint32_t>>& adj,
                           std::vector<std::uint32_t>& comp,
                           unsigned threads) {
  const std::size_t n = adj.size();

  // Parallel WCC union-find. parent chains are strictly decreasing (larger
  // roots attach under smaller, path-halving only shortcuts), so the
  // structure is acyclic under any interleaving and every WCC converges on
  // its minimum vertex as root.
  std::unique_ptr<std::atomic<std::uint32_t>[]> parent(
      new std::atomic<std::uint32_t>[n]);
  for (std::size_t v = 0; v < n; ++v) {
    parent[v].store(static_cast<std::uint32_t>(v), std::memory_order_relaxed);
  }
  auto find = [&](std::uint32_t x) {
    for (;;) {
      std::uint32_t p = parent[x].load(std::memory_order_relaxed);
      if (p == x) return x;
      const std::uint32_t gp = parent[p].load(std::memory_order_relaxed);
      if (gp == p) return p;
      parent[x].compare_exchange_weak(p, gp, std::memory_order_relaxed);
      x = gp;
    }
  };
  auto unite = [&](std::uint32_t a, std::uint32_t b) {
    for (;;) {
      a = find(a);
      b = find(b);
      if (a == b) return;
      if (a > b) std::swap(a, b);
      std::uint32_t expect = b;
      if (parent[b].compare_exchange_strong(expect, a,
                                            std::memory_order_relaxed)) {
        return;
      }
    }
  };
  {
    std::vector<std::thread> pool;
    const std::size_t chunk = (n + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t lo = t * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      if (lo >= hi) break;
      pool.emplace_back([&adj, &unite, lo, hi] {
        for (std::size_t v = lo; v < hi; ++v) {
          for (const std::uint32_t u : adj[v]) {
            unite(static_cast<std::uint32_t>(v), u);
          }
        }
      });
    }
    for (std::thread& th : pool) th.join();
  }

  // Enumerate WCCs in ascending-minimum-vertex order (deterministic).
  std::vector<std::uint32_t> wcc_of(n);
  std::vector<std::uint32_t> wcc_size;
  std::vector<std::uint32_t> index_of_root(n, kUnvisited);
  for (std::uint32_t v = 0; v < static_cast<std::uint32_t>(n); ++v) {
    const std::uint32_t r = find(v);
    if (index_of_root[r] == kUnvisited) {
      index_of_root[r] = static_cast<std::uint32_t>(wcc_size.size());
      wcc_size.push_back(0);
    }
    wcc_of[v] = index_of_root[r];
    ++wcc_size[wcc_of[v]];
  }

  // Deal WCCs onto shards, largest first, each to the least-loaded shard
  // (ties break toward the lower id — deterministic).
  std::vector<std::uint32_t> order(wcc_size.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return wcc_size[a] > wcc_size[b];
                   });
  std::vector<std::uint64_t> load(threads, 0);
  std::vector<std::uint32_t> shard_of_wcc(wcc_size.size(), 0);
  for (const std::uint32_t wi : order) {
    unsigned best = 0;
    for (unsigned s = 1; s < threads; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of_wcc[wi] = best;
    load[best] += wcc_size[wi];
  }
  std::vector<std::vector<std::uint32_t>> seeds(threads);
  for (std::uint32_t v = 0; v < static_cast<std::uint32_t>(n); ++v) {
    seeds[shard_of_wcc[wcc_of[v]]].push_back(v);
  }

  // Per-shard Tarjan with shard-local ids. The scratch arrays are shared but
  // every vertex belongs to exactly one shard, so writes are disjoint.
  std::vector<std::uint32_t> num(n, kUnvisited), low(n);
  std::vector<char> on_stk(n, 0);
  std::vector<std::uint32_t> shard_comps(threads, 0);
  {
    std::vector<std::thread> pool;
    for (unsigned s = 0; s < threads; ++s) {
      if (seeds[s].empty()) continue;
      pool.emplace_back([&, s] {
        shard_comps[s] =
            tarjan_over(adj, seeds[s], num, low, on_stk, comp, 0);
      });
    }
    for (std::thread& th : pool) th.join();
  }

  // Condensation stitch: offset each shard's local ids into one id space.
  std::vector<std::uint32_t> offset(threads, 0);
  std::uint32_t total = 0;
  for (unsigned s = 0; s < threads; ++s) {
    offset[s] = total;
    total += shard_comps[s];
  }
  for (std::uint32_t v = 0; v < static_cast<std::uint32_t>(n); ++v) {
    comp[v] += offset[shard_of_wcc[wcc_of[v]]];
  }
  return total;
}

}  // namespace

// --- ExpansionCore ----------------------------------------------------------

ExpansionCore::ExpansionCore(const Protocol& proto, const ExploreConfig& cfg,
                             ReductionStrategy* strategy,
                             VisitedMode visited_mode, unsigned n_workers)
    : proto_(proto),
      cfg_(cfg),
      strategy_(strategy),
      visited_(visited_mode, auto_shards(cfg),
               visited_mode == VisitedMode::kCollapse ? CollapseLayout::from(proto)
                                                      : CollapseLayout{},
               SpillConfig{cfg.spill_dir, cfg.spill_mb << 20}) {
  exec_opts_.validate_annotations = cfg.validate_annotations;
  // One worker means at most one thread ever probes the visited set at a
  // time (the pool's main thread only touches it before workers start and
  // after they join), so table growth may free old tables immediately.
  if (n_workers <= 1) visited_.set_serial(true);
  if (cfg.canonicalize_perm) {
    canon_ = cfg.canonicalize_perm;
  } else if (cfg.canonicalize) {
    canon_ = [&cfg](const State& s, std::uint32_t& perm) {
      perm = 0;  // the plain hook reports no permutation
      return cfg.canonicalize(s);
    };
  }
  scc_enabled_ = strategy != nullptr && strategy->wants_scc_ignoring_pass() &&
                 cfg.mode == SearchMode::kStateful &&
                 visited_stores_graph(visited_mode);
  workers_.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) {
    workers_.push_back(std::make_unique<WorkerCtx>(w));
  }
}

void ExpansionCore::begin_run() {
  hash_passes_at_start_ = state_full_hash_passes();
  hash_queries_at_start_ = state_hash_queries();
  fallbacks_at_start_ = strategy_ != nullptr ? strategy_->proviso_fallbacks() : 0;
}

void ExpansionCore::finish_stats(ExploreStats& st) const {
  st.full_hash_passes = state_full_hash_passes() - hash_passes_at_start_;
  st.hash_queries = state_hash_queries() - hash_queries_at_start_;
  if (strategy_ != nullptr) {
    st.proviso_fallbacks = strategy_->proviso_fallbacks() - fallbacks_at_start_;
  }
}

VisitedInsert ExpansionCore::insert_canonical(const State& s, StateHandle parent,
                                              const Event* via,
                                              Fingerprint* fp_out) {
  if (canon_) {
    std::uint32_t perm = 0;
    const State canon = canon_(s, perm);
    *fp_out = canon.fingerprint();
    return visited_.insert(canon, *fp_out, parent, via, perm);
  }
  *fp_out = s.fingerprint();
  return visited_.insert(s, *fp_out, parent, via, 0);
}

bool ExpansionCore::contains_canonical(const State& s) const {
  if (canon_) {
    std::uint32_t perm = 0;
    const State canon = canon_(s, perm);
    return visited_.contains(canon, canon.fingerprint());
  }
  return visited_.contains(s, s.fingerprint());
}

Fingerprint ExpansionCore::canonical_fingerprint(const State& s) const {
  if (canon_) {
    std::uint32_t perm = 0;
    return canon_(s, perm).fingerprint();
  }
  return s.fingerprint();
}

std::size_t ExpansionCore::select(const State& s, WorkerCtx& w, ExploreStats& st,
                                  const std::function<bool(const State&)>& on_stack,
                                  bool stateless, bool* reduced) {
  const std::size_t n_enabled = w.enabled.size();
  if (strategy_ == nullptr) {
    *reduced = false;
    st.events_selected += n_enabled;
    return n_enabled;
  }
  StrategyContext ctx{
      [&](const Event& e) { return execute(proto_, s, e, exec_opts_); },
      on_stack,
      stateless ? std::function<bool(const State&)>{}
                : std::function<bool(const State&)>([this](const State& probe) {
                    return contains_canonical(probe);
                  })};
  w.idx = strategy_->select(s, w.enabled, ctx);
  if (w.idx.size() >= n_enabled) ++st.full_expansions;
  st.events_selected += w.idx.size();
  *reduced = true;
  return w.idx.size();
}

// --- the SCC-based ignoring fix ---------------------------------------------
//
// After a reduced search that applied no in-search cycle proviso
// (CycleProviso::kScc), transitions enabled somewhere around a cycle of the
// reduced graph may have been postponed at every state of that cycle — the
// ignoring problem. The classic repair (Valmari) is to make sure every cycle
// contains at least one fully expanded state. This pass computes the SCCs of
// the recorded reduced graph (Tarjan over the edges the drivers logged),
// finds each SCC that contains a cycle but no fully expanded member, and
// re-expands one representative with its *whole* enabled set. States that
// re-expansion discovers are explored on with the normal reduced selection
// (edges recorded), and the SCC check re-runs until no ignored SCC remains —
// each round marks at least one previously-unexpanded state full, so the
// fixpoint terminates on the finite state space.
//
// Under symmetry the graph stores canonical representatives; expansion must
// continue from the *concrete* state that first reached an entry so the
// recorded event chains stay concretely replayable. That concrete state is
// recovered by inverting the recorded permutation (cfg.decanonicalize,
// installed by the check facade next to canonicalize_perm) — the reason the
// permutation is stored at all.
void ExpansionCore::run_scc_ignoring_pass(
    ExploreResult& result, std::vector<Fingerprint>& terminals,
    bool collect_terminals, const std::function<LimitKind()>& over_time) {
  if (!scc_enabled_) return;
  const auto pass_start = std::chrono::steady_clock::now();
  WorkerCtx& w = *workers_[0];
  const ShardedVisited& graph = visited_.graph();

  // Dense ids over every handle the recorded edges / full marks mention.
  std::unordered_map<StateHandle, std::uint32_t> id;
  std::vector<StateHandle> handle_of;
  std::vector<char> full;
  auto id_of = [&](StateHandle h) {
    const auto [it, fresh] =
        id.try_emplace(h, static_cast<std::uint32_t>(handle_of.size()));
    if (fresh) {
      handle_of.push_back(h);
      full.push_back(0);
    }
    return it->second;
  };

  // Merge the per-worker recordings once; re-expansion appends to `edges`.
  std::vector<GraphEdge> edges;
  for (const auto& wk : workers_) {
    for (const GraphEdge& e : wk->edges) {
      id_of(e.from);
      id_of(e.to);
      edges.push_back(e);
    }
    for (StateHandle h : wk->full_handles) full[id_of(h)] = 1;
    wk->edges.clear();
    wk->full_handles.clear();
  }

  // The concrete state behind an interned entry: invert the recorded
  // permutation when a symmetry reduction is installed (identity otherwise).
  auto concrete_of = [&](StateHandle h) -> State {
    // materialize() copies in interned mode and reconstructs from the
    // component tables in collapse mode.
    State s = *graph.materialize(h);
    const std::uint32_t perm = graph.perm_of(h);
    if (perm != 0 && cfg_.decanonicalize) return cfg_.decanonicalize(perm, s);
    return s;
  };

  LimitKind trunc = LimitKind::kNone;
  bool stop = false;

  // Record a violation found along a repaired branch. `h` is the interned
  // entry of the violating state, or the parent entry when the violating
  // successor was never interned (assertion failures record before insert);
  // `last` is then the final event. The trace is only constructed when the
  // recorded chain is certifiably concrete: either no canonicalizer is
  // installed, or the permutation-aware hooks are (so concrete_of really
  // inverted every representative the pass expanded from). A plain
  // `canonicalize` hook records no permutations — the verdict still stands,
  // but a replayed chain could mix concrete and canonical states, so none
  // is emitted (mirroring fingerprint mode).
  auto record_violation = [&](const std::string& property, StateHandle h,
                              const Event* last) {
    if (result.verdict != Verdict::kViolated) {
      result.verdict = Verdict::kViolated;
      result.violated_property = property;
      const bool have_canon = static_cast<bool>(cfg_.canonicalize) ||
                              static_cast<bool>(cfg_.canonicalize_perm);
      if (!have_canon || (cfg_.canonicalize_perm && cfg_.decanonicalize)) {
        std::vector<Event> events = graph.path_from_root(h);
        if (last != nullptr) events.push_back(*last);
        result.counterexample = replay_trace(proto_, events, exec_opts_);
      }
    }
    if (cfg_.on_violation) cfg_.on_violation(property);
    if (cfg_.stop_at_first_violation) stop = true;
  };

  struct PassWork {
    StateHandle h;
    bool full_expand;
  };
  std::vector<PassWork> work;

  // Expand the states queued in `work` (representatives fully, fallout with
  // the normal reduced selection), recording edges and full marks.
  auto drain_work = [&]() {
    while (!work.empty() && !stop && trunc == LimitKind::kNone) {
      const PassWork pw = work.back();
      work.pop_back();
      Item* cur = w.alloc();
      cur->s = concrete_of(pw.h);
      ++result.stats.states_visited;
      enumerate_events(proto_, cur->s, w.enabled);
      result.stats.events_enabled += w.enabled.size();
      if (w.enabled.empty()) {
        ++result.stats.terminal_states;
        if (collect_terminals) {
          terminals.push_back(canonical_fingerprint(cur->s));
        }
        full[id_of(pw.h)] = 1;
        w.release(cur);
        continue;
      }
      bool reduced = false;
      std::size_t k;
      if (pw.full_expand) {
        k = w.enabled.size();
        result.stats.events_selected += k;
      } else {
        k = select(cur->s, w, result.stats, /*on_stack=*/{},
                   /*stateless=*/false, &reduced);
      }
      if (k == w.enabled.size()) full[id_of(pw.h)] = 1;
      for (std::size_t j = 0; j < k && !stop; ++j) {
        const Event& e = w.enabled[reduced ? w.idx[j] : j];
        Item* succ = w.alloc();
        execute_into(proto_, cur->s, e, exec_opts_, &w.failed, succ->s);
        ++result.stats.events_executed;
        LimitKind lk = LimitKind::kNone;
        if (result.stats.events_executed % 1024 == 0 && over_time) {
          lk = over_time();
        }
        if (lk == LimitKind::kNone &&
            result.stats.events_executed > cfg_.max_events) {
          lk = LimitKind::kBudget;
        }
        if (lk != LimitKind::kNone) {
          trunc = lk;
          w.release(succ);
          break;
        }
        if (!w.failed.empty()) {
          record_violation(w.failed, pw.h, &e);
          if (stop) {
            w.release(succ);
            break;
          }
        }
        Fingerprint canon_fp;
        const VisitedInsert ins =
            insert_canonical(succ->s, pw.h, &e, &canon_fp);
        if (ins.handle != kNoHandle) {
          id_of(ins.handle);
          edges.push_back({pw.h, ins.handle});
        }
        if (ins.inserted) {
          const std::uint64_t stored = visited_.size();
          LimitKind slk = LimitKind::kNone;
          if ((cfg_.guard.max_states != 0 && stored > cfg_.guard.max_states) ||
              (cfg_.guard.max_memory_bytes != 0 &&
               visited_.approx_bytes() > cfg_.guard.max_memory_bytes)) {
            slk = LimitKind::kResource;
          } else if (stored > cfg_.max_states) {
            slk = LimitKind::kBudget;
          }
          if (slk != LimitKind::kNone) {
            trunc = slk;
            w.release(succ);
            break;
          }
          if (const Property* p = proto_.violated_property(succ->s)) {
            record_violation(p->name, ins.handle, nullptr);
            w.release(succ);
            if (stop) break;
            continue;
          }
          work.push_back({ins.handle, /*full_expand=*/false});
        }
        w.release(succ);
      }
      w.release(cur);
    }
  };

  // Fixpoint: Tarjan, repair every ignored SCC, explore the fallout, repeat.
  while (!stop && trunc == LimitKind::kNone) {
    if (over_time) {
      const LimitKind lk = over_time();
      if (lk != LimitKind::kNone) {
        trunc = lk;
        break;
      }
    }
    const std::size_t n = handle_of.size();
    if (n == 0) break;
    std::vector<std::vector<std::uint32_t>> adj(n);
    std::vector<char> self_loop(n, 0);
    for (const GraphEdge& e : edges) {
      const std::uint32_t a = id.at(e.from);
      const std::uint32_t b = id.at(e.to);
      if (a == b) {
        self_loop[a] = 1;
      } else {
        adj[a].push_back(b);
      }
    }

    // SCC ids: one Tarjan over the whole graph sequentially, or — when the
    // run has a worker pool — the WCC-sharded variant (sccs_sharded above),
    // so the pass stops serializing multi-threaded runs. Both assign ids
    // deterministically; everything below depends only on the component
    // *partition*, so t1 and tN reach identical re-expansion sets.
    std::vector<std::uint32_t> comp(n, kUnvisited);
    std::uint32_t n_comps = 0;
    if (workers_.size() > 1 && n > 1) {
      n_comps = sccs_sharded(adj, comp,
                             static_cast<unsigned>(workers_.size()));
    } else {
      std::vector<std::uint32_t> all(n);
      std::iota(all.begin(), all.end(), 0);
      std::vector<std::uint32_t> num(n, kUnvisited), low(n);
      std::vector<char> on_stk(n, 0);
      n_comps = tarjan_over(adj, all, num, low, on_stk, comp, 0);
    }

    // An SCC is *ignored* when it contains a cycle (size > 1 or a self
    // loop) but no fully expanded member; its representative (the smallest
    // handle, for determinism) gets re-expanded.
    std::vector<std::uint32_t> comp_size(n_comps, 0);
    std::vector<char> comp_cyclic(n_comps, 0), comp_full(n_comps, 0);
    std::vector<StateHandle> comp_rep(n_comps, kNoHandle);
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t c = comp[v];
      if (++comp_size[c] > 1) comp_cyclic[c] = 1;
      if (self_loop[v]) comp_cyclic[c] = 1;
      if (full[v]) comp_full[c] = 1;
      if (comp_rep[c] == kNoHandle || handle_of[v] < comp_rep[c]) {
        comp_rep[c] = handle_of[v];
      }
    }
    work.clear();
    for (std::uint32_t c = 0; c < n_comps; ++c) {
      if (comp_cyclic[c] && !comp_full[c]) {
        work.push_back({comp_rep[c], /*full_expand=*/true});
        ++result.stats.scc_reexpansions;
      }
    }
    if (work.empty()) break;  // no ignored SCC left: the reduction is sound
    drain_work();
  }

  if (trunc != LimitKind::kNone && result.verdict != Verdict::kViolated) {
    result.verdict = verdict_of(trunc);
  }
  result.stats.scc_pass_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                pass_start)
          .count();
}

// --- SequentialDriver -------------------------------------------------------

SequentialDriver::SequentialDriver(const Protocol& proto,
                                   const ExploreConfig& cfg,
                                   ReductionStrategy* strategy)
    : drv_(proto, cfg, strategy, cfg.visited,
           /*stateful=*/cfg.mode == SearchMode::kStateful),
      proto_(proto),
      cfg_(cfg),
      stateful_(cfg.mode == SearchMode::kStateful) {}

ExploreResult SequentialDriver::run() {
  drv_.start();
  ExpansionCore& core = drv_.core();
  WorkerCtx& w = drv_.worker();
  ExploreResult& result = drv_.result();

  State init = proto_.initial();
  if (drv_.check_violation(init)) {
    return drv_.finish();
  }
  Item* root = w.alloc();
  root->s = std::move(init);
  root->handle = kNoHandle;
  if (stateful_) {
    Fingerprint canon_fp;
    const VisitedInsert ins =
        core.insert_canonical(root->s, kNoHandle, nullptr, &canon_fp);
    root->canon_fp = canon_fp;
    root->handle = ins.handle;
    push_frame(root, &canon_fp);
  } else {
    push_frame(root, nullptr);
  }

  while (depth_ > 0 && !drv_.done()) {
    if (const LimitKind lk = drv_.over_limit(); lk != LimitKind::kNone) {
      drv_.mark_truncated(lk);
      break;
    }
    Frame& f = frames_[depth_ - 1];
    if (f.next >= f.n_chosen) {
      stack_set_.pop(f.item->s);
      w.release(f.item);
      f.item = nullptr;
      --depth_;
      continue;
    }
    const Event& e = f.chosen[f.next++];
    Item* succ = w.alloc();
    execute_into(proto_, f.item->s, e, drv_.exec_opts(), &w.failed, succ->s);
    ++result.stats.events_executed;
    drv_.maybe_progress(depth_);
    if (!w.failed.empty()) {
      drv_.record_assertion(w.failed);
      record_counterexample(e);
      if (cfg_.stop_at_first_violation) {
        w.release(succ);
        break;
      }
    }

    Fingerprint canon_fp;
    const Fingerprint* canon_fp_ptr = nullptr;
    if (stateful_) {
      // One canonicalization per successor, reused for the visited probe and
      // (in push_frame) the terminal fingerprint. The insert threads the
      // state graph: parent = the expanding frame's entry, via = the event.
      const VisitedInsert ins =
          core.insert_canonical(succ->s, f.item->handle, &e, &canon_fp);
      core.record_edge(w, f.item->handle, ins.handle);
      if (!ins.inserted) {
        w.release(succ);
        continue;
      }
      canon_fp_ptr = &canon_fp;
      succ->canon_fp = canon_fp;
      succ->handle = ins.handle;
    } else {
      if (stack_set_.contains(succ->s)) {  // cut cycles in stateless mode
        w.release(succ);
        continue;
      }
      if (depth_ >= cfg_.max_depth) {
        drv_.mark_truncated(LimitKind::kBudget);
        w.release(succ);
        continue;
      }
      succ->handle = kNoHandle;
    }

    if (drv_.check_violation(succ->s)) {
      record_counterexample(e);
      w.release(succ);
      if (cfg_.stop_at_first_violation) break;
      continue;
    }
    push_frame(succ, canon_fp_ptr);
  }

  if (core.scc_pass_enabled() && result.verdict == Verdict::kHolds &&
      !drv_.truncated()) {
    core.run_scc_ignoring_pass(result, result.terminal_fingerprints,
                               cfg_.collect_terminals,
                               [this] { return drv_.time_limit_kind(); });
  }
  return drv_.finish();
}

void SequentialDriver::push_frame(Item* it, const Fingerprint* canon_fp) {
  ExpansionCore& core = drv_.core();
  WorkerCtx& w = drv_.worker();
  ExploreResult& result = drv_.result();
  ++result.stats.states_visited;
  result.stats.max_depth_seen = std::max(
      result.stats.max_depth_seen, static_cast<unsigned>(depth_) + 1);

  enumerate_events(proto_, it->s, w.enabled);
  result.stats.events_enabled += w.enabled.size();
  if (depth_ == frames_.size()) frames_.emplace_back();
  Frame& f = frames_[depth_++];
  f.item = it;
  f.next = 0;

  if (w.enabled.empty()) {
    ++result.stats.terminal_states;
    if (cfg_.collect_terminals) {
      result.terminal_fingerprints.push_back(
          canon_fp != nullptr ? *canon_fp
                              : core.canonical_fingerprint(it->s));
    }
    core.record_full(w, it->handle);  // a terminal is trivially full
    f.n_chosen = 0;
    stack_set_.push(it->s);
    return;
  }

  bool reduced = false;
  const std::function<bool(const State&)> on_stack =
      [this](const State& s) { return stack_set_.contains(s); };
  const std::size_t k =
      core.select(it->s, w, result.stats, on_stack, !stateful_, &reduced);
  if (k == w.enabled.size()) core.record_full(w, it->handle);
  // Copy (not move) the chosen events into the recycled frame: assignment
  // reuses both the frame slots' and the scratch events' buffer capacity.
  if (f.chosen.size() < k) f.chosen.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    f.chosen[j] = w.enabled[reduced ? w.idx[j] : j];
  }
  f.n_chosen = k;
  stack_set_.push(it->s);
}

// The DFS stack is the parent chain of the violating state: gather its event
// sequence and rebuild the trace through the shared replay helper (execute()
// is deterministic, so the replayed states are the ones the search saw).
void SequentialDriver::record_counterexample(const Event& last) {
  std::vector<Event> events;
  events.reserve(depth_);
  for (std::size_t i = 0; i + 1 < depth_; ++i) {
    const Frame& f = frames_[i];
    events.push_back(f.chosen[f.next - 1]);
  }
  events.push_back(last);
  drv_.record_counterexample(events);
}

// --- PoolDriver -------------------------------------------------------------
//
// Allocation: workers recycle Item objects (the State successor buffers)
// through per-worker free lists, and execute_into() copy-assigns into the
// recycled state so its locals/network vector capacity is reused. In steady
// state an expansion touches the global allocator only to intern a genuinely
// new state, not once per generated successor. Items are handed over by
// pointer (push/steal transfer ownership); the memory itself is owned by the
// per-worker backing stores, which outlive the pool.
//
// With a reduction strategy (SPOR under the visited-set or scc proviso), one
// shared strategy object serves all workers — its select() must be
// thread-safe (guaranteed by needs_dfs_stack() == false, see explorer.hpp).
// The chosen sets then depend on visited-set contents at evaluation time, so
// the reduced state count varies with the schedule; the verdict does not.
//
// Counterexamples: every insert records the successor's parent entry and
// incoming event (and canonicalizing permutation) in the interned arena. The
// first violation captures {parent handle, final event}; after the pool
// drains, the parent walk (ShardedVisited::path_from_root) plus the final
// event is replayed through execute() into a TraceStep path. The frontier
// always carries concrete states, so the chain replays concretely even under
// symmetry; only fingerprint mode (which stores no states) yields no trace.

PoolDriver::PoolDriver(const Protocol& proto, const ExploreConfig& cfg,
                       ReductionStrategy* strategy)
    : core_(proto, cfg, strategy,
            cfg.visited == VisitedMode::kExact ? VisitedMode::kInterned
                                               : cfg.visited,
            std::clamp(cfg.threads, 1u, 256u)),
      proto_(proto),
      cfg_(cfg),
      threads_(std::clamp(cfg.threads, 1u, 256u)) {}

ExploreResult PoolDriver::run() {
  start_ = std::chrono::steady_clock::now();
  core_.begin_run();

  worker_stats_.assign(threads_, ExploreStats{});
  worker_terminals_.assign(threads_, {});

  State init = proto_.initial();
  if (const Property* p = proto_.violated_property(init)) {
    result_.verdict = Verdict::kViolated;
    result_.violated_property = p->name;
    if (cfg_.on_violation) cfg_.on_violation(p->name);
  } else {
    Fingerprint canon_fp;
    const VisitedInsert root =
        core_.insert_canonical(init, kNoHandle, nullptr, &canon_fp);
    Item* root_item = core_.worker(0).alloc();
    root_item->s = std::move(init);
    root_item->canon_fp = canon_fp;
    root_item->handle = root.handle;
    root_item->depth = 0;
    injector_.push_back(root_item);
    outstanding_.store(1, std::memory_order_relaxed);

    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w) {
      pool.emplace_back([this, w] { worker(w); });
    }
    for (std::thread& t : pool) t.join();
  }

  // Merge per-worker stats.
  for (const ExploreStats& st : worker_stats_) {
    result_.stats.states_visited += st.states_visited;
    result_.stats.events_executed += st.events_executed;
    result_.stats.events_selected += st.events_selected;
    result_.stats.events_enabled += st.events_enabled;
    result_.stats.terminal_states += st.terminal_states;
    result_.stats.full_expansions += st.full_expansions;
    result_.stats.max_depth_seen =
        std::max(result_.stats.max_depth_seen, st.max_depth_seen);
  }
  auto& tf = result_.terminal_fingerprints;
  for (auto& v : worker_terminals_) tf.insert(tf.end(), v.begin(), v.end());

  if (result_.verdict == Verdict::kViolated && pending_.armed &&
      visited_stores_graph(core_.visited().mode())) {
    std::vector<Event> events =
        core_.visited().graph().path_from_root(pending_.parent);
    events.push_back(pending_.last);
    result_.counterexample = replay_trace(proto_, events, core_.exec_opts());
  }

  const auto limit =
      static_cast<LimitKind>(limit_.load(std::memory_order_relaxed));
  if (core_.scc_pass_enabled() && result_.verdict == Verdict::kHolds &&
      limit == LimitKind::kNone) {
    core_.run_scc_ignoring_pass(result_, tf, cfg_.collect_terminals,
                                [this] { return time_limit_kind(); });
  }
  std::sort(tf.begin(), tf.end());
  tf.erase(std::unique(tf.begin(), tf.end()), tf.end());

  result_.stats.states_stored = core_.visited().size();
  result_.stats.visited_bytes = core_.visited().approx_bytes();
  result_.stats.threads_used = threads_;
  result_.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  core_.finish_stats(result_.stats);
  if (result_.verdict != Verdict::kViolated && limit != LimitKind::kNone) {
    result_.verdict = verdict_of(limit);
  }
  return std::move(result_);
}

void PoolDriver::worker(unsigned wid) {
  WorkerCtx& me = core_.worker(wid);
  ExploreStats& st = worker_stats_[wid];
  std::uint64_t tick = 0;
  unsigned idle = 0;
  for (;;) {
    if (stopped()) return;  // drop remaining work after a stop
    Item* item = me.deque.pop();
    if (item == nullptr) item = acquire_work(me, wid);
    if (item == nullptr) {
      if (outstanding_.load(std::memory_order_acquire) == 0) return;
      backoff(idle);
      continue;
    }
    idle = 0;
    expand(*item, me, st, worker_terminals_[wid]);
    me.release(item);
    if (++tick % 256 == 0) {
      if (const LimitKind lk = time_limit_kind(); lk != LimitKind::kNone) {
        signal_limit(lk);
      }
    }
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      return;  // last in-flight item: the search is exhausted
    }
  }
}

// Steal from random victims — one item normally, half a deep victim's deque
// when steal-half batching is configured — then fall back to the injector.
Item* PoolDriver::acquire_work(WorkerCtx& me, unsigned wid) {
  if (threads_ > 1) {
    const auto start = static_cast<unsigned>(me.next_rand() % threads_);
    for (unsigned k = 0; k < threads_; ++k) {
      const unsigned v = (start + k) % threads_;
      if (v == wid) continue;
      WorkerCtx& victim = core_.worker(v);
      if (cfg_.steal_half_threshold != 0 &&
          victim.deque.size_hint() >= cfg_.steal_half_threshold) {
        me.steal_buf.resize(kMaxStealBatch);
        const std::size_t got =
            victim.deque.steal_batch(me.steal_buf.data(), kMaxStealBatch);
        if (got > 0) {
          // Keep one, queue the rest locally; they stay outstanding.
          for (std::size_t i = 1; i < got; ++i) me.deque.push(me.steal_buf[i]);
          return me.steal_buf[0];
        }
        continue;
      }
      if (Item* it = victim.deque.steal()) return it;
    }
  }
  std::lock_guard<std::mutex> lk(inj_mu_);
  if (injector_.empty()) return nullptr;
  Item* it = injector_.back();
  injector_.pop_back();
  return it;
}

// Starvation backoff: yield first, then sleep in growing slices so an idle
// worker on an oversubscribed box stops eating the expanding workers'
// quanta. Termination latency is bounded by the longest slice (~1 ms).
void PoolDriver::backoff(unsigned& idle) {
  if (++idle < 16) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min(50u * (idle - 15), 1000u)));
  }
}

void PoolDriver::push_work(WorkerCtx& me, Item* succ) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (me.deque.size_hint() >= kInjectorOverflow) {
    std::lock_guard<std::mutex> lk(inj_mu_);
    injector_.push_back(succ);
  } else {
    me.deque.push(succ);
  }
}

void PoolDriver::expand(Item& item, WorkerCtx& me, ExploreStats& st,
                        std::vector<Fingerprint>& terminals) {
  ++st.states_visited;
  st.max_depth_seen = std::max(st.max_depth_seen, item.depth + 1);

  enumerate_events(proto_, item.s, me.enabled);
  st.events_enabled += me.enabled.size();
  if (me.enabled.empty()) {
    ++st.terminal_states;
    if (cfg_.collect_terminals) terminals.push_back(item.canon_fp);
    core_.record_full(me, item.handle);  // a terminal is trivially full
    return;
  }

  // The shared strategy evaluates its cycle proviso (if any) against the
  // global visited set — no DFS stack exists here; see por/spor.cpp for why
  // that probe is sound under concurrent inserts.
  bool reduced = false;
  const std::size_t n_selected =
      core_.select(item.s, me, st, /*on_stack=*/{}, /*stateless=*/false,
                   &reduced);
  if (n_selected == me.enabled.size()) core_.record_full(me, item.handle);

  for (std::size_t j = 0; j < n_selected; ++j) {
    if (stopped()) return;
    const Event& e = me.enabled[reduced ? me.idx[j] : j];
    Item* succ = me.alloc();
    execute_into(proto_, item.s, e, core_.exec_opts(), &me.failed, succ->s);
    ++st.events_executed;
    const std::uint64_t global_events =
        events_budget_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (global_events > cfg_.max_events) {
      me.release(succ);
      signal_limit(LimitKind::kBudget);
      return;
    }
    if (cfg_.on_progress && cfg_.progress_every_events != 0 &&
        global_events % cfg_.progress_every_events == 0) {
      emit_progress(global_events);
    }
    if (!me.failed.empty()) {
      record_violation(me.failed, item.handle, e);
      if (cfg_.stop_at_first_violation) {
        me.release(succ);
        return;
      }
    }

    // One canonicalization per successor; its cached fingerprint feeds the
    // visited probe and is carried along as the terminal fingerprint. The
    // insert threads the state graph: parent = the expanded item's entry.
    Fingerprint canon_fp;
    const VisitedInsert ins =
        core_.insert_canonical(succ->s, item.handle, &e, &canon_fp);
    core_.record_edge(me, item.handle, ins.handle);
    if (!ins.inserted) {
      me.release(succ);
      continue;
    }
    if (const LimitKind lk = state_limit_kind(); lk != LimitKind::kNone) {
      me.release(succ);
      signal_limit(lk);
      return;
    }
    if (const Property* p = proto_.violated_property(succ->s)) {
      record_violation(p->name, item.handle, e);
      me.release(succ);
      if (cfg_.stop_at_first_violation) return;
      continue;
    }
    succ->canon_fp = canon_fp;
    succ->handle = ins.handle;
    succ->depth = item.depth + 1;
    push_work(me, succ);
  }
}

void PoolDriver::record_violation(const std::string& property,
                                  StateHandle parent, const Event& last) {
  {
    std::lock_guard<std::mutex> lk(result_mu_);
    if (result_.verdict != Verdict::kViolated) {
      result_.verdict = Verdict::kViolated;
      result_.violated_property = property;
      // Trace seed for the winning violation: the parent entry plus the
      // final event; the violating endpoint is recomputed by the replay
      // (it may never have been interned — an assertion failure records
      // before any insert).
      pending_.parent = parent;
      pending_.last = last;
      pending_.armed = true;
    }
  }
  if (cfg_.on_violation) {
    // hooks_mu_ (not result_mu_) serializes this with emit_progress, as
    // the hook contract promises.
    std::lock_guard<std::mutex> lk(hooks_mu_);
    cfg_.on_violation(property);
  }
  if (cfg_.stop_at_first_violation) stop();
}

// Open items across the injector and every worker deque, computed on demand
// from the deques' own bounds — an approximate but never-negative snapshot.
std::uint64_t PoolDriver::frontier_size() const {
  std::uint64_t n = 0;
  {
    std::lock_guard<std::mutex> lk(inj_mu_);
    n = injector_.size();
  }
  for (unsigned i = 0; i < threads_; ++i) {
    n += core_.worker(i).deque.size_hint();
  }
  return n;
}

// Parallel progress snapshot: exact visited-set size and global event count;
// per-worker stats are not merged mid-run. hooks_mu_ serializes it against
// itself and against the violation hook.
void PoolDriver::emit_progress(std::uint64_t global_events) {
  std::lock_guard<std::mutex> lk(hooks_mu_);
  ExploreStats snap;
  snap.states_stored = core_.visited().size();
  snap.events_executed = global_events;
  snap.frontier = frontier_size();
  snap.threads_used = threads_;
  snap.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  cfg_.on_progress(snap);
}

void PoolDriver::signal_limit(LimitKind k) {
  std::uint8_t expected = 0;
  limit_.compare_exchange_strong(expected, static_cast<std::uint8_t>(k),
                                 std::memory_order_relaxed);
  stop();
}

LimitKind PoolDriver::state_limit_kind() const {
  if (cancel_requested(cfg_)) return LimitKind::kResource;
  const std::uint64_t stored = core_.visited().size();
  if ((cfg_.guard.max_states != 0 && stored > cfg_.guard.max_states) ||
      (cfg_.guard.max_memory_bytes != 0 &&
       core_.visited().approx_bytes() > cfg_.guard.max_memory_bytes)) {
    return LimitKind::kResource;
  }
  if (stored > cfg_.max_states) return LimitKind::kBudget;
  return LimitKind::kNone;
}

LimitKind PoolDriver::time_limit_kind() const {
  if (cancel_requested(cfg_)) return LimitKind::kResource;
  const double el = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  if (el > cfg_.guard.watchdog_seconds) return LimitKind::kResource;
  if (el > cfg_.max_seconds) return LimitKind::kBudget;
  return LimitKind::kNone;
}

// --- StackReplayDriver ------------------------------------------------------

StackReplayDriver::StackReplayDriver(const Protocol& proto,
                                     const ExploreConfig& cfg)
    // The DPOR form: stateless, so the core keeps no visited set — it still
    // provides the Item pool, scratch buffers and stats bookkeeping.
    : StackReplayDriver(proto, cfg, nullptr, VisitedMode::kFingerprint,
                        /*stateful=*/false) {}

StackReplayDriver::StackReplayDriver(const Protocol& proto,
                                     const ExploreConfig& cfg,
                                     ReductionStrategy* strategy,
                                     VisitedMode visited_mode, bool stateful)
    : core_(proto, cfg, strategy, visited_mode, /*n_workers=*/1),
      proto_(proto),
      cfg_(cfg),
      stateful_(stateful) {}

void StackReplayDriver::start() {
  start_ = std::chrono::steady_clock::now();
  core_.begin_run();
}

bool StackReplayDriver::check_violation(const State& s) {
  const Property* p = proto_.violated_property(s);
  if (p == nullptr) return false;
  result_.verdict = Verdict::kViolated;
  result_.violated_property = p->name;
  if (cfg_.on_violation) cfg_.on_violation(p->name);
  if (cfg_.stop_at_first_violation) done_ = true;
  return true;
}

void StackReplayDriver::record_assertion(const std::string& label) {
  result_.verdict = Verdict::kViolated;
  result_.violated_property = label;
  if (cfg_.on_violation) cfg_.on_violation(label);
}

// Stored-state count for budget/guard checks and stats: the visited set for
// stateful riders, the visit counter for stateless ones (where every walked
// node is "stored" only transiently on the stack).
std::uint64_t StackReplayDriver::stored_states() const {
  return stateful_ ? core_.visited().size() : result_.stats.states_visited;
}

LimitKind StackReplayDriver::over_limit() {
  if (cancel_requested(cfg_)) return LimitKind::kResource;
  const ResourceGuard& g = cfg_.guard;
  const std::uint64_t stored = stored_states();
  if (g.max_states != 0 && stored > g.max_states) return LimitKind::kResource;
  if (g.max_memory_bytes != 0 &&
      core_.visited().approx_bytes() > g.max_memory_bytes) {
    return LimitKind::kResource;
  }
  if (result_.stats.events_executed > cfg_.max_events) return LimitKind::kBudget;
  if (stored > cfg_.max_states) return LimitKind::kBudget;
  if (++budget_tick_ % 1024 == 0) return time_limit_kind();
  return LimitKind::kNone;
}

LimitKind StackReplayDriver::time_limit_kind() const {
  if (cancel_requested(cfg_)) return LimitKind::kResource;
  const double el = elapsed();
  if (el > cfg_.guard.watchdog_seconds) return LimitKind::kResource;
  if (el > cfg_.max_seconds) return LimitKind::kBudget;
  return LimitKind::kNone;
}

// Same progress-hook contract as the pool driver.
void StackReplayDriver::maybe_progress(std::uint64_t frontier) {
  if (!cfg_.on_progress || cfg_.progress_every_events == 0) return;
  if (result_.stats.events_executed % cfg_.progress_every_events != 0) return;
  ExploreStats snap = result_.stats;
  snap.states_stored = stored_states();
  snap.frontier = frontier;
  snap.seconds = elapsed();
  cfg_.on_progress(snap);
}

void StackReplayDriver::record_counterexample(std::span<const Event> events) {
  result_.counterexample = replay_trace(proto_, events, core_.exec_opts());
}

ExploreResult StackReplayDriver::finish() {
  result_.stats.seconds = elapsed();
  result_.stats.states_stored = stored_states();
  if (stateful_) result_.stats.visited_bytes = core_.visited().approx_bytes();
  core_.finish_stats(result_.stats);
  if (result_.verdict != Verdict::kViolated && limit_ != LimitKind::kNone) {
    result_.verdict = verdict_of(limit_);
  }
  auto& tf = result_.terminal_fingerprints;
  std::sort(tf.begin(), tf.end());
  tf.erase(std::unique(tf.begin(), tf.end()), tf.end());
  return std::move(result_);
}

double StackReplayDriver::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace mpb::engine
