#include "core/spill.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

namespace mpb {

namespace {

[[nodiscard]] std::size_t page_size() noexcept {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

[[nodiscard]] std::size_t round_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) / align * align;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("spill: " + what + ": " + std::strerror(errno));
}

// An anonymous (unlinked) temporary file in `dir`: O_TMPFILE never has a
// name at all; the mkstemp fallback unlinks immediately, so either way the
// kernel reclaims the space when the store (or a crashed process) goes away.
[[nodiscard]] int open_spill_file(const std::string& dir) {
#ifdef O_TMPFILE
  const int fd = ::open(dir.c_str(), O_TMPFILE | O_RDWR | O_EXCL, 0600);
  if (fd >= 0) return fd;
  // EOPNOTSUPP/EISDIR: filesystem without O_TMPFILE; fall through.
#endif
  std::string tmpl = dir + "/mpb-spill-XXXXXX";
  const int fd2 = ::mkstemp(tmpl.data());
  if (fd2 < 0) fail("cannot create spill file in '" + dir + "'");
  ::unlink(tmpl.c_str());
  return fd2;
}

}  // namespace

ChunkStore::ChunkStore(SpillConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.enabled()) fd_ = open_spill_file(cfg_.dir);
}

ChunkStore::~ChunkStore() {
  for (Chunk& c : chunks_) {
    if (fd_ >= 0) {
      ::munmap(c.base, c.size);
    } else {
      delete[] c.base;
    }
  }
  if (fd_ >= 0) ::close(fd_);
}

std::byte* ChunkStore::alloc_chunk(std::size_t bytes, bool spillable) {
  std::lock_guard<std::mutex> lock(mu_);
  Chunk c;
  if (fd_ >= 0) {
    c.size = round_up(bytes, page_size());
    const std::uint64_t off = file_size_;
    if (::ftruncate(fd_, static_cast<off_t>(off + c.size)) != 0) {
      fail("ftruncate");
    }
    void* p = ::mmap(nullptr, c.size, PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                     static_cast<off_t>(off));
    if (p == MAP_FAILED) fail("mmap");
    file_size_ = off + c.size;
    c.base = static_cast<std::byte*>(p);  // file pages read back as zeros
  } else {
    c.size = bytes;
    c.base = new std::byte[bytes]();  // value-init: zero-filled
  }
  c.spillable = spillable && fd_ >= 0 && cfg_.resident_bytes != 0;
  c.resident = true;
  allocated_.fetch_add(c.size, std::memory_order_relaxed);
  resident_.fetch_add(c.size, std::memory_order_relaxed);
  chunks_.push_back(c);
  evict_locked();
  return c.base;
}

// Enforce the resident budget over the spillable chunks, oldest first; the
// just-allocated (newest) chunk is never evicted in its own round, so the
// caller's initial writes always hit resident pages. Cold chunks are
// re-advised every round: duplicate probes fault cold pages back in behind
// the accounting's back, and the periodic re-advise bounds that drift.
void ChunkStore::evict_locked() {
  if (fd_ < 0 || cfg_.resident_bytes == 0) return;
  for (std::size_t i = 0; i + 1 < chunks_.size(); ++i) {
    Chunk& c = chunks_[i];
    if (!c.spillable) continue;
    if (c.resident &&
        resident_.load(std::memory_order_relaxed) <= cfg_.resident_bytes) {
      continue;
    }
    if (c.resident) {
      c.resident = false;
      resident_.fetch_sub(c.size, std::memory_order_relaxed);
    }
    // MADV_DONTNEED on a MAP_SHARED file mapping drops the PTEs (and RSS);
    // dirty pages live on in the page cache / backing file, so the data
    // survives and later reads just refault.
    ::madvise(c.base, c.size, MADV_DONTNEED);
  }
}

}  // namespace mpb
