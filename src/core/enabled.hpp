// Enumeration of enabled events (Section IV-A: "enabled sets of messages").
//
// For a quorum transition with exact threshold q, the candidate sets X are all
// ways to pick q *distinct* senders among the pending messages (restricted to
// the transition's allowed_senders mask) and one pending message per chosen
// sender. For powerset-arity transitions every subset of the pending pool is a
// candidate — the exponential general case the paper describes; callers keep
// those pools small.
//
// Identical pending messages (same type/sender/receiver/payload) are deduped:
// consuming either copy yields the same successor state, i.e. the same
// state-graph edge, so only one event is emitted.
#pragma once

#include <vector>

#include "core/protocol.hpp"
#include "core/state.hpp"
#include "core/transition.hpp"

namespace mpb {

// Append every enabled event of transition `tid` in state `s` to `out`.
void enumerate_events_of(const Protocol& proto, const State& s, TransitionId tid,
                         std::vector<Event>& out);

// All enabled events in `s`, grouped by transition id (ascending).
[[nodiscard]] std::vector<Event> enumerate_events(const Protocol& proto, const State& s);

// Same, refilling `out` (cleared first). Hot loops — the parallel workers —
// pass a scratch vector so the enabled-set buffer is allocated once per
// worker instead of once per expansion.
void enumerate_events(const Protocol& proto, const State& s,
                      std::vector<Event>& out);

// True iff transition `tid` has at least one enabled event in `s`.
[[nodiscard]] bool transition_enabled(const Protocol& proto, const State& s,
                                      TransitionId tid);

// True iff the pending-message pool of `tid` in `s` could never satisfy its
// arity regardless of guards (used by the NES selection in SPOR: a transition
// disabled for lack of messages needs producers; one disabled only by its
// guard needs a local-state change).
[[nodiscard]] bool pool_insufficient(const Protocol& proto, const State& s,
                                     TransitionId tid);

}  // namespace mpb
