// Global states of the message-passing computation model (Section II-A).
//
// A state s is the vector of every process's local state plus the contents of
// every channel. We store the channels as one sorted multiset of messages
// (each message knows its endpoints) and the local states as one flat vector
// of Values with per-process offsets held by the Protocol. Both components are
// kept canonical so that equality and hashing are structural.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/message.hpp"
#include "util/hash.hpp"

namespace mpb {

class State {
 public:
  State() = default;
  State(std::vector<Value> locals, std::vector<Message> network)
      : locals_(std::move(locals)), net_(std::move(network)) {
    std::sort(net_.begin(), net_.end());
  }

  [[nodiscard]] std::span<const Value> locals() const noexcept { return locals_; }
  [[nodiscard]] std::span<Value> locals_mut() noexcept { return locals_; }
  [[nodiscard]] const std::vector<Message>& network() const noexcept { return net_; }
  [[nodiscard]] std::size_t network_size() const noexcept { return net_.size(); }

  // Local-variable slice of one process; offsets come from the Protocol.
  [[nodiscard]] std::span<const Value> local_slice(std::size_t offset,
                                                   std::size_t len) const noexcept {
    return {locals_.data() + offset, len};
  }
  [[nodiscard]] std::span<Value> local_slice_mut(std::size_t offset,
                                                 std::size_t len) noexcept {
    return {locals_.data() + offset, len};
  }

  // Insert a message, keeping the multiset sorted.
  void add_message(const Message& m) {
    net_.insert(std::upper_bound(net_.begin(), net_.end(), m), m);
  }

  // Remove exactly one occurrence of `m`. Returns false if absent.
  bool remove_message(const Message& m) {
    auto it = std::lower_bound(net_.begin(), net_.end(), m);
    if (it == net_.end() || !(*it == m)) return false;
    net_.erase(it);
    return true;
  }

  // Indices into network() of pending messages addressed to `receiver` with
  // type `type`. The sort order makes this a contiguous range.
  [[nodiscard]] std::pair<std::size_t, std::size_t> pending_range(
      ProcessId receiver, MsgType type) const noexcept;

  [[nodiscard]] std::uint64_t hash() const noexcept {
    Hasher64 h;
    feed(h);
    return h.digest();
  }

  [[nodiscard]] Fingerprint fingerprint() const noexcept {
    Hasher64 a(0x243f6a8885a308d3ULL);
    Hasher64 b(0x13198a2e03707344ULL);
    feed(a);
    feed(b);
    return {a.digest(), b.digest()};
  }

  friend bool operator==(const State& a, const State& b) noexcept {
    return a.locals_ == b.locals_ && a.net_ == b.net_;
  }

  // Lexicographic order; used only by tests that compare reachable-state sets.
  friend bool operator<(const State& a, const State& b) noexcept {
    if (a.locals_ != b.locals_) return a.locals_ < b.locals_;
    return std::lexicographical_compare(a.net_.begin(), a.net_.end(),
                                        b.net_.begin(), b.net_.end(),
                                        [](const Message& x, const Message& y) {
                                          return x < y;
                                        });
  }

 private:
  void feed(Hasher64& h) const noexcept {
    h.add(locals_.size());
    for (Value v : locals_) h.add_int(v);
    h.add(net_.size());
    for (const Message& m : net_) m.feed(h);
  }

  std::vector<Value> locals_;
  std::vector<Message> net_;  // sorted multiset of all in-flight messages
};

struct StateHash {
  [[nodiscard]] std::size_t operator()(const State& s) const noexcept {
    return static_cast<std::size_t>(s.hash());
  }
};

}  // namespace mpb
