// Global states of the message-passing computation model (Section II-A).
//
// A state s is the vector of every process's local state plus the contents of
// every channel. We store the channels as one sorted multiset of messages
// (each message knows its endpoints) and the local states as one flat vector
// of Values with per-process offsets held by the Protocol. Both components are
// kept canonical so that equality and hashing are structural.
//
// Hashing is *incremental*: each state carries two 64-bit lane sums (one per
// fingerprint half), each the wrap-around sum of an index-keyed contribution
// per local variable plus a per-message contribution over the network
// multiset. A commutative sum is equality-preserving because local
// contributions are keyed by position and the network is a multiset. Mutating
// through the typed API (`add_message`, `remove_message`, `set_local`) updates
// the sums in O(1); successor states therefore rehash only their delta. A raw
// mutable span (`locals_mut`/`local_slice_mut`) cannot be observed, so handing
// one out marks the sums stale and the next fingerprint query performs one
// full pass. Full passes and fingerprint queries are counted in process-wide
// counters so benchmarks can report how much hashing the cache saved.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/message.hpp"
#include "util/hash.hpp"

namespace mpb {

// Process-wide hash-work counters (relaxed atomics; cheap enough to keep on).
// `full passes` counts whole-state rehashes, `queries` counts fingerprint() /
// hash() calls. The seed implementation performed two full feeds per
// fingerprint query; the cached scheme performs one pass per state lifetime
// plus one per raw-span invalidation.
[[nodiscard]] std::uint64_t state_full_hash_passes() noexcept;
[[nodiscard]] std::uint64_t state_hash_queries() noexcept;
void reset_state_hash_counters() noexcept;

class State {
 public:
  State() = default;
  State(std::vector<Value> locals, std::vector<Message> network)
      : locals_(std::move(locals)), net_(std::move(network)) {
    std::sort(net_.begin(), net_.end());
  }

  [[nodiscard]] std::span<const Value> locals() const noexcept { return locals_; }
  [[nodiscard]] const std::vector<Message>& network() const noexcept { return net_; }
  [[nodiscard]] std::size_t network_size() const noexcept { return net_.size(); }

  // Local-variable slice of one process; offsets come from the Protocol.
  [[nodiscard]] std::span<const Value> local_slice(std::size_t offset,
                                                   std::size_t len) const noexcept {
    return {locals_.data() + offset, len};
  }

  // Raw mutable views. Writes through these spans cannot be tracked, so the
  // cached lane sums are invalidated and the next fingerprint query pays one
  // full rehash. Prefer `set_local` on hot paths.
  [[nodiscard]] std::span<Value> locals_mut() noexcept {
    sums_valid_ = false;
    return locals_;
  }
  [[nodiscard]] std::span<Value> local_slice_mut(std::size_t offset,
                                                 std::size_t len) noexcept {
    sums_valid_ = false;
    return {locals_.data() + offset, len};
  }

  // Tracked single-variable write: O(1) incremental fingerprint update.
  void set_local(std::size_t idx, Value v) noexcept {
    const Value old = locals_[idx];
    if (old == v) return;
    if (sums_valid_) {
      loc_sum_[0] += local_contrib<0>(idx, v) - local_contrib<0>(idx, old);
      loc_sum_[1] += local_contrib<1>(idx, v) - local_contrib<1>(idx, old);
    }
    locals_[idx] = v;
  }

  // Insert a message, keeping the multiset sorted.
  void add_message(const Message& m) {
    net_.insert(std::upper_bound(net_.begin(), net_.end(), m), m);
    if (sums_valid_) {
      net_sum_[0] += message_contrib<0>(m);
      net_sum_[1] += message_contrib<1>(m);
    }
  }

  // Remove exactly one occurrence of `m`. Returns false if absent.
  bool remove_message(const Message& m) {
    auto it = std::lower_bound(net_.begin(), net_.end(), m);
    if (it == net_.end() || !(*it == m)) return false;
    net_.erase(it);
    if (sums_valid_) {
      net_sum_[0] -= message_contrib<0>(m);
      net_sum_[1] -= message_contrib<1>(m);
    }
    return true;
  }

  // Indices into network() of pending messages addressed to `receiver` with
  // type `type`. The sort order makes this a contiguous range.
  [[nodiscard]] std::pair<std::size_t, std::size_t> pending_range(
      ProcessId receiver, MsgType type) const noexcept;

  [[nodiscard]] std::uint64_t hash() const noexcept {
    const Fingerprint fp = fingerprint();
    return fp.lo ^ mix64(fp.hi);
  }

  [[nodiscard]] Fingerprint fingerprint() const noexcept;

  friend bool operator==(const State& a, const State& b) noexcept {
    return a.locals_ == b.locals_ && a.net_ == b.net_;
  }

  // Lexicographic order; used only by tests that compare reachable-state sets.
  friend bool operator<(const State& a, const State& b) noexcept {
    if (a.locals_ != b.locals_) return a.locals_ < b.locals_;
    return std::lexicographical_compare(a.net_.begin(), a.net_.end(),
                                        b.net_.begin(), b.net_.end(),
                                        [](const Message& x, const Message& y) {
                                          return x < y;
                                        });
  }

 private:
  static constexpr std::uint64_t kLaneSeed[2] = {0x243f6a8885a308d3ULL,
                                                 0x13198a2e03707344ULL};

  template <int Lane>
  [[nodiscard]] static std::uint64_t local_contrib(std::size_t idx, Value v) noexcept {
    // Position-keyed so the commutative sum still distinguishes orderings.
    return mix64(kLaneSeed[Lane] ^ mix64((idx + 1) * 0x9e3779b97f4a7c15ULL) ^
                 mix64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) +
                       0xd1b54a32d192ed03ULL));
  }

  template <int Lane>
  [[nodiscard]] static std::uint64_t message_contrib(const Message& m) noexcept {
    Hasher64 h(kLaneSeed[Lane]);
    m.feed(h);
    return h.digest();
  }

  void recompute_sums() const noexcept;

  std::vector<Value> locals_;
  std::vector<Message> net_;  // sorted multiset of all in-flight messages

  // Lane sums; lazily (re)computed, then maintained incrementally. Mutable so
  // const queries can fill the cache.
  mutable std::uint64_t loc_sum_[2] = {0, 0};
  mutable std::uint64_t net_sum_[2] = {0, 0};
  mutable bool sums_valid_ = false;
};

struct StateHash {
  [[nodiscard]] std::size_t operator()(const State& s) const noexcept {
    return static_cast<std::size_t>(s.hash());
  }
};

}  // namespace mpb
