// Plain-text table rendering for the bench binaries, in the layout of the
// paper's Tables I/II: one row per protocol setting, one column group per
// search strategy, each cell showing result / states / time.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mpb::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;

  // Also emit machine-readable CSV (same cells, comma-separated, quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpb::harness
