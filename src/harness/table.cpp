#include "harness/table.hpp"

#include <algorithm>
#include <iomanip>

namespace mpb::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << v << " ";
    }
    os << "|\n";
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << '"' << cells[c] << '"';
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace mpb::harness
