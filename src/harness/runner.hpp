// Experiment harness: runs one (protocol, search strategy) cell of the
// paper's evaluation matrix and reports verdict, state count and time — the
// quantities Tables I and II tabulate.
//
// This layer is a thin compatibility shim over the check facade
// (src/check/check.hpp): RunSpec maps onto a CheckRequest with a prebuilt
// protocol, and run() delegates to check::run_check. New code should use the
// facade directly; the table formatting helpers below remain the harness's
// own surface.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/explorer.hpp"
#include "por/spor.hpp"

namespace mpb::harness {

enum class Strategy {
  kUnreducedStateful,   // plain DFS + visited set   (facade name: "full")
  kUnreducedStateless,  // plain DFS, no visited set (facade name: "stateless")
  kSpor,                // stubborn-set SPOR, stateful        ("spor")
  kDpor,                // Flanagan-Godefroid DPOR, stateless ("dpor")
};

[[nodiscard]] std::string_view to_string(Strategy s) noexcept;
// The check-facade strategy name of `s` ("full", "stateless", "spor", "dpor").
[[nodiscard]] std::string_view strategy_name(Strategy s) noexcept;

struct RunSpec {
  Strategy strategy = Strategy::kSpor;
  SporOptions spor;        // applies to kSpor
  ExploreConfig explore;   // budgets; mode/visited are set by the strategy
};

// Per-cell budgets and engine knobs read from the environment:
//   MPB_BUDGET_STATES  (default 3,000,000 stored/visited states)
//   MPB_BUDGET_SECONDS (default 120 s)
//   MPB_THREADS        (default 1; >1 parallelizes stateful runs)
//   MPB_VISITED        exact | fingerprint | interned (default fingerprint)
//   MPB_PROGRESS       any value but "0": attach the rate-limited progress
//                      logger below to on_progress (off by default)
//   MPB_PROGRESS_INTERVAL  minimum milliseconds between progress lines
//                      (default 500; also read by mpbcheck, whose
//                      --progress-interval flag overrides it)
// mirroring the paper's 48-hour time-out discipline at laptop scale.
[[nodiscard]] ExploreConfig budget_from_env();

// The MPB_PROGRESS_INTERVAL knob in *seconds*, clamped to [0, 600]; the
// default logger interval (0.5 s) when unset or unparsable.
[[nodiscard]] double progress_interval_from_env();

// The MPB_VISITED knob, parsed; nullopt when unset or invalid. The single
// reader of that variable — budget_from_env applies it, and front ends use
// it to tell an explicit user choice from the default (mpbcheck's --trace
// upgrade must not override a deliberate mode).
[[nodiscard]] std::optional<VisitedMode> visited_mode_from_env();

// The MPB_REPEAT knob (best-of-N run timing, CheckRequest::repeat), clamped
// to [1, 64]; 1 when unset or unparsable. Read by mpbcheck (--repeat
// overrides it) and bench/explore_throughput.
[[nodiscard]] unsigned repeat_from_env();

// A rate-limited on_progress consumer: prints one stderr line (visited size,
// states/sec, events, frontier depth, elapsed) at most every
// `min_interval_seconds` of run time, judged by the snapshots' own elapsed
// clock so the limiter needs no extra timer. The hook the explorer invokes
// is already serialized, so the logger is safe in parallel runs. Reference
// consumers: mpbcheck --progress and the MPB_PROGRESS env knob.
[[nodiscard]] std::function<void(const ExploreStats&)> make_progress_logger(
    double min_interval_seconds = 0.5);

[[nodiscard]] ExploreResult run(const Protocol& proto, const RunSpec& spec);

// "2,822,764" style thousands separators, as printed in the paper's tables.
[[nodiscard]] std::string format_count(std::uint64_t n);
// "9h37m", "3m4s", "12s", "0.45s".
[[nodiscard]] std::string format_time(double seconds);
// A Table I/II cell: "Verified  2,822,764  9.2s" or ">3,000,000 (budget)".
[[nodiscard]] std::string format_cell(const ExploreResult& r);

}  // namespace mpb::harness
