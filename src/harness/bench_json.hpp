// Machine-readable benchmark records.
//
// Every workload cell (one explore() run) can be recorded as a BenchRecord
// and serialized to a JSON file such as BENCH_explore.json, so the perf
// trajectory (states/sec, events/sec, peak RSS, hash-cache effectiveness) is
// tracked across PRs by tools/bench_compare.py.
//
// Two entry points:
//  * write_bench_json(path, records) — explicit, used by bench/explore_throughput;
//  * record_bench(...) — appends to a process-global sink that harness::run
//    feeds automatically; the sink flushes at process exit to the path in the
//    MPB_BENCH_JSON environment variable (no-op when unset), which turns
//    every existing bench/table binary into a JSON emitter for free.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "util/json.hpp"

namespace mpb::harness {

struct BenchRecord {
  std::string name;       // workload id, e.g. "paxos_explore/full/t8"
  std::string strategy;   // "full", "spor", ...
  std::string visited;    // visited-set mode
  unsigned threads = 1;
  std::string verdict;
  std::uint64_t states_stored = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t full_hash_passes = 0;
  std::uint64_t hash_queries = 0;
  // Reduction-quality counters (SPOR runs; 0 otherwise): candidate sets the
  // cycle proviso rejected, and states the SCC ignoring fix re-expanded.
  // tools/bench_compare.py gates increases like throughput regressions.
  std::uint64_t proviso_fallbacks = 0;
  std::uint64_t scc_reexpansions = 0;
  // DPOR runs: picks the sleep sets skipped without executing (0 elsewhere);
  // a drop means the reduction re-explores more — gated like the counters
  // above. scc_pass_ms is the wall-clock of the SCC ignoring pass (SPOR
  // --proviso scc runs; 0 elsewhere).
  std::uint64_t sleep_blocked = 0;
  double scc_pass_ms = 0.0;
  // Distributed runs (dist/rN cells; 0 elsewhere): successors forwarded to
  // their owning rank, kBatch frames carrying them, and total framed bytes
  // queued on the mesh — the forwarding-overhead columns bench_compare.py
  // prints next to the dist/r1-vs-full/t1 wall-clock gate.
  std::uint64_t forwarded_states = 0;
  std::uint64_t forward_batches = 0;
  std::uint64_t wire_bytes = 0;
  double seconds = 0.0;
  double states_per_sec = 0.0;
  double events_per_sec = 0.0;
  // Process-lifetime maximum RSS (getrusage ru_maxrss) at record time, NOT a
  // per-workload footprint: in a multi-workload sweep every record after the
  // hungriest workload inherits its peak. Compare like-positioned records
  // across files, not workloads within one file.
  long peak_rss_kb = 0;
  // Exact visited-set footprint at the end of the run (0 for exact /
  // fingerprint modes, which do not account). Per-workload, unlike
  // peak_rss_kb; bench/state_bytes divides this by states_stored to get the
  // bytes/state series bench_compare.py tracks.
  std::uint64_t visited_bytes = 0;
};

// Build a record from an explore result; fills rates and current peak RSS.
[[nodiscard]] BenchRecord make_record(std::string name, std::string strategy,
                                      std::string visited,
                                      const ExploreResult& r);

// One record as a JSON object / compact single-line text. The payload of
// `mpbcheck --json`, of the serve result messages ("record" field) and of
// every entry write_bench_json emits — one serializer, so the three
// machine-readable surfaces cannot drift apart.
[[nodiscard]] util::Json to_json_value(const BenchRecord& r);
[[nodiscard]] std::string to_json(const BenchRecord& r);

// Max resident set size of this process so far, in KiB (getrusage).
[[nodiscard]] long peak_rss_kb() noexcept;

// Serialize records to `path` as a JSON object {"schema", "records": [...]}.
// Returns false on I/O failure.
bool write_bench_json(const std::string& path, std::span<const BenchRecord> records);

// Append to the process-global sink (flushed to $MPB_BENCH_JSON at exit).
void record_bench(BenchRecord record);

}  // namespace mpb::harness
