#include "harness/bench_json.hpp"

#include <sys/resource.h>

#include <cstdlib>
#include <fstream>
#include <mutex>

namespace mpb::harness {

BenchRecord make_record(std::string name, std::string strategy,
                        std::string visited, const ExploreResult& r) {
  BenchRecord rec;
  rec.name = std::move(name);
  rec.strategy = std::move(strategy);
  rec.visited = std::move(visited);
  rec.threads = r.stats.threads_used;
  rec.verdict = std::string(to_string(r.verdict));
  rec.states_stored = r.stats.states_stored;
  rec.events_executed = r.stats.events_executed;
  rec.full_hash_passes = r.stats.full_hash_passes;
  rec.hash_queries = r.stats.hash_queries;
  rec.proviso_fallbacks = r.stats.proviso_fallbacks;
  rec.scc_reexpansions = r.stats.scc_reexpansions;
  rec.sleep_blocked = r.stats.sleep_blocked;
  rec.scc_pass_ms = r.stats.scc_pass_ms;
  rec.forwarded_states = r.stats.forwarded_states;
  rec.forward_batches = r.stats.forward_batches;
  rec.wire_bytes = r.stats.wire_bytes;
  rec.seconds = r.stats.seconds;
  const double secs = r.stats.seconds > 0.0 ? r.stats.seconds : 1e-9;
  rec.states_per_sec = static_cast<double>(r.stats.states_stored) / secs;
  rec.events_per_sec = static_cast<double>(r.stats.events_executed) / secs;
  rec.peak_rss_kb = peak_rss_kb();
  rec.visited_bytes = r.stats.visited_bytes;
  return rec;
}

long peak_rss_kb() noexcept {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

util::Json to_json_value(const BenchRecord& r) {
  util::Json j = util::Json::object();
  j["name"] = r.name;
  j["strategy"] = r.strategy;
  j["visited"] = r.visited;
  j["threads"] = r.threads;
  j["verdict"] = r.verdict;
  j["states_stored"] = r.states_stored;
  j["events_executed"] = r.events_executed;
  j["full_hash_passes"] = r.full_hash_passes;
  j["hash_queries"] = r.hash_queries;
  j["proviso_fallbacks"] = r.proviso_fallbacks;
  j["scc_reexpansions"] = r.scc_reexpansions;
  j["sleep_blocked"] = r.sleep_blocked;
  j["scc_pass_ms"] = r.scc_pass_ms;
  j["forwarded_states"] = r.forwarded_states;
  j["forward_batches"] = r.forward_batches;
  j["wire_bytes"] = r.wire_bytes;
  j["seconds"] = r.seconds;
  j["states_per_sec"] = r.states_per_sec;
  j["events_per_sec"] = r.events_per_sec;
  j["peak_rss_kb"] = r.peak_rss_kb;
  j["visited_bytes"] = r.visited_bytes;
  return j;
}

std::string to_json(const BenchRecord& r) { return to_json_value(r).dump(); }

bool write_bench_json(const std::string& path,
                      std::span<const BenchRecord> records) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n  \"schema\": \"mpb-bench-v1\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    os << "    " << to_json(records[i])
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return static_cast<bool>(os);
}

namespace {

// Process-global sink, flushed to $MPB_BENCH_JSON at exit.
class Sink {
 public:
  void add(BenchRecord r) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(r));
  }

  ~Sink() {
    const char* path = std::getenv("MPB_BENCH_JSON");
    if (path == nullptr || *path == '\0') return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!records_.empty()) write_bench_json(path, records_);
  }

 private:
  std::mutex mu_;
  std::vector<BenchRecord> records_;
};

Sink& sink() {
  static Sink s;
  return s;
}

}  // namespace

void record_bench(BenchRecord record) { sink().add(std::move(record)); }

}  // namespace mpb::harness
