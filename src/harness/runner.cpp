#include "harness/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <utility>

#include "check/check.hpp"

namespace mpb::harness {

std::string_view to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kUnreducedStateful: return "unreduced";
    case Strategy::kUnreducedStateless: return "unreduced-stateless";
    case Strategy::kSpor: return "SPOR";
    case Strategy::kDpor: return "DPOR";
  }
  return "?";
}

std::string_view strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::kUnreducedStateful: return "full";
    case Strategy::kUnreducedStateless: return "stateless";
    case Strategy::kSpor: return "spor";
    case Strategy::kDpor: return "dpor";
  }
  return "?";
}

ExploreConfig budget_from_env() {
  ExploreConfig cfg;
  cfg.max_states = 3'000'000;
  cfg.max_seconds = 120.0;
  if (const char* s = std::getenv("MPB_BUDGET_STATES")) {
    cfg.max_states = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("MPB_BUDGET_SECONDS")) {
    cfg.max_seconds = std::strtod(s, nullptr);
  }
  // Benchmarks run big instances: fingerprinted visited set keeps memory flat.
  cfg.visited = visited_mode_from_env().value_or(VisitedMode::kFingerprint);
  if (const char* s = std::getenv("MPB_THREADS")) {
    const long n = std::strtol(s, nullptr, 10);
    cfg.threads = static_cast<unsigned>(std::clamp(n, 1L, 256L));
  }
  if (const char* s = std::getenv("MPB_PROGRESS");
      s != nullptr && std::string_view(s) != "0") {
    cfg.progress_every_events = 1u << 14;
    cfg.on_progress = make_progress_logger(progress_interval_from_env());
  }
  return cfg;
}

double progress_interval_from_env() {
  if (const char* s = std::getenv("MPB_PROGRESS_INTERVAL")) {
    char* end = nullptr;
    const double ms = std::strtod(s, &end);
    if (end != s) return std::clamp(ms, 0.0, 600'000.0) / 1000.0;
  }
  return 0.5;
}

std::optional<VisitedMode> visited_mode_from_env() {
  if (const char* s = std::getenv("MPB_VISITED")) {
    return visited_mode_from_string(s);
  }
  return std::nullopt;
}

unsigned repeat_from_env() {
  if (const char* s = std::getenv("MPB_REPEAT")) {
    const long n = std::strtol(s, nullptr, 10);
    return static_cast<unsigned>(std::clamp(n, 1L, 64L));
  }
  return 1;
}

std::function<void(const ExploreStats&)> make_progress_logger(
    double min_interval_seconds) {
  // Shared mutable limiter state: the returned std::function is copied into
  // ExploreConfig, and all copies must share one "last printed" clock.
  auto last_printed = std::make_shared<double>(-1.0);
  return [last_printed, min_interval_seconds](const ExploreStats& st) {
    if (*last_printed >= 0.0 &&
        st.seconds - *last_printed < min_interval_seconds) {
      return;
    }
    *last_printed = st.seconds;
    const auto rate = static_cast<std::uint64_t>(
        st.seconds > 0.0 ? static_cast<double>(st.states_stored) / st.seconds
                         : 0.0);
    std::cerr << "progress: visited=" << format_count(st.states_stored)
              << "  states/s=" << format_count(rate)
              << "  events=" << format_count(st.events_executed)
              << "  frontier=" << format_count(st.frontier)
              << "  elapsed=" << format_time(st.seconds) << "\n";
  };
}

ExploreResult run(const Protocol& proto, const RunSpec& spec) {
  check::CheckRequest req;
  req.protocol = proto;
  req.strategy = std::string(strategy_name(spec.strategy));
  req.spor = spec.spor;
  req.explore = spec.explore;
  // The facade feeds the process-global bench sink itself (flushed to
  // $MPB_BENCH_JSON at exit), so every harness user stays a machine-readable
  // emitter.
  return check::run_check(std::move(req)).result;
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string format_time(double seconds) {
  std::ostringstream os;
  if (seconds >= 3600.0) {
    const auto h = static_cast<unsigned>(seconds / 3600.0);
    const auto m = static_cast<unsigned>((seconds - h * 3600.0) / 60.0);
    os << h << "h" << m << "m";
  } else if (seconds >= 60.0) {
    const auto m = static_cast<unsigned>(seconds / 60.0);
    const auto s = static_cast<unsigned>(seconds - m * 60.0);
    os << m << "m" << s << "s";
  } else if (seconds >= 1.0) {
    os.precision(1);
    os << std::fixed << seconds << "s";
  } else {
    os.precision(2);
    os << std::fixed << seconds << "s";
  }
  return os.str();
}

std::string format_cell(const ExploreResult& r) {
  std::ostringstream os;
  if (r.verdict == Verdict::kBudgetExceeded) {
    os << ">" << format_count(r.stats.states_stored) << " " << format_time(r.stats.seconds)
       << " (budget)";
  } else if (r.verdict == Verdict::kResourceLimit) {
    os << ">" << format_count(r.stats.states_stored) << " " << format_time(r.stats.seconds)
       << " (resource)";
  } else {
    os << to_string(r.verdict) << " " << format_count(r.stats.states_stored) << " "
       << format_time(r.stats.seconds);
  }
  return os.str();
}

}  // namespace mpb::harness
