// Fluent construction of Protocol values — the C++ counterpart of the MP
// language (Section II-B and the Appendix user guide).
//
//   mp::ProtocolBuilder b("paxos");
//   auto p0 = b.process("proposer0", "Proposer", {{"started", 0}, {"phase", 0}});
//   b.transition(p0, "START")
//       .spontaneous()
//       .guard([](const GuardView& g) { return g.local[0] == 0; })
//       .effect([=](EffectCtx& c) { ... })
//       .sends("READ", acceptor_mask)
//       .priority(3);
//   Protocol proto = b.build();
//
// build() validates the protocol (see Protocol::validate) and throws
// std::invalid_argument on any inconsistency, so malformed models fail at
// construction rather than as unsound POR at exploration time.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/protocol.hpp"

namespace mpb::mp {

class ProtocolBuilder;

class TransitionBuilder {
 public:
  // Message consumption. Default arity is a single message.
  TransitionBuilder& consumes(std::string_view msg_type, int arity = 1);
  TransitionBuilder& spontaneous();
  // Restrict the senders X may draw from (defaults to every process).
  TransitionBuilder& from(ProcessMask senders);

  TransitionBuilder& guard(Guard g);
  TransitionBuilder& effect(Effect e);

  // Declare a message type this transition may send and to whom; may be
  // called multiple times. Feeds the static POR annotations.
  TransitionBuilder& sends(std::string_view msg_type, ProcessMask to);

  TransitionBuilder& reply();            // Def. 4 reply transition
  TransitionBuilder& visible();          // may affect a property's truth
  // Ghost-read declarations: whole processes, or specific variables of one.
  TransitionBuilder& peeks(ProcessMask procs);
  TransitionBuilder& peeks(ProcessId proc, VarMask vars);
  // Restrict the effect's own-variable writes (sharper peek conflicts).
  TransitionBuilder& writes(VarMask vars);
  // Restrict the guard's own-variable reads (sharper enabling relations).
  TransitionBuilder& reads(VarMask vars);
  TransitionBuilder& priority(int p);    // seed-heuristic weight
  TransitionBuilder& reads_local(bool b);
  TransitionBuilder& writes_local(bool b);

 private:
  friend class ProtocolBuilder;
  TransitionBuilder(ProtocolBuilder& owner, Transition t)
      : owner_(owner), t_(std::move(t)) {}

  ProtocolBuilder& owner_;
  Transition t_;
};

class ProtocolBuilder {
 public:
  explicit ProtocolBuilder(std::string name);

  // Add a process with its local-variable schema (name, initial value).
  ProcessId process(std::string name, std::string type_name,
                    std::vector<std::pair<std::string, Value>> vars,
                    bool byzantine = false);

  MsgType msg(std::string_view name);

  // Start a transition of `proc`; finish by configuring the returned builder.
  TransitionBuilder& transition(ProcessId proc, std::string name);

  void property(std::string name,
                std::function<bool(const State&, const Protocol&)> holds);

  // Seed the initial network (rarely needed; drivers usually use spontaneous
  // transitions instead).
  void initial_message(const Message& m);

  // Validate and produce the protocol. Throws std::invalid_argument on error.
  [[nodiscard]] Protocol build();

  [[nodiscard]] const Protocol& peek() const noexcept { return proto_; }

 private:
  friend class TransitionBuilder;
  Protocol proto_;
  std::vector<Value> initial_locals_;
  std::vector<Message> initial_msgs_;
  std::deque<TransitionBuilder> pending_;  // deque: stable references
};

}  // namespace mpb::mp
