#include "mp/builder.hpp"

#include <stdexcept>

namespace mpb::mp {

TransitionBuilder& TransitionBuilder::consumes(std::string_view msg_type, int arity) {
  t_.in_type = owner_.msg(msg_type);
  t_.arity = arity;
  return *this;
}

TransitionBuilder& TransitionBuilder::spontaneous() {
  t_.in_type = kNoMsgType;
  t_.arity = kSpontaneous;
  return *this;
}

TransitionBuilder& TransitionBuilder::from(ProcessMask senders) {
  t_.allowed_senders = senders;
  return *this;
}

TransitionBuilder& TransitionBuilder::guard(Guard g) {
  t_.guard = std::move(g);
  return *this;
}

TransitionBuilder& TransitionBuilder::effect(Effect e) {
  t_.effect = std::move(e);
  return *this;
}

TransitionBuilder& TransitionBuilder::sends(std::string_view msg_type, ProcessMask to) {
  const MsgType mt = owner_.msg(msg_type);
  if (t_.out_types.empty()) t_.send_to = 0;  // replace the conservative default
  t_.out_types.push_back(mt);
  t_.send_to |= to;
  return *this;
}

TransitionBuilder& TransitionBuilder::reply() {
  t_.is_reply = true;
  return *this;
}

TransitionBuilder& TransitionBuilder::visible() {
  t_.visible = true;
  return *this;
}

TransitionBuilder& TransitionBuilder::peeks(ProcessMask procs) {
  t_.peeks |= procs;
  mask_for_each(procs, [&](unsigned pid) {
    t_.peek_decls.push_back(PeekDecl{static_cast<ProcessId>(pid), kAllVars});
  });
  return *this;
}

TransitionBuilder& TransitionBuilder::peeks(ProcessId proc, VarMask vars) {
  t_.peeks |= mask_of(proc);
  t_.peek_decls.push_back(PeekDecl{proc, vars});
  return *this;
}

TransitionBuilder& TransitionBuilder::writes(VarMask vars) {
  t_.writes_local = true;
  t_.writes_vars = vars;
  return *this;
}

TransitionBuilder& TransitionBuilder::reads(VarMask vars) {
  t_.reads_local = true;
  t_.reads_vars = vars;
  return *this;
}

TransitionBuilder& TransitionBuilder::priority(int p) {
  t_.priority = p;
  return *this;
}

TransitionBuilder& TransitionBuilder::reads_local(bool b) {
  t_.reads_local = b;
  return *this;
}

TransitionBuilder& TransitionBuilder::writes_local(bool b) {
  t_.writes_local = b;
  return *this;
}

ProtocolBuilder::ProtocolBuilder(std::string name) : proto_(std::move(name)) {}

ProcessId ProtocolBuilder::process(std::string name, std::string type_name,
                                   std::vector<std::pair<std::string, Value>> vars,
                                   bool byzantine) {
  ProcessInfo info;
  info.name = std::move(name);
  info.type_name = std::move(type_name);
  info.local_offset = initial_locals_.size();
  info.local_len = vars.size();
  info.byzantine = byzantine;
  for (auto& [vname, init] : vars) {
    info.var_names.push_back(std::move(vname));
    initial_locals_.push_back(init);
  }
  return proto_.add_process(std::move(info));
}

MsgType ProtocolBuilder::msg(std::string_view name) {
  return proto_.intern_msg_type(name);
}

TransitionBuilder& ProtocolBuilder::transition(ProcessId proc, std::string name) {
  Transition t;
  t.name = std::move(name);
  t.proc = proc;
  t.out_types.clear();
  t.send_to = 0;  // nothing sent unless sends() is called
  pending_.emplace_back(TransitionBuilder(*this, std::move(t)));
  return pending_.back();
}

void ProtocolBuilder::property(
    std::string name, std::function<bool(const State&, const Protocol&)> holds) {
  proto_.add_property(Property{std::move(name), std::move(holds)});
}

void ProtocolBuilder::initial_message(const Message& m) {
  initial_msgs_.push_back(m);
}

Protocol ProtocolBuilder::build() {
  for (TransitionBuilder& tb : pending_) {
    proto_.add_transition(std::move(tb.t_));
  }
  pending_.clear();
  proto_.set_initial(State(std::move(initial_locals_), std::move(initial_msgs_)));
  if (std::string err = proto_.validate(); !err.empty()) {
    throw std::invalid_argument("protocol '" + proto_.name() + "' invalid: " + err);
  }
  return std::move(proto_);
}

}  // namespace mpb::mp
