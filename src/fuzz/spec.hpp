// The fuzzer's protocol grammar: a ProtocolSpec is a small plain-data
// description of a message-passing protocol — roles with replicated
// processes, guarded transitions over bounded local variables, role-mask or
// reply sends, and at most one "no member of role R ever holds v == k"
// invariant. render() turns a spec into a real Protocol through
// mp::ProtocolBuilder, deriving every static POR annotation (reads/writes
// masks, reply flags, visibility) exactly, so generated protocols exercise
// the reduction machinery the same way the hand-written models do.
//
// Specs serialize to a line-based `.repro` format (serialize/parse_repro)
// so a divergence found by the differential oracle (fuzz/oracle.hpp) can be
// minimized (fuzz/minimize.hpp), written to disk, and replayed bit-for-bit
// by `mpbfuzz --replay`.
//
// Symmetry soundness by construction: every process of a role gets the same
// transitions (same names, priorities, annotations — only the executing
// process differs), sends target whole role masks or reply to the sender,
// and payloads never contain process ids, so the role partition reported by
// render() is a true structural symmetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace mpb::fuzz {

// Local variables range over [0, kMaxVarValue]; every write is clamped, so
// the local-state part of the reachable space is finite by construction
// (the network multiset may still grow without bound — that is what the
// resource guards are for).
inline constexpr Value kMaxVarValue = 3;

struct RoleSpec {
  unsigned n_procs = 1;
  unsigned n_vars = 1;
};

enum class GuardKind : std::uint8_t { kAlways, kVarEq, kVarNe, kVarLt };

struct GuardSpec {
  GuardKind kind = GuardKind::kAlways;
  unsigned var = 0;
  Value value = 0;
};

enum class OpKind : std::uint8_t {
  kSet,          // var := value
  kInc,          // var := min(var + 1, kMaxVarValue)
  kCopyPayload,  // var := first payload slot of the first consumed message
};

struct OpSpec {
  OpKind kind = OpKind::kSet;
  unsigned var = 0;
  Value value = 0;
};

enum class SendTarget : std::uint8_t { kRole, kSender };
enum class PayloadKind : std::uint8_t { kConst, kVar };

struct SendSpec {
  unsigned msg_type = 0;
  SendTarget target = SendTarget::kRole;
  unsigned target_role = 0;               // meaningful for kRole
  PayloadKind payload = PayloadKind::kConst;
  unsigned payload_var = 0;               // meaningful for kVar
  Value payload_value = 0;                // meaningful for kConst
};

struct TransitionSpec {
  unsigned role = 0;
  int in_msg = -1;     // message type consumed; -1 = spontaneous
  int arity = 1;       // messages consumed (quorum when > 1); ignored if spontaneous
  int from_role = -1;  // restrict senders to one role; -1 = any process
  GuardSpec guard;
  std::vector<OpSpec> ops;
  std::vector<SendSpec> sends;
  int priority = 0;
};

// "No process of `role` ever reaches local[var] == bad_value."
struct PropertySpec {
  unsigned role = 0;
  unsigned var = 0;
  Value bad_value = 1;
};

struct ProtocolSpec {
  std::uint64_t seed = 0;  // provenance only; does not affect render()
  unsigned n_msg_types = 1;
  std::vector<RoleSpec> roles;
  std::vector<TransitionSpec> transitions;
  std::vector<PropertySpec> properties;  // at most one (keeps verdicts comparable)
};

struct RenderedModel {
  Protocol protocol{"fuzz"};
  // Roles with >= 2 processes, in ProcessId terms — what the symmetry
  // reducer consumes.
  std::vector<std::vector<ProcessId>> symmetric_roles;
};

// Build the protocol. Throws std::invalid_argument on any structural error
// (bad role/var/message index, reply send on a quorum transition, ...);
// ProtocolBuilder::build() re-validates the result.
[[nodiscard]] RenderedModel render(const ProtocolSpec& spec);

// Line-based `.repro` round-trip. parse_repro throws std::invalid_argument
// with a line-precise message on malformed input.
[[nodiscard]] std::string serialize(const ProtocolSpec& spec);
[[nodiscard]] ProtocolSpec parse_repro(const std::string& text);

// One-line human summary ("seed 42: 2 roles/4 procs, 5 transitions, ...").
[[nodiscard]] std::string describe(const ProtocolSpec& spec);

}  // namespace mpb::fuzz
