// The differential oracle: run one spec'd protocol through the check facade
// under every search configuration that must agree — {full, spor/stack,
// spor/visited, spor/scc, dpor} x {1 thread, N threads} x {symmetry on/off}
// — and cross-check the answers. The dpor column runs three ways: sleep
// sets on (default), sleep sets off (the on/off cross-check pins the
// sleep-set covering argument), and on the parallel backtrack-distributing
// driver at N threads (pins the exactly-once claim protocol). A dist/r2
// lane runs the unreduced search on the fingerprint-sharded multi-process
// driver, so the partition/forwarding/termination machinery is pinned to
// the sequential reference on every seed: same verdict, same terminal set,
// exactly the same stored-state count.
//
// Equivalence claims verified per seed (full/t1 is the reference):
//  * every lane reports the same verdict;
//  * when the protocol holds, every non-symmetry lane reports the same
//    terminal (deadlock) fingerprint set — stubborn sets and DPOR preserve
//    deadlocks — and the unreduced parallel search stores exactly the
//    sequential state count;
//  * symmetry lanes agree with each other on (canonical) terminals and
//    never store more states than their concrete counterparts;
//  * when the protocol is violated, every reported counterexample replays
//    through execute() to a state that genuinely violates the property.
//
// Every lane runs under hard resource guards (core/explorer.hpp). A lane
// that trips a guard is individually skipped; the whole seed is a
// resource-skip only when the reference itself trips. Skips are not
// divergences — a divergence means two completed searches disagree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "fuzz/spec.hpp"

namespace mpb::fuzz {

struct OracleConfig {
  unsigned par_threads = 4;
  bool test_parallel = true;
  bool test_symmetry = true;
  // Run the unreduced search on the multi-process distributed driver at two
  // ranks. Lanes run sequentially and worker pools are joined between lanes,
  // so the fork() inside the driver happens in a single-threaded process.
  bool test_dist = true;
  // Hard guards applied to every lane; pathological seeds become cheap
  // skips instead of hangs.
  std::uint64_t guard_states = std::uint64_t{1} << 14;
  std::uint64_t guard_memory_bytes = std::uint64_t{256} << 20;
  double watchdog_seconds = 5.0;
  // Test-only fault injection: add a SPOR lane whose cycle proviso is
  // disabled (the ignoring problem, re-introduced on purpose). Used to
  // prove the oracle catches an unsound reduction as a divergence.
  bool inject_unsound_reduction = false;
};

enum class OracleStatus : std::uint8_t { kAgree, kResourceSkip, kDiverged };

struct OracleRun {
  std::string name;           // lane, e.g. "spor/visited/t4"
  Verdict verdict = Verdict::kHolds;
  std::uint64_t states_stored = 0;
  std::uint64_t terminals = 0;
  bool skipped = false;       // hit a resource guard; excluded from checks
};

struct OracleReport {
  OracleStatus status = OracleStatus::kAgree;
  std::string detail;  // human-readable reason for skip/divergence
  std::vector<OracleRun> runs;

  [[nodiscard]] bool diverged() const noexcept {
    return status == OracleStatus::kDiverged;
  }
};

// Render the spec and run the full lane matrix. Propagates
// std::invalid_argument if the spec itself does not render.
[[nodiscard]] OracleReport run_oracle(const ProtocolSpec& spec,
                                      const OracleConfig& cfg = {});

}  // namespace mpb::fuzz
