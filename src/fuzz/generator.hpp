// Seeded random protocol generation over the fuzz spec grammar. Fully
// deterministic: the same 64-bit seed always yields the same ProtocolSpec
// (SplitMix64, no std:: distributions — their outputs are implementation
// defined), so every campaign finding is replayable from its seed alone.
//
// The generator biases toward terminating protocols — spontaneous
// transitions are bounded by a fire-counter guard, consuming transitions
// rarely send more than one message — but does not guarantee a finite
// network: pathological seeds are expected, and the differential oracle
// runs every protocol under hard resource guards that turn them into
// cheap resource-skips instead of hangs.
//
// Two handcrafted corpus entries ride along:
//  * ignoring_trap_spec() — a protocol whose only violation hides behind an
//    independent spontaneous cycle. Any SPOR run whose cycle proviso is
//    broken (the ignoring problem) reports kHolds while the full search
//    reports kViolated — the oracle's canary for proviso bugs.
//  * amplifier_spec() — a one-shot trigger into a self-amplifying consumer
//    whose network grows without bound: the resource-guard tests' workload.
#pragma once

#include <cstdint>

#include "fuzz/spec.hpp"

namespace mpb::fuzz {

// SplitMix64 — tiny, well-mixed, and stable across platforms.
struct Rng {
  std::uint64_t s = 0;

  explicit Rng(std::uint64_t seed) : s(seed) {}

  std::uint64_t next() noexcept {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  // Uniform-enough draw in [0, n); n == 0 returns 0.
  std::uint64_t below(std::uint64_t n) noexcept { return n == 0 ? 0 : next() % n; }
  bool chance(unsigned pct) noexcept { return below(100) < pct; }
};

struct GeneratorConfig {
  unsigned max_roles = 3;
  unsigned max_procs_per_role = 3;
  unsigned max_total_procs = 6;
  unsigned max_vars = 2;
  unsigned max_msg_types = 4;
  unsigned max_transitions_per_role = 3;
  unsigned max_ops = 2;
  unsigned max_sends = 2;
  unsigned property_pct = 60;  // chance of emitting the (single) invariant
  unsigned quorum_pct = 20;    // chance a consuming transition takes arity 2
};

// Deterministically synthesize a well-formed spec from the seed;
// render(generate(seed)) never throws for any seed.
[[nodiscard]] ProtocolSpec generate(std::uint64_t seed,
                                    const GeneratorConfig& cfg = {});

[[nodiscard]] ProtocolSpec ignoring_trap_spec();
[[nodiscard]] ProtocolSpec amplifier_spec();

}  // namespace mpb::fuzz
