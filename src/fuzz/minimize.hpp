// Greedy delta-debugging of a divergent spec: repeatedly try structural
// shrink steps (drop a transition / send / op / property, weaken a guard,
// remove a process or a role, drop a variable, compact unused message
// types) and keep any candidate for which the differential oracle still
// reports a divergence. Deterministic — candidates are tried in a fixed
// order and the first accepted one restarts the pass — so a given
// (spec, config) pair always minimizes to the same repro.
#pragma once

#include "fuzz/oracle.hpp"
#include "fuzz/spec.hpp"

namespace mpb::fuzz {

struct MinimizeStats {
  unsigned attempts = 0;  // oracle runs spent
  unsigned accepted = 0;  // shrink steps that kept the divergence
};

// Returns the smallest still-diverging spec found within `max_attempts`
// oracle runs. If the input itself does not diverge under `cfg`, it is
// returned unchanged.
[[nodiscard]] ProtocolSpec minimize(const ProtocolSpec& spec,
                                    const OracleConfig& cfg,
                                    MinimizeStats* stats = nullptr,
                                    unsigned max_attempts = 400);

}  // namespace mpb::fuzz
