#include "fuzz/oracle.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "check/check.hpp"
#include "por/spor.hpp"

namespace mpb::fuzz {

namespace {

[[nodiscard]] bool truncated(Verdict v) noexcept {
  return v == Verdict::kBudgetExceeded || v == Verdict::kResourceLimit;
}

// Test-only fault injection: a SPOR whose cycle proviso never fires — the
// ignoring problem reintroduced on purpose. The wrapper feeds the inner
// strategy a StrategyContext whose stack/visited probes always answer
// "no cycle", so reduced sets that close cycles are accepted unsoundly.
class BrokenProvisoSpor final : public ReductionStrategy {
 public:
  BrokenProvisoSpor(const Protocol& proto, const SporOptions& opts)
      : inner_(proto, opts) {}

  std::vector<std::size_t> select(const State& s, std::span<const Event> events,
                                  const StrategyContext& ctx) override {
    StrategyContext broken;
    broken.successor = ctx.successor;
    broken.on_stack = [](const State&) { return false; };
    broken.in_visited = [](const State&) { return false; };
    return inner_.select(s, events, broken);
  }

  [[nodiscard]] std::string_view name() const override {
    return "spor-broken-proviso";
  }
  [[nodiscard]] bool needs_dfs_stack() const override { return true; }

 private:
  SporStrategy inner_;
};

struct Lane {
  std::string name;
  const char* strategy;
  CycleProviso proviso;
  unsigned threads;
  bool symmetry;
  bool broken_proviso = false;
  VisitedMode visited = VisitedMode::kInterned;
  bool dpor_sleep = true;  // dpor lanes: sleep-set layer on/off
  unsigned dist_ranks = 0;  // >0: fingerprint-sharded multi-process driver
};

ExploreConfig base_explore(const OracleConfig& cfg) {
  ExploreConfig ec;
  // Interned visited keeps parallel lanes able to reconstruct traces and
  // gives the memory guard a real arena to meter.
  ec.visited = VisitedMode::kInterned;
  ec.collect_terminals = true;
  ec.guard.watchdog_seconds = cfg.watchdog_seconds;
  ec.guard.max_memory_bytes = cfg.guard_memory_bytes;
  ec.guard.max_states = cfg.guard_states;
  return ec;
}

ExploreResult run_lane(const RenderedModel& m, const OracleConfig& cfg,
                       const Lane& lane) {
  if (lane.broken_proviso) {
    ExploreConfig ec = base_explore(cfg);
    ec.mode = SearchMode::kStateful;
    ec.threads = 1;
    SporOptions so;
    so.proviso = CycleProviso::kStack;
    BrokenProvisoSpor broken(m.protocol, so);
    return explore(m.protocol, ec, &broken);
  }
  check::CheckRequest req;
  req.protocol = m.protocol;
  req.symmetric_roles = m.symmetric_roles;
  req.strategy = lane.strategy;
  req.spor.proviso = lane.proviso;
  req.dpor_sleep_sets = lane.dpor_sleep;
  req.symmetry = lane.symmetry;
  req.explore = base_explore(cfg);
  req.explore.threads = lane.threads;
  req.explore.visited = lane.visited;
  req.dist_ranks = lane.dist_ranks;
  req.record = false;  // fuzz lanes must not pollute the bench-JSON sink
  return check::run_check(std::move(req)).result;
}

// A reported violation must be a genuine run: replay its event chain from
// the initial state and confirm the final state violates a property. An
// empty counterexample is legitimate only when the initial state itself
// violates.
[[nodiscard]] std::optional<std::string> replay_problem(
    const Protocol& proto, const ExploreResult& r) {
  if (r.counterexample.empty()) {
    if (proto.violated_property(proto.initial()) == nullptr) {
      return "empty counterexample but the initial state satisfies all properties";
    }
    return std::nullopt;
  }
  std::vector<Event> events;
  events.reserve(r.counterexample.size());
  for (const TraceStep& s : r.counterexample) events.push_back(s.event);
  std::vector<TraceStep> replay;
  try {
    replay = replay_trace(proto, events);
  } catch (const std::exception& e) {
    return std::string("counterexample replay threw: ") + e.what();
  }
  if (replay.size() != events.size()) return "counterexample replay stopped early";
  if (proto.violated_property(replay.back().after) == nullptr) {
    return "replayed counterexample ends in a state that satisfies all properties";
  }
  return std::nullopt;
}

}  // namespace

OracleReport run_oracle(const ProtocolSpec& spec, const OracleConfig& cfg) {
  const RenderedModel m = render(spec);
  const bool par = cfg.test_parallel && cfg.par_threads >= 2;
  const unsigned tn = cfg.par_threads;
  const bool sym = cfg.test_symmetry && !m.symmetric_roles.empty();

  std::vector<Lane> lanes;
  lanes.push_back({"full/t1", "full", CycleProviso::kAuto, 1, false});
  if (par) lanes.push_back({"full/t" + std::to_string(tn), "full",
                            CycleProviso::kAuto, tn, false});
  lanes.push_back({"spor/stack/t1", "spor", CycleProviso::kStack, 1, false});
  lanes.push_back({"spor/visited/t1", "spor", CycleProviso::kVisited, 1, false});
  if (par) lanes.push_back({"spor/visited/t" + std::to_string(tn), "spor",
                            CycleProviso::kVisited, tn, false});
  lanes.push_back({"spor/scc/t1", "spor", CycleProviso::kScc, 1, false});
  if (par) lanes.push_back({"spor/scc/t" + std::to_string(tn), "spor",
                            CycleProviso::kScc, tn, false});
  // DPOR lanes: sleep sets on (the default), the sleep-set layer switched
  // off (on/off cross-check: both must reach the reference terminal set, so
  // a sleep-set covering bug diverges here), and the parallel driver at tN
  // (backtrack points distributed over the work-stealing pool; exactly-once
  // claiming bugs show up as lost terminals or dup verdict flips).
  lanes.push_back({"dpor/t1", "dpor", CycleProviso::kAuto, 1, false});
  lanes.push_back({"dpor/t1/nosleep", "dpor", CycleProviso::kAuto, 1, false,
                   /*broken_proviso=*/false, VisitedMode::kInterned,
                   /*dpor_sleep=*/false});
  if (par) lanes.push_back({"dpor/t" + std::to_string(tn), "dpor",
                            CycleProviso::kAuto, tn, false});
  // Collapse-compression lanes: the component-interned visited set must
  // agree with full-copy interning on verdicts, state counts, and terminal
  // sets — a tuple-equality bug would surface here as divergence.
  // The distributed lane: the unreduced search on the fingerprint-sharded
  // multi-process driver at two ranks. The full-strategy checks below then
  // pin the partition/forwarding/termination machinery to the sequential
  // reference on every seed — same verdict, same terminal set, and exactly
  // the same stored-state count (a state forwarded twice or dropped at a
  // shard boundary shows up as a count mismatch). Resource guards apply per
  // rank, so a guard-tripped dist lane is an individual skip like any other.
  if (cfg.test_dist) {
    lanes.push_back({"dist/r2", "full", CycleProviso::kAuto, 1, false,
                     /*broken_proviso=*/false, VisitedMode::kInterned,
                     /*dpor_sleep=*/true, /*dist_ranks=*/2});
  }
  lanes.push_back({"full/t1/collapse", "full", CycleProviso::kAuto, 1, false,
                   /*broken_proviso=*/false, VisitedMode::kCollapse});
  lanes.push_back({"spor/stack/t1/collapse", "spor", CycleProviso::kStack, 1,
                   false, /*broken_proviso=*/false, VisitedMode::kCollapse});
  if (sym) {
    lanes.push_back({"full/t1/sym", "full", CycleProviso::kAuto, 1, true});
    lanes.push_back({"spor/visited/t1/sym", "spor", CycleProviso::kVisited, 1,
                     true});
    if (par) lanes.push_back({"full/t" + std::to_string(tn) + "/sym", "full",
                              CycleProviso::kAuto, tn, true});
  }
  if (cfg.inject_unsound_reduction) {
    lanes.push_back({"spor/broken-proviso/t1", "spor", CycleProviso::kStack, 1,
                     false, /*broken_proviso=*/true});
  }

  OracleReport rep;
  std::vector<ExploreResult> results;
  results.reserve(lanes.size());
  for (const Lane& lane : lanes) {
    ExploreResult r = run_lane(m, cfg, lane);
    OracleRun run;
    run.name = lane.name;
    run.verdict = r.verdict;
    run.states_stored = r.stats.states_stored;
    run.terminals = r.terminal_fingerprints.size();
    run.skipped = truncated(r.verdict);
    rep.runs.push_back(std::move(run));
    results.push_back(std::move(r));
  }

  const ExploreResult& ref = results[0];
  if (truncated(ref.verdict)) {
    rep.status = OracleStatus::kResourceSkip;
    rep.detail = "reference lane " + lanes[0].name + " hit " +
                 std::string(to_string(ref.verdict));
    return rep;
  }

  std::ostringstream diverge;
  const auto flag = [&](const std::string& msg) {
    if (diverge.tellp() > 0) diverge << "; ";
    diverge << msg;
  };

  // Symmetry lanes canonicalize their fingerprints, so their terminal sets
  // are only comparable to each other; the first completed sym lane is the
  // sym-side reference.
  const ExploreResult* sym_ref = nullptr;
  std::string sym_ref_name;

  for (std::size_t i = 1; i < lanes.size(); ++i) {
    const Lane& lane = lanes[i];
    const ExploreResult& r = results[i];
    if (rep.runs[i].skipped) continue;

    if (r.verdict != ref.verdict) {
      flag(lane.name + " reports " + std::string(to_string(r.verdict)) +
           ", reference reports " + std::string(to_string(ref.verdict)));
      continue;
    }
    if (r.verdict == Verdict::kViolated) {
      if (auto why = replay_problem(m.protocol, r)) flag(lane.name + ": " + *why);
      continue;
    }
    // kHolds: deadlock preservation — every lane must reach the same
    // terminal set (canonical terminals compared within the symmetry side).
    if (!lane.symmetry) {
      if (r.terminal_fingerprints != ref.terminal_fingerprints) {
        flag(lane.name + " terminal set differs from " + lanes[0].name + " (" +
             std::to_string(r.terminal_fingerprints.size()) + " vs " +
             std::to_string(ref.terminal_fingerprints.size()) + ")");
      }
      // Unreduced parallel search must store exactly the sequential count.
      if (std::string_view(lane.strategy) == "full" &&
          r.stats.states_stored != ref.stats.states_stored) {
        flag(lane.name + " stores " + std::to_string(r.stats.states_stored) +
             " states, reference stores " +
             std::to_string(ref.stats.states_stored));
      }
    } else {
      if (r.stats.states_stored > ref.stats.states_stored) {
        flag(lane.name + " stores more states than the concrete reference");
      }
      if (sym_ref == nullptr) {
        sym_ref = &r;
        sym_ref_name = lane.name;
      } else if (r.terminal_fingerprints != sym_ref->terminal_fingerprints) {
        flag(lane.name + " canonical terminal set differs from " + sym_ref_name);
      }
    }
  }
  if (ref.verdict == Verdict::kViolated) {
    if (auto why = replay_problem(m.protocol, ref)) flag(lanes[0].name + ": " + *why);
  }

  // Collapse lanes run the same search as their interned twin, so they must
  // store exactly the same state count — tuple-compression is lossless or
  // it is broken.
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i].visited != VisitedMode::kCollapse || rep.runs[i].skipped) {
      continue;
    }
    const std::string twin =
        lanes[i].name.substr(0, lanes[i].name.size() - sizeof("/collapse") + 1);
    for (std::size_t j = 0; j < lanes.size(); ++j) {
      if (lanes[j].name != twin || rep.runs[j].skipped) continue;
      if (results[i].stats.states_stored != results[j].stats.states_stored) {
        flag(lanes[i].name + " stores " +
             std::to_string(results[i].stats.states_stored) + " states, " +
             twin + " stores " +
             std::to_string(results[j].stats.states_stored));
      }
    }
  }

  if (diverge.tellp() > 0) {
    rep.status = OracleStatus::kDiverged;
    rep.detail = diverge.str();
  }
  return rep;
}

}  // namespace mpb::fuzz
