#include "fuzz/minimize.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpb::fuzz {

namespace {

ProtocolSpec drop_role(const ProtocolSpec& s, unsigned r) {
  ProtocolSpec out = s;
  out.roles.erase(out.roles.begin() + r);
  out.transitions.clear();
  for (const TransitionSpec& t : s.transitions) {
    if (t.role == r) continue;
    TransitionSpec c = t;
    if (c.role > r) --c.role;
    if (c.from_role == static_cast<int>(r)) {
      c.from_role = -1;
    } else if (c.from_role > static_cast<int>(r)) {
      --c.from_role;
    }
    std::vector<SendSpec> keep;
    for (const SendSpec& sd : c.sends) {
      if (sd.target == SendTarget::kRole) {
        if (sd.target_role == r) continue;  // its audience is gone
        SendSpec s2 = sd;
        if (s2.target_role > r) --s2.target_role;
        keep.push_back(s2);
      } else {
        keep.push_back(sd);
      }
    }
    c.sends = std::move(keep);
    out.transitions.push_back(std::move(c));
  }
  out.properties.clear();
  for (const PropertySpec& p : s.properties) {
    if (p.role == r) continue;
    PropertySpec q = p;
    if (q.role > r) --q.role;
    out.properties.push_back(q);
  }
  return out;
}

// Drop the highest-indexed variable of role r, rewriting every reference.
ProtocolSpec drop_var(const ProtocolSpec& s, unsigned r) {
  const unsigned dead = s.roles[r].n_vars - 1;
  ProtocolSpec out = s;
  --out.roles[r].n_vars;
  for (TransitionSpec& t : out.transitions) {
    if (t.role != r) continue;
    if (t.guard.kind != GuardKind::kAlways && t.guard.var == dead) {
      t.guard = GuardSpec{};
    }
    std::erase_if(t.ops, [dead](const OpSpec& op) { return op.var == dead; });
    for (SendSpec& sd : t.sends) {
      if (sd.payload == PayloadKind::kVar && sd.payload_var == dead) {
        sd.payload = PayloadKind::kConst;
        sd.payload_value = 0;
      }
    }
  }
  std::erase_if(out.properties, [r, dead](const PropertySpec& p) {
    return p.role == r && p.var == dead;
  });
  return out;
}

// Renumber message types so only referenced ones remain (keeps at least one).
ProtocolSpec compact_msg_types(const ProtocolSpec& s) {
  std::vector<char> used(s.n_msg_types, 0);
  for (const TransitionSpec& t : s.transitions) {
    if (t.in_msg >= 0) used[static_cast<unsigned>(t.in_msg)] = 1;
    for (const SendSpec& sd : t.sends) used[sd.msg_type] = 1;
  }
  std::vector<unsigned> remap(s.n_msg_types, 0);
  unsigned next = 0;
  for (unsigned k = 0; k < s.n_msg_types; ++k) {
    if (used[k]) remap[k] = next++;
  }
  if (next == s.n_msg_types) return s;  // nothing to compact
  ProtocolSpec out = s;
  out.n_msg_types = std::max(next, 1u);
  for (TransitionSpec& t : out.transitions) {
    if (t.in_msg >= 0) t.in_msg = static_cast<int>(remap[static_cast<unsigned>(t.in_msg)]);
    for (SendSpec& sd : t.sends) sd.msg_type = remap[sd.msg_type];
  }
  return out;
}

// Fixed-order shrink candidates; coarse cuts first so big specs collapse
// fast, property removal last (it usually carries the divergence).
std::vector<ProtocolSpec> candidates(const ProtocolSpec& s) {
  std::vector<ProtocolSpec> out;
  if (s.roles.size() > 1) {
    for (unsigned r = 0; r < s.roles.size(); ++r) out.push_back(drop_role(s, r));
  }
  for (std::size_t i = 0; i < s.transitions.size(); ++i) {
    ProtocolSpec c = s;
    c.transitions.erase(c.transitions.begin() + static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  for (unsigned r = 0; r < s.roles.size(); ++r) {
    if (s.roles[r].n_procs > 1) {
      ProtocolSpec c = s;
      --c.roles[r].n_procs;
      out.push_back(std::move(c));
    }
  }
  for (unsigned r = 0; r < s.roles.size(); ++r) {
    if (s.roles[r].n_vars > 1) out.push_back(drop_var(s, r));
  }
  for (std::size_t i = 0; i < s.transitions.size(); ++i) {
    for (std::size_t j = 0; j < s.transitions[i].sends.size(); ++j) {
      ProtocolSpec c = s;
      auto& sends = c.transitions[i].sends;
      sends.erase(sends.begin() + static_cast<std::ptrdiff_t>(j));
      out.push_back(std::move(c));
    }
  }
  for (std::size_t i = 0; i < s.transitions.size(); ++i) {
    for (std::size_t j = 0; j < s.transitions[i].ops.size(); ++j) {
      ProtocolSpec c = s;
      auto& ops = c.transitions[i].ops;
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
      out.push_back(std::move(c));
    }
  }
  for (std::size_t i = 0; i < s.transitions.size(); ++i) {
    if (s.transitions[i].guard.kind != GuardKind::kAlways) {
      ProtocolSpec c = s;
      c.transitions[i].guard = GuardSpec{};
      out.push_back(std::move(c));
    }
    if (s.transitions[i].from_role >= 0) {
      ProtocolSpec c = s;
      c.transitions[i].from_role = -1;
      out.push_back(std::move(c));
    }
  }
  {
    ProtocolSpec c = compact_msg_types(s);
    if (c.n_msg_types != s.n_msg_types) out.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < s.properties.size(); ++i) {
    ProtocolSpec c = s;
    c.properties.erase(c.properties.begin() + static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

ProtocolSpec minimize(const ProtocolSpec& spec, const OracleConfig& cfg,
                      MinimizeStats* stats, unsigned max_attempts) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;

  const auto diverges = [&](const ProtocolSpec& s) {
    if (st.attempts >= max_attempts) return false;
    ++st.attempts;
    try {
      return run_oracle(s, cfg).diverged();
    } catch (const std::invalid_argument&) {
      return false;  // shrink step produced a spec that doesn't render
    }
  };

  if (!diverges(spec)) return spec;

  ProtocolSpec cur = spec;
  bool progress = true;
  while (progress && st.attempts < max_attempts) {
    progress = false;
    for (ProtocolSpec& cand : candidates(cur)) {
      if (st.attempts >= max_attempts) break;
      if (diverges(cand)) {
        cur = std::move(cand);
        ++st.accepted;
        progress = true;
        break;  // restart the pass from the shrunken spec
      }
    }
  }
  return cur;
}

}  // namespace mpb::fuzz
