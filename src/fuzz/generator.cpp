#include "fuzz/generator.hpp"

#include <algorithm>

namespace mpb::fuzz {

namespace {

GuardSpec random_guard(Rng& rng, unsigned n_vars) {
  GuardSpec g;
  if (rng.chance(40)) return g;  // kAlways
  const std::uint64_t kind = 1 + rng.below(3);
  g.kind = static_cast<GuardKind>(kind);
  g.var = static_cast<unsigned>(rng.below(n_vars));
  // kVarLt with value 0 is never true; keep the range useful per kind.
  g.value = g.kind == GuardKind::kVarLt
                ? static_cast<Value>(1 + rng.below(kMaxVarValue))
                : static_cast<Value>(rng.below(kMaxVarValue + 1));
  return g;
}

OpSpec random_op(Rng& rng, unsigned n_vars, bool consuming) {
  OpSpec op;
  const std::uint64_t kind = rng.below(consuming ? 3 : 2);
  op.kind = static_cast<OpKind>(kind);
  op.var = static_cast<unsigned>(rng.below(n_vars));
  op.value = static_cast<Value>(rng.below(kMaxVarValue + 1));
  return op;
}

SendSpec random_send(Rng& rng, const ProtocolSpec& spec, unsigned n_vars,
                     bool can_reply) {
  SendSpec s;
  s.msg_type = static_cast<unsigned>(rng.below(spec.n_msg_types));
  if (can_reply && rng.chance(30)) {
    s.target = SendTarget::kSender;
  } else {
    s.target = SendTarget::kRole;
    s.target_role = static_cast<unsigned>(rng.below(spec.roles.size()));
  }
  if (rng.chance(50)) {
    s.payload = PayloadKind::kVar;
    s.payload_var = static_cast<unsigned>(rng.below(n_vars));
  } else {
    s.payload = PayloadKind::kConst;
    s.payload_value = static_cast<Value>(rng.below(kMaxVarValue + 1));
  }
  return s;
}

}  // namespace

ProtocolSpec generate(std::uint64_t seed, const GeneratorConfig& cfg) {
  Rng rng(seed);
  ProtocolSpec spec;
  spec.seed = seed;
  spec.n_msg_types = static_cast<unsigned>(1 + rng.below(cfg.max_msg_types));

  const auto n_roles = static_cast<unsigned>(1 + rng.below(cfg.max_roles));
  unsigned remaining = std::max(cfg.max_total_procs, n_roles);
  for (unsigned r = 0; r < n_roles; ++r) {
    RoleSpec role;
    // Leave at least one process for every role still to come.
    const unsigned spare = remaining - (n_roles - r - 1);
    role.n_procs = static_cast<unsigned>(
        1 + rng.below(std::min(cfg.max_procs_per_role, std::max(spare, 1u))));
    remaining -= role.n_procs;
    role.n_vars = static_cast<unsigned>(1 + rng.below(cfg.max_vars));
    spec.roles.push_back(role);
  }

  for (unsigned r = 0; r < n_roles; ++r) {
    const unsigned n_vars = spec.roles[r].n_vars;
    const auto n_trans =
        static_cast<unsigned>(1 + rng.below(cfg.max_transitions_per_role));
    for (unsigned k = 0; k < n_trans; ++k) {
      TransitionSpec t;
      t.role = r;
      t.priority = static_cast<int>(rng.below(4));
      // Role 0's first transition is always spontaneous so every generated
      // protocol has at least one initially enabled event.
      const bool spontaneous = (r == 0 && k == 0) || rng.chance(35);
      if (spontaneous) {
        t.in_msg = -1;
        // Bounded firing: guard v < k with a forced increment of v, so a
        // spontaneous source cannot by itself pump the state space.
        const auto v = static_cast<unsigned>(rng.below(n_vars));
        t.guard = GuardSpec{GuardKind::kVarLt, v,
                            static_cast<Value>(1 + rng.below(2))};
        t.ops.push_back(OpSpec{OpKind::kInc, v, 0});
      } else {
        t.in_msg = static_cast<int>(rng.below(spec.n_msg_types));
        t.arity = 1;
        if (rng.chance(cfg.quorum_pct)) t.arity = 2;
        if (rng.chance(40)) {
          t.from_role = static_cast<int>(rng.below(n_roles));
        }
        t.guard = random_guard(rng, n_vars);
      }
      const auto n_ops = static_cast<unsigned>(rng.below(cfg.max_ops + 1));
      for (unsigned i = 0; i < n_ops; ++i) {
        t.ops.push_back(random_op(rng, n_vars, t.in_msg >= 0));
      }
      // Bias the network growth factor down: consuming transitions mostly
      // forward at most one message for the one they ate.
      unsigned max_sends = cfg.max_sends;
      if (t.in_msg >= 0 && rng.chance(80)) max_sends = std::min(max_sends, 1u);
      const auto n_sends = static_cast<unsigned>(rng.below(max_sends + 1));
      const bool can_reply = t.in_msg >= 0 && t.arity == 1;
      for (unsigned i = 0; i < n_sends; ++i) {
        t.sends.push_back(random_send(rng, spec, n_vars, can_reply));
      }
      spec.transitions.push_back(std::move(t));
    }
  }

  if (rng.chance(cfg.property_pct)) {
    PropertySpec p;
    p.role = static_cast<unsigned>(rng.below(n_roles));
    p.var = static_cast<unsigned>(rng.below(spec.roles[p.role].n_vars));
    // Nonzero, so the all-zero initial state never trivially violates.
    p.bad_value = static_cast<Value>(1 + rng.below(kMaxVarValue));
    spec.properties.push_back(p);
  }
  return spec;
}

ProtocolSpec ignoring_trap_spec() {
  // Role 0: an independent 2-state toggle (v: 0 -> 1 -> 0 -> ...), high
  // priority so SPOR's seed heuristic latches onto it. Its singleton
  // stubborn sets are sound per-state but close a cycle that ignores role 1
  // forever — exactly the situation the cycle proviso exists to repair.
  // Role 1: a single guarded step into the property's bad value.
  ProtocolSpec spec;
  spec.seed = 0;
  spec.n_msg_types = 1;
  spec.roles = {RoleSpec{1, 1}, RoleSpec{1, 1}};

  TransitionSpec t0;  // r0t0: v==0 -> v:=1
  t0.role = 0;
  t0.in_msg = -1;
  t0.guard = GuardSpec{GuardKind::kVarEq, 0, 0};
  t0.ops.push_back(OpSpec{OpKind::kSet, 0, 1});
  t0.priority = 3;
  spec.transitions.push_back(t0);

  TransitionSpec t1;  // r0t1: v==1 -> v:=0
  t1.role = 0;
  t1.in_msg = -1;
  t1.guard = GuardSpec{GuardKind::kVarEq, 0, 1};
  t1.ops.push_back(OpSpec{OpKind::kSet, 0, 0});
  t1.priority = 3;
  spec.transitions.push_back(t1);

  TransitionSpec t2;  // r1t0: v==0 -> v:=1 (the violation)
  t2.role = 1;
  t2.in_msg = -1;
  t2.guard = GuardSpec{GuardKind::kVarEq, 0, 0};
  t2.ops.push_back(OpSpec{OpKind::kSet, 0, 1});
  t2.priority = 0;
  spec.transitions.push_back(t2);

  spec.properties.push_back(PropertySpec{1, 0, 1});
  return spec;
}

ProtocolSpec amplifier_spec() {
  // Role 0 fires once, seeding one M0 into role 1; role 1 turns every M0 it
  // consumes into two more. The local state space is tiny but the network
  // multiset grows forever — only a resource guard stops this search.
  ProtocolSpec spec;
  spec.seed = 0;
  spec.n_msg_types = 1;
  spec.roles = {RoleSpec{1, 1}, RoleSpec{1, 1}};

  TransitionSpec trigger;  // r0t0: fire once, send M0 to role 1
  trigger.role = 0;
  trigger.in_msg = -1;
  trigger.guard = GuardSpec{GuardKind::kVarEq, 0, 0};
  trigger.ops.push_back(OpSpec{OpKind::kSet, 0, 1});
  trigger.sends.push_back(SendSpec{0, SendTarget::kRole, 1,
                                   PayloadKind::kConst, 0, 0});
  spec.transitions.push_back(trigger);

  TransitionSpec amp;  // r1t0: consume M0, emit two M0 back at role 1
  amp.role = 1;
  amp.in_msg = 0;
  amp.arity = 1;
  amp.sends.push_back(SendSpec{0, SendTarget::kRole, 1,
                               PayloadKind::kConst, 0, 0});
  amp.sends.push_back(SendSpec{0, SendTarget::kRole, 1,
                               PayloadKind::kConst, 0, 1});
  spec.transitions.push_back(amp);
  return spec;
}

}  // namespace mpb::fuzz
