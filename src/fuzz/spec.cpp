#include "fuzz/spec.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "mp/builder.hpp"
#include "util/bitmask.hpp"

namespace mpb::fuzz {

namespace {

[[nodiscard]] Value clamp_value(Value v) noexcept {
  return std::clamp<Value>(v, 0, kMaxVarValue);
}

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("fuzz spec: " + what);
}

// Structural validation before any builder call, so error messages point at
// the spec rather than at the rendered protocol.
void validate(const ProtocolSpec& spec) {
  if (spec.roles.empty()) bad("no roles");
  if (spec.n_msg_types == 0) bad("no message types");
  unsigned total = 0;
  for (std::size_t r = 0; r < spec.roles.size(); ++r) {
    const RoleSpec& role = spec.roles[r];
    if (role.n_procs == 0) bad("role " + std::to_string(r) + " has no processes");
    if (role.n_vars == 0 || role.n_vars > 8) {
      bad("role " + std::to_string(r) + " var count out of range");
    }
    total += role.n_procs;
  }
  if (total > kMaxProcesses) bad("more than 32 processes");
  if (spec.properties.size() > 1) bad("more than one property");
  for (const PropertySpec& p : spec.properties) {
    if (p.role >= spec.roles.size()) bad("property role out of range");
    if (p.var >= spec.roles[p.role].n_vars) bad("property var out of range");
  }
  for (std::size_t i = 0; i < spec.transitions.size(); ++i) {
    const TransitionSpec& t = spec.transitions[i];
    const std::string at = "transition " + std::to_string(i);
    if (t.role >= spec.roles.size()) bad(at + ": role out of range");
    const unsigned n_vars = spec.roles[t.role].n_vars;
    if (t.in_msg >= static_cast<int>(spec.n_msg_types)) {
      bad(at + ": consumed message type out of range");
    }
    if (t.in_msg >= 0 && t.arity < 1) bad(at + ": bad arity");
    if (t.from_role >= static_cast<int>(spec.roles.size())) {
      bad(at + ": sender role out of range");
    }
    if (t.guard.kind != GuardKind::kAlways && t.guard.var >= n_vars) {
      bad(at + ": guard var out of range");
    }
    for (const OpSpec& op : t.ops) {
      if (op.var >= n_vars) bad(at + ": op var out of range");
    }
    for (const SendSpec& s : t.sends) {
      if (s.msg_type >= spec.n_msg_types) bad(at + ": sent message type out of range");
      if (s.target == SendTarget::kRole && s.target_role >= spec.roles.size()) {
        bad(at + ": send target role out of range");
      }
      if (s.target == SendTarget::kSender && (t.in_msg < 0 || t.arity != 1)) {
        bad(at + ": reply send needs a single-message consuming transition");
      }
      if (s.payload == PayloadKind::kVar && s.payload_var >= n_vars) {
        bad(at + ": payload var out of range");
      }
    }
  }
}

}  // namespace

RenderedModel render(const ProtocolSpec& spec) {
  validate(spec);

  mp::ProtocolBuilder b("fuzz-" + std::to_string(spec.seed));
  for (unsigned k = 0; k < spec.n_msg_types; ++k) {
    b.msg("M" + std::to_string(k));  // interned in index order: id == k
  }

  // Processes: role r occupies a contiguous ProcessId range.
  std::vector<unsigned> role_base(spec.roles.size(), 0);
  std::vector<ProcessMask> role_mask(spec.roles.size(), 0);
  RenderedModel out;
  unsigned next = 0;
  for (std::size_t r = 0; r < spec.roles.size(); ++r) {
    role_base[r] = next;
    std::vector<ProcessId> members;
    for (unsigned j = 0; j < spec.roles[r].n_procs; ++j) {
      std::vector<std::pair<std::string, Value>> vars;
      for (unsigned v = 0; v < spec.roles[r].n_vars; ++v) {
        vars.emplace_back("v" + std::to_string(v), 0);
      }
      const ProcessId pid = b.process(
          "r" + std::to_string(r) + "p" + std::to_string(j),
          "Role" + std::to_string(r), std::move(vars));
      role_mask[r] |= mask_of(pid);
      members.push_back(pid);
    }
    next += spec.roles[r].n_procs;
    if (members.size() >= 2) out.symmetric_roles.push_back(std::move(members));
  }

  // Per-role transition index, so names stay stable ("r1t0", "r1t1", ...)
  // and identical across the role's instances (structural symmetry).
  std::vector<unsigned> role_tix(spec.roles.size(), 0);
  for (const TransitionSpec& t : spec.transitions) {
    const unsigned r = t.role;
    const std::string name =
        "r" + std::to_string(r) + "t" + std::to_string(role_tix[r]++);
    const std::string in_name = t.in_msg >= 0 ? "M" + std::to_string(t.in_msg) : "";

    VarMask writes = 0;
    for (const OpSpec& op : t.ops) writes |= VarMask{1} << op.var;
    bool visible = false;
    for (const PropertySpec& p : spec.properties) {
      if (p.role == r && (writes & (VarMask{1} << p.var)) != 0) visible = true;
    }
    const bool all_replies =
        !t.sends.empty() &&
        std::all_of(t.sends.begin(), t.sends.end(), [](const SendSpec& s) {
          return s.target == SendTarget::kSender;
        });

    const GuardSpec g = t.guard;
    const std::vector<OpSpec> ops = t.ops;
    const std::vector<SendSpec> sends = t.sends;
    const std::vector<ProcessMask> masks = role_mask;

    for (unsigned j = 0; j < spec.roles[r].n_procs; ++j) {
      const auto pid = static_cast<ProcessId>(role_base[r] + j);
      mp::TransitionBuilder& tb = b.transition(pid, name);
      if (t.in_msg >= 0) {
        tb.consumes(in_name, t.arity);
      } else {
        tb.spontaneous();
      }
      if (t.from_role >= 0) tb.from(role_mask[t.from_role]);

      if (g.kind == GuardKind::kAlways) {
        tb.reads_local(false);
      } else {
        tb.guard([g](const GuardView& v) {
            const Value x = v.local[g.var];
            switch (g.kind) {
              case GuardKind::kVarEq: return x == g.value;
              case GuardKind::kVarNe: return x != g.value;
              case GuardKind::kVarLt: return x < g.value;
              case GuardKind::kAlways: return true;
            }
            return true;
          })
          .reads(VarMask{1} << g.var);
      }

      if (ops.empty() && sends.empty()) {
        tb.writes_local(false);
      } else {
        tb.effect([ops, sends, masks](EffectCtx& c) {
          for (const OpSpec& op : ops) {
            switch (op.kind) {
              case OpKind::kSet:
                c.set_local(op.var, clamp_value(op.value));
                break;
              case OpKind::kInc:
                c.set_local(op.var,
                            std::min<Value>(c.local(op.var) + 1, kMaxVarValue));
                break;
              case OpKind::kCopyPayload: {
                Value v = 0;
                if (!c.consumed().empty() && c.consumed()[0].payload_size() > 0) {
                  v = c.consumed()[0][0];
                }
                c.set_local(op.var, clamp_value(v));
                break;
              }
            }
          }
          for (const SendSpec& s : sends) {
            const Value pay = s.payload == PayloadKind::kVar
                                  ? c.local(s.payload_var)
                                  : clamp_value(s.payload_value);
            const auto mt = static_cast<MsgType>(s.msg_type);
            if (s.target == SendTarget::kSender) {
              c.send(c.consumed()[0].sender(), mt, {pay});
            } else {
              mask_for_each(masks[s.target_role], [&](unsigned to) {
                c.send(static_cast<ProcessId>(to), mt, {pay});
              });
            }
          }
        });
        if (writes != 0) {
          tb.writes(writes);
        } else {
          tb.writes_local(false);
        }
      }

      for (const SendSpec& s : sends) {
        const ProcessMask to = s.target == SendTarget::kSender
                                   ? (t.from_role >= 0 ? role_mask[t.from_role]
                                                       : kAllProcesses)
                                   : role_mask[s.target_role];
        tb.sends("M" + std::to_string(s.msg_type), to);
      }
      if (all_replies && t.in_msg >= 0 && t.arity == 1) tb.reply();
      if (visible) tb.visible();
      tb.priority(t.priority);
    }
  }

  for (const PropertySpec& p : spec.properties) {
    std::vector<std::size_t> offsets;
    for (unsigned j = 0; j < spec.roles[p.role].n_procs; ++j) {
      offsets.push_back(0);  // filled below from the built process table
    }
    // Offsets are deterministic: every process of the role has n_vars slots
    // and the roles were added in order.
    std::size_t base = 0;
    for (unsigned r = 0; r < p.role; ++r) {
      base += static_cast<std::size_t>(spec.roles[r].n_procs) * spec.roles[r].n_vars;
    }
    for (unsigned j = 0; j < spec.roles[p.role].n_procs; ++j) {
      offsets[j] = base + static_cast<std::size_t>(j) * spec.roles[p.role].n_vars;
    }
    const unsigned var = p.var;
    const Value bad_value = p.bad_value;
    b.property("r" + std::to_string(p.role) + "v" + std::to_string(p.var) +
                   "_ne_" + std::to_string(p.bad_value),
               [offsets, var, bad_value](const State& s, const Protocol&) {
                 for (const std::size_t off : offsets) {
                   if (s.locals()[off + var] == bad_value) return false;
                 }
                 return true;
               });
  }

  out.protocol = b.build();
  return out;
}

// --- .repro round-trip -------------------------------------------------------

std::string serialize(const ProtocolSpec& spec) {
  std::ostringstream os;
  os << "mpb-fuzz-repro v1\n";
  os << "seed " << spec.seed << "\n";
  os << "msgtypes " << spec.n_msg_types << "\n";
  os << "roles " << spec.roles.size() << "\n";
  for (const RoleSpec& r : spec.roles) os << r.n_procs << " " << r.n_vars << "\n";
  os << "transitions " << spec.transitions.size() << "\n";
  for (const TransitionSpec& t : spec.transitions) {
    os << "t " << t.role << " " << t.in_msg << " " << t.arity << " "
       << t.from_role << " " << t.priority << " " << t.ops.size() << " "
       << t.sends.size() << "\n";
    os << "g " << static_cast<int>(t.guard.kind) << " " << t.guard.var << " "
       << t.guard.value << "\n";
    for (const OpSpec& op : t.ops) {
      os << "o " << static_cast<int>(op.kind) << " " << op.var << " "
         << op.value << "\n";
    }
    for (const SendSpec& s : t.sends) {
      os << "s " << s.msg_type << " " << static_cast<int>(s.target) << " "
         << s.target_role << " " << static_cast<int>(s.payload) << " "
         << s.payload_var << " " << s.payload_value << "\n";
    }
  }
  os << "properties " << spec.properties.size() << "\n";
  for (const PropertySpec& p : spec.properties) {
    os << "p " << p.role << " " << p.var << " " << p.bad_value << "\n";
  }
  os << "end\n";
  return os.str();
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : in_(text) {}

  std::string word() {
    std::string w;
    if (!(in_ >> w)) bad("unexpected end of repro");
    return w;
  }
  void expect(std::string_view kw) {
    const std::string w = word();
    if (w != kw) bad("expected '" + std::string(kw) + "', got '" + w + "'");
  }
  template <typename T>
  T num() {
    long long v = 0;
    if (!(in_ >> v)) bad("expected a number");
    return static_cast<T>(v);
  }

 private:
  std::istringstream in_;
};

}  // namespace

ProtocolSpec parse_repro(const std::string& text) {
  Parser p(text);
  p.expect("mpb-fuzz-repro");
  p.expect("v1");
  ProtocolSpec spec;
  p.expect("seed");
  spec.seed = p.num<std::uint64_t>();
  p.expect("msgtypes");
  spec.n_msg_types = p.num<unsigned>();
  p.expect("roles");
  const auto n_roles = p.num<std::size_t>();
  if (n_roles > kMaxProcesses) bad("too many roles");
  for (std::size_t r = 0; r < n_roles; ++r) {
    RoleSpec role;
    role.n_procs = p.num<unsigned>();
    role.n_vars = p.num<unsigned>();
    spec.roles.push_back(role);
  }
  p.expect("transitions");
  const auto n_trans = p.num<std::size_t>();
  if (n_trans > 4096) bad("too many transitions");
  for (std::size_t i = 0; i < n_trans; ++i) {
    p.expect("t");
    TransitionSpec t;
    t.role = p.num<unsigned>();
    t.in_msg = p.num<int>();
    t.arity = p.num<int>();
    t.from_role = p.num<int>();
    t.priority = p.num<int>();
    const auto n_ops = p.num<std::size_t>();
    const auto n_sends = p.num<std::size_t>();
    if (n_ops > 256 || n_sends > 256) bad("transition body too large");
    p.expect("g");
    const int gk = p.num<int>();
    if (gk < 0 || gk > 3) bad("bad guard kind");
    t.guard.kind = static_cast<GuardKind>(gk);
    t.guard.var = p.num<unsigned>();
    t.guard.value = p.num<Value>();
    for (std::size_t k = 0; k < n_ops; ++k) {
      p.expect("o");
      OpSpec op;
      const int ok = p.num<int>();
      if (ok < 0 || ok > 2) bad("bad op kind");
      op.kind = static_cast<OpKind>(ok);
      op.var = p.num<unsigned>();
      op.value = p.num<Value>();
      t.ops.push_back(op);
    }
    for (std::size_t k = 0; k < n_sends; ++k) {
      p.expect("s");
      SendSpec s;
      s.msg_type = p.num<unsigned>();
      const int tk = p.num<int>();
      if (tk < 0 || tk > 1) bad("bad send target kind");
      s.target = static_cast<SendTarget>(tk);
      s.target_role = p.num<unsigned>();
      const int pk = p.num<int>();
      if (pk < 0 || pk > 1) bad("bad payload kind");
      s.payload = static_cast<PayloadKind>(pk);
      s.payload_var = p.num<unsigned>();
      s.payload_value = p.num<Value>();
      t.sends.push_back(s);
    }
    spec.transitions.push_back(std::move(t));
  }
  p.expect("properties");
  const auto n_props = p.num<std::size_t>();
  if (n_props > 1) bad("more than one property");
  for (std::size_t i = 0; i < n_props; ++i) {
    p.expect("p");
    PropertySpec prop;
    prop.role = p.num<unsigned>();
    prop.var = p.num<unsigned>();
    prop.bad_value = p.num<Value>();
    spec.properties.push_back(prop);
  }
  p.expect("end");
  validate(spec);  // reject structurally broken repro files up front
  return spec;
}

std::string describe(const ProtocolSpec& spec) {
  unsigned procs = 0;
  for (const RoleSpec& r : spec.roles) procs += r.n_procs;
  std::ostringstream os;
  os << "seed " << spec.seed << ": " << spec.roles.size() << " role"
     << (spec.roles.size() == 1 ? "" : "s") << "/" << procs << " proc"
     << (procs == 1 ? "" : "s") << ", " << spec.transitions.size()
     << " transition" << (spec.transitions.size() == 1 ? "" : "s") << ", "
     << spec.n_msg_types << " msg type" << (spec.n_msg_types == 1 ? "" : "s")
     << ", " << spec.properties.size() << " propert"
     << (spec.properties.size() == 1 ? "y" : "ies");
  return os.str();
}

}  // namespace mpb::fuzz
