#include "refine/refine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/combinatorics.hpp"

namespace mpb::refine {

namespace {

// All processes that declare sending `type` to process `to`.
ProcessMask declared_senders_of(const Protocol& proto, MsgType type, ProcessId to) {
  ProcessMask m = 0;
  for (const Transition& t : proto.transitions()) {
    if (!mask_contains(t.send_to, to)) continue;
    if (std::find(t.out_types.begin(), t.out_types.end(), type) != t.out_types.end()) {
      m |= mask_of(t.proc);
    }
  }
  return m;
}

std::string subset_suffix(ProcessMask subset) {
  std::string s;
  mask_for_each(subset, [&](unsigned pid) {
    if (!s.empty()) s += "_";
    s += std::to_string(pid);
  });
  return s;
}

// Append to `out` the split copies of transition `tid` of `proto`, one per
// q-subset of its candidate senders; or the original if no split applies.
void split_one(const Protocol& proto, TransitionId tid, bool do_quorum,
               bool do_reply, std::vector<Transition>& out) {
  const Transition& t = proto.transition(tid);
  const bool quorum_case = do_quorum && t.arity > 1 && !t.is_reply;
  const bool reply_case = do_reply && t.is_reply && t.arity == 1;
  if (!quorum_case && !reply_case) {
    out.push_back(t);
    return;
  }

  const ProcessMask candidates = candidate_senders(proto, tid);
  const unsigned n = mask_count(candidates);
  const auto q = static_cast<unsigned>(t.arity);
  if (n < q) {
    // The transition can never fire; keep it as-is (it stays disabled).
    out.push_back(t);
    return;
  }

  std::vector<ProcessId> ids;
  mask_for_each(candidates, [&](unsigned pid) {
    ids.push_back(static_cast<ProcessId>(pid));
  });

  for_each_combination(n, q, [&](std::span<const unsigned> subset) {
    ProcessMask qmask = 0;
    for (unsigned i : subset) qmask |= mask_of(ids[i]);
    Transition copy = t;
    copy.allowed_senders = qmask;
    copy.name = t.name + "__" + subset_suffix(qmask);
    copy.split_of = tid;
    out.push_back(std::move(copy));
    return true;
  });
}

Protocol split(const Protocol& proto, bool do_quorum, bool do_reply,
               std::string_view only_name, std::string_view suffix) {
  Protocol result = proto;
  std::vector<Transition> ts;
  for (TransitionId tid = 0; tid < proto.n_transitions(); ++tid) {
    if (!only_name.empty() && proto.transition(tid).name != only_name) {
      ts.push_back(proto.transition(tid));
      continue;
    }
    split_one(proto, tid, do_quorum, do_reply, ts);
  }
  result.set_transitions(std::move(ts));
  result.set_name(proto.name() + std::string(suffix));
  if (std::string err = result.validate(); !err.empty()) {
    throw std::logic_error("refinement produced invalid protocol: " + err);
  }
  return result;
}

}  // namespace

ProcessMask candidate_senders(const Protocol& proto, TransitionId tid) {
  const Transition& t = proto.transition(tid);
  if (t.arity == kSpontaneous) return 0;
  const ProcessMask declared = declared_senders_of(proto, t.in_type, t.proc);
  // Conservative: if nothing is declared anywhere (e.g. only initial
  // messages), fall back to the transition's own mask.
  const ProcessMask base = declared != 0 ? declared : t.allowed_senders;
  return base & t.allowed_senders;
}

Protocol quorum_split(const Protocol& proto) {
  return split(proto, /*do_quorum=*/true, /*do_reply=*/false, {}, "+qsplit");
}

Protocol reply_split(const Protocol& proto) {
  return split(proto, /*do_quorum=*/false, /*do_reply=*/true, {}, "+rsplit");
}

Protocol combined_split(const Protocol& proto) {
  return split(proto, /*do_quorum=*/true, /*do_reply=*/true, {}, "+csplit");
}

Protocol split_transition(const Protocol& proto, std::string_view name) {
  return split(proto, /*do_quorum=*/true, /*do_reply=*/true, name, "+split1");
}

}  // namespace mpb::refine
