// Transition refinement (Section III): protocol-to-protocol transformations
// that split transitions into equivalent finer-grained ones without changing
// the generated state graph (Def. 1, Thm. 1).
//
//  * quorum_split (Def. 3): an exact quorum transition t with threshold q over
//    candidate senders S is replaced by one transition t_Qk per q-subset
//    Qk ⊆ S, identical to t except that it may only consume messages whose
//    senders are exactly drawn from Qk (allowed_senders := Qk). Thm. 2 shows
//    this is a transition refinement; tests/refinement_test.cpp checks it on
//    every protocol by state-graph comparison.
//  * reply_split: the analogous per-sender split of single-message *reply*
//    transitions (Def. 4). The split copy t_j only consumes from (and hence,
//    being a reply, only sends to) process j, which shrinks the can-enable
//    relation POR works with (Section III-D).
//
// The paper split its models by hand (Section V-B, "the split models were
// created by hand"); here the transformation is automatic, driven by the
// transitions' static annotations, including the sender-exclusion analysis of
// Section III-C ("a proposer sends no message to another proposer"): the
// candidate sender set is narrowed to processes that actually declare sending
// the consumed type to this process before subsets are enumerated.
#pragma once

#include <string_view>

#include "core/protocol.hpp"

namespace mpb::refine {

// Candidate senders of transition `t` in `proto`: its allowed_senders mask
// intersected with the processes that declare sending t's input type to
// t's process (the automatic sender-exclusion analysis).
[[nodiscard]] ProcessMask candidate_senders(const Protocol& proto, TransitionId t);

// Split every exact quorum transition (arity > 1) that is not a reply
// transition. Returns a new protocol; the input is untouched.
[[nodiscard]] Protocol quorum_split(const Protocol& proto);

// Split every single-message reply transition per candidate sender.
[[nodiscard]] Protocol reply_split(const Protocol& proto);

// Both splits (the paper's "combined-split" column of Table II).
[[nodiscard]] Protocol combined_split(const Protocol& proto);

// Split only the named transition (all processes' copies of it); used by
// tests and the ablation benches. Splits it as a quorum- or reply-split
// depending on its annotations.
[[nodiscard]] Protocol split_transition(const Protocol& proto, std::string_view name);

}  // namespace mpb::refine
