// Precomputed static (state-unconditional) relations between transitions,
// mirroring MP-LPOR's pre-computation design (Section IV-B): the dependence
// and can-enable relations are functions of the transition table only, so they
// are computed once before the search and queried during it.
//
// For the message-passing computation model the relations are:
//
//  * can_enable(a, b)   — a may produce a message b consumes: b's input type
//    is among a's out-types, b's process among a's recipients, and a's process
//    among b's allowed senders. If a is a *reply* transition it only sends to
//    senders of its own input (Def. 4), which further restricts the relation —
//    this is precisely why reply-split sharpens POR (Section III-D).
//  * can_enable_local(a, b) — a and b share a process, a writes local state
//    and b's guard reads it (a may flip b's guard).
//  * dependent(a, b)    — a and b share a process (they contend on local state
//    and on the process's message pools), or one can enable the other.
//    Transitions of distinct processes never share a message pool (a message
//    has a single receiver) and sends into a channel multiset commute, so
//    nothing else can conflict.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace mpb {

class StaticRelations {
 public:
  explicit StaticRelations(const Protocol& proto);

  [[nodiscard]] bool dependent(TransitionId a, TransitionId b) const noexcept {
    return dep_[index(a, b)];
  }
  [[nodiscard]] bool can_enable(TransitionId a, TransitionId b) const noexcept {
    return enable_[index(a, b)];
  }
  [[nodiscard]] bool can_enable_local(TransitionId a, TransitionId b) const noexcept {
    return enable_local_[index(a, b)];
  }

  [[nodiscard]] unsigned n_transitions() const noexcept { return n_; }

  // Transitions that may furnish messages to `t` (its message-producers NES).
  [[nodiscard]] const std::vector<TransitionId>& producers_of(TransitionId t) const noexcept {
    return producers_[t];
  }
  // Same-process writers that may flip `t`'s guard (its local-state NES).
  [[nodiscard]] const std::vector<TransitionId>& local_enablers_of(TransitionId t) const noexcept {
    return local_enablers_[t];
  }
  // All transitions dependent on `t`.
  [[nodiscard]] const std::vector<TransitionId>& dependents_of(TransitionId t) const noexcept {
    return dependents_[t];
  }

 private:
  [[nodiscard]] std::size_t index(TransitionId a, TransitionId b) const noexcept {
    return static_cast<std::size_t>(a) * n_ + b;
  }

  unsigned n_;
  std::vector<char> dep_;
  std::vector<char> enable_;
  std::vector<char> enable_local_;
  std::vector<std::vector<TransitionId>> producers_;
  std::vector<std::vector<TransitionId>> local_enablers_;
  std::vector<std::vector<TransitionId>> dependents_;
};

}  // namespace mpb
