#include "por/independence.hpp"

#include <algorithm>

namespace mpb {

namespace {

bool may_produce_for(const Transition& a, const Transition& b) {
  if (b.arity == kSpontaneous) return false;  // consumes nothing
  if (std::find(a.out_types.begin(), a.out_types.end(), b.in_type) ==
      a.out_types.end()) {
    return false;
  }
  if (!mask_contains(a.send_to, b.proc)) return false;
  // b only consumes from its allowed senders (narrowed by quorum-split).
  if (!mask_contains(b.allowed_senders, a.proc)) return false;
  // A reply transition sends only to senders of its own X (Def. 4), i.e. only
  // to processes it is allowed to consume from (narrowed by reply-split).
  if (a.is_reply && !mask_contains(a.allowed_senders, b.proc)) return false;
  return true;
}

}  // namespace

StaticRelations::StaticRelations(const Protocol& proto)
    : n_(proto.n_transitions()),
      dep_(static_cast<std::size_t>(n_) * n_, 0),
      enable_(static_cast<std::size_t>(n_) * n_, 0),
      enable_local_(static_cast<std::size_t>(n_) * n_, 0),
      producers_(n_),
      local_enablers_(n_),
      dependents_(n_) {
  const auto& ts = proto.transitions();
  for (TransitionId a = 0; a < n_; ++a) {
    for (TransitionId b = 0; b < n_; ++b) {
      const Transition& ta = ts[a];
      const Transition& tb = ts[b];
      const bool enables = may_produce_for(ta, tb);
      const bool enables_local = a != b && ta.proc == tb.proc &&
                                 ta.writes_local && tb.reads_local &&
                                 (ta.writes_vars & tb.reads_vars) != 0;
      enable_[index(a, b)] = enables ? 1 : 0;
      enable_local_[index(a, b)] = enables_local ? 1 : 0;
      // Ghost peeks are real cross-process reads: a transition peeking
      // variables of process P conflicts with their writers.
      const bool peeking = peek_conflict(ta, tb) || peek_conflict(tb, ta);
      const bool dep = ta.proc == tb.proc || enables || may_produce_for(tb, ta) ||
                       peeking;
      dep_[index(a, b)] = dep ? 1 : 0;
    }
  }
  for (TransitionId b = 0; b < n_; ++b) {
    for (TransitionId a = 0; a < n_; ++a) {
      if (enable_[index(a, b)]) producers_[b].push_back(a);
      if (enable_local_[index(a, b)]) local_enablers_[b].push_back(a);
      if (dep_[index(b, a)]) dependents_[b].push_back(a);
    }
  }
}

}  // namespace mpb
