#include "por/spor.hpp"

#include <algorithm>

namespace mpb {

std::string_view to_string(SeedHeuristic h) noexcept {
  switch (h) {
    case SeedHeuristic::kOppositeTransaction: return "opposite-transaction";
    case SeedHeuristic::kTransaction: return "transaction";
    case SeedHeuristic::kFirst: return "first";
  }
  return "?";
}

std::string_view to_string(CycleProviso p) noexcept {
  switch (p) {
    case CycleProviso::kAuto: return "auto";
    case CycleProviso::kStack: return "stack";
    case CycleProviso::kVisited: return "visited";
    case CycleProviso::kScc: return "scc";
    case CycleProviso::kOff: return "off";
  }
  return "?";
}

SporStrategy::SporStrategy(const Protocol& proto, SporOptions opts)
    : proto_(proto), opts_(opts), rel_(proto) {}

namespace {

// Deterministic seed order for a heuristic: the preferred seed first.
std::vector<TransitionId> seed_order(const Protocol& proto,
                                     std::vector<TransitionId> enabled,
                                     SeedHeuristic h) {
  switch (h) {
    case SeedHeuristic::kOppositeTransaction:
      std::stable_sort(enabled.begin(), enabled.end(),
                       [&](TransitionId a, TransitionId b) {
                         return proto.transition(a).priority >
                                proto.transition(b).priority;
                       });
      break;
    case SeedHeuristic::kTransaction:
      std::stable_sort(enabled.begin(), enabled.end(),
                       [&](TransitionId a, TransitionId b) {
                         return proto.transition(a).priority <
                                proto.transition(b).priority;
                       });
      break;
    case SeedHeuristic::kFirst:
      break;  // ascending tid, as enumerated
  }
  return enabled;
}

}  // namespace

void SporStrategy::close_over(const State& s, std::span<const char> is_enabled,
                              std::vector<char>& in_set,
                              std::vector<TransitionId>& work) const {
  auto push = [&](TransitionId t) {
    if (!in_set[t]) {
      in_set[t] = 1;
      work.push_back(t);
    }
  };
  while (!work.empty()) {
    const TransitionId t = work.back();
    work.pop_back();
    if (is_enabled[t]) {
      // Enabled member: everything dependent on it must be inside, so that t
      // stays a key transition and the commutation arguments apply.
      for (TransitionId d : rel_.dependents_of(t)) push(d);
    } else {
      // Disabled member: one necessary enabling set (NES) must be inside.
      // If the pending pool cannot satisfy the arity, any enabling path must
      // first run a producer — producers alone are a valid NES. Otherwise the
      // guard rejected every candidate set, and it could be flipped either by
      // a same-process local write *or* by additional messages (a quorum
      // guard inspecting contents), so the union of both sets is required.
      const bool producers_suffice =
          opts_.state_dependent_nes && pool_insufficient(proto_, s, t);
      for (TransitionId p : rel_.producers_of(t)) push(p);
      if (!producers_suffice) {
        for (TransitionId p : rel_.local_enablers_of(t)) push(p);
      }
    }
  }
}

std::vector<TransitionId> SporStrategy::stubborn_set(
    const State& s, std::span<const Event> events) const {
  std::vector<TransitionId> enabled;
  for (const Event& e : events) {
    if (enabled.empty() || enabled.back() != e.tid) enabled.push_back(e.tid);
  }
  if (enabled.empty()) return {};

  const TransitionId seed = seed_order(proto_, enabled, opts_.seed).front();

  std::vector<char> is_enabled(rel_.n_transitions(), 0);
  for (TransitionId t : enabled) is_enabled[t] = 1;
  std::vector<char> in_set(rel_.n_transitions(), 0);
  std::vector<TransitionId> work{seed};
  in_set[seed] = 1;
  close_over(s, is_enabled, in_set, work);

  std::vector<TransitionId> result;
  for (TransitionId t : enabled) {
    if (in_set[t]) result.push_back(t);
  }
  return result;
}

std::vector<std::size_t> SporStrategy::select(const State& s,
                                              std::span<const Event> events,
                                              const StrategyContext& ctx) {
  std::vector<std::size_t> all(events.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  if (events.size() <= 1) return all;

  std::vector<TransitionId> enabled;
  for (const Event& e : events) {
    if (enabled.empty() || enabled.back() != e.tid) enabled.push_back(e.tid);
  }
  if (enabled.size() <= 1 && !proto_.transition(enabled.front()).visible) {
    // A single enabled transition must be taken in all its variants anyway.
    return all;
  }

  std::vector<char> is_enabled(rel_.n_transitions(), 0);
  for (TransitionId t : enabled) is_enabled[t] = 1;

  // Try seeds in heuristic order; accept the first stubborn set that yields a
  // genuine reduction and passes both provisos (or, with exhaustive_seed, the
  // smallest such set). Falling through to the next seed (or to full
  // expansion) is always sound.
  std::vector<std::size_t> best;
  bool have_best = false;
  for (TransitionId seed : seed_order(proto_, enabled, opts_.seed)) {
    std::vector<char> in_set(rel_.n_transitions(), 0);
    std::vector<TransitionId> work{seed};
    in_set[seed] = 1;
    close_over(s, is_enabled, in_set, work);

    // Visibility (Valmari's V-condition): if the set executes a visible
    // transition, *every* visible transition — enabled or not — must be in
    // the set, so its enablers are explored before orderings are committed.
    if (opts_.visibility_proviso) {
      bool executes_visible = false;
      for (TransitionId t : enabled) {
        if (in_set[t] && proto_.transition(t).visible) {
          executes_visible = true;
          break;
        }
      }
      if (executes_visible) {
        for (TransitionId t = 0; t < rel_.n_transitions(); ++t) {
          if (proto_.transition(t).visible && !in_set[t]) {
            in_set[t] = 1;
            work.push_back(t);
          }
        }
        close_over(s, is_enabled, in_set, work);
      }
    }

    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (in_set[events[i].tid]) chosen.push_back(i);
    }
    if (chosen.size() >= events.size()) {
      if (!opts_.seed_retry) break;  // single-seed mode: give up, expand fully
      continue;  // no reduction; next seed
    }

    // Cycle proviso — the ignoring problem: around a cycle of the reduced
    // graph, transitions outside every chosen set would be postponed forever.
    //
    //  * kStack (sequential DFS): no chosen successor may lie on the DFS
    //    stack. Sound because any cycle's back edge targets a stack state.
    //  * kVisited (parallel-safe): no chosen successor may already be in the
    //    visited set — open *or* closed. Soundness under any schedule: each
    //    state is expanded once, after being inserted. If every state of a
    //    reduced-graph cycle kept its reduced set, then each cycle successor
    //    t of each member s was absent from the visited set when s evaluated
    //    the proviso (the set is linearizable, so insert(t) > eval(s) >
    //    insert(s)) — insertion times would increase strictly around the
    //    cycle, a contradiction. Rejecting only *open* (unfinished) states
    //    would be unsound: s can close before its fresh successor t expands,
    //    so a two-state cycle s <-> t would pass (t sees s closed) and both
    //    stay reduced. Unlike the stack proviso, the visited probe also
    //    fires on cross edges (diamonds), so it trades reduction strength
    //    for schedule independence; fallbacks are counted per run in
    //    ExploreStats::proviso_fallbacks.
    const CycleProviso proviso =
        opts_.proviso == CycleProviso::kAuto
            ? (ctx.on_stack ? CycleProviso::kStack
               : ctx.in_visited ? CycleProviso::kVisited
                                : CycleProviso::kOff)
            : opts_.proviso;
    // kScc applies no in-search proviso: the engine's SCC ignoring fix
    // repairs the ignoring problem after the search (engine.hpp). That pass
    // only runs over a stateful interned graph — exactly the searches that
    // supply a visited probe — so when `in_visited` is absent (a stateless
    // search) kScc must NOT silently drop the proviso: it degrades below to
    // the sound fallback (the absent probe "always closes", forcing full
    // expansion), like any proviso whose oracle the search cannot supply.
    const bool scc_deferred =
        proviso == CycleProviso::kScc && static_cast<bool>(ctx.in_visited);
    if (proviso != CycleProviso::kOff && !scc_deferred) {
      const std::function<bool(const State&)>& probe =
          proviso == CycleProviso::kStack ? ctx.on_stack : ctx.in_visited;
      // A requested proviso whose probe the search cannot supply degrades to
      // "always closes": full expansion is the sound fallback.
      bool closes_cycle = !probe;
      for (std::size_t i : chosen) {
        if (closes_cycle) break;
        closes_cycle = probe(ctx.successor(events[i]));
      }
      if (closes_cycle) {
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        if (!opts_.seed_retry) break;
        continue;
      }
    }
    if (!opts_.exhaustive_seed) return chosen;
    if (!have_best || chosen.size() < best.size()) {
      best = std::move(chosen);
      have_best = true;
    }
  }
  return have_best ? best : all;
}

}  // namespace mpb
