#include "por/symmetry.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mpb {

namespace {

// Structural equality of two transitions up to the executing process.
bool structurally_equal(const Transition& a, const Transition& b) {
  if (a.name != b.name) return false;
  if (a.in_type != b.in_type || a.arity != b.arity) return false;
  if (a.out_types != b.out_types) return false;
  if (a.reads_local != b.reads_local || a.writes_local != b.writes_local) return false;
  if (a.reads_vars != b.reads_vars || a.writes_vars != b.writes_vars) return false;
  if (a.is_reply != b.is_reply || a.visible != b.visible) return false;
  if (a.priority != b.priority) return false;
  return true;
}

// All transitions executed by process p, sorted by name for comparison.
std::vector<const Transition*> transitions_of(const Protocol& proto, ProcessId p) {
  std::vector<const Transition*> out;
  for (const Transition& t : proto.transitions()) {
    if (t.proc == p) out.push_back(&t);
  }
  std::sort(out.begin(), out.end(), [](const Transition* a, const Transition* b) {
    return a->name < b->name;
  });
  return out;
}

bool processes_structurally_symmetric(const Protocol& proto, ProcessId p,
                                      ProcessId q) {
  const ProcessInfo& pi = proto.proc(p);
  const ProcessInfo& qi = proto.proc(q);
  if (pi.type_name != qi.type_name || pi.local_len != qi.local_len ||
      pi.var_names != qi.var_names || pi.byzantine != qi.byzantine) {
    return false;
  }
  const State& init = proto.initial();
  auto ip = init.local_slice(pi.local_offset, pi.local_len);
  auto iq = init.local_slice(qi.local_offset, qi.local_len);
  if (!std::equal(ip.begin(), ip.end(), iq.begin(), iq.end())) return false;

  const auto tp = transitions_of(proto, p);
  const auto tq = transitions_of(proto, q);
  if (tp.size() != tq.size()) return false;
  for (std::size_t i = 0; i < tp.size(); ++i) {
    if (!structurally_equal(*tp[i], *tq[i])) return false;
  }
  return true;
}

}  // namespace

SymmetryReducer::SymmetryReducer(const Protocol& proto,
                                 std::vector<std::vector<ProcessId>> groups)
    : proto_(proto) {
  for (auto& g : groups) {
    if (g.size() < 2) continue;
    std::sort(g.begin(), g.end());
    for (std::size_t i = 1; i < g.size(); ++i) {
      if (!processes_structurally_symmetric(proto, g[0], g[i])) {
        throw std::invalid_argument(
            "symmetry group containing " + proto.proc(g[0]).name + " and " +
            proto.proc(g[i]).name + " fails the structural symmetry check");
      }
    }
    groups_.push_back(std::move(g));
  }

  // Precompute the combined permutations: the cartesian product of every
  // group's permutations, materialized as full process maps.
  std::vector<ProcessId> identity(proto.n_procs());
  std::iota(identity.begin(), identity.end(), ProcessId{0});
  perms_.push_back(identity);
  for (const auto& group : groups_) {
    std::vector<ProcessId> arrangement = group;  // sorted = first permutation
    std::vector<std::vector<ProcessId>> extended;
    do {
      for (const auto& base : perms_) {
        std::vector<ProcessId> combined = base;
        for (std::size_t i = 0; i < group.size(); ++i) {
          combined[group[i]] = arrangement[i];
        }
        extended.push_back(std::move(combined));
      }
    } while (std::next_permutation(arrangement.begin(), arrangement.end()));
    perms_ = std::move(extended);
  }
  n_permutations_ = perms_.size();
}

namespace {

// Apply a full process map to a state: process p's local slice moves to slot
// perm[p] (symmetric processes share a schema, so offsets line up) and
// message endpoints are renamed; payloads must be identity-free (see header).
State apply_process_map(const Protocol& proto, const std::vector<ProcessId>& perm,
                        const State& s) {
  std::vector<Value> locals(s.locals().size());
  for (ProcessId p = 0; p < proto.n_procs(); ++p) {
    const ProcessInfo& src = proto.proc(p);
    const ProcessInfo& dst = proto.proc(perm[p]);
    auto slice = s.local_slice(src.local_offset, src.local_len);
    std::copy(slice.begin(), slice.end(),
              locals.begin() + static_cast<std::ptrdiff_t>(dst.local_offset));
  }
  std::vector<Message> net;
  net.reserve(s.network().size());
  for (const Message& m : s.network()) {
    net.push_back(m.with_endpoints(perm[m.sender()], perm[m.receiver()]));
  }
  return State(std::move(locals), std::move(net));
}

}  // namespace

State SymmetryReducer::apply_perm(std::uint32_t k, const State& s) const {
  if (k == 0 || k >= perms_.size()) return s;
  return apply_process_map(proto_, perms_[k], s);
}

State SymmetryReducer::apply_inverse_perm(std::uint32_t k, const State& s) const {
  if (k == 0 || k >= perms_.size()) return s;
  const auto& perm = perms_[k];
  std::vector<ProcessId> inv(perm.size());
  for (ProcessId p = 0; p < static_cast<ProcessId>(perm.size()); ++p) {
    inv[perm[p]] = p;
  }
  return apply_process_map(proto_, inv, s);
}

State SymmetryReducer::canonicalize_with_perm(const State& s,
                                              std::uint32_t* perm_idx) const {
  if (perm_idx != nullptr) *perm_idx = 0;
  if (perms_.size() <= 1) return s;

  State best = s;
  for (std::size_t k = 1; k < perms_.size(); ++k) {
    State candidate = apply_perm(static_cast<std::uint32_t>(k), s);
    if (candidate < best) {
      best = std::move(candidate);
      if (perm_idx != nullptr) *perm_idx = static_cast<std::uint32_t>(k);
    }
  }
  return best;
}

State SymmetryReducer::canonicalize(const State& s) const {
  return canonicalize_with_perm(s, nullptr);
}

std::vector<std::vector<ProcessId>> SymmetryReducer::detect_roles(
    const Protocol& proto) {
  std::vector<std::vector<ProcessId>> groups;
  std::vector<bool> grouped(proto.n_procs(), false);
  for (ProcessId p = 0; p < proto.n_procs(); ++p) {
    if (grouped[p]) continue;
    std::vector<ProcessId> group{p};
    for (ProcessId q = p + 1; q < proto.n_procs(); ++q) {
      if (grouped[q]) continue;
      if (processes_structurally_symmetric(proto, p, q)) {
        group.push_back(q);
        grouped[q] = true;
      }
    }
    grouped[p] = true;
    if (group.size() >= 2) groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace mpb
