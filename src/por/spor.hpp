// Static partial-order reduction via stubborn sets — the MP-LPOR stand-in
// (Sections III-A, IV; tech report [9] describes the original).
//
// In every visited state the strategy:
//   1. picks a *seed transition* among the enabled ones using a heuristic
//      (the paper's "opposite transaction heuristic" prefers transitions that
//      start/continue a protocol instance — encoded as the `priority`
//      annotation);
//   2. closes the set: an enabled member pulls in everything dependent on it;
//      a disabled member pulls in one of its *necessary enabling sets* (NES):
//      the transitions that could furnish its missing messages, or the
//      same-process writers that could flip its guard. With
//      `state_dependent_nes` (the LPOR-NET mode of the user guide) the NES is
//      chosen by inspecting why the transition is disabled in this very state;
//      otherwise the conservative union of both sets is used (plain LPOR);
//   3. applies two provisos. Visibility (Valmari's V-condition): if the set
//      would execute a *visible* transition, every visible transition —
//      enabled or not — is added and the closure re-run, so no
//      property-relevant ordering is committed before its enablers are in
//      scope. Cycle (the ignoring problem; the paper assumes acyclic graphs,
//      we enforce it): either the classic *stack* proviso — no chosen
//      successor may close a DFS-stack cycle — or the parallel-safe
//      *visited-set* proviso — no chosen successor may land on an
//      already-inserted state (see spor.cpp for the proof of why the visited
//      set must reject *closed* states too). The visited-set proviso needs
//      no DFS stack, so SPOR runs on the parallel worker pool with it. A
//      third discharge defers the problem entirely: under CycleProviso::kScc
//      the search applies no in-search cycle proviso and the engine repairs
//      ignoring afterwards by re-expanding one state per ignored SCC of the
//      interned graph (core/engine.hpp), trading a cheap post-pass for the
//      reduction the visited probe loses to cross edges.
//      A seed whose set fails a proviso or yields no reduction is abandoned
//      and the next-best seed is tried; full expansion is the sound fallback.
//
// Every enabled transition of the closure is a key transition: all of its
// dependents are inside the set, so no outside transition can disable it —
// giving Valmari-style deadlock preservation.
#pragma once

#include <atomic>
#include <string>

#include "core/explorer.hpp"
#include "por/independence.hpp"

namespace mpb {

enum class SeedHeuristic {
  kOppositeTransaction,  // highest priority first (the paper's heuristic)
  kTransaction,          // lowest priority first ([5]-style, for the ablation)
  kFirst,                // lowest transition id (uninformed baseline)
};

[[nodiscard]] std::string_view to_string(SeedHeuristic h) noexcept;

// How the cycle proviso (the ignoring problem) is discharged.
enum class CycleProviso {
  kAuto,     // stack when a DFS stack is available, visited-set otherwise
  kStack,    // classic DFS-stack proviso; sequential searches only
  kVisited,  // visited-set proviso; parallel-safe (see spor.cpp for soundness)
  kScc,      // no in-search proviso; the engine's SCC-based ignoring fix
             // re-expands one state per ignored SCC as a post-pass over the
             // interned state graph (engine::ExpansionCore). Parallel-safe,
             // and recovers the reduction the visited probe loses to cross
             // edges; forces an interned visited set.
  kOff,      // no cycle proviso (unsound on cyclic graphs; ablations only)
};

[[nodiscard]] std::string_view to_string(CycleProviso p) noexcept;

struct SporOptions {
  SeedHeuristic seed = SeedHeuristic::kOppositeTransaction;
  bool state_dependent_nes = true;  // LPOR-NET when true, plain LPOR when false
  bool visibility_proviso = true;
  CycleProviso proviso = CycleProviso::kAuto;
  // Try further seeds when the preferred seed's stubborn set yields no
  // reduction or fails a proviso (an improvement over MP-LPOR, which computes
  // a single stubborn set per state; disable for the faithful single-seed
  // behaviour, where the heuristic's choice is decisive).
  bool seed_retry = true;
  // Evaluate every enabled seed and keep the smallest admissible stubborn set
  // instead of accepting the heuristic's first reducing seed. More stubborn-
  // set computations per state, often fewer states; the heuristic becomes the
  // tie-break. Used by the seed-heuristics ablation bench.
  bool exhaustive_seed = false;
};

class SporStrategy final : public ReductionStrategy {
 public:
  explicit SporStrategy(const Protocol& proto, SporOptions opts = {});

  // Reads only the immutable members built at construction; thread-safe, so
  // one instance may serve every worker of a parallel search.
  std::vector<std::size_t> select(const State& s, std::span<const Event> events,
                                  const StrategyContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "spor"; }

  // Only the stack proviso pins the search to a single DFS; every other
  // configuration can be driven by the parallel worker pool.
  [[nodiscard]] bool needs_dfs_stack() const override {
    return opts_.proviso == CycleProviso::kStack;
  }

  // The scc proviso applies no in-search cycle proviso and relies on the
  // engine's post-pass (see CycleProviso::kScc).
  [[nodiscard]] bool wants_scc_ignoring_pass() const override {
    return opts_.proviso == CycleProviso::kScc;
  }

  [[nodiscard]] std::uint64_t proviso_fallbacks() const override {
    return fallbacks_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const StaticRelations& relations() const noexcept { return rel_; }

  // Stubborn transition set computed for the given enabled events; exposed for
  // tests and the Fig. 4 demo. Returns transition ids.
  [[nodiscard]] std::vector<TransitionId> stubborn_set(
      const State& s, std::span<const Event> events) const;

 private:
  // Saturate `in_set`/`work` under the stubborn-set closure rules.
  void close_over(const State& s, std::span<const char> is_enabled,
                  std::vector<char>& in_set,
                  std::vector<TransitionId>& work) const;

  const Protocol& proto_;
  SporOptions opts_;
  StaticRelations rel_;
  // Candidate sets abandoned because of the cycle proviso (monotone; searches
  // report per-run deltas in ExploreStats::proviso_fallbacks).
  std::atomic<std::uint64_t> fallbacks_{0};
};

}  // namespace mpb
