// Dynamic partial-order reduction (Flanagan–Godefroid, POPL'05 [13]) adapted
// to the actor/message-passing setting, as used by Basset for the paper's
// "No quorum (DPOR)" baseline (Table I).
//
// The search is *stateless* (Section III-A: DPOR is unsound with stateful
// search), depth-first, and tracks the causal happens-before relation with
// exact per-event causal-past sets: an event's past is the union of the pasts
// of the events that sent the messages it consumes. Two events *race* when
// they target the same process (or ghost-peek each other's process) and are
// causally unordered; a detected race between an executed event and a
// currently enabled one adds a backtrack point at the earlier frame.
//
// Three deviations from plain Flanagan-Godefroid keep the algorithm sound in
// the guarded message-set setting:
//  * whenever an event of a process is selected for exploration, every
//    co-enabled event of that same process is scheduled at the same frame.
//    Alternatives of one process (different message choices, guard-gated
//    transitions) need not stay enabled after one of them runs — a quorum
//    event consumes the pool, a guard may lock out a sibling — so the usual
//    "the race partner is still enabled later" assumption does not hold and
//    per-process choices are expanded eagerly instead;
//  * a consuming event additionally races with every producer of its input
//    pool: executing the consume forecloses the message-choice alternatives
//    (which copy an arity-1 event takes, which multiset a quorum takes) that
//    the producer's sends would have opened. Producers co-enabled with the
//    consume are scheduled eagerly at its frame; producers that only become
//    enabled later backtrack to before the consume when they execute;
//  * when a racing event was not enabled at the backtrack frame, the whole
//    frame is re-expanded (the conservative fallback of [13]).
//
// Like the paper's experiments, the intended use is single-message models
// (Table I's "No quorum (DPOR)" column); quorum models are handled soundly
// but reduce little because quorum alternatives are eagerly expanded.
//
// Two performance layers sit on top of the base algorithm:
//
//  * Sleep sets (Godefroid). Each frame carries the set of events whose
//    subtrees were already fully explored from this state along an earlier
//    sibling branch; a pick found sleeping is marked done without executing
//    (ExploreStats::sleep_blocked counts them). Children inherit the
//    parent's sleep filtered to events *independent* of the executed event,
//    where dependence is exactly the relation the backtrack search uses —
//    same process, ghost-peek conflict, or the feeds relation in either
//    direction. Because the feed relation is part of dependence, a producer
//    never stays asleep across the consume it feeds, so the PR 6 feed-race
//    fix is preserved (see docs/ARCHITECTURE.md, "Sleep sets").
//
//  * A parallel driver (cfg.threads > 1, reduce on). Backtrack points are
//    distributed as work items {path prefix, seed events} over per-worker
//    Chase-Lev stealing deques; a worker replays the frozen prefix through
//    its pooled ExpansionCore lane, then runs an independent sub-exploration
//    with its own sleep/backtrack sets. Every pick of every walker goes
//    through a global lock-free claim set keyed on (path hash, event hash) —
//    the same CAS claim/publish slot protocol as the sharded visited set —
//    so each (path, event) pair is executed exactly once across the pool.
#pragma once

#include "core/explorer.hpp"

namespace mpb {

struct DporOptions {
  // When false the search is plain stateless DFS without reduction —
  // the unreduced stateless baseline (always sequential).
  bool reduce = true;
  // Sleep sets on top of the backtrack search (see header comment). Purely
  // an optimization: off explores a superset of the on-traces. The off
  // switch exists for the bench series quantifying the win and for the fuzz
  // oracle's on/off cross-check.
  bool sleep_sets = true;
};

[[nodiscard]] ExploreResult explore_dpor(const Protocol& proto,
                                         const ExploreConfig& cfg,
                                         const DporOptions& opts = {});

}  // namespace mpb
