#include "check/params.hpp"

#include <charconv>
#include <sstream>

namespace mpb::check {

namespace {

[[nodiscard]] std::string known_names(std::span<const ParamSpec> schema) {
  std::string out;
  for (const ParamSpec& spec : schema) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  return out.empty() ? "(none)" : out;
}

[[nodiscard]] long parse_int(std::string_view model, const ParamSpec& spec,
                             std::string_view value) {
  long parsed = 0;
  const char* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, parsed);
  if (ec != std::errc{} || ptr != end) {
    std::ostringstream os;
    os << "model '" << model << "': parameter '" << spec.name
       << "' expects an integer, got '" << value << "'";
    throw CheckError(os.str());
  }
  return parsed;
}

[[nodiscard]] long parse_bool(std::string_view model, const ParamSpec& spec,
                              std::string_view value) {
  // "" is the flag form (--name with no value) and means true.
  if (value.empty() || value == "1" || value == "true") return 1;
  if (value == "0" || value == "false") return 0;
  std::ostringstream os;
  os << "model '" << model << "': parameter '" << spec.name
     << "' expects a boolean (true/false/1/0), got '" << value << "'";
  throw CheckError(os.str());
}

}  // namespace

long ParamMap::get(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw CheckError("internal: model factory read undeclared parameter '" +
                     std::string(name) + "'");
  }
  return it->second;
}

bool ParamMap::flag(std::string_view name) const { return get(name) != 0; }

ParamMap parse_params(std::string_view model, std::span<const ParamSpec> schema,
                      const RawParams& raw) {
  ParamMap out;
  for (const ParamSpec& spec : schema) out.values_[spec.name] = spec.def;

  for (const auto& [name, value] : raw) {
    const ParamSpec* spec = nullptr;
    for (const ParamSpec& candidate : schema) {
      if (candidate.name == name) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      std::ostringstream os;
      os << "model '" << model << "' has no parameter '" << name
         << "'; known parameters: " << known_names(schema);
      throw CheckError(os.str());
    }
    if (spec->type == ParamType::kBool) {
      out.values_[spec->name] = parse_bool(model, *spec, value);
      continue;
    }
    const long parsed = parse_int(model, *spec, value);
    if (parsed < spec->min || parsed > spec->max) {
      std::ostringstream os;
      os << "model '" << model << "': parameter '" << spec->name
         << "' must be in [" << spec->min << ", " << spec->max << "], got "
         << parsed;
      throw CheckError(os.str());
    }
    out.values_[spec->name] = parsed;
  }
  return out;
}

}  // namespace mpb::check
