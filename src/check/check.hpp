// The check facade: the one public entry point to the engine.
//
// A CheckRequest composes everything one verification run needs — a model
// (by registry name + parameters, or a prebuilt Protocol), a search strategy
// by name (with owned strategy factories behind it), a refinement split,
// symmetry reduction, visited-set mode, thread count and budgets. Checker
// resolves and validates the request once (throwing CheckError with a precise
// message on any bad input) and run() executes the search, returning a
// CheckResult that carries the ExploreResult plus the full run metadata and
// serializes into the existing bench-JSON records.
//
// Front ends — mpbcheck, the examples, the bench binaries, harness::run —
// all go through this facade; adding a protocol or a strategy touches the
// registry, never the callers.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "check/registry.hpp"
#include "core/explorer.hpp"
#include "harness/bench_json.hpp"
#include "por/spor.hpp"
#include "por/symmetry.hpp"

namespace mpb::check {

// --- strategies by name ----------------------------------------------------

struct StrategyInfo {
  std::string_view name;  // "full" | "spor" | "dpor" | "stateless"
  std::string_view doc;
  bool stateful;          // visited-set search; false = stateless DFS
  bool reduced;           // applies a partial-order reduction
  // Owned factory for the stateful strategies; nullptr `make` (or a returned
  // nullptr) means full expansion. Stateless strategies dispatch to
  // explore_dpor and ignore it.
  std::unique_ptr<ReductionStrategy> (*make)(const Protocol&,
                                             const SporOptions&);
};

[[nodiscard]] std::span<const StrategyInfo> strategies() noexcept;
// Throws CheckError listing the known strategy names.
[[nodiscard]] const StrategyInfo& strategy_info(std::string_view name);

[[nodiscard]] std::optional<SeedHeuristic> seed_from_string(
    std::string_view name) noexcept;

// Cycle-proviso selector by name ("auto" | "stack" | "visited" | "scc" |
// "off"), for mpbcheck --proviso.
[[nodiscard]] std::optional<CycleProviso> proviso_from_string(
    std::string_view name) noexcept;

// --- refinement splits by name ---------------------------------------------

enum class Split { kNone, kReply, kQuorum, kCombined };

[[nodiscard]] std::optional<Split> split_from_string(
    std::string_view name) noexcept;
[[nodiscard]] std::string_view to_string(Split s) noexcept;

// Apply the split to a protocol (kNone returns a copy unchanged).
[[nodiscard]] Protocol apply_split(const Protocol& proto, Split s);

// --- the request / result pair ---------------------------------------------

struct CheckRequest {
  // Model selection: a registry (model, params) pair, or a prebuilt protocol
  // (which takes precedence — for bespoke builder-made models).
  std::string model;
  RawParams params;
  std::optional<Protocol> protocol;
  // Symmetric process groups of the prebuilt protocol; registry models carry
  // their own roles and ignore this field.
  std::vector<std::vector<ProcessId>> symmetric_roles;

  std::string strategy = "spor";  // strategy_info() name
  SporOptions spor;               // applies to "spor"
  // Sleep sets on top of the dpor backtrack search (por/dpor.hpp). On by
  // default; the off switch exists for the bench series quantifying the win
  // and the fuzz oracle's on/off cross-check. Applies to "dpor" only.
  bool dpor_sleep_sets = true;
  std::string split = "none";     // split_from_string() name
  bool symmetry = false;          // canonicalize states by role permutation
  // Distributed search (src/dist): fork this many single-threaded rank
  // processes partitioning the state space by fingerprint owner; 0 = off.
  // Stateful strategies only — "full", or "spor" under the SCC ignoring
  // proviso (the other provisos are unsound across ranks). Mutually
  // exclusive with --threads; budgets and guards apply per rank.
  unsigned dist_ranks = 0;
  // Budgets, threads, visited mode and the observer hooks (on_progress /
  // on_violation, see core/explorer.hpp). `mode` is set by the strategy.
  ExploreConfig explore;
  // Run the search this many times and keep the fastest run (by wall-clock
  // seconds; a definitive verdict always outranks a budget-truncated one) as
  // the result — best-of-N timing, so bench-JSON records stop being
  // single-sample noise. Front ends map mpbcheck --repeat / MPB_REPEAT
  // (harness::repeat_from_env) onto this.
  unsigned repeat = 1;
  // Feed each run's record to the process-global bench sink (flushed to
  // $MPB_BENCH_JSON at exit). Front ends that write their own bench file
  // (bench/explore_throughput) turn this off so the at-exit flush cannot
  // clobber their explicitly written output.
  bool record = true;
};

struct CheckResult {
  ExploreResult result;
  // The protocol actually searched (post-split): what trace printing and
  // counterexample replay need.
  Protocol protocol{"unset"};
  // Run metadata, mirrored from the resolved request.
  std::string model;
  std::string strategy;
  std::string split;
  std::string visited;
  // Resolved cycle proviso of a SPOR run ("stack" sequentially, "visited" on
  // the worker pool, or as requested); "-" for the other strategies.
  std::string proviso = "-";
  bool symmetry = false;
  std::uint64_t symmetry_orbit_bound = 1;
  unsigned threads = 1;
  // How many runs the best-of-N timing kept (CheckRequest::repeat).
  unsigned repeats = 1;
  // Peak RSS sampled once when the run finished. Serialization must use this
  // instead of re-sampling, so a cached result dumps byte-identically no
  // matter when it is re-sent.
  long peak_rss_kb = 0;

  [[nodiscard]] Verdict verdict() const noexcept { return result.verdict; }
  [[nodiscard]] const ExploreStats& stats() const noexcept {
    return result.stats;
  }
};

// Serialize a result into the bench-JSON record shape (harness/bench_json).
// `workload` overrides the record name; default is the protocol name.
[[nodiscard]] harness::BenchRecord to_record(const CheckResult& r,
                                             std::string workload = "");

// --- the checker -----------------------------------------------------------

class Checker {
 public:
  // Resolves the model (registry or prebuilt), split, strategy and symmetry
  // up front; throws CheckError on any invalid or inconsistent input.
  explicit Checker(CheckRequest req);

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // The protocol the search will walk (post-split).
  [[nodiscard]] const Protocol& protocol() const noexcept { return proto_; }
  // Orbit bound of the symmetry reduction (1 when symmetry is off).
  [[nodiscard]] std::uint64_t orbit_bound() const noexcept;

  // Run the search. May be called repeatedly (each call is an independent
  // run); every run also feeds the process-global bench-JSON sink, so any
  // facade front end doubles as a machine-readable emitter via
  // $MPB_BENCH_JSON.
  [[nodiscard]] CheckResult run();

 private:
  CheckRequest req_;
  Protocol proto_;
  const StrategyInfo* strategy_ = nullptr;
  Split split_ = Split::kNone;
  std::optional<SymmetryReducer> sym_;  // engaged iff req_.symmetry
};

// Convenience: construct, run once, return the result.
[[nodiscard]] CheckResult run_check(CheckRequest req);

}  // namespace mpb::check
