#include "check/check.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <utility>

#include "dist/dist.hpp"
#include "por/dpor.hpp"
#include "refine/refine.hpp"

namespace mpb::check {

namespace {

std::unique_ptr<ReductionStrategy> make_spor(const Protocol& proto,
                                             const SporOptions& opts) {
  return std::make_unique<SporStrategy>(proto, opts);
}

// "full" and the stateless strategies carry no factory: a null strategy (or
// one whose proviso needs no DFS stack) is what routes the stateful search
// onto the parallel worker pool.
constexpr std::array<StrategyInfo, 4> kStrategies{{
    {"full", "unreduced stateful search (parallelizable via --threads)",
     /*stateful=*/true, /*reduced=*/false, nullptr},
    {"spor",
     "stubborn-set static POR, stateful (the paper's MP-LPOR; parallelizable "
     "via --threads under the visited-set cycle proviso)",
     /*stateful=*/true, /*reduced=*/true, &make_spor},
    {"dpor",
     "Flanagan-Godefroid dynamic POR with sleep sets, stateless (Basset's "
     "baseline; parallelizable via --threads)",
     /*stateful=*/false, /*reduced=*/true, nullptr},
    {"stateless", "unreduced stateless search (every path walked)",
     /*stateful=*/false, /*reduced=*/false, nullptr},
}};

}  // namespace

std::span<const StrategyInfo> strategies() noexcept { return kStrategies; }

const StrategyInfo& strategy_info(std::string_view name) {
  for (const StrategyInfo& s : kStrategies) {
    if (s.name == name) return s;
  }
  std::ostringstream os;
  os << "unknown strategy '" << name << "'; known strategies:";
  for (const StrategyInfo& s : kStrategies) os << " " << s.name;
  throw CheckError(os.str());
}

std::optional<SeedHeuristic> seed_from_string(std::string_view name) noexcept {
  if (name == "opposite") return SeedHeuristic::kOppositeTransaction;
  if (name == "transaction") return SeedHeuristic::kTransaction;
  if (name == "first") return SeedHeuristic::kFirst;
  return std::nullopt;
}

std::optional<CycleProviso> proviso_from_string(std::string_view name) noexcept {
  if (name == "auto") return CycleProviso::kAuto;
  if (name == "stack") return CycleProviso::kStack;
  if (name == "visited") return CycleProviso::kVisited;
  if (name == "scc") return CycleProviso::kScc;
  if (name == "off") return CycleProviso::kOff;
  return std::nullopt;
}

std::optional<Split> split_from_string(std::string_view name) noexcept {
  if (name == "none") return Split::kNone;
  if (name == "reply") return Split::kReply;
  if (name == "quorum") return Split::kQuorum;
  if (name == "combined") return Split::kCombined;
  return std::nullopt;
}

std::string_view to_string(Split s) noexcept {
  switch (s) {
    case Split::kNone: return "none";
    case Split::kReply: return "reply";
    case Split::kQuorum: return "quorum";
    case Split::kCombined: return "combined";
  }
  return "?";
}

Protocol apply_split(const Protocol& proto, Split s) {
  switch (s) {
    case Split::kNone: return proto;
    case Split::kReply: return refine::reply_split(proto);
    case Split::kQuorum: return refine::quorum_split(proto);
    case Split::kCombined: return refine::combined_split(proto);
  }
  return proto;
}

harness::BenchRecord to_record(const CheckResult& r, std::string workload) {
  if (workload.empty()) workload = r.protocol.name();
  return harness::make_record(std::move(workload), r.strategy, r.visited,
                              r.result);
}

Checker::Checker(CheckRequest req) : req_(std::move(req)), proto_("unset") {
  // --- names first: fail fast before the (possibly expensive) model build ---
  strategy_ = &strategy_info(req_.strategy);
  const auto split = split_from_string(req_.split);
  if (!split) {
    std::ostringstream os;
    os << "unknown split '" << req_.split
       << "'; known splits: none reply quorum combined";
    throw CheckError(os.str());
  }
  split_ = *split;
  if (req_.symmetry && split_ != Split::kNone) {
    throw CheckError(
        "symmetry with a refinement split is unsupported: split copies break "
        "the structural symmetry of the roles");
  }
  if (req_.symmetry && !strategy_->stateful) {
    throw CheckError(
        "symmetry requires a stateful strategy (full or spor): the stateless "
        "searches keep no visited set to canonicalize");
  }
  if (strategy_->name == "spor" && req_.explore.threads > 1 &&
      req_.spor.proviso == CycleProviso::kStack) {
    throw CheckError(
        "the stack cycle proviso needs a single sequential DFS; use "
        "--threads 1 or the visited-set proviso (--proviso visited or auto)");
  }
  if (!req_.explore.spill_dir.empty() &&
      req_.explore.visited != VisitedMode::kCollapse) {
    throw CheckError(
        "--spill-dir requires the collapse visited mode (--visited collapse): "
        "only the component-compressed arena can spill");
  }
  if (req_.dist_ranks > 0) {
    if (!strategy_->stateful) {
      throw CheckError(
          "--dist-ranks requires a stateful strategy (full or spor): the "
          "stateless searches keep no fingerprint space to partition");
    }
    if (req_.dist_ranks > dist::kMaxRanks) {
      throw CheckError("--dist-ranks exceeds the maximum of " +
                       std::to_string(dist::kMaxRanks) + " ranks");
    }
    if (req_.explore.threads > 1) {
      throw CheckError(
          "--dist-ranks and --threads are mutually exclusive: every rank is "
          "its own single-threaded process");
    }
    if (!req_.explore.spill_dir.empty()) {
      throw CheckError(
          "--dist-ranks with --spill-dir is unsupported: the spill file is "
          "one per process and the ranks would race on it");
    }
    if (strategy_->name == "spor" &&
        req_.spor.proviso != CycleProviso::kAuto &&
        req_.spor.proviso != CycleProviso::kScc) {
      throw CheckError(
          "--dist-ranks supports spor only under the SCC ignoring proviso "
          "(--proviso scc or auto): the stack proviso needs one DFS stack "
          "and the visited-set proviso would treat remotely-owned states as "
          "unvisited, which is unsound");
    }
  }

  // --- model ---
  std::vector<std::vector<ProcessId>> roles;
  if (req_.protocol.has_value()) {
    proto_ = *req_.protocol;
    roles = req_.symmetric_roles;
  } else {
    Model m = ModelRegistry::global().build(req_.model, req_.params);
    proto_ = std::move(m.protocol);
    roles = std::move(m.symmetric_roles);
  }
  if (split_ != Split::kNone) proto_ = apply_split(proto_, split_);

  if (req_.symmetry) {
    sym_.emplace(proto_, std::move(roles));
  }
}

std::uint64_t Checker::orbit_bound() const noexcept {
  return sym_ ? sym_->orbit_bound() : 1;
}

CheckResult Checker::run() {
  ExploreConfig cfg = req_.explore;
  cfg.mode =
      strategy_->stateful ? SearchMode::kStateful : SearchMode::kStateless;
  if (sym_) {
    cfg.canonicalize = [this](const State& s) { return sym_->canonicalize(s); };
    // Permutation-aware hooks: interned entries record the applied
    // permutation, and the engine's SCC pass can map canonical entries back
    // to concrete states (core/engine.hpp).
    cfg.canonicalize_perm = [this](const State& s, std::uint32_t& perm) {
      return sym_->canonicalize_with_perm(s, &perm);
    };
    cfg.decanonicalize = [this](std::uint32_t perm, const State& s) {
      return sym_->apply_inverse_perm(perm, s);
    };
  }

  // Resolve the SPOR cycle proviso: sequential runs keep the classic stack
  // proviso, parallel runs take the visited-set proviso (which is what lets
  // explore() route a reduced search onto the worker pool).
  SporOptions spor = req_.spor;
  std::string proviso = "-";
  if (strategy_->name == "spor") {
    if (spor.proviso == CycleProviso::kAuto) {
      spor.proviso = req_.dist_ranks > 0 ? CycleProviso::kScc
                     : cfg.threads > 1   ? CycleProviso::kVisited
                                         : CycleProviso::kStack;
    }
    if (spor.proviso == CycleProviso::kScc &&
        !visited_stores_graph(cfg.visited)) {
      // The SCC ignoring fix walks the stored state graph; reflect the
      // engine's visited-mode upgrade in the reported metadata. Collapse
      // mode already records the graph and is kept as requested.
      cfg.visited = VisitedMode::kInterned;
    }
    proviso = std::string(to_string(spor.proviso));
  }

  // Best-of-N timing: repeat the identical search and keep the fastest run —
  // but a definitive verdict always beats a budget-truncated one, whatever
  // the clock says: a reduced *parallel* search stores a schedule-dependent
  // state count, so with a budget right at that boundary one repeat can
  // truncate (early, hence fast) while another completes.
  const unsigned repeats = std::max(req_.repeat, 1u);
  const auto better = [](const ExploreResult& a, const ExploreResult& b) {
    const auto cut = [](const ExploreResult& r) {
      return r.verdict == Verdict::kBudgetExceeded ||
             r.verdict == Verdict::kResourceLimit;
    };
    const bool a_cut = cut(a);
    const bool b_cut = cut(b);
    if (a_cut != b_cut) return !a_cut;
    return a.stats.seconds < b.stats.seconds;
  };
  // The distributed ranks intern parent links for the cross-process trace
  // walk, so a graph-storing visited mode is mandatory (mirrors the kScc
  // upgrade above).
  if (req_.dist_ranks > 0 && !visited_stores_graph(cfg.visited)) {
    cfg.visited = VisitedMode::kInterned;
  }

  ExploreResult r;
  for (unsigned i = 0; i < repeats; ++i) {
    ExploreResult attempt;
    if (req_.dist_ranks > 0) {
      dist::DistConfig dc;
      dc.ranks = req_.dist_ranks;
      dist::StrategyFactory factory;
      if (strategy_->make != nullptr) {
        auto* const make = strategy_->make;
        const Protocol* proto = &proto_;
        factory = [make, proto, spor]() { return make(*proto, spor); };
      }
      try {
        attempt = dist::run_distributed(proto_, cfg, dc, factory);
      } catch (const dist::DistError& e) {
        throw CheckError(e.what());
      }
    } else if (strategy_->stateful) {
      attempt = explore(proto_, cfg,
                        strategy_->make ? strategy_->make(proto_, spor) : nullptr);
    } else {
      attempt = explore_dpor(proto_, cfg,
                             DporOptions{.reduce = strategy_->reduced,
                                         .sleep_sets = req_.dpor_sleep_sets});
    }
    if (i == 0 || better(attempt, r)) r = std::move(attempt);
  }

  CheckResult out;
  out.result = std::move(r);
  out.protocol = proto_;
  out.model = req_.protocol.has_value() ? proto_.name() : req_.model;
  out.strategy = req_.strategy;
  out.split = std::string(to_string(split_));
  out.visited = std::string(to_string(cfg.visited));
  out.proviso = std::move(proviso);
  out.symmetry = req_.symmetry;
  out.symmetry_orbit_bound = orbit_bound();
  out.threads = out.result.stats.threads_used;
  out.repeats = repeats;
  out.peak_rss_kb = harness::peak_rss_kb();

  // Feed the process-global bench sink (flushed to $MPB_BENCH_JSON at exit),
  // so every facade front end is a machine-readable emitter for free.
  if (req_.record) harness::record_bench(to_record(out));
  return out;
}

CheckResult run_check(CheckRequest req) { return Checker(std::move(req)).run(); }

}  // namespace mpb::check
