// Self-describing model parameters for the check facade (src/check).
//
// Every registered model (check/registry.hpp) publishes a schema: a list of
// ParamSpec entries naming its parameters with type, default, valid range and
// a one-line doc string. Callers construct models from (model name, raw
// string values); parse_params validates the raw values against the schema,
// throwing one precise CheckError per mistake (unknown name, ill-typed value,
// out-of-range value) and filling defaults for absent parameters. The same
// schema drives mpbcheck's auto-generated per-model --help, so the CLI
// surface and the API surface cannot drift apart.
#pragma once

#include <limits>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mpb::check {

// Any user error the facade can diagnose: unknown model / parameter /
// strategy / split, ill-typed or out-of-range values, invalid combinations.
class CheckError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class ParamType { kInt, kBool };

struct ParamSpec {
  std::string name;                 // CLI spelling without the leading "--"
  ParamType type = ParamType::kInt;
  long def = 0;                     // default value (bools: 0 or 1)
  long min = 0;                     // inclusive range; ints only
  long max = std::numeric_limits<long>::max();
  std::string doc;                  // one line for the generated help
};

// Raw parameter assignments as a caller provides them: name -> unparsed
// value. Bool parameters accept "", "1", "true", "0", "false"; the empty
// string is the CLI flag form and means true.
using RawParams = std::map<std::string, std::string, std::less<>>;

// Typed view of parameters parsed against a schema. Lookups of names absent
// from the schema throw CheckError — a factory typo, not a user error.
class ParamMap {
 public:
  [[nodiscard]] long get(std::string_view name) const;    // kInt parameters
  [[nodiscard]] bool flag(std::string_view name) const;   // kBool parameters
  [[nodiscard]] unsigned get_u(std::string_view name) const {
    return static_cast<unsigned>(get(name));
  }

 private:
  friend ParamMap parse_params(std::string_view, std::span<const ParamSpec>,
                               const RawParams&);
  std::map<std::string, long, std::less<>> values_;
};

// Validate `raw` against `schema` (the schema of model `model`, named in
// error messages) and return the typed map with defaults filled in.
[[nodiscard]] ParamMap parse_params(std::string_view model,
                                    std::span<const ParamSpec> schema,
                                    const RawParams& raw);

}  // namespace mpb::check
