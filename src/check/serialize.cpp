#include "check/serialize.hpp"

#include <cmath>
#include <limits>

#include "core/trace.hpp"
#include "harness/bench_json.hpp"

namespace mpb::check {

namespace {

// The wire spelling of a seed heuristic: the same names seed_from_string
// accepts ("opposite", not the display form "opposite-transaction").
std::string_view seed_wire_name(SeedHeuristic h) noexcept {
  switch (h) {
    case SeedHeuristic::kOppositeTransaction: return "opposite";
    case SeedHeuristic::kTransaction: return "transaction";
    case SeedHeuristic::kFirst: return "first";
  }
  return "?";
}

// Reject unknown keys so a typo'd remote request fails loudly instead of
// silently checking something else.
void check_keys(const util::Json& obj, std::string_view what,
                std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    bool ok = false;
    for (const std::string_view k : known) ok = ok || key == k;
    if (!ok) {
      throw CheckError("request: unknown " + std::string(what) + " field '" +
                       key + "'");
    }
  }
}

}  // namespace

util::Json request_to_json(const CheckRequest& req) {
  if (req.protocol.has_value()) {
    throw CheckError(
        "request: a prebuilt protocol is not serializable; submit a registry "
        "(model, params) pair instead");
  }
  const CheckRequest def;  // field defaults; only deviations are emitted

  util::Json j = util::Json::object();
  j["model"] = req.model;
  if (!req.params.empty()) {
    util::Json p = util::Json::object();
    for (const auto& [k, v] : req.params) p[k] = v;
    j["params"] = std::move(p);
  }
  if (req.strategy != def.strategy) j["strategy"] = req.strategy;
  if (req.split != def.split) j["split"] = req.split;
  if (req.symmetry) j["symmetry"] = true;
  if (req.repeat != def.repeat) j["repeat"] = req.repeat;
  if (req.dist_ranks != def.dist_ranks) j["dist_ranks"] = req.dist_ranks;

  util::Json spor = util::Json::object();
  if (req.spor.seed != def.spor.seed) {
    spor["seed"] = seed_wire_name(req.spor.seed);
  }
  if (req.spor.proviso != def.spor.proviso) {
    spor["proviso"] = to_string(req.spor.proviso);
  }
  if (req.spor.state_dependent_nes != def.spor.state_dependent_nes) {
    spor["state_dependent_nes"] = req.spor.state_dependent_nes;
  }
  if (req.spor.visibility_proviso != def.spor.visibility_proviso) {
    spor["visibility_proviso"] = req.spor.visibility_proviso;
  }
  if (req.spor.seed_retry != def.spor.seed_retry) {
    spor["seed_retry"] = req.spor.seed_retry;
  }
  if (req.spor.exhaustive_seed != def.spor.exhaustive_seed) {
    spor["exhaustive_seed"] = req.spor.exhaustive_seed;
  }
  if (!spor.as_object().empty()) j["spor"] = std::move(spor);
  if (req.dpor_sleep_sets != def.dpor_sleep_sets) {
    j["dpor_sleep_sets"] = req.dpor_sleep_sets;
  }

  const ExploreConfig& e = req.explore;
  const ExploreConfig ed;
  util::Json ex = util::Json::object();
  if (e.visited != ed.visited) ex["visited"] = to_string(e.visited);
  if (e.threads != ed.threads) ex["threads"] = e.threads;
  if (e.visited_shards != ed.visited_shards) {
    ex["visited_shards"] = e.visited_shards;
  }
  if (e.steal_half_threshold != ed.steal_half_threshold) {
    ex["steal_half_threshold"] = e.steal_half_threshold;
  }
  if (e.max_states != ed.max_states) ex["max_states"] = e.max_states;
  if (e.max_events != ed.max_events) ex["max_events"] = e.max_events;
  if (std::isfinite(e.max_seconds)) ex["max_seconds"] = e.max_seconds;
  if (e.max_depth != ed.max_depth) ex["max_depth"] = e.max_depth;
  if (e.spill_dir != ed.spill_dir) ex["spill_dir"] = e.spill_dir;
  if (e.spill_mb != ed.spill_mb) ex["spill_mb"] = e.spill_mb;

  util::Json guard = util::Json::object();
  if (std::isfinite(e.guard.watchdog_seconds)) {
    guard["watchdog_seconds"] = e.guard.watchdog_seconds;
  }
  if (e.guard.max_states != 0) guard["max_states"] = e.guard.max_states;
  if (e.guard.max_memory_bytes != 0) {
    guard["max_memory_bytes"] = e.guard.max_memory_bytes;
  }
  if (!guard.as_object().empty()) ex["guard"] = std::move(guard);
  if (!ex.as_object().empty()) j["explore"] = std::move(ex);

  return j;
}

CheckRequest request_from_json(const util::Json& j) {
  if (!j.is_object()) throw CheckError("request: expected a JSON object");
  check_keys(j, "request",
             {"model", "params", "strategy", "split", "symmetry", "repeat",
              "dist_ranks", "spor", "dpor_sleep_sets", "explore"});

  CheckRequest req;
  req.model = j.get_string("model", "");
  if (req.model.empty()) throw CheckError("request: missing field 'model'");
  if (const util::Json* p = j.find("params")) {
    for (const auto& [k, v] : p->as_object()) {
      // Accept bare JSON numbers/bools too: clients hand-writing requests
      // shouldn't need to quote "3". RawParams is string-typed; normalize.
      if (v.is_string()) req.params[k] = v.as_string();
      else if (v.is_int()) req.params[k] = std::to_string(v.as_int());
      else if (v.is_bool()) req.params[k] = v.as_bool() ? "1" : "0";
      else throw CheckError("request: parameter '" + k +
                            "' must be a string, integer or bool");
    }
  }
  req.strategy = j.get_string("strategy", req.strategy);
  req.split = j.get_string("split", req.split);
  req.symmetry = j.get_bool("symmetry", req.symmetry);
  req.repeat = static_cast<unsigned>(j.get_int("repeat", req.repeat));
  req.dist_ranks =
      static_cast<unsigned>(j.get_int("dist_ranks", req.dist_ranks));
  req.dpor_sleep_sets = j.get_bool("dpor_sleep_sets", req.dpor_sleep_sets);

  if (const util::Json* s = j.find("spor")) {
    check_keys(*s, "spor",
               {"seed", "proviso", "state_dependent_nes", "visibility_proviso",
                "seed_retry", "exhaustive_seed"});
    if (const util::Json* v = s->find("seed")) {
      const auto h = seed_from_string(v->as_string());
      if (!h) {
        throw CheckError("request: unknown seed heuristic '" + v->as_string() +
                         "'; known: opposite transaction first");
      }
      req.spor.seed = *h;
    }
    if (const util::Json* v = s->find("proviso")) {
      const auto p = proviso_from_string(v->as_string());
      if (!p) {
        throw CheckError("request: unknown cycle proviso '" + v->as_string() +
                         "'; known: auto stack visited scc off");
      }
      req.spor.proviso = *p;
    }
    req.spor.state_dependent_nes =
        s->get_bool("state_dependent_nes", req.spor.state_dependent_nes);
    req.spor.visibility_proviso =
        s->get_bool("visibility_proviso", req.spor.visibility_proviso);
    req.spor.seed_retry = s->get_bool("seed_retry", req.spor.seed_retry);
    req.spor.exhaustive_seed =
        s->get_bool("exhaustive_seed", req.spor.exhaustive_seed);
  }

  if (const util::Json* e = j.find("explore")) {
    check_keys(*e, "explore",
               {"visited", "threads", "visited_shards", "steal_half_threshold",
                "max_states", "max_events", "max_seconds", "max_depth",
                "spill_dir", "spill_mb", "guard"});
    ExploreConfig& cfg = req.explore;
    if (const util::Json* v = e->find("visited")) {
      const auto mode = visited_mode_from_string(v->as_string());
      if (!mode) {
        throw CheckError("request: unknown visited mode '" + v->as_string() +
                         "'; known: exact fingerprint interned collapse");
      }
      cfg.visited = *mode;
    }
    cfg.threads = static_cast<unsigned>(e->get_int("threads", cfg.threads));
    cfg.visited_shards =
        static_cast<unsigned>(e->get_int("visited_shards", cfg.visited_shards));
    cfg.steal_half_threshold = static_cast<unsigned>(
        e->get_int("steal_half_threshold", cfg.steal_half_threshold));
    if (const util::Json* v = e->find("max_states")) {
      cfg.max_states = v->as_uint();
    }
    if (const util::Json* v = e->find("max_events")) {
      cfg.max_events = v->as_uint();
    }
    cfg.max_seconds = e->get_double("max_seconds", cfg.max_seconds);
    cfg.max_depth =
        static_cast<unsigned>(e->get_int("max_depth", cfg.max_depth));
    cfg.spill_dir = e->get_string("spill_dir", cfg.spill_dir);
    if (const util::Json* v = e->find("spill_mb")) {
      cfg.spill_mb = v->as_uint();
    }
    if (const util::Json* g = e->find("guard")) {
      check_keys(*g, "guard",
                 {"watchdog_seconds", "max_states", "max_memory_bytes"});
      cfg.guard.watchdog_seconds =
          g->get_double("watchdog_seconds", cfg.guard.watchdog_seconds);
      if (const util::Json* v = g->find("max_states")) {
        cfg.guard.max_states = v->as_uint();
      }
      if (const util::Json* v = g->find("max_memory_bytes")) {
        cfg.guard.max_memory_bytes = v->as_uint();
      }
    }
  }
  return req;
}

util::Json result_to_json(const CheckResult& r) {
  util::Json j = util::Json::object();
  j["model"] = r.model;
  j["strategy"] = r.strategy;
  j["split"] = r.split;
  j["visited"] = r.visited;
  j["proviso"] = r.proviso;
  j["symmetry"] = r.symmetry;
  j["threads"] = r.threads;
  j["repeats"] = r.repeats;
  j["verdict"] = to_string(r.verdict());
  if (r.verdict() == Verdict::kViolated) {
    j["property"] = r.result.violated_property;
  }
  j["record"] = harness::to_json_value(to_record(r));
  // to_record samples the process RSS live; pin the value captured when the
  // run finished so re-serializing a cached result is byte-identical.
  j["record"]["peak_rss_kb"] = r.peak_rss_kb;
  if (!r.result.counterexample.empty()) {
    util::Json steps = util::Json::array();
    for (const TraceStep& step : r.result.counterexample) {
      steps.push_back(format_event(r.protocol, step.event));
    }
    j["trace"] = std::move(steps);
    j["trace_replay_ok"] = replay_counterexample(r.protocol, r.result);
  }
  return j;
}

}  // namespace mpb::check
