#include "check/registry.hpp"

#include <algorithm>
#include <sstream>

namespace mpb::check {

ModelRegistry& ModelRegistry::global() {
  // Leaked singleton: immune to static-destruction order, and the hooks run
  // exactly once, on first use.
  static ModelRegistry* reg = [] {
    auto* r = new ModelRegistry;
    register_collector_model(*r);
    register_echo_model(*r);
    register_paxos_model(*r);
    register_storage_model(*r);
    return r;
  }();
  return *reg;
}

void ModelRegistry::add(ModelInfo info) {
  if (info.name.empty() || !info.make) {
    throw CheckError("model registration requires a name and a factory");
  }
  if (models_.contains(info.name)) {
    throw CheckError("duplicate model registration: '" + info.name + "'");
  }
  std::string key = info.name;
  models_.emplace(std::move(key), std::move(info));
}

const ModelInfo* ModelRegistry::find(std::string_view name) const noexcept {
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : &it->second;
}

const ModelInfo& ModelRegistry::at(std::string_view name) const {
  if (const ModelInfo* info = find(name)) return *info;
  std::ostringstream os;
  os << "unknown model '" << name << "'; known models:";
  for (const auto& [key, info] : models_) os << " " << key;
  throw CheckError(os.str());
}

std::vector<std::string_view> ModelRegistry::names() const {
  std::vector<std::string_view> out;
  out.reserve(models_.size());
  for (const auto& [key, info] : models_) out.push_back(key);
  return out;  // std::map iteration is already sorted
}

Model ModelRegistry::build(std::string_view name, const RawParams& raw) const {
  const ModelInfo& info = at(name);
  return info.make(parse_params(info.name, info.params, raw));
}

std::string describe_models(const ModelRegistry& r) {
  std::size_t width = 0;
  for (std::string_view name : r.names()) width = std::max(width, name.size());
  std::ostringstream os;
  os << "models:\n";
  for (std::string_view name : r.names()) {
    os << "  " << name << std::string(width - name.size() + 2, ' ')
       << r.at(name).doc << "\n";
  }
  os << "\nrun 'mpbcheck <model> --help' for the model's parameters\n";
  return os.str();
}

std::string describe_model(std::string_view name, const ModelRegistry& r) {
  const ModelInfo& info = r.at(name);

  // First column: "--name N" for ints, "--name" for flags.
  std::vector<std::string> flags;
  std::size_t width = 0;
  for (const ParamSpec& p : info.params) {
    std::string flag = "--" + p.name;
    if (p.type == ParamType::kInt) flag += " N";
    width = std::max(width, flag.size());
    flags.push_back(std::move(flag));
  }

  std::ostringstream os;
  os << "usage: mpbcheck " << info.name
     << " [parameters] [engine options]\n\n"
     << info.doc << "\n\nparameters:\n";
  for (std::size_t i = 0; i < info.params.size(); ++i) {
    const ParamSpec& p = info.params[i];
    os << "  " << flags[i] << std::string(width - flags[i].size() + 2, ' ')
       << p.doc;
    if (p.type == ParamType::kInt) {
      os << "  [default " << p.def << ", range " << p.min << ".." << p.max
         << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mpb::check
