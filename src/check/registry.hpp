// The model registry: every built-in protocol registers a named factory with
// a self-describing parameter schema, so front ends (mpbcheck, the benches, a
// future distributed driver) construct models from (name, params) instead of
// #include-ing protocol headers.
//
// Registration lives in the protocol's own translation unit: each protocol
// defines a register_<name>_model(ModelRegistry&) hook (declared below) that
// fills in its ModelInfo — schema, doc line, factory, symmetric roles.
// ModelRegistry::global() calls the hooks by name on first use, which keeps
// the scheme immune to static-library dead stripping (a static registrar
// object in an otherwise unreferenced object file would be dropped by the
// linker; a named function the registry calls cannot be).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "check/params.hpp"
#include "core/protocol.hpp"

namespace mpb::check {

// Everything a model factory yields: the protocol instance plus the process
// groups that are symmetric by construction (input for SymmetryReducer; may
// be empty).
struct Model {
  Protocol protocol;
  std::vector<std::vector<ProcessId>> symmetric_roles;
};

struct ModelInfo {
  std::string name;               // registry key, e.g. "paxos"
  std::string doc;                // one line for --list
  std::vector<ParamSpec> params;  // the self-describing schema
  std::function<Model(const ParamMap&)> make;
};

class ModelRegistry {
 public:
  // The process-wide registry with every built-in protocol registered.
  static ModelRegistry& global();

  // Throws CheckError on a duplicate name or a missing factory.
  void add(ModelInfo info);

  [[nodiscard]] const ModelInfo* find(std::string_view name) const noexcept;
  // Like find, but throws CheckError listing the known models.
  [[nodiscard]] const ModelInfo& at(std::string_view name) const;
  // Registered names, sorted.
  [[nodiscard]] std::vector<std::string_view> names() const;

  // Build a model: validate `raw` against the schema and run the factory.
  [[nodiscard]] Model build(std::string_view name, const RawParams& raw) const;

 private:
  std::map<std::string, ModelInfo, std::less<>> models_;
};

// Registration hooks, one per built-in protocol, defined in the protocol's
// own translation unit (src/protocols/<p>/<p>.cpp).
void register_collector_model(ModelRegistry& r);
void register_echo_model(ModelRegistry& r);
void register_paxos_model(ModelRegistry& r);
void register_storage_model(ModelRegistry& r);

// Human-readable renderings of the registry, printed verbatim by
// `mpbcheck --list` and `mpbcheck <model> --help` and pinned by the golden
// tests in tests/check_test.cpp.
[[nodiscard]] std::string describe_models(
    const ModelRegistry& r = ModelRegistry::global());
// Throws CheckError on an unknown name.
[[nodiscard]] std::string describe_model(
    std::string_view name, const ModelRegistry& r = ModelRegistry::global());

}  // namespace mpb::check
