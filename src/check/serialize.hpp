// JSON (de)serialization of the check facade's request/result pair — the
// payload layer of the serve wire protocol (src/serve/wire.hpp), living next
// to check::to_record so the two machine-readable surfaces (bench records and
// service messages) stay in one subsystem.
//
// request_to_json emits a *normalized* object: only fields that differ from a
// default-constructed CheckRequest appear, in canonical (sorted-key) order,
// so equal requests serialize identically. request_from_json accepts the same
// shape with any subset of fields and fills defaults — a client can send
// {"model":"paxos"} and get the facade's defaults, exactly as the CLI does.
// Unknown keys are rejected (CheckError naming the key): a typo in a remote
// request must not silently check something else.
//
// Prebuilt protocols (CheckRequest::protocol) and the observer hooks are not
// serializable; request_to_json throws on the former and silently drops the
// latter (hooks are re-attached by the receiving side).
#pragma once

#include <string>

#include "check/check.hpp"
#include "util/json.hpp"

namespace mpb::check {

// CheckRequest -> normalized JSON object. Throws CheckError on a request
// carrying a prebuilt protocol.
[[nodiscard]] util::Json request_to_json(const CheckRequest& req);

// JSON object -> CheckRequest with defaults filled. Validates field types,
// enum spellings (strategy/split/visited/proviso/seed names) and key names;
// throws CheckError (or util::JsonError for type mismatches) with a precise
// message. Model/parameter existence is *not* checked here — the Checker
// constructor owns that, so the error surface stays in one place.
[[nodiscard]] CheckRequest request_from_json(const util::Json& j);

// CheckResult -> JSON: verdict, run metadata, the bench-record stats block
// (the same shape `mpbcheck --json` prints, so CLI and service output are
// diffable), and — when a counterexample exists — the event trace as
// human-readable step lines plus its replay certificate.
[[nodiscard]] util::Json result_to_json(const CheckResult& r);

}  // namespace mpb::check
