#include "util/combinatorics.hpp"

#include <limits>
#include <numeric>

namespace mpb {

std::uint64_t binomial(unsigned n, unsigned k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    const std::uint64_t num = n - k + i;
    // result * num / i is always integral at this point; guard overflow.
    if (result > std::numeric_limits<std::uint64_t>::max() / num) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * num / i;
  }
  return result;
}

bool for_each_combination(unsigned n, unsigned k,
                          const std::function<bool(std::span<const unsigned>)>& visit) {
  if (k > n) return true;  // nothing to visit
  std::vector<unsigned> idx(k);
  std::iota(idx.begin(), idx.end(), 0u);
  if (k == 0) return visit(std::span<const unsigned>{});
  while (true) {
    if (!visit(idx)) return false;
    // Advance to the next combination in lexicographic order.
    int pos = static_cast<int>(k) - 1;
    while (pos >= 0 && idx[static_cast<unsigned>(pos)] == n - k + static_cast<unsigned>(pos)) {
      --pos;
    }
    if (pos < 0) return true;
    ++idx[static_cast<unsigned>(pos)];
    for (unsigned j = static_cast<unsigned>(pos) + 1; j < k; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
}

std::vector<std::vector<unsigned>> combinations(unsigned n, unsigned k) {
  std::vector<std::vector<unsigned>> out;
  for_each_combination(n, k, [&](std::span<const unsigned> c) {
    out.emplace_back(c.begin(), c.end());
    return true;
  });
  return out;
}

bool for_each_product(std::span<const unsigned> sizes,
                      const std::function<bool(std::span<const unsigned>)>& visit) {
  for (unsigned s : sizes) {
    if (s == 0) return true;  // empty product
  }
  std::vector<unsigned> idx(sizes.size(), 0);
  while (true) {
    if (!visit(idx)) return false;
    std::size_t pos = 0;
    while (pos < sizes.size()) {
      if (++idx[pos] < sizes[pos]) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == sizes.size()) return true;
  }
}

bool for_each_subset(unsigned n,
                     const std::function<bool(std::span<const unsigned>)>& visit) {
  // Enumerate by subset size so smaller sets are tried first; quorum guards
  // typically reject oversized sets quickly.
  for (unsigned k = 0; k <= n; ++k) {
    if (!for_each_combination(n, k, visit)) return false;
  }
  return true;
}

}  // namespace mpb
