#include "util/json.hpp"

#include <charconv>
#include <cstdio>
#include <utility>

namespace mpb::util {

namespace {

[[noreturn]] void type_error(std::string_view want, Json::Kind got) {
  static constexpr std::string_view kNames[] = {
      "null", "bool", "int", "double", "string", "array", "object"};
  throw JsonError("json: expected " + std::string(want) + ", have " +
                  std::string(kNames[static_cast<std::size_t>(got)]));
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) type_error("bool", kind_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ != Kind::kInt) type_error("int", kind_);
  return int_;
}

std::uint64_t Json::as_uint() const {
  if (kind_ != Kind::kInt || int_ < 0) type_error("non-negative int", kind_);
  return static_cast<std::uint64_t>(int_);
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) type_error("number", kind_);
  return dbl_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) type_error("string", kind_);
  return str_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) type_error("array", kind_);
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) type_error("object", kind_);
  return obj_;
}

Json::Array& Json::as_array() {
  if (kind_ != Kind::kArray) type_error("array", kind_);
  return arr_;
}

Json::Object& Json::as_object() {
  if (kind_ != Kind::kObject) type_error("object", kind_);
  return obj_;
}

Json& Json::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) type_error("object", kind_);
  const auto it = obj_.find(key);
  if (it != obj_.end()) return it->second;
  return obj_.emplace(std::string(key), Json()).first->second;
}

const Json& Json::operator[](std::string_view key) const {
  if (kind_ != Kind::kObject) type_error("object", kind_);
  const auto it = obj_.find(key);
  if (it == obj_.end()) {
    throw JsonError("json: no field '" + std::string(key) + "'");
  }
  return it->second;
}

const Json& Json::operator[](std::size_t index) const {
  if (kind_ != Kind::kArray) type_error("array", kind_);
  if (index >= arr_.size()) {
    throw JsonError("json: array index " + std::to_string(index) +
                    " out of range (size " + std::to_string(arr_.size()) + ")");
  }
  return arr_[index];
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::string Json::get_string(std::string_view key,
                             std::string_view fallback) const {
  const Json* v = find(key);
  return v == nullptr ? std::string(fallback) : v->as_string();
}

std::int64_t Json::get_int(std::string_view key, std::int64_t fallback) const {
  const Json* v = find(key);
  return v == nullptr ? fallback : v->as_int();
}

double Json::get_double(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return v == nullptr ? fallback : v->as_double();
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) type_error("array", kind_);
  arr_.push_back(std::move(v));
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) {
    // kInt vs kDouble with equal numeric value still counts as equal.
    if (a.is_number() && b.is_number()) return a.as_double() == b.as_double();
    return false;
  }
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kInt: return a.int_ == b.int_;
    case Json::Kind::kDouble: return a.dbl_ == b.dbl_;
    case Json::Kind::kString: return a.str_ == b.str_;
    case Json::Kind::kArray: return a.arr_ == b.arr_;
    case Json::Kind::kObject: return a.obj_ == b.obj_;
  }
  return false;
}

// --- writer -----------------------------------------------------------------

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_into(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.10g", dbl_);
      out += buf;
      break;
    }
    case Kind::kString:
      append_json_string(out, str_);
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!std::exchange(first, false)) out += ',';
        v.dump_into(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!std::exchange(first, false)) out += ',';
        append_json_string(out, k);
        out += ':';
        v.dump_into(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_into(out);
  return out;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(std::string_view what) const {
    throw JsonError("json: " + std::string(what) + " at offset " +
                    std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    // Depth guard: the serve layer feeds untrusted socket bytes through this
    // parser, and the recursive descent must not let "[[[[..." smash the
    // stack before a length limit elsewhere kicks in.
    if (depth_ > 256) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    ++depth_;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.as_object().insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    --depth_;
    return out;
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    ++depth_;
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    --depth_;
    return out;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Surrogate pairs are passed through as two 3-byte sequences (the
          // protocol never emits astral-plane text; decoding pairs would be
          // dead weight here).
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string_view lit = text_.substr(start, pos_ - start);
    if (lit.empty() || lit == "-") fail("invalid number");
    if (integral) {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), v);
      if (ec == std::errc{} && ptr == lit.data() + lit.size()) return Json(v);
      // Falls through for out-of-int64-range literals.
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), d);
    if (ec != std::errc{} || ptr != lit.data() + lit.size()) fail("invalid number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  unsigned depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace mpb::util
