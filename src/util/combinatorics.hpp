// Combination / cartesian-product enumeration used by the enabled-event
// machinery: a quorum transition with threshold q over a set of candidate
// senders requires enumerating every q-subset of senders and, per sender,
// every choice among that sender's pending messages (Section IV-A of the
// paper: "enabled set of messages").
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace mpb {

// Number of k-subsets of an n-set. Saturates at uint64 max on overflow.
[[nodiscard]] std::uint64_t binomial(unsigned n, unsigned k) noexcept;

// Visit every k-subset of {0, 1, ..., n-1} in lexicographic order.
// `visit` receives the chosen indices; returning false aborts enumeration.
// Returns false iff enumeration was aborted.
bool for_each_combination(unsigned n, unsigned k,
                          const std::function<bool(std::span<const unsigned>)>& visit);

// Materialize all k-subsets of {0..n-1}.
[[nodiscard]] std::vector<std::vector<unsigned>> combinations(unsigned n, unsigned k);

// Visit every element of the cartesian product of `sizes` index ranges:
// all tuples (i_0, ..., i_{m-1}) with 0 <= i_j < sizes[j].
// Returning false from `visit` aborts. Returns false iff aborted.
// An empty `sizes` yields exactly one (empty) tuple.
bool for_each_product(std::span<const unsigned> sizes,
                      const std::function<bool(std::span<const unsigned>)>& visit);

// Visit every subset of {0..n-1} (the powerset), smallest first.
// Used only by powerset-arity transitions; callers should cap n.
bool for_each_subset(unsigned n,
                     const std::function<bool(std::span<const unsigned>)>& visit);

}  // namespace mpb
