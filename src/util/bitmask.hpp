// Fixed-width process-set masks. The checker supports up to 32 processes,
// which comfortably covers every protocol setting in the paper (max 6).
#pragma once

#include <bit>
#include <cstdint>

namespace mpb {

using ProcessMask = std::uint32_t;

inline constexpr unsigned kMaxProcesses = 32;
inline constexpr ProcessMask kAllProcesses = ~ProcessMask{0};

[[nodiscard]] constexpr ProcessMask mask_of(unsigned pid) noexcept {
  return ProcessMask{1} << pid;
}

[[nodiscard]] constexpr bool mask_contains(ProcessMask m, unsigned pid) noexcept {
  return (m & mask_of(pid)) != 0;
}

[[nodiscard]] constexpr unsigned mask_count(ProcessMask m) noexcept {
  return static_cast<unsigned>(std::popcount(m));
}

// Visit each process id set in `m`, lowest first.
template <typename Fn>
constexpr void mask_for_each(ProcessMask m, Fn&& fn) {
  while (m != 0) {
    const unsigned pid = static_cast<unsigned>(std::countr_zero(m));
    fn(pid);
    m &= m - 1;
  }
}

}  // namespace mpb
