#include "util/hash.hpp"

namespace mpb {

std::uint64_t hash_string(std::string_view s) noexcept {
  Hasher64 h(0x7c9a0367d1a4fb13ULL);
  std::uint64_t word = 0;
  std::size_t i = 0;
  for (unsigned char c : s) {
    word |= static_cast<std::uint64_t>(c) << (8 * (i % 8));
    if (++i % 8 == 0) {
      h.add(word);
      word = 0;
    }
  }
  if (i % 8 != 0) h.add(word);
  h.add(s.size());
  return h.digest();
}

}  // namespace mpb
