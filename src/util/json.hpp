// A minimal JSON value with a strict parser and a canonical writer — the
// data layer of the serve wire protocol (src/serve) and of the check-request
// serialization (src/check/serialize.hpp).
//
// Deliberately small: null / bool / integer / double / string / array /
// object, no comments, no trailing commas, UTF-8 passed through verbatim
// (\uXXXX escapes are decoded to UTF-8 on parse). Objects keep their keys in
// a sorted map, so dump() is *canonical*: two structurally equal values
// serialize to byte-identical text — which is what makes golden wire-protocol
// tests and dedup-by-serialization (result-cache keys) trivially stable.
//
// Numbers: integral literals (no '.', 'e', 'E') parse as kInt (int64) and
// print without a fraction; everything else is kDouble printed with "%.10g"
// (enough for the stats the protocol carries — wall-clock seconds and rates).
// as_double() accepts kInt values, so readers need not care which way a
// number arrived.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpb::util {

// Any malformed input or type-confused access; carries a byte offset for
// parse errors ("json: expected ':' at offset 17").
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kDouble, kString, kArray, kObject
  };

  using Array = std::vector<Json>;
  // Sorted keys: the canonical-dump property depends on this.
  using Object = std::map<std::string, Json, std::less<>>;

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(long v) : kind_(Kind::kInt), int_(v) {}
  Json(long long v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned long v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : kind_(Kind::kDouble), dbl_(v) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::kString), str_(s) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  Json(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  // Typed accessors; throw JsonError naming the expected kind on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;   // kInt only
  [[nodiscard]] std::uint64_t as_uint() const; // kInt >= 0
  [[nodiscard]] double as_double() const;      // kInt or kDouble
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  // Object field access. The mutable operator[] creates (on a non-object it
  // first becomes an empty object — build syntax: j["k"] = v); the const
  // overloads throw JsonError on a missing field / out-of-range index; find()
  // returns nullptr when absent or when *this is not an object.
  Json& operator[](std::string_view key);
  const Json& operator[](std::string_view key) const;
  const Json& operator[](std::size_t index) const;  // array element
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  // find() + type check in one step for the common reader patterns; each
  // returns `fallback` when the key is absent, and throws JsonError when the
  // key is present with the wrong type (a malformed message, not a default).
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  void push_back(Json v);

  friend bool operator==(const Json& a, const Json& b);

  // Canonical compact serialization (sorted object keys, no whitespace).
  [[nodiscard]] std::string dump() const;
  void dump_into(std::string& out) const;

  // Strict parse of exactly one JSON value spanning all of `text` (trailing
  // whitespace allowed); throws JsonError with a byte offset otherwise.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

// Append `s` JSON-escaped (quotes included) to `out`; shared with the bench
// record writer.
void append_json_string(std::string& out, std::string_view s);

}  // namespace mpb::util
