// Streaming hashing utilities for canonical state fingerprints.
//
// The explorer stores visited states either exactly (full state in a hash set)
// or as 128-bit fingerprints. Both paths funnel through the streaming hasher
// defined here so that a state has exactly one canonical hash, independent of
// struct padding or container layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace mpb {

// splitmix64 finalizer; good avalanche, cheap, dependency-free.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Streaming 64-bit hasher. Feed integral values with `add`; `digest` yields the
// final value. Two streams fed the same sequence of values produce the same
// digest regardless of the original container types.
class Hasher64 {
 public:
  constexpr explicit Hasher64(std::uint64_t seed = 0x51ed270b7a03f24bULL) noexcept
      : state_(seed) {}

  constexpr void add(std::uint64_t v) noexcept {
    state_ = mix64(state_ ^ v);
  }

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  constexpr void add_int(T v) noexcept {
    add(static_cast<std::uint64_t>(v));
  }

  void add_bytes(std::span<const std::byte> bytes) noexcept {
    std::uint64_t word = 0;
    std::size_t i = 0;
    for (std::byte b : bytes) {
      word |= static_cast<std::uint64_t>(b) << (8 * (i % 8));
      if (++i % 8 == 0) {
        add(word);
        word = 0;
      }
    }
    if (i % 8 != 0) add(word);
    add(static_cast<std::uint64_t>(bytes.size()));
  }

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept {
    return mix64(state_);
  }

 private:
  std::uint64_t state_;
};

// 128-bit fingerprint for the probabilistic visited set. Collision probability
// across N states is ~ N^2 / 2^129; negligible for explicit-state runs.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const Fingerprint&, const Fingerprint&) = default;
  friend constexpr auto operator<=>(const Fingerprint&, const Fingerprint&) = default;
};

struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(const Fingerprint& f) const noexcept {
    return static_cast<std::size_t>(f.hi ^ mix64(f.lo));
  }
};

// Combine two hash values in an order-dependent way.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Hash a string (used for interning message-type names deterministically).
[[nodiscard]] std::uint64_t hash_string(std::string_view s) noexcept;

}  // namespace mpb
