// Single-decree Paxos [20], [21] — the paper's first target system
// (Sections II-B and V-A).
//
// Roles: proposers initiate a consensus instance with a fixed, distinct ballot
// (READ, phase 1a), acceptors promise and accept (READ_REPL / WRITE / ACCEPT),
// learners output a chosen value when a majority of acceptors accepted the
// same proposal. The verified invariant is consensus/agreement: no learner
// observes two different chosen values and no two learners learn differently.
//
// Two model flavours, as evaluated in Table I:
//  * quorum model     — the proposer's READ_REPL and the learner's ACCEPT are
//    exact quorum transitions over a majority of acceptors (Fig. 2);
//  * single-message model — the same protocol written with per-message
//    counting transitions (Fig. 3): cnt++, fire when cnt reaches a majority.
//
// "Faulty Paxos" (Section V-A, fault injection): the learner does not compare
// the (ballot, value) pairs received from the acceptors, so mixed ACCEPT sets
// can be mistaken for a chosen value — consensus then has a counterexample.
#pragma once

#include "core/protocol.hpp"

namespace mpb::protocols {

struct PaxosConfig {
  unsigned proposers = 2;
  unsigned acceptors = 3;
  unsigned learners = 1;
  bool quorum_model = true;    // false: Fig. 3 single-message counting model
  bool faulty_learner = false; // "Faulty Paxos"

  [[nodiscard]] unsigned majority() const noexcept { return acceptors / 2 + 1; }
  // "(2,3,1)" — the paper's setting notation.
  [[nodiscard]] std::string setting() const;
};

[[nodiscard]] Protocol make_paxos(const PaxosConfig& cfg);

// Process groups of make_paxos(cfg) that are symmetric by construction
// (acceptors; learners): input for SymmetryReducer. Proposers are *not*
// symmetric — they carry distinct ballots and values.
[[nodiscard]] std::vector<std::vector<ProcessId>> paxos_symmetric_roles(
    const PaxosConfig& cfg);

// Value a proposer proposes (distinct per proposer); exposed for tests.
[[nodiscard]] constexpr Value paxos_proposal_value(unsigned proposer_index) noexcept {
  return static_cast<Value>(100 + proposer_index);
}
// Ballot number of a proposer (distinct, nonzero).
[[nodiscard]] constexpr Value paxos_ballot(unsigned proposer_index) noexcept {
  return static_cast<Value>(proposer_index + 1);
}

// Learner local-variable indices; exposed for tests and properties.
inline constexpr unsigned kLearnerBal = 0;
inline constexpr unsigned kLearnerVal = 1;
inline constexpr unsigned kLearnerConflict = 2;

}  // namespace mpb::protocols
