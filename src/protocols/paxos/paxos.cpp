#include "protocols/paxos/paxos.hpp"

#include <algorithm>

#include "check/registry.hpp"
#include "mp/builder.hpp"

namespace mpb::protocols {

namespace {

// Proposer locals.
constexpr unsigned kPropStarted = 0;
// Single-message model adds counting state (Fig. 3).
constexpr unsigned kPropCnt = 1;
constexpr unsigned kPropHighBal = 2;
constexpr unsigned kPropHighVal = 3;

// Acceptor locals.
constexpr unsigned kAccPromised = 0;
constexpr unsigned kAccAcceptedBal = 1;
constexpr unsigned kAccAcceptedVal = 2;

// Learner counting state (single-message model).
constexpr unsigned kLearnerCnt = 3;
constexpr unsigned kLearnerCurBal = 4;
constexpr unsigned kLearnerCurVal = 5;

}  // namespace

std::string PaxosConfig::setting() const {
  return "(" + std::to_string(proposers) + "," + std::to_string(acceptors) + "," +
         std::to_string(learners) + ")";
}

Protocol make_paxos(const PaxosConfig& cfg) {
  std::string name = cfg.quorum_model ? "paxos-quorum" : "paxos-1msg";
  if (cfg.faulty_learner) name = "faulty-" + name;
  mp::ProtocolBuilder b(name + cfg.setting());

  const Value maj = static_cast<Value>(cfg.majority());

  const MsgType mREAD = b.msg("READ");
  const MsgType mREAD_REPL = b.msg("READ_REPL");
  const MsgType mWRITE = b.msg("WRITE");
  const MsgType mACCEPT = b.msg("ACCEPT");

  // --- processes ---
  std::vector<ProcessId> proposers, acceptors, learners;
  for (unsigned i = 0; i < cfg.proposers; ++i) {
    std::vector<std::pair<std::string, Value>> vars{{"started", 0}};
    if (!cfg.quorum_model) {
      vars.insert(vars.end(), {{"cnt", 0}, {"highBal", 0}, {"highVal", 0}});
    }
    proposers.push_back(b.process("proposer" + std::to_string(i), "Proposer", vars));
  }
  for (unsigned i = 0; i < cfg.acceptors; ++i) {
    acceptors.push_back(b.process("acceptor" + std::to_string(i), "Acceptor",
                                  {{"promised", 0}, {"accBal", 0}, {"accVal", 0}}));
  }
  for (unsigned i = 0; i < cfg.learners; ++i) {
    std::vector<std::pair<std::string, Value>> vars{
        {"learnedBal", 0}, {"learnedVal", 0}, {"conflict", 0}};
    if (!cfg.quorum_model) {
      vars.insert(vars.end(), {{"cnt", 0}, {"curBal", 0}, {"curVal", 0}});
    }
    learners.push_back(b.process("learner" + std::to_string(i), "Learner", vars));
  }

  ProcessMask acc_mask = 0, learner_mask = 0;
  for (ProcessId a : acceptors) acc_mask |= mask_of(a);
  for (ProcessId l : learners) learner_mask |= mask_of(l);

  // --- proposer transitions ---
  for (unsigned i = 0; i < cfg.proposers; ++i) {
    const ProcessId p = proposers[i];
    const Value bal = paxos_ballot(i);
    const Value myval = paxos_proposal_value(i);

    // Phase 1a: ask every acceptor what it has seen (the paper's READ).
    b.transition(p, "START")
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[kPropStarted] == 0; })
        .effect([=, acc = acceptors](EffectCtx& c) {
          c.set_local(kPropStarted, 1);
          for (ProcessId a : acc) c.send(a, mREAD, {bal});
        })
        .sends("READ", acc_mask)
        .reads(VarMask{1} << kPropStarted)
        .writes(VarMask{1} << kPropStarted)
        .priority(5);

    if (cfg.quorum_model) {
      // Phase 1b->2a: one atomic quorum transition over a majority of
      // READ_REPL messages (Fig. 2). The proposer adopts the value of the
      // highest-ballot accepted proposal it sees, or its own value.
      b.transition(p, "READ_REPL")
          .consumes("READ_REPL", static_cast<int>(maj))
          .from(acc_mask)
          .guard([bal](const GuardView& g) {
            return std::all_of(g.consumed.begin(), g.consumed.end(),
                               [bal](const Message& m) { return m[0] == bal; });
          })
          .effect([=, acc = acceptors](EffectCtx& c) {
            Value hbal = 0, hval = myval;
            for (const Message& m : c.consumed()) {
              if (m[1] > hbal) {
                hbal = m[1];
                hval = m[2];
              }
            }
            for (ProcessId a : acc) {
              c.send(a, mWRITE, {bal, hval});
            }
          })
          .sends("WRITE", acc_mask)
          .reads_local(false)
          .writes_local(false)
          .priority(3);
    } else {
      // Fig. 3: count READ_REPL messages one by one; remember the highest
      // accepted proposal; once a majority has replied, issue the WRITEs.
      b.transition(p, "READ_REPL")
          .consumes("READ_REPL", 1)
          .from(acc_mask)
          .guard([bal](const GuardView& g) { return g.consumed[0][0] == bal; })
          .effect([=, acc = acceptors](EffectCtx& c) {
            const Message& m = c.consumed()[0];
            if (m[1] > c.local(kPropHighBal)) {
              c.set_local(kPropHighBal, m[1]);
              c.set_local(kPropHighVal, m[2]);
            }
            const Value cnt = c.local(kPropCnt) + 1;
            if (cnt >= maj) {
              c.set_local(kPropCnt, 0);
              const Value hval =
                  c.local(kPropHighBal) > 0 ? c.local(kPropHighVal) : myval;
              for (ProcessId a : acc) {
                c.send(a, mWRITE, {bal, hval});
              }
            } else {
              c.set_local(kPropCnt, cnt);
            }
          })
          .sends("WRITE", acc_mask)
          .reads_local(false)
          .writes((VarMask{1} << kPropCnt) | (VarMask{1} << kPropHighBal) |
                  (VarMask{1} << kPropHighVal))
          .priority(3);
    }
  }

  // --- acceptor transitions ---
  ProcessMask prop_mask = 0;
  for (ProcessId p : proposers) prop_mask |= mask_of(p);
  for (unsigned i = 0; i < cfg.acceptors; ++i) {
    const ProcessId a = acceptors[i];

    // Phase 1b: promise and report the last accepted proposal. A reply
    // transition in the sense of Def. 4 (answers only the asking proposer).
    b.transition(a, "READ")
        .consumes("READ", 1)
        .from(prop_mask)
        .guard([](const GuardView& g) {
          return g.consumed[0][0] > g.local[kAccPromised];
        })
        .effect([mREAD_REPL](EffectCtx& c) {
          const Message& m = c.consumed()[0];
          c.set_local(kAccPromised, m[0]);
          c.send(m.sender(), mREAD_REPL,
                 {m[0], c.local(kAccAcceptedBal), c.local(kAccAcceptedVal)});
        })
        .sends("READ_REPL", prop_mask)
        .reply()
        .reads(VarMask{1} << kAccPromised)
        .writes(VarMask{1} << kAccPromised)
        .priority(4);

    // Phase 2b: accept unless a higher promise was made; announce to learners.
    b.transition(a, "WRITE")
        .consumes("WRITE", 1)
        .from(prop_mask)
        .guard([](const GuardView& g) {
          return g.consumed[0][0] >= g.local[kAccPromised];
        })
        .effect([=, lrn = learners](EffectCtx& c) {
          const Message& m = c.consumed()[0];
          c.set_local(kAccPromised, m[0]);
          c.set_local(kAccAcceptedBal, m[0]);
          c.set_local(kAccAcceptedVal, m[1]);
          for (ProcessId l : lrn) {
            c.send(l, mACCEPT, {m[0], m[1]});
          }
        })
        .sends("ACCEPT", learner_mask)
        .reads(VarMask{1} << kAccPromised)
        .writes((VarMask{1} << kAccPromised) | (VarMask{1} << kAccAcceptedBal) |
                (VarMask{1} << kAccAcceptedVal))
        .priority(2);
  }

  // --- learner transitions ---
  for (unsigned i = 0; i < cfg.learners; ++i) {
    const ProcessId l = learners[i];

    // Peers this learner compares itself against in the agreement assertion.
    std::vector<ProcessId> other_learners;
    for (ProcessId ol : learners) {
      if (ol != l) other_learners.push_back(ol);
    }

    // The consensus specification, asserted at the moment of learning (the
    // paper's in-transition assertion style): a learner never changes its
    // mind, and never disagrees with a value another learner already chose.
    auto learn = [others = other_learners](EffectCtx& c, Value bal, Value val) {
      if (c.local(kLearnerVal) != 0 && c.local(kLearnerVal) != val) {
        c.set_local(kLearnerConflict, 1);
      }
      c.assert_that(c.local(kLearnerVal) == 0 || c.local(kLearnerVal) == val,
                    "consensus");
      for (ProcessId ol : others) {
        const Value v = c.peek(ol, kLearnerVal);
        c.assert_that(v == 0 || v == val, "consensus");
      }
      c.set_local(kLearnerBal, bal);
      c.set_local(kLearnerVal, val);
    };

    if (cfg.quorum_model) {
      // A value is chosen once a majority of acceptors accepted the same
      // proposal. Faulty Paxos skips the same-(ballot,value) comparison.
      auto& tb = b.transition(l, "ACCEPT")
          .consumes("ACCEPT", static_cast<int>(maj))
          .from(acc_mask)
          .guard([faulty = cfg.faulty_learner](const GuardView& g) {
            if (faulty) return true;  // no comparison: the injected bug
            const Message& first = g.consumed[0];
            return std::all_of(g.consumed.begin(), g.consumed.end(),
                               [&](const Message& m) {
                                 return m[0] == first[0] && m[1] == first[1];
                               });
          })
          .effect([learn](EffectCtx& c) {
            const Message& first = c.consumed()[0];
            learn(c, first[0], first[1]);
          })
          .reads_local(false)
          .priority(1);
      for (ProcessId ol : other_learners) {
        // the agreement assertion ghost-reads the peer's learned value
        tb.peeks(ol, VarMask{1} << kLearnerVal);
      }
    } else {
      // Counting learner: track the current ballot's tally; a higher ballot
      // restarts the count. Faulty variant counts without any comparison.
      auto& tb = b.transition(l, "ACCEPT")
          .consumes("ACCEPT", 1)
          .from(acc_mask)
          .effect([=, faulty = cfg.faulty_learner](EffectCtx& c) {
            const Message& m = c.consumed()[0];
            Value cnt;
            if (faulty) {
              // Injected bug: never compare; count every ACCEPT toward the
              // current tally and remember the last seen proposal.
              cnt = c.local(kLearnerCnt) + 1;
              c.set_local(kLearnerCurBal, m[0]);
              c.set_local(kLearnerCurVal, m[1]);
            } else if (m[0] == c.local(kLearnerCurBal)) {
              cnt = c.local(kLearnerCnt) + 1;
            } else if (m[0] > c.local(kLearnerCurBal)) {
              c.set_local(kLearnerCurBal, m[0]);
              c.set_local(kLearnerCurVal, m[1]);
              cnt = 1;
            } else {
              return;  // stale ballot: consume and ignore
            }
            if (cnt >= maj) {
              c.set_local(kLearnerCnt, 0);
              learn(c, c.local(kLearnerCurBal), c.local(kLearnerCurVal));
            } else {
              c.set_local(kLearnerCnt, cnt);
            }
          })
          .priority(1);
      for (ProcessId ol : other_learners) {
        tb.peeks(ol, VarMask{1} << kLearnerVal);
      }
    }
  }

  // --- consensus property ---
  // Agreement: no learner ever observes two different chosen values, and no
  // two learners learn different values.
  b.property("consensus", [learners](const State& s, const Protocol& proto) {
    Value chosen = 0;
    for (ProcessId l : learners) {
      const ProcessInfo& pi = proto.proc(l);
      auto loc = s.local_slice(pi.local_offset, pi.local_len);
      if (loc[kLearnerConflict] != 0) return false;
      const Value v = loc[kLearnerVal];
      if (v == 0) continue;
      if (chosen == 0) {
        chosen = v;
      } else if (chosen != v) {
        return false;
      }
    }
    return true;
  });

  return b.build();
}


std::vector<std::vector<ProcessId>> paxos_symmetric_roles(const PaxosConfig& cfg) {
  std::vector<std::vector<ProcessId>> roles;
  std::vector<ProcessId> acceptors, learners;
  for (unsigned i = 0; i < cfg.acceptors; ++i) {
    acceptors.push_back(static_cast<ProcessId>(cfg.proposers + i));
  }
  for (unsigned i = 0; i < cfg.learners; ++i) {
    learners.push_back(static_cast<ProcessId>(cfg.proposers + cfg.acceptors + i));
  }
  if (acceptors.size() >= 2) roles.push_back(std::move(acceptors));
  if (learners.size() >= 2) roles.push_back(std::move(learners));
  return roles;
}

}  // namespace mpb::protocols

namespace mpb::check {

// Check-facade registration (called from ModelRegistry::global()): the paxos
// schema and factory live here so adding or changing a parameter never
// touches the front ends — mpbcheck's --help renders this schema verbatim.
void register_paxos_model(ModelRegistry& r) {
  r.add(ModelInfo{
      .name = "paxos",
      .doc = "single-decree Paxos checked for consensus (Table I)",
      .params =
          {
              {.name = "proposers",
               .def = 2,
               .min = 0,
               .max = 8,
               .doc = "proposers, each with a distinct ballot and value"},
              {.name = "acceptors",
               .def = 3,
               .min = 1,
               .max = 9,
               .doc = "acceptors; promises/accepts need a majority"},
              {.name = "learners",
               .def = 1,
               .min = 0,
               .max = 8,
               .doc = "learners observing chosen values"},
              {.name = "single-message",
               .type = ParamType::kBool,
               .doc = "per-message counting model (Fig. 3) instead of quorum"},
              {.name = "faulty",
               .type = ParamType::kBool,
               .doc = "learner skips the (ballot,value) comparison "
                      "(\"Faulty Paxos\")"},
          },
      .make =
          [](const ParamMap& p) {
            protocols::PaxosConfig cfg{
                .proposers = p.get_u("proposers"),
                .acceptors = p.get_u("acceptors"),
                .learners = p.get_u("learners"),
                .quorum_model = !p.flag("single-message"),
                .faulty_learner = p.flag("faulty")};
            return Model{protocols::make_paxos(cfg),
                         protocols::paxos_symmetric_roles(cfg)};
          },
  });
}

}  // namespace mpb::check
