#include "protocols/storage/storage.hpp"

#include <algorithm>

#include "check/registry.hpp"
#include "mp/builder.hpp"

namespace mpb::protocols {

namespace {

// Additional writer local for the single-message model.
constexpr unsigned kWrAckCnt = 3;

// Base-object locals.
constexpr unsigned kBaseTs = 0;
constexpr unsigned kBaseVal = 1;

// Additional reader locals for the single-message model.
constexpr unsigned kRdCnt = 4;
constexpr unsigned kRdMaxTs = 5;

}  // namespace

std::string StorageConfig::setting() const {
  return "(" + std::to_string(bases) + "," + std::to_string(readers) + ")";
}

Protocol make_regular_storage(const StorageConfig& cfg) {
  std::string name = cfg.quorum_model ? "storage-quorum" : "storage-1msg";
  if (cfg.wrong_regularity) name += "-wrong";
  mp::ProtocolBuilder b(name + cfg.setting());

  const Value maj = static_cast<Value>(cfg.majority());
  const Value total_writes = static_cast<Value>(cfg.writes);

  const MsgType mSTORE = b.msg("STORE");
  const MsgType mSTORE_ACK = b.msg("STORE_ACK");
  const MsgType mREAD_REQ = b.msg("READ_REQ");
  const MsgType mREAD_ACK = b.msg("READ_ACK");

  // --- processes: writer, base objects, readers ---
  std::vector<std::pair<std::string, Value>> writer_vars{
      {"wts", 0}, {"inFlight", 0}, {"completedTs", 0}};
  if (!cfg.quorum_model) writer_vars.push_back({"ackCnt", 0});
  const ProcessId writer = b.process("writer", "Writer", writer_vars);

  std::vector<ProcessId> bases, readers;
  for (unsigned i = 0; i < cfg.bases; ++i) {
    bases.push_back(
        b.process("base" + std::to_string(i), "Base", {{"ts", 0}, {"val", 0}}));
  }
  for (unsigned i = 0; i < cfg.readers; ++i) {
    std::vector<std::pair<std::string, Value>> vars{
        {"started", 0}, {"snapTs", 0}, {"retTs", -1}, {"endSnap", -1}};
    if (!cfg.quorum_model) vars.insert(vars.end(), {{"cnt", 0}, {"maxTs", 0}});
    readers.push_back(b.process("reader" + std::to_string(i), "Reader", vars));
  }

  ProcessMask base_mask = 0, reader_mask = 0;
  for (ProcessId p : bases) base_mask |= mask_of(p);
  for (ProcessId p : readers) reader_mask |= mask_of(p);
  const ProcessMask writer_mask = mask_of(writer);

  // --- writer transitions ---
  // Start the next sequential write: new timestamp, STORE to every base.
  b.transition(writer, "W_START")
      .spontaneous()
      .guard([total_writes](const GuardView& g) {
        return g.local[kWrInFlight] == 0 && g.local[kWrWts] < total_writes;
      })
      .effect([=, bs = bases](EffectCtx& c) {
        const Value ts = c.local(kWrWts) + 1;
        c.set_local(kWrWts, ts);
        c.set_local(kWrInFlight, 1);
        for (ProcessId base : bs) {
          c.send(base, mSTORE, {ts, storage_value_for(ts)});
        }
      })
      .sends("STORE", base_mask)
      .reads((VarMask{1} << kWrInFlight) | (VarMask{1} << kWrWts))
      .writes((VarMask{1} << kWrWts) | (VarMask{1} << kWrInFlight))
      .priority(5);

  if (cfg.quorum_model) {
    // The write completes atomically on a majority of matching acks.
    b.transition(writer, "W_ACK")
        .consumes("STORE_ACK", static_cast<int>(maj))
        .from(base_mask)
        .guard([](const GuardView& g) {
          return g.local[kWrInFlight] == 1 &&
                 std::all_of(g.consumed.begin(), g.consumed.end(),
                             [&](const Message& m) { return m[0] == g.local[kWrWts]; });
        })
        .effect([](EffectCtx& c) {
          c.set_local(kWrInFlight, 0);
          c.set_local(kWrCompletedTs, c.local(kWrWts));
        })
        .reads((VarMask{1} << kWrInFlight) | (VarMask{1} << kWrWts))
        .writes((VarMask{1} << kWrInFlight) | (VarMask{1} << kWrCompletedTs))
        .priority(2);
  } else {
    // Counting variant: tally matching acks one by one.
    b.transition(writer, "W_ACK")
        .consumes("STORE_ACK", 1)
        .from(base_mask)
        .effect([maj](EffectCtx& c) {
          const Message& m = c.consumed()[0];
          if (c.local(kWrInFlight) != 1 || m[0] != c.local(kWrWts)) return;
          const Value cnt = c.local(kWrAckCnt) + 1;
          if (cnt >= maj) {
            c.set_local(kWrAckCnt, 0);
            c.set_local(kWrInFlight, 0);
            c.set_local(kWrCompletedTs, c.local(kWrWts));
          } else {
            c.set_local(kWrAckCnt, cnt);
          }
        })
        .reads_local(false)
        .writes((VarMask{1} << kWrInFlight) | (VarMask{1} << kWrCompletedTs) |
                (VarMask{1} << kWrAckCnt))
        .priority(2);
  }

  // --- base-object transitions ---
  for (unsigned i = 0; i < cfg.bases; ++i) {
    const ProcessId base = bases[i];
    // Store monotonically; always acknowledge (needed for write completion).
    b.transition(base, "STORE")
        .consumes("STORE", 1)
        .from(writer_mask)
        .effect([mSTORE_ACK](EffectCtx& c) {
          const Message& m = c.consumed()[0];
          if (m[0] > c.local(kBaseTs)) {
            c.set_local(kBaseTs, m[0]);
            c.set_local(kBaseVal, m[1]);
          }
          c.send(m.sender(), mSTORE_ACK, {m[0]});
        })
        .sends("STORE_ACK", writer_mask)
        .reply()
        .reads_local(false)
        .writes((VarMask{1} << kBaseTs) | (VarMask{1} << kBaseVal))
        .priority(4);

    if (readers.empty()) continue;  // no readers: READB would be dead code
    // Answer a read query with the current (ts, val).
    b.transition(base, "READB")
        .consumes("READ_REQ", 1)
        .from(reader_mask)
        .effect([mREAD_ACK](EffectCtx& c) {
          const Message& m = c.consumed()[0];
          c.send(m.sender(), mREAD_ACK, {c.local(kBaseTs), c.local(kBaseVal)});
        })
        .sends("READ_ACK", reader_mask)
        .reply()
        .reads_local(false)
        .writes_local(false)
        .priority(4);
  }

  // --- reader transitions ---
  for (unsigned i = 0; i < cfg.readers; ++i) {
    const ProcessId r = readers[i];
    // Start the read; ghost-snapshot the writer's last *completed* write.
    b.transition(r, "R_START")
        .spontaneous()
        .guard([](const GuardView& g) { return g.local[kRdStarted] == 0; })
        .effect([=, bs = bases](EffectCtx& c) {
          c.set_local(kRdStarted, 1);
          c.set_local(kRdSnapTs, c.peek(writer, kWrCompletedTs));
          for (ProcessId base : bs) c.send(base, mREAD_REQ, {});
        })
        .sends("READ_REQ", base_mask)
        .reads(VarMask{1} << kRdStarted)
        .writes((VarMask{1} << kRdStarted) | (VarMask{1} << kRdSnapTs))
        .peeks(writer, VarMask{1} << kWrCompletedTs)
        .priority(5);

    // The completion snapshot of the writer's latest started write is only
    // needed by the (deliberately wrong) strong specification; the correct
    // regularity bound retTs <= wts is a plain state predicate. Peeking only
    // in the wrong variant keeps the correct model free of the
    // R_COLLECT x W_START cross-process dependence, which is what lets the
    // stubborn sets actually reduce it.
    const bool snap_end = cfg.wrong_regularity;
    if (cfg.quorum_model) {
      // Return the highest timestamp among a majority of answers.
      auto& t = b.transition(r, "R_COLLECT")
          .consumes("READ_ACK", static_cast<int>(maj))
          .from(base_mask)
          .guard([](const GuardView& g) { return g.local[kRdRetTs] < 0; })
          .effect([writer, snap_end](EffectCtx& c) {
            Value ts = 0;
            for (const Message& m : c.consumed()) ts = std::max(ts, m[0]);
            c.set_local(kRdRetTs, ts);
            if (snap_end) {
              const Value wts = c.peek(writer, kWrWts);
              c.set_local(kRdEndSnap, wts);
              c.assert_that(ts == wts, "wrong_regularity");
            } else {
              c.assert_that(ts >= c.local(kRdSnapTs), "regularity");
            }
          })
          .reads(VarMask{1} << kRdRetTs)
          .writes((VarMask{1} << kRdRetTs) | (VarMask{1} << kRdEndSnap))
          .priority(1);
      if (snap_end) t.peeks(writer, VarMask{1} << kWrWts);
    } else {
      auto& t = b.transition(r, "R_COLLECT")
          .consumes("READ_ACK", 1)
          .from(base_mask)
          .effect([writer, maj, snap_end](EffectCtx& c) {
            const Message& m = c.consumed()[0];
            c.set_local(kRdMaxTs, std::max(c.local(kRdMaxTs), m[0]));
            const Value cnt = c.local(kRdCnt) + 1;
            c.set_local(kRdCnt, cnt);
            if (cnt == maj) {
              const Value ts = c.local(kRdMaxTs);
              c.set_local(kRdRetTs, ts);
              if (snap_end) {
                const Value wts = c.peek(writer, kWrWts);
                c.set_local(kRdEndSnap, wts);
                c.assert_that(ts == wts, "wrong_regularity");
              } else {
                c.assert_that(ts >= c.local(kRdSnapTs), "regularity");
              }
            }
          })
          .reads_local(false)
          .writes((VarMask{1} << kRdRetTs) | (VarMask{1} << kRdEndSnap) |
                  (VarMask{1} << kRdCnt) | (VarMask{1} << kRdMaxTs))
          .priority(1);
      if (snap_end) t.peeks(writer, VarMask{1} << kWrWts);
    }
  }

  // --- properties ---
  auto reader_slice = [](const State& s, const Protocol& proto, ProcessId r) {
    const ProcessInfo& pi = proto.proc(r);
    return s.local_slice(pi.local_offset, pi.local_len);
  };

  if (cfg.wrong_regularity) {
    // Deliberately too strong: a completed read must return the latest
    // *started* write even when the two are concurrent.
    b.property("wrong_regularity",
               [readers, reader_slice](const State& s, const Protocol& proto) {
                 for (ProcessId r : readers) {
                   auto loc = reader_slice(s, proto, r);
                   if (loc[kRdRetTs] < 0) continue;
                   if (loc[kRdRetTs] != loc[kRdEndSnap]) return false;
                 }
                 return true;
               });
  } else {
    // Regularity: between the last write completed before the read started
    // and the latest started write.
    b.property("regularity",
               [readers, writer, reader_slice](const State& s, const Protocol& proto) {
                 const ProcessInfo& wi = proto.proc(writer);
                 const Value wts = s.local_slice(wi.local_offset, wi.local_len)[kWrWts];
                 for (ProcessId r : readers) {
                   auto loc = reader_slice(s, proto, r);
                   if (loc[kRdRetTs] < 0) continue;
                   if (loc[kRdRetTs] < loc[kRdSnapTs]) return false;
                   if (loc[kRdRetTs] > wts) return false;
                 }
                 return true;
               });
  }

  return b.build();
}


std::vector<std::vector<ProcessId>> storage_symmetric_roles(const StorageConfig& cfg) {
  std::vector<std::vector<ProcessId>> roles;
  std::vector<ProcessId> bases, readers;
  for (unsigned i = 0; i < cfg.bases; ++i) {
    bases.push_back(static_cast<ProcessId>(1 + i));  // writer is process 0
  }
  for (unsigned i = 0; i < cfg.readers; ++i) {
    readers.push_back(static_cast<ProcessId>(1 + cfg.bases + i));
  }
  if (bases.size() >= 2) roles.push_back(std::move(bases));
  if (readers.size() >= 2) roles.push_back(std::move(readers));
  return roles;
}

}  // namespace mpb::protocols

namespace mpb::check {

// Check-facade registration: the storage schema and factory, rendered
// verbatim by mpbcheck's auto-generated per-model --help.
void register_storage_model(ModelRegistry& r) {
  r.add(ModelInfo{
      .name = "storage",
      .doc = "ABD-style single-writer regular storage over crashy bases",
      .params =
          {
              {.name = "bases",
               .def = 3,
               .min = 1,
               .max = 9,
               .doc = "base objects; reads/writes need a majority"},
              {.name = "readers",
               .def = 1,
               .min = 0,
               .max = 8,
               .doc = "reader processes, one read each"},
              {.name = "writes",
               .def = 2,
               .min = 0,
               .max = 8,
               .doc = "sequential writes the single writer performs"},
              {.name = "single-message",
               .type = ParamType::kBool,
               .doc = "per-message counting model instead of quorum"},
              {.name = "wrong-regularity",
               .type = ParamType::kBool,
               .doc = "verify the deliberately too-strong regularity "
                      "(Section V-A fault injection)"},
          },
      .make =
          [](const ParamMap& p) {
            protocols::StorageConfig cfg{
                .bases = p.get_u("bases"),
                .readers = p.get_u("readers"),
                .writes = p.get_u("writes"),
                .quorum_model = !p.flag("single-message"),
                .wrong_regularity = p.flag("wrong-regularity")};
            return Model{protocols::make_regular_storage(cfg),
                         protocols::storage_symmetric_roles(cfg)};
          },
  });
}

}  // namespace mpb::check
